package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta := trace.Meta{Name: "t", LinkBytesPerSec: 1e6, Interval: time.Second, Intervals: 1}
	pkts := []flow.Packet{{Time: 0, Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}}
	if _, err := trace.WriteAll(f, trace.NewSliceSource(meta, pkts)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFile(t *testing.T) {
	if err := run("", 1, 0, 1, []string{writeTestTrace(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPreset(t *testing.T) {
	if err := run("COS", 0.05, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 1, 0, 1, nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("NOPE", 1, 0, 1, nil); err == nil {
		t.Error("bad preset accepted")
	}
	if err := run("", 1, 0, 1, []string{"/nonexistent"}); err == nil {
		t.Error("missing file accepted")
	}
	// Not a trace file.
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, bytes.Repeat([]byte{0}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", 1, 0, 1, []string{bad}); err == nil {
		t.Error("garbage file accepted")
	}
}
