// Command traceinfo prints Table 3-style statistics for traces: active
// flows per measurement interval under each flow definition, and traffic
// volume per interval.
//
// Usage:
//
//	traceinfo mag.trace [more.trace ...]
//	traceinfo -preset COS -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		preset    = flag.String("preset", "", "summarize a synthetic preset instead of files")
		scale     = flag.Float64("scale", 0.05, "scale factor for -preset")
		intervals = flag.Int("intervals", 0, "override intervals for -preset")
		seed      = flag.Int64("seed", 1, "generator seed for -preset")
	)
	flag.Parse()
	if err := run(*preset, *scale, *intervals, *seed, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(preset string, scale float64, intervals int, seed int64, files []string) error {
	if preset == "" && len(files) == 0 {
		return fmt.Errorf("need trace files or -preset")
	}
	if preset != "" {
		cfg, err := trace.Preset(preset)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		if scale != 1 {
			cfg = cfg.Scaled(scale)
		}
		if intervals > 0 {
			cfg = cfg.WithIntervals(intervals)
		}
		g, err := trace.NewGenerator(cfg)
		if err != nil {
			return err
		}
		return summarize(g)
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := summarize(r); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		f.Close()
	}
	return nil
}

func summarize(src trace.Source) error {
	meta := src.Meta()
	st, err := trace.CollectStats(src)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d intervals of %v, link %.1f Mbit/s (%.0f MB/interval capacity)\n",
		meta.Name, meta.Intervals, meta.Interval,
		meta.LinkBytesPerSec*8/1e6, meta.Capacity()/1e6)
	fmt.Printf("  packets: %d\n", st.Packets)
	fmt.Printf("  %s\n", st.String())
	util := st.MBytes.Avg * 1e6 / meta.Capacity() * 100
	fmt.Printf("  utilization: %.1f%%\n", util)
	return nil
}
