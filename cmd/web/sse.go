// The dashboard's transport: the bus-to-browser SSE bridge and the
// embedded single-page UI.

package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/flow"
	"repro/internal/pubsub"
	"repro/internal/stagegraph"
)

// topFlow is one heavy hitter in a streamed report view.
type topFlow struct {
	Flow  string `json:"flow"`
	Bytes uint64 `json:"bytes"`
	Exact bool   `json:"exact"`
}

// reportView is the trimmed interval report streamed to browsers: the full
// estimate list can run to thousands of flows, the dashboard only shows the
// top K.
type reportView struct {
	Node        string    `json:"node"`
	Interval    int       `json:"interval"`
	Flows       int       `json:"flows"`
	EntriesUsed int       `json:"entries_used"`
	Threshold   uint64    `json:"threshold"`
	Top         []topFlow `json:"top"`
}

// sseEvent is the envelope written to the SSE data field.
type sseEvent struct {
	Seq     uint64 `json:"seq"`
	Payload any    `json:"payload"`
}

// eventName maps a bus topic to the SSE event name browsers listen on.
func eventName(topic string) string {
	switch topic {
	case "reports":
		return "report"
	case "events/compare":
		return "compare"
	case "events/telemetry":
		return "telemetry"
	}
	return "message"
}

// renderPayload trims a bus payload for the browser: reports are cut down
// to their top-K view, everything else (telemetry snapshots, compare
// results) is already compact and JSON-tagged.
func renderPayload(e pubsub.Event, def flow.Definition, topK int) any {
	rm, ok := e.Payload.(stagegraph.ReportMsg)
	if !ok {
		return e.Payload
	}
	v := reportView{
		Node:        rm.Node,
		Interval:    rm.Report.Interval,
		Flows:       len(rm.Report.Estimates),
		EntriesUsed: rm.Report.EntriesUsed,
		Threshold:   rm.Report.Threshold,
	}
	for _, est := range stagegraph.TopK(rm.Report, topK) {
		v.Top = append(v.Top, topFlow{Flow: def.Format(est.Key), Bytes: est.Bytes, Exact: est.Exact})
	}
	return v
}

// serveEvents bridges the bus to one browser: every subscriber gets its own
// bounded queue, so a stalled tab loses its oldest events instead of
// stalling the bus (let alone the measurement path).
func serveEvents(bus *pubsub.Bus, def flow.Definition, topK int) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		sub := bus.Subscribe(0)
		defer sub.Cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case <-req.Context().Done():
				return
			case e, ok := <-sub.C:
				if !ok {
					return
				}
				data, err := json.Marshal(sseEvent{Seq: e.Seq, Payload: renderPayload(e, def, topK)})
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", eventName(e.Topic), data)
				fl.Flush()
			}
		}
	}
}

// serveIndex serves the embedded dashboard page.
func serveIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML) //nolint:errcheck // best-effort response
}

// indexHTML is the whole dashboard: a static page subscribing to /events.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>traffic: live heavy hitters</title>
<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 1.5em; background: #111; color: #ddd; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 0 0 .4em; color: #9cf; }
table { border-collapse: collapse; width: 100%; }
td, th { padding: 2px 8px; text-align: left; border-bottom: 1px solid #333; }
th { color: #888; font-weight: normal; }
td.n { text-align: right; font-variant-numeric: tabular-nums; }
.exact { color: #6d6; }
#boards { display: flex; gap: 2em; flex-wrap: wrap; }
.board { flex: 1 1 24em; background: #1a1a1a; border: 1px solid #333; border-radius: 6px; padding: .8em 1em; }
#bar { color: #888; margin-bottom: 1em; }
#compare td:first-child { color: #888; }
</style>
</head>
<body>
<h1>Live heavy hitters</h1>
<div id="bar">connecting&hellip;</div>
<div id="boards"></div>
<div class="board" id="cmpboard" style="display:none; margin-top:1.5em">
<h2>A/B comparison</h2>
<table id="compare"><tbody></tbody></table>
</div>
<script>
const boards = {};
function board(node) {
  if (boards[node]) return boards[node];
  const div = document.createElement('div');
  div.className = 'board';
  div.innerHTML = '<h2>' + node + '</h2><div class="meta"></div>' +
    '<table><thead><tr><th>flow</th><th>bytes</th></tr></thead><tbody></tbody></table>';
  document.getElementById('boards').appendChild(div);
  boards[node] = div;
  return div;
}
const es = new EventSource('/events');
es.onopen = () => { document.getElementById('bar').textContent = 'streaming /events'; };
es.onerror = () => { document.getElementById('bar').textContent = 'disconnected, retrying…'; };
es.addEventListener('report', ev => {
  const r = JSON.parse(ev.data).payload;
  const div = board(r.node);
  div.querySelector('.meta').textContent =
    'interval ' + r.interval + ' — ' + r.flows + ' flows over threshold, ' +
    r.entries_used + ' entries used';
  const tb = div.querySelector('tbody');
  tb.innerHTML = '';
  for (const f of (r.top || [])) {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>' + f.flow + (f.exact ? ' <span class="exact">exact</span>' : '') +
      '</td><td class="n">' + f.bytes.toLocaleString() + '</td>';
    tb.appendChild(tr);
  }
});
es.addEventListener('compare', ev => {
  const c = JSON.parse(ev.data).payload.payload;
  document.getElementById('cmpboard').style.display = '';
  const tb = document.querySelector('#compare tbody');
  const tr = document.createElement('tr');
  tr.innerHTML = '<td>interval ' + c.interval + '</td><td>top-' + c.k + ' overlap ' +
    (100 * c.top_k_overlap).toFixed(0) + '%</td><td>avg rel diff ' +
    (100 * c.avg_rel_diff).toFixed(2) + '%</td><td>' +
    c.common_flows + ' common flows</td>';
  tb.prepend(tr);
  while (tb.children.length > 12) tb.removeChild(tb.lastChild);
});
es.addEventListener('telemetry', ev => {
  const e = JSON.parse(ev.data).payload;
  const div = boards[e.node];
  if (!div) return;
  const s = e.payload, lanes = (s.lanes || []);
  let pkts = 0, shed = 0;
  for (const ln of lanes) { pkts += ln.packets || 0; shed += (ln.shed_packets || 0); }
  let meta = div.querySelector('.meta').textContent.split(' · ')[0];
  div.querySelector('.meta').textContent = meta + ' · ' + pkts.toLocaleString() +
    ' packets' + (shed ? ', ' + shed + ' shed' : '');
});
</script>
</body>
</html>
`
