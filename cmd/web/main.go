// Command web serves a live measurement dashboard: it drives a synthetic
// trace through a stage graph at wall-clock pace, publishes every interval
// report, telemetry snapshot and A/B comparison onto the event bus, and
// streams the bus to browsers over Server-Sent Events.
//
// Usage:
//
//	web -listen :8089                      # single msf device on the MAG preset
//	web -algs msf,sh -top 15               # A/B: multistage filter vs sample-and-hold
//	web -preset COS -scale 0.1 -tick 2s    # slower pace on a different trace
//
// Open http://localhost:8089/ in a browser; /events is the raw SSE feed,
// /stats.json the full graph snapshot, and the usual /debug/vars,
// /debug/pprof and /healthz debug endpoints are served alongside.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/core/multistage"
	"repro/internal/core/sampleandhold"
	"repro/internal/debugserver"
	"repro/internal/flow"
	"repro/internal/pubsub"
	"repro/internal/stagegraph"
	"repro/internal/trace"
)

// options collects the command-line configuration.
type options struct {
	listen    string
	algs      string
	preset    string
	scale     float64
	intervals int
	loop      bool
	tick      time.Duration
	threshold float64
	entries   int
	stages    int
	buckets   int
	shards    int
	top       int
	seed      int64
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", ":8089", "serve the dashboard on this address")
	flag.StringVar(&o.algs, "algs", "msf", "algorithm, or two comma-separated algorithms to race A/B: sh, msf")
	flag.StringVar(&o.preset, "preset", "MAG", "synthetic trace preset to replay")
	flag.Float64Var(&o.scale, "scale", 0.05, "scale factor for the preset")
	flag.IntVar(&o.intervals, "intervals", 6, "measurement intervals per replay pass")
	flag.BoolVar(&o.loop, "loop", true, "replay the trace again when it ends")
	flag.DurationVar(&o.tick, "tick", time.Second, "wall-clock pace of one measurement interval")
	flag.Float64Var(&o.threshold, "threshold", 0.001, "large-flow threshold as a fraction of link capacity")
	flag.IntVar(&o.entries, "entries", 1024, "flow memory entries")
	flag.IntVar(&o.stages, "stages", 4, "filter stages (msf)")
	flag.IntVar(&o.buckets, "buckets", 1024, "counters per stage (msf)")
	flag.IntVar(&o.shards, "shards", 1, "shards per measure stage")
	flag.IntVar(&o.top, "top", 10, "heavy hitters to stream per interval")
	flag.Int64Var(&o.seed, "seed", 1, "trace and algorithm seed")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "web:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	names := strings.Split(o.algs, ",")
	if len(names) < 1 || len(names) > 2 {
		return fmt.Errorf("-algs wants one algorithm or two comma-separated, got %q", o.algs)
	}

	cfg, err := trace.Preset(o.preset)
	if err != nil {
		return err
	}
	cfg.Seed = o.seed
	if o.scale != 1 {
		cfg = cfg.Scaled(o.scale)
	}
	if o.intervals > 0 {
		cfg = cfg.WithIntervals(o.intervals)
	}
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		return err
	}
	src, err := trace.Collect(gen)
	if err != nil {
		return err
	}
	meta := src.Meta()
	thBytes := uint64(o.threshold * meta.Capacity())
	if thBytes < 1 {
		thBytes = 1
	}

	bus, err := pubsub.New(pubsub.Config{})
	if err != nil {
		return err
	}
	topo, err := buildTopology(o, names, thBytes, bus)
	if err != nil {
		return err
	}
	g, err := stagegraph.New(stagegraph.Config{Topology: topo})
	if err != nil {
		return err
	}
	defer g.Close()

	def := flow.FiveTuple{}
	http.HandleFunc("/", serveIndex)
	http.HandleFunc("/events", serveEvents(bus, def, o.top))
	http.HandleFunc("/stats.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(g.Stats()) //nolint:errcheck // best-effort response
	})
	debugserver.RegisterGraph("web", g)
	addr, err := debugserver.Serve(o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("web: %s on preset %s, threshold %d bytes, dashboard on http://%s/\n",
		strings.Join(names, " vs "), meta.Name, thBytes, addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go feed(g, src, meta, o, done)
	<-stop
	close(done)
	fmt.Println("\nweb: shutting down")
	return nil
}

// buildTopology assembles the measurement graph: one measure stage per
// algorithm, an A/B compare stage when there are two, and a bus stage
// receiving every report and event.
func buildTopology(o options, names []string, thBytes uint64, bus *pubsub.Bus) (stagegraph.Topology, error) {
	mkCfg := func(alg string, seed int64) (stagegraph.MeasureConfig, error) {
		newAlg, err := algFactory(o, alg, thBytes, seed)
		if err != nil {
			return stagegraph.MeasureConfig{}, err
		}
		return stagegraph.MeasureConfig{
			Shards:       o.shards,
			QueueDepth:   256,
			NewAlgorithm: newAlg,
			Definition:   flow.FiveTuple{},
			Seed:         seed,
		}, nil
	}
	if len(names) == 1 {
		cfg, err := mkCfg(names[0], o.seed)
		if err != nil {
			return stagegraph.Topology{}, err
		}
		topo := stagegraph.PresetShardLane(cfg)
		topo.Nodes = append(topo.Nodes, stagegraph.Node{Name: "bus", Stage: stagegraph.NewBus(bus)})
		topo.Edges = append(topo.Edges,
			stagegraph.Edge{From: "measure.reports", To: "bus.reports"},
			stagegraph.Edge{From: "measure.telemetry", To: "bus.events"},
		)
		return topo, nil
	}
	cfgA, err := mkCfg(names[0], o.seed)
	if err != nil {
		return stagegraph.Topology{}, err
	}
	cfgB, err := mkCfg(names[1], o.seed+1)
	if err != nil {
		return stagegraph.Topology{}, err
	}
	topo := stagegraph.PresetAB(cfgA, cfgB, o.top)
	topo.Nodes = append(topo.Nodes, stagegraph.Node{Name: "bus", Stage: stagegraph.NewBus(bus)})
	topo.Edges = append(topo.Edges,
		stagegraph.Edge{From: "a.reports", To: "bus.reports"},
		stagegraph.Edge{From: "b.reports", To: "bus.reports"},
		stagegraph.Edge{From: "a.telemetry", To: "bus.events"},
		stagegraph.Edge{From: "b.telemetry", To: "bus.events"},
		stagegraph.Edge{From: "compare.events", To: "bus.events"},
	)
	return topo, nil
}

// algFactory returns the per-shard algorithm constructor for one named
// algorithm.
func algFactory(o options, name string, thBytes uint64, seed int64) (func(int) (core.Algorithm, error), error) {
	switch name {
	case "sh":
		return func(shard int) (core.Algorithm, error) {
			return sampleandhold.New(sampleandhold.Config{
				Entries:      o.entries,
				Threshold:    thBytes,
				Oversampling: 4,
				Preserve:     true,
				Seed:         seed + int64(shard),
			})
		}, nil
	case "msf":
		return func(shard int) (core.Algorithm, error) {
			return multistage.New(multistage.Config{
				Stages:       o.stages,
				Buckets:      o.buckets,
				Entries:      o.entries,
				Threshold:    thBytes,
				Conservative: true,
				Shield:       true,
				Preserve:     true,
				Seed:         seed + int64(shard),
			})
		}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want sh, msf)", name)
	}
}

// feed replays the collected trace through the graph at wall-clock pace:
// each measurement interval's packets are delivered in batches, the
// interval is closed, and the feeder sleeps one tick. With -loop the trace
// restarts when it ends; the interval counter keeps increasing so every
// report stays unique.
func feed(g *stagegraph.Graph, src *trace.SliceSource, meta trace.Meta, o options, done <-chan struct{}) {
	const batch = 256
	// Partition packets by measurement interval once, up front.
	byInterval := make([][]flow.Packet, meta.Intervals)
	for {
		p, err := src.Next()
		if err != nil {
			break
		}
		iv := int(p.Time / meta.Interval)
		if iv >= meta.Intervals {
			iv = meta.Intervals - 1
		}
		byInterval[iv] = append(byInterval[iv], p)
	}
	interval := 0
	for {
		for _, pkts := range byInterval {
			for len(pkts) > 0 {
				n := batch
				if n > len(pkts) {
					n = len(pkts)
				}
				g.PacketBatch(pkts[:n])
				pkts = pkts[n:]
			}
			g.EndInterval(interval)
			interval++
			select {
			case <-done:
				return
			case <-time.After(o.tick):
			}
		}
		if !o.loop {
			return
		}
	}
}
