package main

import (
	"bufio"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/pubsub"
	"repro/internal/stagegraph"
)

func testOptions() options {
	return options{
		algs: "msf", preset: "MAG", scale: 0.02, intervals: 2,
		tick: time.Millisecond, threshold: 0.001,
		entries: 256, stages: 2, buckets: 128, shards: 1, top: 5, seed: 1,
	}
}

// TestBuildTopologySingle: one algorithm yields the preset shard-lane graph
// plus a bus stage fed by the measure's reports and telemetry.
func TestBuildTopologySingle(t *testing.T) {
	bus, err := pubsub.New(pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := buildTopology(testOptions(), []string{"msf"}, 1000, bus)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 3 || len(topo.Edges) != 3 {
		t.Fatalf("nodes=%d edges=%d, want 3 and 3", len(topo.Nodes), len(topo.Edges))
	}
	g, err := stagegraph.New(stagegraph.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sub := bus.Subscribe(0, "reports")
	p := flow.Packet{Size: 5000, SrcIP: 1, DstIP: 2, Proto: 6}
	for i := 0; i < 10; i++ {
		g.Packet(&p)
	}
	g.EndInterval(0)
	select {
	case e := <-sub.C:
		rm, ok := e.Payload.(stagegraph.ReportMsg)
		if !ok {
			t.Fatalf("payload type %T", e.Payload)
		}
		if rm.Node != "measure" || rm.Report.Interval != 0 {
			t.Errorf("got node %q interval %d", rm.Node, rm.Report.Interval)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no report published on bus")
	}
}

// TestBuildTopologyAB: two algorithms yield the A/B preset with compare,
// every report and event wired into the bus.
func TestBuildTopologyAB(t *testing.T) {
	bus, err := pubsub.New(pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := buildTopology(testOptions(), []string{"msf", "sh"}, 1000, bus)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 5 || len(topo.Edges) != 9 {
		t.Fatalf("nodes=%d edges=%d, want 5 and 9", len(topo.Nodes), len(topo.Edges))
	}
	g, err := stagegraph.New(stagegraph.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sub := bus.Subscribe(0, "events/compare")
	p := flow.Packet{Size: 5000, SrcIP: 1, DstIP: 2, Proto: 6}
	for i := 0; i < 10; i++ {
		g.Packet(&p)
	}
	g.EndInterval(0)
	select {
	case e := <-sub.C:
		ev, ok := e.Payload.(stagegraph.Event)
		if !ok {
			t.Fatalf("payload type %T", e.Payload)
		}
		res, ok := ev.Payload.(stagegraph.CompareResult)
		if !ok {
			t.Fatalf("event payload type %T", ev.Payload)
		}
		if res.Interval != 0 || res.NodeA != "a" || res.NodeB != "b" {
			t.Errorf("compare result %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no compare result published on bus")
	}
}

// TestBuildTopologyUnknownAlg: a bad algorithm name fails up front, not at
// first packet.
func TestBuildTopologyUnknownAlg(t *testing.T) {
	bus, err := pubsub.New(pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildTopology(testOptions(), []string{"bogus"}, 1000, bus); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestRenderPayloadTrimsReports: a report with many estimates streams as a
// top-K view; non-report payloads pass through untouched.
func TestRenderPayloadTrimsReports(t *testing.T) {
	ests := make([]core.Estimate, 50)
	for i := range ests {
		ests[i] = core.Estimate{Key: flow.Key{Lo: uint64(i)}, Bytes: uint64(1000 - i)}
	}
	e := pubsub.Event{Topic: "reports", Payload: stagegraph.ReportMsg{
		Node:   "measure",
		Report: core.IntervalReport{Interval: 3, Estimates: ests, EntriesUsed: 50, Threshold: 77},
	}}
	v, ok := renderPayload(e, flow.FiveTuple{}, 5).(reportView)
	if !ok {
		t.Fatalf("render type %T", renderPayload(e, flow.FiveTuple{}, 5))
	}
	if v.Node != "measure" || v.Interval != 3 || v.Flows != 50 || v.Threshold != 77 {
		t.Errorf("view header %+v", v)
	}
	if len(v.Top) != 5 || v.Top[0].Bytes != 1000 {
		t.Errorf("top-K %+v", v.Top)
	}

	other := pubsub.Event{Topic: "events/telemetry", Payload: 42}
	if got := renderPayload(other, flow.FiveTuple{}, 5); got != 42 {
		t.Errorf("non-report payload rewritten: %v", got)
	}
}

// TestServeEventsStreams: the SSE handler forwards bus events in wire
// format and terminates when the client goes away.
func TestServeEventsStreams(t *testing.T) {
	bus, err := pubsub.New(pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serveEvents(bus, flow.FiveTuple{}, 5))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req := httptest.NewRequest("GET", srv.URL, nil).WithContext(ctx)
	req.RequestURI = ""
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The subscription is registered inside the handler goroutine; publish
	// until one lands rather than racing a single publish against it.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				bus.Publish("events/compare", stagegraph.Event{Kind: "compare"})
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	var ev, data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			ev = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if ev != "compare" {
		t.Errorf("event name %q, want compare", ev)
	}
	if !strings.Contains(data, `"seq"`) || !strings.Contains(data, `"payload"`) {
		t.Errorf("data frame %q missing envelope", data)
	}
}
