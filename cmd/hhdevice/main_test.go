package main

import (
	"path/filepath"
	"testing"
)

func TestRunAlgorithmsOnPreset(t *testing.T) {
	for _, alg := range []string{"sh", "msf", "netflow"} {
		if err := run(alg, "5-tuple", 0.001, 64, 2, 128, 4, 16, true, "", "", 1, 3, 1,
			"COS", 0.05, 2, nil); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestRunDefinitions(t *testing.T) {
	for _, def := range []string{"dstIP", "ASpair"} {
		if err := run("msf", def, 0.001, 64, 2, 128, 4, 16, false, "", "", 1, 1, 1,
			"MAG", 0.01, 1, nil); err != nil {
			t.Errorf("%s: %v", def, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "5-tuple", 0.001, 64, 2, 128, 4, 16, false, "", "", 1, 1, 1, "COS", 0.05, 1, nil); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run("msf", "bogus", 0.001, 64, 2, 128, 4, 16, false, "", "", 1, 1, 1, "COS", 0.05, 1, nil); err == nil {
		t.Error("bad definition accepted")
	}
	if err := run("msf", "5-tuple", 0.001, 64, 2, 128, 4, 16, false, "", "", 1, 1, 1, "", 1, 1, nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("msf", "5-tuple", 0.001, 64, 2, 128, 4, 16, false, "", "", 1, 1, 1, "", 1, 1,
		[]string{filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing file accepted")
	}
}
