package main

import (
	"path/filepath"
	"testing"

	"repro/internal/pipeline"
)

// testOptions mirrors the flag defaults on a small synthetic preset.
func testOptions(alg, def, preset string, scale float64, intervals int) options {
	return options{
		algName: alg, defName: def, threshold: 0.001,
		entries: 64, stages: 2, buckets: 128, oversamp: 4, rate: 16,
		shards: 1, top: 1, seed: 1,
		preset: preset, scale: scale, intervals: intervals,
	}
}

func TestRunAlgorithmsOnPreset(t *testing.T) {
	for _, alg := range []string{"sh", "msf", "netflow"} {
		o := testOptions(alg, "5-tuple", "COS", 0.05, 2)
		o.adaptive = true
		o.top = 3
		if err := run(o); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestRunDefinitions(t *testing.T) {
	for _, def := range []string{"dstIP", "ASpair"} {
		if err := run(testOptions("msf", def, "MAG", 0.01, 1)); err != nil {
			t.Errorf("%s: %v", def, err)
		}
	}
}

func TestRunSharded(t *testing.T) {
	for _, policy := range []pipeline.OverloadPolicy{pipeline.Block, pipeline.Degrade} {
		o := testOptions("sh", "5-tuple", "COS", 0.05, 2)
		o.shards = 2
		o.overload = policy
		o.maxEntries = 32
		if err := run(o); err != nil {
			t.Errorf("policy %v: %v", policy, err)
		}
	}
}

func TestRunAB(t *testing.T) {
	o := testOptions("msf", "5-tuple", "COS", 0.05, 2)
	o.ab = "sh"
	o.top = 5
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Sharded A/B exercises the same graph with sharded measure stages.
	o.shards = 2
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunABErrors(t *testing.T) {
	o := testOptions("msf", "5-tuple", "COS", 0.05, 1)
	o.ab = "bogus"
	if err := run(o); err == nil {
		t.Error("bad -ab algorithm accepted")
	}
	o = testOptions("msf", "5-tuple", "COS", 0.05, 1)
	o.ab = "sh"
	o.adaptive = true
	if err := run(o); err == nil {
		t.Error("-ab with -adapt accepted")
	}
	o = testOptions("msf", "5-tuple", "COS", 0.05, 1)
	o.ab = "sh"
	o.export = "127.0.0.1:2055"
	if err := run(o); err == nil {
		t.Error("-ab with -export accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(testOptions("bogus", "5-tuple", "COS", 0.05, 1)); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run(testOptions("msf", "bogus", "COS", 0.05, 1)); err == nil {
		t.Error("bad definition accepted")
	}
	if err := run(testOptions("msf", "5-tuple", "", 1, 1)); err == nil {
		t.Error("no input accepted")
	}
	o := testOptions("msf", "5-tuple", "", 1, 1)
	o.args = []string{filepath.Join(t.TempDir(), "missing")}
	if err := run(o); err == nil {
		t.Error("missing file accepted")
	}
}
