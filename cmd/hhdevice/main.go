// Command hhdevice runs a complete traffic measurement device over a trace
// and prints the heavy hitters it identifies per measurement interval —
// the tool a network operator would run at a vantage point.
//
// Usage:
//
//	hhdevice -alg msf -def dstIP -threshold 0.001 mag.trace
//	hhdevice -alg sh -preset MAG -scale 0.05 -adapt -entries 512 -top 5
//	hhdevice -alg sh -preset MAG -shards 4 -overload degrade -listen :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/core/device"
	"repro/internal/core/multistage"
	"repro/internal/core/sampleandhold"
	"repro/internal/debugserver"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// options collects the command-line configuration.
type options struct {
	algName    string
	defName    string
	threshold  float64
	entries    int
	maxEntries int
	stages     int
	buckets    int
	oversamp   float64
	rate       int
	adaptive   bool
	export     string
	listen     string
	shards     int
	overload   pipeline.OverloadPolicy
	degrade    float64
	restart    bool
	top        int
	seed       int64
	preset     string
	scale      float64
	intervals  int
	args       []string
}

func main() {
	var (
		o        options
		overload string
	)
	flag.StringVar(&o.algName, "alg", "msf", "algorithm: sh, msf, netflow")
	flag.StringVar(&o.defName, "def", "5-tuple", "flow definition: 5-tuple, dstIP, ASpair")
	flag.Float64Var(&o.threshold, "threshold", 0.001, "large-flow threshold as a fraction of link capacity")
	flag.IntVar(&o.entries, "entries", 1024, "flow memory entries")
	flag.IntVar(&o.maxEntries, "max-entries", 0, "hard cap on flow memory entries (0 = no cap beyond -entries)")
	flag.IntVar(&o.stages, "stages", 4, "filter stages (msf)")
	flag.IntVar(&o.buckets, "buckets", 1024, "counters per stage (msf)")
	flag.Float64Var(&o.oversamp, "oversampling", 4, "oversampling factor (sh)")
	flag.IntVar(&o.rate, "rate", 16, "sampling rate 1-in-x (netflow)")
	flag.BoolVar(&o.adaptive, "adapt", false, "enable dynamic threshold adaptation (Figure 5)")
	flag.StringVar(&o.export, "export", "", "export reports as NetFlow v5 over UDP to this address")
	flag.StringVar(&o.listen, "listen", "", "serve /debug/vars, /debug/pprof and /healthz on this address while running")
	flag.IntVar(&o.shards, "shards", 1, "shard the device across this many parallel lanes")
	flag.StringVar(&overload, "overload", "block", "lane overload policy: block, drop-newest, drop-oldest, degrade (sharded runs)")
	flag.Float64Var(&o.degrade, "degrade-fraction", 0, "per-packet keep probability for -overload degrade (0 = default)")
	flag.BoolVar(&o.restart, "restart-lanes", false, "restart a panicking lane with a fresh algorithm instead of quarantining it")
	flag.IntVar(&o.top, "top", 10, "heavy hitters to print per interval")
	flag.Int64Var(&o.seed, "seed", 1, "algorithm seed")
	flag.StringVar(&o.preset, "preset", "", "run on a synthetic preset instead of a file")
	flag.Float64Var(&o.scale, "scale", 0.05, "scale factor for -preset")
	flag.IntVar(&o.intervals, "intervals", 6, "intervals for -preset")
	flag.Parse()
	o.args = flag.Args()

	policy, err := pipeline.OverloadPolicyByName(overload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhdevice:", err)
		os.Exit(1)
	}
	o.overload = policy
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hhdevice:", err)
		os.Exit(1)
	}
}

func openSource(o options) (trace.Source, func() error, error) {
	if o.preset != "" {
		cfg, err := trace.Preset(o.preset)
		if err != nil {
			return nil, nil, err
		}
		cfg.Seed = o.seed
		if o.scale != 1 {
			cfg = cfg.Scaled(o.scale)
		}
		if o.intervals > 0 {
			cfg = cfg.WithIntervals(o.intervals)
		}
		g, err := trace.NewGenerator(cfg)
		return g, func() error { return nil }, err
	}
	if len(o.args) != 1 {
		return nil, nil, fmt.Errorf("need exactly one trace file or -preset")
	}
	f, err := os.Open(o.args[0])
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(o.args[0], ".pcap") {
		// Pcap captures carry no measurement metadata; assume an OC-3 link
		// with 5-second intervals covering the whole capture.
		meta := trace.Meta{
			Name:            o.args[0],
			LinkBytesPerSec: 155.52e6 / 8,
			Interval:        5 * time.Second,
			Intervals:       12,
		}
		if o.intervals > 0 {
			meta.Intervals = o.intervals
		}
		r, err := trace.NewPcapSource(f, meta)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f.Close, nil
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f.Close, nil
}

func run(o options) error {
	def := flow.DefinitionByName(o.defName)
	if def == nil {
		return fmt.Errorf("unknown flow definition %q", o.defName)
	}
	src, closeSrc, err := openSource(o)
	if err != nil {
		return err
	}
	defer closeSrc()
	meta := src.Meta()
	thBytes := uint64(o.threshold * meta.Capacity())
	if thBytes < 1 {
		thBytes = 1
	}

	mkAlg := func(algSeed int64) (core.Algorithm, *adapt.Adaptor, error) {
		var (
			alg     core.Algorithm
			adaptor *adapt.Adaptor
			err     error
		)
		switch o.algName {
		case "sh":
			alg, err = sampleandhold.New(sampleandhold.Config{
				Entries:      o.entries,
				MaxEntries:   o.maxEntries,
				Threshold:    thBytes,
				Oversampling: o.oversamp,
				Preserve:     true,
				EarlyRemoval: 0.15,
				Seed:         algSeed,
			})
			if o.adaptive {
				adaptor = adapt.New(adapt.SampleAndHoldDefaults())
			}
		case "msf":
			alg, err = multistage.New(multistage.Config{
				Stages:       o.stages,
				Buckets:      o.buckets,
				Entries:      o.entries,
				MaxEntries:   o.maxEntries,
				Threshold:    thBytes,
				Conservative: true,
				Shield:       true,
				Preserve:     true,
				Seed:         algSeed,
			})
			if o.adaptive {
				adaptor = adapt.New(adapt.MultistageDefaults())
			}
		case "netflow":
			alg, err = netflow.New(netflow.Config{SamplingRate: o.rate})
		default:
			err = fmt.Errorf("unknown algorithm %q (want sh, msf, netflow)", o.algName)
		}
		return alg, adaptor, err
	}
	if o.shards > 1 {
		return runSharded(o, mkAlg, def, src, meta, thBytes)
	}
	alg, adaptor, err := mkAlg(o.seed)
	if err != nil {
		return err
	}

	fmt.Printf("device: %s, flows by %s, threshold %d bytes (%.4f%% of capacity), %d entries\n",
		alg.Name(), def.Name(), thBytes, o.threshold*100, alg.Capacity())

	var exporter *netflow.UDPExporter
	if o.export != "" {
		exporter, err = netflow.DialUDPExporter(o.export, netflow.NewExporter(def))
		if err != nil {
			return err
		}
		defer exporter.Close()
	}

	dev := device.New(alg, def, adaptor)
	dev.KeepReports = false
	dev.OnReport = func(r device.IntervalReport) {
		fmt.Printf("interval %d: threshold %d bytes, %d/%d entries used, %d flows reported\n",
			r.Interval, r.Threshold, r.EntriesUsed, alg.Capacity(), len(r.Estimates))
		n := o.top
		if n > len(r.Estimates) {
			n = len(r.Estimates)
		}
		for _, e := range r.Estimates[:n] {
			exactMark := ""
			if e.Exact {
				exactMark = " (exact)"
			}
			fmt.Printf("  %12d bytes%s  %s\n", e.Bytes, exactMark, def.Format(e.Key))
		}
		if exporter != nil {
			uptime := time.Duration(r.Interval+1) * meta.Interval
			if err := exporter.Send(exporter.Export(r.Estimates, uptime)); err != nil {
				fmt.Fprintf(os.Stderr, "export: %v\n", err)
			}
		}
	}
	if o.listen != "" {
		debugserver.Publish("hhdevice", func() any { return dev.Stats() })
		debugserver.RegisterHealth("device", func() (telemetry.HealthStatus, string) {
			return dev.Stats().Health()
		})
		addr, err := debugserver.Serve(o.listen)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars, /debug/pprof and /healthz on http://%s\n", addr)
	}
	n, err := trace.Replay(src, dev)
	if err != nil {
		return err
	}
	mem := alg.Mem()
	fmt.Printf("processed %d packets, %.2f memory references/packet\n", n, mem.PerPacket())
	if exporter != nil {
		fmt.Printf("exported %d v5 packets, %d bytes to %s\n", exporter.PacketsSent, exporter.BytesSent, o.export)
	}
	return nil
}

// runSharded drives the trace through an RSS-style pipeline of independent
// per-shard algorithm instances (threshold adaptation is per shard and
// therefore disabled here; use a single lane for adaptive runs).
func runSharded(o options, mkAlg func(int64) (core.Algorithm, *adapt.Adaptor, error), def flow.Definition,
	src trace.Source, meta trace.Meta, thBytes uint64) error {

	pipe, err := pipeline.New(pipeline.Config{
		Shards:          o.shards,
		QueueDepth:      1024,
		Overload:        o.overload,
		DegradeFraction: o.degrade,
		RestartOnPanic:  o.restart,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			alg, _, err := mkAlg(int64(shard) + 1)
			return alg, err
		},
		Definition: def,
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	var exporter *netflow.UDPExporter
	if o.export != "" {
		exporter, err = netflow.DialUDPExporter(o.export, netflow.NewExporter(def))
		if err != nil {
			return err
		}
		defer exporter.Close()
	}
	if o.listen != "" {
		debugserver.Publish("hhdevice", func() any { return pipe.Stats() })
		debugserver.RegisterHealth("pipeline", pipe.Health)
		addr, err := debugserver.Serve(o.listen)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars, /debug/pprof and /healthz on http://%s\n", addr)
	}
	fmt.Printf("sharded device: %d lanes, flows by %s, threshold %d bytes (%.4f%% of capacity), overload %s\n",
		o.shards, def.Name(), thBytes, o.threshold*100, o.overload)
	n, err := trace.Replay(src, pipe)
	if err != nil {
		return err
	}
	shardCounts := pipe.ShardCounts()
	for i, r := range pipe.Reports() {
		fmt.Printf("interval %d: %d flows reported (per shard: %v)\n", r.Interval, len(r.Estimates), shardCounts[i])
		limit := o.top
		if limit > len(r.Estimates) {
			limit = len(r.Estimates)
		}
		for _, e := range r.Estimates[:limit] {
			fmt.Printf("  %12d bytes  %s\n", e.Bytes, def.Format(e.Key))
		}
		if exporter != nil {
			uptime := time.Duration(r.Interval+1) * meta.Interval
			if err := exporter.Send(exporter.Export(r.Estimates, uptime)); err != nil {
				fmt.Fprintf(os.Stderr, "export: %v\n", err)
			}
		}
	}
	fmt.Printf("processed %d packets across %d lanes\n", n, o.shards)
	if s := pipe.Stats(); s.ShedPackets() > 0 {
		fmt.Printf("overload: %d packets shed or degraded away (policy %s)\n", s.ShedPackets(), o.overload)
	}
	return nil
}
