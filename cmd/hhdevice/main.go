// Command hhdevice runs a complete traffic measurement device over a trace
// and prints the heavy hitters it identifies per measurement interval —
// the tool a network operator would run at a vantage point.
//
// Usage:
//
//	hhdevice -alg msf -def dstIP -threshold 0.001 mag.trace
//	hhdevice -alg sh -preset MAG -scale 0.05 -adapt -entries 512 -top 5
//	hhdevice -alg sh -preset MAG -shards 4 -overload degrade -listen :8080
//	hhdevice -alg msf -preset MAG -export-tcp 127.0.0.1:2056    # spooled at-least-once export
//	hhdevice -alg msf -ab sh -preset MAG                        # A/B: race two algorithms, score agreement
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/core/device"
	"repro/internal/core/multistage"
	"repro/internal/core/sampleandhold"
	"repro/internal/debugserver"
	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/hw"
	"repro/internal/netflow"
	"repro/internal/netflow/reliable"
	"repro/internal/pipeline"
	"repro/internal/stagegraph"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// options collects the command-line configuration.
type options struct {
	algName     string
	defName     string
	threshold   float64
	entries     int
	maxEntries  int
	stages      int
	buckets     int
	hash        string
	oversamp    float64
	rate        int
	adaptive    bool
	export      string
	exportTCP   string
	spool       int
	spoolDir    string
	fsyncName   string
	exportID    uint64
	exportFault string
	drainWait   time.Duration
	heartbeat   time.Duration
	pauseWait   time.Duration
	highWater   float64
	reportPause time.Duration
	listen      string
	shards      int
	overload    pipeline.OverloadPolicy
	degrade     float64
	restart     bool
	ab          string
	top         int
	seed        int64
	preset      string
	scale       float64
	intervals   int
	args        []string
}

func main() {
	var (
		o        options
		overload string
	)
	flag.StringVar(&o.algName, "alg", "msf", "algorithm: sh, msf, netflow")
	flag.StringVar(&o.defName, "def", "5-tuple", "flow definition: 5-tuple, dstIP, ASpair")
	flag.Float64Var(&o.threshold, "threshold", 0.001, "large-flow threshold as a fraction of link capacity")
	flag.IntVar(&o.entries, "entries", 1024, "flow memory entries")
	flag.IntVar(&o.maxEntries, "max-entries", 0, "hard cap on flow memory entries (0 = no cap beyond -entries)")
	flag.IntVar(&o.stages, "stages", 4, "filter stages (msf)")
	flag.IntVar(&o.buckets, "buckets", 1024, "counters per stage (msf)")
	flag.StringVar(&o.hash, "hash", "", "stage hash family (msf): tabulation (default), multiplyshift, doublehash")
	flag.Float64Var(&o.oversamp, "oversampling", 4, "oversampling factor (sh)")
	flag.IntVar(&o.rate, "rate", 16, "sampling rate 1-in-x (netflow)")
	flag.BoolVar(&o.adaptive, "adapt", false, "enable dynamic threshold adaptation (Figure 5)")
	flag.StringVar(&o.export, "export", "", "export reports as NetFlow v5 over UDP to this address (fire-and-forget baseline)")
	flag.StringVar(&o.exportTCP, "export-tcp", "", "export reports over the spooled at-least-once TCP transport to this address")
	flag.IntVar(&o.spool, "export-spool", 0, "reliable export spool size in frames (0 = default 1024)")
	flag.StringVar(&o.spoolDir, "export-spool-dir", "", "back the reliable export spool with a durable journal in this directory; a restarted device replays unacked frames and skips reports already journaled")
	flag.StringVar(&o.fsyncName, "export-fsync", "batch", "spool journal fsync policy: frame, batch, timer, none")
	flag.Uint64Var(&o.exportID, "export-id", 0, "stable exporter ID for the reliable transport (0 = derive from wall clock; set explicitly with -export-spool-dir so restarts keep their dedup state)")
	flag.StringVar(&o.exportFault, "export-fault", "", "inject deterministic spool disk faults, e.g. shortwrite=3,syncdelay=5ms (crash-test hook)")
	flag.DurationVar(&o.drainWait, "export-drain", 0, "how long Close waits for spooled frames to be acked (0 = default 3s)")
	flag.DurationVar(&o.heartbeat, "export-heartbeat", 0, "heartbeat interval on an idle reliable TCP connection so the collector's liveness check keeps it (0 = default 10s, negative disables)")
	flag.DurationVar(&o.pauseWait, "export-pause-timeout", 0, "re-dial if the collector holds the connection paused longer than this (0 = default 30s, negative disables)")
	flag.Float64Var(&o.highWater, "export-highwater", 0, "spool occupancy fraction that raises backpressure on the measurement path (0 = default 0.75)")
	flag.DurationVar(&o.reportPause, "report-pause", 0, "pause after each exported interval report (paces single-lane replay for crash testing)")
	flag.StringVar(&o.listen, "listen", "", "serve /debug/vars, /debug/pprof and /healthz on this address while running")
	flag.IntVar(&o.shards, "shards", 0, "shard the device across this many parallel lanes (0 = auto: one lane per spare core, probed from the host topology)")
	flag.StringVar(&overload, "overload", "block", "lane overload policy: block, drop-newest, drop-oldest, degrade (sharded runs)")
	flag.Float64Var(&o.degrade, "degrade-fraction", 0, "per-packet keep probability for -overload degrade (0 = default)")
	flag.BoolVar(&o.restart, "restart-lanes", false, "restart a panicking lane with a fresh algorithm instead of quarantining it")
	flag.StringVar(&o.ab, "ab", "", "race -alg against this second algorithm on the same stream and score their agreement per interval")
	flag.IntVar(&o.top, "top", 10, "heavy hitters to print per interval")
	flag.Int64Var(&o.seed, "seed", 1, "algorithm seed")
	flag.StringVar(&o.preset, "preset", "", "run on a synthetic preset instead of a file")
	flag.Float64Var(&o.scale, "scale", 0.05, "scale factor for -preset")
	flag.IntVar(&o.intervals, "intervals", 6, "intervals for -preset")
	flag.Parse()
	o.args = flag.Args()

	policy, err := pipeline.OverloadPolicyByName(overload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhdevice:", err)
		os.Exit(1)
	}
	o.overload = policy
	if o.shards == 0 {
		// Auto-shard from the host topology: one lane per spare core.
		// Threshold adaptation is per lane and only meaningful single-lane,
		// so -adapt pins the auto answer to 1.
		if o.adaptive {
			o.shards = 1
		} else {
			topo := hw.Probe()
			o.shards = topo.DefaultShards()
			if o.shards > 1 {
				fmt.Printf("auto-sharding: %d lanes (%d CPUs, GOMAXPROCS %d); pin with -shards\n",
					o.shards, topo.NumCPU, topo.GOMAXPROCS)
			}
		}
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hhdevice:", err)
		os.Exit(1)
	}
}

func openSource(o options) (trace.Source, func() error, error) {
	if o.preset != "" {
		cfg, err := trace.Preset(o.preset)
		if err != nil {
			return nil, nil, err
		}
		cfg.Seed = o.seed
		if o.scale != 1 {
			cfg = cfg.Scaled(o.scale)
		}
		if o.intervals > 0 {
			cfg = cfg.WithIntervals(o.intervals)
		}
		g, err := trace.NewGenerator(cfg)
		return g, func() error { return nil }, err
	}
	if len(o.args) != 1 {
		return nil, nil, fmt.Errorf("need exactly one trace file or -preset")
	}
	f, err := os.Open(o.args[0])
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(o.args[0], ".pcap") {
		// Pcap captures carry no measurement metadata; assume an OC-3 link
		// with 5-second intervals covering the whole capture.
		meta := trace.Meta{
			Name:            o.args[0],
			LinkBytesPerSec: 155.52e6 / 8,
			Interval:        5 * time.Second,
			Intervals:       12,
		}
		if o.intervals > 0 {
			meta.Intervals = o.intervals
		}
		r, err := trace.NewPcapSource(f, meta)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f.Close, nil
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f.Close, nil
}

func run(o options) error {
	def := flow.DefinitionByName(o.defName)
	if def == nil {
		return fmt.Errorf("unknown flow definition %q", o.defName)
	}
	if o.hash != "" && o.algName != "msf" {
		return fmt.Errorf("-hash selects the stage hash family and only applies to -alg msf")
	}
	src, closeSrc, err := openSource(o)
	if err != nil {
		return err
	}
	defer closeSrc()
	meta := src.Meta()
	thBytes := uint64(o.threshold * meta.Capacity())
	if thBytes < 1 {
		thBytes = 1
	}

	mkAlgFor := func(algName string, algSeed int64) (core.Algorithm, *adapt.Adaptor, error) {
		var (
			alg     core.Algorithm
			adaptor *adapt.Adaptor
			err     error
		)
		switch algName {
		case "sh":
			alg, err = sampleandhold.New(sampleandhold.Config{
				Entries:      o.entries,
				MaxEntries:   o.maxEntries,
				Threshold:    thBytes,
				Oversampling: o.oversamp,
				Preserve:     true,
				EarlyRemoval: 0.15,
				Seed:         algSeed,
			})
			if o.adaptive {
				adaptor = adapt.New(adapt.SampleAndHoldDefaults())
			}
		case "msf":
			alg, err = multistage.New(multistage.Config{
				Stages:       o.stages,
				Buckets:      o.buckets,
				Entries:      o.entries,
				MaxEntries:   o.maxEntries,
				Threshold:    thBytes,
				Conservative: true,
				Shield:       true,
				Preserve:     true,
				Hash:         o.hash,
				Seed:         algSeed,
			})
			if o.adaptive {
				adaptor = adapt.New(adapt.MultistageDefaults())
			}
		case "netflow":
			alg, err = netflow.New(netflow.Config{SamplingRate: o.rate})
		default:
			err = fmt.Errorf("unknown algorithm %q (want sh, msf, netflow)", algName)
		}
		return alg, adaptor, err
	}
	mkAlg := func(algSeed int64) (core.Algorithm, *adapt.Adaptor, error) {
		return mkAlgFor(o.algName, algSeed)
	}
	if o.ab != "" {
		if o.adaptive {
			return fmt.Errorf("-ab compares fixed configurations; -adapt is not supported")
		}
		if o.export != "" || o.exportTCP != "" {
			return fmt.Errorf("-ab does not export (which side would be authoritative?)")
		}
		return runAB(o, mkAlgFor, def, src, thBytes)
	}
	if o.shards > 1 {
		return runSharded(o, mkAlg, def, src, meta, thBytes)
	}
	alg, adaptor, err := mkAlg(o.seed)
	if err != nil {
		return err
	}

	fmt.Printf("device: %s, flows by %s, threshold %d bytes (%.4f%% of capacity), %d entries\n",
		alg.Name(), def.Name(), thBytes, o.threshold*100, alg.Capacity())

	sink, err := newExportSink(o, def, meta)
	if err != nil {
		return err
	}
	defer sink.close()

	dev := device.New(alg, def, adaptor)
	dev.KeepReports = false
	dev.SetExportTelemetry(sink.telemetry())
	dev.OnReport = func(r device.IntervalReport) {
		fmt.Printf("interval %d: threshold %d bytes, %d/%d entries used, %d flows reported\n",
			r.Interval, r.Threshold, r.EntriesUsed, alg.Capacity(), len(r.Estimates))
		printTop(r.Estimates, o.top, def, true)
		sink.send(r)
		if o.reportPause > 0 {
			time.Sleep(o.reportPause)
		}
	}
	if o.listen != "" {
		debugserver.Publish("hhdevice", func() any { return dev.Stats() })
		debugserver.RegisterHealth("device", func() (telemetry.HealthStatus, string) {
			return dev.Stats().Health()
		})
		sink.registerHealth()
		addr, err := debugserver.Serve(o.listen)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars, /debug/pprof and /healthz on http://%s\n", addr)
	}
	// SIGINT/SIGTERM ends the replay at the next batch boundary; the export
	// spool is then drained and the journal fsynced before exit, so a
	// graceful stop loses nothing and a durable spool carries the backlog
	// into the next start.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	interrupted := func() bool {
		select {
		case <-sig:
			return true
		default:
			return false
		}
	}
	n, err := trace.Replay(src, dev, trace.WithStop(interrupted))
	stopped := errors.Is(err, trace.ErrStopped)
	if err != nil && !stopped {
		return err
	}
	if stopped {
		fmt.Printf("\ninterrupted after %d packets: draining export spool\n", n)
	}
	mem := alg.Mem()
	fmt.Printf("processed %d packets, %.2f memory references/packet\n", n, mem.PerPacket())
	sink.close()
	sink.summary()
	return nil
}

// printTop prints the first n estimates of a report, the shared half of
// both run paths' per-interval output.
func printTop(ests []core.Estimate, n int, def flow.Definition, markExact bool) {
	if n > len(ests) {
		n = len(ests)
	}
	for _, e := range ests[:n] {
		mark := ""
		if markExact && e.Exact {
			mark = " (exact)"
		}
		fmt.Printf("  %12d bytes%s  %s\n", e.Bytes, mark, def.Format(e.Key))
	}
}

// exportSink is the one export path shared by the single-lane and sharded
// runs: it encodes each interval report as NetFlow v5 and ships it over
// the configured transport — fire-and-forget UDP (the paper's baseline) or
// the spooled at-least-once TCP transport — counting outcomes in telemetry
// rather than only printing to stderr. A nil sink (no export requested)
// no-ops everywhere.
type exportSink struct {
	enc      *netflow.Exporter
	udp      *netflow.UDPExporter
	tcp      *reliable.Exporter
	tel      *telemetry.Export
	interval time.Duration
	addr     string
	spoolDir string
	closed   bool

	// skip is the number of leading interval reports a previous process
	// life already committed to the journal; replaying the same trace, the
	// sink drops those (their frames are either already acked or sitting in
	// the recovered backlog) so a restart cannot double-export.
	skip      uint64
	reports   uint64
	unflushed int
}

// newExportSink builds the sink for o, or nil when no export is requested.
func newExportSink(o options, def flow.Definition, meta trace.Meta) (*exportSink, error) {
	if o.export == "" && o.exportTCP == "" {
		return nil, nil
	}
	if o.export != "" && o.exportTCP != "" {
		return nil, fmt.Errorf("-export and -export-tcp are mutually exclusive")
	}
	s := &exportSink{
		enc:      netflow.NewExporter(def),
		tel:      new(telemetry.Export),
		interval: meta.Interval,
	}
	if o.export != "" {
		udp, err := netflow.DialUDPExporter(o.export, s.enc)
		if err != nil {
			return nil, err
		}
		s.udp, s.addr = udp, o.export
		return s, nil
	}
	id := o.exportID
	if id == 0 {
		// The ID only has to distinguish concurrent exporters at one
		// collector; wall-clock nanoseconds (forced odd, hence non-zero) do.
		id = uint64(time.Now().UnixNano()) | 1
	}
	cfg := reliable.ExporterConfig{
		Addr:              o.exportTCP,
		ExporterID:        id,
		SpoolFrames:       o.spool,
		Seed:              o.seed,
		DrainTimeout:      o.drainWait,
		SpoolDir:          o.spoolDir,
		HeartbeatInterval: o.heartbeat,
		PauseTimeout:      o.pauseWait,
		SpoolHighWater:    o.highWater,
	}
	if o.spoolDir != "" {
		pol, err := reliable.FsyncPolicyByName(o.fsyncName)
		if err != nil {
			return nil, err
		}
		cfg.Fsync = pol
		if o.exportFault != "" {
			sched, err := faultinject.ParseWriterSchedule(o.exportFault)
			if err != nil {
				return nil, err
			}
			cfg.SpoolWrap = func(f reliable.SpoolFile) reliable.SpoolFile {
				return faultinject.NewWriter(f, sched)
			}
		}
	}
	tcp, err := reliable.NewExporter(cfg, s.tel)
	if err != nil {
		return nil, err
	}
	s.tcp, s.addr, s.spoolDir = tcp, o.exportTCP, o.spoolDir
	if rec := tcp.Recovered(); o.spoolDir != "" && (rec.Frames > 0 || rec.LastReport > 0) {
		s.skip = rec.LastReport
		fmt.Printf("export: recovered %d journaled frames (%d torn records truncated, %d discarded), resuming after report %d\n",
			rec.Frames, rec.TornRecords, rec.Discarded, rec.LastReport)
	}
	return s, nil
}

// telemetry returns the sink's counters (nil for a nil sink), for attaching
// to the device or pipeline snapshot.
func (s *exportSink) telemetry() *telemetry.Export {
	if s == nil {
		return nil
	}
	return s.tel
}

// overloaded reports export-spool backpressure — the reliable spool above
// its high-water mark. A nil sink or a fire-and-forget UDP sink is never
// overloaded.
func (s *exportSink) overloaded() bool {
	return s != nil && s.tcp != nil && s.tcp.Overloaded()
}

// send encodes and ships one interval report. Failures are counted in
// telemetry (and echoed to stderr for the interactive case); the run
// continues.
func (s *exportSink) send(r core.IntervalReport) {
	if s == nil {
		return
	}
	uptime := time.Duration(r.Interval+1) * s.interval
	if s.tcp != nil {
		// Replays are deterministic from the start of the trace, so interval
		// reports a previous life journaled (committed) are skipped rather
		// than re-enqueued under fresh sequence numbers.
		if s.reports++; s.reports <= s.skip {
			return
		}
		s.tcp.Enqueue(s.enc.Export(r.Estimates, uptime))
		return
	}
	pkts := s.enc.Export(r.Estimates, uptime)
	var bytes uint64
	for _, p := range pkts {
		bytes += uint64(len(p))
	}
	s.tel.ObserveReport(len(pkts), bytes)
	if err := s.udp.Send(pkts); err != nil {
		s.tel.ObserveSendError()
		s.tel.ObserveFramesDropped(uint64(len(pkts)))
		s.tel.ObserveReportDropped()
		fmt.Fprintf(os.Stderr, "export: %v\n", err)
		return
	}
	s.tel.ObserveSent(uint64(len(pkts)))
}

// close tears the transport down; the reliable path drains its spool first.
// Idempotent, so it can both be deferred and called before summary.
func (s *exportSink) close() {
	if s == nil || s.closed {
		return
	}
	s.closed = true
	var err error
	if s.tcp != nil {
		err = s.tcp.Close()
		s.unflushed = s.tcp.Backlog()
	} else {
		err = s.udp.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "export: %v\n", err)
	}
}

// summary prints the export volume and reliability counters after a run.
func (s *exportSink) summary() {
	if s == nil {
		return
	}
	st := s.tel.Snapshot()
	fmt.Printf("exported %d v5 packets, %d bytes to %s\n", s.enc.PacketsSent, s.enc.BytesSent, s.addr)
	if s.tcp != nil {
		fmt.Printf("export: %d acked, %d redelivered, %d reconnects, %d frames dropped (spool high-water %d)\n",
			st.Acked, st.Redelivered, st.Reconnects, st.FramesDropped, st.SpoolHighWater)
		if s.spoolDir != "" {
			ds := s.tcp.Durability().Snapshot()
			fmt.Printf("journal: %d appends (%d bytes), %d fsyncs, %d rotations, %d truncations, %d errors\n",
				ds.Appends, ds.AppendBytes, ds.Fsyncs, ds.Rotations, ds.Truncations, ds.JournalErrors)
			fmt.Printf("drain: %d frames unflushed at exit (journaled in %s; redelivered next start)\n",
				s.unflushed, s.spoolDir)
		} else if s.unflushed > 0 {
			fmt.Printf("drain: %d frames unflushed at exit (memory spool; lost)\n", s.unflushed)
		}
	} else if st.ExportErrors > 0 {
		fmt.Printf("export: %d send errors, %d reports dropped\n", st.ExportErrors, st.ReportsDropped)
	}
}

// registerHealth exposes the export path on /healthz next to the device.
func (s *exportSink) registerHealth() {
	if s == nil {
		return
	}
	debugserver.RegisterHealth("export", func() (telemetry.HealthStatus, string) {
		return s.tel.Snapshot().Health()
	})
	if s.tcp != nil && s.spoolDir != "" {
		debugserver.Publish("export_durability", func() any {
			return struct {
				Recovery reliable.RecoveryInfo     `json:"recovery"`
				Journal  telemetry.DurableSnapshot `json:"journal"`
			}{s.tcp.Recovered(), s.tcp.Durability().Snapshot()}
		})
		debugserver.RegisterHealth("export-journal", func() (telemetry.HealthStatus, string) {
			return s.tcp.Durability().Snapshot().Health()
		})
	}
}

// runAB races the primary algorithm (side "a") against a second one (side
// "b") on the same packet stream through an A/B stage graph, scoring their
// per-interval agreement with a compare stage — the quickest way to answer
// "would sample-and-hold have caught the same heavy hitters as the filter?"
// on a real trace.
func runAB(o options, mkAlgFor func(string, int64) (core.Algorithm, *adapt.Adaptor, error),
	def flow.Definition, src trace.Source, thBytes uint64) error {

	shards := o.shards
	if shards < 1 {
		shards = 1
	}
	mkCfg := func(algName string, seedBase int64) stagegraph.MeasureConfig {
		return stagegraph.MeasureConfig{
			Shards:          shards,
			QueueDepth:      1024,
			Overload:        o.overload,
			DegradeFraction: o.degrade,
			RestartOnPanic:  o.restart,
			NewAlgorithm: func(shard int) (core.Algorithm, error) {
				alg, _, err := mkAlgFor(algName, seedBase+int64(shard))
				return alg, err
			},
			Definition: def,
			Seed:       o.seed,
		}
	}
	topo := stagegraph.PresetAB(mkCfg(o.algName, o.seed+1), mkCfg(o.ab, o.seed+501), o.top)

	// Tap the compare stage's events; the graph supervises the tap like any
	// other async stage, and Close drains it before collect is read.
	var (
		mu      sync.Mutex
		results []stagegraph.CompareResult
	)
	topo.Nodes = append(topo.Nodes, stagegraph.Node{
		Name: "tap",
		Stage: stagegraph.NewFunc("tap",
			[]stagegraph.Port{{Name: "in", Type: stagegraph.EventPort}}, nil,
			func(in stagegraph.Inbound, _ stagegraph.EmitFunc) error {
				if in.Msg.Event != nil {
					if res, ok := in.Msg.Event.Payload.(stagegraph.CompareResult); ok {
						mu.Lock()
						results = append(results, res)
						mu.Unlock()
					}
				}
				return nil
			}),
	})
	topo.Edges = append(topo.Edges, stagegraph.Edge{From: "compare.events", To: "tap.in"})

	g, err := stagegraph.New(stagegraph.Config{Topology: topo})
	if err != nil {
		return err
	}
	defer g.Close()

	fmt.Printf("A/B device: %s (a) vs %s (b), flows by %s, threshold %d bytes (%.4f%% of capacity), %d shard(s)\n",
		o.algName, o.ab, def.Name(), thBytes, o.threshold*100, shards)
	n, err := trace.Replay(src, g)
	if err != nil {
		return err
	}
	g.Close() // drain the ops plane so every comparison has arrived

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(results, func(i, j int) bool { return results[i].Interval < results[j].Interval })
	for _, r := range results {
		fmt.Printf("interval %d: a=%d flows, b=%d flows, %d common, top-%d overlap %.0f%%, avg rel diff %.2f%%\n",
			r.Interval, r.FlowsA, r.FlowsB, r.CommonFlows, r.K, 100*r.TopKOverlap, 100*r.AvgRelDiff)
	}
	fmt.Printf("processed %d packets through both sides\n", n)
	return nil
}

// runSharded drives the trace through an RSS-style pipeline of independent
// per-shard algorithm instances (threshold adaptation is per shard and
// therefore disabled here; use a single lane for adaptive runs).
func runSharded(o options, mkAlg func(int64) (core.Algorithm, *adapt.Adaptor, error), def flow.Definition,
	src trace.Source, meta trace.Meta, thBytes uint64) error {

	pipe, err := pipeline.New(pipeline.Config{
		Shards:          o.shards,
		QueueDepth:      1024,
		Overload:        o.overload,
		DegradeFraction: o.degrade,
		RestartOnPanic:  o.restart,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			alg, _, err := mkAlg(int64(shard) + 1)
			return alg, err
		},
		Definition: def,
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	sink, err := newExportSink(o, def, meta)
	if err != nil {
		return err
	}
	defer sink.close()
	pipe.SetExportTelemetry(sink.telemetry())
	// Export-path backpressure closes the loop from collector to packet
	// path: a spool above its high-water mark makes the Degrade policy thin
	// batches at the measurement input.
	pipe.SetPressure(sink.overloaded)
	if o.listen != "" {
		debugserver.Publish("hhdevice", func() any { return pipe.Stats() })
		debugserver.RegisterHealth("pipeline", pipe.Health)
		sink.registerHealth()
		addr, err := debugserver.Serve(o.listen)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars, /debug/pprof and /healthz on http://%s\n", addr)
	}
	fmt.Printf("sharded device: %d lanes, flows by %s, threshold %d bytes (%.4f%% of capacity), overload %s\n",
		o.shards, def.Name(), thBytes, o.threshold*100, o.overload)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	n, err := trace.Replay(src, pipe, trace.WithStop(func() bool {
		select {
		case <-sig:
			return true
		default:
			return false
		}
	}))
	if errors.Is(err, trace.ErrStopped) {
		fmt.Printf("\ninterrupted after %d packets: reporting completed intervals, draining export spool\n", n)
	} else if err != nil {
		return err
	}
	shardCounts := pipe.ShardCounts()
	for i, r := range pipe.Reports() {
		fmt.Printf("interval %d: %d flows reported (per shard: %v)\n", r.Interval, len(r.Estimates), shardCounts[i])
		printTop(r.Estimates, o.top, def, false)
		sink.send(r)
	}
	fmt.Printf("processed %d packets across %d lanes\n", n, o.shards)
	if s := pipe.Stats(); s.ShedPackets() > 0 {
		fmt.Printf("overload: %d packets shed or degraded away (policy %s)\n", s.ShedPackets(), o.overload)
	}
	sink.close()
	sink.summary()
	return nil
}
