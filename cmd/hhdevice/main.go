// Command hhdevice runs a complete traffic measurement device over a trace
// and prints the heavy hitters it identifies per measurement interval —
// the tool a network operator would run at a vantage point.
//
// Usage:
//
//	hhdevice -alg msf -def dstIP -threshold 0.001 mag.trace
//	hhdevice -alg sh -preset MAG -scale 0.05 -adapt -entries 512 -top 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/core/device"
	"repro/internal/core/multistage"
	"repro/internal/core/sampleandhold"
	"repro/internal/debugserver"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func main() {
	var (
		algName   = flag.String("alg", "msf", "algorithm: sh, msf, netflow")
		defName   = flag.String("def", "5-tuple", "flow definition: 5-tuple, dstIP, ASpair")
		threshold = flag.Float64("threshold", 0.001, "large-flow threshold as a fraction of link capacity")
		entries   = flag.Int("entries", 1024, "flow memory entries")
		stages    = flag.Int("stages", 4, "filter stages (msf)")
		buckets   = flag.Int("buckets", 1024, "counters per stage (msf)")
		oversamp  = flag.Float64("oversampling", 4, "oversampling factor (sh)")
		rate      = flag.Int("rate", 16, "sampling rate 1-in-x (netflow)")
		adaptive  = flag.Bool("adapt", false, "enable dynamic threshold adaptation (Figure 5)")
		export    = flag.String("export", "", "export reports as NetFlow v5 over UDP to this address")
		listen    = flag.String("listen", "", "serve /debug/vars and /debug/pprof on this address while running")
		shards    = flag.Int("shards", 1, "shard the device across this many parallel lanes")
		top       = flag.Int("top", 10, "heavy hitters to print per interval")
		seed      = flag.Int64("seed", 1, "algorithm seed")

		preset    = flag.String("preset", "", "run on a synthetic preset instead of a file")
		scale     = flag.Float64("scale", 0.05, "scale factor for -preset")
		intervals = flag.Int("intervals", 6, "intervals for -preset")
	)
	flag.Parse()
	if err := run(*algName, *defName, *threshold, *entries, *stages, *buckets,
		*oversamp, *rate, *adaptive, *export, *listen, *shards, *top, *seed, *preset, *scale, *intervals, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "hhdevice:", err)
		os.Exit(1)
	}
}

func openSource(preset string, scale float64, intervals int, seed int64, args []string) (trace.Source, func() error, error) {
	if preset != "" {
		cfg, err := trace.Preset(preset)
		if err != nil {
			return nil, nil, err
		}
		cfg.Seed = seed
		if scale != 1 {
			cfg = cfg.Scaled(scale)
		}
		if intervals > 0 {
			cfg = cfg.WithIntervals(intervals)
		}
		g, err := trace.NewGenerator(cfg)
		return g, func() error { return nil }, err
	}
	if len(args) != 1 {
		return nil, nil, fmt.Errorf("need exactly one trace file or -preset")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(args[0], ".pcap") {
		// Pcap captures carry no measurement metadata; assume an OC-3 link
		// with 5-second intervals covering the whole capture.
		meta := trace.Meta{
			Name:            args[0],
			LinkBytesPerSec: 155.52e6 / 8,
			Interval:        5 * time.Second,
			Intervals:       12,
		}
		if intervals > 0 {
			meta.Intervals = intervals
		}
		r, err := trace.NewPcapSource(f, meta)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f.Close, nil
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f.Close, nil
}

func run(algName, defName string, threshold float64, entries, stages, buckets int,
	oversamp float64, rate int, adaptive bool, export, listen string, shards, top int, seed int64,
	preset string, scale float64, intervals int, args []string) error {

	def := flow.DefinitionByName(defName)
	if def == nil {
		return fmt.Errorf("unknown flow definition %q", defName)
	}
	src, closeSrc, err := openSource(preset, scale, intervals, seed, args)
	if err != nil {
		return err
	}
	defer closeSrc()
	meta := src.Meta()
	thBytes := uint64(threshold * meta.Capacity())
	if thBytes < 1 {
		thBytes = 1
	}

	mkAlg := func(algSeed int64) (core.Algorithm, *adapt.Adaptor, error) {
		var (
			alg     core.Algorithm
			adaptor *adapt.Adaptor
			err     error
		)
		switch algName {
		case "sh":
			alg, err = sampleandhold.New(sampleandhold.Config{
				Entries:      entries,
				Threshold:    thBytes,
				Oversampling: oversamp,
				Preserve:     true,
				EarlyRemoval: 0.15,
				Seed:         algSeed,
			})
			if adaptive {
				adaptor = adapt.New(adapt.SampleAndHoldDefaults())
			}
		case "msf":
			alg, err = multistage.New(multistage.Config{
				Stages:       stages,
				Buckets:      buckets,
				Entries:      entries,
				Threshold:    thBytes,
				Conservative: true,
				Shield:       true,
				Preserve:     true,
				Seed:         algSeed,
			})
			if adaptive {
				adaptor = adapt.New(adapt.MultistageDefaults())
			}
		case "netflow":
			alg, err = netflow.New(netflow.Config{SamplingRate: rate})
		default:
			err = fmt.Errorf("unknown algorithm %q (want sh, msf, netflow)", algName)
		}
		return alg, adaptor, err
	}
	if shards > 1 {
		return runSharded(mkAlg, def, src, meta, thBytes, threshold, export, listen, shards, top)
	}
	alg, adaptor, err := mkAlg(seed)
	if err != nil {
		return err
	}

	fmt.Printf("device: %s, flows by %s, threshold %d bytes (%.4f%% of capacity), %d entries\n",
		alg.Name(), def.Name(), thBytes, threshold*100, alg.Capacity())

	var exporter *netflow.UDPExporter
	if export != "" {
		exporter, err = netflow.DialUDPExporter(export, netflow.NewExporter(def))
		if err != nil {
			return err
		}
		defer exporter.Close()
	}

	dev := device.New(alg, def, adaptor)
	dev.KeepReports = false
	dev.OnReport = func(r device.IntervalReport) {
		fmt.Printf("interval %d: threshold %d bytes, %d/%d entries used, %d flows reported\n",
			r.Interval, r.Threshold, r.EntriesUsed, alg.Capacity(), len(r.Estimates))
		n := top
		if n > len(r.Estimates) {
			n = len(r.Estimates)
		}
		for _, e := range r.Estimates[:n] {
			exactMark := ""
			if e.Exact {
				exactMark = " (exact)"
			}
			fmt.Printf("  %12d bytes%s  %s\n", e.Bytes, exactMark, def.Format(e.Key))
		}
		if exporter != nil {
			uptime := time.Duration(r.Interval+1) * meta.Interval
			if err := exporter.Send(exporter.Export(r.Estimates, uptime)); err != nil {
				fmt.Fprintf(os.Stderr, "export: %v\n", err)
			}
		}
	}
	if listen != "" {
		debugserver.Publish("hhdevice", func() any { return dev.Stats() })
		addr, err := debugserver.Serve(listen)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars and /debug/pprof on http://%s\n", addr)
	}
	n, err := trace.Replay(src, dev)
	if err != nil {
		return err
	}
	mem := alg.Mem()
	fmt.Printf("processed %d packets, %.2f memory references/packet\n", n, mem.PerPacket())
	if exporter != nil {
		fmt.Printf("exported %d v5 packets, %d bytes to %s\n", exporter.PacketsSent, exporter.BytesSent, export)
	}
	return nil
}

// runSharded drives the trace through an RSS-style pipeline of independent
// per-shard algorithm instances (threshold adaptation is per shard and
// therefore disabled here; use a single lane for adaptive runs).
func runSharded(mkAlg func(int64) (core.Algorithm, *adapt.Adaptor, error), def flow.Definition,
	src trace.Source, meta trace.Meta, thBytes uint64, threshold float64,
	export, listen string, shards, top int) error {

	pipe, err := pipeline.New(pipeline.Config{
		Shards:     shards,
		QueueDepth: 1024,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			alg, _, err := mkAlg(int64(shard) + 1)
			return alg, err
		},
		Definition: def,
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	var exporter *netflow.UDPExporter
	if export != "" {
		exporter, err = netflow.DialUDPExporter(export, netflow.NewExporter(def))
		if err != nil {
			return err
		}
		defer exporter.Close()
	}
	if listen != "" {
		debugserver.Publish("hhdevice", func() any { return pipe.Stats() })
		addr, err := debugserver.Serve(listen)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars and /debug/pprof on http://%s\n", addr)
	}
	fmt.Printf("sharded device: %d lanes, flows by %s, threshold %d bytes (%.4f%% of capacity)\n",
		shards, def.Name(), thBytes, threshold*100)
	n, err := trace.Replay(src, pipe)
	if err != nil {
		return err
	}
	shardCounts := pipe.ShardCounts()
	for i, r := range pipe.Reports() {
		fmt.Printf("interval %d: %d flows reported (per shard: %v)\n", r.Interval, len(r.Estimates), shardCounts[i])
		limit := top
		if limit > len(r.Estimates) {
			limit = len(r.Estimates)
		}
		for _, e := range r.Estimates[:limit] {
			fmt.Printf("  %12d bytes  %s\n", e.Bytes, def.Format(e.Key))
		}
		if exporter != nil {
			uptime := time.Duration(r.Interval+1) * meta.Interval
			if err := exporter.Send(exporter.Export(r.Estimates, uptime)); err != nil {
				fmt.Fprintf(os.Stderr, "export: %v\n", err)
			}
		}
	}
	fmt.Printf("processed %d packets across %d lanes\n", n, shards)
	return nil
}
