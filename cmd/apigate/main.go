// Command apigate guards the public API of the traffic facade: it extracts
// every exported declaration from a package into a normalized, sorted
// listing and compares it against a committed baseline. Removing or
// changing an existing declaration fails the gate (that is a breaking
// change for every importer); adding new API is allowed and merely
// reported, with -update rewriting the baseline.
//
// Usage:
//
//	apigate                 # check . against API_BASELINE.txt
//	apigate -update         # accept the current API as the new baseline
//	apigate -dir ./sub -baseline sub/API.txt
//
// The extraction is purely syntactic (go/ast), so the gate needs no build
// and no dependencies: parameter names, comments and unexported
// declarations are ignored; types are printed as written in the source.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		dir      = flag.String("dir", ".", "package directory to extract the API from")
		baseline = flag.String("baseline", "API_BASELINE.txt", "baseline file to compare against")
		update   = flag.Bool("update", false, "rewrite the baseline with the current API")
	)
	flag.Parse()
	code, err := run(*dir, *baseline, *update, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apigate:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the gate and returns the process exit code.
func run(dir, baseline string, update bool, out *os.File) (int, error) {
	current, err := extract(dir)
	if err != nil {
		return 1, err
	}
	if update {
		if err := writeBaseline(baseline, current); err != nil {
			return 1, err
		}
		fmt.Fprintf(out, "apigate: baseline %s updated, %d declarations\n", baseline, len(current))
		return 0, nil
	}
	old, err := readBaseline(baseline)
	if err != nil {
		return 1, fmt.Errorf("%w (run with -update to create the baseline)", err)
	}
	removed, added := diff(old, current)
	for _, l := range added {
		fmt.Fprintf(out, "apigate: new API (allowed): %s\n", l)
	}
	for _, l := range removed {
		fmt.Fprintf(out, "apigate: BREAKING: removed or changed: %s\n", l)
	}
	if len(removed) > 0 {
		fmt.Fprintf(out, "apigate: %d breaking change(s); if intentional, rerun with -update and call it out in the change description\n", len(removed))
		return 1, nil
	}
	fmt.Fprintf(out, "apigate: ok, %d declarations (%d new)\n", len(current), len(added))
	return 0, nil
}

// extract parses the package in dir (test files excluded) and returns one
// normalized line per exported declaration, sorted.
func extract(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(decl)...)
			}
		}
	}
	sort.Strings(lines)
	// The same declaration cannot legally appear twice in one package, but
	// dedup anyway so a parse oddity can't produce phantom diffs.
	return dedup(lines), nil
}

// declLines renders one top-level declaration's exported surface.
func declLines(decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv := typeString(d.Recv.List[0].Type)
			if !exportedType(recv) {
				return nil
			}
			return []string{fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, signature(d.Type))}
		}
		return []string{fmt.Sprintf("func %s%s", d.Name.Name, signature(d.Type))}
	case *ast.GenDecl:
		var lines []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					lines = append(lines, typeLines(s)...)
				}
			case *ast.ValueSpec:
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, name := range s.Names {
					if name.IsExported() {
						l := kind + " " + name.Name
						if s.Type != nil {
							l += " " + typeString(s.Type)
						}
						lines = append(lines, l)
					}
				}
			}
		}
		return lines
	}
	return nil
}

// typeLines renders a type declaration: its own line plus one line per
// exported struct field or interface method, so changing a field type or
// removing a method is caught as precisely as removing the type.
func typeLines(s *ast.TypeSpec) []string {
	name := s.Name.Name
	if s.Assign != token.NoPos {
		return []string{fmt.Sprintf("type %s = %s", name, typeString(s.Type))}
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		lines := []string{"type " + name + " struct"}
		for _, f := range t.Fields.List {
			ft := typeString(f.Type)
			if len(f.Names) == 0 { // embedded
				if exportedType(ft) {
					lines = append(lines, fmt.Sprintf("field %s.%s (embedded)", name, ft))
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					lines = append(lines, fmt.Sprintf("field %s.%s %s", name, fn.Name, ft))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{"type " + name + " interface"}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				lines = append(lines, fmt.Sprintf("ifacemethod %s.%s (embedded)", name, typeString(m.Type)))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					lines = append(lines, fmt.Sprintf("ifacemethod %s.%s%s", name, mn.Name, signature(ft)))
				}
			}
		}
		return lines
	default:
		return []string{fmt.Sprintf("type %s %s", name, typeString(s.Type))}
	}
}

// signature renders a function type with parameter names stripped —
// renaming a parameter is not an API change.
func signature(ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteString("(")
	writeFieldTypes(&b, ft.Params)
	b.WriteString(")")
	if ft.Results != nil && len(ft.Results.List) > 0 {
		if len(ft.Results.List) == 1 && len(ft.Results.List[0].Names) == 0 {
			b.WriteString(" " + typeString(ft.Results.List[0].Type))
		} else {
			b.WriteString(" (")
			writeFieldTypes(&b, ft.Results)
			b.WriteString(")")
		}
	}
	return b.String()
}

// writeFieldTypes writes a comma-separated type list, repeating the type
// for grouped parameters ("a, b int" → "int, int").
func writeFieldTypes(b *strings.Builder, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(typeString(f.Type))
		}
	}
}

// typeString renders a type expression as written in the source.
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.ArrayType:
		if t.Len == nil {
			return "[]" + typeString(t.Elt)
		}
		return "[" + typeString(t.Len) + "]" + typeString(t.Elt)
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	case *ast.MapType:
		return "map[" + typeString(t.Key) + "]" + typeString(t.Value)
	case *ast.ChanType:
		switch t.Dir {
		case ast.RECV:
			return "<-chan " + typeString(t.Value)
		case ast.SEND:
			return "chan<- " + typeString(t.Value)
		}
		return "chan " + typeString(t.Value)
	case *ast.FuncType:
		return "func" + signature(t)
	case *ast.InterfaceType:
		if len(t.Methods.List) == 0 {
			return "interface{}"
		}
		var parts []string
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				parts = append(parts, typeString(m.Type))
				continue
			}
			for _, mn := range m.Names {
				if ft, ok := m.Type.(*ast.FuncType); ok {
					parts = append(parts, mn.Name+signature(ft))
				}
			}
		}
		return "interface{ " + strings.Join(parts, "; ") + " }"
	case *ast.StructType:
		var parts []string
		for _, f := range t.Fields.List {
			ft := typeString(f.Type)
			if len(f.Names) == 0 {
				parts = append(parts, ft)
				continue
			}
			for _, fn := range f.Names {
				parts = append(parts, fn.Name+" "+ft)
			}
		}
		return "struct{ " + strings.Join(parts, "; ") + " }"
	case *ast.BasicLit:
		return t.Value
	case *ast.ParenExpr:
		return "(" + typeString(t.X) + ")"
	case *ast.IndexExpr: // generic instantiation
		return typeString(t.X) + "[" + typeString(t.Index) + "]"
	}
	return fmt.Sprintf("<%T>", e)
}

// exportedType reports whether a receiver or embedded type name (possibly
// "*T" or "pkg.T") is exported.
func exportedType(name string) bool {
	name = strings.TrimPrefix(name, "*")
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return ast.IsExported(name)
}

// dedup removes adjacent duplicates from a sorted slice.
func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, l := range sorted {
		if i == 0 || l != sorted[i-1] {
			out = append(out, l)
		}
	}
	return out
}

// readBaseline loads a baseline file, ignoring blank lines and # comments.
func readBaseline(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return dedup(lines), nil
}

// writeBaseline writes the baseline with a short header.
func writeBaseline(path string, lines []string) error {
	var b strings.Builder
	b.WriteString("# Public API baseline for the traffic facade, one line per exported\n")
	b.WriteString("# declaration. Maintained by cmd/apigate: `go run ./cmd/apigate` checks\n")
	b.WriteString("# the current API against this file and fails on removals or changes;\n")
	b.WriteString("# `go run ./cmd/apigate -update` accepts the current API.\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// diff returns baseline lines missing from current (removed/changed) and
// current lines missing from the baseline (added). Both inputs are sorted.
func diff(old, current []string) (removed, added []string) {
	cur := make(map[string]bool, len(current))
	for _, l := range current {
		cur[l] = true
	}
	oldSet := make(map[string]bool, len(old))
	for _, l := range old {
		oldSet[l] = true
		if !cur[l] {
			removed = append(removed, l)
		}
	}
	for _, l := range current {
		if !oldSet[l] {
			added = append(added, l)
		}
	}
	return removed, added
}
