package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writePkg lays a single-file package down in a temp dir.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const testSrc = `package demo

import "io"

const Answer = 42
const hidden = 1

var Default io.Writer

// Config is exported with a mixed field set.
type Config struct {
	Entries int
	names   []string
	Nested  map[string][]byte
}

type Alias = Config

type Reader interface {
	Read(p []byte) (int, error)
	io.Closer
}

type count int

func New(cfg Config, opts ...func(*Config)) (*Config, error) { return nil, nil }

func (c *Config) Validate() error { return nil }

func (c count) String() string { return "" }

func internal() {}
`

func TestExtract(t *testing.T) {
	dir := writePkg(t, testSrc)
	lines, err := extract(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"const Answer",
		"field Config.Entries int",
		"field Config.Nested map[string][]byte",
		"func New(Config, ...func(*Config)) (*Config, error)",
		"ifacemethod Reader.Read([]byte) (int, error)",
		"ifacemethod Reader.io.Closer (embedded)",
		"method (*Config) Validate() error",
		"type Alias = Config",
		"type Config struct",
		"type Reader interface",
		"var Default io.Writer",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("extracted API:\n  got:  %q\n  want: %q", lines, want)
	}
}

func TestDiff(t *testing.T) {
	old := []string{"a", "b", "c"}
	cur := []string{"a", "c", "d"}
	removed, added := diff(old, cur)
	if !reflect.DeepEqual(removed, []string{"b"}) || !reflect.DeepEqual(added, []string{"d"}) {
		t.Errorf("removed=%q added=%q", removed, added)
	}
}

func TestGateRoundTrip(t *testing.T) {
	dir := writePkg(t, testSrc)
	baseline := filepath.Join(t.TempDir(), "API.txt")

	// No baseline yet: the check fails with a pointer at -update.
	if code, err := run(dir, baseline, false, os.Stdout); err == nil || code != 1 {
		t.Fatalf("missing baseline: code=%d err=%v", code, err)
	}
	// -update creates it; a clean check passes.
	if code, err := run(dir, baseline, true, os.Stdout); err != nil || code != 0 {
		t.Fatalf("update: code=%d err=%v", code, err)
	}
	if code, err := run(dir, baseline, false, os.Stdout); err != nil || code != 0 {
		t.Fatalf("clean check: code=%d err=%v", code, err)
	}

	// Additions are allowed.
	grown := strings.Replace(testSrc, "func internal() {}",
		"func internal() {}\n\nfunc Extra() {}\n", 1)
	if code, err := run(writePkg(t, grown), baseline, false, os.Stdout); err != nil || code != 0 {
		t.Fatalf("addition rejected: code=%d err=%v", code, err)
	}

	// Removals break the gate.
	shrunk := strings.Replace(testSrc, "const Answer = 42", "", 1)
	if code, err := run(writePkg(t, shrunk), baseline, false, os.Stdout); err != nil || code != 1 {
		t.Fatalf("removal passed: code=%d err=%v", code, err)
	}

	// Signature changes read as removed+added, so they break too.
	changed := strings.Replace(testSrc, "func (c *Config) Validate() error",
		"func (c *Config) Validate(strict bool) error", 1)
	if code, err := run(writePkg(t, changed), baseline, false, os.Stdout); err != nil || code != 1 {
		t.Fatalf("signature change passed: code=%d err=%v", code, err)
	}
}

// TestExtractFacade runs the extractor over the real traffic facade: it
// must parse and yield a non-trivial API including the known anchors.
func TestExtractFacade(t *testing.T) {
	lines, err := extract("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 50 {
		t.Fatalf("facade API has %d lines, expected a substantial surface", len(lines))
	}
	wantAnchors := []string{
		"func NewPipeline(PipelineConfig, ...PipelineOption) (*Pipeline, error)",
		"func NewStageGraph(StageGraphConfig, ...StageGraphOption) (*StageGraph, error)",
		"func Replay(Source, Consumer, ...ReplayOption) (int, error)",
	}
	have := make(map[string]bool, len(lines))
	for _, l := range lines {
		have[l] = true
	}
	for _, a := range wantAnchors {
		if !have[a] {
			t.Errorf("facade API missing anchor %q", a)
		}
	}
}
