// Command tracegen generates synthetic traffic traces calibrated to the
// paper's Table 3 and writes them to this library's compact binary format
// or to a pcap file readable by standard tools.
//
// Usage:
//
//	tracegen -preset MAG -scale 0.05 -intervals 18 -o mag.trace
//	tracegen -preset COS -scale 0.1 -pcap -o cos.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/pcap"
	"repro/internal/trace"
)

func main() {
	var (
		preset    = flag.String("preset", "MAG", "trace preset: MAG+, MAG, IND, COS")
		scale     = flag.Float64("scale", 0.05, "scale factor (1 = paper scale)")
		intervals = flag.Int("intervals", 0, "override number of measurement intervals")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("o", "", "output file (required)")
		asPcap    = flag.Bool("pcap", false, "write a pcap capture instead of the native format")
	)
	flag.Parse()
	if err := run(*preset, *scale, *intervals, *seed, *out, *asPcap); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(preset string, scale float64, intervals int, seed int64, out string, asPcap bool) error {
	if out == "" {
		return fmt.Errorf("missing -o output file")
	}
	cfg, err := trace.Preset(preset)
	if err != nil {
		return err
	}
	cfg.Seed = seed
	if scale != 1 {
		cfg = cfg.Scaled(scale)
	}
	if intervals > 0 {
		cfg = cfg.WithIntervals(intervals)
	}
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	var n int
	if asPcap {
		n, err = writePcap(f, g)
	} else {
		n, err = trace.WriteAll(f, g)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets (%s, %d intervals of %v, %.1f MB/interval target) to %s\n",
		n, cfg.Name, cfg.Intervals, cfg.Interval, cfg.BytesPerInterval/1e6, out)
	return nil
}

func writePcap(f *os.File, src trace.Source) (int, error) {
	w, err := pcap.NewWriter(f)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		p, err := src.Next()
		if err == io.EOF {
			return n, w.Flush()
		}
		if err != nil {
			return n, err
		}
		if err := w.WritePacket(&p); err != nil {
			return n, err
		}
		n++
	}
}
