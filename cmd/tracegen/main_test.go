package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunNativeFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	if err := run("COS", 0.05, 2, 1, out, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta().Intervals != 2 {
		t.Errorf("intervals = %d", r.Meta().Intervals)
	}
	if _, err := r.Next(); err != nil {
		t.Errorf("no packets: %v", err)
	}
}

func TestRunPcapFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.pcap")
	if err := run("COS", 0.05, 1, 1, out, true); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 24 {
		t.Error("pcap output implausibly small")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("COS", 0.05, 1, 1, "", false); err == nil {
		t.Error("missing output accepted")
	}
	if err := run("NOPE", 0.05, 1, 1, filepath.Join(t.TempDir(), "x"), false); err == nil {
		t.Error("bad preset accepted")
	}
	if err := run("COS", 0.05, 1, 1, "/nonexistent/dir/x.trace", false); err == nil {
		t.Error("unwritable path accepted")
	}
}
