package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSampleAndHoldPerBatch        	  780618	      1700 ns/op	        26.57 ns/pkt	       0 B/op	       0 allocs/op
BenchmarkSampleAndHoldPerBatch        	  656756	      1601 ns/op	        25.02 ns/pkt	       0 B/op	       0 allocs/op
BenchmarkFilterBatchDoubleHash-8      	  193826	      3190 ns/op	        49.84 ns/pkt	       0 B/op	       0 allocs/op
BenchmarkCalibration                  	  218694	      2756 ns/op
BenchmarkCalibrationMem               	    2900	    412000 ns/op
PASS
`

func TestParseTakesMinAndPrefersNsPkt(t *testing.T) {
	res, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	sh := res["BenchmarkSampleAndHoldPerBatch"]
	if sh.metric != "ns/pkt" || sh.ns != 25.02 {
		t.Fatalf("S&H = %+v, want min 25.02 ns/pkt", sh)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if dh := res["BenchmarkFilterBatchDoubleHash"]; dh.ns != 49.84 {
		t.Fatalf("doublehash = %+v", dh)
	}
	if cal := res[calCPUName]; cal.metric != "ns/op" || cal.ns != 2756 {
		t.Fatalf("calibration = %+v", cal)
	}
	if cal := res[calMemName]; cal.ns != 412000 {
		t.Fatalf("mem calibration = %+v", cal)
	}
}

// gate runs update-then-check with synthetic outputs and reports whether the
// check passed.
func gate(t *testing.T, recordOut, checkOut string) error {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	if err := run(strings.NewReader(recordOut), &buf, path, 0.10, true); err != nil {
		t.Fatalf("update: %v", err)
	}
	return run(strings.NewReader(checkOut), &buf, path, 0.10, false)
}

func synth(kernelNs, calCPUNs, calMemNs float64) string {
	return strings.Join([]string{
		bench("BenchmarkFilterBatchDoubleHash", kernelNs, true),
		bench(calCPUName, calCPUNs, false),
		bench(calMemName, calMemNs, false),
	}, "")
}

func bench(name string, ns float64, pkt bool) string {
	if pkt {
		return fmt.Sprintf("%s \t 100 \t %.3f ns/op\t %.3f ns/pkt\n", name, ns*64, ns)
	}
	return fmt.Sprintf("%s \t 100 \t %.3f ns/op\n", name, ns)
}

func TestGateVerdicts(t *testing.T) {
	base := synth(50, 2500, 400000)
	cases := []struct {
		name string
		out  string
		pass bool
	}{
		{"unchanged", synth(50, 2500, 400000), true},
		{"small regression within tolerance", synth(54, 2500, 400000), true},
		{"code regression fails all views", synth(60, 2500, 400000), false},
		{"slower machine: raw up, views flat", synth(75, 3750, 600000), true},
		{"degraded memory path tracks mem anchor", synth(65, 2500, 520000), true},
		{"cpu frequency window tracks cpu anchor", synth(60, 3000, 400000), true},
		{"regression on a degraded machine still fails", synth(100, 2500, 520000), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := gate(t, base, c.out)
			if c.pass && err != nil {
				t.Fatalf("expected pass, got: %v", err)
			}
			if !c.pass && err == nil {
				t.Fatal("expected failure, gate passed")
			}
		})
	}
}

func TestGateMissingKernelFails(t *testing.T) {
	base := synth(50, 2500, 400000)
	noKernel := bench(calCPUName, 2500, false) + bench(calMemName, 400000, false)
	if err := gate(t, base, noKernel); err == nil {
		t.Fatal("expected failure for missing guarded kernel")
	}
}
