// Command benchgate turns benchmark output into a CI regression gate. It
// reads `go test -bench` output on stdin, takes the minimum over repeated
// runs (-count, and multiple invocations concatenated) of each guarded
// kernel's per-packet time, and fails if a kernel regressed more than the
// tolerance versus the stored baseline.
//
// Usage:
//
//	go test -run '^$' -bench '...|Calibration' -count 3 . | benchgate [-baseline BENCH_BASELINE.json] [-tolerance 0.10]
//	go test -run '^$' -bench '...|Calibration' -count 3 . | benchgate -update   # record a new baseline
//
// # Telling regressions from machine noise
//
// Two fixed calibration workloads anchor every run: BenchmarkCalibration
// (pure compute, no memory traffic) and BenchmarkCalibrationMem (pure
// dependent memory latency, no compute). The baseline stores each kernel
// three ways — raw nanoseconds, compute-normalized (÷ calibration ns) and
// memory-normalized (÷ memory-calibration ns) — and a kernel fails only if
// ALL THREE exceed the tolerance.
//
// A genuine code regression raises all three: the calibration loops do not
// run repository code, so nothing a kernel change does moves them. Machine
// noise, by contrast, cancels in at least one view: a uniformly slower CI
// host raises raw but not the normalized views; a CPU-frequency or
// steal-time window raises the memory-bound kernels and the memory anchor
// together, canceling in the memory-normalized view; a degraded memory path
// (noisy neighbors on a shared VM) likewise tracks the memory anchor. The
// min-over-repeats on top filters one-off scheduling spikes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"time"
)

// Calibration anchors every gated run must include.
const (
	calCPUName = "BenchmarkCalibration"
	calMemName = "BenchmarkCalibrationMem"
)

// Baseline is the stored reference state of the guarded kernels.
type Baseline struct {
	// Updated is when the baseline was recorded (informational).
	Updated string `json:"updated"`
	// CalibrationNsOp and CalibrationMemNsOp are the anchor times of the
	// recording machine (informational; comparisons use the per-kernel
	// fields).
	CalibrationNsOp    float64 `json:"calibration_ns_op"`
	CalibrationMemNsOp float64 `json:"calibration_mem_ns_op"`
	// Kernels maps benchmark name to its reference point.
	Kernels map[string]KernelBaseline `json:"kernels"`
}

// KernelBaseline is one guarded kernel's reference point: the same
// measurement in the three views the gate compares.
type KernelBaseline struct {
	// Metric is the unit the raw value was read from ("ns/pkt" or "ns/op").
	Metric string `json:"metric"`
	// RawNs is the un-normalized minimum on the recording machine.
	RawNs float64 `json:"raw_ns"`
	// NormCPU is RawNs divided by the recording run's compute-calibration
	// time; NormMem by its memory-calibration time.
	NormCPU float64 `json:"norm_cpu"`
	NormMem float64 `json:"norm_mem"`
}

// result is one benchmark's parsed minimum over repeats.
type result struct {
	metric string
	ns     float64
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.eE+]+) ns/op(.*)$`)
var metricPair = regexp.MustCompile(`([\d.eE+]+) ([^\s]+)`)

// parse reads `go test -bench` output and returns, per benchmark, the
// minimum ns value over repeats — ns/pkt when the benchmark reports that
// metric, ns/op otherwise.
func parse(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		nsOp, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %v", sc.Text(), err)
		}
		metric, ns := "ns/op", nsOp
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			if pair[2] == "ns/pkt" {
				v, err := strconv.ParseFloat(pair[1], 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad ns/pkt in %q: %v", sc.Text(), err)
				}
				metric, ns = "ns/pkt", v
			}
		}
		if prev, seen := out[name]; !seen || ns < prev.ns {
			out[name] = result{metric: metric, ns: ns}
		}
	}
	return out, sc.Err()
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed regression (0.10 = +10%)")
		update       = flag.Bool("update", false, "write a new baseline from stdin instead of gating")
	)
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *baselinePath, *tolerance, *update); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, baselinePath string, tolerance float64, update bool) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	calCPU, okCPU := results[calCPUName]
	calMem, okMem := results[calMemName]
	if !okCPU || !okMem {
		return fmt.Errorf("input must include both %s and %s; use a -bench pattern matching 'Calibration'", calCPUName, calMemName)
	}
	if update {
		b := Baseline{
			Updated:            time.Now().UTC().Format(time.RFC3339),
			CalibrationNsOp:    calCPU.ns,
			CalibrationMemNsOp: calMem.ns,
			Kernels:            make(map[string]KernelBaseline),
		}
		for name, r := range results {
			if name == calCPUName || name == calMemName {
				continue
			}
			b.Kernels[name] = KernelBaseline{
				Metric: r.metric, RawNs: r.ns,
				NormCPU: r.ns / calCPU.ns, NormMem: r.ns / calMem.ns,
			}
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchgate: wrote %s (%d kernels, calibration %.0f ns/op cpu, %.0f ns/op mem)\n",
			baselinePath, len(b.Kernels), calCPU.ns, calMem.ns)
		return nil
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("no baseline (%v); record one with -update", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bad baseline %s: %v", baselinePath, err)
	}
	fmt.Fprintf(out, "benchgate: calibration cpu %.0f ns (baseline %.0f), mem %.0f ns (baseline %.0f), tolerance %+.0f%%\n",
		calCPU.ns, base.CalibrationNsOp, calMem.ns, base.CalibrationMemNsOp, tolerance*100)
	var failures []string
	for name, want := range base.Kernels {
		got, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: guarded kernel missing from input", name))
			continue
		}
		rawDelta := got.ns/want.RawNs - 1
		cpuDelta := (got.ns/calCPU.ns)/want.NormCPU - 1
		memDelta := (got.ns/calMem.ns)/want.NormMem - 1
		// Regressed only if worse in every view; see the package comment.
		delta := min(rawDelta, cpuDelta, memDelta)
		status := "ok"
		if delta > tolerance {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %+.1f%% over baseline in every view (raw %+.1f%%, cpu-norm %+.1f%%, mem-norm %+.1f%%)",
				name, delta*100, rawDelta*100, cpuDelta*100, memDelta*100))
		}
		fmt.Fprintf(out, "  %-44s %8.2f %-6s (baseline %8.2f; raw %+6.1f%%, cpu %+6.1f%%, mem %+6.1f%%) %s\n",
			name, got.ns, got.metric, want.RawNs, rawDelta*100, cpuDelta*100, memDelta*100, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d kernel(s) regressed:\n  %s", len(failures), joinLines(failures))
	}
	fmt.Fprintln(out, "benchgate: all guarded kernels within tolerance")
	return nil
}

func joinLines(lines []string) string {
	s := ""
	for i, l := range lines {
		if i > 0 {
			s += "\n  "
		}
		s += l
	}
	return s
}
