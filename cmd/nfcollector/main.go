// Command nfcollector is a NetFlow v5 collection station: it listens on
// UDP, decodes export packets from measurement devices (cmd/hhdevice
// -export, or any v5 exporter), tracks sequence gaps, and periodically
// prints the top flows by reported bytes.
//
// Usage:
//
//	nfcollector -listen :2055 -top 10 -every 5s
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"repro/internal/debugserver"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:2055", "UDP listen address")
		debug  = flag.String("debug", "", "serve /debug/vars and /debug/pprof on this HTTP address")
		top    = flag.Int("top", 10, "flows to print per summary")
		every  = flag.Duration("every", 5*time.Second, "summary period")
	)
	flag.Parse()
	if err := run(*listen, *debug, *top, *every); err != nil {
		fmt.Fprintln(os.Stderr, "nfcollector:", err)
		os.Exit(1)
	}
}

type agg struct {
	mu    sync.Mutex
	bytes map[netflow.V5Record]uint64 // keyed by addressing fields (Bytes zeroed)
}

func (a *agg) add(p *netflow.V5Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range p.Records {
		key := r
		key.Bytes, key.Packets = 0, 0
		a.bytes[key] += uint64(r.Bytes)
	}
}

func (a *agg) top(n int) []struct {
	rec   netflow.V5Record
	bytes uint64
} {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]struct {
		rec   netflow.V5Record
		bytes uint64
	}, 0, len(a.bytes))
	for r, b := range a.bytes {
		out = append(out, struct {
			rec   netflow.V5Record
			bytes uint64
		}{r, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bytes > out[j].bytes })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func run(listen, debug string, top int, every time.Duration) error {
	a := &agg{bytes: make(map[netflow.V5Record]uint64)}
	srv, addr, stop, err := netflow.ListenAndServe(listen, func(_ net.Addr, p *netflow.V5Packet) {
		a.add(p)
	})
	if err != nil {
		return err
	}
	defer stop()
	fmt.Printf("collecting NetFlow v5 on %s (summary every %v)\n", addr, every)
	if debug != "" {
		debugserver.Publish("nfcollector", func() any {
			a.mu.Lock()
			flows := len(a.bytes)
			a.mu.Unlock()
			return struct {
				netflow.Stats
				Flows int
			}{srv.Stats(), flows}
		})
		debugserver.RegisterHealth("collector", func() (telemetry.HealthStatus, string) {
			st := srv.Stats()
			switch {
			case st.BadBytes > 0:
				return telemetry.HealthDegraded, fmt.Sprintf("%d bytes of undecodable exports", st.BadBytes)
			case st.LostRecords > 0:
				return telemetry.HealthDegraded, fmt.Sprintf("%d records lost (sequence gaps)", st.LostRecords)
			default:
				return telemetry.HealthOK, ""
			}
		})
		daddr, err := debugserver.Serve(debug)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars, /debug/pprof and /healthz on http://%s\n", daddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := srv.Stats()
			fmt.Printf("\n[%s] %s\n", time.Now().Format("15:04:05"), st)
			for _, e := range a.top(top) {
				fmt.Printf("  %12d bytes  %s\n", e.bytes, describe(e.rec))
			}
		case <-sig:
			fmt.Printf("\nfinal: %s\n", srv.Stats())
			return nil
		}
	}
}

func describe(r netflow.V5Record) string {
	switch {
	case r.SrcAS != 0 || r.DstAS != 0:
		return fmt.Sprintf("AS%d -> AS%d", r.SrcAS, r.DstAS)
	case r.SrcIP == 0 && r.SrcPort == 0 && r.DstPort == 0:
		return flow.IPString(r.DstIP)
	default:
		return fmt.Sprintf("%s:%d -> %s:%d proto %d",
			flow.IPString(r.SrcIP), r.SrcPort, flow.IPString(r.DstIP), r.DstPort, r.Proto)
	}
}
