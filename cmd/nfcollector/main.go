// Command nfcollector is a NetFlow v5 collection station: it listens for
// export packets from measurement devices (cmd/hhdevice -export over UDP,
// or -export-tcp over the spooled at-least-once transport), decodes them,
// tracks sequence gaps and duplicates, and periodically prints the top
// flows by reported bytes.
//
// Usage:
//
//	nfcollector -listen :2055 -top 10 -every 5s
//	nfcollector -listen :2055 -listen-tcp :2056 -debug :8080
//
// On SIGINT or SIGTERM the collector stops accepting, drains exports
// already in flight (so the reliable transport's acked-means-aggregated
// contract holds through a shutdown), and prints a final summary including
// the last partial period's flows.
package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/debugserver"
	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/netflow/reliable"
	"repro/internal/telemetry"
)

// stateOptions is the crash-safety configuration: where the journal lives
// and how eagerly it reaches stable storage.
type stateOptions struct {
	dir        string
	fsyncName  string
	fault      string
	snapEvery  time.Duration
	totalsJSON string
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:2055", "UDP listen address")
		listenTCP = flag.String("listen-tcp", "", "also serve the reliable TCP transport on this address")
		debug     = flag.String("debug", "", "serve /debug/vars and /debug/pprof on this HTTP address")
		top       = flag.Int("top", 10, "flows to print per summary")
		every     = flag.Duration("every", 5*time.Second, "summary period")
		drain     = flag.Duration("drain", time.Second, "how long to drain in-flight exports on shutdown")
		tcp       reliable.ServerConfig
		st        stateOptions
	)
	flag.DurationVar(&tcp.HandshakeTimeout, "tcp-handshake-timeout", 0, "drop reliable-transport connections that never send hello within this (0 = default 10s, negative disables)")
	flag.DurationVar(&tcp.IdleTimeout, "tcp-idle-timeout", 0, "evict reliable-transport connections silent — no frames, no heartbeats — for this long (0 = default 90s, negative disables)")
	flag.IntVar(&tcp.MaxExporters, "tcp-max-exporters", 0, "refuse reliable-transport connections beyond this many concurrent exporters (0 = unlimited)")
	flag.IntVar(&tcp.InflightBudgetBytes, "tcp-inflight-budget", 0, "per-connection queued-byte budget before the collector pauses an exporter (0 = default 1 MiB)")
	flag.StringVar(&st.dir, "state-dir", "", "journal reliable-transport deliveries and snapshot accumulated totals in this directory; a restarted collector recovers both (requires -listen-tcp)")
	flag.StringVar(&st.fsyncName, "state-fsync", "batch", "state journal fsync policy: frame, batch, timer, none")
	flag.StringVar(&st.fault, "state-fault", "", "inject deterministic journal disk faults, e.g. syncdelay=5ms (crash-test hook)")
	flag.DurationVar(&st.snapEvery, "snapshot-every", 10*time.Second, "how often to snapshot accumulated totals and truncate the WAL (0 = only at shutdown)")
	flag.StringVar(&st.totalsJSON, "totals-json", "", "write final per-flow byte totals as JSON to this file on graceful shutdown")
	flag.Parse()
	if err := run(*listen, *listenTCP, *debug, *top, *every, *drain, tcp, st); err != nil {
		fmt.Fprintln(os.Stderr, "nfcollector:", err)
		os.Exit(1)
	}
}

type agg struct {
	mu        sync.Mutex
	bytes     map[netflow.V5Record]uint64 // keyed by addressing fields (Bytes zeroed)
	badFrames uint64                      // reliable-transport payloads that failed v5 decode
}

func (a *agg) add(p *netflow.V5Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range p.Records {
		key := r
		key.Bytes, key.Packets = 0, 0
		a.bytes[key] += uint64(r.Bytes)
	}
}

// addFrame decodes one reliable-transport payload and aggregates it.
func (a *agg) addFrame(payload []byte) {
	p, err := netflow.DecodeV5(payload)
	if err != nil {
		a.mu.Lock()
		a.badFrames++
		a.mu.Unlock()
		return
	}
	a.add(p)
}

func (a *agg) flows() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.bytes)
}

// snapshotState serializes the aggregate for the journal's snapshot record.
// It is called under the journal mutex, so the totals it captures are
// exactly consistent with the watermarks stored next to them.
func (a *agg) snapshotState() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(a.bytes); err != nil {
		return nil
	}
	if err := enc.Encode(a.badFrames); err != nil {
		return nil
	}
	return buf.Bytes()
}

// restoreState loads a snapshot written by snapshotState. An empty blob is
// a fresh start.
func (a *agg) restoreState(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	dec := gob.NewDecoder(bytes.NewReader(b))
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := dec.Decode(&a.bytes); err != nil {
		return fmt.Errorf("state snapshot: %w", err)
	}
	return dec.Decode(&a.badFrames)
}

// writeTotals writes the per-flow byte totals as sorted JSON — the harness's
// ground truth for byte-exact comparison across crash schedules.
func (a *agg) writeTotals(path string) error {
	a.mu.Lock()
	type entry struct {
		Key   string `json:"key"`
		Bytes uint64 `json:"bytes"`
	}
	out := struct {
		Flows      int     `json:"flows"`
		TotalBytes uint64  `json:"total_bytes"`
		Entries    []entry `json:"entries"`
	}{Flows: len(a.bytes)}
	for r, b := range a.bytes {
		out.Entries = append(out.Entries, entry{Key: fmt.Sprintf("%+v", r), Bytes: b})
		out.TotalBytes += b
	}
	a.mu.Unlock()
	sort.Slice(out.Entries, func(i, j int) bool { return out.Entries[i].Key < out.Entries[j].Key })
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func (a *agg) top(n int) []struct {
	rec   netflow.V5Record
	bytes uint64
} {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]struct {
		rec   netflow.V5Record
		bytes uint64
	}, 0, len(a.bytes))
	for r, b := range a.bytes {
		out = append(out, struct {
			rec   netflow.V5Record
			bytes uint64
		}{r, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bytes > out[j].bytes })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func run(listen, listenTCP, debug string, top int, every, drain time.Duration, tcp reliable.ServerConfig, st stateOptions) error {
	a := &agg{bytes: make(map[netflow.V5Record]uint64)}
	if st.dir != "" && listenTCP == "" {
		return fmt.Errorf("-state-dir journals the reliable transport and requires -listen-tcp")
	}

	// With -state-dir, recover before serving: restore the last snapshot's
	// totals, replay WAL frames past it, and seed the server's sequence
	// state from the recovered watermarks — so the first hello after a
	// crash is answered with an ack that never regresses.
	var (
		journal  *reliable.Journal
		recovery *reliable.Recovery
	)
	if st.dir != "" {
		pol, err := reliable.FsyncPolicyByName(st.fsyncName)
		if err != nil {
			return err
		}
		jcfg := reliable.JournalConfig{Dir: st.dir, Fsync: pol}
		if st.fault != "" {
			sched, err := faultinject.ParseWriterSchedule(st.fault)
			if err != nil {
				return err
			}
			jcfg.Wrap = func(f reliable.SpoolFile) reliable.SpoolFile {
				return faultinject.NewWriter(f, sched)
			}
		}
		journal, recovery, err = reliable.OpenJournal(jcfg, nil)
		if err != nil {
			return err
		}
		defer journal.Close()
		if err := a.restoreState(recovery.State); err != nil {
			return err
		}
		for _, f := range recovery.Frames {
			a.addFrame(f.Payload)
		}
		fmt.Printf("state: recovered %d flows from %s (%d WAL frames replayed, %d torn records truncated)\n",
			a.flows(), st.dir, len(recovery.Frames), recovery.TornRecords)
	}

	srv, addr, stop, err := netflow.ListenAndServe(listen, func(_ net.Addr, p *netflow.V5Packet) {
		a.add(p)
	})
	if err != nil {
		return err
	}
	defer stop()
	fmt.Printf("collecting NetFlow v5 on %s (summary every %v)\n", addr, every)

	var rsrv *reliable.Server
	if listenTCP != "" {
		var raddr net.Addr
		tcp.Journal = journal
		rsrv, raddr, err = reliable.Listen(listenTCP, tcp, func(_, _ uint64, payload []byte) {
			a.addFrame(payload)
		})
		if err != nil {
			return err
		}
		fmt.Printf("collecting reliable exports on %s\n", raddr)
	}

	if debug != "" {
		debugserver.Publish("nfcollector", func() any {
			out := struct {
				netflow.Stats
				Reliable *reliable.Stats `json:",omitempty"`
				Flows    int
			}{Stats: srv.Stats(), Flows: a.flows()}
			if rsrv != nil {
				rs := rsrv.Stats()
				out.Reliable = &rs
			}
			return out
		})
		debugserver.RegisterHealth("collector", func() (telemetry.HealthStatus, string) {
			st := srv.Stats()
			switch {
			case st.BadBytes > 0:
				return telemetry.HealthDegraded, fmt.Sprintf("%d bytes of undecodable exports", st.BadBytes)
			case st.LostRecords > 0:
				return telemetry.HealthDegraded, fmt.Sprintf("%d records lost (sequence gaps)", st.LostRecords)
			default:
				return telemetry.HealthOK, ""
			}
		})
		if rsrv != nil {
			debugserver.RegisterHealth("reliable", func() (telemetry.HealthStatus, string) {
				st := rsrv.Stats()
				switch {
				case st.BadFrames > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d bad frames", st.BadFrames)
				case st.Gaps > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d frames lost to exporter spool overflow", st.Gaps)
				case st.PausedConnections > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d exporters paused over the inflight budget", st.PausedConnections)
				case st.Evicted > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d silent exporters evicted", st.Evicted)
				case st.Rejected > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d connections refused over the exporter cap", st.Rejected)
				case st.HandshakeTimeouts > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d connections never completed the handshake", st.HandshakeTimeouts)
				default:
					return telemetry.HealthOK, ""
				}
			})
		}
		if journal != nil {
			rec := recovery
			debugserver.Publish("collector_durability", func() any {
				return struct {
					Journal         telemetry.DurableSnapshot `json:"journal"`
					RecoveredFrames int                       `json:"recovered_frames"`
					TornRecords     int                       `json:"torn_records"`
					TornBytes       int64                     `json:"torn_bytes"`
					Watermarks      map[uint64]uint64         `json:"watermarks"`
				}{journal.Durability().Snapshot(), len(rec.Frames), rec.TornRecords, rec.TornBytes, journal.Watermarks()}
			})
			debugserver.RegisterHealth("state-journal", func() (telemetry.HealthStatus, string) {
				return journal.Durability().Snapshot().Health()
			})
		}
		daddr, err := debugserver.Serve(debug)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars, /debug/pprof and /healthz on http://%s\n", daddr)
	}

	summary := func(label string) {
		fmt.Printf("\n[%s] %s\n", label, srv.Stats())
		if rsrv != nil {
			rs := rsrv.Stats()
			fmt.Printf("reliable: %d frames, %d delivered, %d duplicates deduped, %d gaps, %d bad frames, %d exporters\n",
				rs.Frames, rs.Delivered, rs.Duplicates, rs.Gaps, rs.BadFrames, len(rs.PerExporter))
			if rs.Heartbeats+rs.Evicted+rs.HandshakeTimeouts+rs.Rejected+rs.PausesSent > 0 {
				fmt.Printf("liveness: %d heartbeats, %d evicted, %d handshake timeouts, %d rejected, %d pauses / %d resumes (%d paused now)\n",
					rs.Heartbeats, rs.Evicted, rs.HandshakeTimeouts, rs.Rejected, rs.PausesSent, rs.ResumesSent, rs.PausedConnections)
			}
		}
		if journal != nil {
			ds := journal.Durability().Snapshot()
			fmt.Printf("journal: %d appends (%d bytes), %d fsyncs, %d snapshots, %d errors\n",
				ds.Appends, ds.AppendBytes, ds.Fsyncs, ds.Snapshots, ds.JournalErrors)
		}
		for _, e := range a.top(top) {
			fmt.Printf("  %12d bytes  %s\n", e.bytes, describe(e.rec))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	var snapC <-chan time.Time
	if journal != nil && st.snapEvery > 0 {
		snapTicker := time.NewTicker(st.snapEvery)
		defer snapTicker.Stop()
		snapC = snapTicker.C
	}
	for {
		select {
		case <-ticker.C:
			summary(time.Now().Format("15:04:05"))
		case <-snapC:
			if err := journal.Snapshot(a.snapshotState); err != nil {
				fmt.Fprintf(os.Stderr, "nfcollector: snapshot: %v\n", err)
			}
		case <-sig:
			// Stop accepting, drain exports already in flight, snapshot the
			// final totals (truncating the WAL), then print everything —
			// including the partial period a plain exit would have discarded.
			fmt.Printf("\nshutting down: draining in-flight exports (up to %v)\n", drain)
			if rsrv != nil {
				rsrv.Shutdown(drain)
			}
			stop()
			if journal != nil {
				if err := journal.Snapshot(a.snapshotState); err != nil {
					fmt.Fprintf(os.Stderr, "nfcollector: final snapshot: %v\n", err)
				}
			}
			summary("final")
			if st.totalsJSON != "" {
				if err := a.writeTotals(st.totalsJSON); err != nil {
					return fmt.Errorf("totals: %w", err)
				}
				fmt.Printf("totals: wrote %s\n", st.totalsJSON)
			}
			return nil
		}
	}
}

func describe(r netflow.V5Record) string {
	switch {
	case r.SrcAS != 0 || r.DstAS != 0:
		return fmt.Sprintf("AS%d -> AS%d", r.SrcAS, r.DstAS)
	case r.SrcIP == 0 && r.SrcPort == 0 && r.DstPort == 0:
		return flow.IPString(r.DstIP)
	default:
		return fmt.Sprintf("%s:%d -> %s:%d proto %d",
			flow.IPString(r.SrcIP), r.SrcPort, flow.IPString(r.DstIP), r.DstPort, r.Proto)
	}
}
