// Command nfcollector is a NetFlow v5 collection station: it listens for
// export packets from measurement devices (cmd/hhdevice -export over UDP,
// or -export-tcp over the spooled at-least-once transport), decodes them,
// tracks sequence gaps and duplicates, and periodically prints the top
// flows by reported bytes.
//
// Usage:
//
//	nfcollector -listen :2055 -top 10 -every 5s
//	nfcollector -listen :2055 -listen-tcp :2056 -debug :8080
//
// On SIGINT or SIGTERM the collector stops accepting, drains exports
// already in flight (so the reliable transport's acked-means-aggregated
// contract holds through a shutdown), and prints a final summary including
// the last partial period's flows.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/debugserver"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/netflow/reliable"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:2055", "UDP listen address")
		listenTCP = flag.String("listen-tcp", "", "also serve the reliable TCP transport on this address")
		debug     = flag.String("debug", "", "serve /debug/vars and /debug/pprof on this HTTP address")
		top       = flag.Int("top", 10, "flows to print per summary")
		every     = flag.Duration("every", 5*time.Second, "summary period")
		drain     = flag.Duration("drain", time.Second, "how long to drain in-flight exports on shutdown")
	)
	flag.Parse()
	if err := run(*listen, *listenTCP, *debug, *top, *every, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "nfcollector:", err)
		os.Exit(1)
	}
}

type agg struct {
	mu        sync.Mutex
	bytes     map[netflow.V5Record]uint64 // keyed by addressing fields (Bytes zeroed)
	badFrames uint64                      // reliable-transport payloads that failed v5 decode
}

func (a *agg) add(p *netflow.V5Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range p.Records {
		key := r
		key.Bytes, key.Packets = 0, 0
		a.bytes[key] += uint64(r.Bytes)
	}
}

// addFrame decodes one reliable-transport payload and aggregates it.
func (a *agg) addFrame(payload []byte) {
	p, err := netflow.DecodeV5(payload)
	if err != nil {
		a.mu.Lock()
		a.badFrames++
		a.mu.Unlock()
		return
	}
	a.add(p)
}

func (a *agg) flows() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.bytes)
}

func (a *agg) top(n int) []struct {
	rec   netflow.V5Record
	bytes uint64
} {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]struct {
		rec   netflow.V5Record
		bytes uint64
	}, 0, len(a.bytes))
	for r, b := range a.bytes {
		out = append(out, struct {
			rec   netflow.V5Record
			bytes uint64
		}{r, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bytes > out[j].bytes })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func run(listen, listenTCP, debug string, top int, every, drain time.Duration) error {
	a := &agg{bytes: make(map[netflow.V5Record]uint64)}
	srv, addr, stop, err := netflow.ListenAndServe(listen, func(_ net.Addr, p *netflow.V5Packet) {
		a.add(p)
	})
	if err != nil {
		return err
	}
	defer stop()
	fmt.Printf("collecting NetFlow v5 on %s (summary every %v)\n", addr, every)

	var rsrv *reliable.Server
	if listenTCP != "" {
		var raddr net.Addr
		rsrv, raddr, err = reliable.Listen(listenTCP, reliable.ServerConfig{}, func(_, _ uint64, payload []byte) {
			a.addFrame(payload)
		})
		if err != nil {
			return err
		}
		fmt.Printf("collecting reliable exports on %s\n", raddr)
	}

	if debug != "" {
		debugserver.Publish("nfcollector", func() any {
			out := struct {
				netflow.Stats
				Reliable *reliable.Stats `json:",omitempty"`
				Flows    int
			}{Stats: srv.Stats(), Flows: a.flows()}
			if rsrv != nil {
				rs := rsrv.Stats()
				out.Reliable = &rs
			}
			return out
		})
		debugserver.RegisterHealth("collector", func() (telemetry.HealthStatus, string) {
			st := srv.Stats()
			switch {
			case st.BadBytes > 0:
				return telemetry.HealthDegraded, fmt.Sprintf("%d bytes of undecodable exports", st.BadBytes)
			case st.LostRecords > 0:
				return telemetry.HealthDegraded, fmt.Sprintf("%d records lost (sequence gaps)", st.LostRecords)
			default:
				return telemetry.HealthOK, ""
			}
		})
		if rsrv != nil {
			debugserver.RegisterHealth("reliable", func() (telemetry.HealthStatus, string) {
				st := rsrv.Stats()
				switch {
				case st.BadFrames > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d bad frames", st.BadFrames)
				case st.Gaps > 0:
					return telemetry.HealthDegraded, fmt.Sprintf("%d frames lost to exporter spool overflow", st.Gaps)
				default:
					return telemetry.HealthOK, ""
				}
			})
		}
		daddr, err := debugserver.Serve(debug)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /debug/vars, /debug/pprof and /healthz on http://%s\n", daddr)
	}

	summary := func(label string) {
		fmt.Printf("\n[%s] %s\n", label, srv.Stats())
		if rsrv != nil {
			rs := rsrv.Stats()
			fmt.Printf("reliable: %d frames, %d delivered, %d duplicates deduped, %d gaps, %d bad frames, %d exporters\n",
				rs.Frames, rs.Delivered, rs.Duplicates, rs.Gaps, rs.BadFrames, len(rs.PerExporter))
		}
		for _, e := range a.top(top) {
			fmt.Printf("  %12d bytes  %s\n", e.bytes, describe(e.rec))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			summary(time.Now().Format("15:04:05"))
		case <-sig:
			// Stop accepting, drain exports already in flight, then print
			// everything — including the partial period a plain exit would
			// have discarded.
			fmt.Printf("\nshutting down: draining in-flight exports (up to %v)\n", drain)
			if rsrv != nil {
				rsrv.Shutdown(drain)
			}
			stop()
			summary("final")
			return nil
		}
	}
}

func describe(r netflow.V5Record) string {
	switch {
	case r.SrcAS != 0 || r.DstAS != 0:
		return fmt.Sprintf("AS%d -> AS%d", r.SrcAS, r.DstAS)
	case r.SrcIP == 0 && r.SrcPort == 0 && r.DstPort == 0:
		return flow.IPString(r.DstIP)
	default:
		return fmt.Sprintf("%s:%d -> %s:%d proto %d",
			flow.IPString(r.SrcIP), r.SrcPort, flow.IPString(r.DstIP), r.DstPort, r.Proto)
	}
}
