package main

import (
	"testing"

	"repro/internal/netflow"
)

func TestDescribe(t *testing.T) {
	tests := []struct {
		rec  netflow.V5Record
		want string
	}{
		{netflow.V5Record{SrcAS: 1, DstAS: 2}, "AS1 -> AS2"},
		{netflow.V5Record{DstIP: 0x01020304}, "1.2.3.4"},
		{netflow.V5Record{SrcIP: 0x01000001, DstIP: 0x01000002, SrcPort: 5, DstPort: 80, Proto: 6},
			"1.0.0.1:5 -> 1.0.0.2:80 proto 6"},
	}
	for _, tt := range tests {
		if got := describe(tt.rec); got != tt.want {
			t.Errorf("describe(%+v) = %q, want %q", tt.rec, got, tt.want)
		}
	}
}

func TestAggTop(t *testing.T) {
	a := &agg{bytes: map[netflow.V5Record]uint64{}}
	a.add(&netflow.V5Packet{Records: []netflow.V5Record{
		{DstIP: 1, Bytes: 100},
		{DstIP: 2, Bytes: 300},
		{DstIP: 1, Bytes: 50},
	}})
	top := a.top(1)
	if len(top) != 1 || top[0].bytes != 300 {
		t.Errorf("top = %+v", top)
	}
	if got := a.top(10); len(got) != 2 {
		t.Errorf("all = %+v", got)
	}
	// Aggregation across packets for the same key.
	if a.bytes[netflow.V5Record{DstIP: 1}] != 150 {
		t.Error("aggregation by key failed")
	}
}
