// Command experiments regenerates the paper's tables and figures on
// synthetic traces calibrated to the published trace statistics.
//
// Usage:
//
//	experiments [flags] [experiment ...]
//
// Experiments: table1 table2 table3 figure6 table4 figure7 table5 table6
// table7 ablations all (default: all). "prefetch" — the fused kernel's
// prefetch-distance sweep across L2-relative table sizes — is host-specific
// and slow, so it runs only when named explicitly.
//
// Flags -scale and -runs trade fidelity for speed; -full runs at paper
// scale (slow: the MAG+ trace alone is hundreds of millions of packets).
//
// -cpuprofile and -memprofile write pprof profiles of the run, so the
// measurement hot path can be profiled without editing code:
//
//	experiments -cpuprofile cpu.out -scale 0.2 table5
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.05, "experiment scale (1 = paper scale)")
		runs       = flag.Int("runs", 3, "repetitions per configuration (paper: 16-50)")
		intervals  = flag.Int("intervals", 0, "override measurement interval count")
		seed       = flag.Int64("seed", 1, "trace seed")
		full       = flag.Bool("full", false, "paper-scale run (-scale 1 -runs 16)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
	)
	flag.Parse()
	o := experiments.Options{Scale: *scale, Runs: *runs, Intervals: *intervals, Seed: *seed}
	if *full {
		o.Scale = 1
		o.Runs = 16
	}
	names := flag.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}
	if err := run(names, o, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the named experiments with optional profiling; profiles are
// finalized even when an experiment fails.
func run(names []string, o experiments.Options, cpuprofile, memprofile string) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	for _, name := range names {
		if err := runOne(name, o); err != nil {
			return err
		}
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

var allExperiments = []string{
	"table1", "table2", "table3", "figure6", "table4", "figure7",
	"table5", "table6", "table7", "adapt", "gaps", "ablations", "sketches",
}

func runOne(name string, o experiments.Options) error {
	start := time.Now()
	switch name {
	case "all":
		for _, n := range allExperiments {
			if err := runOne(n, o); err != nil {
				return err
			}
		}
		return nil
	case "table1":
		fmt.Println(experiments.Table1(0, 0, 0, 0, 0).Format())
	case "table2":
		res, err := experiments.Table2(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "table3":
		res, err := experiments.Table3(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "figure6":
		res, err := experiments.Figure6(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "table4":
		res, err := experiments.Table4(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "figure7":
		res, err := experiments.Figure7(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "table5", "table6", "table7":
		def := map[string]string{"table5": "5-tuple", "table6": "dstIP", "table7": "ASpair"}[name]
		res, err := experiments.CompareDevices(def, o)
		if err != nil {
			return err
		}
		fmt.Printf("%s (paper %s):\n%s\n", name, def, res.Format())
	case "adapt":
		res, err := experiments.AdaptStudy(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "gaps":
		res, err := experiments.GapStudy(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "sketches":
		res, err := experiments.CompareSketches(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case "ablations":
		studies, err := experiments.Ablations(o)
		if err != nil {
			return err
		}
		for _, s := range studies {
			fmt.Println(s.Format())
		}
	case "prefetch":
		res, err := experiments.PrefetchSweep(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	default:
		return fmt.Errorf("unknown experiment %q (want one of %v)", name, append([]string{"all"}, allExperiments...))
	}
	fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}
