package main

import (
	"testing"

	"repro/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{Scale: 0.02, Runs: 1, Intervals: 3, Seed: 1}
}

func TestRunOneCheapExperiments(t *testing.T) {
	for _, name := range []string{"table1", "table2", "table3", "figure6", "adapt", "sketches"} {
		if err := runOne(name, tinyOpts()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("bogus", tinyOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}
