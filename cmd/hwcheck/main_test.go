package main

import "testing"

func TestRun(t *testing.T) {
	if err := run(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(1, 10); err != nil {
		t.Fatal(err)
	}
}

func TestNonzero(t *testing.T) {
	if nonzero(0, 5) != 5 || nonzero(3, 5) != 3 {
		t.Error("nonzero helper wrong")
	}
}
