// Command hwcheck evaluates the line-rate feasibility of measurement
// designs across link speeds, following the paper's Section 8 analysis:
// per-packet memory time versus worst-case packet inter-arrival time at
// each speed, for sample and hold (one memory reference), serially-accessed
// multistage filters (network processors) and parallel pipelined filters
// (the paper's OC-192 chip design).
//
// With -mem it additionally measures the host's memory system — cache line
// size, sequential streaming bandwidth, dependent random-access latency —
// the roofline inputs for the software pipeline's fused batch kernel, so the
// EXPERIMENTS.md roofline is reproducible on any machine.
//
// Usage:
//
//	hwcheck [-stages 4] [-sram 5] [-mem] [-membytes 67108864]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/hw"
)

func main() {
	var (
		stages   = flag.Int("stages", 4, "filter stages")
		sram     = flag.Float64("sram", 0, "SRAM access time in ns (0 = paper's 5 ns)")
		mem      = flag.Bool("mem", false, "measure this host's memory system (roofline inputs)")
		memBytes = flag.Int("membytes", 0, "memory benchmark working-set bytes (0 = 64 MiB)")
	)
	flag.Parse()
	if err := run(*stages, *sram); err != nil {
		fmt.Fprintln(os.Stderr, "hwcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("\nhost topology (feeds hhdevice's -shards auto default):\n")
	for _, line := range strings.Split(hw.Probe().String(), "\n") {
		fmt.Printf("  %s\n", line)
	}
	if *mem {
		runMem(*memBytes)
	}
}

// runMem measures and prints the host's roofline inputs, plus the derived
// per-packet memory budgets at reference packet rates so the numbers slot
// directly into the EXPERIMENTS.md roofline discussion.
func runMem(bufBytes int) {
	r := hw.MemBench(bufBytes)
	fmt.Printf("\nmemory system (measured, %d MiB working set):\n", r.BufferBytes>>20)
	fmt.Printf("  cache line:            %d B\n", r.CacheLineBytes)
	fmt.Printf("  sequential read:       %.1f GB/s (streaming, prefetcher-friendly)\n", r.SeqGBps)
	fmt.Printf("  dependent random read: %.1f ns/line = %.1f GB/s effective\n", r.RandNsPerLine, r.RandGBps)
	fmt.Println("\nper-packet memory budget if DRAM-resident (bytes/pkt at rate):")
	for _, rate := range []float64{1e6, 5e6, 12e6, 25e6} {
		fmt.Printf("  %5.0fM pkts/s: %6.0f B/pkt streaming, %5.2f dependent lines/pkt\n",
			rate/1e6, r.SeqGBps*1e9/rate, 1e9/(rate*r.RandNsPerLine))
	}
	fmt.Println("\n(kernels whose working set fits in cache are not bound by these numbers;")
	fmt.Println(" compare the working set printed by the bench configs against the LLC.)")
}

func run(stages int, sram float64) error {
	links := []struct {
		name string
		bps  float64
	}{
		{"OC-3", hw.OC3Bps},
		{"OC-12", hw.OC12Bps},
		{"OC-48", hw.OC48Bps},
		{"OC-192", hw.OC192Bps},
	}
	designs := []struct {
		name string
		cfg  hw.DesignConfig
	}{
		{"sample-and-hold (1 ref/pkt)", hw.DesignConfig{Stages: 0}},
		{fmt.Sprintf("msf %d stages, serial (netproc)", stages), hw.DesignConfig{Stages: stages}},
		{fmt.Sprintf("msf %d stages, parallel chip", stages), hw.DesignConfig{Stages: stages, ParallelStages: true, Pipelined: true}},
	}
	fmt.Printf("line-rate feasibility for %d-byte packets (SRAM %g ns)\n\n",
		hw.MinPacketBytes, nonzero(sram, 5))
	fmt.Printf("%-34s", "design \\ link")
	for _, l := range links {
		fmt.Printf(" %16s", l.name)
	}
	fmt.Println()
	for _, d := range designs {
		fmt.Printf("%-34s", d.name)
		for _, l := range links {
			cfg := d.cfg
			cfg.LinkBps = l.bps
			cfg.SRAMAccessNs = sram
			f, err := hw.Check(cfg)
			if err != nil {
				return err
			}
			cell := fmt.Sprintf("ok %4.0fns/%4.0fns", f.MemoryNs, f.PacketNs)
			if !f.Feasible {
				cell = fmt.Sprintf("NO %4.0fns/%4.0fns", f.MemoryNs, f.PacketNs)
			}
			fmt.Printf(" %16s", cell)
		}
		fmt.Println()
	}
	fmt.Printf("\nreference chip (Section 8): %d stages x %d counters, %d entries, ~%dk transistors, OC-192\n",
		hw.ChipStages, hw.ChipCountersPerStep, hw.ChipFlowEntries, hw.ChipTransistors/1000)
	camLoad := hw.ExpectedCamLoad(hw.ChipFlowEntries, hw.ChipCountersPerStep)
	fmt.Printf("hash-table flow memory at chip load: expect ~%.0f colliding entries in the CAM\n", camLoad)
	return nil
}

func nonzero(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
