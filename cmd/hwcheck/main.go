// Command hwcheck evaluates the line-rate feasibility of measurement
// designs across link speeds, following the paper's Section 8 analysis:
// per-packet memory time versus worst-case packet inter-arrival time at
// each speed, for sample and hold (one memory reference), serially-accessed
// multistage filters (network processors) and parallel pipelined filters
// (the paper's OC-192 chip design).
//
// Usage:
//
//	hwcheck [-stages 4] [-sram 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hw"
)

func main() {
	var (
		stages = flag.Int("stages", 4, "filter stages")
		sram   = flag.Float64("sram", 0, "SRAM access time in ns (0 = paper's 5 ns)")
	)
	flag.Parse()
	if err := run(*stages, *sram); err != nil {
		fmt.Fprintln(os.Stderr, "hwcheck:", err)
		os.Exit(1)
	}
}

func run(stages int, sram float64) error {
	links := []struct {
		name string
		bps  float64
	}{
		{"OC-3", hw.OC3Bps},
		{"OC-12", hw.OC12Bps},
		{"OC-48", hw.OC48Bps},
		{"OC-192", hw.OC192Bps},
	}
	designs := []struct {
		name string
		cfg  hw.DesignConfig
	}{
		{"sample-and-hold (1 ref/pkt)", hw.DesignConfig{Stages: 0}},
		{fmt.Sprintf("msf %d stages, serial (netproc)", stages), hw.DesignConfig{Stages: stages}},
		{fmt.Sprintf("msf %d stages, parallel chip", stages), hw.DesignConfig{Stages: stages, ParallelStages: true, Pipelined: true}},
	}
	fmt.Printf("line-rate feasibility for %d-byte packets (SRAM %g ns)\n\n",
		hw.MinPacketBytes, nonzero(sram, 5))
	fmt.Printf("%-34s", "design \\ link")
	for _, l := range links {
		fmt.Printf(" %16s", l.name)
	}
	fmt.Println()
	for _, d := range designs {
		fmt.Printf("%-34s", d.name)
		for _, l := range links {
			cfg := d.cfg
			cfg.LinkBps = l.bps
			cfg.SRAMAccessNs = sram
			f, err := hw.Check(cfg)
			if err != nil {
				return err
			}
			cell := fmt.Sprintf("ok %4.0fns/%4.0fns", f.MemoryNs, f.PacketNs)
			if !f.Feasible {
				cell = fmt.Sprintf("NO %4.0fns/%4.0fns", f.MemoryNs, f.PacketNs)
			}
			fmt.Printf(" %16s", cell)
		}
		fmt.Println()
	}
	fmt.Printf("\nreference chip (Section 8): %d stages x %d counters, %d entries, ~%dk transistors, OC-192\n",
		hw.ChipStages, hw.ChipCountersPerStep, hw.ChipFlowEntries, hw.ChipTransistors/1000)
	camLoad := hw.ExpectedCamLoad(hw.ChipFlowEntries, hw.ChipCountersPerStep)
	fmt.Printf("hash-table flow memory at chip load: expect ~%.0f colliding entries in the CAM\n", camLoad)
	return nil
}

func nonzero(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
