//go:build !race

// The race detector changes the allocator's behavior, so the allocation
// guard only exists in non-race builds; CI runs it in a dedicated step.

package traffic

import "testing"

// TestBatchedHotPathZeroAllocs is the enforcement half of the batched
// hot-path contract: the steady-state producer loop (Packet into recycled
// lane batch buffers, telemetry included) must not allocate. The benchmark
// harness does the measuring so the guard uses the exact code path
// BenchmarkPipelineBatchedSteadyState reports on.
func TestBatchedHotPathZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven guard skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkPipelineBatchedSteadyState)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("batched steady-state hot path allocates: %d allocs/op (%d B/op), must be 0",
			a, res.AllocedBytesPerOp())
	}
}
