package traffic

// Differential tests for the fused batch kernel. Three drive modes must be
// observably equivalent — identical interval reports AND identical memory
// accounting totals:
//
//   - per-packet: Process on every packet (the reference semantics),
//   - unfused:    ProcessBatchUnfused, the pre-fusion two-pass batch kernel
//     kept exactly for this comparison,
//   - fused:      ProcessBatch, the tiled hash→prefetch→update kernel.
//
// The grid covers every hash family (tabulation, multiplyshift, doublehash —
// the last is the one-base-hash deriver path whose hash reuse is the
// riskiest part of the fusion), batch sizes {1, 7, 64, 1024} including
// trailing partial batches (interval length 4097 is coprime to all of them),
// and interval boundaries with entry preservation, which exercises the
// rehash-free flow memory rebuild between intervals.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/memmodel"
)

// fusedDiffPackets synthesizes a deterministic Zipf-ish workload: a few
// heavy flows that cross the threshold (exercising promotion and
// preservation) over a long tail that stays in the filter stages.
func fusedDiffPackets(intervals, perInterval int) ([][]FlowKey, [][]uint32) {
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.25, 1, 20000)
	keys := make([][]FlowKey, intervals)
	sizes := make([][]uint32, intervals)
	for iv := 0; iv < intervals; iv++ {
		keys[iv] = make([]FlowKey, perInterval)
		sizes[iv] = make([]uint32, perInterval)
		for i := range keys[iv] {
			keys[iv][i] = FlowKey{Hi: 7, Lo: zipf.Uint64()}
			sizes[iv][i] = 40 + uint32(rng.Intn(1460))
		}
	}
	return keys, sizes
}

// driveFused runs one algorithm instance over the workload in the given
// mode and batch size, closing every interval, and returns the per-interval
// estimates plus the final memory accounting totals.
func driveFused(t *testing.T, alg Algorithm, mode string, batchSize int, keys [][]FlowKey, sizes [][]uint32) ([][]Estimate, memmodel.Counter) {
	t.Helper()
	var reports [][]Estimate
	for iv := range keys {
		k, s := keys[iv], sizes[iv]
		switch mode {
		case "per-packet":
			for i := range k {
				alg.Process(k[i], s[i])
			}
		case "unfused":
			u, ok := alg.(unfusedBatcher)
			if !ok {
				t.Fatalf("%s has no unfused batch kernel", alg.Name())
			}
			for i := 0; i < len(k); i += batchSize {
				end := min(i+batchSize, len(k))
				u.ProcessBatchUnfused(k[i:end], s[i:end])
			}
		case "fused":
			b, ok := alg.(BatchAlgorithm)
			if !ok {
				t.Fatalf("%s has no batch kernel", alg.Name())
			}
			for i := 0; i < len(k); i += batchSize {
				end := min(i+batchSize, len(k))
				b.ProcessBatch(k[i:end], s[i:end])
			}
		default:
			t.Fatalf("unknown mode %q", mode)
		}
		reports = append(reports, alg.EndInterval())
	}
	return reports, *alg.Mem()
}

// requireSameEstimates compares two runs' per-interval estimates exactly.
func requireSameEstimates(t *testing.T, label string, ref, got [][]Estimate, refMem, gotMem memmodel.Counter) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d intervals vs %d", label, len(ref), len(got))
	}
	for iv := range ref {
		if len(ref[iv]) != len(got[iv]) {
			t.Fatalf("%s interval %d: %d estimates vs %d", label, iv, len(ref[iv]), len(got[iv]))
		}
		for j := range ref[iv] {
			if ref[iv][j] != got[iv][j] {
				t.Fatalf("%s interval %d estimate %d: %+v vs %+v",
					label, iv, j, ref[iv][j], got[iv][j])
			}
		}
	}
	if refMem != gotMem {
		t.Fatalf("%s: memory accounting diverged: %+v vs %+v", label, refMem, gotMem)
	}
}

var fusedDiffBatchSizes = []int{1, 7, 64, 1024}

// TestFusedKernelDifferentialMultistage pits the fused multistage kernel
// against the per-packet and unfused paths for every hash family.
func TestFusedKernelDifferentialMultistage(t *testing.T) {
	keys, sizes := fusedDiffPackets(3, 4097)
	for _, hash := range []string{"tabulation", "multiplyshift", "doublehash"} {
		mk := func() Algorithm {
			alg, err := NewMultistageFilter(MultistageConfig{
				Stages: 4, Buckets: 512, Entries: 256, Threshold: 200_000,
				Conservative: true, Shield: true, Preserve: true,
				Hash: hash, Seed: 9,
			})
			if err != nil {
				t.Fatal(err)
			}
			return alg
		}
		ref, refMem := driveFused(t, mk(), "per-packet", 0, keys, sizes)
		for _, bs := range fusedDiffBatchSizes {
			for _, mode := range []string{"unfused", "fused"} {
				label := fmt.Sprintf("multistage/%s %s batch=%d", hash, mode, bs)
				got, gotMem := driveFused(t, mk(), mode, bs, keys, sizes)
				requireSameEstimates(t, label, ref, got, refMem, gotMem)
			}
		}
	}
}

// TestFusedKernelDifferentialSampleAndHold does the same for sample and
// hold, whose fused kernel must additionally consume the sampling RNG in
// exactly the per-packet order.
func TestFusedKernelDifferentialSampleAndHold(t *testing.T) {
	keys, sizes := fusedDiffPackets(3, 4097)
	for _, cfg := range []SampleAndHoldConfig{
		{Entries: 256, Threshold: 200_000, Oversampling: 4, Seed: 9},
		{Entries: 256, Threshold: 200_000, Oversampling: 4.7, Seed: 9, Preserve: true, EarlyRemoval: 0.15},
	} {
		mk := func() Algorithm {
			alg, err := NewSampleAndHold(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return alg
		}
		ref, refMem := driveFused(t, mk(), "per-packet", 0, keys, sizes)
		for _, bs := range fusedDiffBatchSizes {
			for _, mode := range []string{"unfused", "fused"} {
				label := fmt.Sprintf("sample-and-hold preserve=%v %s batch=%d", cfg.Preserve, mode, bs)
				got, gotMem := driveFused(t, mk(), mode, bs, keys, sizes)
				requireSameEstimates(t, label, ref, got, refMem, gotMem)
			}
		}
	}
}
