package traffic

// Benchmarks regenerating every table and figure of the paper, plus
// per-packet microbenchmarks of the algorithms. Each BenchmarkTableN /
// BenchmarkFigureN runs the corresponding experiment driver (the same code
// cmd/experiments uses) at a reduced scale and reports the headline numbers
// as benchmark metrics, so `go test -bench .` regenerates the whole
// evaluation.
//
// Paper-scale runs: `go run ./cmd/experiments -full`.

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core/flowmem"
	"repro/internal/experiments"
)

// benchOpts keeps per-iteration cost low; shapes (who wins, by what factor)
// are already verified by the experiments package's tests.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.02, Runs: 1, Intervals: 4, Seed: 1}
}

func BenchmarkTable1CoreComparison(b *testing.B) {
	var sh, smp float64
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(0, 0, 0, 0, 0)
		sh = res.Rows[0].RelativeError
		smp = res.Rows[2].RelativeError
	}
	b.ReportMetric(sh*100, "S&H-relerr-%")
	b.ReportMetric(smp*100, "sampling-relerr-%")
}

func BenchmarkTable2DeviceComparison(b *testing.B) {
	var longLived float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		longLived = res.LongLivedPct
	}
	b.ReportMetric(longLived, "longlived-%")
}

func BenchmarkTable3TraceStats(b *testing.B) {
	var flows float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		flows = res.Stats[1].Flows["5-tuple"].Avg
	}
	b.ReportMetric(flows, "MAG-5tuple-flows")
}

func BenchmarkFigure6FlowSizeCDF(b *testing.B) {
	var top10 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		top10 = res.Series[0].TopShare(10)
	}
	b.ReportMetric(top10, "MAG-top10%-traffic-%")
}

func BenchmarkTable4SampleAndHold(b *testing.B) {
	var basicErr, preserveErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		basicErr = res.Rows[2].Cells[0].AvgErrorPct
		preserveErr = res.Rows[3].Cells[0].AvgErrorPct
	}
	b.ReportMetric(basicErr, "basic-err-%ofT")
	b.ReportMetric(preserveErr, "preserve-err-%ofT")
}

func BenchmarkFigure7FilterDepth(b *testing.B) {
	var parallel, conservative float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Depths) - 1
		parallel = res.Series["parallel"][last]
		conservative = res.Series["conservative update"][last]
	}
	b.ReportMetric(parallel, "parallel-d4-FP-%")
	b.ReportMetric(conservative, "conservative-d4-FP-%")
}

func benchmarkDeviceTable(b *testing.B, def string) {
	var shErr, nfErr float64
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Intervals = 8
		res, err := experiments.CompareDevices(def, o)
		if err != nil {
			b.Fatal(err)
		}
		shErr = res.Results["sample-and-hold"][0].AvgErrorPct
		nfErr = res.Results["sampled-netflow"][0].AvgErrorPct
	}
	b.ReportMetric(shErr, "S&H-vlarge-err-%")
	b.ReportMetric(nfErr, "netflow-vlarge-err-%")
}

func BenchmarkTable5Devices5Tuple(b *testing.B) { benchmarkDeviceTable(b, "5-tuple") }
func BenchmarkTable6DevicesDstIP(b *testing.B)  { benchmarkDeviceTable(b, "dstIP") }
func BenchmarkTable7DevicesASPair(b *testing.B) { benchmarkDeviceTable(b, "ASpair") }

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Intervals = 3
		if _, err := experiments.Ablations(o); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Per-packet microbenchmarks of the public API ----

func benchPackets(b *testing.B, alg Algorithm) {
	b.Helper()
	key := FlowKey{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.Lo = uint64(i % 50000)
		alg.Process(key, 1000)
	}
}

func BenchmarkSampleAndHoldPerPacket(b *testing.B) {
	alg, err := NewSampleAndHold(SampleAndHoldConfig{
		Entries: 4096, Threshold: 1 << 20, Oversampling: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPackets(b, alg)
}

func BenchmarkMultistageFilterPerPacket(b *testing.B) {
	alg, err := NewMultistageFilter(MultistageConfig{
		Stages: 4, Buckets: 4096, Entries: 3584, Threshold: 1 << 30,
		Conservative: true, Shield: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPackets(b, alg)
}

func BenchmarkSampledNetFlowPerPacket(b *testing.B) {
	alg, err := NewSampledNetFlow(NetFlowConfig{SamplingRate: 16})
	if err != nil {
		b.Fatal(err)
	}
	benchPackets(b, alg)
}

func BenchmarkOrdinarySamplingPerPacket(b *testing.B) {
	alg, err := NewOrdinarySampling(OrdinarySamplingConfig{
		Entries: 4096, Probability: 1.0 / 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPackets(b, alg)
}

// ---- Batched hot path: per-packet vs. batched pipeline on the COS preset ----

// benchCOSPackets generates the scaled COS trace once per benchmark and
// returns it as replayable packets.
func benchCOSPackets(b *testing.B) (TraceMeta, []Packet, float64) {
	b.Helper()
	cfg, err := Preset("COS")
	if err != nil {
		b.Fatal(err)
	}
	cfg = cfg.Scaled(0.05).WithIntervals(2)
	src, err := NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var pkts []Packet
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	return src.Meta(), pkts, cfg.Capacity()
}

// benchReplayPipeline replays the COS trace through a multistage pipeline;
// batch size 1 is the per-packet baseline (one channel op and one Process
// call per packet), larger sizes take the batched hot path end to end.
func benchReplayPipeline(b *testing.B, shards int, hash string, batchSize, replayBatchSize int) {
	meta, pkts, capacity := benchCOSPackets(b)
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pipeline construction (hash-table generation, buffer prealloc) is
		// setup, not hot path: keep it out of the timed region.
		b.StopTimer()
		p, err := NewPipeline(PipelineConfig{
			Shards: shards, QueueDepth: 256, BatchSize: batchSize,
			NewAlgorithm: func(shard int) (Algorithm, error) {
				return NewMultistageFilter(MultistageConfig{
					Stages: 4, Buckets: 256, Entries: 128,
					Threshold:    uint64(0.001 * capacity),
					Conservative: true, Shield: true, Preserve: true,
					Hash: hash, Seed: int64(shard) + 1,
				})
			},
			Definition: FiveTuple, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		src := NewSliceSource(meta, pkts)
		b.StartTimer()
		n, err := Replay(src, p, WithBatchSize(replayBatchSize))
		p.Close()
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkReplayPipelinePerPacket is the pre-batching baseline path.
func BenchmarkReplayPipelinePerPacket(b *testing.B) {
	benchReplayPipeline(b, 4, "", 1, 1)
}

// BenchmarkReplayBatched is the batched path end to end: batched source
// reads, bulk key extraction, per-lane batch buffering (one channel op per
// 64 packets) and the algorithms' batched kernels.
func BenchmarkReplayBatched(b *testing.B) {
	benchReplayPipeline(b, 4, "", 64, DefaultBatchSize)
}

// BenchmarkReplayBatchedSingleShard is the fused kernel's intended
// single-core deployment shape: one lane (shard selection skipped on the
// producer), the doublehash family (one base hash per packet serving the
// filter stages and the flow memory probe), and 256-packet bursts so
// ring handoffs amortize further than the 4-lane default.
func BenchmarkReplayBatchedSingleShard(b *testing.B) {
	benchReplayPipeline(b, 1, "doublehash", 256, 256)
}

// BenchmarkPipelineShardsN is the shard-scaling curve: the same replay at
// 1, 2, 4 and 8 lanes with identical per-lane configuration, so the ratio
// of the pkts/s metrics is the pipeline's parallel speedup. On a
// multi-core box 4 shards should clear 2.5× the single-shard rate (the
// SPSC handoff and fused shard partitioning keep the producer off the
// critical path); on a single-CPU box the lanes time-slice and the curve is
// flat — compare pkts/s, not ns/op, and read EXPERIMENTS.md for the
// recorded curve.
func BenchmarkPipelineShards1(b *testing.B) { benchReplayPipeline(b, 1, "doublehash", 256, 256) }
func BenchmarkPipelineShards2(b *testing.B) { benchReplayPipeline(b, 2, "doublehash", 256, 256) }
func BenchmarkPipelineShards4(b *testing.B) { benchReplayPipeline(b, 4, "doublehash", 256, 256) }
func BenchmarkPipelineShards8(b *testing.B) { benchReplayPipeline(b, 8, "doublehash", 256, 256) }

// BenchmarkPipelineBatchedSteadyState measures the steady-state producer
// loop of the batched pipeline: per-op cost of Packet into lane buffers with
// recycled batches. Allocations per op must be zero.
func BenchmarkPipelineBatchedSteadyState(b *testing.B) {
	p, err := NewPipeline(PipelineConfig{
		Shards: 4, QueueDepth: 256, BatchSize: 64,
		NewAlgorithm: func(shard int) (Algorithm, error) {
			return NewSampleAndHold(SampleAndHoldConfig{
				Entries: 4096, Threshold: 1 << 20, Oversampling: 4, Seed: int64(shard),
			})
		},
		Definition: FiveTuple, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	pk := Packet{Size: 1000, DstIP: 2, Proto: 6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.SrcIP = uint32(i % 10000)
		p.Packet(&pk)
	}
	b.StopTimer()
	p.EndInterval(0)
}

// ---- Batched kernel microbenchmarks (no pipeline, algorithm only) ----

func benchPacketBatches(b *testing.B, alg Algorithm) {
	b.Helper()
	const batch = 64
	keys := make([]FlowKey, batch)
	sizes := make([]uint32, batch)
	for i := range sizes {
		sizes[i] = 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j].Lo = uint64((i*batch + j) % 50000)
		}
		ProcessBatch(alg, keys, sizes)
	}
	// One op is a whole batch; normalize for comparison against the
	// per-packet benchmarks.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pkt")
}

func BenchmarkSampleAndHoldPerBatch(b *testing.B) {
	alg, err := NewSampleAndHold(SampleAndHoldConfig{
		Entries: 4096, Threshold: 1 << 20, Oversampling: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPacketBatches(b, alg)
}

func BenchmarkMultistageFilterPerBatch(b *testing.B) {
	alg, err := NewMultistageFilter(MultistageConfig{
		Stages: 4, Buckets: 4096, Entries: 3584, Threshold: 1 << 30,
		Conservative: true, Shield: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPacketBatches(b, alg)
}

// ---- Cache-conscious core microbenchmarks: flow memory and filter ----

// BenchmarkFlowMemLookupUpdate is the warm per-packet path of every
// algorithm: a hit in the open-addressing flow table plus a counter update.
// Allocations per op must be zero.
func BenchmarkFlowMemLookupUpdate(b *testing.B) {
	m := flowmem.New(4096)
	const flows = 3000
	for i := 0; i < flows; i++ {
		m.Insert(FlowKey{Lo: uint64(i)}, 1)
	}
	key := FlowKey{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.Lo = uint64(i % flows)
		if e := m.Lookup(key); e != nil {
			e.Bytes += 1000
		}
	}
}

// BenchmarkFlowMemLookupMiss is the untracked-flow path: a probe that ends
// on an empty slot.
func BenchmarkFlowMemLookupMiss(b *testing.B) {
	m := flowmem.New(4096)
	for i := 0; i < 3000; i++ {
		m.Insert(FlowKey{Lo: uint64(i)}, 1)
	}
	key := FlowKey{Hi: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.Lo = uint64(i)
		if m.Lookup(key) != nil {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkFlowMemReport measures the per-interval report on a warm table:
// the sorted scratch is reused, so steady-state allocations per op must be
// zero (amortized — the first call grows the scratch).
func BenchmarkFlowMemReport(b *testing.B) {
	m := flowmem.New(4096)
	for i := 0; i < 3000; i++ {
		m.Insert(FlowKey{Lo: uint64(i)}, uint64(i*37%5000))
	}
	m.Report() // warm the scratch outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := m.Report(); len(r) != 3000 {
			b.Fatal("short report")
		}
	}
}

// benchFilterBatch measures the filter's batched kernel for one hash family
// at the per-packet microbenchmark settings (mostly untracked flows, so the
// per-packet hash cost dominates).
func benchFilterBatch(b *testing.B, hash string) {
	alg, err := NewMultistageFilter(MultistageConfig{
		Stages: 4, Buckets: 4096, Entries: 3584, Threshold: 1 << 30,
		Conservative: true, Shield: true, Hash: hash, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPacketBatches(b, alg)
}

// BenchmarkFilterBatchTabulation is the default family: d independent
// tabulation hashes per packet (16 table probes each).
func BenchmarkFilterBatchTabulation(b *testing.B) { benchFilterBatch(b, "tabulation") }

// BenchmarkFilterBatchMultiplyShift is the middle ground: d independent
// 2-independent multiply-shift hashes per packet, no table lookups.
func BenchmarkFilterBatchMultiplyShift(b *testing.B) { benchFilterBatch(b, "multiplyshift") }

// BenchmarkFilterBatchDoubleHash is the Kirsch–Mitzenmacher fast path: one
// base hash per packet, all d stage buckets derived as h1 + i·h2.
func BenchmarkFilterBatchDoubleHash(b *testing.B) { benchFilterBatch(b, "doublehash") }

// ---- Unfused reference kernels: the before side of the fusion A/B ----

// unfusedBatcher is implemented by algorithms that keep their pre-fusion
// batch kernel as a reference (sample and hold, multistage filters).
type unfusedBatcher interface {
	ProcessBatchUnfused(keys []FlowKey, sizes []uint32)
}

func benchPacketBatchesUnfused(b *testing.B, alg Algorithm) {
	b.Helper()
	u, ok := alg.(unfusedBatcher)
	if !ok {
		b.Fatalf("%s has no unfused batch kernel", alg.Name())
	}
	const batch = 64
	keys := make([]FlowKey, batch)
	sizes := make([]uint32, batch)
	for i := range sizes {
		sizes[i] = 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j].Lo = uint64((i*batch + j) % 50000)
		}
		u.ProcessBatchUnfused(keys, sizes)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pkt")
}

func BenchmarkSampleAndHoldPerBatchUnfused(b *testing.B) {
	alg, err := NewSampleAndHold(SampleAndHoldConfig{
		Entries: 4096, Threshold: 1 << 20, Oversampling: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPacketBatchesUnfused(b, alg)
}

func benchFilterBatchUnfused(b *testing.B, hash string) {
	alg, err := NewMultistageFilter(MultistageConfig{
		Stages: 4, Buckets: 4096, Entries: 3584, Threshold: 1 << 30,
		Conservative: true, Shield: true, Hash: hash, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchPacketBatchesUnfused(b, alg)
}

func BenchmarkFilterBatchTabulationUnfused(b *testing.B) { benchFilterBatchUnfused(b, "tabulation") }
func BenchmarkFilterBatchDoubleHashUnfused(b *testing.B) { benchFilterBatchUnfused(b, "doublehash") }

// benchSink keeps pure-compute benchmark results alive.
var benchSink uint64

// BenchmarkCalibration is a fixed pure-compute workload — 1024 dependent
// 64-bit mixes per op, no memory traffic beyond registers — that measures
// only the machine's scalar speed. cmd/benchgate divides guarded kernel
// timings by this to compare runs across machines of different clock rates.
func BenchmarkCalibration(b *testing.B) {
	var h uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			h ^= h >> 29
		}
	}
	benchSink = h
}

var (
	memCalOnce sync.Once
	memCalBuf  []uint64
)

// memCalInit builds a Sattolo cycle over cache-line-spaced slots of a 16 MiB
// buffer: following it is a chain of dependent cache-missing loads.
func memCalInit() {
	const slots = (16 << 20) / 64
	rng := rand.New(rand.NewSource(7))
	memCalBuf = make([]uint64, (16<<20)/8)
	perm := rng.Perm(slots)
	for i, p := range perm {
		next := perm[(i+1)%len(perm)]
		memCalBuf[p*8] = uint64(next * 8)
	}
}

// BenchmarkCalibrationMem is the memory-side calibration twin: 4096
// dependent cache-line loads per op over a fixed 16 MiB pointer chase, pure
// memory latency with no compute. The guarded kernels are memory-bound, so
// on hosts whose memory path degrades under contention (shared VMs with
// noisy neighbors) their timings track this workload, not the scalar one;
// cmd/benchgate uses both anchors to tell code regressions from either kind
// of machine noise.
func BenchmarkCalibrationMem(b *testing.B) {
	memCalOnce.Do(memCalInit)
	var idx uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4096; j++ {
			idx = memCalBuf[idx]
		}
	}
	benchSink += idx
}

func BenchmarkDeviceEndToEnd(b *testing.B) {
	cfg, err := Preset("COS")
	if err != nil {
		b.Fatal(err)
	}
	cfg = cfg.Scaled(0.05).WithIntervals(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg, err := NewMultistageFilter(MultistageConfig{
			Stages: 4, Buckets: 256, Entries: 128,
			Threshold:    uint64(0.001 * cfg.Capacity()),
			Conservative: true, Shield: true, Preserve: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		dev := NewDevice(alg, FiveTuple, NewAdaptor(MultistageAdaptation()))
		src, err := NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n, err := Replay(src, dev)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "packets/op")
	}
}
