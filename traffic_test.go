package traffic

import (
	"bytes"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd exercises the whole facade the way the quickstart
// example does: generate a trace, run both algorithms as devices, compare
// against the oracle, and bill the result.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg, err := Preset("COS")
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scaled(0.05).WithIntervals(3)
	src, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capacity := cfg.Capacity()

	msf, err := NewMultistageFilter(MultistageConfig{
		Stages:       3,
		Buckets:      512,
		Entries:      256,
		Threshold:    uint64(capacity * 0.001),
		Conservative: true,
		Shield:       true,
		Preserve:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(msf, FiveTuple, NewAdaptor(MultistageAdaptation()))
	n, err := Replay(src, dev)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no packets replayed")
	}
	reports := dev.Reports()
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if len(reports[0].Estimates) == 0 {
		t.Fatal("no heavy hitters reported")
	}

	// Billing on the last interval.
	bill, err := BillInterval(2, reports[2].Estimates, capacity, AccountingParams{
		Z:               0.001,
		PerByte:         1e-9,
		FlatPerInterval: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bill.Total() <= 0.25 {
		t.Error("no usage charges on a trace with heavy hitters")
	}
}

func TestPublicAPISampleAndHoldAndBaselines(t *testing.T) {
	mk := func() []Packet {
		var pkts []Packet
		for i := 0; i < 200; i++ {
			pkts = append(pkts, Packet{
				Time: time.Duration(i) * time.Millisecond, Size: 1000,
				SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: 6,
			})
		}
		return pkts
	}
	meta := TraceMeta{Name: "t", LinkBytesPerSec: 1e6, Interval: time.Second, Intervals: 1}

	algs := []struct {
		name string
		mk   func() (Algorithm, error)
	}{
		{"sample-and-hold", func() (Algorithm, error) {
			return NewSampleAndHold(SampleAndHoldConfig{Entries: 64, Threshold: 10000, Oversampling: 20, Seed: 1})
		}},
		{"sampled-netflow", func() (Algorithm, error) {
			return NewSampledNetFlow(NetFlowConfig{SamplingRate: 4})
		}},
		{"ordinary-sampling", func() (Algorithm, error) {
			return NewOrdinarySampling(OrdinarySamplingConfig{Entries: 64, Probability: 0.5, Seed: 1})
		}},
	}
	for _, a := range algs {
		alg, err := a.mk()
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if alg.Name() != a.name {
			t.Errorf("Name = %q, want %q", alg.Name(), a.name)
		}
		dev := NewDevice(alg, FiveTuple, nil)
		if _, err := Replay(NewSliceSource(meta, mk()), dev); err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		reports := dev.Reports()
		if len(reports) != 1 || len(reports[0].Estimates) != 1 {
			t.Fatalf("%s: reports = %+v", a.name, reports)
		}
		// All three should land near the 200 kB truth (the elephant is the
		// only flow; S&H and NetFlow sample it early).
		got := reports[0].Estimates[0].Bytes
		if got < 100000 || got > 400000 {
			t.Errorf("%s: estimate %d far from 200000", a.name, got)
		}
	}
}

func TestPublicAPITraceFormatRoundTrip(t *testing.T) {
	cfg, err := Preset("COS")
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scaled(0.05).WithIntervals(1)
	src, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, src)
	if err != nil || n == 0 {
		t.Fatalf("WriteTrace: n=%d err=%v", n, err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	oracle := NewExactCounter(FiveTuple)
	_, err = Replay(r, struct {
		Consumer
	}{consumerFuncs{
		onPacket: func(p *Packet) { oracle.Packet(p); count++ },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("read %d packets, wrote %d", count, n)
	}
	if oracle.Flows() == 0 {
		t.Error("oracle saw no flows")
	}
}

// consumerFuncs is a local Consumer helper for the round-trip test.
type consumerFuncs struct {
	onPacket func(p *Packet)
}

func (c consumerFuncs) Packet(p *Packet)  { c.onPacket(p) }
func (c consumerFuncs) EndInterval(i int) {}
