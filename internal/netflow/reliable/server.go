package reliable

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ServerConfig configures the collector side of the reliable transport.
type ServerConfig struct {
	// MaxFrameBytes bounds accepted frame bodies (default
	// DefaultMaxFrameBytes); a corrupted length prefix past it drops the
	// connection instead of allocating.
	MaxFrameBytes int
	// AckTimeout bounds each ack/pause/resume write (default 5s). An
	// exporter that stops reading is disconnected rather than allowed to
	// wedge the connection's goroutine — the slow-client backpressure bound.
	AckTimeout time.Duration
	// HandshakeTimeout bounds the wait for the hello frame (default 10s). A
	// client that connects and never speaks used to pin a goroutine and a
	// connection slot forever; now it is dropped and counted.
	HandshakeTimeout time.Duration
	// IdleTimeout evicts a connection that sends nothing — no data, no
	// heartbeat — for this long (default 90s; negative disables). Exporters
	// heartbeat well inside it, so only dead or partitioned peers trip it.
	IdleTimeout time.Duration
	// MaxExporters caps concurrently connected exporters (0 = unlimited).
	// Connections past the cap are closed immediately and counted as
	// rejected — admission control so a misconfigured fleet cannot pile
	// unbounded goroutines onto one collector.
	MaxExporters int
	// InflightBudgetBytes bounds each connection's received-but-unprocessed
	// payload bytes (default 1 MiB). Past it the server sends a pause frame;
	// once the backlog drains to half the budget it sends resume. The
	// exporter keeps spooling while paused, so overload moves to the
	// device's ring (which has an eviction policy) instead of growing
	// unbounded here.
	InflightBudgetBytes int
	// Journal, when set, makes delivery crash-safe: each frame is appended
	// to the write-ahead log (and fsynced per the journal's policy) in the
	// same critical section that runs the handler, before the ack is
	// written — so every acked frame is recoverable. The server also seeds
	// its per-exporter sequence state from the journal's recovered
	// watermarks, so a restarted collector neither regresses its acks nor
	// re-counts replayed frames.
	Journal *Journal
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 90 * time.Second
	}
	if c.InflightBudgetBytes == 0 {
		c.InflightBudgetBytes = 1 << 20
	}
	return c
}

// exporterState is the per-exporter sequence accounting, keyed by the
// exporter ID from the hello frame so it survives reconnects. Its mutex
// serializes delivery per exporter: classification, the handler call and
// the ack are one critical section, so duplicates are exact and the
// handler sees each exporter's frames in order.
type exporterState struct {
	mu         sync.Mutex
	next       uint64 // next expected sequence; next-1 is the cumulative ack
	delivered  uint64
	duplicates uint64
	gaps       uint64
}

// srvFrame is one data frame queued between a connection's reader and its
// delivery worker; the payload is an owned copy.
type srvFrame struct {
	seq     uint64
	payload []byte
}

// srvConn is one accepted connection's shared state. The reader goroutine
// enqueues frames and sends pause when the queued backlog breaches the
// inflight budget; the worker dequeues, delivers and acks, and sends
// resume once the backlog halves. writeMu serializes all writes (acks from
// the worker, pause/resume from either side) and guards paused.
type srvConn struct {
	conn        net.Conn
	queue       chan srvFrame
	queuedBytes atomic.Int64

	writeMu sync.Mutex
	paused  bool
	dead    bool // a control write failed: stop writing, let the reader die
}

// Server is the collection-station side: it accepts reliable-exporter
// connections, dedups frames by per-exporter sequence, hands each frame's
// payload to the handler exactly once per server lifetime, and
// acknowledges cumulatively after the handler returns — so a report is
// only acked once it has actually been aggregated, and a crash between
// receive and ack costs nothing but a redelivery.
//
// Liveness and flow control are explicit. Every connection must produce a
// hello within the handshake timeout and then at least a heartbeat within
// the idle timeout, or it is evicted — a silent peer cannot pin a goroutine
// or a connection slot. Each connection's received-but-undelivered bytes
// are bounded by the inflight budget: past it the server sends a pause
// frame (the exporter stops replaying but keeps spooling) and resumes once
// the worker has drained the backlog to half the budget. An admission cap
// bounds the total number of connected exporters.
//
// Across a server crash and restart the transport is at-least-once: a
// frame handled just before the crash whose ack never reached the exporter
// is redelivered to the next server. The handler receives the frame's
// sequence number so an aggregator that keeps state across server
// instances can stay idempotent (skip seq at or below the highest already
// folded in) and recover exactly-once end to end.
type Server struct {
	cfg     ServerConfig
	handler func(exporter, seq uint64, payload []byte)
	ln      net.Listener

	frames            atomic.Uint64
	dataBytes         atomic.Uint64
	delivered         atomic.Uint64
	duplicates        atomic.Uint64
	gaps              atomic.Uint64
	badFrames         atomic.Uint64
	accepted          atomic.Uint64
	heartbeats        atomic.Uint64
	handshakeTimeouts atomic.Uint64
	evicted           atomic.Uint64
	rejected          atomic.Uint64
	frameSizeDrops    atomic.Uint64
	pausesSent        atomic.Uint64
	resumesSent       atomic.Uint64
	pausedConns       atomic.Int64

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	exporters map[uint64]*exporterState
	closed    bool
	aborted   atomic.Bool // Close (not Shutdown): workers discard their queues
	deadline  time.Time   // non-zero while draining: read deadline for conns

	wg sync.WaitGroup
}

// Listen binds a TCP listener on addr and serves reliable exporters in the
// background. The handler receives each deduplicated frame payload (one
// encoded NetFlow v5 packet) exactly once per exporter, in order, along
// with its sequence number; it may be nil when only the statistics matter.
func Listen(addr string, cfg ServerConfig, handler func(exporter, seq uint64, payload []byte)) (*Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	s := NewServer(ln, cfg, handler)
	return s, ln.Addr(), nil
}

// NewServer serves reliable exporters on an existing listener.
func NewServer(ln net.Listener, cfg ServerConfig, handler func(exporter, seq uint64, payload []byte)) *Server {
	s := &Server{
		cfg:       cfg.withDefaults(),
		handler:   handler,
		ln:        ln,
		conns:     make(map[net.Conn]struct{}),
		exporters: make(map[uint64]*exporterState),
	}
	if j := s.cfg.Journal; j != nil {
		// Resume sequence state where durable state ends: frames below the
		// watermark are journaled (snapshot or WAL), so redeliveries of them
		// classify as duplicates instead of being counted twice.
		for id, next := range j.Watermarks() {
			s.exporters[id] = &exporterState{next: next}
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.cfg.MaxExporters > 0 && len(s.conns) >= s.cfg.MaxExporters {
			// Admission control: over the cap the connection is refused
			// outright. The exporter keeps spooling and retrying with
			// backoff, which is exactly the behavior it has during any
			// collector outage.
			s.mu.Unlock()
			conn.Close()
			s.rejected.Add(1)
			continue
		}
		s.conns[conn] = struct{}{}
		if !s.deadline.IsZero() {
			conn.SetReadDeadline(s.deadline)
		}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// draining reports whether Shutdown has set a global drain deadline (which
// per-frame idle re-arming must not override).
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.deadline.IsZero()
}

// armReadDeadline sets conn's read deadline d from now, unless a drain
// deadline is active (Shutdown's takes precedence — checked under the same
// lock Shutdown holds while setting it, so the two can never interleave
// into an idle deadline outliving the drain) or d is negative (disabled).
func (s *Server) armReadDeadline(conn net.Conn, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.deadline.IsZero() {
		return
	}
	if d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	} else {
		conn.SetReadDeadline(time.Time{})
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.wg.Done()
	}()

	// Handshake: the hello must arrive within its timeout — a connection
	// that never speaks is dropped instead of pinning this goroutine.
	s.armReadDeadline(conn, s.cfg.HandshakeTimeout)
	var buf []byte
	hello, err := readFrame(conn, &buf, s.cfg.MaxFrameBytes)
	if err != nil || hello.typ != frameHello {
		// A peer that times out or disconnects without sending anything is
		// a liveness event, not a corrupt one — only undecodable bytes or a
		// decodable-but-wrong first frame count as bad.
		if err == nil || !isCleanClose(err) {
			s.badFrames.Add(1)
		}
		s.classifyReadError(err, true)
		return
	}
	st := s.exporterState(hello.exporter)
	// The hello carries the highest cumulative ack the exporter has seen.
	// A freshly started collector (or one whose state predates a long
	// disconnect) fast-forwards past those sequences: they were delivered
	// and acknowledged — by this server or a predecessor that crashed — so
	// skipping them is not a gap. Genuinely shed frames are never acked and
	// so still surface as sequence jumps below.
	st.mu.Lock()
	if hello.acked+1 > st.next {
		st.next = hello.acked + 1
	}
	st.mu.Unlock()

	// Reader/worker split: the reader keeps the socket drained (so pause
	// frames and idle deadlines stay meaningful) while the worker delivers,
	// journals and acks. The queue bounds frames; the byte budget bounds
	// payload and triggers pause/resume.
	c := &srvConn{conn: conn, queue: make(chan srvFrame, 256)}
	var workerDone sync.WaitGroup
	workerDone.Add(1)
	go func() {
		defer workerDone.Done()
		s.deliverLoop(c, hello.exporter, st)
	}()
	defer func() {
		close(c.queue)
		workerDone.Wait()
		c.writeMu.Lock()
		if c.paused {
			c.paused = false
			s.pausedConns.Add(-1)
		}
		c.writeMu.Unlock()
	}()

	for {
		s.armReadDeadline(conn, s.cfg.IdleTimeout)
		f, err := readFrame(conn, &buf, s.cfg.MaxFrameBytes)
		if err != nil {
			// Either way the connection is done — the exporter reconnects
			// and redelivers, and dedup absorbs the overlap — but only
			// corruption counts as a bad frame: a clean close between
			// frames (EOF), a severed socket, or a drain deadline expiring
			// is normal lifecycle. An idle timeout outside a drain is an
			// eviction: the peer went silent past the liveness bound.
			if !isCleanClose(err) {
				s.badFrames.Add(1)
			}
			s.classifyReadError(err, false)
			return
		}
		switch f.typ {
		case frameHeartbeat:
			// Liveness only: re-arms the idle deadline on the next loop.
			s.heartbeats.Add(1)
			continue
		case frameData:
		default:
			s.badFrames.Add(1)
			return
		}
		s.frames.Add(1)
		s.dataBytes.Add(uint64(len(f.payload)))

		// The payload aliases the read buffer; the worker needs its own copy.
		qf := srvFrame{seq: f.seq, payload: append([]byte(nil), f.payload...)}
		queued := c.queuedBytes.Add(int64(len(qf.payload)))
		if int(queued) > s.cfg.InflightBudgetBytes {
			s.pause(c)
		}
		c.queue <- qf
	}
}

// classifyReadError files a connection-ending read error under the right
// liveness counter: handshake timeouts, idle evictions, and corrupted
// length prefixes each get their own so an operator can tell a hostile
// network from a dead fleet.
func (s *Server) classifyReadError(err error, handshake bool) {
	if err == nil {
		return
	}
	var fse *frameSizeError
	if errors.As(err, &fse) {
		s.frameSizeDrops.Add(1)
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() && !s.draining() {
		if handshake {
			s.handshakeTimeouts.Add(1)
		} else {
			s.evicted.Add(1)
		}
	}
}

// deliverLoop is a connection's worker: it dequeues frames in order,
// classifies them against the exporter's sequence state, journals and
// delivers the fresh ones, writes the cumulative ack, and lifts the pause
// once the queued backlog halves. On a hard Close it discards the rest of
// its queue — those frames were never acked, so the exporter redelivers
// them and dedup keeps the accounting exact.
func (s *Server) deliverLoop(c *srvConn, exporter uint64, st *exporterState) {
	var ackBuf [lenBytes + 1 + 8 + crcBytes]byte
	for f := range c.queue {
		queued := c.queuedBytes.Add(-int64(len(f.payload)))
		if s.aborted.Load() {
			continue
		}

		st.mu.Lock()
		expected := st.next
		if expected == 0 {
			expected = 1 // sequences start at 1
		}
		var ack uint64
		if f.seq < expected {
			st.duplicates++
			s.duplicates.Add(1)
			ack = expected - 1 // re-ack so the exporter releases its spool
		} else {
			if f.seq > expected {
				// Sequence jumped forward: the exporter's spool overflowed
				// and shed frames we will never see. Account the hole and
				// move on — the surviving data is still exact.
				st.gaps += f.seq - expected
				s.gaps.Add(f.seq - expected)
			}
			if j := s.cfg.Journal; j != nil {
				// WAL append happens-before the handler's aggregation, and
				// both precede the ack below: acked ⇒ journaled ⇒ recoverable.
				j.Deliver(exporter, f.seq, f.payload, func() {
					if s.handler != nil {
						s.handler(exporter, f.seq, f.payload)
					}
				})
			} else if s.handler != nil {
				s.handler(exporter, f.seq, f.payload)
			}
			st.next = f.seq + 1
			st.delivered++
			s.delivered.Add(1)
			ack = f.seq
		}
		st.mu.Unlock()

		c.writeMu.Lock()
		if !c.dead {
			c.conn.SetWriteDeadline(time.Now().Add(s.cfg.AckTimeout))
			if _, err := c.conn.Write(appendAck(ackBuf[:0], ack)); err != nil {
				c.dead = true
				c.conn.Close() // unblocks the reader; frames past here redeliver
			}
		}
		if c.paused && int(queued) <= s.cfg.InflightBudgetBytes/2 {
			s.resumeLocked(c)
		}
		c.writeMu.Unlock()
	}
}

// pause sends a pause frame if the connection is not already paused.
func (s *Server) pause(c *srvConn) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.paused || c.dead {
		return
	}
	var buf [lenBytes + 1 + crcBytes]byte
	c.conn.SetWriteDeadline(time.Now().Add(s.cfg.AckTimeout))
	if _, err := c.conn.Write(appendControl(buf[:0], framePause)); err != nil {
		c.dead = true
		c.conn.Close()
		return
	}
	c.paused = true
	s.pausesSent.Add(1)
	s.pausedConns.Add(1)
}

// resumeLocked sends a resume frame; the caller holds c.writeMu and has
// checked c.paused.
func (s *Server) resumeLocked(c *srvConn) {
	if c.dead {
		return
	}
	var buf [lenBytes + 1 + crcBytes]byte
	c.conn.SetWriteDeadline(time.Now().Add(s.cfg.AckTimeout))
	if _, err := c.conn.Write(appendControl(buf[:0], frameResume)); err != nil {
		c.dead = true
		c.conn.Close()
		return
	}
	c.paused = false
	s.resumesSent.Add(1)
	s.pausedConns.Add(-1)
}

// isCleanClose reports whether a read error is normal connection lifecycle
// (EOF between frames, a closed socket, a drain deadline) rather than a
// corrupted or truncated frame.
func isCleanClose(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) exporterState(id uint64) *exporterState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.exporters[id]
	if st == nil {
		st = &exporterState{}
		s.exporters[id] = st
	}
	return st
}

// Close severs every connection immediately and stops accepting. Frames in
// flight are abandoned (the transport redelivers them on the exporter's
// next connection, so nothing is lost) — the chaos tests use it as the
// collector crash.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.aborted.Store(true)
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown stops accepting, then lets each connection keep delivering
// frames already in flight for up to timeout before severing it — the
// graceful drain for SIGTERM: reports the kernel has already accepted are
// aggregated and acked rather than discarded. Queued frames each worker
// has already received are delivered even after the read deadline severs
// their connection.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.ln.Close()
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	s.closed = true
	s.deadline = deadline
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// ExporterStats is one exporter's sequence accounting.
type ExporterStats struct {
	// NextSeq is the next expected sequence number (NextSeq-1 is the
	// cumulative ack).
	NextSeq uint64 `json:"next_seq"`
	// Delivered counts frames handed to the handler exactly once.
	Delivered uint64 `json:"delivered"`
	// Duplicates counts redelivered frames absorbed by dedup.
	Duplicates uint64 `json:"duplicates"`
	// Gaps counts sequence numbers skipped forever (exporter spool
	// overflow).
	Gaps uint64 `json:"gaps"`
}

// Stats is a point-in-time copy of the server's counters.
type Stats struct {
	// Frames and Bytes count data frames received, duplicates included.
	Frames uint64 `json:"frames"`
	Bytes  uint64 `json:"bytes"`
	// Delivered, Duplicates and Gaps aggregate the per-exporter accounting.
	Delivered  uint64 `json:"delivered"`
	Duplicates uint64 `json:"duplicates"`
	Gaps       uint64 `json:"gaps"`
	// BadFrames counts connections dropped on undecodable or out-of-
	// protocol frames.
	BadFrames uint64 `json:"bad_frames"`
	// FrameSizeDrops counts connections dropped on an out-of-range length
	// prefix (zero-length or oversized) — the signature of a corrupted or
	// hostile length prefix, broken out of BadFrames so it is visible.
	FrameSizeDrops uint64 `json:"frame_size_drops"`
	// Heartbeats counts liveness frames received.
	Heartbeats uint64 `json:"heartbeats"`
	// HandshakeTimeouts counts connections dropped for never sending hello;
	// Evicted counts established connections dropped for exceeding the idle
	// timeout; Rejected counts connections refused by the MaxExporters
	// admission cap.
	HandshakeTimeouts uint64 `json:"handshake_timeouts"`
	Evicted           uint64 `json:"evicted"`
	Rejected          uint64 `json:"rejected"`
	// PausesSent and ResumesSent count backpressure frames emitted;
	// PausedConnections is the number of connections currently paused.
	PausesSent        uint64 `json:"pauses_sent"`
	ResumesSent       uint64 `json:"resumes_sent"`
	PausedConnections int    `json:"paused_connections"`
	// Connections counts accepted connections; ActiveConnections the ones
	// currently open.
	Connections       uint64 `json:"connections"`
	ActiveConnections int    `json:"active_connections"`
	// PerExporter is the accounting keyed by exporter ID.
	PerExporter map[uint64]ExporterStats `json:"per_exporter"`
}

// Stats returns a snapshot of the collection statistics.
func (s *Server) Stats() Stats {
	st := Stats{
		Frames:            s.frames.Load(),
		Bytes:             s.dataBytes.Load(),
		Delivered:         s.delivered.Load(),
		Duplicates:        s.duplicates.Load(),
		Gaps:              s.gaps.Load(),
		BadFrames:         s.badFrames.Load(),
		FrameSizeDrops:    s.frameSizeDrops.Load(),
		Heartbeats:        s.heartbeats.Load(),
		HandshakeTimeouts: s.handshakeTimeouts.Load(),
		Evicted:           s.evicted.Load(),
		Rejected:          s.rejected.Load(),
		PausesSent:        s.pausesSent.Load(),
		ResumesSent:       s.resumesSent.Load(),
		PausedConnections: int(s.pausedConns.Load()),
		Connections:       s.accepted.Load(),
		PerExporter:       make(map[uint64]ExporterStats),
	}
	s.mu.Lock()
	st.ActiveConnections = len(s.conns)
	states := make(map[uint64]*exporterState, len(s.exporters))
	for id, es := range s.exporters {
		states[id] = es
	}
	s.mu.Unlock()
	for id, es := range states {
		es.mu.Lock()
		st.PerExporter[id] = ExporterStats{
			NextSeq:    es.next,
			Delivered:  es.delivered,
			Duplicates: es.duplicates,
			Gaps:       es.gaps,
		}
		es.mu.Unlock()
	}
	return st
}
