package reliable

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ServerConfig configures the collector side of the reliable transport.
type ServerConfig struct {
	// MaxFrameBytes bounds accepted frame bodies (default
	// DefaultMaxFrameBytes); a corrupted length prefix past it drops the
	// connection instead of allocating.
	MaxFrameBytes int
	// AckTimeout bounds each ack write (default 5s). An exporter that stops
	// reading acks is disconnected rather than allowed to wedge the
	// connection's goroutine — the slow-client backpressure bound.
	AckTimeout time.Duration
	// Journal, when set, makes delivery crash-safe: each frame is appended
	// to the write-ahead log (and fsynced per the journal's policy) in the
	// same critical section that runs the handler, before the ack is
	// written — so every acked frame is recoverable. The server also seeds
	// its per-exporter sequence state from the journal's recovered
	// watermarks, so a restarted collector neither regresses its acks nor
	// re-counts replayed frames.
	Journal *Journal
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 5 * time.Second
	}
	return c
}

// exporterState is the per-exporter sequence accounting, keyed by the
// exporter ID from the hello frame so it survives reconnects. Its mutex
// serializes delivery per exporter: classification, the handler call and
// the ack are one critical section, so duplicates are exact and the
// handler sees each exporter's frames in order.
type exporterState struct {
	mu         sync.Mutex
	next       uint64 // next expected sequence; next-1 is the cumulative ack
	delivered  uint64
	duplicates uint64
	gaps       uint64
}

// Server is the collection-station side: it accepts reliable-exporter
// connections, dedups frames by per-exporter sequence, hands each frame's
// payload to the handler exactly once per server lifetime, and
// acknowledges cumulatively after the handler returns — so a report is
// only acked once it has actually been aggregated, and a crash between
// receive and ack costs nothing but a redelivery. Backpressure is
// structural: one frame is read, handled and acked at a time per
// connection, so a slow handler slows the exporter's ack stream (filling
// its spool) instead of buffering unboundedly here.
//
// Across a server crash and restart the transport is at-least-once: a
// frame handled just before the crash whose ack never reached the exporter
// is redelivered to the next server. The handler receives the frame's
// sequence number so an aggregator that keeps state across server
// instances can stay idempotent (skip seq at or below the highest already
// folded in) and recover exactly-once end to end.
type Server struct {
	cfg     ServerConfig
	handler func(exporter, seq uint64, payload []byte)
	ln      net.Listener

	frames     atomic.Uint64
	dataBytes  atomic.Uint64
	delivered  atomic.Uint64
	duplicates atomic.Uint64
	gaps       atomic.Uint64
	badFrames  atomic.Uint64
	accepted   atomic.Uint64

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	exporters map[uint64]*exporterState
	closed    bool
	deadline  time.Time // non-zero while draining: read deadline for conns

	wg sync.WaitGroup
}

// Listen binds a TCP listener on addr and serves reliable exporters in the
// background. The handler receives each deduplicated frame payload (one
// encoded NetFlow v5 packet) exactly once per exporter, in order, along
// with its sequence number; it may be nil when only the statistics matter.
func Listen(addr string, cfg ServerConfig, handler func(exporter, seq uint64, payload []byte)) (*Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	s := NewServer(ln, cfg, handler)
	return s, ln.Addr(), nil
}

// NewServer serves reliable exporters on an existing listener.
func NewServer(ln net.Listener, cfg ServerConfig, handler func(exporter, seq uint64, payload []byte)) *Server {
	s := &Server{
		cfg:       cfg.withDefaults(),
		handler:   handler,
		ln:        ln,
		conns:     make(map[net.Conn]struct{}),
		exporters: make(map[uint64]*exporterState),
	}
	if j := s.cfg.Journal; j != nil {
		// Resume sequence state where durable state ends: frames below the
		// watermark are journaled (snapshot or WAL), so redeliveries of them
		// classify as duplicates instead of being counted twice.
		for id, next := range j.Watermarks() {
			s.exporters[id] = &exporterState{next: next}
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		if !s.deadline.IsZero() {
			conn.SetReadDeadline(s.deadline)
		}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.wg.Done()
	}()

	var buf []byte
	hello, err := readFrame(conn, &buf, s.cfg.MaxFrameBytes)
	if err != nil || hello.typ != frameHello {
		s.badFrames.Add(1)
		return
	}
	st := s.exporterState(hello.exporter)
	// The hello carries the highest cumulative ack the exporter has seen.
	// A freshly started collector (or one whose state predates a long
	// disconnect) fast-forwards past those sequences: they were delivered
	// and acknowledged — by this server or a predecessor that crashed — so
	// skipping them is not a gap. Genuinely shed frames are never acked and
	// so still surface as sequence jumps below.
	st.mu.Lock()
	if hello.acked+1 > st.next {
		st.next = hello.acked + 1
	}
	st.mu.Unlock()

	var ackBuf [lenBytes + 1 + 8]byte
	for {
		f, err := readFrame(conn, &buf, s.cfg.MaxFrameBytes)
		if err != nil {
			// Either way the connection is done — the exporter reconnects
			// and redelivers, and dedup absorbs the overlap — but only
			// corruption counts as a bad frame: a clean close between
			// frames (EOF), a severed socket, or a drain deadline expiring
			// is normal lifecycle.
			if !isCleanClose(err) {
				s.badFrames.Add(1)
			}
			return
		}
		if f.typ != frameData {
			s.badFrames.Add(1)
			return
		}
		s.frames.Add(1)
		s.dataBytes.Add(uint64(len(f.payload)))

		st.mu.Lock()
		expected := st.next
		if expected == 0 {
			expected = 1 // sequences start at 1
		}
		var ack uint64
		if f.seq < expected {
			st.duplicates++
			s.duplicates.Add(1)
			ack = expected - 1 // re-ack so the exporter releases its spool
		} else {
			if f.seq > expected {
				// Sequence jumped forward: the exporter's spool overflowed
				// and shed frames we will never see. Account the hole and
				// move on — the surviving data is still exact.
				st.gaps += f.seq - expected
				s.gaps.Add(f.seq - expected)
			}
			if j := s.cfg.Journal; j != nil {
				// WAL append happens-before the handler's aggregation, and
				// both precede the ack below: acked ⇒ journaled ⇒ recoverable.
				j.Deliver(hello.exporter, f.seq, f.payload, func() {
					if s.handler != nil {
						s.handler(hello.exporter, f.seq, f.payload)
					}
				})
			} else if s.handler != nil {
				s.handler(hello.exporter, f.seq, f.payload)
			}
			st.next = f.seq + 1
			st.delivered++
			s.delivered.Add(1)
			ack = f.seq
		}
		st.mu.Unlock()

		conn.SetWriteDeadline(time.Now().Add(s.cfg.AckTimeout))
		if _, err := conn.Write(appendAck(ackBuf[:0], ack)); err != nil {
			return
		}
	}
}

// isCleanClose reports whether a read error is normal connection lifecycle
// (EOF between frames, a closed socket, a drain deadline) rather than a
// corrupted or truncated frame.
func isCleanClose(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) exporterState(id uint64) *exporterState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.exporters[id]
	if st == nil {
		st = &exporterState{}
		s.exporters[id] = st
	}
	return st
}

// Close severs every connection immediately and stops accepting. Frames in
// flight are abandoned (the transport redelivers them on the exporter's
// next connection, so nothing is lost) — the chaos tests use it as the
// collector crash.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown stops accepting, then lets each connection keep delivering
// frames already in flight for up to timeout before severing it — the
// graceful drain for SIGTERM: reports the kernel has already accepted are
// aggregated and acked rather than discarded.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.ln.Close()
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	s.closed = true
	s.deadline = deadline
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// ExporterStats is one exporter's sequence accounting.
type ExporterStats struct {
	// NextSeq is the next expected sequence number (NextSeq-1 is the
	// cumulative ack).
	NextSeq uint64 `json:"next_seq"`
	// Delivered counts frames handed to the handler exactly once.
	Delivered uint64 `json:"delivered"`
	// Duplicates counts redelivered frames absorbed by dedup.
	Duplicates uint64 `json:"duplicates"`
	// Gaps counts sequence numbers skipped forever (exporter spool
	// overflow).
	Gaps uint64 `json:"gaps"`
}

// Stats is a point-in-time copy of the server's counters.
type Stats struct {
	// Frames and Bytes count data frames received, duplicates included.
	Frames uint64 `json:"frames"`
	Bytes  uint64 `json:"bytes"`
	// Delivered, Duplicates and Gaps aggregate the per-exporter accounting.
	Delivered  uint64 `json:"delivered"`
	Duplicates uint64 `json:"duplicates"`
	Gaps       uint64 `json:"gaps"`
	// BadFrames counts connections dropped on undecodable or out-of-
	// protocol frames.
	BadFrames uint64 `json:"bad_frames"`
	// Connections counts accepted connections; ActiveConnections the ones
	// currently open.
	Connections       uint64 `json:"connections"`
	ActiveConnections int    `json:"active_connections"`
	// PerExporter is the accounting keyed by exporter ID.
	PerExporter map[uint64]ExporterStats `json:"per_exporter"`
}

// Stats returns a snapshot of the collection statistics.
func (s *Server) Stats() Stats {
	st := Stats{
		Frames:      s.frames.Load(),
		Bytes:       s.dataBytes.Load(),
		Delivered:   s.delivered.Load(),
		Duplicates:  s.duplicates.Load(),
		Gaps:        s.gaps.Load(),
		BadFrames:   s.badFrames.Load(),
		Connections: s.accepted.Load(),
		PerExporter: make(map[uint64]ExporterStats),
	}
	s.mu.Lock()
	st.ActiveConnections = len(s.conns)
	states := make(map[uint64]*exporterState, len(s.exporters))
	for id, es := range s.exporters {
		states[id] = es
	}
	s.mu.Unlock()
	for id, es := range states {
		es.mu.Lock()
		st.PerExporter[id] = ExporterStats{
			NextSeq:    es.next,
			Delivered:  es.delivered,
			Duplicates: es.duplicates,
			Gaps:       es.gaps,
		}
		es.mu.Unlock()
	}
	return st
}
