package reliable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/telemetry"
)

// Journal is the collector's crash-safe state: a write-ahead log of every
// delivered frame plus a periodic snapshot of the application's accumulated
// totals and the per-exporter sequence watermarks. A frame is journaled —
// and, under the frame/batch fsync policies, made durable — inside the same
// critical section that hands it to the aggregation handler and before the
// ack goes back to the exporter, so "acked" implies "recoverable": a
// restarted collector replays the WAL on top of the last snapshot and
// neither regresses its cumulative acks nor re-counts frames it already
// folded in.
//
// The snapshot is atomic (write-temp, fsync, rename) and truncates the WAL,
// so the journal's disk footprint is one snapshot plus the frames delivered
// since it was taken.
type Journal struct {
	cfg JournalConfig
	tel *telemetry.Durable

	mu         sync.Mutex
	w          segmentWriter
	segs       []uint64 // closed segment indices awaiting snapshot GC
	watermarks map[uint64]uint64
}

// snapRecord is the snapshot's record type: watermark table + state blob.
const recSnap = 's'

// JournalConfig configures the collector journal.
type JournalConfig struct {
	// Dir is the state directory; created if missing.
	Dir string
	// Fsync is the WAL fsync policy (default FsyncPerBatch — one fsync per
	// delivered frame, before its ack). FsyncTimer and FsyncNone are faster
	// but open a window where a SIGKILL loses frames the exporter was
	// already told to forget.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncTimer cadence (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates WAL segments past this size (default 4 MiB).
	SegmentBytes int64
	// Wrap, when set, wraps each opened segment file — the fault-injection
	// seam for tests.
	Wrap func(SpoolFile) SpoolFile
}

// Validate checks the configuration.
func (c JournalConfig) Validate() error {
	if c.Dir == "" {
		return cfgerr.New("netflow/reliable", "Dir", "must be set")
	}
	if c.SegmentBytes < 0 {
		return cfgerr.New("netflow/reliable", "SegmentBytes", "must not be negative, got %d", c.SegmentBytes)
	}
	if c.FsyncInterval < 0 {
		return cfgerr.New("netflow/reliable", "FsyncInterval", "must not be negative, got %v", c.FsyncInterval)
	}
	return nil
}

func (c JournalConfig) withDefaults() JournalConfig {
	if c.FsyncInterval == 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 4 << 20
	}
	return c
}

// JournaledFrame is one WAL frame replayed at recovery.
type JournaledFrame struct {
	Exporter uint64
	Seq      uint64
	Payload  []byte
}

// Recovery is what OpenJournal found on disk. The caller restores its
// aggregation state from State (the last snapshot's blob, nil if none) and
// then re-applies Frames in order; Watermarks seed the server so its
// cumulative acks resume exactly where durable state ends.
type Recovery struct {
	// Watermarks maps exporter ID to the next expected sequence (the
	// recovered cumulative ack + 1), WAL replay included.
	Watermarks map[uint64]uint64
	// State is the application blob stored in the last snapshot, nil when
	// no snapshot exists.
	State []byte
	// Frames are the WAL frames past the snapshot's watermarks, in delivery
	// order — re-apply them to the restored state.
	Frames []JournaledFrame
	// TornRecords and TornBytes count what crash-recovery truncated.
	TornRecords int
	TornBytes   int64
}

// OpenJournal opens (or creates) the journal in cfg.Dir, recovers snapshot
// and WAL, truncates torn tails, and resumes logging. tel may be nil.
func OpenJournal(cfg JournalConfig, tel *telemetry.Durable) (*Journal, *Recovery, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()
	if tel == nil {
		tel = new(telemetry.Durable)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	j := &Journal{
		cfg: cfg,
		tel: tel,
		w: segmentWriter{
			dir: cfg.Dir, prefix: "wal", policy: cfg.Fsync, interval: cfg.FsyncInterval,
			segBytes: cfg.SegmentBytes, wrap: cfg.Wrap, tel: tel,
		},
		watermarks: make(map[uint64]uint64),
	}
	rec, err := j.recover()
	if err != nil {
		return nil, nil, journalStateError(cfg.Dir, err)
	}
	return j, rec, nil
}

// snapshotPath is the current snapshot; snapshotTmp its in-progress twin.
func (j *Journal) snapshotPath() string { return filepath.Join(j.cfg.Dir, "snapshot.bin") }
func (j *Journal) snapshotTmp() string  { return filepath.Join(j.cfg.Dir, "snapshot.tmp") }

// recover loads the snapshot, replays the WAL past it, truncates torn
// tails, and opens a fresh segment for new appends.
func (j *Journal) recover() (*Recovery, error) {
	rec := &Recovery{Watermarks: j.watermarks}

	// Snapshot: a single-record segment file, renamed into place atomically.
	// A missing file is a fresh start; a torn one (disk corruption — the
	// rename protocol never leaves a half-written snapshot.bin) is counted
	// and treated as absent, so recovery still yields the WAL's frames.
	if recs, _, tornBytes, err := scanSegment(j.snapshotPath()); err == nil {
		if len(recs) >= 1 && recs[0].typ == recSnap {
			state, wms, ok := decodeSnapshot(recs[0].body)
			if ok {
				rec.State = state
				for id, next := range wms {
					j.watermarks[id] = next
				}
			} else {
				rec.TornRecords++
			}
		}
		if tornBytes > 0 {
			rec.TornRecords++
			rec.TornBytes += tornBytes
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	os.Remove(j.snapshotTmp()) //nolint:errcheck // leftover from a crash mid-snapshot

	idxs, err := listSegments(j.cfg.Dir, "wal")
	if err != nil {
		return nil, err
	}
	var lastIdx uint64
	for _, idx := range idxs {
		if idx > lastIdx {
			lastIdx = idx
		}
		path := segPath(j.cfg.Dir, "wal", idx)
		recs, _, tornBytes, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		goodEnd := int64(len(segMagic))
		for _, r := range recs {
			if r.typ != recFrame || len(r.body) < 16 {
				continue
			}
			exporter := binary.BigEndian.Uint64(r.body[0:8])
			seq := binary.BigEndian.Uint64(r.body[8:16])
			goodEnd = r.end
			if seq < j.watermarks[exporter] {
				continue // already inside the snapshot
			}
			rec.Frames = append(rec.Frames, JournaledFrame{
				Exporter: exporter,
				Seq:      seq,
				Payload:  append([]byte(nil), r.body[16:]...),
			})
			j.watermarks[exporter] = seq + 1
		}
		if tornBytes > 0 {
			rec.TornRecords++
			rec.TornBytes += tornBytes
			if err := truncateSegment(path, goodEnd); err != nil {
				return nil, err
			}
		}
		// Old segments stay until the next snapshot GCs them; recovery never
		// deletes data it just proved it could read.
		j.segs = append(j.segs, idx)
	}

	var totalBytes uint64
	for _, f := range rec.Frames {
		totalBytes += uint64(len(f.Payload))
	}
	j.tel.ObserveRecovery(len(rec.Frames), totalBytes, rec.TornRecords, rec.TornBytes, 0)

	// Always append to a fresh segment: replayed segments are immutable
	// history that the next snapshot deletes wholesale.
	if err := j.w.open(lastIdx + 1); err != nil {
		return nil, err
	}
	return rec, nil
}

// Deliver journals one frame and then applies it, as one critical section:
// the WAL append (fsynced per policy) happens-before apply, and Snapshot
// can never observe totals that include a frame the WAL does not. The
// server calls this with the aggregation handler as apply, before writing
// the ack. Journal failures are counted and the journal disabled — the
// collector keeps serving from memory, degraded.
func (j *Journal) Deliver(exporter, seq uint64, payload []byte, apply func()) {
	var head [16]byte
	binary.BigEndian.PutUint64(head[0:8], exporter)
	binary.BigEndian.PutUint64(head[8:16], seq)
	j.mu.Lock()
	if j.w.append(recFrame, head[:], payload) == nil {
		j.w.commitBatch() //nolint:errcheck // sticky error surfaces in telemetry
	}
	if next := seq + 1; next > j.watermarks[exporter] {
		j.watermarks[exporter] = next
	}
	if apply != nil {
		apply()
	}
	j.mu.Unlock()
}

// Snapshot atomically persists state (the application's serialized totals)
// together with the current watermarks, then truncates the WAL. stateFn is
// called under the journal lock, so the state it captures is exactly
// consistent with the watermarks stored beside it.
func (j *Journal) Snapshot(stateFn func() []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	state := stateFn()

	body := make([]byte, 0, 16*len(j.watermarks)+len(state)+8)
	body = binary.BigEndian.AppendUint32(body, uint32(len(j.watermarks)))
	for id, next := range j.watermarks {
		body = binary.BigEndian.AppendUint64(body, id)
		body = binary.BigEndian.AppendUint64(body, next)
	}
	body = binary.BigEndian.AppendUint32(body, uint32(len(state)))
	body = append(body, state...)

	if err := writeSnapshotFile(j.snapshotTmp(), body); err != nil {
		j.tel.ObserveError()
		return err
	}
	if err := os.Rename(j.snapshotTmp(), j.snapshotPath()); err != nil {
		j.tel.ObserveError()
		return err
	}
	syncDir(j.cfg.Dir)
	j.tel.ObserveSnapshot()

	// Everything journaled so far is covered by the snapshot: delete the
	// closed segments and restart the active one.
	cur := j.w.idx
	j.w.close()                               //nolint:errcheck // segment is deleted next either way
	os.Remove(segPath(j.cfg.Dir, "wal", cur)) //nolint:errcheck // best-effort GC
	for _, idx := range j.segs {
		os.Remove(segPath(j.cfg.Dir, "wal", idx)) //nolint:errcheck // best-effort GC
	}
	j.tel.ObserveTruncation(len(j.segs) + 1)
	j.segs = j.segs[:0]
	syncDir(j.cfg.Dir)
	j.w.err = nil // the snapshot superseded whatever a sticky error lost
	return j.w.open(cur + 1)
}

// Watermarks returns a copy of the per-exporter next-expected-sequence
// table (recovered plus journaled since), for seeding a Server.
func (j *Journal) Watermarks() map[uint64]uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[uint64]uint64, len(j.watermarks))
	for id, next := range j.watermarks {
		out[id] = next
	}
	return out
}

// Durability returns the journal's telemetry counters.
func (j *Journal) Durability() *telemetry.Durable { return j.tel }

// Close fsyncs and closes the WAL. Take a final Snapshot first if the
// application wants its totals durable without replay.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.close()
}

// writeSnapshotFile writes a single-record segment file and fsyncs it.
func writeSnapshotFile(path string, body []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := segmentWriter{tel: new(telemetry.Durable)}
	w.f = f
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := w.append(recSnap, body, nil); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeSnapshot parses a snapshot record body.
func decodeSnapshot(body []byte) (state []byte, watermarks map[uint64]uint64, ok bool) {
	if len(body) < 4 {
		return nil, nil, false
	}
	n := int(binary.BigEndian.Uint32(body[:4]))
	off := 4
	if n < 0 || len(body) < off+16*n+4 {
		return nil, nil, false
	}
	watermarks = make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		id := binary.BigEndian.Uint64(body[off : off+8])
		next := binary.BigEndian.Uint64(body[off+8 : off+16])
		watermarks[id] = next
		off += 16
	}
	stateLen := int(binary.BigEndian.Uint32(body[off : off+4]))
	off += 4
	if stateLen < 0 || len(body) < off+stateLen {
		return nil, nil, false
	}
	return append([]byte(nil), body[off:off+stateLen]...), watermarks, true
}

// journalStateError wraps a recovery failure with the directory.
func journalStateError(dir string, err error) error {
	return fmt.Errorf("netflow/reliable: journal %s: %w", dir, err)
}
