package reliable

import (
	"testing"
	"time"
)

// BenchmarkDurableEnqueue measures what each fsync policy costs on the
// device's per-interval hot path: one Enqueue of a three-frame report with
// the disk spool journaling every frame. "off" is the in-memory baseline
// (no SpoolDir); the other lanes differ only in when the journal calls
// fsync. This is the number EXPERIMENTS.md quotes for the durability tax.
func BenchmarkDurableEnqueue(b *testing.B) {
	policies := []struct {
		name string
		dir  bool
		pol  FsyncPolicy
	}{
		{"off", false, FsyncNone},
		{"none", true, FsyncNone},
		{"timer", true, FsyncTimer},
		{"batch", true, FsyncPerBatch},
		{"frame", true, FsyncPerFrame},
	}
	pkts := mkPkts(3, "bench")
	var payload int
	for _, p := range pkts {
		payload += len(p)
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			cfg := fastConfig("127.0.0.1:1") // reserved port: dial fails, exporter backs off
			cfg.SpoolFrames = 8
			cfg.BackoffMin = time.Hour
			cfg.BackoffMax = time.Hour
			cfg.DrainTimeout = time.Millisecond
			if pc.dir {
				cfg.SpoolDir = b.TempDir()
				cfg.Fsync = pc.pol
			}
			exp, err := NewExporter(cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer exp.Close()
			exp.Enqueue(pkts) // warm the scratch buffer
			b.SetBytes(int64(payload))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exp.Enqueue(pkts)
			}
		})
	}
}
