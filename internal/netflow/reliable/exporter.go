package reliable

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/telemetry"
)

// ExporterConfig configures the reliable exporter (the device side).
type ExporterConfig struct {
	// Addr is the collector's TCP address.
	Addr string
	// ExporterID identifies this device across reconnects; the collector
	// keys its sequence/dedup state by it. Must be non-zero.
	ExporterID uint64
	// SpoolFrames bounds the spool (in frames, one encoded v5 packet each).
	// When full, the oldest spooled frame is dropped — DropOldest, matching
	// the pipeline's overload vocabulary: under a long outage the freshest
	// reports survive. 0 means the default of 1024.
	SpoolFrames int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// SendTimeout bounds each frame write (default 5s); a hung collector
	// trips it and triggers a reconnect rather than blocking forever.
	SendTimeout time.Duration
	// BackoffMin and BackoffMax bound the exponential reconnect backoff
	// (defaults 50ms and 5s); actual sleeps are jittered in [d/2, d).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DrainTimeout is how long Close waits for spooled frames to be
	// acknowledged before giving up (default 3s).
	DrainTimeout time.Duration
	// Seed seeds the backoff jitter (default 1), keeping tests determinate.
	Seed int64
	// HeartbeatInterval is how often the exporter sends a liveness frame on
	// an established connection (default 10s; negative disables). Heartbeats
	// are what let the collector evict dead peers by idle timeout without
	// evicting merely quiet ones, so the interval must sit well inside the
	// collector's IdleTimeout.
	HeartbeatInterval time.Duration
	// PauseTimeout bounds how long the exporter stays paused by collector
	// backpressure before tearing the connection down and re-dialing
	// (default 30s; negative disables). A collector that pauses and then
	// wedges looks exactly like a dead one; reconnecting re-enters its
	// admission and flow control from scratch.
	PauseTimeout time.Duration
	// SpoolHighWater and SpoolLowWater are spool-occupancy fractions
	// (defaults 0.75 and 0.50) bounding the pressure hysteresis: above high
	// water the exporter reports overload pressure (Overloaded returns true
	// and the telemetry gauge trips, which a device wires into its Degrade
	// overload policy); pressure clears once occupancy falls to low water.
	SpoolHighWater float64
	SpoolLowWater  float64

	// SpoolDir, when set, backs the ring with a durable on-disk journal:
	// frames are CRC-framed into append-only segment files before the
	// sender can see them, cumulative acks are journaled too, and a
	// restarted exporter replays the unacknowledged backlog under its
	// original sequence numbers — so a SIGKILL loses nothing the fsync
	// policy promised to keep. Empty (the default) keeps the PR 4 behavior:
	// memory-only spool, process death loses unacked frames.
	SpoolDir string
	// Fsync is the journal's fsync policy (default FsyncPerBatch: one
	// fsync per Enqueue). See FsyncPolicy for the trade-offs.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncTimer cadence (default 100ms).
	FsyncInterval time.Duration
	// SpoolSegmentBytes rotates journal segments past this size (default
	// 4 MiB); acked segments are deleted whole.
	SpoolSegmentBytes int64
	// SpoolMaxBytes caps the journal's disk footprint (default 256 MiB);
	// past it the oldest closed segment is shed, DropOldest on disk.
	SpoolMaxBytes int64
	// SpoolWrap, when set, wraps each opened segment file — the
	// fault-injection seam for crash and disk-fault tests.
	SpoolWrap func(SpoolFile) SpoolFile
}

// Validate checks the configuration.
func (c ExporterConfig) Validate() error {
	if c.Addr == "" {
		return cfgerr.New("netflow/reliable", "Addr", "must be set")
	}
	if c.ExporterID == 0 {
		return cfgerr.New("netflow/reliable", "ExporterID", "must be non-zero")
	}
	if c.SpoolFrames < 0 {
		return cfgerr.New("netflow/reliable", "SpoolFrames", "must not be negative, got %d", c.SpoolFrames)
	}
	if c.Fsync < FsyncPerBatch || c.Fsync > FsyncNone {
		return cfgerr.New("netflow/reliable", "Fsync", "unknown policy %d", int(c.Fsync))
	}
	if c.SpoolSegmentBytes < 0 {
		return cfgerr.New("netflow/reliable", "SpoolSegmentBytes", "must not be negative, got %d", c.SpoolSegmentBytes)
	}
	if c.SpoolMaxBytes < 0 {
		return cfgerr.New("netflow/reliable", "SpoolMaxBytes", "must not be negative, got %d", c.SpoolMaxBytes)
	}
	if c.SpoolHighWater < 0 || c.SpoolHighWater > 1 {
		return cfgerr.New("netflow/reliable", "SpoolHighWater", "must be in [0, 1], got %v", c.SpoolHighWater)
	}
	if c.SpoolLowWater < 0 || c.SpoolLowWater > 1 {
		return cfgerr.New("netflow/reliable", "SpoolLowWater", "must be in [0, 1], got %v", c.SpoolLowWater)
	}
	if c.SpoolHighWater != 0 && c.SpoolLowWater != 0 && c.SpoolLowWater > c.SpoolHighWater {
		return cfgerr.New("netflow/reliable", "SpoolLowWater", "%v exceeds SpoolHighWater %v", c.SpoolLowWater, c.SpoolHighWater)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"DialTimeout", c.DialTimeout},
		{"SendTimeout", c.SendTimeout},
		{"BackoffMin", c.BackoffMin},
		{"BackoffMax", c.BackoffMax},
		{"DrainTimeout", c.DrainTimeout},
		{"FsyncInterval", c.FsyncInterval},
	} {
		if d.v < 0 {
			return cfgerr.New("netflow/reliable", d.name, "must not be negative, got %v", d.v)
		}
	}
	min, max := c.BackoffMin, c.BackoffMax
	if min == 0 {
		min = 50 * time.Millisecond
	}
	if max == 0 {
		max = 5 * time.Second
	}
	if min > max {
		return cfgerr.New("netflow/reliable", "BackoffMin", "%v exceeds BackoffMax %v", c.BackoffMin, c.BackoffMax)
	}
	return nil
}

// withDefaults fills unset fields.
func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.SpoolFrames == 0 {
		c.SpoolFrames = 1024
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 5 * time.Second
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FsyncInterval == 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.SpoolSegmentBytes == 0 {
		c.SpoolSegmentBytes = 4 << 20
	}
	if c.SpoolMaxBytes == 0 {
		c.SpoolMaxBytes = 256 << 20
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Second
	}
	if c.PauseTimeout == 0 {
		c.PauseTimeout = 30 * time.Second
	}
	if c.SpoolHighWater == 0 {
		c.SpoolHighWater = 0.75
	}
	if c.SpoolLowWater == 0 {
		c.SpoolLowWater = 0.5
	}
	if c.SpoolLowWater > c.SpoolHighWater {
		c.SpoolLowWater = c.SpoolHighWater
	}
	return c
}

// spooled is one frame awaiting acknowledgment.
type spooled struct {
	seq    uint64
	report uint64 // Enqueue call that produced it, for ReportsDropped
	pkt    []byte
}

// Exporter spools encoded export packets and delivers them at-least-once
// over TCP: frames stay in the spool until the collector's cumulative ack
// covers them, a lost connection is re-dialed with exponential backoff and
// jitter, and every reconnect re-sends the unacknowledged tail (the
// collector dedups by sequence). Enqueue never blocks on the network and
// never allocates: the spool ring is preallocated and a full spool sheds
// its oldest frame.
//
// Enqueue must be called from one goroutine (the device's report path);
// Telemetry snapshots are safe from any goroutine.
type Exporter struct {
	cfg ExporterConfig
	tel *telemetry.Export
	dur *telemetry.Durable

	mu       sync.Mutex
	disk     *diskSpool // nil without SpoolDir
	rec      RecoveryInfo
	cond     *sync.Cond
	spool    []spooled
	head     int // ring index of the oldest unacknowledged frame
	count    int // frames in the spool
	sent     int // frames [head, head+sent) already written on the live conn
	nextSeq  uint64
	maxSent  uint64 // highest seq ever written (to count redeliveries)
	lastAck  uint64 // highest cumulative ack seen, reported in hello
	reportID uint64
	lastDrop uint64 // reportID most recently charged to ReportsDropped
	conn     net.Conn
	connErr  error
	dialed   bool
	closed   bool // Close called: reject new frames, drain
	aborted  bool // drain over: sender must exit now
	paused   bool // collector sent pause; sender waits, Enqueue keeps spooling
	pausedAt time.Time

	// wmu serializes writes on the live connection between the sender (data
	// frames) and the heartbeat goroutine (control frames); interleaving
	// them would corrupt the stream.
	wmu sync.Mutex

	stop chan struct{} // closed by Close to interrupt backoff sleeps
	wg   sync.WaitGroup
}

// NewExporter validates cfg and starts the background sender. It does not
// wait for a connection: a collector that is down at start-up is just the
// first outage to ride out. tel may be nil, in which case the exporter
// keeps private counters.
//
// With SpoolDir set, the constructor first recovers the on-disk journal:
// torn tails are truncated, the unacknowledged backlog is reloaded into the
// ring (newest SpoolFrames frames if the journal outgrew it), and the
// sequence counter, cumulative-ack watermark and report counter resume
// where the previous process durably left off — Recovered() reports what
// was found.
func NewExporter(cfg ExporterConfig, tel *telemetry.Export) (*Exporter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tel == nil {
		tel = new(telemetry.Export)
	}
	cfg = cfg.withDefaults()
	e := &Exporter{
		cfg:   cfg,
		tel:   tel,
		dur:   new(telemetry.Durable),
		stop:  make(chan struct{}),
		spool: make([]spooled, cfg.SpoolFrames),
	}
	e.cond = sync.NewCond(&e.mu)

	if cfg.SpoolDir != "" {
		disk, rec, err := openDiskSpool(cfg.SpoolDir, cfg.Fsync, cfg.FsyncInterval,
			cfg.SpoolSegmentBytes, cfg.SpoolMaxBytes, cfg.SpoolWrap, e.dur)
		if err != nil {
			return nil, err
		}
		e.disk = disk
		frames := rec.frames
		discarded := 0
		if len(frames) > cfg.SpoolFrames {
			// The journal held more backlog than the ring: DropOldest, the
			// same policy the live ring applies under overload.
			discarded = len(frames) - cfg.SpoolFrames
			frames = frames[discarded:]
		}
		var recBytes uint64
		for i, f := range frames {
			e.spool[i] = spooled{seq: f.seq, report: f.report, pkt: f.pkt}
			recBytes += uint64(len(f.pkt))
		}
		e.count = len(frames)
		e.nextSeq = rec.nextSeq
		e.lastAck = rec.lastAck
		e.reportID = rec.lastReport
		e.rec = RecoveryInfo{
			Frames:      len(frames),
			Discarded:   discarded,
			LastReport:  rec.lastReport,
			NextSeq:     rec.nextSeq,
			LastAck:     rec.lastAck,
			TornRecords: rec.torn,
		}
		e.dur.ObserveRecovery(len(frames), recBytes, rec.torn, rec.tornBytes, discarded)
		tel.SetSpoolDepth(e.count)
		e.updatePressure(e.count)
	}

	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Telemetry returns the exporter's counters.
func (e *Exporter) Telemetry() *telemetry.Export { return e.tel }

// Durability returns the disk spool's journal counters (all zero when the
// exporter runs memory-only).
func (e *Exporter) Durability() *telemetry.Durable { return e.dur }

// RecoveryInfo summarizes what a durable exporter restored at startup.
type RecoveryInfo struct {
	// Frames is the number of unacknowledged frames reloaded into the ring;
	// Discarded counts journaled frames dropped because the ring is smaller
	// than the recovered backlog.
	Frames    int `json:"frames"`
	Discarded int `json:"discarded"`
	// LastReport is the highest report id whose frames were all journaled —
	// a deterministic producer resumes enqueueing at LastReport+1.
	LastReport uint64 `json:"last_report"`
	// NextSeq and LastAck are the resumed sequence counter and cumulative
	// ack watermark.
	NextSeq uint64 `json:"next_seq"`
	LastAck uint64 `json:"last_ack"`
	// TornRecords counts half-written or corrupt records truncated from the
	// journal tail (expected after a SIGKILL mid-write, never after a clean
	// shutdown).
	TornRecords int `json:"torn_records"`
}

// Recovered reports the startup recovery outcome (zero value when SpoolDir
// is unset or the journal was empty).
func (e *Exporter) Recovered() RecoveryInfo { return e.rec }

// Enqueue spools one interval's encoded export packets for delivery. It
// never blocks on the network; when the spool is full, the oldest spooled
// frame is shed to make room (DropOldest) and counted as dropped. Frames
// enqueued after Close are dropped outright.
func (e *Exporter) Enqueue(pkts [][]byte) {
	if len(pkts) == 0 {
		return
	}
	var bytes uint64
	for _, p := range pkts {
		bytes += uint64(len(p))
	}
	e.tel.ObserveReport(len(pkts), bytes)

	var droppedFrames, droppedReports uint64
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.tel.ObserveFramesDropped(uint64(len(pkts)))
		e.tel.ObserveReportDropped()
		return
	}
	e.reportID++
	for _, p := range pkts {
		if e.disk != nil {
			// Journal before the ring insert; the frame becomes visible to
			// the sender only at unlock, after the report's commit record,
			// so recovery never resurrects a half-journaled report.
			e.disk.appendData(e.nextSeq+1, e.reportID, p)
		}
		if e.count == len(e.spool) {
			old := &e.spool[e.head]
			if old.report != e.lastDrop {
				e.lastDrop = old.report
				droppedReports++
			}
			old.pkt = nil
			e.head = (e.head + 1) % len(e.spool)
			e.count--
			if e.sent > 0 {
				e.sent--
			}
			droppedFrames++
		}
		e.nextSeq++
		e.spool[(e.head+e.count)%len(e.spool)] = spooled{seq: e.nextSeq, report: e.reportID, pkt: p}
		e.count++
	}
	if e.disk != nil {
		e.disk.appendCommit(e.reportID)
	}
	depth := e.count
	e.mu.Unlock()
	e.cond.Broadcast()
	e.tel.SetSpoolDepth(depth)
	e.updatePressure(depth)
	if droppedFrames > 0 {
		e.tel.ObserveFramesDropped(droppedFrames)
	}
	for ; droppedReports > 0; droppedReports-- {
		e.tel.ObserveReportDropped()
	}
}

// Backlog returns the number of spooled (unacknowledged) frames.
func (e *Exporter) Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Close drains the spool — waiting up to DrainTimeout for outstanding
// frames to be acknowledged — then stops the sender and closes the
// connection. Frames still unacknowledged when the drain expires are
// counted as dropped and reported in the returned error.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()

	deadline := time.Now().Add(e.cfg.DrainTimeout)
	for {
		e.mu.Lock()
		remaining := e.count
		e.mu.Unlock()
		if remaining == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	e.mu.Lock()
	e.aborted = true
	remaining := e.count
	conn := e.conn
	e.mu.Unlock()
	e.cond.Broadcast()
	close(e.stop)
	if conn != nil {
		conn.Close()
	}
	e.wg.Wait()
	var diskErr error
	if e.disk != nil {
		// Sender and ack reader have exited; flush the journal so the next
		// process recovers exactly the frames left undelivered here.
		diskErr = e.disk.close()
	}
	if remaining > 0 {
		e.tel.ObserveFramesDropped(uint64(remaining))
		e.tel.ObserveReportDropped()
		return fmt.Errorf("netflow/reliable: %d frames undelivered at close", remaining)
	}
	return diskErr
}

// run is the background sender: connect (with backoff), replay the
// unacknowledged spool tail, stream new frames as they arrive, repeat.
func (e *Exporter) run() {
	defer e.wg.Done()
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	backoff := e.cfg.BackoffMin
	for {
		if !e.awaitWork() {
			return
		}
		conn, err := net.DialTimeout("tcp", e.cfg.Addr, e.cfg.DialTimeout)
		if err != nil {
			e.tel.ObserveSendError()
			if !e.sleep(jitter(rng, backoff)) {
				return
			}
			if backoff *= 2; backoff > e.cfg.BackoffMax {
				backoff = e.cfg.BackoffMax
			}
			continue
		}
		backoff = e.cfg.BackoffMin
		e.serveConn(conn)
	}
}

// awaitWork blocks until there is something to send. It returns false when
// the exporter is shutting down (aborted, or closed with an empty spool).
func (e *Exporter) awaitWork() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.aborted {
			return false
		}
		if e.count > 0 {
			return true
		}
		if e.closed {
			return false
		}
		e.cond.Wait()
	}
}

// sleep waits d or until Close aborts the exporter.
func (e *Exporter) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.stop:
		return false
	}
}

// jitter spreads a backoff over [d/2, d) so a fleet of exporters does not
// re-dial a recovering collector in lockstep.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)))
}

// serveConn drives one connection: hello, then stream spooled frames while
// a reader goroutine applies the collector's cumulative acks and
// pause/resume backpressure, and a heartbeat goroutine keeps the collector
// convinced this exporter is alive (and bounds how long a pause may last).
// It returns when the connection fails or the exporter drains and closes.
func (e *Exporter) serveConn(conn net.Conn) {
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		conn.Close()
		return
	}
	e.conn = conn
	e.connErr = nil
	e.paused = false // backpressure is per-connection state
	// Frames written on the previous connection but never acked rewind into
	// the unsent window; when rewritten they are counted as redeliveries
	// (seq <= maxSent).
	e.sent = 0
	if e.dialed {
		e.tel.ObserveReconnect()
	}
	e.dialed = true
	lastAck := e.lastAck
	e.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(e.cfg.SendTimeout))
	var hdr [lenBytes + 1 + 16 + crcBytes]byte
	if _, err := conn.Write(appendHello(hdr[:0], e.cfg.ExporterID, lastAck)); err != nil {
		e.tel.ObserveSendError()
		e.detach(conn)
		return
	}

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var buf []byte
		for {
			f, err := readFrame(conn, &buf, DefaultMaxFrameBytes)
			if err == nil {
				switch f.typ {
				case frameAck:
					e.applyAck(f.seq)
					continue
				case framePause:
					e.mu.Lock()
					e.paused = true
					e.pausedAt = time.Now()
					e.mu.Unlock()
					e.tel.ObservePause()
					continue
				case frameResume:
					e.mu.Lock()
					e.paused = false
					e.mu.Unlock()
					e.tel.ObserveResume()
					e.cond.Broadcast()
					continue
				default:
					err = fmt.Errorf("netflow/reliable: unexpected frame %q from collector", f.typ)
				}
			}
			e.mu.Lock()
			if e.connErr == nil {
				e.connErr = err
			}
			e.mu.Unlock()
			e.cond.Broadcast()
			return
		}
	}()

	hbDone := make(chan struct{})
	hbStop := make(chan struct{})
	go func() {
		defer close(hbDone)
		e.heartbeatLoop(conn, hbStop)
	}()

	e.mu.Lock()
	for {
		if e.aborted || e.connErr != nil {
			break
		}
		if e.closed && e.count == 0 {
			break
		}
		if e.sent == e.count || e.paused {
			// Nothing sendable, or the collector asked for silence. Paused,
			// the sender parks here while Enqueue keeps feeding the spool —
			// overload lives in the ring (bounded, DropOldest) instead of in
			// the collector's memory.
			e.cond.Wait()
			continue
		}
		fr := e.spool[(e.head+e.sent)%len(e.spool)]
		e.sent++
		redelivery := fr.seq <= e.maxSent
		if !redelivery {
			e.maxSent = fr.seq
		}
		e.mu.Unlock()

		e.wmu.Lock()
		conn.SetWriteDeadline(time.Now().Add(e.cfg.SendTimeout))
		h := appendDataHeader(hdr[:0], fr.seq, len(fr.pkt))
		_, err := conn.Write(h)
		if err == nil {
			_, err = conn.Write(fr.pkt)
		}
		if err == nil {
			var tb [crcBytes]byte
			_, err = conn.Write(dataTrailer(tb[:0], h, fr.pkt))
		}
		e.wmu.Unlock()
		if err != nil {
			e.tel.ObserveSendError()
			e.mu.Lock()
			if e.connErr == nil {
				e.connErr = err
			}
			break
		}
		e.tel.ObserveSent(1)
		if redelivery {
			e.tel.ObserveRedelivered(1)
		}
		e.mu.Lock()
	}
	e.conn = nil
	e.paused = false
	e.mu.Unlock()
	e.tel.SetPaused(false)
	conn.Close()
	close(hbStop)
	<-readerDone
	<-hbDone
}

// heartbeatLoop periodically writes a heartbeat frame on conn so the
// collector's idle timeout never evicts a merely quiet exporter, and
// enforces PauseTimeout: a collector that paused this connection and then
// went silent past the bound is indistinguishable from a dead one, so the
// connection is torn down and re-dialed. Exits when stop closes or a write
// fails (the connection is dying anyway).
func (e *Exporter) heartbeatLoop(conn net.Conn, stop <-chan struct{}) {
	interval := e.cfg.HeartbeatInterval
	if interval <= 0 {
		if e.cfg.PauseTimeout <= 0 {
			return
		}
		interval = e.cfg.PauseTimeout / 4
		if interval <= 0 {
			interval = time.Millisecond
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var buf [lenBytes + 1 + crcBytes]byte
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if e.cfg.PauseTimeout > 0 {
			e.mu.Lock()
			expired := e.paused && time.Since(e.pausedAt) > e.cfg.PauseTimeout
			if expired && e.connErr == nil {
				e.connErr = fmt.Errorf("netflow/reliable: paused longer than %v", e.cfg.PauseTimeout)
			}
			e.mu.Unlock()
			if expired {
				e.cond.Broadcast()
				conn.Close()
				return
			}
		}
		if e.cfg.HeartbeatInterval <= 0 {
			continue
		}
		e.wmu.Lock()
		conn.SetWriteDeadline(time.Now().Add(e.cfg.SendTimeout))
		_, err := conn.Write(appendControl(buf[:0], frameHeartbeat))
		e.wmu.Unlock()
		if err != nil {
			return
		}
		e.tel.ObserveHeartbeat()
	}
}

// applyAck releases every spooled frame covered by the cumulative ack.
func (e *Exporter) applyAck(ack uint64) {
	var n uint64
	e.mu.Lock()
	if ack > e.lastAck {
		e.lastAck = ack
		if e.disk != nil {
			// Durable before destructive: the ack record is fsynced before
			// appendAck deletes the segments it covers, so a crash can never
			// rewind lastAck below sequences already handed out.
			e.disk.appendAck(ack)
		}
	}
	for e.count > 0 && e.spool[e.head].seq <= ack {
		e.spool[e.head].pkt = nil
		e.head = (e.head + 1) % len(e.spool)
		e.count--
		if e.sent > 0 {
			e.sent--
		}
		n++
	}
	depth := e.count
	e.mu.Unlock()
	if n > 0 {
		e.tel.ObserveAcked(n)
		e.tel.SetSpoolDepth(depth)
		e.updatePressure(depth)
		e.cond.Broadcast()
	}
}

// updatePressure refreshes the overload-pressure gauge from the spool
// occupancy: set above the high-water mark, cleared at the low-water mark,
// held in between (hysteresis, so the device's Degrade wiring does not
// flap around one threshold).
func (e *Exporter) updatePressure(depth int) {
	occ := float64(depth) / float64(len(e.spool))
	if occ >= e.cfg.SpoolHighWater {
		e.tel.SetPressure(true)
	} else if occ <= e.cfg.SpoolLowWater {
		e.tel.SetPressure(false)
	}
}

// Overloaded reports whether spool occupancy is above the high-water mark
// (with hysteresis down to the low-water mark) — the signal a device wires
// into its Degrade overload policy so measurement thins gracefully while
// the export path is backed up, instead of the ring silently shedding the
// oldest frames.
func (e *Exporter) Overloaded() bool { return e.tel.Pressure() }

// detach clears the live connection and closes it.
func (e *Exporter) detach(conn net.Conn) {
	e.mu.Lock()
	e.conn = nil
	e.mu.Unlock()
	conn.Close()
}
