package reliable

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/telemetry"
)

// ExporterConfig configures the reliable exporter (the device side).
type ExporterConfig struct {
	// Addr is the collector's TCP address.
	Addr string
	// ExporterID identifies this device across reconnects; the collector
	// keys its sequence/dedup state by it. Must be non-zero.
	ExporterID uint64
	// SpoolFrames bounds the spool (in frames, one encoded v5 packet each).
	// When full, the oldest spooled frame is dropped — DropOldest, matching
	// the pipeline's overload vocabulary: under a long outage the freshest
	// reports survive. 0 means the default of 1024.
	SpoolFrames int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// SendTimeout bounds each frame write (default 5s); a hung collector
	// trips it and triggers a reconnect rather than blocking forever.
	SendTimeout time.Duration
	// BackoffMin and BackoffMax bound the exponential reconnect backoff
	// (defaults 50ms and 5s); actual sleeps are jittered in [d/2, d).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DrainTimeout is how long Close waits for spooled frames to be
	// acknowledged before giving up (default 3s).
	DrainTimeout time.Duration
	// Seed seeds the backoff jitter (default 1), keeping tests determinate.
	Seed int64
}

// Validate checks the configuration.
func (c ExporterConfig) Validate() error {
	if c.Addr == "" {
		return cfgerr.New("netflow/reliable", "Addr", "must be set")
	}
	if c.ExporterID == 0 {
		return cfgerr.New("netflow/reliable", "ExporterID", "must be non-zero")
	}
	if c.SpoolFrames < 0 {
		return cfgerr.New("netflow/reliable", "SpoolFrames", "must not be negative, got %d", c.SpoolFrames)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"DialTimeout", c.DialTimeout},
		{"SendTimeout", c.SendTimeout},
		{"BackoffMin", c.BackoffMin},
		{"BackoffMax", c.BackoffMax},
		{"DrainTimeout", c.DrainTimeout},
	} {
		if d.v < 0 {
			return cfgerr.New("netflow/reliable", d.name, "must not be negative, got %v", d.v)
		}
	}
	min, max := c.BackoffMin, c.BackoffMax
	if min == 0 {
		min = 50 * time.Millisecond
	}
	if max == 0 {
		max = 5 * time.Second
	}
	if min > max {
		return cfgerr.New("netflow/reliable", "BackoffMin", "%v exceeds BackoffMax %v", c.BackoffMin, c.BackoffMax)
	}
	return nil
}

// withDefaults fills unset fields.
func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.SpoolFrames == 0 {
		c.SpoolFrames = 1024
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 5 * time.Second
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// spooled is one frame awaiting acknowledgment.
type spooled struct {
	seq    uint64
	report uint64 // Enqueue call that produced it, for ReportsDropped
	pkt    []byte
}

// Exporter spools encoded export packets and delivers them at-least-once
// over TCP: frames stay in the spool until the collector's cumulative ack
// covers them, a lost connection is re-dialed with exponential backoff and
// jitter, and every reconnect re-sends the unacknowledged tail (the
// collector dedups by sequence). Enqueue never blocks on the network and
// never allocates: the spool ring is preallocated and a full spool sheds
// its oldest frame.
//
// Enqueue must be called from one goroutine (the device's report path);
// Telemetry snapshots are safe from any goroutine.
type Exporter struct {
	cfg ExporterConfig
	tel *telemetry.Export

	mu       sync.Mutex
	cond     *sync.Cond
	spool    []spooled
	head     int // ring index of the oldest unacknowledged frame
	count    int // frames in the spool
	sent     int // frames [head, head+sent) already written on the live conn
	nextSeq  uint64
	maxSent  uint64 // highest seq ever written (to count redeliveries)
	lastAck  uint64 // highest cumulative ack seen, reported in hello
	reportID uint64
	lastDrop uint64 // reportID most recently charged to ReportsDropped
	conn     net.Conn
	connErr  error
	dialed   bool
	closed   bool // Close called: reject new frames, drain
	aborted  bool // drain over: sender must exit now

	stop chan struct{} // closed by Close to interrupt backoff sleeps
	wg   sync.WaitGroup
}

// NewExporter validates cfg and starts the background sender. It does not
// wait for a connection: a collector that is down at start-up is just the
// first outage to ride out. tel may be nil, in which case the exporter
// keeps private counters.
func NewExporter(cfg ExporterConfig, tel *telemetry.Export) (*Exporter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tel == nil {
		tel = new(telemetry.Export)
	}
	e := &Exporter{
		cfg:   cfg.withDefaults(),
		tel:   tel,
		stop:  make(chan struct{}),
		spool: make([]spooled, cfg.withDefaults().SpoolFrames),
	}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Telemetry returns the exporter's counters.
func (e *Exporter) Telemetry() *telemetry.Export { return e.tel }

// Enqueue spools one interval's encoded export packets for delivery. It
// never blocks on the network; when the spool is full, the oldest spooled
// frame is shed to make room (DropOldest) and counted as dropped. Frames
// enqueued after Close are dropped outright.
func (e *Exporter) Enqueue(pkts [][]byte) {
	if len(pkts) == 0 {
		return
	}
	var bytes uint64
	for _, p := range pkts {
		bytes += uint64(len(p))
	}
	e.tel.ObserveReport(len(pkts), bytes)

	var droppedFrames, droppedReports uint64
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.tel.ObserveFramesDropped(uint64(len(pkts)))
		e.tel.ObserveReportDropped()
		return
	}
	e.reportID++
	for _, p := range pkts {
		if e.count == len(e.spool) {
			old := &e.spool[e.head]
			if old.report != e.lastDrop {
				e.lastDrop = old.report
				droppedReports++
			}
			old.pkt = nil
			e.head = (e.head + 1) % len(e.spool)
			e.count--
			if e.sent > 0 {
				e.sent--
			}
			droppedFrames++
		}
		e.nextSeq++
		e.spool[(e.head+e.count)%len(e.spool)] = spooled{seq: e.nextSeq, report: e.reportID, pkt: p}
		e.count++
	}
	depth := e.count
	e.mu.Unlock()
	e.cond.Broadcast()
	e.tel.SetSpoolDepth(depth)
	if droppedFrames > 0 {
		e.tel.ObserveFramesDropped(droppedFrames)
	}
	for ; droppedReports > 0; droppedReports-- {
		e.tel.ObserveReportDropped()
	}
}

// Backlog returns the number of spooled (unacknowledged) frames.
func (e *Exporter) Backlog() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Close drains the spool — waiting up to DrainTimeout for outstanding
// frames to be acknowledged — then stops the sender and closes the
// connection. Frames still unacknowledged when the drain expires are
// counted as dropped and reported in the returned error.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()

	deadline := time.Now().Add(e.cfg.DrainTimeout)
	for {
		e.mu.Lock()
		remaining := e.count
		e.mu.Unlock()
		if remaining == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	e.mu.Lock()
	e.aborted = true
	remaining := e.count
	conn := e.conn
	e.mu.Unlock()
	e.cond.Broadcast()
	close(e.stop)
	if conn != nil {
		conn.Close()
	}
	e.wg.Wait()
	if remaining > 0 {
		e.tel.ObserveFramesDropped(uint64(remaining))
		e.tel.ObserveReportDropped()
		return fmt.Errorf("netflow/reliable: %d frames undelivered at close", remaining)
	}
	return nil
}

// run is the background sender: connect (with backoff), replay the
// unacknowledged spool tail, stream new frames as they arrive, repeat.
func (e *Exporter) run() {
	defer e.wg.Done()
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	backoff := e.cfg.BackoffMin
	for {
		if !e.awaitWork() {
			return
		}
		conn, err := net.DialTimeout("tcp", e.cfg.Addr, e.cfg.DialTimeout)
		if err != nil {
			e.tel.ObserveSendError()
			if !e.sleep(jitter(rng, backoff)) {
				return
			}
			if backoff *= 2; backoff > e.cfg.BackoffMax {
				backoff = e.cfg.BackoffMax
			}
			continue
		}
		backoff = e.cfg.BackoffMin
		e.serveConn(conn)
	}
}

// awaitWork blocks until there is something to send. It returns false when
// the exporter is shutting down (aborted, or closed with an empty spool).
func (e *Exporter) awaitWork() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.aborted {
			return false
		}
		if e.count > 0 {
			return true
		}
		if e.closed {
			return false
		}
		e.cond.Wait()
	}
}

// sleep waits d or until Close aborts the exporter.
func (e *Exporter) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.stop:
		return false
	}
}

// jitter spreads a backoff over [d/2, d) so a fleet of exporters does not
// re-dial a recovering collector in lockstep.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)))
}

// serveConn drives one connection: hello, then stream spooled frames while
// a reader goroutine applies the collector's cumulative acks. It returns
// when the connection fails or the exporter drains and closes.
func (e *Exporter) serveConn(conn net.Conn) {
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		conn.Close()
		return
	}
	e.conn = conn
	e.connErr = nil
	// Frames written on the previous connection but never acked rewind into
	// the unsent window; when rewritten they are counted as redeliveries
	// (seq <= maxSent).
	e.sent = 0
	if e.dialed {
		e.tel.ObserveReconnect()
	}
	e.dialed = true
	lastAck := e.lastAck
	e.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(e.cfg.SendTimeout))
	var hdr [lenBytes + 1 + 16]byte
	if _, err := conn.Write(appendHello(hdr[:0], e.cfg.ExporterID, lastAck)); err != nil {
		e.tel.ObserveSendError()
		e.detach(conn)
		return
	}

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var buf []byte
		for {
			f, err := readFrame(conn, &buf, DefaultMaxFrameBytes)
			if err != nil {
				e.mu.Lock()
				if e.connErr == nil {
					e.connErr = err
				}
				e.mu.Unlock()
				e.cond.Broadcast()
				return
			}
			if f.typ == frameAck {
				e.applyAck(f.seq)
			}
		}
	}()

	e.mu.Lock()
	for {
		if e.aborted || e.connErr != nil {
			break
		}
		if e.closed && e.count == 0 {
			break
		}
		if e.sent == e.count {
			e.cond.Wait()
			continue
		}
		fr := e.spool[(e.head+e.sent)%len(e.spool)]
		e.sent++
		redelivery := fr.seq <= e.maxSent
		if !redelivery {
			e.maxSent = fr.seq
		}
		e.mu.Unlock()

		conn.SetWriteDeadline(time.Now().Add(e.cfg.SendTimeout))
		_, err := conn.Write(appendDataHeader(hdr[:0], fr.seq, len(fr.pkt)))
		if err == nil {
			_, err = conn.Write(fr.pkt)
		}
		if err != nil {
			e.tel.ObserveSendError()
			e.mu.Lock()
			if e.connErr == nil {
				e.connErr = err
			}
			break
		}
		e.tel.ObserveSent(1)
		if redelivery {
			e.tel.ObserveRedelivered(1)
		}
		e.mu.Lock()
	}
	e.conn = nil
	e.mu.Unlock()
	conn.Close()
	<-readerDone
}

// applyAck releases every spooled frame covered by the cumulative ack.
func (e *Exporter) applyAck(ack uint64) {
	var n uint64
	e.mu.Lock()
	if ack > e.lastAck {
		e.lastAck = ack
	}
	for e.count > 0 && e.spool[e.head].seq <= ack {
		e.spool[e.head].pkt = nil
		e.head = (e.head + 1) % len(e.spool)
		e.count--
		if e.sent > 0 {
			e.sent--
		}
		n++
	}
	depth := e.count
	e.mu.Unlock()
	if n > 0 {
		e.tel.ObserveAcked(n)
		e.tel.SetSpoolDepth(depth)
		e.cond.Broadcast()
	}
}

// detach clears the live connection and closes it.
func (e *Exporter) detach(conn net.Conn) {
	e.mu.Lock()
	e.conn = nil
	e.mu.Unlock()
	conn.Close()
}
