// Package reliable is the at-least-once export transport between a
// measurement device and its collection station. The paper's architecture
// (Sections 2 and 5.2) assumes the device's compact heavy-hitter reports
// actually reach the station — the whole advantage over NetFlow's bulky
// per-flow dumps evaporates if the few packets that do get exported are
// lost. UDP export (the baseline, kept as the default) is fire-and-forget:
// a collector restart silently discards every report sent during the
// outage.
//
// The transport here spools interval reports in a bounded ring on the
// device, delivers them over a length-prefixed TCP stream with reconnect,
// exponential backoff with jitter and per-send timeouts, and tags every
// frame with a sequence number. The collector acknowledges cumulatively and
// dedups by sequence, so delivery is at-least-once on the wire and exactly
// once into a collector's aggregation — the property the loss-tolerant
// accounting literature (Duffield et al., "Charging from sampled network
// usage") demands of the collection side. Across a collector crash the
// residual at-least-once window (a frame handled but not yet acked when the
// crash hit) is closed at the application layer: handlers receive each
// frame's sequence number and an aggregator that outlives server instances
// skips sequences it has already folded in.
//
// Wire format: every frame is a 4-byte big-endian length (of everything
// that follows), one type byte, and a type-specific body.
//
//	hello  'H'  uint64 exporter ID, uint64 acked — first frame on every
//	            connection; acked is the highest cumulative ack the
//	            exporter has seen, so a restarted collector (fresh
//	            sequence state) knows frames at or below it were already
//	            delivered to its predecessor and are not a gap
//	data   'D'  uint64 seq, payload    — one encoded NetFlow v5 packet
//	ack    'A'  uint64 seq             — cumulative: all seqs <= seq received
package reliable

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	frameHello = 'H'
	frameData  = 'D'
	frameAck   = 'A'

	// lenBytes is the length prefix; the length covers the type byte and
	// body but not itself.
	lenBytes = 4

	// DefaultMaxFrameBytes bounds a frame body so a corrupted length prefix
	// cannot make the reader allocate gigabytes. A v5 export packet is at
	// most 1464 bytes; the generous cap leaves room for future payloads.
	DefaultMaxFrameBytes = 1 << 20
)

// frame is one decoded frame. The payload aliases the reader's buffer and
// is only valid until the next readFrame call.
type frame struct {
	typ      byte
	seq      uint64 // data: sequence number; ack: cumulative acked sequence
	exporter uint64 // hello: exporter identity
	acked    uint64 // hello: highest cumulative ack the exporter has seen
	payload  []byte // data: encoded v5 packet
}

// appendHello encodes a hello frame onto dst.
func appendHello(dst []byte, exporter, acked uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, 1+16)
	dst = append(dst, frameHello)
	dst = binary.BigEndian.AppendUint64(dst, exporter)
	return binary.BigEndian.AppendUint64(dst, acked)
}

// appendDataHeader encodes the length prefix, type and sequence of a data
// frame whose payload (written separately) is payloadLen bytes.
func appendDataHeader(dst []byte, seq uint64, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+8+payloadLen))
	dst = append(dst, frameData)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// appendAck encodes a cumulative ack frame onto dst.
func appendAck(dst []byte, seq uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, 1+8)
	dst = append(dst, frameAck)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// readFrame reads one frame from r, growing *buf as needed; the returned
// frame's payload aliases *buf. maxFrame bounds the accepted body length.
func readFrame(r io.Reader, buf *[]byte, maxFrame int) (frame, error) {
	var hdr [lenBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 1 || n > maxFrame {
		return frame{}, fmt.Errorf("netflow/reliable: frame length %d outside [1, %d]", n, maxFrame)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	f := frame{typ: body[0]}
	switch f.typ {
	case frameHello:
		if n != 1+16 {
			return frame{}, fmt.Errorf("netflow/reliable: hello frame of %d bytes, want %d", n, 1+16)
		}
		f.exporter = binary.BigEndian.Uint64(body[1:9])
		f.acked = binary.BigEndian.Uint64(body[9:17])
	case frameData:
		if n < 1+8 {
			return frame{}, fmt.Errorf("netflow/reliable: data frame of %d bytes too short", n)
		}
		f.seq = binary.BigEndian.Uint64(body[1:9])
		f.payload = body[9:]
	case frameAck:
		if n != 1+8 {
			return frame{}, fmt.Errorf("netflow/reliable: ack frame of %d bytes, want %d", n, 1+8)
		}
		f.seq = binary.BigEndian.Uint64(body[1:9])
	default:
		return frame{}, fmt.Errorf("netflow/reliable: unknown frame type %#x", f.typ)
	}
	return f, nil
}
