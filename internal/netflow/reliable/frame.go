// Package reliable is the at-least-once export transport between a
// measurement device and its collection station. The paper's architecture
// (Sections 2 and 5.2) assumes the device's compact heavy-hitter reports
// actually reach the station — the whole advantage over NetFlow's bulky
// per-flow dumps evaporates if the few packets that do get exported are
// lost. UDP export (the baseline, kept as the default) is fire-and-forget:
// a collector restart silently discards every report sent during the
// outage.
//
// The transport here spools interval reports in a bounded ring on the
// device, delivers them over a length-prefixed TCP stream with reconnect,
// exponential backoff with jitter and per-send timeouts, and tags every
// frame with a sequence number. The collector acknowledges cumulatively and
// dedups by sequence, so delivery is at-least-once on the wire and exactly
// once into a collector's aggregation — the property the loss-tolerant
// accounting literature (Duffield et al., "Charging from sampled network
// usage") demands of the collection side. Across a collector crash the
// residual at-least-once window (a frame handled but not yet acked when the
// crash hit) is closed at the application layer: handlers receive each
// frame's sequence number and an aggregator that outlives server instances
// skips sequences it has already folded in.
//
// Liveness and flow control are explicit, not inherited from TCP: the
// exporter heartbeats so a collector can tell a quiet peer from a dead one
// (and evict the dead one instead of pinning a goroutine forever), and the
// collector sends pause/resume frames when a connection's undelivered
// backlog crosses its inflight-byte budget, so an overloaded station pushes
// back in the protocol instead of letting socket buffers fill arbitrarily.
//
// Wire format: every frame is a 4-byte big-endian length (of everything
// that follows), one type byte, a type-specific body, and a trailing
// CRC-32 (IEEE) of the type byte and body. The checksum is what lets the
// network chaos suite promise byte-exact accounting through corrupting
// links: a frame damaged in flight fails its CRC, the connection is
// dropped without an ack, and the exporter redelivers the original bytes.
//
//	hello     'H'  uint64 exporter ID, uint64 acked — first frame on every
//	               connection; acked is the highest cumulative ack the
//	               exporter has seen, so a restarted collector (fresh
//	               sequence state) knows frames at or below it were already
//	               delivered to its predecessor and are not a gap
//	data      'D'  uint64 seq, payload    — one encoded NetFlow v5 packet
//	ack       'A'  uint64 seq             — cumulative: all seqs <= seq received
//	heartbeat 'B'  empty — exporter→collector liveness while idle or paused
//	pause     'P'  empty — collector→exporter: stop sending data frames
//	resume    'R'  empty — collector→exporter: sending may continue
package reliable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameHello     = 'H'
	frameData      = 'D'
	frameAck       = 'A'
	frameHeartbeat = 'B'
	framePause     = 'P'
	frameResume    = 'R'

	// lenBytes is the length prefix; the length covers the type byte, body
	// and CRC trailer but not itself. crcBytes is the trailer.
	lenBytes = 4
	crcBytes = 4

	// DefaultMaxFrameBytes bounds a frame body so a corrupted length prefix
	// cannot make the reader allocate gigabytes. A v5 export packet is at
	// most 1464 bytes; the generous cap leaves room for future payloads.
	DefaultMaxFrameBytes = 1 << 20
)

// frameSizeError is a length prefix outside [1+crcBytes, maxFrame] — the
// signature of a corrupted or hostile length prefix (a zero-length or
// oversized frame). The server surfaces these under their own counter so a
// link damaging length prefixes is visible, instead of the connection just
// dying silently.
type frameSizeError struct {
	n, max int
}

func (e *frameSizeError) Error() string {
	return fmt.Sprintf("netflow/reliable: frame length %d outside [%d, %d]", e.n, 1+crcBytes, e.max)
}

// errFrameCRC marks a frame whose trailer did not match its contents: bytes
// were damaged in flight (or the stream desynchronized). Never acked, so
// the exporter's redelivery closes the hole.
type frameCRCError struct {
	want, got uint32
}

func (e *frameCRCError) Error() string {
	return fmt.Sprintf("netflow/reliable: frame CRC %#08x, want %#08x", e.got, e.want)
}

// frame is one decoded frame. The payload aliases the reader's buffer and
// is only valid until the next readFrame call.
type frame struct {
	typ      byte
	seq      uint64 // data: sequence number; ack: cumulative acked sequence
	exporter uint64 // hello: exporter identity
	acked    uint64 // hello: highest cumulative ack the exporter has seen
	payload  []byte // data: encoded v5 packet
}

// appendCRC seals a frame whose length prefix starts at dst[start]: the
// trailer is the CRC of everything after the 4-byte length.
func appendCRC(dst []byte, start int) []byte {
	sum := crc32.ChecksumIEEE(dst[start+lenBytes:])
	return binary.BigEndian.AppendUint32(dst, sum)
}

// appendHello encodes a hello frame onto dst.
func appendHello(dst []byte, exporter, acked uint64) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 1+16+crcBytes)
	dst = append(dst, frameHello)
	dst = binary.BigEndian.AppendUint64(dst, exporter)
	dst = binary.BigEndian.AppendUint64(dst, acked)
	return appendCRC(dst, start)
}

// appendDataHeader encodes the length prefix, type and sequence of a data
// frame whose payload (written separately) is payloadLen bytes. The caller
// must follow the payload with the trailer from dataTrailer.
func appendDataHeader(dst []byte, seq uint64, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+8+payloadLen+crcBytes))
	dst = append(dst, frameData)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// dataTrailer computes a data frame's CRC trailer from its header (as built
// by appendDataHeader, length prefix included) and payload, without
// concatenating them.
func dataTrailer(trailer []byte, hdr, payload []byte) []byte {
	sum := crc32.ChecksumIEEE(hdr[lenBytes:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	return binary.BigEndian.AppendUint32(trailer, sum)
}

// appendDataFrame encodes a whole data frame (header, payload, trailer).
func appendDataFrame(dst []byte, seq uint64, payload []byte) []byte {
	start := len(dst)
	dst = appendDataHeader(dst, seq, len(payload))
	dst = append(dst, payload...)
	return appendCRC(dst, start)
}

// appendAck encodes a cumulative ack frame onto dst.
func appendAck(dst []byte, seq uint64) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 1+8+crcBytes)
	dst = append(dst, frameAck)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return appendCRC(dst, start)
}

// appendControl encodes a bodyless control frame (heartbeat, pause, resume)
// onto dst.
func appendControl(dst []byte, typ byte) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 1+crcBytes)
	dst = append(dst, typ)
	return appendCRC(dst, start)
}

// readFrame reads one frame from r, growing *buf as needed; the returned
// frame's payload aliases *buf. maxFrame bounds the accepted body length.
func readFrame(r io.Reader, buf *[]byte, maxFrame int) (frame, error) {
	var hdr [lenBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 1+crcBytes || n > maxFrame {
		return frame{}, &frameSizeError{n: n, max: maxFrame}
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	want := binary.BigEndian.Uint32(body[n-crcBytes:])
	if got := crc32.ChecksumIEEE(body[:n-crcBytes]); got != want {
		return frame{}, &frameCRCError{want: want, got: got}
	}
	body = body[:n-crcBytes]
	f := frame{typ: body[0]}
	switch f.typ {
	case frameHello:
		if len(body) != 1+16 {
			return frame{}, fmt.Errorf("netflow/reliable: hello frame of %d bytes, want %d", len(body), 1+16)
		}
		f.exporter = binary.BigEndian.Uint64(body[1:9])
		f.acked = binary.BigEndian.Uint64(body[9:17])
	case frameData:
		if len(body) < 1+8 {
			return frame{}, fmt.Errorf("netflow/reliable: data frame of %d bytes too short", len(body))
		}
		f.seq = binary.BigEndian.Uint64(body[1:9])
		f.payload = body[9:]
	case frameAck:
		if len(body) != 1+8 {
			return frame{}, fmt.Errorf("netflow/reliable: ack frame of %d bytes, want %d", len(body), 1+8)
		}
		f.seq = binary.BigEndian.Uint64(body[1:9])
	case frameHeartbeat, framePause, frameResume:
		if len(body) != 1 {
			return frame{}, fmt.Errorf("netflow/reliable: control frame %q of %d bytes, want 1", f.typ, len(body))
		}
	default:
		return frame{}, fmt.Errorf("netflow/reliable: unknown frame type %#x", f.typ)
	}
	return f, nil
}
