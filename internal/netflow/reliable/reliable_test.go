package reliable

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fastConfig is an ExporterConfig tuned for loopback tests: tight backoff
// so reconnects happen within a test's patience, short drain so failing
// tests do not hang.
func fastConfig(addr string) ExporterConfig {
	return ExporterConfig{
		Addr:         addr,
		ExporterID:   7,
		SpoolFrames:  64,
		DialTimeout:  time.Second,
		SendTimeout:  time.Second,
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		Seed:         1,
	}
}

// sink collects delivered payloads, keyed by exporter.
type sink struct {
	mu       sync.Mutex
	payloads []string
	delay    time.Duration
}

func (s *sink) handle(_, _ uint64, payload []byte) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.mu.Lock()
	s.payloads = append(s.payloads, string(payload))
	s.mu.Unlock()
}

func (s *sink) got() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.payloads...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func mkPkts(n int, label string) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%d", label, i))
	}
	return out
}

func TestExporterConfigValidate(t *testing.T) {
	if err := fastConfig("127.0.0.1:1").Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []ExporterConfig{
		{},          // no addr
		{Addr: "x"}, // no exporter ID
		{Addr: "x", ExporterID: 1, SpoolFrames: -1},
		{Addr: "x", ExporterID: 1, SendTimeout: -time.Second},
		{Addr: "x", ExporterID: 1, BackoffMin: time.Minute, BackoffMax: time.Second},
	}
	for i, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("bad config %d accepted", i)
			continue
		}
		if !strings.HasPrefix(err.Error(), "traffic: netflow/reliable: ") {
			t.Errorf("bad config %d: error %q misses the cfgerr shape", i, err)
		}
	}
}

func TestRoundTripAndDrain(t *testing.T) {
	s := &sink{}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, s.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	exp, err := NewExporter(fastConfig(addr.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(mkPkts(3, "a"))
	exp.Enqueue(mkPkts(2, "b"))
	waitFor(t, "delivery", func() bool { return len(s.got()) == 5 })
	if err := exp.Close(); err != nil {
		t.Fatalf("drained close failed: %v", err)
	}

	want := []string{"a-0", "a-1", "a-2", "b-0", "b-1"}
	got := s.got()
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("delivery order: got %v, want %v", got, want)
		}
	}
	st := srv.Stats()
	if st.Delivered != 5 || st.Duplicates != 0 || st.Gaps != 0 || st.BadFrames != 0 {
		t.Errorf("server stats = %+v", st)
	}
	es := st.PerExporter[7]
	if es.NextSeq != 6 || es.Delivered != 5 {
		t.Errorf("exporter stats = %+v", es)
	}
	ts := exp.Telemetry().Snapshot()
	if ts.Reports != 2 || ts.Frames != 5 || ts.Acked != 5 || ts.FramesDropped != 0 {
		t.Errorf("exporter telemetry = %+v", ts)
	}
	if st, _ := ts.Health(); st != telemetry.HealthOK {
		t.Errorf("healthy exporter graded %v", st)
	}
}

func TestSpoolOverflowDropsOldest(t *testing.T) {
	// No collector at all: everything spools, the ring sheds its oldest.
	cfg := fastConfig("127.0.0.1:1") // reserved port: dial fails fast
	cfg.SpoolFrames = 4
	cfg.DrainTimeout = 10 * time.Millisecond
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(mkPkts(10, "r"))
	if got := exp.Backlog(); got != 4 {
		t.Errorf("backlog = %d, want 4 (spool bound)", got)
	}
	ts := exp.Telemetry().Snapshot()
	if ts.FramesDropped != 6 {
		t.Errorf("FramesDropped = %d, want 6", ts.FramesDropped)
	}
	if err := exp.Close(); err == nil {
		t.Error("close with undeliverable frames reported success")
	}
	ts = exp.Telemetry().Snapshot()
	// The 4 still-spooled frames are charged as dropped at close.
	if ts.FramesDropped != 10 {
		t.Errorf("FramesDropped after close = %d, want 10", ts.FramesDropped)
	}
	if ts.ReportsDropped == 0 {
		t.Error("ReportsDropped = 0 after losing frames")
	}
	if st, _ := ts.Health(); st != telemetry.HealthDegraded {
		t.Errorf("lossy exporter graded %v, want degraded", st)
	}
}

func TestGapAccountingAfterOverflow(t *testing.T) {
	// Spool overflows while the collector is down; once it comes up, the
	// surviving tail is delivered and the hole shows up as an exact gap.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cfg := fastConfig(addr)
	cfg.SpoolFrames = 4
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	exp.Enqueue(mkPkts(10, "r")) // seqs 1..10; 1..6 shed

	var srv *Server
	s := &sink{}
	waitFor(t, "rebind", func() bool {
		srv, _, err = Listen(addr, ServerConfig{}, s.handle)
		return err == nil
	})
	defer srv.Close()
	waitFor(t, "tail delivery", func() bool { return len(s.got()) == 4 })

	st := srv.Stats()
	if st.Gaps != 6 {
		t.Errorf("gaps = %d, want 6 (seqs 1-6 shed before first contact)", st.Gaps)
	}
	got := s.got()
	if got[0] != "r-6" || got[3] != "r-9" {
		t.Errorf("surviving tail = %v, want r-6..r-9 (DropOldest keeps the freshest)", got)
	}
}

func TestDelayedAcksStillExactlyOnce(t *testing.T) {
	// A slow handler delays every ack; backpressure holds and nothing is
	// delivered twice.
	s := &sink{delay: 10 * time.Millisecond}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, s.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	exp, err := NewExporter(fastConfig(addr.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(mkPkts(20, "d"))
	if err := exp.Close(); err != nil { // drain waits out the slow acks
		t.Fatalf("close: %v", err)
	}
	st := srv.Stats()
	if st.Delivered != 20 || st.Duplicates != 0 {
		t.Errorf("stats = %+v, want 20 delivered, 0 duplicates", st)
	}
}

func TestServerShutdownDrainsInFlight(t *testing.T) {
	s := &sink{delay: 2 * time.Millisecond}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, s.handle)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExporter(fastConfig(addr.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(mkPkts(10, "s"))
	waitFor(t, "first delivery", func() bool { return len(s.got()) >= 1 })
	if err := srv.Shutdown(2 * time.Second); err != nil && !strings.Contains(err.Error(), "use of closed") {
		t.Fatalf("shutdown: %v", err)
	}
	// Everything the exporter managed to put on the wire before the drain
	// deadline was aggregated; with a 2s budget for 10 small frames that is
	// all of them.
	if got := len(s.got()); got != 10 {
		t.Errorf("delivered %d frames through shutdown, want 10", got)
	}
	exp.Close()
}

func TestEnqueueAfterCloseDrops(t *testing.T) {
	cfg := fastConfig("127.0.0.1:1")
	cfg.DrainTimeout = time.Millisecond
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp.Close()
	exp.Enqueue(mkPkts(2, "late"))
	ts := exp.Telemetry().Snapshot()
	if ts.FramesDropped != 2 || ts.ReportsDropped != 1 {
		t.Errorf("post-close enqueue: %+v, want 2 frames / 1 report dropped", ts)
	}
}
