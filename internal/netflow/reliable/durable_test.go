package reliable

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// durableConfig is fastConfig plus a disk spool.
func durableConfig(addr, dir string) ExporterConfig {
	cfg := fastConfig(addr)
	cfg.SpoolDir = dir
	return cfg
}

// TestDurableSpoolReplayAfterRestart kills an exporter (no collector ever
// answered, so every frame is unacknowledged) and verifies its successor
// recovers the full backlog from disk and delivers it, in order, under the
// original sequence numbers.
func TestDurableSpoolReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()

	cfg := durableConfig("127.0.0.1:1", dir) // reserved port: nothing acks
	cfg.DrainTimeout = time.Millisecond
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		exp.Enqueue(mkPkts(2, fmt.Sprintf("rep%d", i)))
	}
	exp.Close() //nolint:errcheck // undelivered-at-close is the point

	snk := &sink{}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, snk.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	exp2, err := NewExporter(durableConfig(addr.String(), dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()

	rec := exp2.Recovered()
	if rec.Frames != 6 || rec.LastReport != 3 || rec.NextSeq != 6 || rec.TornRecords != 0 {
		t.Fatalf("recovery = %+v, want 6 frames, report 3, seq 6, 0 torn", rec)
	}
	waitFor(t, "recovered backlog delivered", func() bool { return len(snk.got()) == 6 })
	want := []string{"rep1-0", "rep1-1", "rep2-0", "rep2-1", "rep3-0", "rep3-1"}
	if got := snk.got(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	if d := srv.Stats().Duplicates; d != 0 {
		t.Fatalf("duplicates = %d, want 0", d)
	}
}

// TestDurableSpoolAckedFramesNotRedelivered verifies the ack journal: frames
// the collector acknowledged in a previous exporter life are not in the
// recovered backlog, and the restarted exporter's sequences continue rather
// than reuse.
func TestDurableSpoolAckedFramesNotRedelivered(t *testing.T) {
	dir := t.TempDir()
	snk := &sink{}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, snk.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	exp, err := NewExporter(durableConfig(addr.String(), dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(mkPkts(2, "a"))
	waitFor(t, "first report acked", func() bool { return exp.Backlog() == 0 })
	if err := exp.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}

	exp2, err := NewExporter(durableConfig(addr.String(), dir), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	rec := exp2.Recovered()
	if rec.Frames != 0 || rec.NextSeq != 2 || rec.LastAck != 2 || rec.LastReport != 1 {
		t.Fatalf("recovery = %+v, want empty backlog, seq/ack 2, report 1", rec)
	}
	exp2.Enqueue(mkPkts(2, "b"))
	waitFor(t, "second report delivered", func() bool { return len(snk.got()) == 4 })
	want := []string{"a-0", "a-1", "b-0", "b-1"}
	if got := snk.got(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	st := srv.Stats()
	if st.Duplicates != 0 || st.PerExporter[7].NextSeq != 5 {
		t.Fatalf("stats = %+v, want 0 duplicates, next seq 5", st)
	}
}

// TestDurableSpoolTornTailTruncated injects a short write mid-journal (the
// torn final record a SIGKILL leaves) and verifies recovery truncates back
// to the last committed report, counts the damage, and keeps going.
func TestDurableSpoolTornTailTruncated(t *testing.T) {
	dir := t.TempDir()

	cfg := durableConfig("127.0.0.1:1", dir)
	cfg.DrainTimeout = time.Millisecond
	// Writes per report: data, then commit. The 4th write is report 2's
	// commit record — torn, so report 2 was never visible to the sender.
	cfg.SpoolWrap = func(f SpoolFile) SpoolFile {
		return faultinject.NewWriter(f, faultinject.WriterSchedule{ShortWriteAt: 4})
	}
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp.Enqueue(mkPkts(1, "good"))
	exp.Enqueue(mkPkts(1, "torn"))
	if errs := exp.Durability().Snapshot().JournalErrors; errs != 1 {
		t.Fatalf("journal errors = %d, want 1 (short write must disable the journal)", errs)
	}
	exp.Close() //nolint:errcheck // backlog is undeliverable by design here

	fast := durableConfig("127.0.0.1:1", dir)
	fast.DrainTimeout = time.Millisecond
	exp2, err := NewExporter(fast, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	rec := exp2.Recovered()
	if rec.Frames != 1 || rec.LastReport != 1 || rec.TornRecords == 0 {
		t.Fatalf("recovery = %+v, want exactly report 1 recovered with a torn tail counted", rec)
	}
	// Recovery truncated the segment: a third open must find a clean tail.
	exp2.Close() //nolint:errcheck
	exp3, err := NewExporter(fast, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp3.Close()
	if rec := exp3.Recovered(); rec.Frames != 1 || rec.TornRecords != 0 {
		t.Fatalf("post-truncation recovery = %+v, want 1 frame, 0 torn", rec)
	}
}

// TestDurableSpoolAckTruncatesSegments forces tiny segments and verifies
// acked ones are deleted from disk.
func TestDurableSpoolAckTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	snk := &sink{}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, snk.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := durableConfig(addr.String(), dir)
	cfg.SpoolSegmentBytes = 64 // every report rotates
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	for i := 0; i < 8; i++ {
		exp.Enqueue(mkPkts(1, fmt.Sprintf("seg%d", i)))
	}
	waitFor(t, "all reports acked", func() bool { return exp.Backlog() == 0 })
	waitFor(t, "acked segments deleted", func() bool {
		segs, _ := filepath.Glob(filepath.Join(dir, "spool-*.seg"))
		return len(segs) <= 2
	})
	if tr := exp.Durability().Snapshot().Truncations; tr == 0 {
		t.Fatal("no segment truncations recorded despite full ack")
	}
}

// splitState is the test aggregator's snapshot codec: delivered payloads
// joined by newline.
func joinState(payloads []string) []byte { return []byte(strings.Join(payloads, "\n")) }
func splitState(b []byte) []string {
	if len(b) == 0 {
		return nil
	}
	return strings.Split(string(b), "\n")
}

// TestJournalSnapshotAndReplay exercises the collector journal directly:
// WAL-only recovery, then snapshot+WAL recovery, with watermarks intact.
func TestJournalSnapshotAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := OpenJournal(JournalConfig{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != nil || len(rec.Frames) != 0 {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	var agg []string
	for seq := uint64(1); seq <= 3; seq++ {
		p := fmt.Sprintf("frame-%d", seq)
		j.Deliver(7, seq, []byte(p), func() { agg = append(agg, p) })
	}
	// Crash without snapshot: WAL-only recovery.
	j2, rec2, err := OpenJournal(JournalConfig{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg2 := splitState(rec2.State)
	for _, f := range rec2.Frames {
		agg2 = append(agg2, string(f.Payload))
	}
	if !reflect.DeepEqual(agg2, agg) || rec2.Watermarks[7] != 4 {
		t.Fatalf("WAL recovery: agg=%v watermark=%d, want %v / 4", agg2, rec2.Watermarks[7], agg)
	}

	// Snapshot, deliver more, crash: snapshot + WAL tail recovery.
	if err := j2.Snapshot(func() []byte { return joinState(agg2) }); err != nil {
		t.Fatal(err)
	}
	j2.Deliver(7, 4, []byte("frame-4"), func() { agg2 = append(agg2, "frame-4") })
	j2.Deliver(9, 1, []byte("other-1"), func() { agg2 = append(agg2, "other-1") })

	j3, rec3, err := OpenJournal(JournalConfig{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	agg3 := splitState(rec3.State)
	for _, f := range rec3.Frames {
		agg3 = append(agg3, string(f.Payload))
	}
	if !reflect.DeepEqual(agg3, agg2) {
		t.Fatalf("snapshot+WAL recovery: agg=%v, want %v", agg3, agg2)
	}
	if rec3.Watermarks[7] != 5 || rec3.Watermarks[9] != 2 {
		t.Fatalf("watermarks = %v, want 7→5, 9→2", rec3.Watermarks)
	}
	if len(rec3.Frames) != 2 {
		t.Fatalf("replayed %d frames, want 2 (snapshot covers the rest)", len(rec3.Frames))
	}
	// Snapshot GC'd the pre-snapshot WAL segments.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) > 2 {
		t.Fatalf("%d WAL segments on disk after snapshot, want ≤ 2: %v", len(segs), segs)
	}
}

// TestJournalTornTailTruncated injects a short write into the WAL and
// verifies recovery keeps every intact frame and truncates the torn one.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := JournalConfig{Dir: dir, Wrap: func(f SpoolFile) SpoolFile {
		return faultinject.NewWriter(f, faultinject.WriterSchedule{ShortWriteAt: 3})
	}}
	j, _, err := OpenJournal(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		j.Deliver(7, seq, []byte(fmt.Sprintf("frame-%d", seq)), nil)
	}
	if errs := j.Durability().Snapshot().JournalErrors; errs != 1 {
		t.Fatalf("journal errors = %d, want 1", errs)
	}

	j2, rec, err := OpenJournal(JournalConfig{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec.Frames) != 2 || rec.TornRecords == 0 {
		t.Fatalf("recovery = %d frames, %d torn, want 2 frames and a torn tail", len(rec.Frames), rec.TornRecords)
	}
	if rec.Watermarks[7] != 3 {
		t.Fatalf("watermark = %d, want 3 (frame 3 was torn, so it is redeliverable)", rec.Watermarks[7])
	}
}

// startJournaledCollector is one collector life in the double-restart test:
// open the journal, rebuild the aggregation state it recovered, and serve
// on addr with delivery journaled.
func startJournaledCollector(t *testing.T, dir, addr string) (*Journal, *Server, *[]string, *Recovery) {
	t.Helper()
	j, rec, err := OpenJournal(JournalConfig{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := new([]string)
	*agg = splitState(rec.State)
	for _, f := range rec.Frames {
		*agg = append(*agg, string(f.Payload))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var smu = make(chan struct{}, 1)
	smu <- struct{}{}
	srv := NewServer(ln, ServerConfig{Journal: j}, func(_, _ uint64, payload []byte) {
		<-smu
		*agg = append(*agg, string(payload))
		smu <- struct{}{}
	})
	return j, srv, agg, rec
}

// TestCollectorDoubleRestart crashes the journaled collector twice. Each
// successor is fed by a fresh deterministic exporter that replays the whole
// producer history from sequence 1 (the worst case: its hello carries ack
// 0, so only the journal's recovered watermark prevents re-counting). The
// cumulative ack must never regress, Duplicates must be exactly the
// replayed prefix, and the final aggregate must match the reference run
// byte for byte.
func TestCollectorDoubleRestart(t *testing.T) {
	dir := t.TempDir()

	// Pin a port so restarted collectors are reachable at the same address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	produce := func(n int) [][]byte {
		out := make([][]byte, n)
		for i := range out {
			out[i] = []byte(fmt.Sprintf("pkt-%d", i+1))
		}
		return out
	}
	runExporter := func(total int) {
		t.Helper()
		exp, err := NewExporter(fastConfig(addr), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range produce(total) {
			exp.Enqueue([][]byte{p})
		}
		waitFor(t, fmt.Sprintf("backlog drained at %d reports", total), func() bool {
			return exp.Backlog() == 0
		})
		if err := exp.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Life 1: frames 1..2, crash with WAL only (no snapshot, no Close).
	_, srv1, agg1, _ := startJournaledCollector(t, dir, addr)
	runExporter(2)
	waitFor(t, "life 1 aggregated", func() bool { return len(*agg1) == 2 })
	srv1.Close()

	// Life 2: recovers 1..2 from WAL; replay 1..4 → exactly 2 duplicates.
	j2, srv2, agg2, rec2 := startJournaledCollector(t, dir, addr)
	if rec2.Watermarks[7] != 3 {
		t.Fatalf("life 2 watermark = %d, want 3", rec2.Watermarks[7])
	}
	runExporter(4)
	waitFor(t, "life 2 aggregated", func() bool { return len(*agg2) == 4 })
	if d := srv2.Stats().Duplicates; d != 2 {
		t.Fatalf("life 2 duplicates = %d, want exactly 2", d)
	}
	if err := j2.Snapshot(func() []byte { return joinState(*agg2) }); err != nil {
		t.Fatal(err)
	}
	srv2.Close()

	// Life 3: recovers 1..4 from the snapshot; replay 1..5 → 4 duplicates.
	j3, srv3, agg3, rec3 := startJournaledCollector(t, dir, addr)
	defer func() { srv3.Close(); j3.Close() }()
	if rec3.Watermarks[7] != 5 {
		t.Fatalf("life 3 watermark = %d, want 5 (must not regress across two crashes)", rec3.Watermarks[7])
	}
	runExporter(5)
	waitFor(t, "life 3 aggregated", func() bool { return len(*agg3) == 5 })
	if d := srv3.Stats().Duplicates; d != 4 {
		t.Fatalf("life 3 duplicates = %d, want exactly 4", d)
	}

	want := []string{"pkt-1", "pkt-2", "pkt-3", "pkt-4", "pkt-5"}
	if !reflect.DeepEqual(*agg3, want) {
		t.Fatalf("final aggregate %v, want %v — lost or double-counted frames", *agg3, want)
	}
	if st := srv3.Stats().PerExporter[7]; st.NextSeq != 6 {
		t.Fatalf("final next seq = %d, want 6", st.NextSeq)
	}
}

// TestDurableSpoolDiskCap verifies the on-disk DropOldest: with a byte cap
// and no collector, old closed segments are shed instead of filling the
// disk, and recovery honors the hole.
func TestDurableSpoolDiskCap(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig("127.0.0.1:1", dir)
	cfg.DrainTimeout = time.Millisecond
	cfg.SpoolSegmentBytes = 64
	cfg.SpoolMaxBytes = 256
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		exp.Enqueue(mkPkts(1, fmt.Sprintf("cap%02d", i)))
	}
	exp.Close() //nolint:errcheck // nothing is listening

	var total int64
	segs, _ := filepath.Glob(filepath.Join(dir, "spool-*.seg"))
	for _, s := range segs {
		if fi, err := os.Stat(s); err == nil {
			total += fi.Size()
		}
	}
	// The cap bounds closed segments; allow the open one on top.
	if total > 256+64+int64(len(segMagic)) {
		t.Fatalf("spool holds %d bytes across %d segments, cap is 256", total, len(segs))
	}

	cfg2 := durableConfig("127.0.0.1:1", dir)
	cfg2.DrainTimeout = time.Millisecond
	exp2, err := NewExporter(cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	rec := exp2.Recovered()
	if rec.Frames == 0 || rec.Frames >= 32 {
		t.Fatalf("recovered %d frames, want a sheds-oldest subset of 32", rec.Frames)
	}
	if rec.NextSeq != 32 {
		t.Fatalf("recovered next seq = %d, want 32 (shedding must not rewind sequences)", rec.NextSeq)
	}
}

// TestRingWrapJournalRecoveryReplaysSurvivors pins the interaction between
// the in-memory ring's DropOldest eviction and the disk journal under a
// sustained multi-segment outage: the ring wraps and sheds its oldest
// frames while the journal retains every committed frame across several
// segments. Recovery must reload exactly the frames that survived the
// ring — the newest SpoolFrames — count the rest as discarded, and the
// restarted exporter must deliver exactly those survivors, with the hole
// accounted as a sequence gap at the collector, never double-counted.
func TestRingWrapJournalRecoveryReplaysSurvivors(t *testing.T) {
	const (
		ring    = 8
		reports = 40
	)
	dir := t.TempDir()

	cfg := durableConfig("127.0.0.1:1", dir) // reserved port: nothing acks
	cfg.SpoolFrames = ring
	cfg.SpoolSegmentBytes = 256 // a handful of frames per segment
	cfg.DrainTimeout = time.Millisecond
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= reports; i++ {
		exp.Enqueue(mkPkts(1, fmt.Sprintf("rep%02d", i)))
	}
	if ts := exp.Telemetry().Snapshot(); ts.FramesDropped != reports-ring {
		t.Fatalf("ring evicted %d frames, want %d", ts.FramesDropped, reports-ring)
	}
	exp.Close() //nolint:errcheck // undelivered-at-close is the point

	// The outage really spanned segments: the journal retained the evicted
	// frames across several files.
	segs, err := filepath.Glob(filepath.Join(dir, "spool-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("journal used %d segments, want a multi-segment outage (>= 3)", len(segs))
	}

	snk := &sink{}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, snk.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg2 := durableConfig(addr.String(), dir)
	cfg2.SpoolFrames = ring
	cfg2.SpoolSegmentBytes = 256
	exp2, err := NewExporter(cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := exp2.Recovered()
	if rec.Frames != ring || rec.Discarded != reports-ring || rec.NextSeq != reports || rec.LastAck != 0 {
		t.Fatalf("recovery = %+v, want %d survivors, %d discarded, seq %d, ack 0",
			rec, ring, reports-ring, reports)
	}

	// Exactly the survivors arrive — the newest ring's worth, in order,
	// under their original sequence numbers.
	waitFor(t, "survivors delivered", func() bool { return len(snk.got()) == ring })
	want := make([]string, 0, ring)
	for i := reports - ring + 1; i <= reports; i++ {
		want = append(want, fmt.Sprintf("rep%02d-0", i))
	}
	if got := snk.got(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	waitFor(t, "survivors acked", func() bool { return exp2.Backlog() == 0 })
	st := srv.Stats()
	es := st.PerExporter[7]
	if st.Duplicates != 0 || es.Gaps != uint64(reports-ring) {
		t.Fatalf("stats = %+v, want 0 duplicates and the %d evicted frames as gaps", st, reports-ring)
	}
	if err := exp2.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}

	// A third life finds nothing left to replay: the ack journal covers the
	// survivors and the discarded hole alike.
	exp3, err := NewExporter(cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp3.Close()
	rec = exp3.Recovered()
	if rec.Frames != 0 || rec.Discarded != 0 || rec.LastAck != reports {
		t.Fatalf("third-life recovery = %+v, want empty backlog at ack %d", rec, reports)
	}
}
