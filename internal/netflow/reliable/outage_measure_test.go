package reliable

import (
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/netflow"
)

// TestMeasureOutageLoss is the EXPERIMENTS.md measurement, not a pass/fail
// guard: it paces interval reports through a collector that goes down for a
// fixed window — once over plain UDP export, once over the reliable
// transport — and logs how many reports each side actually collected. Run
// it with:
//
//	MEASURE_OUTAGE=5s go test -run TestMeasureOutageLoss -v ./internal/netflow/reliable
//
// It is skipped without the env var because a realistic outage window makes
// it far slower than the rest of the suite.
func TestMeasureOutageLoss(t *testing.T) {
	env := os.Getenv("MEASURE_OUTAGE")
	if env == "" {
		t.Skip("set MEASURE_OUTAGE=<duration> (e.g. 5s) to run the outage-loss measurement")
	}
	outage, err := time.ParseDuration(env)
	if err != nil {
		t.Fatalf("MEASURE_OUTAGE: %v", err)
	}
	const (
		pace    = 10 * time.Millisecond // one interval report per tick
		preRun  = time.Second           // healthy collector before the outage
		postRun = time.Second           // healthy collector after the restart
	)
	total := preRun + outage + postRun
	nReports := int(total / pace)

	report := func(enc *netflow.Exporter, i int) [][]byte {
		ests := []core.Estimate{{Key: flow.Key{Lo: uint64(0x0a000000 + i%16)}, Bytes: uint64(1000 + i)}}
		return enc.Export(ests, time.Duration(i+1)*time.Second)
	}

	// UDP leg: fire-and-forget datagrams; whatever lands while the
	// collector is down is gone.
	usrv, uaddr, ustop, err := netflow.ListenAndServe("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	uexp, err := netflow.DialUDPExporter(uaddr.String(), netflow.NewExporter(flow.DstIP{}))
	if err != nil {
		t.Fatal(err)
	}
	udpAddr := uaddr.String()
	var udpGot uint64 // summed across both server incarnations
	var udpSendErrs int
	down, up := int(preRun/pace), int((preRun+outage)/pace)
	for i := 0; i < nReports; i++ {
		if err := uexp.Send(report(uexp.Exporter, i)); err != nil {
			udpSendErrs++ // connected UDP can surface ICMP refusals as errors
		}
		if i == down {
			ustop()
			udpGot += usrv.Stats().Packets
		}
		if i == up {
			usrv, _, ustop, err = netflow.ListenAndServe(udpAddr, nil)
			if err != nil {
				t.Fatalf("UDP collector restart: %v", err)
			}
		}
		time.Sleep(pace)
	}
	time.Sleep(100 * time.Millisecond)
	udpGot += usrv.Stats().Packets
	ustop()
	uexp.Close()

	// Reliable leg: same pacing, same outage window, spooled transport.
	// Dedup by sequence across the two server instances, as an aggregator
	// that survives a collector restart must.
	var relGot, relMaxSeq atomic.Uint64
	relHandle := func(_, seq uint64, _ []byte) {
		if seq <= relMaxSeq.Load() {
			return
		}
		relMaxSeq.Store(seq)
		relGot.Add(1)
	}
	rsrv, raddr, err := Listen("127.0.0.1:0", ServerConfig{}, relHandle)
	if err != nil {
		t.Fatal(err)
	}
	relAddr := raddr.String()
	cfg := ExporterConfig{
		Addr:        relAddr,
		ExporterID:  1,
		SpoolFrames: 2 * nReports, // never shed: we are measuring the transport, not the spool bound
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
	}
	rexp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	renc := netflow.NewExporter(flow.DstIP{})
	for i := 0; i < nReports; i++ {
		rexp.Enqueue(report(renc, i))
		if i == down {
			rsrv.Close()
		}
		if i == up {
			waitFor(t, "reliable collector restart", func() bool {
				rsrv, _, err = Listen(relAddr, ServerConfig{}, relHandle)
				return err == nil
			})
		}
		time.Sleep(pace)
	}
	waitFor(t, "reliable spool drain", func() bool { return rexp.Backlog() == 0 })
	if err := rexp.Close(); err != nil {
		t.Errorf("reliable close: %v", err)
	}
	ts := rexp.Telemetry().Snapshot()
	rsrv.Close()

	loss := func(got uint64) float64 {
		return 100 * float64(uint64(nReports)-got) / float64(nReports)
	}
	t.Logf("outage window %v in a %v run, one report per %v (%d reports total)", outage, total, pace, nReports)
	t.Logf("UDP:      %d/%d reports collected (%.1f%% lost; %d sends errored)",
		udpGot, nReports, loss(udpGot), udpSendErrs)
	t.Logf("reliable: %d/%d reports collected (%.1f%% lost; %d redelivered, %d reconnects, spool high-water %d frames)",
		relGot.Load(), nReports, loss(relGot.Load()), ts.Redelivered, ts.Reconnects, ts.SpoolHighWater)
	if relGot.Load() != uint64(nReports) {
		t.Errorf("reliable transport lost %d reports across the outage", uint64(nReports)-relGot.Load())
	}
}
