package reliable

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/internal/telemetry"
)

// diskSpool is the durable backing of the exporter's in-memory ring: every
// frame Enqueue accepts is journaled (with its sequence number and report
// id) before the sender can see it, every report is closed with a commit
// record, and every cumulative ack from the collector is journaled too.
// After a crash, recovery replays the journal: committed frames above the
// last ack are the exact unacknowledged backlog, uncommitted tail frames
// were never visible to the sender and are discarded, and the sequence
// counter resumes where it left off — so a restarted exporter redelivers
// precisely what the collector has not durably acknowledged, under the same
// sequence numbers, and the collector's dedup keeps totals exact.
//
// All methods are called under the exporter's mutex; the spool itself holds
// no lock.
type diskSpool struct {
	w    segmentWriter
	tel  *telemetry.Durable
	segs []spoolSeg // closed segments, oldest first

	openMaxSeq uint64 // highest data seq in the open segment
	maxBytes   int64  // cap on closed-segment bytes; oldest deleted past it
}

// spoolSeg is one closed (no longer appended) segment.
type spoolSeg struct {
	idx    uint64
	maxSeq uint64 // highest data seq inside; 0 if none
	size   int64
}

// recoveredFrame is one committed, unacknowledged frame restored at startup.
type recoveredFrame struct {
	seq    uint64
	report uint64
	pkt    []byte
}

// spoolRecovery is the outcome of the startup journal scan.
type spoolRecovery struct {
	frames     []recoveredFrame // committed frames above lastAck, seq-ascending
	nextSeq    uint64           // highest committed data seq (sequence counter resume point)
	lastAck    uint64           // highest journaled cumulative ack
	lastReport uint64           // highest committed report id (producer resume point)
	torn       int              // records truncated from segment tails
	tornBytes  int64
}

// openDiskSpool opens (or creates) the spool journal in dir, recovers its
// state, truncates any torn tail, and resumes appending.
func openDiskSpool(dir string, policy FsyncPolicy, interval time.Duration, segBytes, maxBytes int64,
	wrap func(SpoolFile) SpoolFile, tel *telemetry.Durable) (*diskSpool, spoolRecovery, error) {

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, spoolRecovery{}, err
	}
	s := &diskSpool{
		w: segmentWriter{
			dir: dir, prefix: "spool", policy: policy, interval: interval,
			segBytes: segBytes, wrap: wrap, tel: tel,
		},
		tel:      tel,
		maxBytes: maxBytes,
	}
	rec, err := s.recover()
	if err != nil {
		return nil, spoolRecovery{}, spoolStateError(dir, err)
	}
	return s, rec, nil
}

// recover scans every segment oldest-first, rebuilding the committed frame
// backlog and truncating torn tails, then reopens the last segment for
// appending (or starts a fresh one).
func (s *diskSpool) recover() (spoolRecovery, error) {
	idxs, err := listSegments(s.w.dir, s.w.prefix)
	if err != nil {
		return spoolRecovery{}, err
	}
	var (
		rec       spoolRecovery
		committed []recoveredFrame
	)
	for _, idx := range idxs {
		path := segPath(s.w.dir, s.w.prefix, idx)
		recs, size, tornBytes, err := scanSegment(path)
		if err != nil {
			return spoolRecovery{}, err
		}
		var (
			pending []recoveredFrame
			goodEnd = int64(len(segMagic))
			segMax  uint64
		)
		for _, r := range recs {
			switch r.typ {
			case recData:
				if len(r.body) < 16 {
					tornBytes += int64(len(r.body)) // malformed: treat as torn from here
					rec.torn++
					goto truncate
				}
				pending = append(pending, recoveredFrame{
					seq:    beUint64(r.body[0:8]),
					report: beUint64(r.body[8:16]),
					pkt:    append([]byte(nil), r.body[16:]...),
				})
			case recCommit:
				for _, f := range pending {
					if f.seq > rec.nextSeq {
						rec.nextSeq = f.seq
					}
					if f.seq > segMax {
						segMax = f.seq
					}
					committed = append(committed, f)
				}
				if len(r.body) >= 8 {
					if rep := beUint64(r.body[0:8]); rep > rec.lastReport {
						rec.lastReport = rep
					}
				}
				pending = pending[:0]
				goodEnd = r.end
			case recAck:
				if len(r.body) >= 8 {
					if ack := beUint64(r.body[0:8]); ack > rec.lastAck {
						rec.lastAck = ack
					}
				}
				if len(pending) == 0 {
					goodEnd = r.end
				}
			}
		}
	truncate:
		// Data records past the last commit were never visible to the sender
		// (frames only become sendable after their report's commit record),
		// so cutting them — along with any CRC-torn bytes — loses nothing:
		// the producer re-enqueues the whole report under the same sequence
		// numbers.
		rec.torn += len(pending)
		if tornBytes > 0 || len(pending) > 0 {
			rec.tornBytes += size - goodEnd
			if err := truncateSegment(path, goodEnd); err != nil {
				return spoolRecovery{}, err
			}
			size = goodEnd
		}
		s.segs = append(s.segs, spoolSeg{idx: idx, maxSeq: segMax, size: size})
	}

	// The unacknowledged backlog: committed frames the collector has not
	// durably acknowledged, in sequence order (journal order is seq order).
	for _, f := range committed {
		if f.seq > rec.lastAck {
			rec.frames = append(rec.frames, f)
		}
	}
	if rec.lastAck > rec.nextSeq {
		rec.nextSeq = rec.lastAck
	}

	// Resume appending to the newest segment; start fresh if there is none.
	if n := len(s.segs); n > 0 {
		last := s.segs[n-1]
		s.segs = s.segs[:n-1]
		if err := s.w.reopen(last.idx, last.size); err != nil {
			return spoolRecovery{}, err
		}
		s.openMaxSeq = last.maxSeq
	} else if err := s.w.open(0); err != nil {
		return spoolRecovery{}, err
	}
	return rec, nil
}

// appendData journals one frame of a report being enqueued.
func (s *diskSpool) appendData(seq, report uint64, pkt []byte) {
	var head [16]byte
	bePutUint64(head[0:8], seq)
	bePutUint64(head[8:16], report)
	if s.w.append(recData, head[:], pkt) == nil && seq > s.openMaxSeq {
		s.openMaxSeq = seq
	}
}

// appendCommit closes a report's frame run: everything since the previous
// commit is now recoverable, and the batch is fsynced/rotated per policy.
func (s *diskSpool) appendCommit(report uint64) {
	var head [8]byte
	bePutUint64(head[:], report)
	s.w.append(recCommit, head[:], nil) //nolint:errcheck // sticky error checked via ok()
	s.endBatch()
}

// appendAck journals a cumulative ack and deletes every closed segment it
// fully covers. The ack record lands in the open segment first, so deleting
// older segments can never lose the recovered lastAck watermark.
func (s *diskSpool) appendAck(ack uint64) {
	var head [8]byte
	bePutUint64(head[:], ack)
	s.w.append(recAck, head[:], nil) //nolint:errcheck // sticky error checked via ok()
	s.endBatch()
	if s.w.err != nil {
		return
	}
	n := 0
	for n < len(s.segs) && s.segs[n].maxSeq <= ack {
		os.Remove(segPath(s.w.dir, s.w.prefix, s.segs[n].idx)) //nolint:errcheck // best-effort GC
		n++
	}
	if n > 0 {
		s.segs = s.segs[n:]
		syncDir(s.w.dir)
		s.tel.ObserveTruncation(n)
	}
}

// endBatch runs the fsync policy and handles rotation and the disk cap.
func (s *diskSpool) endBatch() {
	before := s.w.idx
	if s.w.commitBatch() != nil {
		return
	}
	if s.w.idx != before {
		// Rotated: the previous segment is now closed and ack-truncatable.
		s.segs = append(s.segs, spoolSeg{idx: before, maxSeq: s.openMaxSeq, size: s.w.closedSize})
		s.openMaxSeq = 0
		// Disk cap: shed the oldest closed segments, mirroring the ring's
		// DropOldest — under a long outage the journal keeps the freshest
		// frames, and recovery counts the hole as already-shed traffic.
		var total int64
		for _, seg := range s.segs {
			total += seg.size
		}
		dropped := 0
		for total > s.maxBytes && len(s.segs) > 1 {
			os.Remove(segPath(s.w.dir, s.w.prefix, s.segs[0].idx)) //nolint:errcheck // best-effort GC
			total -= s.segs[0].size
			s.segs = s.segs[1:]
			dropped++
		}
		if dropped > 0 {
			syncDir(s.w.dir)
			s.tel.ObserveTruncation(dropped)
		}
	}
}

// sync forces pending appends to disk (graceful shutdown).
func (s *diskSpool) sync() error { return s.w.syncNow() }

// ok reports whether the journal is still healthy (no sticky I/O error).
func (s *diskSpool) ok() bool { return s.w.err == nil }

// close fsyncs and closes the journal.
func (s *diskSpool) close() error { return s.w.close() }

func beUint64(b []byte) uint64       { return binary.BigEndian.Uint64(b) }
func bePutUint64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// spoolStateError wraps a recovery failure with the directory for operator
// context.
func spoolStateError(dir string, err error) error {
	return fmt.Errorf("netflow/reliable: spool %s: %w", dir, err)
}
