package reliable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/telemetry"
)

// This file is the storage layer shared by the device's disk spool and the
// collector's write-ahead journal: append-only segment files of CRC-framed
// records, with a configurable fsync policy and torn-tail detection.
//
// Segment format: an 8-byte magic, then records. Each record is
//
//	u32 length   (of type byte + body; not the length field, not the CRC)
//	byte type
//	body
//	u32 CRC-32C  (over the length field, type byte and body)
//
// A process killed mid-write leaves a short or CRC-corrupt record at the
// tail; recovery detects it, truncates the segment back to the last record
// boundary that ended a committed run, and counts what it discarded. The
// CRC covers the length field too, so a corrupted length cannot send the
// scanner off into garbage silently.

const (
	segMagic = "HHJRNL1\n"

	// recOverhead is the framing around a record body: length, type, CRC.
	recOverhead = 4 + 1 + 4

	// maxRecordBody bounds a decoded record body; anything larger is
	// corruption (spool payloads are bounded by DefaultMaxFrameBytes).
	maxRecordBody = DefaultMaxFrameBytes + 64
)

// Journal record types. Distinct from the wire frame types on purpose:
// these are disk records, and mixing the alphabets would make a journal fed
// to the wire decoder (or vice versa) fail loudly instead of confusingly.
const (
	recData   = 'd' // spool: u64 seq, u64 report, payload
	recCommit = 'c' // spool: u64 report — every frame of the report is journaled
	recAck    = 'a' // spool: u64 cumulative ack
	recFrame  = 'f' // collector WAL: u64 exporter, u64 seq, payload
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SpoolFile is what the journal needs from an open segment file. *os.File
// satisfies it; tests wrap it with a fault-injecting writer to make disk
// failures and torn writes deterministic.
type SpoolFile interface {
	io.Writer
	Sync() error
	Close() error
}

// FsyncPolicy says when journal appends are forced to stable storage. The
// choice trades throughput for the size of the window a SIGKILL (or power
// loss) can erase; see the README's durability model for the exact
// guarantees each policy keeps.
type FsyncPolicy int

const (
	// FsyncPerBatch (the default) fsyncs once per append batch — one fsync
	// per Enqueue on the device, one per delivered frame batch on the
	// collector. A crash can lose at most the current batch.
	FsyncPerBatch FsyncPolicy = iota
	// FsyncPerFrame fsyncs after every record. Slowest, and the only policy
	// under which a frame can never be on the wire without being on disk —
	// required for exactness with producers that cannot regenerate reports
	// deterministically.
	FsyncPerFrame
	// FsyncTimer fsyncs when an append batch completes and at least
	// FsyncInterval has passed since the last fsync. Fastest; a crash can
	// lose up to an interval's worth of appends.
	FsyncTimer
	// FsyncNone never fsyncs (the OS flushes the page cache on its own
	// schedule). A process kill loses nothing — the page cache survives —
	// but a machine crash can erase arbitrarily much. Exists mainly as the
	// measurement baseline for the policy cost comparison.
	FsyncNone
)

// String names the policy the way the -export-fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncPerBatch:
		return "batch"
	case FsyncPerFrame:
		return "frame"
	case FsyncTimer:
		return "timer"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// FsyncPolicyByName parses a policy name: frame, batch, timer or none.
func FsyncPolicyByName(name string) (FsyncPolicy, error) {
	switch name {
	case "batch", "":
		return FsyncPerBatch, nil
	case "frame":
		return FsyncPerFrame, nil
	case "timer":
		return FsyncTimer, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, cfgerr.New("netflow/reliable", "Fsync", "unknown policy %q (want frame, batch, timer or none)", name)
	}
}

// segmentWriter appends CRC-framed records to numbered segment files in one
// directory, rotating at a size threshold and fsyncing per policy. It is
// not safe for concurrent use; its owner serializes access (the exporter
// under its spool mutex, the journal under its own).
type segmentWriter struct {
	dir      string
	prefix   string
	policy   FsyncPolicy
	interval time.Duration
	segBytes int64
	wrap     func(SpoolFile) SpoolFile
	tel      *telemetry.Durable

	f          SpoolFile
	idx        uint64 // index of the open segment
	size       int64  // bytes written to the open segment
	closedSize int64  // final size of the most recently rotated-out segment
	dirty      bool   // appended since the last fsync
	lastSync   time.Time
	scratch    []byte // grow-only record assembly buffer
	err        error  // sticky: first I/O error; the journal is then disabled
}

// segPath returns the path of segment idx.
func segPath(dir, prefix string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%08d.seg", prefix, idx))
}

// listSegments returns the sorted indices of prefix's segments in dir.
func listSegments(dir, prefix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), prefix+"-%d.seg", &idx); n == 1 {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// syncDir fsyncs the directory itself, making created/removed segment files
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory
		d.Close()
	}
}

// open opens segment idx for appending (creating it with the magic header)
// and makes the creation durable.
func (w *segmentWriter) open(idx uint64) error {
	f, err := os.OpenFile(segPath(w.dir, w.prefix, idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	syncDir(w.dir)
	var sf SpoolFile = f
	if w.wrap != nil {
		sf = w.wrap(f)
	}
	w.f, w.idx, w.size, w.dirty = sf, idx, int64(len(segMagic)), false
	w.lastSync = time.Now()
	return nil
}

// reopen resumes appending to an existing segment of known size.
func (w *segmentWriter) reopen(idx uint64, size int64) error {
	f, err := os.OpenFile(segPath(w.dir, w.prefix, idx), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	var sf SpoolFile = f
	if w.wrap != nil {
		sf = w.wrap(f)
	}
	w.f, w.idx, w.size, w.dirty = sf, idx, size, false
	w.lastSync = time.Now()
	return nil
}

// fail records the journal's first I/O error and disables it: the process
// keeps running on memory alone, degraded on /healthz.
func (w *segmentWriter) fail(err error) error {
	if w.err == nil {
		w.err = err
		w.tel.ObserveError()
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
	}
	return w.err
}

// append writes one record with up to two body parts (a fixed-size header
// part and a payload). It assembles the record in the grow-only scratch
// buffer so steady state is one Write call and zero allocations.
func (w *segmentWriter) append(typ byte, head, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	bodyLen := 1 + len(head) + len(payload)
	total := 4 + bodyLen + 4
	if cap(w.scratch) < total {
		w.scratch = make([]byte, 0, total+total/2)
	}
	b := w.scratch[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(bodyLen))
	b = append(b, typ)
	b = append(b, head...)
	b = append(b, payload...)
	crc := crc32.Checksum(b, crcTable)
	b = binary.BigEndian.AppendUint32(b, crc)
	w.scratch = b[:0]
	if _, err := w.f.Write(b); err != nil {
		return w.fail(err)
	}
	w.size += int64(len(b))
	w.dirty = true
	w.tel.ObserveAppend(len(b))
	if w.policy == FsyncPerFrame {
		return w.syncNow()
	}
	return nil
}

// commitBatch ends an append batch: it fsyncs per policy and rotates the
// segment if it outgrew the threshold. Rotation only happens here — at a
// record-run boundary — so a multi-record run (one report's frames plus its
// commit record) never spans two segments.
func (w *segmentWriter) commitBatch() error {
	if w.err != nil {
		return w.err
	}
	switch w.policy {
	case FsyncPerBatch:
		if err := w.syncNow(); err != nil {
			return err
		}
	case FsyncTimer:
		if w.dirty && time.Since(w.lastSync) >= w.interval {
			if err := w.syncNow(); err != nil {
				return err
			}
		}
	}
	if w.size >= w.segBytes {
		return w.rotate()
	}
	return nil
}

// syncNow forces appended records to stable storage.
func (w *segmentWriter) syncNow() error {
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	w.dirty = false
	w.lastSync = time.Now()
	w.tel.ObserveFsync()
	return nil
}

// rotate closes the open segment (fsynced) and opens the next one.
func (w *segmentWriter) rotate() error {
	if err := w.syncNow(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return w.fail(err)
	}
	w.f = nil
	w.closedSize = w.size
	if err := w.open(w.idx + 1); err != nil {
		return w.fail(err)
	}
	w.tel.ObserveRotation()
	return nil
}

// close fsyncs and closes the open segment.
func (w *segmentWriter) close() error {
	if w.f == nil {
		return w.err
	}
	err := w.syncNow()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// scannedRecord is one record decoded from a segment. body aliases the
// segment's read buffer.
type scannedRecord struct {
	typ  byte
	body []byte
	end  int64 // file offset just past this record
}

// scanSegment reads every valid record of one segment file. It returns the
// records, the total file size, and how much tail was torn: a short header,
// short body or CRC mismatch ends the scan, and everything from that point
// on counts as torn. A missing or wrong magic makes the whole file torn.
func scanSegment(path string) (recs []scannedRecord, size int64, tornBytes int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	size = int64(len(data))
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, size, size, nil
	}
	off := int64(len(segMagic))
	for off < size {
		rest := data[off:]
		if len(rest) < 4 {
			break
		}
		bodyLen := int(binary.BigEndian.Uint32(rest[:4]))
		if bodyLen < 1 || bodyLen > maxRecordBody || len(rest) < 4+bodyLen+4 {
			break
		}
		want := binary.BigEndian.Uint32(rest[4+bodyLen:])
		if crc32.Checksum(rest[:4+bodyLen], crcTable) != want {
			break
		}
		recs = append(recs, scannedRecord{
			typ:  rest[4],
			body: rest[5 : 4+bodyLen],
			end:  off + int64(4+bodyLen+4),
		})
		off += int64(4 + bodyLen + 4)
	}
	return recs, size, size - off, nil
}

// truncateSegment cuts a segment back to good, discarding a torn tail, and
// fsyncs the result so recovery is itself crash-safe.
func truncateSegment(path string, good int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(good); err != nil {
		return err
	}
	return f.Sync()
}
