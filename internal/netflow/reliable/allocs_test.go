//go:build !race

// The race detector's instrumentation allocates, so the alloc guard only
// exists in non-race builds; CI runs it as a dedicated step.

package reliable

import (
	"testing"
	"time"
)

// TestEnqueueSteadyStateZeroAllocs guards the device-side hot path: spooling
// an interval's packets — including shedding under DropOldest when the
// collector is away — must not allocate. The ring is preallocated and the
// telemetry is atomics, so any regression here is a new allocation sneaking
// into the per-interval path.
func TestEnqueueSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is not meaningful in -short smoke runs")
	}
	cfg := fastConfig("127.0.0.1:1") // reserved port: dial fails, exporter backs off
	cfg.SpoolFrames = 8
	cfg.BackoffMin = time.Hour // one failed dial, then quiet for the whole test
	cfg.BackoffMax = time.Hour
	cfg.DrainTimeout = time.Millisecond
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	pkts := mkPkts(3, "steady")
	if allocs := testing.AllocsPerRun(1000, func() { exp.Enqueue(pkts) }); allocs != 0 {
		t.Errorf("Enqueue allocates %.1f times per interval, want 0", allocs)
	}
}

// TestDurableEnqueueSteadyStateZeroAllocs guards the same path with the
// disk spool journaling every frame: the record is assembled in the
// writer's grow-only scratch buffer and written with one syscall, so adding
// durability must not add allocations to the per-interval hot path.
func TestDurableEnqueueSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is not meaningful in -short smoke runs")
	}
	cfg := fastConfig("127.0.0.1:1") // reserved port: dial fails, exporter backs off
	cfg.SpoolFrames = 8
	cfg.SpoolDir = t.TempDir()
	cfg.BackoffMin = time.Hour
	cfg.BackoffMax = time.Hour
	cfg.DrainTimeout = time.Millisecond
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	pkts := mkPkts(3, "steady")
	exp.Enqueue(pkts) // warm the scratch buffer
	if allocs := testing.AllocsPerRun(1000, func() { exp.Enqueue(pkts) }); allocs != 0 {
		t.Errorf("durable Enqueue allocates %.1f times per interval, want 0", allocs)
	}
	if ds := exp.Durability().Snapshot(); ds.JournalErrors != 0 || ds.Appends == 0 {
		t.Fatalf("journal unhealthy during alloc run: %+v", ds)
	}
}
