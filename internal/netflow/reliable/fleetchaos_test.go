package reliable

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/netfault"
)

// fleetChaosDuration is how long the fleet chaos runs: 8s by default, 2.5s
// under -short, or NETFAULT_CHAOS_DURATION (a Go duration) — the dedicated
// CI job sets 60s for the sustained soak.
func fleetChaosDuration(t *testing.T) time.Duration {
	if spec := os.Getenv("NETFAULT_CHAOS_DURATION"); spec != "" {
		d, err := time.ParseDuration(spec)
		if err != nil {
			t.Fatalf("NETFAULT_CHAOS_DURATION %q: %v", spec, err)
		}
		return d
	}
	if testing.Short() {
		return 2500 * time.Millisecond
	}
	return 8 * time.Second
}

// chaosPayload is the deterministic frame body for (exporter, seq): the
// exporter assigns sequences in enqueue order starting at 1, so both the
// producer and the verifying handler can compute it independently, and a
// single corrupted-but-acked byte anywhere shows up as a mismatch.
func chaosPayload(exporter, seq uint64) []byte {
	return []byte(fmt.Sprintf("exporter=%d seq=%d %s", exporter, seq,
		"................................................................"))
}

// fleetSink verifies every delivered frame against the deterministic
// payload and records per-exporter delivery exactly-once.
type fleetSink struct {
	delay time.Duration

	mu        sync.Mutex
	seen      map[uint64]map[uint64]bool // exporter -> seq -> delivered
	doubles   int
	mismatch  int
	delivered int
}

func newFleetSink(delay time.Duration) *fleetSink {
	return &fleetSink{delay: delay, seen: make(map[uint64]map[uint64]bool)}
}

func (s *fleetSink) handle(exporter, seq uint64, payload []byte) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	ok := bytes.Equal(payload, chaosPayload(exporter, seq))
	s.mu.Lock()
	m := s.seen[exporter]
	if m == nil {
		m = make(map[uint64]bool)
		s.seen[exporter] = m
	}
	if m[seq] {
		s.doubles++
	}
	m[seq] = true
	if !ok {
		s.mismatch++
	}
	s.delivered++
	s.mu.Unlock()
}

// missing returns how many of seqs 1..n the sink never saw for exporter.
func (s *fleetSink) missing(exporter, n uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	lost := 0
	for seq := uint64(1); seq <= n; seq++ {
		if !s.seen[exporter][seq] {
			lost++
		}
	}
	return lost
}

func waitForDeadline(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetChaosByteExact is the acceptance chaos suite: 8 exporters, each
// behind its own netfault proxy, run for a sustained window while the
// proxies corrupt bytes, reset connections mid-stream, flap the link down,
// and asymmetrically partition each direction. A ninth peer completes the
// handshake and then goes silent, and a tenth connects without ever
// sending hello. At the end the network heals, every exporter drains, and
// the run must be byte-exact: every (exporter, seq) delivered exactly once
// with its original bytes — zero lost, zero double-counted — with spool
// growth bounded (no overflow, so no gaps) and both silent peers evicted
// within their timeouts.
func TestFleetChaosByteExact(t *testing.T) {
	const nExporters = 8
	duration := fleetChaosDuration(t)

	sink := newFleetSink(100 * time.Microsecond)
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{
		HandshakeTimeout:    500 * time.Millisecond,
		IdleTimeout:         1 * time.Second,
		AckTimeout:          2 * time.Second,
		InflightBudgetBytes: 64 << 10,
	}, sink.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One proxy per exporter: per-link fault streams stay deterministic in
	// byte terms no matter how goroutines interleave across links.
	proxies := make([]*netfault.Proxy, nExporters)
	exporters := make([]*Exporter, nExporters)
	for i := range proxies {
		// Corruption and resets both kill connections, and both counters are
		// per-connection — whichever offset is lower always wins. Split the
		// fleet so each fault actually fires somewhere.
		up := netfault.LinkConfig{
			Latency: 200 * time.Microsecond,
			Jitter:  300 * time.Microsecond,
		}
		if i%2 == 0 {
			up.ResetAfterBytes = 12 << 10
		} else {
			up.CorruptEveryBytes = 12 << 10
		}
		down := netfault.LinkConfig{CorruptEveryBytes: 8 << 10}
		p, err := netfault.New(addr.String(), up, down, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies[i] = p

		cfg := ExporterConfig{
			Addr:              p.Addr(),
			ExporterID:        uint64(i + 1),
			SpoolFrames:       4096,
			DialTimeout:       time.Second,
			SendTimeout:       time.Second,
			BackoffMin:        2 * time.Millisecond,
			BackoffMax:        50 * time.Millisecond,
			DrainTimeout:      10 * time.Second,
			HeartbeatInterval: 150 * time.Millisecond,
			PauseTimeout:      5 * time.Second,
			Seed:              int64(i + 1),
		}
		exp, err := NewExporter(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		exporters[i] = exp
	}

	// The silent ninth peer: valid hello, then nothing — not even
	// heartbeats. The idle timeout must evict it.
	silent, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	if _, err := silent.Write(appendHello(nil, 999, 0)); err != nil {
		t.Fatal(err)
	}
	// The tenth peer never even says hello; the handshake timeout drops it.
	mute, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()

	// Producers: each exporter enqueues one deterministic frame per report
	// at a steady cadence for the duration.
	stop := make(chan struct{})
	var producers sync.WaitGroup
	counts := make([]uint64, nExporters)
	for i := range exporters {
		producers.Add(1)
		go func(i int) {
			defer producers.Done()
			exporter := uint64(i + 1)
			ticker := time.NewTicker(4 * time.Millisecond)
			defer ticker.Stop()
			var seq uint64
			for {
				select {
				case <-stop:
					counts[i] = seq
					return
				case <-ticker.C:
					seq++
					exporters[i].Enqueue([][]byte{chaosPayload(exporter, seq)})
				}
			}
		}(i)
	}

	// Chaos drivers: each proxy cycles through flaps and asymmetric
	// partitions on its own staggered schedule while corruption and resets
	// run continuously underneath.
	var chaos sync.WaitGroup
	for i, p := range proxies {
		chaos.Add(1)
		go func(i int, p *netfault.Proxy) {
			defer chaos.Done()
			period := 900*time.Millisecond + time.Duration(i)*110*time.Millisecond
			ticker := time.NewTicker(period)
			defer ticker.Stop()
			phase := 0
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				switch phase % 3 {
				case 0: // flap: hard down, then back
					p.SetDown(true)
					select {
					case <-stop:
						p.SetDown(false)
						return
					case <-time.After(150 * time.Millisecond):
					}
					p.SetDown(false)
				case 1: // partition the exporter->collector direction
					up := p.Link(netfault.Up)
					up.Drop = true
					p.SetLink(netfault.Up, up)
					select {
					case <-stop:
					case <-time.After(200 * time.Millisecond):
					}
					up.Drop = false
					p.SetLink(netfault.Up, up)
				case 2: // partition the ack direction
					down := p.Link(netfault.Down)
					down.Drop = true
					p.SetLink(netfault.Down, down)
					select {
					case <-stop:
					case <-time.After(200 * time.Millisecond):
					}
					down.Drop = false
					p.SetLink(netfault.Down, down)
				}
				phase++
			}
		}(i, p)
	}

	// Both freeloaders must be gone well before the soak ends.
	waitForDeadline(t, "handshake timeout on the mute peer", 5*time.Second,
		func() bool { return srv.Stats().HandshakeTimeouts >= 1 })
	waitForDeadline(t, "idle eviction of the silent peer", 5*time.Second,
		func() bool { return srv.Stats().Evicted >= 1 })

	time.Sleep(duration)
	close(stop)
	producers.Wait()
	chaos.Wait()

	// Heal every link and let the fleet drain.
	for _, p := range proxies {
		p.SetDown(false)
		p.SetLink(netfault.Up, netfault.LinkConfig{})
		p.SetLink(netfault.Down, netfault.LinkConfig{})
	}
	for i, exp := range exporters {
		deadline := time.Now().Add(30 * time.Second)
		for exp.Backlog() != 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if bl := exp.Backlog(); bl != 0 {
			t.Fatalf("exporter %d never drained: backlog=%d telemetry=%+v server=%+v proxy=%+v",
				i+1, bl, exp.Telemetry().Snapshot(), srv.Stats(), proxies[i].Stats())
		}
	}

	// Byte-exactness: every enqueued frame delivered exactly once, bytes
	// intact, across every exporter.
	var total uint64
	for i, exp := range exporters {
		exporter := uint64(i + 1)
		n := counts[i]
		total += n
		if n == 0 {
			t.Fatalf("exporter %d enqueued nothing — the chaos schedule starved the producer", exporter)
		}
		if lost := sink.missing(exporter, n); lost != 0 {
			t.Errorf("exporter %d: %d of %d frames lost", exporter, lost, n)
		}
		ts := exp.Telemetry().Snapshot()
		if ts.FramesDropped != 0 {
			t.Errorf("exporter %d dropped %d frames (spool overflow — growth was not bounded)", exporter, ts.FramesDropped)
		}
		if ts.SpoolHighWater >= 4096 {
			t.Errorf("exporter %d spool high water %d reached capacity", exporter, ts.SpoolHighWater)
		}
		if ts.Reconnects == 0 {
			t.Errorf("exporter %d never reconnected — the chaos did not bite", exporter)
		}
		if err := exp.Close(); err != nil {
			t.Errorf("exporter %d close: %v", exporter, err)
		}
	}
	sink.mu.Lock()
	doubles, mismatch, delivered := sink.doubles, sink.mismatch, sink.delivered
	sink.mu.Unlock()
	if doubles != 0 {
		t.Errorf("%d frames double-delivered", doubles)
	}
	if mismatch != 0 {
		t.Errorf("%d frames delivered with corrupted bytes (CRC must prevent this)", mismatch)
	}
	if uint64(delivered) != total {
		t.Errorf("delivered %d frames, want exactly %d", delivered, total)
	}

	st := srv.Stats()
	if st.Gaps != 0 {
		t.Errorf("server counted %d gaps — frames were shed", st.Gaps)
	}
	if st.BadFrames == 0 {
		t.Error("no bad frames seen — the corrupting proxy did nothing")
	}
	if st.Heartbeats == 0 {
		t.Error("no heartbeats received")
	}
	var corrupted, resets uint64
	for _, p := range proxies {
		ps := p.Stats()
		corrupted += ps.CorruptedBytes
		resets += ps.Resets
	}
	if corrupted == 0 {
		t.Error("proxies corrupted nothing — the fault schedule is dead")
	}
	if resets == 0 {
		t.Error("proxies reset nothing — the fault schedule is dead")
	}
	t.Logf("fleet chaos: %d frames byte-exact through %d corrupted bytes, %d resets, %d reconnect-causing bad frames, %d evictions (duration %v)",
		total, corrupted, resets, st.BadFrames, st.Evicted, duration)
}

// TestInflightBudgetPausesAndResumes pins the backpressure protocol: a
// slow handler with a tiny inflight budget must make the server emit pause
// (and later resume) frames, the exporter must honor them (sender parked,
// spool still accepting), and everything must still be delivered exactly
// once.
func TestInflightBudgetPausesAndResumes(t *testing.T) {
	s := &sink{delay: 5 * time.Millisecond}
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{
		InflightBudgetBytes: 2048,
	}, s.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := fastConfig(addr.String())
	cfg.SpoolFrames = 512
	cfg.DrainTimeout = 20 * time.Second
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 200 frames of 256 bytes: 50 KiB against a 2 KiB budget with a slow
	// handler — the reader must outpace the worker and trip the pause.
	frame := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 10; i++ {
		pkts := make([][]byte, 20)
		for j := range pkts {
			pkts[j] = frame
		}
		exp.Enqueue(pkts)
	}
	waitFor(t, "pause emitted", func() bool { return srv.Stats().PausesSent > 0 })
	waitFor(t, "pause observed by exporter", func() bool {
		return exp.Telemetry().Snapshot().Pauses > 0
	})
	// While paused the exporter still accepts new frames — spooling, not
	// blocking.
	exp.Enqueue([][]byte{frame})

	if err := exp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := srv.Stats()
	if st.Delivered != 201 || st.Duplicates != 0 {
		t.Errorf("delivered %d (%d duplicates), want 201 exactly once", st.Delivered, st.Duplicates)
	}
	if st.ResumesSent == 0 {
		t.Error("server never resumed")
	}
	if st.PausedConnections != 0 {
		t.Errorf("paused gauge stuck at %d after drain", st.PausedConnections)
	}
	ts := exp.Telemetry().Snapshot()
	if ts.Resumes == 0 {
		t.Error("exporter never saw a resume")
	}
	if ts.Paused {
		t.Error("exporter paused gauge stuck after close")
	}
}

// TestHandshakeTimeoutRegression pins the satellite fix: a client that
// connects and never sends hello must be dropped within the handshake
// timeout and counted, not hold its goroutine forever.
func TestHandshakeTimeoutRegression(t *testing.T) {
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{
		HandshakeTimeout: 50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitFor(t, "handshake timeout", func() bool {
		return srv.Stats().HandshakeTimeouts == 1
	})
	// The connection slot is actually released, not just counted.
	waitFor(t, "connection slot released", func() bool {
		return srv.Stats().ActiveConnections == 0
	})
	// A peer that sent nothing is a liveness event, not corruption: the
	// timeout must not masquerade as a bad frame.
	if bad := srv.Stats().BadFrames; bad != 0 {
		t.Fatalf("silent handshake timeout counted %d bad frames", bad)
	}
}

// TestIdleEvictionAndHeartbeatKeepalive pins both halves of liveness: an
// exporter heartbeating inside the idle timeout stays connected while
// completely quiet, and a peer that stops heartbeating is evicted.
func TestIdleEvictionAndHeartbeatKeepalive(t *testing.T) {
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{
		IdleTimeout: 150 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Heartbeating exporter with nothing to send: must survive several idle
	// windows. (Enqueue one frame so the sender dials at all.)
	cfg := fastConfig(addr.String())
	cfg.HeartbeatInterval = 30 * time.Millisecond
	exp, err := NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	exp.Enqueue(mkPkts(1, "hb"))
	waitFor(t, "delivery", func() bool { return srv.Stats().Delivered == 1 })
	time.Sleep(600 * time.Millisecond) // four idle windows of silence
	st := srv.Stats()
	if st.Evicted != 0 {
		t.Fatalf("heartbeating exporter evicted (%d)", st.Evicted)
	}
	if st.ActiveConnections != 1 {
		t.Fatalf("heartbeating exporter lost its connection (%d active)", st.ActiveConnections)
	}
	if st.Heartbeats == 0 {
		t.Fatal("no heartbeats recorded")
	}
	if exp.Telemetry().Snapshot().Heartbeats == 0 {
		t.Fatal("exporter counted no heartbeats")
	}

	// A raw peer that hellos and then falls silent is evicted.
	silent, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	if _, err := silent.Write(appendHello(nil, 555, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "silent peer evicted", func() bool { return srv.Stats().Evicted == 1 })
}

// TestMaxExportersAdmissionCap pins admission control: connections past
// the cap are refused and counted, and a slot freed by a disconnect is
// reusable.
func TestMaxExportersAdmissionCap(t *testing.T) {
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{MaxExporters: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Write(appendHello(nil, 1, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first admitted", func() bool { return srv.Stats().ActiveConnections == 1 })

	second, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	waitFor(t, "second rejected", func() bool { return srv.Stats().Rejected == 1 })
	second.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := second.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected connection still served")
	}

	// Freeing the slot lets a new peer in.
	first.Close()
	waitFor(t, "slot released", func() bool { return srv.Stats().ActiveConnections == 0 })
	third, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if _, err := third.Write(appendHello(nil, 3, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "third admitted", func() bool { return srv.Stats().ActiveConnections == 1 })
}

// TestFrameSizeDropCounter pins the satellite fix: a hostile or corrupted
// length prefix surfaces under its own named counter, not just a dead
// connection.
func TestFrameSizeDropCounter(t *testing.T) {
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Oversized length prefix after a valid handshake.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wire := appendHello(nil, 77, 0)
	wire = append(wire, 0xff, 0xff, 0xff, 0xff)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "oversized frame counted", func() bool { return srv.Stats().FrameSizeDrops == 1 })

	// Zero-length prefix in place of the hello.
	conn2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "zero-length frame counted", func() bool { return srv.Stats().FrameSizeDrops == 2 })
}
