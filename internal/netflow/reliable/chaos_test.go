package reliable

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/netflow"
)

// v5agg aggregates decoded v5 payloads by destination IP, the way
// nfcollector does — the chaos tests compare these byte totals, not frame
// counts, because double-aggregation is exactly the failure dedup must
// prevent. It dedups by (exporter, seq) the way the server documentation
// prescribes for aggregators that outlive a server instance: a frame
// handled just before a crash whose ack was lost is redelivered to the
// next server, and only this application-level check keeps it from being
// folded in twice.
type v5agg struct {
	mu      sync.Mutex
	bytes   map[uint32]uint64
	count   int
	maxSeen map[uint64]uint64 // exporter -> highest seq aggregated
}

func newV5agg() *v5agg {
	return &v5agg{bytes: make(map[uint32]uint64), maxSeen: make(map[uint64]uint64)}
}

func (a *v5agg) handle(exporter, seq uint64, payload []byte) {
	p, err := netflow.DecodeV5(payload)
	if err != nil {
		return
	}
	a.mu.Lock()
	if seq <= a.maxSeen[exporter] {
		a.mu.Unlock()
		return
	}
	a.maxSeen[exporter] = seq
	for _, r := range p.Records {
		a.bytes[r.DstIP] += uint64(r.Bytes)
	}
	a.count++
	a.mu.Unlock()
}

func (a *v5agg) totals() map[uint32]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint32]uint64, len(a.bytes))
	for k, v := range a.bytes {
		out[k] = v
	}
	return out
}

// reports builds n interval reports of per-dstIP estimates and the exact
// byte totals a loss-free collector must end up with.
func chaosReports(n int) (pkts [][][]byte, want map[uint32]uint64) {
	enc := netflow.NewExporter(flow.DstIP{})
	want = make(map[uint32]uint64)
	for i := 0; i < n; i++ {
		ests := make([]core.Estimate, 0, 3)
		for f := 0; f < 3; f++ {
			ip := uint32(0x0a000000 + f)
			b := uint64(1000*i + 100*f + 1)
			ests = append(ests, core.Estimate{Key: flow.Key{Lo: uint64(ip)}, Bytes: b})
			want[ip] += b
		}
		pkts = append(pkts, enc.Export(ests, time.Duration(i+1)*time.Second))
	}
	return pkts, want
}

// TestRedeliveryAcrossCollectorRestart is the acceptance chaos test: the
// collector is killed abruptly mid-replay and restarted on the same
// address; the exporter must redeliver every spooled interval report, and
// the restarted collector's per-exporter byte totals must exactly match a
// run with no outage — duplicates absorbed by sequence dedup, nothing
// double-counted, nothing lost.
func TestRedeliveryAcrossCollectorRestart(t *testing.T) {
	const nReports = 40

	// Baseline: no outage.
	pkts, want := chaosReports(nReports)
	base := newV5agg()
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, base.handle)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExporter(fastConfig(addr.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		exp.Enqueue(p)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	srv.Close()
	if got := base.totals(); !mapsEqual(got, want) {
		t.Fatalf("baseline totals wrong: got %v, want %v", got, want)
	}

	// Outage run: same reports, collector killed after a third of them and
	// restarted on the same address while the exporter is still replaying.
	agg := newV5agg()
	srv, addr, err = Listen("127.0.0.1:0", ServerConfig{}, agg.handle)
	if err != nil {
		t.Fatal(err)
	}
	tcpAddr := addr.String()
	cfg := fastConfig(tcpAddr)
	cfg.ExporterID = 99
	exp, err = NewExporter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pkts {
		exp.Enqueue(p)
		if i == nReports/3 {
			// Collector crash: listener and every connection severed with
			// frames unacked in flight.
			srv.Close()
		}
		time.Sleep(time.Millisecond) // spread reports across the outage
	}
	// Collector stays down long enough for the exporter to cycle through
	// dial failures and backoff.
	time.Sleep(50 * time.Millisecond)
	var srv2 *Server
	waitFor(t, "collector restart on same addr", func() bool {
		srv2, _, err = Listen(tcpAddr, ServerConfig{}, agg.handle)
		return err == nil
	})
	waitFor(t, "spool drain after restart", func() bool { return exp.Backlog() == 0 })
	if err := exp.Close(); err != nil {
		t.Fatalf("outage-run close: %v", err)
	}

	if got := agg.totals(); !mapsEqual(got, want) {
		t.Fatalf("totals after outage diverge from no-outage run:\n got %v\nwant %v", got, want)
	}
	st := srv2.Stats()
	es := st.PerExporter[99]
	if es.Gaps != 0 {
		t.Errorf("gaps = %d, want 0 (spool never overflowed)", es.Gaps)
	}
	ts := exp.Telemetry().Snapshot()
	if ts.FramesDropped != 0 {
		t.Errorf("exporter dropped %d frames", ts.FramesDropped)
	}
	if ts.Reconnects == 0 {
		t.Error("exporter never reconnected — the outage did not happen")
	}
	// Every frame was eventually acked exactly once across both servers.
	if ts.Acked != ts.Frames {
		t.Errorf("acked %d of %d frames", ts.Acked, ts.Frames)
	}
	srv2.Close()
}

// TestCorruptedFrameDropsConnectionNotServer feeds the server a frame
// corrupted in flight: the connection must be dropped and counted, the
// server must keep serving, and a clean exporter must still deliver
// everything afterwards.
func TestCorruptedFrameDropsConnectionNotServer(t *testing.T) {
	agg := newV5agg()
	srv, addr, err := Listen("127.0.0.1:0", ServerConfig{}, agg.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	wire := appendHello(nil, 13, 0)
	good := appendDataFrame(nil, 1, []byte("ok!!"))
	// Corrupt the data frame's bytes — header, length prefix, payload,
	// whatever the seed hits — and splice it after a valid hello.
	wire = append(wire, faultinject.Corrupt(good, 3, 6)...)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bad frame accounted or connection closed", func() bool {
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		_, err := conn.Read(buf)
		return srv.Stats().BadFrames > 0 || err != nil && !isTimeoutErr(err)
	})
	conn.Close()

	// The server survives and a well-behaved exporter still gets through.
	pkts, want := chaosReports(5)
	exp, err := NewExporter(fastConfig(addr.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		exp.Enqueue(p)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("close after corruption chaos: %v", err)
	}
	if got := agg.totals(); !mapsEqual(got, want) {
		t.Fatalf("post-corruption delivery wrong: got %v, want %v", got, want)
	}
}

func isTimeoutErr(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

func mapsEqual(a, b map[uint32]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
