package reliable

import (
	"bytes"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	wire = appendHello(wire, 0xdeadbeef, 17)
	payload := []byte("one encoded v5 packet")
	wire = appendDataHeader(wire, 42, len(payload))
	wire = append(wire, payload...)
	wire = appendAck(wire, 41)

	r := bytes.NewReader(wire)
	var buf []byte

	f, err := readFrame(r, &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameHello || f.exporter != 0xdeadbeef || f.acked != 17 {
		t.Fatalf("hello = %+v, %v", f, err)
	}
	f, err = readFrame(r, &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameData || f.seq != 42 || !bytes.Equal(f.payload, payload) {
		t.Fatalf("data = %+v, %v", f, err)
	}
	f, err = readFrame(r, &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameAck || f.seq != 41 {
		t.Fatalf("ack = %+v, %v", f, err)
	}
	if _, err = readFrame(r, &buf, DefaultMaxFrameBytes); err != io.EOF {
		t.Fatalf("past end: %v, want io.EOF", err)
	}
}

func TestFrameEmptyDataPayload(t *testing.T) {
	wire := appendDataHeader(nil, 7, 0)
	var buf []byte
	f, err := readFrame(bytes.NewReader(wire), &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameData || f.seq != 7 || len(f.payload) != 0 {
		t.Fatalf("empty data = %+v, %v", f, err)
	}
}

func TestFrameRejectsBadInput(t *testing.T) {
	var buf []byte
	cases := map[string][]byte{
		"zero length":       {0, 0, 0, 0},
		"oversized length":  {0xff, 0xff, 0xff, 0xff, frameData},
		"unknown type":      {0, 0, 0, 1, 'Z'},
		"short hello":       {0, 0, 0, 2, frameHello, 1},
		"short data":        {0, 0, 0, 5, frameData, 0, 0, 0, 0},
		"short ack":         {0, 0, 0, 3, frameAck, 0, 0},
		"truncated mid-len": {0, 0},
	}
	// A hello whose length prefix claims one junk byte more than the body
	// format allows.
	long := appendHello(nil, 1, 0)
	long[3]++ // body length 18 instead of 17
	cases["long hello"] = append(long, 0xee)
	for name, wire := range cases {
		if _, err := readFrame(bytes.NewReader(wire), &buf, DefaultMaxFrameBytes); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestFrameHonorsMaxFrame(t *testing.T) {
	payload := make([]byte, 100)
	wire := append(appendDataHeader(nil, 1, len(payload)), payload...)
	var buf []byte
	if _, err := readFrame(bytes.NewReader(wire), &buf, 64); err == nil {
		t.Error("frame over maxFrame accepted")
	}
	if _, err := readFrame(bytes.NewReader(wire), &buf, 1024); err != nil {
		t.Errorf("frame under maxFrame rejected: %v", err)
	}
}
