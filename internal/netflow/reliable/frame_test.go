package reliable

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	wire = appendHello(wire, 0xdeadbeef, 17)
	payload := []byte("one encoded v5 packet")
	wire = appendDataFrame(wire, 42, payload)
	wire = appendAck(wire, 41)
	wire = appendControl(wire, frameHeartbeat)
	wire = appendControl(wire, framePause)
	wire = appendControl(wire, frameResume)

	r := bytes.NewReader(wire)
	var buf []byte

	f, err := readFrame(r, &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameHello || f.exporter != 0xdeadbeef || f.acked != 17 {
		t.Fatalf("hello = %+v, %v", f, err)
	}
	f, err = readFrame(r, &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameData || f.seq != 42 || !bytes.Equal(f.payload, payload) {
		t.Fatalf("data = %+v, %v", f, err)
	}
	f, err = readFrame(r, &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameAck || f.seq != 41 {
		t.Fatalf("ack = %+v, %v", f, err)
	}
	for _, want := range []byte{frameHeartbeat, framePause, frameResume} {
		f, err = readFrame(r, &buf, DefaultMaxFrameBytes)
		if err != nil || f.typ != want {
			t.Fatalf("control %q = %+v, %v", want, f, err)
		}
	}
	if _, err = readFrame(r, &buf, DefaultMaxFrameBytes); err != io.EOF {
		t.Fatalf("past end: %v, want io.EOF", err)
	}
}

func TestFrameDataTrailerMatchesWholeFrame(t *testing.T) {
	// The exporter's streaming send path builds header, payload and trailer
	// separately; the result must be byte-identical to appendDataFrame.
	payload := []byte("streamed payload")
	whole := appendDataFrame(nil, 9, payload)

	hdr := appendDataHeader(nil, 9, len(payload))
	streamed := append(append(append([]byte(nil), hdr...), payload...), dataTrailer(nil, hdr, payload)...)
	if !bytes.Equal(whole, streamed) {
		t.Fatalf("streamed frame %x != whole frame %x", streamed, whole)
	}
}

func TestFrameEmptyDataPayload(t *testing.T) {
	wire := appendDataFrame(nil, 7, nil)
	var buf []byte
	f, err := readFrame(bytes.NewReader(wire), &buf, DefaultMaxFrameBytes)
	if err != nil || f.typ != frameData || f.seq != 7 || len(f.payload) != 0 {
		t.Fatalf("empty data = %+v, %v", f, err)
	}
}

func TestFrameRejectsBadInput(t *testing.T) {
	var buf []byte
	cases := map[string][]byte{
		"zero length":       {0, 0, 0, 0},
		"oversized length":  {0xff, 0xff, 0xff, 0xff, frameData},
		"under minimum":     {0, 0, 0, 3, frameAck, 0, 0},
		"truncated mid-len": {0, 0},
		"truncated body":    {0, 0, 0, 30, frameData, 1, 2, 3},
	}
	// Frames with valid CRCs but bodies the type-specific parser rejects.
	cases["unknown type"] = appendControl(nil, 'Z')
	shortHello := appendAck(nil, 5) // ack-shaped body re-labelled as hello
	shortHello[lenBytes] = frameHello
	shortHello = shortHello[:len(shortHello)-crcBytes]
	cases["short hello"] = appendCRC(shortHello, 0)
	shortData := appendControl(nil, frameData) // bodyless data frame: no seq
	cases["short data"] = shortData
	// A hello whose length prefix claims one junk byte more than the body
	// format allows (CRC recomputed so only the length check can reject it).
	long := appendHello(nil, 1, 0)
	long = long[:len(long)-crcBytes]
	long[3]++ // one extra body byte
	long = append(long, 0xee)
	cases["long hello"] = appendCRC(long, 0)
	// A bit flipped in flight: the CRC trailer must catch it.
	flipped := appendDataFrame(nil, 3, []byte("payload"))
	flipped[lenBytes+1+8] ^= 0x01
	cases["corrupted payload"] = flipped
	flippedCRC := appendAck(nil, 12)
	flippedCRC[len(flippedCRC)-1] ^= 0x80
	cases["corrupted trailer"] = flippedCRC

	for name, wire := range cases {
		if _, err := readFrame(bytes.NewReader(wire), &buf, DefaultMaxFrameBytes); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestFrameSizeErrorIsNamed(t *testing.T) {
	// Oversized and zero-length prefixes surface as *frameSizeError so the
	// server can count them under their own telemetry counter.
	var buf []byte
	for _, wire := range [][]byte{
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff},
		{0, 0, 0, 4, frameAck, 0, 0},
	} {
		_, err := readFrame(bytes.NewReader(wire), &buf, DefaultMaxFrameBytes)
		var fse *frameSizeError
		if !errors.As(err, &fse) {
			t.Errorf("wire %v: error %v is not a frameSizeError", wire, err)
		}
	}
	// A CRC failure is a different named error: corruption, not a hostile
	// length prefix.
	bad := appendAck(nil, 1)
	bad[len(bad)-1] ^= 0xff
	_, err := readFrame(bytes.NewReader(bad), &buf, DefaultMaxFrameBytes)
	var fce *frameCRCError
	if !errors.As(err, &fce) {
		t.Errorf("corrupted frame: error %v is not a frameCRCError", err)
	}
}

func TestFrameHonorsMaxFrame(t *testing.T) {
	wire := appendDataFrame(nil, 1, make([]byte, 100))
	var buf []byte
	if _, err := readFrame(bytes.NewReader(wire), &buf, 64); err == nil {
		t.Error("frame over maxFrame accepted")
	}
	if _, err := readFrame(bytes.NewReader(wire), &buf, 1024); err != nil {
		t.Errorf("frame under maxFrame rejected: %v", err)
	}
}

// FuzzReadFrame throws arbitrary byte streams at the frame reader: it must
// never panic, never allocate past maxFrame, and on success re-encoding the
// decoded frame must reproduce the input prefix (the codec is its own
// inverse).
func FuzzReadFrame(f *testing.F) {
	f.Add(appendHello(nil, 0xdeadbeef, 17))
	f.Add(appendDataFrame(nil, 42, []byte("one encoded v5 packet")))
	f.Add(appendDataFrame(nil, 7, nil))
	f.Add(appendAck(nil, 41))
	f.Add(appendControl(nil, frameHeartbeat))
	f.Add(appendControl(nil, framePause))
	f.Add(appendControl(nil, frameResume))
	// Regression seeds: shapes that previously only died as anonymous
	// connection errors.
	f.Add([]byte{0, 0, 0, 0})                      // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'D'})     // oversized length
	f.Add([]byte{0, 0, 0, 5, 'D', 0, 0, 0, 0})     // truncated data
	f.Add([]byte{0, 0, 0, 30, 'D', 1, 2, 3})       // length past body
	f.Add(append(appendAck(nil, 3), 0, 0, 0, 255)) // trailing garbage length

	f.Fuzz(func(t *testing.T, wire []byte) {
		var buf []byte
		const maxFrame = 1 << 16
		fr, err := readFrame(bytes.NewReader(wire), &buf, maxFrame)
		if err != nil {
			return
		}
		var again []byte
		switch fr.typ {
		case frameHello:
			again = appendHello(nil, fr.exporter, fr.acked)
		case frameData:
			again = appendDataFrame(nil, fr.seq, fr.payload)
		case frameAck:
			again = appendAck(nil, fr.seq)
		case frameHeartbeat, framePause, frameResume:
			again = appendControl(nil, fr.typ)
		default:
			t.Fatalf("decoded unknown type %#x", fr.typ)
		}
		if len(again) > len(wire) || !bytes.Equal(again, wire[:len(again)]) {
			t.Fatalf("re-encoding %+v gave %x, want prefix of %x", fr, again, wire)
		}
	})
}
