package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
)

// NetFlow v5 wire format, implemented from scratch so the collection
// pipeline (router -> export packets -> management station) can be
// exercised end to end and its volume measured, not just estimated. The
// paper's point iv) is that this export traffic is itself a resource
// bottleneck; encoding real v5 packets keeps the accounting honest.
//
// A v5 export packet is a 24-byte header followed by up to 30 records of 48
// bytes each, all fields big-endian.

const (
	v5Version        = 5
	v5HeaderBytes    = 24
	v5RecordBytes    = 48
	V5MaxRecords     = 30
	v5MaxPacketBytes = v5HeaderBytes + V5MaxRecords*v5RecordBytes
)

// V5Record is one flow record as carried in a NetFlow v5 export packet.
// Only the fields our Packet model populates are meaningful; the rest are
// zero on encode and ignored on decode.
type V5Record struct {
	SrcIP, DstIP     uint32
	Packets, Bytes   uint32
	SrcPort, DstPort uint16
	Proto            uint8
	SrcAS, DstAS     uint16
}

// V5Packet is a decoded export packet.
type V5Packet struct {
	// SysUptime and UnixSecs situate the export in time.
	SysUptime time.Duration
	UnixSecs  uint32
	// FlowSequence is the cumulative record count before this packet.
	FlowSequence uint32
	Records      []V5Record
}

// EncodeV5 packs records into as many v5 export packets as needed.
// flowSequence is the exporter's running record counter before this batch;
// callers advance it by len(records) afterwards.
func EncodeV5(records []V5Record, sysUptime time.Duration, unixSecs, flowSequence uint32) [][]byte {
	var out [][]byte
	for len(records) > 0 {
		n := len(records)
		if n > V5MaxRecords {
			n = V5MaxRecords
		}
		batch := records[:n]
		records = records[n:]

		buf := make([]byte, 0, v5HeaderBytes+n*v5RecordBytes)
		buf = binary.BigEndian.AppendUint16(buf, v5Version)
		buf = binary.BigEndian.AppendUint16(buf, uint16(n))
		buf = binary.BigEndian.AppendUint32(buf, uint32(sysUptime/time.Millisecond))
		buf = binary.BigEndian.AppendUint32(buf, unixSecs)
		buf = binary.BigEndian.AppendUint32(buf, 0) // residual nanoseconds
		buf = binary.BigEndian.AppendUint32(buf, flowSequence)
		buf = append(buf, 0, 0, 0, 0) // engine type/id, sampling interval
		for _, r := range batch {
			buf = binary.BigEndian.AppendUint32(buf, r.SrcIP)
			buf = binary.BigEndian.AppendUint32(buf, r.DstIP)
			buf = binary.BigEndian.AppendUint32(buf, 0) // nexthop
			buf = binary.BigEndian.AppendUint16(buf, 0) // input ifindex
			buf = binary.BigEndian.AppendUint16(buf, 0) // output ifindex
			buf = binary.BigEndian.AppendUint32(buf, r.Packets)
			buf = binary.BigEndian.AppendUint32(buf, r.Bytes)
			buf = binary.BigEndian.AppendUint32(buf, 0) // first uptime
			buf = binary.BigEndian.AppendUint32(buf, 0) // last uptime
			buf = binary.BigEndian.AppendUint16(buf, r.SrcPort)
			buf = binary.BigEndian.AppendUint16(buf, r.DstPort)
			buf = append(buf, 0, 0) // pad, tcp flags
			buf = append(buf, r.Proto, 0)
			buf = binary.BigEndian.AppendUint16(buf, r.SrcAS)
			buf = binary.BigEndian.AppendUint16(buf, r.DstAS)
			buf = append(buf, 0, 0, 0, 0) // masks, pad
		}
		out = append(out, buf)
		flowSequence += uint32(n)
	}
	return out
}

// DecodeV5 parses one export packet.
func DecodeV5(data []byte) (*V5Packet, error) {
	if len(data) < v5HeaderBytes {
		return nil, fmt.Errorf("netflow: v5 packet of %d bytes too short", len(data))
	}
	if v := binary.BigEndian.Uint16(data[0:2]); v != v5Version {
		return nil, fmt.Errorf("netflow: version %d, want 5", v)
	}
	count := int(binary.BigEndian.Uint16(data[2:4]))
	if count > V5MaxRecords {
		return nil, fmt.Errorf("netflow: record count %d exceeds v5 maximum %d", count, V5MaxRecords)
	}
	want := v5HeaderBytes + count*v5RecordBytes
	if len(data) < want {
		return nil, fmt.Errorf("netflow: packet %d bytes, need %d for %d records", len(data), want, count)
	}
	p := &V5Packet{
		SysUptime:    time.Duration(binary.BigEndian.Uint32(data[4:8])) * time.Millisecond,
		UnixSecs:     binary.BigEndian.Uint32(data[8:12]),
		FlowSequence: binary.BigEndian.Uint32(data[16:20]),
	}
	for i := 0; i < count; i++ {
		rec := data[v5HeaderBytes+i*v5RecordBytes:]
		p.Records = append(p.Records, V5Record{
			SrcIP:   binary.BigEndian.Uint32(rec[0:4]),
			DstIP:   binary.BigEndian.Uint32(rec[4:8]),
			Packets: binary.BigEndian.Uint32(rec[16:20]),
			Bytes:   binary.BigEndian.Uint32(rec[20:24]),
			SrcPort: binary.BigEndian.Uint16(rec[32:34]),
			DstPort: binary.BigEndian.Uint16(rec[34:36]),
			Proto:   rec[38],
			SrcAS:   binary.BigEndian.Uint16(rec[40:42]),
			DstAS:   binary.BigEndian.Uint16(rec[42:44]),
		})
	}
	return p, nil
}

// RecordsFromEstimates converts a device report into v5 records. Estimates
// are keyed by the flow definition that produced them; only 5-tuple keys
// carry the full addressing information, other definitions fill what they
// have.
func RecordsFromEstimates(def flow.Definition, ests []core.Estimate) []V5Record {
	out := make([]V5Record, 0, len(ests))
	for _, e := range ests {
		r := V5Record{Bytes: clampUint32(e.Bytes)}
		switch def.(type) {
		case flow.FiveTuple:
			r.SrcIP = uint32(e.Key.Hi >> 32)
			r.DstIP = uint32(e.Key.Hi)
			r.SrcPort = uint16(e.Key.Lo >> 32)
			r.DstPort = uint16(e.Key.Lo >> 16)
			r.Proto = uint8(e.Key.Lo)
		case flow.DstIP:
			r.DstIP = uint32(e.Key.Lo)
		case flow.ASPair:
			r.SrcAS = uint16(e.Key.Lo >> 16)
			r.DstAS = uint16(e.Key.Lo)
		}
		out = append(out, r)
	}
	return out
}

func clampUint32(v uint64) uint32 {
	if v > 0xffffffff {
		return 0xffffffff
	}
	return uint32(v)
}

// Exporter batches per-interval reports into v5 packets, tracking the flow
// sequence the way a router's export engine does.
type Exporter struct {
	def      flow.Definition
	sequence uint32
	// PacketsSent and BytesSent accumulate export volume.
	PacketsSent int
	BytesSent   uint64
}

// NewExporter creates an exporter for estimates produced under def.
func NewExporter(def flow.Definition) *Exporter { return &Exporter{def: def} }

// Export encodes one interval's estimates; sysUptime anchors the packet
// header.
func (e *Exporter) Export(ests []core.Estimate, sysUptime time.Duration) [][]byte {
	records := RecordsFromEstimates(e.def, ests)
	pkts := EncodeV5(records, sysUptime, 0, e.sequence)
	e.sequence += uint32(len(records))
	for _, p := range pkts {
		e.PacketsSent++
		e.BytesSent += uint64(len(p))
	}
	return pkts
}
