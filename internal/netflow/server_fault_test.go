package netflow

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flow"
)

// faultSrc is the fixed source address used when driving ingest directly —
// datagram mangling tests bypass the socket so the accounting assertions
// are exact rather than racing UDP delivery.
var faultSrc = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9999}

// exportBatches encodes n single-record interval reports with consecutive
// flow sequences.
func exportBatches(n int) [][]byte {
	enc := NewExporter(flow.DstIP{})
	var out [][]byte
	for i := 0; i < n; i++ {
		ests := []core.Estimate{{Key: flow.Key{Lo: uint64(0x0a000000 + i)}, Bytes: uint64(1000 + i)}}
		out = append(out, enc.Export(ests, time.Duration(i+1)*time.Second)...)
	}
	return out
}

// refAccount mirrors the server's sequence accounting so the tests can
// compute the exact expected counters for an arbitrary mangled stream.
type refAccount struct {
	next    uint32
	started bool
	want    Stats
}

func (r *refAccount) ingest(data []byte) {
	pkt, err := DecodeV5(data)
	if err != nil {
		r.want.BadBytes += uint64(len(data))
		return
	}
	r.want.Packets++
	r.want.Records += uint64(len(pkt.Records))
	end := pkt.FlowSequence + uint32(len(pkt.Records))
	if r.started {
		switch {
		case pkt.FlowSequence > r.next:
			r.want.LostRecords += uint64(pkt.FlowSequence - r.next)
			r.next = end
		case end <= r.next:
			r.want.Duplicates++
		default:
			r.next = end
		}
	} else {
		r.started = true
		r.next = end
	}
}

// TestServerExactAccountingUnderCorruption flips bytes in every datagram —
// header, sequence, record bytes, wherever the seed lands — and checks the
// server neither panics nor drifts from the reference accounting: damaged
// packets that no longer decode are charged to BadBytes, ones that still
// decode are counted like any other.
func TestServerExactAccountingUnderCorruption(t *testing.T) {
	srv := NewServer(nil, nil)
	ref := &refAccount{}
	for i, p := range exportBatches(20) {
		mangled := faultinject.Corrupt(p, int64(i+1), 3)
		ref.ingest(mangled)
		srv.ingest(faultSrc, mangled)
	}
	if got := srv.Stats(); got != ref.want {
		t.Errorf("corrupted stream: stats = %+v, want %+v", got, ref.want)
	}
	if st := srv.Stats(); st.BadBytes == 0 {
		t.Error("3 byte flips per datagram over 20 datagrams broke nothing — corruption injection is not reaching the decoder")
	}
}

// TestServerExactAccountingUnderTruncation cuts datagrams short at assorted
// fractions. A v5 packet is a 24-byte header plus 48-byte records, so most
// cuts make it undecodable; every byte of those must land in BadBytes.
func TestServerExactAccountingUnderTruncation(t *testing.T) {
	srv := NewServer(nil, nil)
	ref := &refAccount{}
	fracs := []float64{0, 0.2, 0.5, 0.9, 1}
	for i, p := range exportBatches(10) {
		mangled := faultinject.Truncate(p, fracs[i%len(fracs)])
		ref.ingest(mangled)
		srv.ingest(faultSrc, mangled)
	}
	st := srv.Stats()
	if st != ref.want {
		t.Errorf("truncated stream: stats = %+v, want %+v", st, ref.want)
	}
	// Only the frac==1 datagrams survive; between each pair the server must
	// see the skipped sequences as loss, not crash or double-count.
	if st.Packets != 2 {
		t.Errorf("packets = %d, want 2 (only untruncated datagrams decode)", st.Packets)
	}
	if st.LostRecords == 0 {
		t.Error("truncation holes not reflected in LostRecords")
	}
}

// TestServerDuplicatedDatagrams replays datagrams out of order: an exact
// duplicate and a stale replay must be counted as duplicates without
// regressing the sequence cursor — otherwise the packets after them would
// register phantom loss.
func TestServerDuplicatedDatagrams(t *testing.T) {
	pkts := exportBatches(4)
	srv := NewServer(nil, nil)
	srv.ingest(faultSrc, pkts[0])
	srv.ingest(faultSrc, pkts[1])
	srv.ingest(faultSrc, pkts[1]) // immediate duplicate
	srv.ingest(faultSrc, pkts[0]) // stale replay from before the cursor
	srv.ingest(faultSrc, pkts[2])
	srv.ingest(faultSrc, pkts[3])
	st := srv.Stats()
	if st.Duplicates != 2 {
		t.Errorf("duplicates = %d, want 2", st.Duplicates)
	}
	if st.LostRecords != 0 {
		t.Errorf("lost = %d, want 0 (replays must not regress the cursor)", st.LostRecords)
	}
	if st.Packets != 6 || st.Records != 6 {
		t.Errorf("stats = %+v, want 6 packets / 6 records", st)
	}
}

// TestServerDuplicatesAndLossCompose drops one batch and replays another in
// the same stream: the loss must be exactly the skipped batch's records and
// the replay exactly one duplicate.
func TestServerDuplicatesAndLossCompose(t *testing.T) {
	pkts := exportBatches(5)
	srv := NewServer(nil, nil)
	srv.ingest(faultSrc, pkts[0])
	srv.ingest(faultSrc, pkts[1])
	// pkts[2] lost in flight.
	srv.ingest(faultSrc, pkts[3])
	srv.ingest(faultSrc, pkts[1]) // late replay
	srv.ingest(faultSrc, pkts[4])
	st := srv.Stats()
	if st.LostRecords != 1 {
		t.Errorf("lost = %d, want 1 (the single record of the dropped batch)", st.LostRecords)
	}
	if st.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", st.Duplicates)
	}
	if st.Packets != 5 {
		t.Errorf("packets = %d, want 5 (replays still count as received packets)", st.Packets)
	}
}
