package netflow

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Server is a NetFlow v5 collection station: it listens on UDP, decodes
// export packets, tracks per-exporter sequence gaps (the paper cites loss
// rates of up to 90% for basic NetFlow collection — gap accounting is how a
// collector notices), and hands decoded packets to a handler.
type Server struct {
	conn    net.PacketConn
	handler func(src net.Addr, pkt *V5Packet)

	mu         sync.Mutex
	nextSeq    map[string]uint32
	lost       uint64
	packets    uint64
	records    uint64
	duplicates uint64
	badBytes   uint64
}

// NewServer wraps an existing PacketConn (usually from net.ListenPacket
// ("udp", addr)). The handler may be nil when only the statistics matter.
func NewServer(conn net.PacketConn, handler func(src net.Addr, pkt *V5Packet)) *Server {
	return &Server{
		conn:    conn,
		handler: handler,
		nextSeq: make(map[string]uint32),
	}
}

// ListenAndServe opens a UDP socket on addr and serves until the returned
// stop function is called. It returns the server (for statistics), the
// bound address, and a stop function.
func ListenAndServe(addr string, handler func(src net.Addr, pkt *V5Packet)) (*Server, net.Addr, func(), error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, nil, nil, err
	}
	s := NewServer(conn, handler)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve()
	}()
	stop := func() {
		conn.Close()
		<-done
	}
	return s, conn.LocalAddr(), stop, nil
}

// Serve reads export packets until the connection is closed.
func (s *Server) Serve() error {
	buf := make([]byte, 65536)
	for {
		n, src, err := s.conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.ingest(src, buf[:n])
	}
}

func (s *Server) ingest(src net.Addr, data []byte) {
	pkt, err := DecodeV5(data)
	s.mu.Lock()
	if err != nil {
		s.badBytes += uint64(len(data))
		s.mu.Unlock()
		return
	}
	s.packets++
	s.records += uint64(len(pkt.Records))
	key := src.String()
	end := pkt.FlowSequence + uint32(len(pkt.Records))
	if want, ok := s.nextSeq[key]; ok {
		switch {
		case pkt.FlowSequence > want:
			s.lost += uint64(pkt.FlowSequence - want)
			s.nextSeq[key] = end
		case end <= want:
			// A replayed or reordered datagram covering only already-seen
			// sequences. Counting it but not regressing nextSeq keeps later
			// packets from registering phantom loss.
			s.duplicates++
		default:
			s.nextSeq[key] = end
		}
	} else {
		s.nextSeq[key] = end
	}
	handler := s.handler
	s.mu.Unlock()
	if handler != nil {
		handler(src, pkt)
	}
}

// Stats summarizes what the collector has seen.
type Stats struct {
	Packets, Records, LostRecords, Duplicates, BadBytes uint64
}

// Stats returns a snapshot of the collection statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Packets: s.packets, Records: s.records, LostRecords: s.lost,
		Duplicates: s.duplicates, BadBytes: s.badBytes}
}

// String renders the statistics.
func (st Stats) String() string {
	return fmt.Sprintf("%d packets, %d records, %d lost, %d duplicate, %d undecodable bytes",
		st.Packets, st.Records, st.LostRecords, st.Duplicates, st.BadBytes)
}

// UDPExporter sends v5 export packets to a collector over UDP; it wraps an
// Exporter with a socket, completing the router side of the collection
// pipeline.
type UDPExporter struct {
	*Exporter
	conn net.Conn
}

// DialUDPExporter connects to a collector address.
func DialUDPExporter(addr string, e *Exporter) (*UDPExporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &UDPExporter{Exporter: e, conn: conn}, nil
}

// Send encodes and transmits one batch of packets produced by Export.
func (u *UDPExporter) Send(pkts [][]byte) error {
	for _, p := range pkts {
		if _, err := u.conn.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the socket.
func (u *UDPExporter) Close() error { return u.conn.Close() }
