package netflow

import (
	"sort"

	"repro/internal/core"
	"repro/internal/flow"
)

// RecordBytes is the size of one exported flow record on the wire; the
// paper uses Cisco NetFlow's 64 bytes per entry.
const RecordBytes = 64

// Record is one exported flow record.
type Record struct {
	Interval int
	Key      flow.Key
	Bytes    uint64
}

// Collector models the management station that receives per-interval flow
// reports. The paper's point iv) is that NetFlow's large record volume is a
// resource bottleneck (up to 90% loss rates are reported for basic
// NetFlow); the collector accounts the transfer volume so experiments can
// compare it across algorithms.
type Collector struct {
	Records []Record
	// WireBytes is the cumulative export volume.
	WireBytes uint64
	// Keep controls whether records accumulate (volume is always counted).
	Keep bool
}

// NewCollector creates a collector that keeps records.
func NewCollector() *Collector { return &Collector{Keep: true} }

// Collect ingests one interval's estimates.
func (c *Collector) Collect(interval int, ests []core.Estimate) {
	c.WireBytes += uint64(len(ests)) * RecordBytes
	if !c.Keep {
		return
	}
	for _, e := range ests {
		c.Records = append(c.Records, Record{Interval: interval, Key: e.Key, Bytes: e.Bytes})
	}
}

// sortSlice sorts estimates with the given ordering; shared with the
// algorithm's report path.
func sortSlice(es []core.Estimate, less func(a, b core.Estimate) bool) {
	sort.Slice(es, func(i, j int) bool { return less(es[i], es[j]) })
}
