package netflow

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
)

// collectorPair spins up a loopback collector and a connected exporter.
func collectorPair(t *testing.T, def flow.Definition) (*Server, *UDPExporter, func(*testing.T) []*V5Packet, func()) {
	t.Helper()
	var mu sync.Mutex
	var got []*V5Packet
	srv, addr, stop, err := ListenAndServe("127.0.0.1:0", func(_ net.Addr, p *V5Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := DialUDPExporter(addr.String(), NewExporter(def))
	if err != nil {
		stop()
		t.Fatal(err)
	}
	received := func(t *testing.T) []*V5Packet {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			n := len(got)
			mu.Unlock()
			if n > 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		mu.Lock()
		defer mu.Unlock()
		out := append([]*V5Packet(nil), got...)
		got = nil
		return out
	}
	cleanup := func() {
		exp.Close()
		stop()
	}
	return srv, exp, received, cleanup
}

func TestExportCollectRoundTrip(t *testing.T) {
	srv, exp, received, cleanup := collectorPair(t, flow.DstIP{})
	defer cleanup()

	ests := []core.Estimate{
		{Key: flow.Key{Lo: 0x0a000001}, Bytes: 123456},
		{Key: flow.Key{Lo: 0x0a000002}, Bytes: 654321},
	}
	if err := exp.Send(exp.Export(ests, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
	pkts := received(t)
	if len(pkts) != 1 {
		t.Fatalf("collector got %d packets", len(pkts))
	}
	recs := pkts[0].Records
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	// Reports are sorted largest-first by the device; the exporter keeps
	// the order it was given.
	if recs[0].DstIP != 0x0a000001 || recs[0].Bytes != 123456 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	st := srv.Stats()
	if st.Packets != 1 || st.Records != 2 || st.LostRecords != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCollectorDetectsSequenceGaps(t *testing.T) {
	srv, exp, received, cleanup := collectorPair(t, flow.DstIP{})
	defer cleanup()

	est := func(n int) []core.Estimate {
		out := make([]core.Estimate, n)
		for i := range out {
			out[i] = core.Estimate{Key: flow.Key{Lo: uint64(i)}, Bytes: 100}
		}
		return out
	}
	// First batch arrives; second batch is "lost" (never sent); third
	// arrives with a sequence that reveals the gap.
	if err := exp.Send(exp.Export(est(5), time.Second)); err != nil {
		t.Fatal(err)
	}
	received(t)
	_ = exp.Export(est(7), 2*time.Second) // encoded but dropped on the floor
	if err := exp.Send(exp.Export(est(3), 3*time.Second)); err != nil {
		t.Fatal(err)
	}
	received(t)
	st := srv.Stats()
	if st.LostRecords != 7 {
		t.Errorf("lost = %d, want 7", st.LostRecords)
	}
	if st.Packets != 2 || st.Records != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCollectorIgnoresGarbage(t *testing.T) {
	srv, _, _, cleanup := collectorPair(t, flow.DstIP{})
	// Send garbage straight at the socket.
	conn, err := net.Dial("udp", srv.conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("not a netflow packet")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().BadBytes > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.BadBytes == 0 {
		t.Error("garbage not accounted")
	}
	if st.Packets != 0 {
		t.Error("garbage counted as a packet")
	}
	cleanup()
}

func TestStatsString(t *testing.T) {
	st := Stats{Packets: 1, Records: 2, LostRecords: 3, Duplicates: 4, BadBytes: 5}
	want := "1 packets, 2 records, 3 lost, 4 duplicate, 5 undecodable bytes"
	if st.String() != want {
		t.Errorf("String = %q", st.String())
	}
}

func TestDialUDPExporterBadAddr(t *testing.T) {
	if _, err := DialUDPExporter("%%%bad", NewExporter(flow.DstIP{})); err == nil {
		t.Error("bad address accepted")
	}
}
