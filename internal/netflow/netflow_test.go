package netflow

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestConfigValidate(t *testing.T) {
	if err := (Config{SamplingRate: 16}).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{SamplingRate: 0},
		{SamplingRate: 16, MaxEntries: -1},
		{SamplingRate: 16, Phase: 16},
		{SamplingRate: 16, Phase: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestExactWhenUnsampled(t *testing.T) {
	// x = 1: every packet logged, estimates exact.
	nf, err := New(Config{SamplingRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		nf.Process(key(1), 100)
	}
	est := nf.EndInterval()
	if len(est) != 1 || est[0].Bytes != 1000 {
		t.Fatalf("estimates = %v", est)
	}
}

func TestCountBasedSampling(t *testing.T) {
	// Every 4th packet sampled: 8 packets of one flow -> 2 samples.
	nf, err := New(Config{SamplingRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		nf.Process(key(1), 100)
	}
	if got := nf.SampledPackets(); got != 2 {
		t.Errorf("sampled %d packets, want 2", got)
	}
	est := nf.EndInterval()
	// 2 samples * 100 bytes * 4 = 800 bytes estimated.
	if len(est) != 1 || est[0].Bytes != 800 {
		t.Fatalf("estimates = %v", est)
	}
}

func TestRenormalizationCanOverestimate(t *testing.T) {
	// The paper's billing objection: NetFlow estimates are not lower
	// bounds. Alternate big and small packets so sampling the big ones
	// overestimates.
	nf, err := New(Config{SamplingRate: 2, Phase: 1})
	if err != nil {
		t.Fatal(err)
	}
	var truth uint64
	for i := 0; i < 100; i++ {
		size := uint32(40)
		if i%2 == 0 {
			size = 1500 // sampled (phase 1: packets 0, 2, 4...)
		}
		truth += uint64(size)
		nf.Process(key(1), size)
	}
	est := nf.EndInterval()
	if len(est) != 1 {
		t.Fatal("flow not reported")
	}
	if est[0].Bytes <= truth {
		t.Errorf("expected overestimate from size bias: est %d truth %d", est[0].Bytes, truth)
	}
}

func TestPhaseShiftsSampling(t *testing.T) {
	// With phase 0 the x-th packet is the first sample; with phase x-1 the
	// first packet is sampled.
	early, err := New(Config{SamplingRate: 10, Phase: 9})
	if err != nil {
		t.Fatal(err)
	}
	late, err := New(Config{SamplingRate: 10, Phase: 0})
	if err != nil {
		t.Fatal(err)
	}
	early.Process(key(1), 100)
	late.Process(key(1), 100)
	if early.SampledPackets() != 1 || late.SampledPackets() != 0 {
		t.Errorf("phase handling wrong: early=%d late=%d",
			early.SampledPackets(), late.SampledPackets())
	}
}

func TestMaxEntriesBoundsDRAM(t *testing.T) {
	nf, err := New(Config{SamplingRate: 1, MaxEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		nf.Process(key(i), 100)
	}
	if nf.EntriesUsed() != 3 {
		t.Errorf("EntriesUsed = %d, want 3", nf.EntriesUsed())
	}
	if nf.Capacity() != 3 {
		t.Errorf("Capacity = %d", nf.Capacity())
	}
}

func TestEndIntervalClears(t *testing.T) {
	nf, err := New(Config{SamplingRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	nf.Process(key(1), 100)
	nf.EndInterval()
	if nf.EntriesUsed() != 0 {
		t.Error("entries survived the interval transition")
	}
}

func TestMemoryAccessesAreDRAMAndSubOnePerPacket(t *testing.T) {
	nf, err := New(Config{SamplingRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1600; i++ {
		nf.Process(key(uint64(i)), 100)
	}
	c := nf.Mem()
	if c.SRAMReads+c.SRAMWrites != 0 {
		t.Error("NetFlow must not touch SRAM")
	}
	// 100 samples * (1 read + 1 write) over 1600 packets = 0.125/packet,
	// the 1/x-flavored advantage of Table 1's last column.
	if got := c.PerPacket(); got != 0.125 {
		t.Errorf("PerPacket = %g, want 0.125", got)
	}
}

func TestReportsSortedAndTyped(t *testing.T) {
	var _ core.Algorithm = (*NetFlow)(nil)
	nf, err := New(Config{SamplingRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	nf.Process(key(1), 100)
	nf.Process(key(2), 900)
	nf.Process(key(3), 500)
	est := nf.EndInterval()
	if len(est) != 3 || est[0].Bytes < est[1].Bytes || est[1].Bytes < est[2].Bytes {
		t.Errorf("report not sorted: %v", est)
	}
	for _, e := range est {
		if e.Exact {
			t.Error("NetFlow estimates must never claim exactness")
		}
	}
	if nf.Name() != "sampled-netflow" {
		t.Errorf("Name = %q", nf.Name())
	}
	nf.SetThreshold(0)
	if nf.Threshold() != 1 {
		t.Error("SetThreshold clamp")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	ests := []core.Estimate{{Key: key(1), Bytes: 100}, {Key: key(2), Bytes: 50}}
	c.Collect(0, ests)
	c.Collect(1, ests[:1])
	if c.WireBytes != 3*RecordBytes {
		t.Errorf("WireBytes = %d, want %d", c.WireBytes, 3*RecordBytes)
	}
	if len(c.Records) != 3 || c.Records[2].Interval != 1 {
		t.Errorf("Records = %v", c.Records)
	}
	// Volume-only mode.
	c2 := &Collector{}
	c2.Collect(0, ests)
	if c2.WireBytes != 2*RecordBytes || c2.Records != nil {
		t.Error("volume-only collector misbehaved")
	}
}

func BenchmarkProcess(b *testing.B) {
	nf, err := New(Config{SamplingRate: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nf.Process(key(uint64(i%10000)), 1000)
	}
}
