package netflow

import (
	"testing"
	"time"
)

// FuzzDecodeV5 hardens the collector's parser against hostile input: a
// collection station is an open UDP port, so DecodeV5 must never panic and
// never allocate unboundedly, whatever arrives. Runs its seed corpus as a
// regular test; use `go test -fuzz FuzzDecodeV5 ./internal/netflow` to
// explore.
func FuzzDecodeV5(f *testing.F) {
	// Seeds: a valid packet, a truncation, garbage, and a record-count lie.
	valid := EncodeV5(sampleRecords(3), time.Second, 42, 7)[0]
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("garbage"))
	lie := append([]byte(nil), valid...)
	lie[2], lie[3] = 0xff, 0xff
	f.Add(lie)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := DecodeV5(data)
		if err != nil {
			return
		}
		// Decoded packets must be internally consistent.
		if len(pkt.Records) > V5MaxRecords {
			t.Fatalf("decoded %d records", len(pkt.Records))
		}
		// A successfully decoded packet must re-encode to a packet that
		// decodes to the same records.
		enc := EncodeV5(pkt.Records, pkt.SysUptime, pkt.UnixSecs, pkt.FlowSequence)
		if len(pkt.Records) == 0 {
			if len(enc) != 0 {
				t.Fatal("empty record set produced packets")
			}
			return
		}
		back, err := DecodeV5(enc[0])
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if len(back.Records) != len(pkt.Records) {
			t.Fatalf("re-encode changed record count")
		}
		for i := range back.Records {
			if back.Records[i] != pkt.Records[i] {
				t.Fatalf("record %d changed across re-encode", i)
			}
		}
	})
}
