package netflow

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
)

func sampleRecords(n int) []V5Record {
	rng := rand.New(rand.NewSource(int64(n)))
	out := make([]V5Record, n)
	for i := range out {
		out[i] = V5Record{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			Packets: rng.Uint32(), Bytes: rng.Uint32(),
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
			Proto: uint8(rng.Uint32()), SrcAS: uint16(rng.Uint32()), DstAS: uint16(rng.Uint32()),
		}
	}
	return out
}

func TestV5RoundTrip(t *testing.T) {
	records := sampleRecords(7)
	pkts := EncodeV5(records, 90*time.Second, 1234567890, 42)
	if len(pkts) != 1 {
		t.Fatalf("packets = %d", len(pkts))
	}
	dec, err := DecodeV5(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec.SysUptime != 90*time.Second || dec.UnixSecs != 1234567890 || dec.FlowSequence != 42 {
		t.Errorf("header = %+v", dec)
	}
	if len(dec.Records) != len(records) {
		t.Fatalf("records = %d", len(dec.Records))
	}
	for i := range records {
		if dec.Records[i] != records[i] {
			t.Errorf("record %d: got %+v want %+v", i, dec.Records[i], records[i])
		}
	}
}

func TestV5Batching(t *testing.T) {
	// 65 records must split into 30 + 30 + 5 with advancing sequence.
	records := sampleRecords(65)
	pkts := EncodeV5(records, time.Second, 1, 100)
	if len(pkts) != 3 {
		t.Fatalf("packets = %d, want 3", len(pkts))
	}
	wantSeq := []uint32{100, 130, 160}
	wantCount := []int{30, 30, 5}
	var all []V5Record
	for i, p := range pkts {
		dec, err := DecodeV5(p)
		if err != nil {
			t.Fatal(err)
		}
		if dec.FlowSequence != wantSeq[i] || len(dec.Records) != wantCount[i] {
			t.Errorf("packet %d: seq %d count %d, want %d/%d",
				i, dec.FlowSequence, len(dec.Records), wantSeq[i], wantCount[i])
		}
		all = append(all, dec.Records...)
	}
	for i := range records {
		if all[i] != records[i] {
			t.Fatalf("record %d corrupted across batching", i)
		}
	}
}

func TestV5RoundTripProperty(t *testing.T) {
	f := func(srcIP, dstIP, pkts, bytes uint32, sport, dport, srcAS, dstAS uint16, proto uint8) bool {
		r := V5Record{srcIP, dstIP, pkts, bytes, sport, dport, proto, srcAS, dstAS}
		enc := EncodeV5([]V5Record{r}, 0, 0, 0)
		dec, err := DecodeV5(enc[0])
		return err == nil && len(dec.Records) == 1 && dec.Records[0] == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeV5Errors(t *testing.T) {
	if _, err := DecodeV5(nil); err == nil {
		t.Error("nil packet accepted")
	}
	pkts := EncodeV5(sampleRecords(2), 0, 0, 0)
	data := pkts[0]
	// Wrong version.
	bad := append([]byte(nil), data...)
	bad[1] = 9
	if _, err := DecodeV5(bad); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated records.
	if _, err := DecodeV5(data[:len(data)-1]); err == nil {
		t.Error("truncated packet accepted")
	}
	// Implausible record count.
	bad = append([]byte(nil), data...)
	bad[2], bad[3] = 0xff, 0xff
	if _, err := DecodeV5(bad); err == nil {
		t.Error("huge record count accepted")
	}
}

func TestRecordsFromEstimates(t *testing.T) {
	p := &flow.Packet{SrcIP: 0x0a000001, DstIP: 0x0b000002, SrcPort: 1234, DstPort: 80, Proto: 6, SrcAS: 7, DstAS: 9}
	cases := []struct {
		def  flow.Definition
		want V5Record
	}{
		{flow.FiveTuple{}, V5Record{SrcIP: 0x0a000001, DstIP: 0x0b000002, Bytes: 5000, SrcPort: 1234, DstPort: 80, Proto: 6}},
		{flow.DstIP{}, V5Record{DstIP: 0x0b000002, Bytes: 5000}},
		{flow.ASPair{}, V5Record{Bytes: 5000, SrcAS: 7, DstAS: 9}},
	}
	for _, c := range cases {
		ests := []core.Estimate{{Key: c.def.Key(p), Bytes: 5000}}
		recs := RecordsFromEstimates(c.def, ests)
		if len(recs) != 1 || recs[0] != c.want {
			t.Errorf("%s: got %+v want %+v", c.def.Name(), recs[0], c.want)
		}
	}
}

func TestRecordsFromEstimatesClampsBytes(t *testing.T) {
	ests := []core.Estimate{{Key: flow.Key{Lo: 1}, Bytes: 1 << 40}}
	recs := RecordsFromEstimates(flow.DstIP{}, ests)
	if recs[0].Bytes != 0xffffffff {
		t.Errorf("Bytes = %d, want clamp to max uint32", recs[0].Bytes)
	}
}

func TestExporterSequencesAndVolume(t *testing.T) {
	ex := NewExporter(flow.DstIP{})
	ests := make([]core.Estimate, 35)
	for i := range ests {
		ests[i] = core.Estimate{Key: flow.Key{Lo: uint64(i)}, Bytes: 100}
	}
	pkts1 := ex.Export(ests, time.Second)
	pkts2 := ex.Export(ests[:3], 2*time.Second)
	if len(pkts1) != 2 || len(pkts2) != 1 {
		t.Fatalf("packets = %d, %d", len(pkts1), len(pkts2))
	}
	dec, err := DecodeV5(pkts2[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec.FlowSequence != 35 {
		t.Errorf("sequence = %d, want 35", dec.FlowSequence)
	}
	if ex.PacketsSent != 3 {
		t.Errorf("PacketsSent = %d", ex.PacketsSent)
	}
	wantBytes := uint64(v5HeaderBytes*3 + 38*v5RecordBytes)
	if ex.BytesSent != wantBytes {
		t.Errorf("BytesSent = %d, want %d", ex.BytesSent, wantBytes)
	}
}
