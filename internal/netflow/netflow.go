// Package netflow implements the Sampled NetFlow baseline the paper
// compares against (Sections 2 and 5). NetFlow keeps per-flow state in
// large, slow DRAM and samples every x-th packet to bound the DRAM update
// rate; estimates are the sampled counts scaled back up by x.
//
// The model follows the paper's: count-based sampling (every x-th packet,
// which introduces the packet-size bias the paper notes), per-flow entries
// of 64 bytes in DRAM, no entry preservation, and per-interval export of
// one record per entry to a collection station — whose volume the Collector
// accounts, since collection overhead is one of NetFlow's problems the
// paper's algorithms avoid.
package netflow

import (
	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/memmodel"
	"repro/internal/telemetry"
)

// Config configures the Sampled NetFlow model.
type Config struct {
	// SamplingRate x samples every x-th packet. x = 1 is unsampled
	// NetFlow; the paper's device comparison uses x = 16, and Section 5.2
	// argues x can never be below the DRAM/SRAM speed ratio at high line
	// rates.
	SamplingRate int
	// MaxEntries bounds the DRAM flow table; 0 means unlimited (the
	// paper's device comparison gives NetFlow unlimited memory).
	MaxEntries int
	// Phase is the index of the first sampled packet in each cycle,
	// in [0, SamplingRate); it only shifts which packets are picked.
	Phase int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SamplingRate < 1 {
		return cfgerr.New("netflow", "SamplingRate", "must be at least 1, got %d", c.SamplingRate)
	}
	if c.MaxEntries < 0 {
		return cfgerr.New("netflow", "MaxEntries", "must not be negative, got %d", c.MaxEntries)
	}
	if c.Phase < 0 || c.Phase >= c.SamplingRate {
		return cfgerr.New("netflow", "Phase", "%d outside [0, %d)", c.Phase, c.SamplingRate)
	}
	return nil
}

type entry struct {
	bytes   uint64
	packets uint64
}

// NetFlow implements core.Algorithm.
type NetFlow struct {
	cfg     Config
	entries map[flow.Key]*entry
	counter int
	cost    memmodel.Counter
	tel     telemetry.Algorithm
	// threshold is carried only to satisfy the Algorithm interface;
	// NetFlow itself has no notion of a large-flow threshold.
	threshold uint64
}

// New creates a Sampled NetFlow instance.
func New(cfg Config) (*NetFlow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &NetFlow{
		cfg:       cfg,
		entries:   make(map[flow.Key]*entry),
		counter:   cfg.Phase,
		threshold: 1,
	}
	n.tel.Init(n.Name(), cfg.MaxEntries, n.threshold)
	return n, nil
}

// Name implements core.Algorithm.
func (n *NetFlow) Name() string { return "sampled-netflow" }

// Process implements core.Algorithm: every x-th packet updates (or creates)
// the flow's DRAM entry; the rest cost nothing, which is exactly why
// NetFlow can afford DRAM.
func (n *NetFlow) Process(key flow.Key, size uint32) {
	n.cost.Packet()
	n.counter++
	if n.counter >= n.cfg.SamplingRate {
		n.counter = 0
		n.sample(key, size)
	}
	n.tel.Observe(1, uint64(size), n.cost, len(n.entries))
}

func (n *NetFlow) sample(key flow.Key, size uint32) {
	e := n.entries[key]
	if e == nil {
		if n.cfg.MaxEntries > 0 && len(n.entries) >= n.cfg.MaxEntries {
			n.cost.DRAM(1, 0) // failed lookup still costs a read
			n.tel.Drop()
			return
		}
		e = &entry{}
		n.entries[key] = e
		n.tel.FilterPass()
	}
	e.bytes += uint64(size)
	e.packets++
	n.cost.DRAM(1, 1)
}

// EndInterval implements core.Algorithm: estimates are the sampled byte
// counts scaled by the sampling rate. Scaling means the estimate is not a
// lower bound on the flow's traffic — the overcharging problem the paper
// raises for billing.
func (n *NetFlow) EndInterval() []core.Estimate {
	out := make([]core.Estimate, 0, len(n.entries))
	for k, e := range n.entries {
		out = append(out, core.Estimate{
			Key:   k,
			Bytes: e.bytes * uint64(n.cfg.SamplingRate),
		})
	}
	sortEstimates(out)
	evicted := len(n.entries)
	n.entries = make(map[flow.Key]*entry)
	n.tel.ObserveInterval(n.threshold, 0, evicted)
	return out
}

func sortEstimates(es []core.Estimate) {
	// Insertion of a sort keeps reports deterministic; reuse the flowmem
	// ordering convention (bytes desc, then key desc).
	lessKey := func(a, b core.Estimate) bool {
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		if a.Key.Hi != b.Key.Hi {
			return a.Key.Hi > b.Key.Hi
		}
		return a.Key.Lo > b.Key.Lo
	}
	// Standard library sort; split out for reuse by Records.
	sortSlice(es, lessKey)
}

// EntriesUsed implements core.Algorithm.
func (n *NetFlow) EntriesUsed() int { return len(n.entries) }

// Capacity implements core.Algorithm; unlimited DRAM reports the current
// usage so adaptation (never used with NetFlow) stays inert.
func (n *NetFlow) Capacity() int {
	if n.cfg.MaxEntries > 0 {
		return n.cfg.MaxEntries
	}
	return len(n.entries) + 1
}

// Threshold implements core.Algorithm.
func (n *NetFlow) Threshold() uint64 { return n.threshold }

// SetThreshold implements core.Algorithm; NetFlow ignores thresholds but
// remembers the value for symmetry.
func (n *NetFlow) SetThreshold(t uint64) {
	if t < 1 {
		t = 1
	}
	n.threshold = t
	n.tel.SetThreshold(t)
}

// Mem implements core.Algorithm.
func (n *NetFlow) Mem() *memmodel.Counter { return &n.cost }

// Telemetry implements core.Instrumented.
func (n *NetFlow) Telemetry() *telemetry.Algorithm { return &n.tel }

// SampledPackets returns the number of packets sampled so far in the
// current interval's entries (for tests).
func (n *NetFlow) SampledPackets() uint64 {
	var total uint64
	for _, e := range n.entries {
		total += e.packets
	}
	return total
}
