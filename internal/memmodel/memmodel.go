// Package memmodel accounts for the memory technology constraints that
// motivate the paper. Per-flow counters in DRAM cannot keep up with line
// rate, so the paper's algorithms use small SRAM; comparing measurement
// devices fairly requires counting memory references per packet and pricing
// memory in the units of Section 7.2 (a flow-memory entry is worth ten
// filter counters; the device budget is expressed in bits).
package memmodel

import "fmt"

// Technology-speed constants from Section 5.2 of the paper.
const (
	// SRAMAccessNs is the paper's SRAM access time ("currently around 5 ns").
	SRAMAccessNs = 5
	// DRAMAccessNs is the paper's DRAM access time ("currently around 60 ns").
	DRAMAccessNs = 60
)

// Sizing constants from Section 7.2 of the paper.
const (
	// EntryBytes is the assumed size of a flow memory entry (the paper
	// conservatively assumes 32 bytes even though 16 or 24 are plausible).
	EntryBytes = 32
	// CounterBytes is the assumed size of a filter stage counter (the paper
	// conservatively assumes 4 bytes even though 3 would be enough).
	CounterBytes = 4
	// NetFlowEntryBytes is the size of a Cisco NetFlow DRAM entry.
	NetFlowEntryBytes = 64
	// CountersPerEntry is the paper's Section 5.1 convention that one flow
	// memory entry costs as much as ten stage counters.
	CountersPerEntry = EntryBytes / CounterBytes * 1.25 // 10
)

// EntriesForBits returns how many flow-memory entries fit in a memory of the
// given size in bits (the paper's Section 7.2 uses 1 Mbit = 4096 entries of
// 32 bytes).
func EntriesForBits(bits uint64) int {
	return int(bits / 8 / EntryBytes)
}

// CountersForBits returns how many stage counters fit in a memory of the
// given size in bits.
func CountersForBits(bits uint64) int {
	return int(bits / 8 / CounterBytes)
}

// Budget splits a total SRAM budget (in bits) between filter stage counters
// and flow-memory entries.
type Budget struct {
	Bits uint64
}

// Split returns the number of flow-memory entries left after reserving
// counters stage counters. It returns an error when the counters alone
// exceed the budget.
func (b Budget) Split(counters int) (entries int, err error) {
	counterBits := uint64(counters) * CounterBytes * 8
	if counterBits > b.Bits {
		return 0, fmt.Errorf("memmodel: %d counters need %d bits, budget is %d",
			counters, counterBits, b.Bits)
	}
	return EntriesForBits(b.Bits - counterBits), nil
}

// Counter tallies memory references made by an algorithm, split by
// technology. All the paper's per-packet cost comparisons (Table 1 row 2,
// Table 2 row 4) reduce to these counts.
type Counter struct {
	SRAMReads, SRAMWrites uint64
	DRAMReads, DRAMWrites uint64
	Packets               uint64
}

// SRAM records r reads and w writes to SRAM.
func (c *Counter) SRAM(r, w uint64) {
	c.SRAMReads += r
	c.SRAMWrites += w
}

// DRAM records r reads and w writes to DRAM.
func (c *Counter) DRAM(r, w uint64) {
	c.DRAMReads += r
	c.DRAMWrites += w
}

// Packet records that one packet was processed (whether or not it touched
// memory), establishing the denominator for the per-packet averages.
func (c *Counter) Packet() { c.Packets++ }

// Accesses returns the total number of memory references of either
// technology.
func (c *Counter) Accesses() uint64 {
	return c.SRAMReads + c.SRAMWrites + c.DRAMReads + c.DRAMWrites
}

// PerPacket returns the average number of memory references per packet
// processed; it returns 0 before any packet is recorded.
func (c *Counter) PerPacket() float64 {
	if c.Packets == 0 {
		return 0
	}
	return float64(c.Accesses()) / float64(c.Packets)
}

// TimeNs returns the total memory time in nanoseconds assuming serial,
// unpipelined accesses at the paper's SRAM/DRAM speeds. It is an upper
// bound: the paper notes accesses can be pipelined or parallelized.
func (c *Counter) TimeNs() uint64 {
	return (c.SRAMReads+c.SRAMWrites)*SRAMAccessNs + (c.DRAMReads+c.DRAMWrites)*DRAMAccessNs
}

// Add accumulates another counter into c.
func (c *Counter) Add(o Counter) {
	c.SRAMReads += o.SRAMReads
	c.SRAMWrites += o.SRAMWrites
	c.DRAMReads += o.DRAMReads
	c.DRAMWrites += o.DRAMWrites
	c.Packets += o.Packets
}

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// String summarizes the counter for reports.
func (c *Counter) String() string {
	return fmt.Sprintf("sram %d/%d dram %d/%d (%.2f refs/pkt)",
		c.SRAMReads, c.SRAMWrites, c.DRAMReads, c.DRAMWrites, c.PerPacket())
}

// MaxDRAMUpdatesPerInterval returns the paper's bound on the number of DRAM
// flow-record updates Sampled NetFlow can perform in an interval of t
// seconds (Table 2 uses min(n, 486000*t): one update per 2 DRAM accesses of
// ~60 ns each leaves ~8.3M updates/s; the paper's published constant folds
// in NetFlow record processing overheads).
func MaxDRAMUpdatesPerInterval(tSeconds float64) uint64 {
	return uint64(486000 * tSeconds)
}

// MinNetFlowSamplingRate is the lower bound on Sampled NetFlow's sampling
// factor x imposed by technology: x must be at least the ratio of DRAM to
// SRAM access time, or the DRAM cannot keep up with worst-case packet
// arrivals (Section 5.2). At the paper's 60 ns / 5 ns this is 12.
func MinNetFlowSamplingRate() int {
	return DRAMAccessNs / SRAMAccessNs
}
