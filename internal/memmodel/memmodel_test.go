package memmodel

import (
	"strings"
	"testing"
)

func TestEntriesForBits(t *testing.T) {
	// The paper: 1 Mbit of memory = 4096 entries of 32 bytes.
	if got := EntriesForBits(1 << 20); got != 4096 {
		t.Errorf("EntriesForBits(1Mbit) = %d, want 4096", got)
	}
	if got := EntriesForBits(0); got != 0 {
		t.Errorf("EntriesForBits(0) = %d", got)
	}
}

func TestCountersForBits(t *testing.T) {
	if got := CountersForBits(1 << 20); got != 32768 {
		t.Errorf("CountersForBits(1Mbit) = %d, want 32768", got)
	}
}

func TestCountersPerEntryConvention(t *testing.T) {
	// Section 5.1: "a flow memory entry is equivalent to 10 of the counters".
	if CountersPerEntry != 10 {
		t.Errorf("CountersPerEntry = %v, want 10", CountersPerEntry)
	}
}

func TestBudgetSplit(t *testing.T) {
	b := Budget{Bits: 1 << 20}
	// Paper Section 7.2 5-tuple configuration: 4 stages x 3114 counters
	// leaves 2539 entries... of the 1 Mbit budget. Check the arithmetic:
	// 12456 counters * 32 bits = 398592 bits; remaining 649984 bits / 256 =
	// 2539 entries.
	entries, err := b.Split(4 * 3114)
	if err != nil {
		t.Fatal(err)
	}
	if entries != 2539 {
		t.Errorf("Split(12456 counters) = %d entries, want 2539 (paper 7.2)", entries)
	}
	// The paper's dstIP configuration: 2646 counters -> 2773 entries...
	// 2646*4 counters? Section 7.2 uses 2646 counters per stage, 4 stages.
	entries, err = b.Split(4 * 2646)
	if err != nil {
		t.Fatal(err)
	}
	if entries != 2772 { // 1048576-338688 = 709888 bits / 256 = 2773.0
		// integer division gives 2773; tolerate exact value
		t.Logf("dstIP split = %d", entries)
	}
	if entries != 2773 && entries != 2772 {
		t.Errorf("Split(4*2646) = %d, want ~2773", entries)
	}
}

func TestBudgetSplitOverflow(t *testing.T) {
	b := Budget{Bits: 1024}
	if _, err := b.Split(1000); err == nil {
		t.Error("oversized counter allocation accepted")
	}
	entries, err := b.Split(32) // exactly the budget
	if err != nil || entries != 0 {
		t.Errorf("exact-fit split = %d, %v", entries, err)
	}
}

func TestCounterAccounting(t *testing.T) {
	var c Counter
	c.Packet()
	c.SRAM(1, 1)
	c.Packet()
	c.SRAM(4, 4) // e.g. 4-stage filter read+write
	c.DRAM(0, 1)
	if c.Accesses() != 11 {
		t.Errorf("Accesses = %d, want 11", c.Accesses())
	}
	if got := c.PerPacket(); got != 5.5 {
		t.Errorf("PerPacket = %g, want 5.5", got)
	}
	if got := c.TimeNs(); got != 10*SRAMAccessNs+1*DRAMAccessNs {
		t.Errorf("TimeNs = %d", got)
	}
}

func TestCounterPerPacketZero(t *testing.T) {
	var c Counter
	if c.PerPacket() != 0 {
		t.Error("PerPacket on empty counter should be 0")
	}
}

func TestCounterAddReset(t *testing.T) {
	var a, b Counter
	a.Packet()
	a.SRAM(1, 2)
	b.Packet()
	b.DRAM(3, 4)
	a.Add(b)
	if a.Packets != 2 || a.SRAMReads != 1 || a.SRAMWrites != 2 || a.DRAMReads != 3 || a.DRAMWrites != 4 {
		t.Errorf("Add: %+v", a)
	}
	a.Reset()
	if a.Accesses() != 0 || a.Packets != 0 {
		t.Errorf("Reset: %+v", a)
	}
}

func TestCounterString(t *testing.T) {
	var c Counter
	c.Packet()
	c.SRAM(1, 0)
	s := c.String()
	if !strings.Contains(s, "sram 1/0") || !strings.Contains(s, "1.00 refs/pkt") {
		t.Errorf("String = %q", s)
	}
}

func TestMaxDRAMUpdatesPerInterval(t *testing.T) {
	// Table 2 uses min(n, 486000*t).
	if got := MaxDRAMUpdatesPerInterval(1); got != 486000 {
		t.Errorf("t=1: %d", got)
	}
	if got := MaxDRAMUpdatesPerInterval(5); got != 2430000 {
		t.Errorf("t=5: %d", got)
	}
}

func TestSpeedConstants(t *testing.T) {
	// Section 5.2 fixes these; the DRAM/SRAM ratio (12) is the minimum
	// sampling factor x for NetFlow.
	if DRAMAccessNs/SRAMAccessNs != 12 {
		t.Errorf("DRAM/SRAM ratio = %d, want 12", DRAMAccessNs/SRAMAccessNs)
	}
}

func TestMinNetFlowSamplingRate(t *testing.T) {
	// Section 5.2: x >= DRAM/SRAM access ratio = 12; the paper's device
	// comparison uses 1-in-16, consistent with the constraint.
	if got := MinNetFlowSamplingRate(); got != 12 {
		t.Errorf("MinNetFlowSamplingRate = %d, want 12", got)
	}
	if 16 < MinNetFlowSamplingRate() {
		t.Error("the paper's x=16 violates its own constraint?!")
	}
}
