// Package sketch implements the two modern heavy-hitter data structures
// that descended from this paper's line of work — the Count-Min sketch
// (Cormode & Muthukrishnan) and Space-Saving (Metwally et al.) — as
// additional baselines. Both implement core.Algorithm, so they plug into
// the same devices, experiments and benchmarks as the paper's algorithms.
//
// The contrasts they expose are instructive:
//
//   - Count-Min is the multistage filter's counter array used directly as
//     the estimator (no exact per-flow "hold" phase); estimates are upper
//     bounds, so they can overcharge in a billing application.
//   - Space-Saving keeps a bounded table of (flow, count, error) entries
//     with least-count eviction — the "evict the smallest" strategy the
//     paper rejects in Section 3 can be made to work by inflating the
//     newcomer's count, again at the price of overestimates.
//   - The paper's algorithms instead report provable lower bounds and
//     measure long-lived large flows exactly.
package sketch

import (
	"sort"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hashing"
	"repro/internal/memmodel"
)

// CountMinConfig configures a Count-Min sketch heavy hitter tracker.
type CountMinConfig struct {
	// Rows is the number of hash rows (depth d).
	Rows int
	// Columns is the width w of each row.
	Columns int
	// Entries bounds the candidate heavy-hitter table.
	Entries int
	// Threshold is the byte count at which a flow becomes a candidate.
	Threshold uint64
	// Conservative enables conservative update — the optimization this
	// paper introduced, later adopted by the sketch literature.
	Conservative bool
	// Seed seeds the hash functions.
	Seed int64
}

// Validate checks the configuration.
func (c CountMinConfig) Validate() error {
	if c.Rows < 1 {
		return cfgerr.New("sketch", "Rows", "must be at least 1, got %d", c.Rows)
	}
	if c.Columns < 1 {
		return cfgerr.New("sketch", "Columns", "must be at least 1, got %d", c.Columns)
	}
	if c.Entries < 1 {
		return cfgerr.New("sketch", "Entries", "must be at least 1, got %d", c.Entries)
	}
	if c.Threshold < 1 {
		return cfgerr.New("sketch", "Threshold", "must be at least 1, got %d", c.Threshold)
	}
	return nil
}

// CountMin implements core.Algorithm using a Count-Min sketch plus a
// bounded candidate table holding the current sketch estimate for each flow
// that ever exceeded the threshold.
type CountMin struct {
	cfg        CountMinConfig
	rows       [][]uint64
	hashes     []hashing.Func
	candidates map[flow.Key]uint64
	cost       memmodel.Counter
	idx        []uint32
}

// NewCountMin creates a Count-Min tracker.
func NewCountMin(cfg CountMinConfig) (*CountMin, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cm := &CountMin{
		cfg:        cfg,
		rows:       make([][]uint64, cfg.Rows),
		hashes:     make([]hashing.Func, cfg.Rows),
		candidates: make(map[flow.Key]uint64, cfg.Entries),
		idx:        make([]uint32, cfg.Rows),
	}
	family := hashing.NewTabulation(cfg.Seed)
	for i := range cm.rows {
		cm.rows[i] = make([]uint64, cfg.Columns)
		cm.hashes[i] = family.New(uint32(cfg.Columns))
	}
	return cm, nil
}

// Name implements core.Algorithm.
func (cm *CountMin) Name() string { return "count-min" }

// Estimate returns the sketch's current estimate for a flow: the minimum
// over its row counters, an upper bound on the true count.
func (cm *CountMin) Estimate(key flow.Key) uint64 {
	min := uint64(1<<63 - 1)
	for i, h := range cm.hashes {
		if c := cm.rows[i][h.Bucket(key)]; c < min {
			min = c
		}
	}
	return min
}

// Process implements core.Algorithm.
func (cm *CountMin) Process(key flow.Key, size uint32) {
	cm.cost.Packet()
	min := uint64(1<<63 - 1)
	for i, h := range cm.hashes {
		cm.idx[i] = h.Bucket(key)
		cm.cost.SRAM(1, 0)
		if c := cm.rows[i][cm.idx[i]]; c < min {
			min = c
		}
	}
	est := min + uint64(size)
	if cm.cfg.Conservative {
		for i := range cm.rows {
			if cm.rows[i][cm.idx[i]] < est {
				cm.rows[i][cm.idx[i]] = est
				cm.cost.SRAM(0, 1)
			}
		}
	} else {
		for i := range cm.rows {
			cm.rows[i][cm.idx[i]] += uint64(size)
			cm.cost.SRAM(0, 1)
		}
		// The post-update estimate for the reporting decision.
		est = cm.Estimate(key)
	}
	if est >= cm.cfg.Threshold {
		if _, tracked := cm.candidates[key]; tracked || len(cm.candidates) < cm.cfg.Entries {
			cm.candidates[key] = est
			cm.cost.SRAM(0, 1)
		}
	}
}

// EndInterval implements core.Algorithm.
func (cm *CountMin) EndInterval() []core.Estimate {
	out := make([]core.Estimate, 0, len(cm.candidates))
	for k, est := range cm.candidates {
		out = append(out, core.Estimate{Key: k, Bytes: est})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Key.Hi != out[j].Key.Hi {
			return out[i].Key.Hi > out[j].Key.Hi
		}
		return out[i].Key.Lo > out[j].Key.Lo
	})
	for i := range cm.rows {
		clear(cm.rows[i])
	}
	cm.candidates = make(map[flow.Key]uint64, cm.cfg.Entries)
	return out
}

// EntriesUsed implements core.Algorithm.
func (cm *CountMin) EntriesUsed() int { return len(cm.candidates) }

// Capacity implements core.Algorithm.
func (cm *CountMin) Capacity() int { return cm.cfg.Entries }

// Threshold implements core.Algorithm.
func (cm *CountMin) Threshold() uint64 { return cm.cfg.Threshold }

// SetThreshold implements core.Algorithm.
func (cm *CountMin) SetThreshold(t uint64) {
	if t < 1 {
		t = 1
	}
	cm.cfg.Threshold = t
}

// Mem implements core.Algorithm.
func (cm *CountMin) Mem() *memmodel.Counter { return &cm.cost }
