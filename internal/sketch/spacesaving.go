package sketch

import (
	"container/heap"
	"sort"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/memmodel"
)

// SpaceSavingConfig configures a Space-Saving tracker.
type SpaceSavingConfig struct {
	// Entries is the number of monitored flows K. Space-Saving guarantees
	// that any flow with more than total/K bytes is tracked, and every
	// count overestimates the truth by at most total/K.
	Entries int
}

// Validate checks the configuration.
func (c SpaceSavingConfig) Validate() error {
	if c.Entries < 1 {
		return cfgerr.New("sketch", "Entries", "must be at least 1, got %d", c.Entries)
	}
	return nil
}

// SpaceSaving implements core.Algorithm with the stream-summary structure:
// a bounded set of (flow, count, error) entries where an untracked flow
// evicts the minimum-count entry and inherits its count — the inflation
// that turns "evict the smallest" (which the paper shows can starve large
// flows) into an algorithm with guarantees, at the cost of overestimation.
type SpaceSaving struct {
	cfg       SpaceSavingConfig
	entries   map[flow.Key]*ssEntry
	order     ssHeap
	cost      memmodel.Counter
	threshold uint64
	total     uint64
}

type ssEntry struct {
	key   flow.Key
	count uint64
	err   uint64 // count inherited at takeover: count - err <= true <= count
	pos   int
}

type ssHeap []*ssEntry

func (h ssHeap) Len() int           { return len(h) }
func (h ssHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *ssHeap) Push(x interface{}) {
	e := x.(*ssEntry)
	e.pos = len(*h)
	*h = append(*h, e)
}
func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewSpaceSaving creates a Space-Saving tracker.
func NewSpaceSaving(cfg SpaceSavingConfig) (*SpaceSaving, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SpaceSaving{
		cfg:       cfg,
		entries:   make(map[flow.Key]*ssEntry, cfg.Entries),
		threshold: 1,
	}, nil
}

// Name implements core.Algorithm.
func (s *SpaceSaving) Name() string { return "space-saving" }

// Process implements core.Algorithm.
func (s *SpaceSaving) Process(key flow.Key, size uint32) {
	s.cost.Packet()
	s.cost.SRAM(1, 1)
	s.total += uint64(size)
	if e, ok := s.entries[key]; ok {
		e.count += uint64(size)
		heap.Fix(&s.order, e.pos)
		return
	}
	if len(s.entries) < s.cfg.Entries {
		e := &ssEntry{key: key, count: uint64(size)}
		s.entries[key] = e
		heap.Push(&s.order, e)
		return
	}
	// Evict the minimum: the newcomer inherits its count as error.
	min := s.order[0]
	delete(s.entries, min.key)
	min.err = min.count
	min.count += uint64(size)
	min.key = key
	s.entries[key] = min
	heap.Fix(&s.order, 0)
}

// GuaranteedBytes returns the provable minimum traffic of a tracked flow:
// count - error (0 for untracked flows).
func (s *SpaceSaving) GuaranteedBytes(key flow.Key) uint64 {
	if e, ok := s.entries[key]; ok {
		return e.count - e.err
	}
	return 0
}

// EndInterval implements core.Algorithm: it reports every tracked flow
// whose count reaches the threshold, then resets.
func (s *SpaceSaving) EndInterval() []core.Estimate {
	out := make([]core.Estimate, 0, len(s.entries))
	for k, e := range s.entries {
		if e.count < s.threshold {
			continue
		}
		out = append(out, core.Estimate{Key: k, Bytes: e.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Key.Hi != out[j].Key.Hi {
			return out[i].Key.Hi > out[j].Key.Hi
		}
		return out[i].Key.Lo > out[j].Key.Lo
	})
	s.entries = make(map[flow.Key]*ssEntry, s.cfg.Entries)
	s.order = nil
	s.total = 0
	return out
}

// MaxOverestimate returns the structure's error bound: total bytes seen
// this interval divided by the entry count.
func (s *SpaceSaving) MaxOverestimate() uint64 {
	return s.total / uint64(s.cfg.Entries)
}

// EntriesUsed implements core.Algorithm.
func (s *SpaceSaving) EntriesUsed() int { return len(s.entries) }

// Capacity implements core.Algorithm.
func (s *SpaceSaving) Capacity() int { return s.cfg.Entries }

// Threshold implements core.Algorithm.
func (s *SpaceSaving) Threshold() uint64 { return s.threshold }

// SetThreshold implements core.Algorithm.
func (s *SpaceSaving) SetThreshold(t uint64) {
	if t < 1 {
		t = 1
	}
	s.threshold = t
}

// Mem implements core.Algorithm.
func (s *SpaceSaving) Mem() *memmodel.Counter { return &s.cost }
