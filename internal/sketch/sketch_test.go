package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestCountMinConfigValidate(t *testing.T) {
	good := CountMinConfig{Rows: 4, Columns: 256, Entries: 64, Threshold: 1000}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []CountMinConfig{
		{Rows: 0, Columns: 1, Entries: 1, Threshold: 1},
		{Rows: 1, Columns: 0, Entries: 1, Threshold: 1},
		{Rows: 1, Columns: 1, Entries: 0, Threshold: 1},
		{Rows: 1, Columns: 1, Entries: 1, Threshold: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestCountMinNeverUnderestimates: the defining Count-Min property, for
// both update rules.
func TestCountMinNeverUnderestimates(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		cm, err := NewCountMin(CountMinConfig{
			Rows: 3, Columns: 64, Entries: 1000, Threshold: 1 << 40,
			Conservative: conservative, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		truth := map[flow.Key]uint64{}
		for i := 0; i < 20000; i++ {
			k := key(uint64(rng.Intn(500)))
			size := uint32(rng.Intn(1460) + 40)
			truth[k] += uint64(size)
			cm.Process(k, size)
		}
		for k, tr := range truth {
			if est := cm.Estimate(k); est < tr {
				t.Fatalf("conservative=%v: estimate %d below truth %d", conservative, est, tr)
			}
		}
	}
}

// TestCountMinConservativeTighter: conservative update never yields larger
// estimates than the classic rule.
func TestCountMinConservativeTighter(t *testing.T) {
	mk := func(conservative bool) *CountMin {
		cm, err := NewCountMin(CountMinConfig{
			Rows: 3, Columns: 64, Entries: 1000, Threshold: 1 << 40,
			Conservative: conservative, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	classic, cons := mk(false), mk(true)
	rng := rand.New(rand.NewSource(3))
	keys := map[flow.Key]bool{}
	for i := 0; i < 20000; i++ {
		k := key(uint64(rng.Intn(400)))
		size := uint32(rng.Intn(1460) + 40)
		keys[k] = true
		classic.Process(k, size)
		cons.Process(k, size)
	}
	worse := 0
	for k := range keys {
		if cons.Estimate(k) > classic.Estimate(k) {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("conservative estimates larger for %d flows", worse)
	}
}

func TestCountMinFindsHeavyHitters(t *testing.T) {
	cm, err := NewCountMin(CountMinConfig{
		Rows: 4, Columns: 512, Entries: 64, Threshold: 50000,
		Conservative: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// 5 elephants, 500 mice.
	for i := 0; i < 50000; i++ {
		var k flow.Key
		if rng.Intn(2) == 0 {
			k = key(uint64(rng.Intn(5)))
		} else {
			k = key(100 + uint64(rng.Intn(500)))
		}
		cm.Process(k, 1000)
	}
	est := cm.EndInterval()
	found := map[flow.Key]bool{}
	for _, e := range est {
		found[e.Key] = true
	}
	for i := uint64(0); i < 5; i++ {
		if !found[key(i)] {
			t.Errorf("elephant %d missed", i)
		}
	}
	if cm.EntriesUsed() != 0 {
		t.Error("EndInterval did not reset candidates")
	}
	if e2 := cm.Estimate(key(0)); e2 != 0 {
		t.Errorf("counters not reset: %d", e2)
	}
}

func TestCountMinCandidateTableBounded(t *testing.T) {
	cm, err := NewCountMin(CountMinConfig{
		Rows: 2, Columns: 16, Entries: 4, Threshold: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		cm.Process(key(i), 100)
		if cm.EntriesUsed() > 4 {
			t.Fatal("candidate table exceeded capacity")
		}
	}
	if len(cm.EndInterval()) > 4 {
		t.Error("report exceeded capacity")
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s, err := NewSpaceSaving(SpaceSavingConfig{Entries: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		s.Process(key(i), uint32(100*(i+1)))
	}
	s.SetThreshold(1)
	est := s.EndInterval()
	if len(est) != 50 {
		t.Fatalf("reported %d flows, want 50", len(est))
	}
	for _, e := range est {
		if e.Bytes != 100*(e.Key.Lo+1) {
			t.Errorf("flow %d: %d bytes, want exact %d", e.Key.Lo, e.Bytes, 100*(e.Key.Lo+1))
		}
	}
}

// TestSpaceSavingOverestimateBound: counts never underestimate, and the
// overestimate is at most total/K.
func TestSpaceSavingOverestimateBound(t *testing.T) {
	const k = 32
	s, err := NewSpaceSaving(SpaceSavingConfig{Entries: k})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	truth := map[flow.Key]uint64{}
	var total uint64
	zipf := dist.NewZipf(300, 1.1)
	for i := 0; i < 30000; i++ {
		fk := key(uint64(zipf.Rank(rng)))
		size := uint32(rng.Intn(1460) + 40)
		truth[fk] += uint64(size)
		total += uint64(size)
		s.Process(fk, size)
	}
	bound := s.MaxOverestimate()
	if want := total / k; bound != want {
		t.Fatalf("MaxOverestimate = %d, want %d", bound, want)
	}
	s.SetThreshold(1)
	for _, e := range s.EndInterval() {
		tr := truth[e.Key]
		if e.Bytes < tr {
			t.Fatalf("space-saving underestimated: %d < %d", e.Bytes, tr)
		}
		if e.Bytes > tr+bound {
			t.Fatalf("overestimate %d exceeds bound %d", e.Bytes-tr, bound)
		}
	}
}

// TestSpaceSavingTracksAllMajorFlows: any flow with more than total/K bytes
// is guaranteed to be tracked at the end.
func TestSpaceSavingTracksAllMajorFlows(t *testing.T) {
	const k = 16
	s, err := NewSpaceSaving(SpaceSavingConfig{Entries: k})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	truth := map[flow.Key]uint64{}
	var total uint64
	zipf := dist.NewZipf(500, 1.2)
	for i := 0; i < 40000; i++ {
		fk := key(uint64(zipf.Rank(rng)))
		truth[fk] += 1000
		total += 1000
		s.Process(fk, 1000)
	}
	s.SetThreshold(1)
	tracked := map[flow.Key]bool{}
	for _, e := range s.EndInterval() {
		tracked[e.Key] = true
	}
	for fk, tr := range truth {
		if tr > total/k && !tracked[fk] {
			t.Errorf("flow with %d > total/K=%d bytes not tracked", tr, total/k)
		}
	}
}

func TestSpaceSavingGuaranteedBytes(t *testing.T) {
	s, err := NewSpaceSaving(SpaceSavingConfig{Entries: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Process(key(1), 100)
	if g := s.GuaranteedBytes(key(1)); g != 100 {
		t.Errorf("guaranteed = %d, want 100", g)
	}
	// key(2) takes over the single entry: count 100+50, error 100,
	// guaranteed only 50.
	s.Process(key(2), 50)
	if g := s.GuaranteedBytes(key(2)); g != 50 {
		t.Errorf("guaranteed after takeover = %d, want 50", g)
	}
	if g := s.GuaranteedBytes(key(1)); g != 0 {
		t.Errorf("evicted flow guaranteed = %d, want 0", g)
	}
}

func TestSpaceSavingQuickNeverUnderestimates(t *testing.T) {
	check := func(seed int64, entries uint8) bool {
		k := 1 + int(entries)%32
		s, err := NewSpaceSaving(SpaceSavingConfig{Entries: k})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		truth := map[flow.Key]uint64{}
		for i := 0; i < 3000; i++ {
			fk := key(uint64(rng.Intn(100)))
			size := uint32(rng.Intn(1000) + 40)
			truth[fk] += uint64(size)
			s.Process(fk, size)
		}
		s.SetThreshold(1)
		for _, e := range s.EndInterval() {
			if e.Bytes < truth[e.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSketchAlgorithmInterfaces(t *testing.T) {
	var _ core.Algorithm = (*CountMin)(nil)
	var _ core.Algorithm = (*SpaceSaving)(nil)
	cm, err := NewCountMin(CountMinConfig{Rows: 2, Columns: 8, Entries: 4, Threshold: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSpaceSaving(SpaceSavingConfig{Entries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Name() != "count-min" || ss.Name() != "space-saving" {
		t.Error("names wrong")
	}
	cm.SetThreshold(0)
	ss.SetThreshold(0)
	if cm.Threshold() != 1 || ss.Threshold() != 1 {
		t.Error("SetThreshold clamp")
	}
	if cm.Capacity() != 4 || ss.Capacity() != 4 {
		t.Error("capacities wrong")
	}
	if _, err := NewSpaceSaving(SpaceSavingConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func BenchmarkCountMinPerPacket(b *testing.B) {
	cm, err := NewCountMin(CountMinConfig{
		Rows: 4, Columns: 4096, Entries: 1024, Threshold: 1 << 30,
		Conservative: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.Process(key(uint64(i%50000)), 1000)
	}
}

func BenchmarkSpaceSavingPerPacket(b *testing.B) {
	s, err := NewSpaceSaving(SpaceSavingConfig{Entries: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Process(key(uint64(i%50000)), 1000)
	}
}
