// Package analytic implements the paper's analytical evaluation (Sections 4
// and 5) as executable formulas: the error and memory bounds for sample and
// hold, Lemma 1 / Theorem 2 / Theorem 3 for multistage filters, the
// Zipf-distribution refinements used in Table 4 and Figure 7, and the core-
// and device-comparison formulas of Tables 1 and 2.
//
// Having the bounds in code lets every experiment print theory next to
// measurement, the way the paper's tables and figures do.
package analytic

import (
	"math"
)

// NormalQuantile returns z such that a standard normal variable is below z
// with probability p (0 < p < 1). The paper uses the normal curve to turn
// expected memory usage into high-probability bounds (e.g. z = 2.33 for
// 99%, z = 3.08 for 99.9%).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("analytic: quantile probability must be in (0,1)")
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// ---- Sample and hold (Section 4.1) ----

// SHSamplingProb returns the byte sampling probability p = O/T for
// oversampling factor O and threshold T.
func SHSamplingProb(oversampling, threshold float64) float64 {
	p := oversampling / threshold
	if p > 1 {
		return 1
	}
	return p
}

// SHFalseNegProb is the probability that a flow at the threshold is missed:
// (1-p)^T ~ e^-O (Section 4.1.1).
func SHFalseNegProb(oversampling float64) float64 {
	return math.Exp(-oversampling)
}

// SHExpectedError is the expected number of bytes missed before the first
// sample, E[s-c] = 1/p.
func SHExpectedError(p float64) float64 { return 1 / p }

// SHErrorSD is the standard deviation of the undercount, sqrt(1-p)/p.
func SHErrorSD(p float64) float64 { return math.Sqrt(1-p) / p }

// SHRelErrorAtThreshold is the relative error of a flow of size T when
// using the uncorrected count c as the estimate:
// sqrt(E[(s-c)^2])/T = sqrt(2-p)/O (Section 4.1.1).
func SHRelErrorAtThreshold(oversampling, p float64) float64 {
	return math.Sqrt(2-p) / oversampling
}

// SHExpectedEntries is the expected number of flow memory entries used:
// p*C = O*C/T for a link sending C bytes per interval.
func SHExpectedEntries(c, threshold, oversampling float64) float64 {
	return SHSamplingProb(oversampling, threshold) * c
}

// SHEntriesBound is the high-probability bound on entries: the binomial
// sample count stays within z standard deviations sqrt(C*p*(1-p)) of its
// mean with probability prob (Section 4.1.2's normal-curve argument).
func SHEntriesBound(c, threshold, oversampling, prob float64) float64 {
	p := SHSamplingProb(oversampling, threshold)
	mean := p * c
	sd := math.Sqrt(c * p * (1 - p))
	return mean + NormalQuantile(prob)*sd
}

// SHPreserveEntriesBound bounds the entries needed when preserving entries
// across intervals: samples from two intervals must fit, 2*O*C/T plus z
// standard deviations of sqrt(2*C*p*(1-p)) (Section 4.1.3).
func SHPreserveEntriesBound(c, threshold, oversampling, prob float64) float64 {
	p := SHSamplingProb(oversampling, threshold)
	mean := 2 * p * c
	sd := math.Sqrt(2 * c * p * (1 - p))
	return mean + NormalQuantile(prob)*sd
}

// SHEarlyRemovalEntriesBound bounds the entries with an early removal
// threshold R: at most C/R flows can be preserved from the previous
// interval, plus this interval's samples (Section 4.1.4). R must satisfy
// R >= T/O for the quoted standard deviation to apply; the function does
// not check this.
func SHEarlyRemovalEntriesBound(c, threshold, oversampling, r, prob float64) float64 {
	p := SHSamplingProb(oversampling, threshold)
	mean := c/r + p*c
	sd := math.Sqrt(c * p * (1 - p))
	return mean + NormalQuantile(prob)*sd
}

// SHEarlyRemovalFalseNegProb is the probability of missing a flow at the
// threshold when entries removed early are not reported: one of the first
// T-R bytes must be sampled, so the miss probability is ~e^(-O*(T-R)/T)
// (Section 4.1.4).
func SHEarlyRemovalFalseNegProb(oversampling, rFraction float64) float64 {
	return math.Exp(-oversampling * (1 - rFraction))
}

// SHZipfEntriesBound is Table 4's "Zipf bound": the high-probability entry
// bound assuming the n flows' sizes follow a Zipf distribution with the
// given exponent over a link sending c bytes. Entry creation for flow i is
// Bernoulli with q_i = 1-(1-p)^s_i; the bound is the mean plus z standard
// deviations of the (independent) sum.
func SHZipfEntriesBound(c, threshold, oversampling float64, n int, alpha, prob float64) float64 {
	if n < 1 {
		return 0
	}
	p := SHSamplingProb(oversampling, threshold)
	// Normalizing constant of the Zipf weights.
	z := 0.0
	for i := 1; i <= n; i++ {
		z += math.Pow(float64(i), -alpha)
	}
	lg1p := math.Log1p(-p)
	var mean, variance float64
	for i := 1; i <= n; i++ {
		si := c * math.Pow(float64(i), -alpha) / z
		qi := -math.Expm1(si * lg1p) // 1-(1-p)^si
		mean += qi
		variance += qi * (1 - qi)
	}
	return mean + NormalQuantile(prob)*math.Sqrt(variance)
}

// ---- Multistage filters (Section 4.2) ----

// StageStrength is k = T*b/C: how many times the per-stage memory exceeds
// the minimum C/T.
func StageStrength(threshold, c float64, buckets int) float64 {
	return threshold * float64(buckets) / c
}

// MSFPassProb is Lemma 1: the probability that a flow of size s < T(1-1/k)
// passes a parallel multistage filter of depth d and stage strength k is at
// most ((1/k) * T/(T-s))^d. For larger s the trivial bound 1 is returned.
// The bound holds for any distribution of flow sizes.
func MSFPassProb(k float64, d int, s, threshold float64) float64 {
	if s >= threshold*(1-1/k) {
		return 1
	}
	p := math.Pow(threshold/(k*(threshold-s)), float64(d))
	if p > 1 {
		return 1
	}
	return p
}

// MSFErrorLowerBound is Theorem 2: the expected number of bytes of a large
// flow undetected by the filter is at least T*(1/d - 1/(k(d-1))) - ymax,
// where ymax is the maximum packet size. Defined for d >= 2; for d == 1 the
// undetected bytes are at least T - C/b - ymax = T(1 - 1/k) - ymax.
func MSFErrorLowerBound(threshold float64, d int, k, ymax float64) float64 {
	var e float64
	if d == 1 {
		e = threshold*(1-1/k) - ymax
	} else {
		e = threshold*(1/float64(d)-1/(k*float64(d-1))) - ymax
	}
	if e < 0 {
		return 0
	}
	return e
}

// MSFExpectedPassing is Theorem 3: the expected number of flows passing a
// parallel multistage filter with n active flows, b buckets per stage,
// stage strength k and depth d:
//
//	E[n_pass] <= max(b/(k-1), n*(n/(kn-b))^d) + n*(n/(kn-b))^d
//
// The paper's example (n=100,000, b=1,000, k=10, d=4) gives 121.2.
func MSFExpectedPassing(n, b, k float64, d int) float64 {
	if k*n <= b {
		return n // degenerate: every flow can pass
	}
	tail := n * math.Pow(n/(k*n-b), float64(d))
	first := b / (k - 1)
	if tail > first {
		first = tail
	}
	return first + tail
}

// MSFHighProbPassing inverts a Poisson-style Chernoff tail to find the
// number of entries x such that more than x flows pass the filter with
// probability at most 1-prob, given the expected count mean. (The paper
// derives a comparable bound in its technical report; for its example the
// 99.9% bound is 185 entries against an expectation of 122.)
func MSFHighProbPassing(mean, prob float64) float64 {
	if mean <= 0 {
		return 0
	}
	tail := 1 - prob
	// P(N >= x) <= exp(-mean) * (e*mean/x)^x for x > mean; binary search
	// the smallest x meeting the tail.
	lo, hi := mean, mean*20+50
	for i := 0; i < 100; i++ {
		x := (lo + hi) / 2
		logp := -mean + x*(1+math.Log(mean/x))
		if logp > math.Log(tail) {
			lo = x
		} else {
			hi = x
		}
	}
	return hi
}

// MSFZipfPassFraction computes the expected fraction of small flows (size
// below the threshold) that pass the filter when the n flows' sizes follow
// a Zipf distribution with exponent alpha over total traffic volume v —
// Figure 7's "Zipf bound" line. The stage strength is computed from the
// actual volume, k = T*b/v, as the paper does for that figure.
func MSFZipfPassFraction(v, threshold float64, buckets, d, n int, alpha float64) float64 {
	if n < 1 {
		return 0
	}
	k := StageStrength(threshold, v, buckets)
	z := 0.0
	for i := 1; i <= n; i++ {
		z += math.Pow(float64(i), -alpha)
	}
	var pass, small float64
	for i := 1; i <= n; i++ {
		si := v * math.Pow(float64(i), -alpha) / z
		if si >= threshold {
			continue
		}
		small++
		pass += MSFPassProb(k, d, si, threshold)
	}
	if small == 0 {
		return 0
	}
	return pass / small
}

// MSFGeneralPassFraction is Figure 7's "general bound" line: the fraction
// of the n flows expected to pass per Theorem 3, with stage strength
// computed from the traffic volume v.
func MSFGeneralPassFraction(v, threshold float64, buckets, d, n int) float64 {
	k := StageStrength(threshold, v, buckets)
	if k <= 1 {
		return 1
	}
	frac := MSFExpectedPassing(float64(n), float64(buckets), k, d) / float64(n)
	if frac > 1 {
		return 1
	}
	return frac
}

// ---- Comparing measurement methods (Section 5) ----

// Table1Row is one column of Table 1 (the paper lays algorithms out as
// columns; we model them as rows).
type Table1Row struct {
	Algorithm string
	// RelativeError is the standard deviation of the estimate over the
	// size of a flow of zC bytes, with M memory entries.
	RelativeError float64
	// MemoryAccesses is the number of memory locations touched per packet.
	MemoryAccesses float64
}

// Table1 evaluates the core-algorithm comparison for M memory entries,
// flows of interest at fraction z of link capacity, n active flows, cost
// ratio r of a counter to a flow memory entry, and NetFlow sampling 1 in x.
//
//	sample and hold:    error sqrt(2)/(Mz),            1 access/packet
//	multistage filters: error (1+10*r*log10 n)/(Mz),   1+log10 n accesses
//	ordinary sampling:  error 1/sqrt(Mz),              1/x accesses
func Table1(m, z, n, r, x float64) []Table1Row {
	mz := m * z
	return []Table1Row{
		{"sample-and-hold", math.Sqrt2 / mz, 1},
		{"multistage-filter", (1 + 10*r*math.Log10(n)) / mz, 1 + math.Log10(n)},
		{"ordinary-sampling", 1 / math.Sqrt(mz), 1 / x},
	}
}

// NetFlowRelError is the paper's Table 2 error model for Sampled NetFlow
// measuring flows of fraction z of link capacity over t-second intervals:
// 0.0088/sqrt(z*t). The constant folds in the OC-3-relative sampling rate
// and 1500-byte packets of large flows.
func NetFlowRelError(z, t float64) float64 {
	return 0.0088 / math.Sqrt(z*t)
}

// Table2Row is one column of Table 2: complete measurement devices.
type Table2Row struct {
	Algorithm string
	// ExactPct is the percentage of large flows measured exactly (the
	// long-lived share for the paper's algorithms, 0 for NetFlow).
	ExactPct float64
	// RelativeError of the estimate of a large flow.
	RelativeError float64
	// MemoryBound is the upper bound on memory, in flow-memory entries
	// (counters are converted at 10 counters per entry).
	MemoryBound float64
	// MemoryAccesses per packet.
	MemoryAccesses float64
}

// Table2 evaluates the device comparison. Parameters: z the flow fraction
// of interest, t the interval seconds, oversampling O for sample and hold,
// u = zC/T the multistage headroom factor, n active flows, x NetFlow's
// sampling factor, longLivedPct the measured share of large flows that are
// long-lived.
func Table2(z, t, oversampling, u, n, x, longLivedPct float64) []Table2Row {
	return []Table2Row{
		{
			Algorithm:      "sample-and-hold",
			ExactPct:       longLivedPct,
			RelativeError:  math.Sqrt2 / oversampling,
			MemoryBound:    2 * oversampling / z,
			MemoryAccesses: 1,
		},
		{
			Algorithm:      "multistage-filter",
			ExactPct:       longLivedPct,
			RelativeError:  1 / u,
			MemoryBound:    2/z + math.Log10(n)/z,
			MemoryAccesses: 1 + math.Log10(n),
		},
		{
			Algorithm:      "sampled-netflow",
			ExactPct:       0,
			RelativeError:  NetFlowRelError(z, t),
			MemoryBound:    math.Min(n, 486000*t),
			MemoryAccesses: 1 / x,
		},
	}
}

// ShieldedStageStrength is Section 4.2.3's shielding effect: when the
// traffic presented to the filter is reduced by a factor alpha (because
// flows with preserved entries no longer pass through it), the effective
// stage strength grows from k to k*alpha, which can be substituted into
// Lemma 1 and Theorems 2-3.
func ShieldedStageStrength(k, alpha float64) float64 {
	if alpha < 1 {
		alpha = 1
	}
	return k * alpha
}
