package analytic

import (
	"math"
	"testing"
)

// The paper's running example (Section 4): 100 Mbyte/s link, one second
// intervals, threshold 1% (1 Mbyte), 100,000 flows.
const (
	exC = 1e8
	exT = 1e6
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Errorf("%s = %g, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %g, want %g (+-%g%%)", name, got, want, relTol*100)
	}
}

func TestNormalQuantile(t *testing.T) {
	// The paper's two quoted quantiles: 99% -> 2.33, 99.9% -> 3.08.
	approx(t, "z(0.99)", NormalQuantile(0.99), 2.33, 0.01)
	approx(t, "z(0.999)", NormalQuantile(0.999), 3.08, 0.01)
	if NormalQuantile(0.5) != 0 {
		t.Errorf("z(0.5) = %g", NormalQuantile(0.5))
	}
	for _, p := range []float64{0, 1, -1, 2} {
		func() {
			defer func() { recover() }()
			NormalQuantile(p)
			t.Errorf("NormalQuantile(%g) did not panic", p)
		}()
	}
}

func TestSHSamplingProb(t *testing.T) {
	// Section 4.1.1 example: O=20, T=1 Mbyte -> p = 1 in 50,000 bytes.
	approx(t, "p", SHSamplingProb(20, exT), 2e-5, 1e-9)
	if SHSamplingProb(10, 5) != 1 {
		t.Error("p should saturate at 1")
	}
}

func TestSHFalseNegProb(t *testing.T) {
	// "An oversampling factor of 20 results in a probability of missing
	// flows at the threshold of 2*10^-9."
	approx(t, "miss(O=20)", SHFalseNegProb(20), 2.06e-9, 0.01)
}

func TestSHErrorFormulas(t *testing.T) {
	p := SHSamplingProb(20, exT)
	approx(t, "E[s-c]", SHExpectedError(p), 50000, 1e-9)
	approx(t, "SD[s-c]", SHErrorSD(p), math.Sqrt(1-p)/p, 1e-12)
	// "With an oversampling factor O of 20, the relative error for a flow
	// at the threshold is 7%."
	approx(t, "relerr(O=20)", SHRelErrorAtThreshold(20, p), 0.0707, 0.01)
}

func TestSHMemoryBounds(t *testing.T) {
	// "Using an oversampling of 20 requires 2,000 entries on average."
	approx(t, "expected entries", SHExpectedEntries(exC, exT, 20), 2000, 1e-9)
	// "For an oversampling of 20 and an overflow probability of 0.1% we
	// need at most 2,147 entries." (We compute 2000 + 3.08*sqrt(2000) ~
	// 2138; the paper's printed 2,147 differs by <0.5%.)
	approx(t, "0.1% bound", SHEntriesBound(exC, exT, 20, 0.999), 2147, 0.01)
	// "...the flow memory has to have at most 4,207 entries to preserve
	// entries." (4000 + 3.08*sqrt(4000) ~ 4195.)
	approx(t, "preserve bound", SHPreserveEntriesBound(exC, exT, 20, 0.999), 4207, 0.01)
	// "An oversampling of 20 and R = 0.2T with overflow probability 0.1%
	// requires 2,647 memory entries." (500 + 2000 + 3.08*sqrt(2000) ~ 2638.)
	approx(t, "early removal bound", SHEarlyRemovalEntriesBound(exC, exT, 20, 0.2*exT, 0.999), 2647, 0.01)
}

func TestSHEarlyRemovalFalseNegProb(t *testing.T) {
	// "...increases the probability of missing a large flow from 2*10^-9 to
	// 1.1*10^-7 with an oversampling of 20" for R = 0.2T.
	approx(t, "miss(O=20, R=0.2T)", SHEarlyRemovalFalseNegProb(20, 0.2), 1.125e-7, 0.01)
}

func TestSHZipfEntriesBoundTable4(t *testing.T) {
	// Table 4 (threshold 0.025% of link, oversampling 4): the general
	// bound is 16,385 entries for every trace; the Zipf bounds are 8,148
	// (MAG 5-tuple, n~100k) down to 5,081 (COS, n~5.5k).
	generalBound := SHEntriesBound(1.5552e9, 0.00025*1.5552e9, 4, 0.999)
	approx(t, "Table 4 general bound", generalBound, 16385, 0.01)

	magC := 1.5552e9 // OC-48 bytes per 5s interval
	zipfMag := SHZipfEntriesBound(magC, 0.00025*magC, 4, 100105, 1, 0.999)
	// Same ballpark as the paper's 8,148; the paper's exact Zipf tail
	// handling is unpublished, so accept 25%.
	approx(t, "Table 4 Zipf bound (MAG)", zipfMag, 8148, 0.25)

	// For the small COS trace the paper's (unpublished) Zipf-tail handling
	// differs more from ours; require only the same order of magnitude and
	// the qualitative property of undercutting the general bound.
	cosC := 9.72e7 // OC-3 bytes per 5s interval
	zipfCos := SHZipfEntriesBound(cosC, 0.00025*cosC, 4, 5497, 1, 0.999)
	if zipfCos < 5081/2 || zipfCos > 5081*2 {
		t.Errorf("Table 4 Zipf bound (COS) = %g, want within 2x of 5081", zipfCos)
	}

	// The Zipf bound must always undercut the distribution-free bound.
	if zipfMag >= generalBound {
		t.Errorf("Zipf bound %g not below general bound %g", zipfMag, generalBound)
	}
}

func TestStageStrength(t *testing.T) {
	// Section 4.2 example: 1000 buckets, T = 1% of C -> k = 10.
	approx(t, "k", StageStrength(exT, exC, 1000), 10, 1e-9)
}

func TestMSFPassProbLemma1(t *testing.T) {
	// Section 3.2 preliminary analysis: a 100 Kbyte flow against T = 1
	// Mbyte, 1000 buckets, 100 Mbyte of traffic: one stage passes with
	// probability ~11.1%, four stages with ~1.52*10^-4.
	k := StageStrength(exT, exC, 1000)
	approx(t, "1 stage", MSFPassProb(k, 1, 1e5, exT), 0.111, 0.01)
	approx(t, "4 stages", MSFPassProb(k, 4, 1e5, exT), 1.52e-4, 0.02)
	// Above the Lemma 1 range the bound degrades to 1.
	if MSFPassProb(k, 4, 0.95*exT, exT) != 1 {
		t.Error("pass probability should be 1 outside Lemma 1's range")
	}
	// Monotonicity: more stages never increase the pass probability.
	for d := 2; d <= 6; d++ {
		if MSFPassProb(k, d, 1e5, exT) > MSFPassProb(k, d-1, 1e5, exT) {
			t.Errorf("pass probability increased at depth %d", d)
		}
	}
}

func TestMSFErrorLowerBoundTheorem2(t *testing.T) {
	// T(1/d - 1/(k(d-1))) - ymax with the running example and 1500-byte
	// packets: 1e6*(0.25 - 1/30) - 1500 ~ 215,167.
	got := MSFErrorLowerBound(exT, 4, 10, 1500)
	approx(t, "Theorem 2", got, 215166, 0.001)
	// d=1 degenerates to T(1-1/k) - ymax.
	approx(t, "Theorem 2 d=1", MSFErrorLowerBound(exT, 1, 10, 1500), 898500, 0.001)
	// Never negative.
	if MSFErrorLowerBound(100, 4, 1.01, 1500) < 0 {
		t.Error("lower bound went negative")
	}
}

func TestMSFExpectedPassingTheorem3(t *testing.T) {
	// "Theorem 3 gives a bound of 121.2 flows" (n=100,000, b=1,000, k=10,
	// d=4); "using 5 would give 112.1".
	approx(t, "d=4", MSFExpectedPassing(1e5, 1e3, 10, 4), 121.2, 0.005)
	approx(t, "d=5", MSFExpectedPassing(1e5, 1e3, 10, 5), 112.1, 0.005)
	// Degenerate case: k*n <= b means no filtering at all.
	if got := MSFExpectedPassing(100, 1e6, 1, 4); got != 100 {
		t.Errorf("degenerate case = %g, want n", got)
	}
}

func TestMSFHighProbPassing(t *testing.T) {
	// The paper's example: expectation ~122, and "the probability that
	// more than 185 flows pass the filter is at most 0.1%". Our Chernoff
	// inversion must land in the same region (between the mean and the
	// paper's looser bound).
	x := MSFHighProbPassing(122, 0.999)
	if x <= 122 || x > 185 {
		t.Errorf("high-prob bound = %g, want in (122, 185]", x)
	}
	// More probability -> larger bound.
	if MSFHighProbPassing(122, 0.9999) <= x {
		t.Error("tighter probability did not increase the bound")
	}
	if MSFHighProbPassing(0, 0.999) != 0 {
		t.Error("zero mean should give zero bound")
	}
}

func TestMSFZipfPassFraction(t *testing.T) {
	// The Zipf bound of Figure 7 must (a) fall with depth, (b) stay below
	// the general bound.
	v := 2.6e8
	threshold := v / 4096
	prev := 1.0
	for d := 1; d <= 4; d++ {
		zipf := MSFZipfPassFraction(v, threshold, 1000, d, 100000, 1)
		general := MSFGeneralPassFraction(v, threshold, 1000, d, 100000)
		if zipf > prev {
			t.Errorf("Zipf bound rose at depth %d: %g > %g", d, zipf, prev)
		}
		if zipf > general {
			t.Errorf("depth %d: Zipf bound %g above general bound %g", d, zipf, general)
		}
		prev = zipf
	}
}

func TestTable1(t *testing.T) {
	// M entries such that Mz equals the oversampling of the examples.
	rows := Table1(2000, 0.01, 100000, 1, 16)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	mz := 2000 * 0.01 // 20
	approx(t, "S&H error", rows[0].RelativeError, math.Sqrt2/mz, 1e-9)
	approx(t, "MSF error", rows[1].RelativeError, (1+10*math.Log10(1e5))/mz, 1e-9)
	approx(t, "sampling error", rows[2].RelativeError, 1/math.Sqrt(mz), 1e-9)
	if rows[0].MemoryAccesses != 1 {
		t.Error("S&H accesses != 1")
	}
	approx(t, "MSF accesses", rows[1].MemoryAccesses, 6, 1e-9) // 1+log10(1e5)
	approx(t, "sampling accesses", rows[2].MemoryAccesses, 1.0/16, 1e-9)
	// The square-root disadvantage: for the same memory, sampling's error
	// must exceed sample and hold's.
	if rows[2].RelativeError <= rows[0].RelativeError {
		t.Error("sampling should be less accurate than sample and hold")
	}
}

func TestNetFlowRelError(t *testing.T) {
	// Larger z or t help NetFlow; the formula is 0.0088/sqrt(zt).
	approx(t, "z=0.01,t=1", NetFlowRelError(0.01, 1), 0.088, 1e-9)
	approx(t, "z=0.01,t=100", NetFlowRelError(0.01, 100), 0.0088, 1e-9)
}

func TestTable2(t *testing.T) {
	rows := Table2(0.01, 5, 4, 10, 1e5, 16, 80)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	sh, msf, nf := rows[0], rows[1], rows[2]
	if sh.ExactPct != 80 || msf.ExactPct != 80 || nf.ExactPct != 0 {
		t.Error("exact-measurement percentages wrong")
	}
	approx(t, "S&H err", sh.RelativeError, math.Sqrt2/4, 1e-9)
	approx(t, "MSF err", msf.RelativeError, 0.1, 1e-9)
	approx(t, "NF err", nf.RelativeError, 0.0088/math.Sqrt(0.05), 1e-9)
	approx(t, "S&H mem", sh.MemoryBound, 800, 1e-9)
	approx(t, "MSF mem", msf.MemoryBound, 200+500, 1e-9)
	approx(t, "NF mem", nf.MemoryBound, 1e5, 1e-9) // min(n, 2.43e6)
	if nf2 := Table2(0.01, 0.01, 4, 10, 1e7, 16, 80)[2]; nf2.MemoryBound != 4860 {
		t.Errorf("NF mem bound = %g, want DRAM-update limited 4860", nf2.MemoryBound)
	}
}

func TestTable2PaperAlgorithmsWinAtSmallThresholds(t *testing.T) {
	// The paper's headline: for small flows-of-interest (small z) and short
	// intervals, sample and hold and multistage filters beat NetFlow by a
	// wide margin because NetFlow's error grows as 1/sqrt(zt).
	rows := Table2(0.0001, 5, 20, 10, 1e5, 16, 80)
	sh, msf, nf := rows[0], rows[1], rows[2]
	if sh.RelativeError >= nf.RelativeError || msf.RelativeError >= nf.RelativeError {
		t.Errorf("paper algorithms should beat NetFlow: S&H %.3f MSF %.3f NF %.3f",
			sh.RelativeError, msf.RelativeError, nf.RelativeError)
	}
	// And NetFlow improves with longer intervals: the t-dependence the
	// paper calls out as NetFlow's only accuracy lever.
	nfLong := Table2(0.0001, 500, 20, 10, 1e5, 16, 80)[2]
	if nfLong.RelativeError >= nf.RelativeError {
		t.Error("NetFlow error should fall with longer intervals")
	}
}

func TestShieldedStageStrength(t *testing.T) {
	// Shielding away half the traffic doubles the stage strength...
	approx(t, "k*2", ShieldedStageStrength(10, 2), 20, 1e-9)
	// ...and never weakens it.
	if ShieldedStageStrength(10, 0.5) != 10 {
		t.Error("shielding must not reduce stage strength")
	}
	// Substituting into Theorem 3 must reduce the expected passing flows.
	base := MSFExpectedPassing(1e5, 1e3, 10, 4)
	shielded := MSFExpectedPassing(1e5, 1e3, ShieldedStageStrength(10, 3), 4)
	if shielded >= base {
		t.Errorf("shielded bound %g not below base %g", shielded, base)
	}
}
