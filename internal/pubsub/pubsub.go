// Package pubsub is the in-process event bus behind the live ops plane: a
// stage graph publishes interval reports, telemetry snapshots and comparison
// results as topic-tagged events, and observers (the cmd/web SSE dashboard,
// tests, ad-hoc tooling) subscribe to the topics they care about.
//
// The bus never blocks a publisher: every subscription has a bounded queue
// and a slow subscriber loses its *oldest* queued events first (the same
// freshest-data-wins choice as the pipeline's DropOldest overload policy and
// the reliable exporter's spool) — a wedged dashboard must not stall the
// measurement path, and when it catches up it should see the most recent
// state, not a backlog of stale intervals. Lost events are counted per
// subscription, so observability of the observer is preserved.
package pubsub

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/telemetry"
)

// DefaultQueueDepth is the per-subscription queue capacity used when
// Config.QueueDepth is zero: deep enough to ride out a scrape pause, small
// enough that a dead subscriber holds only a bounded amount of memory.
const DefaultQueueDepth = 256

// Config configures a Bus.
type Config struct {
	// QueueDepth is the default per-subscription queue capacity, in events.
	// Zero selects DefaultQueueDepth.
	QueueDepth int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QueueDepth < 0 {
		return cfgerr.New("pubsub", "QueueDepth", "must not be negative, got %d", c.QueueDepth)
	}
	return nil
}

// Option customizes a Bus beyond its Config.
type Option func(*Bus)

// WithClock overrides the bus's timestamp source (tests).
func WithClock(now func() time.Time) Option {
	return func(b *Bus) { b.now = now }
}

// Event is one published message. Payload is shared between subscribers, so
// it must be treated as immutable once published.
type Event struct {
	// Topic is the publisher-chosen routing key ("reports", "events/compare").
	Topic string `json:"topic"`
	// Seq is the bus-wide publish sequence number, so a subscriber can detect
	// gaps its own queue overflow produced.
	Seq uint64 `json:"seq"`
	// Time is when the event was published.
	Time time.Time `json:"time"`
	// Payload is the event body.
	Payload any `json:"payload"`
}

// Bus routes published events to matching subscriptions. The zero value is
// not usable; construct with New.
type Bus struct {
	now        func() time.Time
	queueDepth int
	seq        atomic.Uint64
	published  atomic.Uint64
	delivered  atomic.Uint64
	dropped    atomic.Uint64

	mu     sync.RWMutex
	subs   []*Subscription
	closed bool
}

// New builds a bus.
func New(cfg Config, opts ...Option) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	b := &Bus{now: time.Now, queueDepth: depth}
	for _, opt := range opts {
		opt(b)
	}
	return b, nil
}

// Subscription is one subscriber's bounded event queue. Receive from C;
// Cancel when done.
type Subscription struct {
	// C delivers matching events. It is closed by Cancel and by Bus.Close.
	C <-chan Event

	bus     *Bus
	ch      chan Event
	topics  []string
	dropped atomic.Uint64
	done    chan struct{}
	once    sync.Once
}

// Subscribe registers a subscription for the given topic patterns. A pattern
// matches its topic exactly, or — when it ends in "/" or is "" — matches any
// topic it prefixes ("" subscribes to everything, "events/" to every event
// kind). depth <= 0 selects the bus default queue depth.
func (b *Bus) Subscribe(depth int, topics ...string) *Subscription {
	if depth <= 0 {
		depth = b.queueDepth
	}
	s := &Subscription{
		bus:    b,
		ch:     make(chan Event, depth),
		topics: append([]string(nil), topics...),
		done:   make(chan struct{}),
	}
	s.C = s.ch
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		return s
	}
	b.subs = append(b.subs, s)
	return s
}

// matches reports whether the subscription wants topic.
func (s *Subscription) matches(topic string) bool {
	if len(s.topics) == 0 {
		return true
	}
	for _, t := range s.topics {
		if t == topic || t == "" || (strings.HasSuffix(t, "/") && strings.HasPrefix(topic, t)) {
			return true
		}
	}
	return false
}

// Dropped returns how many events this subscription lost to queue overflow.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel removes the subscription and closes its channel. Idempotent; safe
// to call concurrently with Publish.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		close(s.done)
		b := s.bus
		b.mu.Lock()
		for i, other := range b.subs {
			if other == s {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				break
			}
		}
		closed := b.closed
		b.mu.Unlock()
		if !closed {
			close(s.ch)
		}
	})
}

// Publish delivers an event to every matching subscription without ever
// blocking: a full subscription queue sheds its oldest event (counted on the
// subscription and on the bus) so the newest state always gets through.
func (b *Bus) Publish(topic string, payload any) {
	e := Event{Topic: topic, Seq: b.seq.Add(1), Time: b.now(), Payload: payload}
	b.published.Add(1)
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return
	}
	for _, s := range b.subs {
		if !s.matches(topic) {
			continue
		}
		for {
			select {
			case s.ch <- e:
				b.delivered.Add(1)
			default:
				// Queue full: shed the oldest queued event and retry. The
				// subscriber may race us consuming, in which case the retry
				// just succeeds.
				select {
				case <-s.ch:
					s.dropped.Add(1)
					b.dropped.Add(1)
				default:
				}
				continue
			}
			break
		}
	}
}

// Close shuts the bus down: every subscription channel is closed and further
// publishes are dropped. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.subs {
		close(s.ch)
	}
	b.subs = nil
}

// Stats returns the bus's live counters.
func (b *Bus) Stats() telemetry.BusSnapshot {
	b.mu.RLock()
	subs := len(b.subs)
	b.mu.RUnlock()
	return telemetry.BusSnapshot{
		Subscribers: subs,
		Published:   b.published.Load(),
		Delivered:   b.delivered.Load(),
		Dropped:     b.dropped.Load(),
	}
}
