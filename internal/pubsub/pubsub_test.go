package pubsub

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustBus(t *testing.T, cfg Config) *Bus {
	t.Helper()
	b, err := New(cfg, WithClock(func() time.Time { return time.Unix(42, 0) }))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if _, err := New(Config{QueueDepth: -1}); err == nil {
		t.Fatal("negative QueueDepth accepted")
	}
}

func TestTopicMatching(t *testing.T) {
	b := mustBus(t, Config{})
	defer b.Close()
	all := b.Subscribe(0)
	exact := b.Subscribe(0, "reports")
	prefix := b.Subscribe(0, "events/")
	empty := b.Subscribe(0, "")

	b.Publish("reports", 1)
	b.Publish("events/compare", 2)
	b.Publish("events/telemetry", 3)
	b.Close()

	drain := func(s *Subscription) []string {
		var topics []string
		for e := range s.C {
			topics = append(topics, e.Topic)
		}
		return topics
	}
	if got := drain(all); len(got) != 3 {
		t.Errorf("no-topic subscription got %v, want all 3", got)
	}
	if got := drain(exact); len(got) != 1 || got[0] != "reports" {
		t.Errorf("exact subscription got %v", got)
	}
	if got := drain(prefix); len(got) != 2 {
		t.Errorf("prefix subscription got %v, want the 2 events", got)
	}
	if got := drain(empty); len(got) != 3 {
		t.Errorf("empty-pattern subscription got %v, want all 3", got)
	}
}

func TestSequenceAndTimestamps(t *testing.T) {
	b := mustBus(t, Config{})
	s := b.Subscribe(0)
	b.Publish("a", "x")
	b.Publish("a", "y")
	b.Close()
	var seqs []uint64
	for e := range s.C {
		if !e.Time.Equal(time.Unix(42, 0)) {
			t.Errorf("event time = %v, want injected clock", e.Time)
		}
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("sequence numbers = %v, want [1 2]", seqs)
	}
}

// A slow subscriber loses its oldest events, keeps the newest, and the loss
// is counted on the subscription and the bus.
func TestOverflowDropsOldest(t *testing.T) {
	b := mustBus(t, Config{QueueDepth: 2})
	s := b.Subscribe(2, "t")
	for i := 0; i < 5; i++ {
		b.Publish("t", i)
	}
	if got := s.Dropped(); got != 3 {
		t.Errorf("subscription dropped %d, want 3", got)
	}
	stats := b.Stats()
	if stats.Published != 5 || stats.Delivered != 5 || stats.Dropped != 3 {
		t.Errorf("bus stats = %+v, want published 5, delivered 5, dropped 3", stats)
	}
	b.Close()
	var got []any
	for e := range s.C {
		got = append(got, e.Payload)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("survivors = %v, want the newest [3 4]", got)
	}
}

func TestCancelRemovesSubscription(t *testing.T) {
	b := mustBus(t, Config{})
	s := b.Subscribe(0)
	s.Cancel()
	s.Cancel() // idempotent
	if _, ok := <-s.C; ok {
		t.Fatal("cancelled subscription channel not closed")
	}
	b.Publish("t", 1) // must not panic on the closed channel
	if got := b.Stats().Subscribers; got != 0 {
		t.Errorf("subscribers = %d after cancel, want 0", got)
	}
}

func TestSubscribeAfterClose(t *testing.T) {
	b := mustBus(t, Config{})
	b.Close()
	b.Close() // idempotent
	s := b.Subscribe(0)
	if _, ok := <-s.C; ok {
		t.Fatal("subscription on closed bus not immediately closed")
	}
	b.Publish("t", 1) // dropped, no panic
}

// Publishers racing Cancel and Close must never panic or deadlock
// (run with -race).
func TestConcurrentPublishCancelClose(t *testing.T) {
	b := mustBus(t, Config{QueueDepth: 4})
	var subs []*Subscription
	for i := 0; i < 8; i++ {
		subs = append(subs, b.Subscribe(4, fmt.Sprintf("t%d", i%2)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish(fmt.Sprintf("t%d", i%2), i)
			}
		}(w)
	}
	for _, s := range subs {
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			for range s.C {
			}
		}(s)
	}
	for _, s := range subs[:4] {
		s.Cancel()
	}
	b.Close()
	wg.Wait()
}
