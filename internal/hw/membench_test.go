package hw

import "testing"

func TestCacheLineSize(t *testing.T) {
	n := CacheLineSize()
	if n < 16 || n > 1024 {
		t.Fatalf("implausible cache line size %d", n)
	}
	if n&(n-1) != 0 {
		t.Fatalf("cache line size %d not a power of two", n)
	}
}

// TestMemBench sanity-checks the measurement on a small buffer (fast, cache
// resident — the numbers are not DRAM numbers, only the mechanics are under
// test).
func TestMemBench(t *testing.T) {
	r := MemBench(1 << 20)
	if r.BufferBytes != 1<<20 {
		t.Fatalf("BufferBytes = %d", r.BufferBytes)
	}
	if r.SeqGBps <= 0 {
		t.Fatalf("SeqGBps = %g, want > 0", r.SeqGBps)
	}
	if r.RandNsPerLine <= 0 || r.RandGBps <= 0 {
		t.Fatalf("random metrics not positive: %+v", r)
	}
	if r.CacheLineBytes <= 0 {
		t.Fatalf("CacheLineBytes = %d", r.CacheLineBytes)
	}
}
