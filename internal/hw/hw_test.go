package hw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestHashCAMInsertLookup(t *testing.T) {
	h := NewHashCAM(64, 8, 1)
	if h.Capacity() != 72 {
		t.Errorf("Capacity = %d", h.Capacity())
	}
	e := h.Insert(key(1), 100)
	if e == nil || e.Bytes != 100 {
		t.Fatalf("Insert = %+v", e)
	}
	if got := h.Lookup(key(1)); got != e {
		t.Error("Lookup did not find the entry")
	}
	if h.Lookup(key(2)) != nil {
		t.Error("absent key found")
	}
	if h.Insert(key(1), 5) != nil {
		t.Error("duplicate insert succeeded")
	}
	e.Bytes += 50
	if h.Lookup(key(1)).Bytes != 150 {
		t.Error("updates not visible")
	}
}

func TestHashCAMCollisionsGoToCAM(t *testing.T) {
	// One bucket forces every second insert into the CAM.
	h := NewHashCAM(1, 4, 1)
	for i := uint64(0); i < 5; i++ {
		if h.Insert(key(i), 1) == nil {
			t.Fatalf("insert %d failed", i)
		}
	}
	if h.Len() != 5 || h.CamLen() != 4 || h.CamInsertions != 4 {
		t.Errorf("len=%d cam=%d inserts=%d", h.Len(), h.CamLen(), h.CamInsertions)
	}
	// Bucket and CAM both full now.
	if h.Insert(key(9), 1) != nil {
		t.Error("insert into full structure succeeded")
	}
	if h.Rejected != 1 {
		t.Errorf("Rejected = %d", h.Rejected)
	}
	// All five entries remain reachable.
	for i := uint64(0); i < 5; i++ {
		if h.Lookup(key(i)) == nil {
			t.Errorf("entry %d lost", i)
		}
	}
}

func TestHashCAMReset(t *testing.T) {
	h := NewHashCAM(4, 4, 1)
	for i := uint64(0); i < 6; i++ {
		h.Insert(key(i), 1)
	}
	inserts := h.CamInsertions
	h.Reset()
	if h.Len() != 0 || h.CamLen() != 0 {
		t.Error("Reset left entries")
	}
	if h.CamInsertions != inserts {
		t.Error("Reset cleared cumulative statistics")
	}
	if h.Insert(key(1), 1) == nil {
		t.Error("insert after Reset failed")
	}
}

func TestHashCAMPanicsOnBadSizing(t *testing.T) {
	for _, tc := range []struct{ b, c int }{{0, 4}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHashCAM(%d, %d) did not panic", tc.b, tc.c)
				}
			}()
			NewHashCAM(tc.b, tc.c, 1)
		}()
	}
}

// TestCamLoadMatchesTheory fills a table to the paper-style load factor and
// compares CAM occupancy with the balls-in-bins expectation.
func TestCamLoadMatchesTheory(t *testing.T) {
	const buckets = 4096
	const n = 3584 // the chip's flow memory entry count
	var totalCam float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		h := NewHashCAM(buckets, n, int64(trial))
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		for i := 0; i < n; i++ {
			h.Insert(flow.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, 1)
		}
		totalCam += float64(h.CamLen())
	}
	got := totalCam / trials
	want := ExpectedCamLoad(n, buckets)
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("CAM load %.0f, theory %.0f", got, want)
	}
	// The headline: a CAM of ~1/3 the table size suffices at this load.
	if want > float64(n)/2 {
		t.Errorf("expected CAM load %.0f implausibly high", want)
	}
}

func TestExpectedCamLoadEdgeCases(t *testing.T) {
	if ExpectedCamLoad(0, 100) != 0 || ExpectedCamLoad(100, 0) != 0 {
		t.Error("degenerate inputs should be 0")
	}
	// With many more buckets than flows, collisions are rare.
	if load := ExpectedCamLoad(10, 1000000); load > 0.1 {
		t.Errorf("load = %g for nearly-empty table", load)
	}
	// Monotone in n.
	if ExpectedCamLoad(2000, 1024) <= ExpectedCamLoad(1000, 1024) {
		t.Error("CAM load not monotone in n")
	}
}

func TestOC192ChipFeasible(t *testing.T) {
	// The paper's Section 8 claim: the 4-stage parallel design with
	// pipelined flow-memory access runs at OC-192 line speed.
	f, err := Check(DesignConfig{
		LinkBps:        OC192Bps,
		Stages:         ChipStages,
		ParallelStages: true,
		Pipelined:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Feasible {
		t.Errorf("OC-192 chip design infeasible: %s", f)
	}
}

func TestSerialStageAccessTooSlowAtOC192(t *testing.T) {
	// A network processor accessing 4 stages serially cannot keep up with
	// 40-byte packets at OC-192 (the paper: "multistage filters are harder
	// to implement using a network processor").
	f, err := Check(DesignConfig{
		LinkBps: OC192Bps,
		Stages:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Feasible {
		t.Errorf("serial 4-stage design should not be feasible at OC-192: %s", f)
	}
	// The same serial design is fine at OC-3.
	f, err = Check(DesignConfig{LinkBps: OC3Bps, Stages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Feasible {
		t.Errorf("serial 4-stage design should be feasible at OC-3: %s", f)
	}
}

func TestSampleAndHoldFeasibleEverywhere(t *testing.T) {
	// Sample and hold adds only one memory reference: feasible even at
	// OC-192 ("easy to implement even in a network processor").
	for _, link := range []float64{OC3Bps, OC12Bps, OC48Bps, OC192Bps} {
		f, err := Check(DesignConfig{LinkBps: link, Stages: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !f.Feasible {
			t.Errorf("sample and hold infeasible at %.0f bps: %s", link, f)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	if _, err := Check(DesignConfig{LinkBps: 0}); err == nil {
		t.Error("zero link speed accepted")
	}
	if _, err := Check(DesignConfig{LinkBps: OC3Bps, Stages: -1}); err == nil {
		t.Error("negative stages accepted")
	}
}

func TestPacketInterArrival(t *testing.T) {
	// 40-byte packets at OC-192: 320 bits / 9.95328 Gbps ~ 32.15 ns.
	got := PacketInterArrivalNs(OC192Bps)
	if math.Abs(got-32.15) > 0.1 {
		t.Errorf("inter-arrival = %.2f ns, want ~32.15", got)
	}
}

func TestFeasibilityString(t *testing.T) {
	f, _ := Check(DesignConfig{LinkBps: OC3Bps, Stages: 0})
	if s := f.String(); len(s) == 0 || s[:8] != "FEASIBLE" {
		t.Errorf("String = %q", s)
	}
}
