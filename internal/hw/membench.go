package hw

// Measured roofline inputs. The Section 8 feasibility model (oc192.go)
// reasons from the paper's nominal 5 ns SRAM; this file measures the actual
// memory system of the host running the software pipeline, so EXPERIMENTS.md
// can place the fused batch kernel on a roofline — is the single-core packet
// rate bounded by compute or by memory bandwidth? — with numbers
// reproducible on any machine via `hwcheck -mem`.

import (
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"
)

// DefaultCacheLineBytes is assumed when the host does not expose its
// coherency line size.
const DefaultCacheLineBytes = 64

// CacheLineSize returns the CPU's cache line size in bytes, read from sysfs
// (Linux) with a 64-byte fallback.
func CacheLineSize() int {
	b, err := os.ReadFile("/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size")
	if err != nil {
		return DefaultCacheLineBytes
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n <= 0 {
		return DefaultCacheLineBytes
	}
	return n
}

// MemBenchResult holds measured memory-system parameters.
type MemBenchResult struct {
	// CacheLineBytes is the coherency line size.
	CacheLineBytes int
	// BufferBytes is the working-set size the bandwidths were measured over
	// (must exceed the last-level cache for the numbers to mean DRAM).
	BufferBytes int
	// SeqGBps is streaming read bandwidth: a linear sum over the buffer,
	// the best case the prefetchers can deliver.
	SeqGBps float64
	// RandNsPerLine is the latency of one dependent random cache-line load
	// (a pointer chase, so no two loads overlap) — the worst case.
	RandNsPerLine float64
	// RandGBps is the effective bandwidth of that dependent chase: one line
	// per RandNsPerLine.
	RandGBps float64
}

// MemBench measures sequential and random memory performance over a buffer
// of bufBytes (0 selects 64 MiB). It takes on the order of a few hundred
// milliseconds.
func MemBench(bufBytes int) MemBenchResult {
	if bufBytes <= 0 {
		bufBytes = 64 << 20
	}
	line := CacheLineSize()
	r := MemBenchResult{CacheLineBytes: line, BufferBytes: bufBytes}
	n := bufBytes / 8
	buf := make([]uint64, n)

	// Sequential: linear read of the whole buffer, a few passes, best pass
	// wins (first pass also pages the memory in; later passes measure steady
	// streaming).
	for i := range buf {
		buf[i] = uint64(i)
	}
	var sink uint64
	best := time.Duration(1<<63 - 1)
	for pass := 0; pass < 4; pass++ {
		start := time.Now()
		var s uint64
		for _, v := range buf {
			s += v
		}
		if d := time.Since(start); pass > 0 && d < best {
			best = d
		}
		sink += s
	}
	r.SeqGBps = float64(bufBytes) / best.Seconds() / 1e9

	// Random: a Sattolo cycle over line-spaced slots, walked as a dependent
	// pointer chase — each step's address is the previous load's value, so
	// misses serialize and the time per step is the full line latency.
	stride := line / 8
	slots := n / stride
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(slots)
	for i, p := range perm {
		next := perm[(i+1)%len(perm)]
		buf[p*stride] = uint64(next * stride)
	}
	steps := 2 << 20
	if steps > slots*8 {
		steps = slots * 8
	}
	idx := uint64(perm[0] * stride)
	start := time.Now()
	for i := 0; i < steps; i++ {
		idx = buf[idx]
	}
	chase := time.Since(start)
	sink += idx
	r.RandNsPerLine = float64(chase.Nanoseconds()) / float64(steps)
	r.RandGBps = float64(line) / r.RandNsPerLine

	benchSink = sink
	return r
}

// benchSink keeps the measurement loops' results alive.
var benchSink uint64
