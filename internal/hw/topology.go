package hw

// Host topology probe. The sharded pipeline's throughput depends on two
// host facts the paper's hardware model takes as givens: how many cores can
// run lane workers, and how much cache each lane's working set can occupy
// before batches start streaming from DRAM. Probe reads both — from sysfs
// where the OS exposes them, by timing where it does not — and
// DefaultShards turns them into the shard-count heuristic hhdevice uses
// when the operator does not pin -shards.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// readSysfsInt reads a sysfs file holding a bare integer; 0 on any failure.
func readSysfsInt(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0
	}
	return n
}

// readSysfsSize reads a sysfs size file ("512K", "4M", plain bytes);
// 0 on any failure.
func readSysfsSize(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	s := strings.TrimSpace(string(b))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return n * mult
}

// Topology describes the host as seen by the sharded pipeline.
type Topology struct {
	// NumCPU is the number of logical CPUs (runtime.NumCPU).
	NumCPU int
	// GOMAXPROCS is the scheduler's current parallelism limit; lane workers
	// beyond it time-slice instead of running in parallel.
	GOMAXPROCS int
	// CacheLineBytes is the coherency line size.
	CacheLineBytes int
	// L2Bytes is the per-core L2 cache size. Read from sysfs when
	// available, otherwise estimated with a timing probe (see estimateL2);
	// zero only if both fail.
	L2Bytes int
	// L2Measured reports whether L2Bytes came from the timing probe rather
	// than sysfs.
	L2Measured bool
}

// Probe reads the host topology. The sysfs paths resolve on Linux; on other
// platforms (or stripped-down containers) the L2 size falls back to a
// timing estimate costing a few tens of milliseconds.
func Probe() Topology {
	t := Topology{
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		CacheLineBytes: CacheLineSize(),
	}
	if size := sysfsCacheBytes(2); size > 0 {
		t.L2Bytes = size
	} else if size := estimateL2(); size > 0 {
		t.L2Bytes = size
		t.L2Measured = true
	}
	return t
}

// sysfsCacheBytes returns the size of the cpu0 cache at the given level (L2
// is usually index2, but the index↔level mapping varies, so every index is
// checked), or 0 when sysfs is unavailable.
func sysfsCacheBytes(level int) int {
	matches, _ := filepath.Glob("/sys/devices/system/cpu/cpu0/cache/index*/level")
	for _, levelPath := range matches {
		if readSysfsInt(levelPath) != level {
			continue
		}
		// size is "512K" / "4M" style.
		if n := readSysfsSize(filepath.Join(filepath.Dir(levelPath), "size")); n > 0 {
			return n
		}
	}
	return 0
}

// estimateL2 locates the L2 capacity by timing dependent pointer chases at
// doubling working-set sizes: while the set fits in L2 each step costs a
// few cycles, and the first size whose per-step latency is more than twice
// the smallest observed latency has spilled a level. The previous size is
// reported as the capacity estimate. Coarse (power-of-two resolution) but
// dependency-free, and only consulted when sysfs is not available.
func estimateL2() int {
	line := CacheLineSize()
	stride := line / 8
	if stride < 1 {
		stride = 1
	}
	baseline := 0.0
	prev := 0
	for size := 64 << 10; size <= 32<<20; size <<= 1 {
		ns := chaseNsPerLoad(size, stride)
		if baseline == 0 || ns < baseline {
			baseline = ns
		}
		if ns > 2*baseline && prev > 0 {
			return prev
		}
		prev = size
	}
	return 0
}

// chaseNsPerLoad walks a Sattolo cycle over line-spaced slots of a buffer of
// size bytes and returns the nanoseconds per dependent load.
func chaseNsPerLoad(size, stride int) float64 {
	n := size / 8
	slots := n / stride
	if slots < 2 {
		return 0
	}
	buf := make([]uint64, n)
	// Deterministic Sattolo shuffle so the probe never allocates an RNG.
	perm := make([]int, slots)
	for i := range perm {
		perm[i] = i
	}
	seed := uint64(0x9E3779B97F4A7C15)
	for i := slots - 1; i > 0; i-- {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		j := int(seed % uint64(i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i, p := range perm {
		next := perm[(i+1)%len(perm)]
		buf[p*stride] = uint64(next * stride)
	}
	steps := 1 << 16
	idx := uint64(perm[0] * stride)
	// Warm lap so the timed lap measures residency, not page faults.
	for i := 0; i < slots; i++ {
		idx = buf[idx]
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		idx = buf[idx]
	}
	d := time.Since(start)
	benchSink += idx
	return float64(d.Nanoseconds()) / float64(steps)
}

// DefaultShards is the shard-count heuristic for a host with this topology:
// one lane per schedulable CPU with one core reserved for the producer
// (which keys, hashes and partitions every packet), clamped to [1, 8] —
// beyond 8 lanes the merge and flush fan-in costs outgrow the parallel
// gain for the table sizes this module targets. On a single-CPU host the
// answer is 1: extra lanes only add handoff work to a time-sliced core.
func (t Topology) DefaultShards() int {
	cpus := t.GOMAXPROCS
	if t.NumCPU < cpus {
		cpus = t.NumCPU
	}
	shards := cpus - 1
	if shards < 1 {
		shards = 1
	}
	if shards > 8 {
		shards = 8
	}
	return shards
}

// String formats the topology one fact per line, hwcheck-style.
func (t Topology) String() string {
	l2 := "unknown"
	if t.L2Bytes > 0 {
		src := "sysfs"
		if t.L2Measured {
			src = "timing estimate"
		}
		l2 = fmt.Sprintf("%d KiB (%s)", t.L2Bytes>>10, src)
	}
	return fmt.Sprintf("cpus: %d (GOMAXPROCS %d)\ncache line: %d B\nL2: %s\nrecommended shards: %d",
		t.NumCPU, t.GOMAXPROCS, t.CacheLineBytes, l2, t.DefaultShards())
}
