// Package hw models the hardware implementation issues of Section 8 of the
// paper: the associative flow memory built from a hash table plus a small
// CAM for colliding flow IDs, and the line-rate feasibility of the
// algorithms at OC-192 speeds (based on the paper's preliminary chip
// design: a 4-stage parallel filter with 4K counters per stage and 3584
// flow memory entries in ~450,000 transistors).
package hw

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/hashing"
)

// HashCAM is the flow memory organization Section 8 sketches for
// implementations without a full content-addressable memory: a single-entry-
// per-bucket hash table backed by a much smaller CAM that absorbs flow IDs
// whose bucket is already occupied. Lookups probe the bucket and the CAM in
// parallel, so every lookup is still one memory access time.
type HashCAM struct {
	buckets []hashEntry
	cam     map[flow.Key]*Entry
	camCap  int
	hash    hashing.Func
	n       int

	// CamInsertions counts entries that had to go to the CAM, the key
	// sizing statistic for the hardware design.
	CamInsertions uint64
	// Rejected counts inserts dropped because both the bucket and the CAM
	// were full.
	Rejected uint64
}

type hashEntry struct {
	used  bool
	key   flow.Key
	entry *Entry
}

// Entry is a flow memory entry; the byte counter is what the algorithms
// update per packet.
type Entry struct {
	Key   flow.Key
	Bytes uint64
}

// NewHashCAM creates a hash table of the given number of buckets backed by
// a CAM of camCapacity entries. It panics on non-positive sizes.
func NewHashCAM(buckets, camCapacity int, seed int64) *HashCAM {
	if buckets < 1 || camCapacity < 0 {
		panic("hw: bad HashCAM sizing")
	}
	return &HashCAM{
		buckets: make([]hashEntry, buckets),
		cam:     make(map[flow.Key]*Entry, camCapacity),
		camCap:  camCapacity,
		hash:    hashing.NewTabulation(seed).New(uint32(buckets)),
	}
}

// Len returns the number of stored entries.
func (h *HashCAM) Len() int { return h.n }

// CamLen returns the number of entries currently in the CAM.
func (h *HashCAM) CamLen() int { return len(h.cam) }

// Capacity returns the total capacity (buckets + CAM).
func (h *HashCAM) Capacity() int { return len(h.buckets) + h.camCap }

// Lookup returns the entry for key, or nil. Hardware probes the hash bucket
// and the CAM in parallel; either hit costs one access time.
func (h *HashCAM) Lookup(key flow.Key) *Entry {
	b := &h.buckets[h.hash.Bucket(key)]
	if b.used && b.key == key {
		return b.entry
	}
	return h.cam[key]
}

// Insert adds an entry, preferring the hash bucket and falling back to the
// CAM on collision. It returns nil when the key exists or nothing has room.
func (h *HashCAM) Insert(key flow.Key, initialBytes uint64) *Entry {
	if h.Lookup(key) != nil {
		return nil
	}
	e := &Entry{Key: key, Bytes: initialBytes}
	b := &h.buckets[h.hash.Bucket(key)]
	if !b.used {
		b.used = true
		b.key = key
		b.entry = e
		h.n++
		return e
	}
	if len(h.cam) >= h.camCap {
		h.Rejected++
		return nil
	}
	h.cam[key] = e
	h.CamInsertions++
	h.n++
	return e
}

// Reset clears all entries, as at a measurement interval boundary, keeping
// the cumulative statistics.
func (h *HashCAM) Reset() {
	for i := range h.buckets {
		h.buckets[i] = hashEntry{}
	}
	h.cam = make(map[flow.Key]*Entry, h.camCap)
	h.n = 0
}

// ExpectedCamLoad returns the expected number of colliding entries when n
// uniformly hashed flows are stored in b buckets: n - b*(1-(1-1/b)^n),
// the balls-in-bins surplus. Use it to size the CAM.
func ExpectedCamLoad(n, buckets int) float64 {
	if buckets < 1 || n < 1 {
		return 0
	}
	b := float64(buckets)
	// (1-1/b)^n computed stably as exp(n*log1p(-1/b)).
	occupied := b * (1 - math.Exp(float64(n)*math.Log1p(-1/b)))
	return float64(n) - occupied
}

// String summarizes occupancy.
func (h *HashCAM) String() string {
	return fmt.Sprintf("hashcam: %d entries (%d in CAM of %d), %d CAM inserts, %d rejected",
		h.n, len(h.cam), h.camCap, h.CamInsertions, h.Rejected)
}
