package hw

import "testing"

func TestProbeSane(t *testing.T) {
	topo := Probe()
	if topo.NumCPU < 1 || topo.GOMAXPROCS < 1 {
		t.Fatalf("impossible CPU counts: %+v", topo)
	}
	if topo.CacheLineBytes < 8 || topo.CacheLineBytes > 1024 {
		t.Errorf("implausible cache line: %d", topo.CacheLineBytes)
	}
	if topo.L2Bytes < 0 || (topo.L2Bytes > 0 && topo.L2Bytes < 16<<10) {
		t.Errorf("implausible L2: %d", topo.L2Bytes)
	}
	if s := topo.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestDefaultShardsHeuristic(t *testing.T) {
	cases := []struct {
		cpus, procs, want int
	}{
		{1, 1, 1}, // single CPU: never oversubscribe
		{2, 2, 1}, // reserve a core for the producer
		{4, 4, 3},
		{8, 8, 7},
		{16, 16, 8}, // clamped
		{64, 64, 8},
		{8, 2, 1}, // GOMAXPROCS wins when it is the binding limit
		{2, 8, 1}, // and NumCPU when it is
	}
	for _, c := range cases {
		topo := Topology{NumCPU: c.cpus, GOMAXPROCS: c.procs}
		if got := topo.DefaultShards(); got != c.want {
			t.Errorf("cpus=%d procs=%d: shards %d, want %d", c.cpus, c.procs, got, c.want)
		}
	}
}
