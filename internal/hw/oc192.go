package hw

import (
	"fmt"
	"math"

	"repro/internal/memmodel"
)

// Link speeds in bits per second for the feasibility model.
const (
	OC3Bps   = 155.52e6
	OC12Bps  = 622.08e6
	OC48Bps  = 2488.32e6
	OC192Bps = 9953.28e6
)

// MinPacketBytes is the smallest packet the paper assumes devices must
// handle at line rate (40-byte TCP acks).
const MinPacketBytes = 40

// Reference numbers from the paper's Section 8 chip study: a parallel
// multistage filter with 4 stages of 4K counters and a flow memory of 3584
// entries runs at OC-192; the core logic is roughly 450,000 transistors on
// 2mm x 2mm in a 0.18 micron process, under 1 watt.
const (
	ChipStages          = 4
	ChipCountersPerStep = 4096
	ChipFlowEntries     = 3584
	ChipTransistors     = 450000
)

// DesignConfig describes a hardware measurement design to check for
// line-rate feasibility.
type DesignConfig struct {
	// LinkBps is the link speed in bits per second.
	LinkBps float64
	// Stages is the filter depth (0 for sample and hold).
	Stages int
	// ParallelStages marks chip implementations that access all stage
	// memories concurrently (Section 3.2: "parallel memory accesses to
	// each stage in a chip implementation"); network processors access
	// them serially.
	ParallelStages bool
	// SRAMAccessNs overrides the SRAM access time (0 selects the paper's
	// 5 ns).
	SRAMAccessNs float64
	// Pipelined marks designs that overlap the flow-memory access with the
	// stage accesses.
	Pipelined bool
}

// Feasibility is the verdict for a design.
type Feasibility struct {
	// PacketNs is the minimum packet inter-arrival time at the link speed
	// for minimum-size packets.
	PacketNs float64
	// MemoryNs is the memory time the design needs per packet.
	MemoryNs float64
	// Feasible reports whether MemoryNs <= PacketNs.
	Feasible bool
	// HeadroomPct is how much slack remains (negative when infeasible).
	HeadroomPct float64
}

// PacketInterArrivalNs returns the worst-case packet inter-arrival time in
// nanoseconds: back-to-back minimum-size packets at the link speed.
func PacketInterArrivalNs(linkBps float64) float64 {
	return float64(MinPacketBytes*8) / linkBps * 1e9
}

// Check evaluates a design. Per packet the design performs one flow-memory
// access plus, for multistage filters, one read and one write per stage —
// concurrent across stages in a parallel chip design, sequential otherwise.
func Check(cfg DesignConfig) (Feasibility, error) {
	if cfg.LinkBps <= 0 {
		return Feasibility{}, fmt.Errorf("hw: LinkBps = %g", cfg.LinkBps)
	}
	if cfg.Stages < 0 {
		return Feasibility{}, fmt.Errorf("hw: Stages = %d", cfg.Stages)
	}
	sram := cfg.SRAMAccessNs
	if sram == 0 {
		sram = memmodel.SRAMAccessNs
	}
	// Flow memory: one read plus one write (update or insert).
	memNs := 2 * sram
	if cfg.Stages > 0 {
		stageAccesses := 2.0 // read + write per stage
		if cfg.ParallelStages {
			// All stages in parallel: one read time + one write time.
			memNs += stageAccesses * sram
		} else {
			memNs += stageAccesses * sram * float64(cfg.Stages)
		}
	}
	if cfg.Pipelined {
		// Pipelining overlaps the flow-memory access with the stage
		// accesses; the critical path is the longer of the two.
		stageNs := memNs - 2*sram
		memNs = math.Max(2*sram, stageNs)
		if cfg.Stages == 0 {
			memNs = 2 * sram
		}
	}
	pktNs := PacketInterArrivalNs(cfg.LinkBps)
	f := Feasibility{
		PacketNs:    pktNs,
		MemoryNs:    memNs,
		Feasible:    memNs <= pktNs,
		HeadroomPct: 100 * (pktNs - memNs) / pktNs,
	}
	return f, nil
}

// String renders the verdict.
func (f Feasibility) String() string {
	verdict := "FEASIBLE"
	if !f.Feasible {
		verdict = "INFEASIBLE"
	}
	return fmt.Sprintf("%s: needs %.1f ns/packet, budget %.1f ns (headroom %.0f%%)",
		verdict, f.MemoryNs, f.PacketNs, f.HeadroomPct)
}
