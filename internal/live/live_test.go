package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core/device"
	"repro/internal/core/sampleandhold"
	"repro/internal/flow"
)

func newDev(t *testing.T) *device.Device {
	t.Helper()
	alg, err := sampleandhold.New(sampleandhold.Config{
		Entries: 64, Threshold: 10, Oversampling: 10, Seed: 1, // p = 1
	})
	if err != nil {
		t.Fatal(err)
	}
	return device.New(alg, flow.FiveTuple{}, nil)
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil Consumer accepted")
	}
	if _, err := New(Config{Consumer: newDev(t), Interval: -time.Second}); err == nil {
		t.Fatal("negative Interval accepted")
	}
	r, err := New(Config{Consumer: newDev(t), Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("nil runner")
	}
}

func TestNewWithClock(t *testing.T) {
	dev := newDev(t)
	fixed := time.Unix(1000, 0)
	r, err := New(Config{Consumer: dev}, WithClock(func() time.Time { return fixed }))
	if err != nil {
		t.Fatal(err)
	}
	p := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	r.Packet(&p)
	r.Tick()
	if got := r.Stats().LastTick; !got.Equal(fixed) {
		t.Errorf("LastTick = %v, want %v", got, fixed)
	}
}

func TestRunUsesConfigInterval(t *testing.T) {
	dev := newDev(t)
	r, err := New(Config{Consumer: dev, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx, 0) }()
	p := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	for r.Intervals() < 2 {
		r.Packet(&p)
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if r.Intervals() < 2 {
		t.Errorf("intervals = %d, want >= 2", r.Intervals())
	}
}

func TestManualTicks(t *testing.T) {
	dev := newDev(t)
	r := NewRunner(dev)
	p := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	r.Packet(&p)
	r.Packet(&p)
	if got := r.Tick(); got != 0 {
		t.Errorf("first tick = %d", got)
	}
	r.Packet(&p)
	if got := r.Tick(); got != 1 {
		t.Errorf("second tick = %d", got)
	}
	if r.Intervals() != 2 || r.Packets() != 3 {
		t.Errorf("intervals=%d packets=%d", r.Intervals(), r.Packets())
	}
	reports := dev.Reports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Estimates[0].Bytes != 200 || reports[1].Estimates[0].Bytes != 100 {
		t.Errorf("interval bytes = %d, %d", reports[0].Estimates[0].Bytes, reports[1].Estimates[0].Bytes)
	}
}

func TestConcurrentFeedersWithTicker(t *testing.T) {
	dev := newDev(t)
	r := NewRunner(dev)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Run(ctx, 20*time.Millisecond)
	}()
	var wg sync.WaitGroup
	const feeders, perFeeder = 4, 500
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < perFeeder; i++ {
				p := flow.Packet{Size: 100, SrcIP: uint32(f), DstIP: 2, Proto: 6}
				r.Packet(&p)
				time.Sleep(100 * time.Microsecond)
			}
		}(f)
	}
	wg.Wait()
	cancel()
	<-done
	if r.Packets() != feeders*perFeeder {
		t.Errorf("packets = %d", r.Packets())
	}
	if r.Intervals() < 2 {
		t.Errorf("intervals = %d, want multiple ticks", r.Intervals())
	}
	// Every packet is in exactly one interval: totals reconcile.
	var total uint64
	for _, rep := range dev.Reports() {
		for _, e := range rep.Estimates {
			total += e.Bytes
		}
	}
	if total != feeders*perFeeder*100 {
		t.Errorf("accounted %d bytes, want %d", total, feeders*perFeeder*100)
	}
}

func TestMultiDeviceFanOut(t *testing.T) {
	d1, d2 := newDev(t), newDev(t)
	m := device.NewMulti(d1, d2)
	if len(m.Devices()) != 2 {
		t.Fatal("Devices accessor wrong")
	}
	p := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	m.Packet(&p)
	m.EndInterval(0)
	for i, d := range []*device.Device{d1, d2} {
		if len(d.Reports()) != 1 || len(d.Reports()[0].Estimates) != 1 {
			t.Errorf("device %d did not receive the packet", i)
		}
	}
}

func TestNewMultiPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMulti() did not panic")
		}
	}()
	device.NewMulti()
}

// TestReportsAndStats: the runner surfaces its wrapped consumer's reports
// and its own lock-free telemetry, so a monitor needs only the runner.
func TestReportsAndStats(t *testing.T) {
	dev := newDev(t)
	r := NewRunner(dev)
	p := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	r.Packet(&p)
	r.Packet(&p)
	before := time.Now()
	r.Tick()
	got := r.Reports()
	if len(got) != 1 || got[0].Estimates[0].Bytes != 200 {
		t.Fatalf("runner reports = %+v, want one interval with 200 bytes", got)
	}
	s := r.Stats()
	if s.Packets != 2 || s.Intervals != 1 {
		t.Errorf("stats: %d packets, %d intervals, want 2, 1", s.Packets, s.Intervals)
	}
	if s.LastTick.Before(before) {
		t.Errorf("last tick %v predates the tick call at %v", s.LastTick, before)
	}

	// A consumer with no report accumulation yields nil, not a panic.
	multi := NewRunner(device.NewMulti(newDev(t), newDev(t)))
	if rep := multi.Reports(); rep != nil {
		t.Errorf("multi-device runner reports = %v, want nil", rep)
	}
}

// TestRunSkipsEmptyFinalInterval: cancelling a runner that saw no packets
// since the last tick must not append an empty trailing report.
func TestRunSkipsEmptyFinalInterval(t *testing.T) {
	dev := newDev(t)
	r := NewRunner(dev)
	p := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	r.Packet(&p)
	r.Tick() // interval 0 closed manually; nothing arrives afterwards

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Run(ctx, time.Hour) // returns immediately on the cancelled context

	if got := len(dev.Reports()); got != 1 {
		t.Fatalf("got %d reports, want 1 (no empty trailing report)", got)
	}
	if r.Intervals() != 1 {
		t.Fatalf("intervals = %d, want 1", r.Intervals())
	}
}

// TestRunClosesNonEmptyFinalInterval: the final partial interval is still
// closed when it holds traffic.
func TestRunClosesNonEmptyFinalInterval(t *testing.T) {
	dev := newDev(t)
	r := NewRunner(dev)
	p := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	r.Packet(&p)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Run(ctx, time.Hour)

	reports := dev.Reports()
	if len(reports) != 1 || len(reports[0].Estimates) != 1 {
		t.Fatalf("got %+v, want the partial interval's single flow reported", reports)
	}
}
