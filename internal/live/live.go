// Package live drives a measurement consumer from a live packet feed,
// closing measurement intervals on wall-clock boundaries instead of trace
// timestamps. Offline replay (trace.Replay) derives interval boundaries
// from packet times; a device on a real link must close intervals even
// when the link goes quiet, which is what the Runner's ticker does.
package live

import (
	"context"
	"sync"
	"time"

	"repro/internal/flow"
	"repro/internal/trace"
)

// Runner serializes packets and interval ticks into a trace.Consumer,
// which is not otherwise safe for concurrent use. Packets may arrive from
// any goroutine; the tick source runs in its own.
type Runner struct {
	mu       sync.Mutex
	consumer trace.Consumer
	interval int
	packets  uint64
}

// NewRunner wraps a consumer (typically a *device.Device or
// *device.Multi).
func NewRunner(c trace.Consumer) *Runner {
	return &Runner{consumer: c}
}

// Packet feeds one packet; safe for concurrent use.
func (r *Runner) Packet(p *flow.Packet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consumer.Packet(p)
	r.packets++
}

// Tick closes the current measurement interval and returns its index.
func (r *Runner) Tick() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.interval
	r.consumer.EndInterval(i)
	r.interval++
	return i
}

// Intervals returns how many intervals have been closed.
func (r *Runner) Intervals() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.interval
}

// Packets returns how many packets have been fed.
func (r *Runner) Packets() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.packets
}

// Run ticks every interval of wall-clock time until the context is
// cancelled, then closes one final partial interval and returns.
func (r *Runner) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			r.Tick()
			return
		case <-t.C:
			r.Tick()
		}
	}
}
