// Package live drives a measurement consumer from a live packet feed,
// closing measurement intervals on wall-clock boundaries instead of trace
// timestamps. Offline replay (trace.Replay) derives interval boundaries
// from packet times; a device on a real link must close intervals even
// when the link goes quiet, which is what the Runner's ticker does.
package live

import (
	"context"
	"sync"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config configures a Runner.
type Config struct {
	// Consumer receives packets and interval boundaries (typically a
	// *device.Device, *device.Multi, a pipeline or a stage graph).
	Consumer trace.Consumer
	// Interval is the default wall-clock interval length used when Run is
	// called with a zero interval. Optional: zero means Run's argument is
	// always used.
	Interval time.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Consumer == nil {
		return cfgerr.New("live", "Consumer", "is required")
	}
	if c.Interval < 0 {
		return cfgerr.New("live", "Interval", "must not be negative, got %v", c.Interval)
	}
	return nil
}

// Option customizes a Runner beyond its Config.
type Option func(*Runner)

// WithClock overrides the runner's tick timestamp source (tests).
func WithClock(now func() time.Time) Option {
	return func(r *Runner) { r.now = now }
}

// Reporter is a consumer that accumulates interval reports; Device and
// Pipeline both implement it.
type Reporter interface {
	Reports() []core.IntervalReport
}

// Runner serializes packets and interval ticks into a trace.Consumer,
// which is not otherwise safe for concurrent use. Packets may arrive from
// any goroutine; the tick source runs in its own.
type Runner struct {
	mu          sync.Mutex
	consumer    trace.Consumer
	intervalLen time.Duration
	now         func() time.Time
	interval    int
	packets     uint64
	// sinceTick counts packets in the interval currently open, so Run can
	// skip closing an empty final partial interval.
	sinceTick uint64
	tel       telemetry.Runner
}

// New validates cfg and builds a runner.
func New(cfg Config, opts ...Option) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{consumer: cfg.Consumer, intervalLen: cfg.Interval, now: time.Now}
	for _, opt := range opts {
		opt(r)
	}
	return r, nil
}

// NewRunner wraps a consumer (typically a *device.Device or *device.Multi);
// it is the no-configuration shorthand for New(Config{Consumer: c}).
func NewRunner(c trace.Consumer) *Runner {
	return &Runner{consumer: c, now: time.Now}
}

// Packet feeds one packet; safe for concurrent use.
func (r *Runner) Packet(p *flow.Packet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consumer.Packet(p)
	r.packets++
	r.sinceTick++
	r.tel.ObservePacket()
}

// Tick closes the current measurement interval and returns its index.
func (r *Runner) Tick() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.interval
	r.consumer.EndInterval(i)
	r.interval++
	r.sinceTick = 0
	r.tel.ObserveTick(r.now())
	return i
}

// Intervals returns how many intervals have been closed.
func (r *Runner) Intervals() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.interval
}

// Packets returns how many packets have been fed.
func (r *Runner) Packets() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.packets
}

// Reports returns the wrapped consumer's accumulated interval reports, so
// callers no longer need to hold a second reference to the device just to
// read its output. It returns nil when the consumer does not accumulate
// reports (e.g. a MultiDevice — read each member device instead).
func (r *Runner) Reports() []core.IntervalReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rep, ok := r.consumer.(Reporter); ok {
		return rep.Reports()
	}
	return nil
}

// Stats returns the runner's live counters. Unlike Packets/Intervals it
// does not take the runner lock, so it is safe to call from a monitoring
// goroutine (an expvar handler) without contending with the packet path.
func (r *Runner) Stats() telemetry.RunnerSnapshot {
	return r.tel.Snapshot()
}

// Run ticks every interval of wall-clock time until the context is
// cancelled, then closes one final partial interval — skipped when no
// packet arrived since the last tick, so cancellation right after a
// boundary does not append an empty trailing report. A zero interval
// falls back to Config.Interval.
func (r *Runner) Run(ctx context.Context, interval time.Duration) {
	if interval == 0 {
		interval = r.intervalLen
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			r.mu.Lock()
			empty := r.sinceTick == 0
			r.mu.Unlock()
			if !empty {
				r.Tick()
			}
			return
		case <-t.C:
			r.Tick()
		}
	}
}
