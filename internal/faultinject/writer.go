package faultinject

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// File is the surface of a journal segment file the disk fault injector
// wraps: sequential writes, fsync, close. It matches the reliable
// transport's SpoolFile structurally, so a Writer slots straight into a
// SpoolWrap / JournalConfig.Wrap hook.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// WriterSchedule says when the wrapped file misbehaves. Faults count calls
// (1-based), not wall-clock time, so a given append sequence always fails
// at the same record and tests replay identically. The zero value injects
// nothing.
type WriterSchedule struct {
	// ShortWriteAt, when non-zero, makes the Nth Write persist only the
	// first half of its buffer and return io.ErrShortWrite — the torn final
	// record: bytes are genuinely on disk, but the record's CRC cannot
	// match, so recovery must truncate it.
	ShortWriteAt uint64
	// ErrWriteAt, when non-zero, fails the Nth Write outright, persisting
	// nothing.
	ErrWriteAt uint64
	// ErrSyncAt, when non-zero, fails the Nth Sync.
	ErrSyncAt uint64
	// SyncDelay sleeps before every fsync, widening the kill-during-fsync
	// window for the subprocess crash harness.
	SyncDelay time.Duration
	// WriteDelay sleeps before every write (slow-disk model).
	WriteDelay time.Duration
}

// Writer wraps a journal file with deterministic disk faults. It implements
// File and io.ReaderFrom. Not safe for concurrent use — journals serialize
// appends under their own lock.
type Writer struct {
	f     File
	sched WriterSchedule

	writes uint64
	syncs  uint64
}

// NewWriter wraps f with the schedule.
func NewWriter(f File, sched WriterSchedule) *Writer {
	return &Writer{f: f, sched: sched}
}

// Writes and Syncs report how many calls the wrapper has seen, so tests can
// assert a fault actually fired.
func (w *Writer) Writes() uint64 { return w.writes }
func (w *Writer) Syncs() uint64  { return w.syncs }

// Write implements io.Writer with the scheduled faults.
func (w *Writer) Write(p []byte) (int, error) {
	w.writes++
	if w.sched.WriteDelay > 0 {
		time.Sleep(w.sched.WriteDelay)
	}
	if w.sched.ErrWriteAt != 0 && w.writes == w.sched.ErrWriteAt {
		return 0, fmt.Errorf("faultinject: scheduled write error at write %d", w.writes)
	}
	if w.sched.ShortWriteAt != 0 && w.writes == w.sched.ShortWriteAt {
		n, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return w.f.Write(p)
}

// ReadFrom implements io.ReaderFrom through the fault-injecting Write, so
// copy paths hit the same schedule as direct appends.
func (w *Writer) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	buf := make([]byte, 32<<10)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			wn, werr := w.Write(buf[:n])
			total += int64(wn)
			if werr != nil {
				return total, werr
			}
			if wn < n {
				return total, io.ErrShortWrite
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}

// Sync implements File with the scheduled faults.
func (w *Writer) Sync() error {
	w.syncs++
	if w.sched.SyncDelay > 0 {
		time.Sleep(w.sched.SyncDelay)
	}
	if w.sched.ErrSyncAt != 0 && w.syncs == w.sched.ErrSyncAt {
		return fmt.Errorf("faultinject: scheduled fsync error at sync %d", w.syncs)
	}
	return w.f.Sync()
}

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// ParseWriterSchedule parses a comma-separated fault spec like
// "syncdelay=5ms,shortwrite=3" — the command-line form the binaries expose
// for the crash harness. Keys: shortwrite, errwrite, errsync (call
// numbers), syncdelay, writedelay (durations). An empty spec is the zero
// schedule.
func ParseWriterSchedule(spec string) (WriterSchedule, error) {
	var s WriterSchedule
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return s, fmt.Errorf("faultinject: bad fault %q (want key=value)", part)
		}
		switch k {
		case "shortwrite", "errwrite", "errsync":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return s, fmt.Errorf("faultinject: bad %s count %q: %v", k, v, err)
			}
			switch k {
			case "shortwrite":
				s.ShortWriteAt = n
			case "errwrite":
				s.ErrWriteAt = n
			case "errsync":
				s.ErrSyncAt = n
			}
		case "syncdelay", "writedelay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return s, fmt.Errorf("faultinject: bad %s duration %q: %v", k, v, err)
			}
			if k == "syncdelay" {
				s.SyncDelay = d
			} else {
				s.WriteDelay = d
			}
		default:
			return s, fmt.Errorf("faultinject: unknown fault key %q", k)
		}
	}
	return s, nil
}
