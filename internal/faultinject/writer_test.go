package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// memFile is an in-memory File for exercising the fault schedule.
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

func TestWriterShortWrite(t *testing.T) {
	f := &memFile{}
	w := NewWriter(f, WriterSchedule{ShortWriteAt: 2})

	if n, err := w.Write([]byte("aaaa")); n != 4 || err != nil {
		t.Fatalf("write 1: got (%d, %v), want (4, nil)", n, err)
	}
	n, err := w.Write([]byte("bbbb"))
	if n != 2 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("write 2: got (%d, %v), want (2, ErrShortWrite)", n, err)
	}
	// The torn half is genuinely on disk — that is the point.
	if got := f.buf.String(); got != "aaaabb" {
		t.Fatalf("persisted %q, want %q", got, "aaaabb")
	}
	if w.Writes() != 2 {
		t.Fatalf("Writes() = %d, want 2", w.Writes())
	}
}

func TestWriterErrWriteAndSync(t *testing.T) {
	f := &memFile{}
	w := NewWriter(f, WriterSchedule{ErrWriteAt: 1, ErrSyncAt: 2})

	if n, err := w.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("write 1: got (%d, %v), want scheduled error", n, err)
	}
	if f.buf.Len() != 0 {
		t.Fatalf("failed write persisted %d bytes", f.buf.Len())
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync 2: want scheduled error")
	}
	if f.syncs != 1 {
		t.Fatalf("underlying syncs = %d, want 1 (faulted sync must not reach disk)", f.syncs)
	}
	if err := w.Close(); err != nil || !f.closed {
		t.Fatalf("close: err=%v closed=%v", err, f.closed)
	}
}

func TestWriterReadFrom(t *testing.T) {
	f := &memFile{}
	w := NewWriter(f, WriterSchedule{})
	n, err := w.ReadFrom(strings.NewReader("hello journal"))
	if err != nil || n != 13 {
		t.Fatalf("ReadFrom: got (%d, %v), want (13, nil)", n, err)
	}
	if got := f.buf.String(); got != "hello journal" {
		t.Fatalf("persisted %q", got)
	}
}

func TestParseWriterSchedule(t *testing.T) {
	s, err := ParseWriterSchedule("syncdelay=5ms,shortwrite=3,errsync=7")
	if err != nil {
		t.Fatal(err)
	}
	want := WriterSchedule{ShortWriteAt: 3, ErrSyncAt: 7, SyncDelay: 5 * time.Millisecond}
	if s != want {
		t.Fatalf("got %+v, want %+v", s, want)
	}
	if s, err := ParseWriterSchedule(""); err != nil || s != (WriterSchedule{}) {
		t.Fatalf("empty spec: got (%+v, %v)", s, err)
	}
	for _, bad := range []string{"nope=1", "shortwrite=x", "syncdelay=fast", "loose"} {
		if _, err := ParseWriterSchedule(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}
