// Package faultinject wraps a core.Algorithm with deterministic fault
// injection: panics, delays and estimate corruption on a fixed schedule.
// It exists for the chaos tests — proving that the pipeline's supervised
// lanes keep serving, reporting and closing cleanly through algorithm
// failures — and for rehearsing operational procedures (what does /healthz
// show when a lane dies?) without waiting for a real bug.
//
// The schedule counts packets and intervals, not wall-clock time, so a
// given trace always fails at the same point; tests stay reproducible
// under -race and on loaded CI machines.
package faultinject

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/memmodel"
)

// Corrupt returns a copy of data with flips bytes inverted at
// seed-determined positions — the wire-level counterpart of
// CorruptEveryEstimates, for feeding damaged export datagrams and frames
// to the collection-side parsers. The same (data, seed, flips) always
// yields the same corruption, so a test that fails replays identically.
func Corrupt(data []byte, seed int64, flips int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < flips; i++ {
		out[rng.Intn(len(out))] ^= 0xff
	}
	return out
}

// Truncate returns the leading fraction frac (clamped to [0, 1]) of data —
// a deterministic model of a datagram cut short in flight.
func Truncate(data []byte, frac float64) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(data)) * frac)
	return append([]byte(nil), data[:n]...)
}

// Schedule says when the wrapped algorithm misbehaves. The zero value
// injects nothing.
type Schedule struct {
	// PanicAtPacket, when non-zero, panics while processing the Nth packet
	// (1-based, counted across Process and ProcessBatch).
	PanicAtPacket uint64
	// PanicAtInterval, when non-zero, panics in the Nth EndInterval call
	// (1-based).
	PanicAtInterval int
	// DelayEveryPackets, when non-zero with a non-zero Delay, sleeps Delay
	// before every Nth packet — the cheap way to make a lane too slow for
	// its queue in overload tests.
	DelayEveryPackets uint64
	// Delay is the sleep duration for DelayEveryPackets.
	Delay time.Duration
	// CorruptEveryEstimates, when non-zero, corrupts every Nth estimate
	// returned by EndInterval (Bytes doubled plus one), for testing
	// downstream consumers' tolerance of bad reports.
	CorruptEveryEstimates int
}

// Algorithm wraps a core.Algorithm with fault injection. It implements
// core.BatchAlgorithm so it slots into the pipeline's batched path; the
// batch is processed packet by packet so PanicAtPacket is exact.
type Algorithm struct {
	inner core.Algorithm
	sched Schedule

	packets   uint64
	intervals int
}

// Wrap wraps inner with the schedule.
func Wrap(inner core.Algorithm, sched Schedule) *Algorithm {
	return &Algorithm{inner: inner, sched: sched}
}

// Inner returns the wrapped algorithm.
func (a *Algorithm) Inner() core.Algorithm { return a.inner }

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return "faultinject(" + a.inner.Name() + ")" }

// step advances the packet counter and injects any packet-scheduled fault.
func (a *Algorithm) step() {
	a.packets++
	if a.sched.DelayEveryPackets != 0 && a.sched.Delay > 0 && a.packets%a.sched.DelayEveryPackets == 0 {
		time.Sleep(a.sched.Delay)
	}
	if a.sched.PanicAtPacket != 0 && a.packets == a.sched.PanicAtPacket {
		panic(fmt.Sprintf("faultinject: scheduled panic at packet %d", a.packets))
	}
}

// Process implements core.Algorithm.
func (a *Algorithm) Process(key flow.Key, size uint32) {
	a.step()
	a.inner.Process(key, size)
}

// ProcessBatch implements core.BatchAlgorithm, packet by packet so the
// panic schedule is exact within a batch.
func (a *Algorithm) ProcessBatch(keys []flow.Key, sizes []uint32) {
	for i, k := range keys {
		a.step()
		a.inner.Process(k, sizes[i])
	}
}

// EndInterval implements core.Algorithm.
func (a *Algorithm) EndInterval() []core.Estimate {
	a.intervals++
	if a.sched.PanicAtInterval != 0 && a.intervals == a.sched.PanicAtInterval {
		panic(fmt.Sprintf("faultinject: scheduled panic at interval %d", a.intervals))
	}
	ests := a.inner.EndInterval()
	if n := a.sched.CorruptEveryEstimates; n > 0 {
		for i := range ests {
			if (i+1)%n == 0 {
				ests[i].Bytes = ests[i].Bytes*2 + 1
				ests[i].Exact = false
			}
		}
	}
	return ests
}

// EntriesUsed implements core.Algorithm.
func (a *Algorithm) EntriesUsed() int { return a.inner.EntriesUsed() }

// Capacity implements core.Algorithm.
func (a *Algorithm) Capacity() int { return a.inner.Capacity() }

// Threshold implements core.Algorithm.
func (a *Algorithm) Threshold() uint64 { return a.inner.Threshold() }

// SetThreshold implements core.Algorithm.
func (a *Algorithm) SetThreshold(t uint64) { a.inner.SetThreshold(t) }

// Mem implements core.Algorithm.
func (a *Algorithm) Mem() *memmodel.Counter { return a.inner.Mem() }

// EntriesRejected implements core.MemoryPressure when the inner algorithm
// does, and reports zero otherwise.
func (a *Algorithm) EntriesRejected() uint64 {
	if mp, ok := a.inner.(core.MemoryPressure); ok {
		return mp.EntriesRejected()
	}
	return 0
}
