package faultinject

import (
	"testing"
	"time"

	"repro/internal/core/sampleandhold"
	"repro/internal/flow"
)

func newInner(t *testing.T) *sampleandhold.SampleAndHold {
	t.Helper()
	sh, err := sampleandhold.New(sampleandhold.Config{
		Entries: 64, Threshold: 10, Oversampling: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestPanicAtPacketIsExact(t *testing.T) {
	a := Wrap(newInner(t), Schedule{PanicAtPacket: 5})
	for i := 0; i < 4; i++ {
		a.Process(flow.Key{Lo: uint64(i)}, 100)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("packet 5 did not panic")
		}
	}()
	a.Process(flow.Key{Lo: 5}, 100)
}

func TestPanicAtPacketInsideBatch(t *testing.T) {
	a := Wrap(newInner(t), Schedule{PanicAtPacket: 3})
	keys := []flow.Key{{Lo: 1}, {Lo: 2}, {Lo: 3}, {Lo: 4}}
	sizes := []uint32{10, 10, 10, 10}
	defer func() {
		if recover() == nil {
			t.Fatal("batch did not panic")
		}
		// Packets before the scheduled one were processed.
		if got := a.Inner().Mem().Packets; got != 2 {
			t.Fatalf("inner processed %d packets before panic, want 2", got)
		}
	}()
	a.ProcessBatch(keys, sizes)
}

func TestPanicAtInterval(t *testing.T) {
	a := Wrap(newInner(t), Schedule{PanicAtInterval: 2})
	a.Process(flow.Key{Lo: 1}, 100)
	if ests := a.EndInterval(); len(ests) == 0 {
		t.Fatal("first interval reported nothing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("interval 2 did not panic")
		}
	}()
	a.EndInterval()
}

func TestCorruptEstimates(t *testing.T) {
	a := Wrap(newInner(t), Schedule{CorruptEveryEstimates: 2})
	for i := 0; i < 4; i++ {
		a.Process(flow.Key{Lo: uint64(i)}, 1000)
	}
	ests := a.EndInterval()
	if len(ests) != 4 {
		t.Fatalf("got %d estimates", len(ests))
	}
	// Every 2nd estimate is corrupted to 2x+1; the rest are exact counts.
	for i, e := range ests {
		if (i+1)%2 == 0 {
			if e.Bytes != 2001 {
				t.Fatalf("estimate %d = %d, want corrupted 2001", i, e.Bytes)
			}
		} else if e.Bytes != 1000 {
			t.Fatalf("estimate %d = %d, want 1000", i, e.Bytes)
		}
	}
}

func TestDelaySchedule(t *testing.T) {
	a := Wrap(newInner(t), Schedule{DelayEveryPackets: 2, Delay: time.Millisecond})
	start := time.Now()
	for i := 0; i < 6; i++ {
		a.Process(flow.Key{Lo: uint64(i)}, 10)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("6 packets with delay every 2 took %v, want >= 3ms", d)
	}
}

func TestZeroScheduleIsTransparent(t *testing.T) {
	inner := newInner(t)
	a := Wrap(inner, Schedule{})
	a.Process(flow.Key{Lo: 1}, 500)
	if a.EntriesUsed() != inner.EntriesUsed() || a.Capacity() != 64 || a.Threshold() != 10 {
		t.Fatal("accessors do not pass through")
	}
	if a.EntriesRejected() != 0 {
		t.Fatal("unexpected rejections")
	}
	if ests := a.EndInterval(); len(ests) != 1 || ests[0].Bytes != 500 {
		t.Fatalf("estimates not passed through: %+v", ests)
	}
}
