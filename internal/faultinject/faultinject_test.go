package faultinject

import (
	"testing"
	"time"

	"repro/internal/core/sampleandhold"
	"repro/internal/flow"
)

func newInner(t *testing.T) *sampleandhold.SampleAndHold {
	t.Helper()
	sh, err := sampleandhold.New(sampleandhold.Config{
		Entries: 64, Threshold: 10, Oversampling: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestPanicAtPacketIsExact(t *testing.T) {
	a := Wrap(newInner(t), Schedule{PanicAtPacket: 5})
	for i := 0; i < 4; i++ {
		a.Process(flow.Key{Lo: uint64(i)}, 100)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("packet 5 did not panic")
		}
	}()
	a.Process(flow.Key{Lo: 5}, 100)
}

func TestPanicAtPacketInsideBatch(t *testing.T) {
	a := Wrap(newInner(t), Schedule{PanicAtPacket: 3})
	keys := []flow.Key{{Lo: 1}, {Lo: 2}, {Lo: 3}, {Lo: 4}}
	sizes := []uint32{10, 10, 10, 10}
	defer func() {
		if recover() == nil {
			t.Fatal("batch did not panic")
		}
		// Packets before the scheduled one were processed.
		if got := a.Inner().Mem().Packets; got != 2 {
			t.Fatalf("inner processed %d packets before panic, want 2", got)
		}
	}()
	a.ProcessBatch(keys, sizes)
}

func TestPanicAtInterval(t *testing.T) {
	a := Wrap(newInner(t), Schedule{PanicAtInterval: 2})
	a.Process(flow.Key{Lo: 1}, 100)
	if ests := a.EndInterval(); len(ests) == 0 {
		t.Fatal("first interval reported nothing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("interval 2 did not panic")
		}
	}()
	a.EndInterval()
}

func TestCorruptEstimates(t *testing.T) {
	a := Wrap(newInner(t), Schedule{CorruptEveryEstimates: 2})
	for i := 0; i < 4; i++ {
		a.Process(flow.Key{Lo: uint64(i)}, 1000)
	}
	ests := a.EndInterval()
	if len(ests) != 4 {
		t.Fatalf("got %d estimates", len(ests))
	}
	// Every 2nd estimate is corrupted to 2x+1; the rest are exact counts.
	for i, e := range ests {
		if (i+1)%2 == 0 {
			if e.Bytes != 2001 {
				t.Fatalf("estimate %d = %d, want corrupted 2001", i, e.Bytes)
			}
		} else if e.Bytes != 1000 {
			t.Fatalf("estimate %d = %d, want 1000", i, e.Bytes)
		}
	}
}

func TestDelaySchedule(t *testing.T) {
	a := Wrap(newInner(t), Schedule{DelayEveryPackets: 2, Delay: time.Millisecond})
	start := time.Now()
	for i := 0; i < 6; i++ {
		a.Process(flow.Key{Lo: uint64(i)}, 10)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("6 packets with delay every 2 took %v, want >= 3ms", d)
	}
}

func TestCorruptIsDeterministicAndNonDestructive(t *testing.T) {
	orig := []byte("the quick brown fox jumps over the lazy dog")
	input := append([]byte(nil), orig...)
	a := Corrupt(input, 42, 5)
	b := Corrupt(input, 42, 5)
	if string(a) != string(b) {
		t.Error("same (data, seed, flips) produced different corruption")
	}
	if string(input) != string(orig) {
		t.Error("Corrupt mutated its input")
	}
	if len(a) != len(orig) {
		t.Errorf("Corrupt changed length: %d -> %d", len(orig), len(a))
	}
	var flipped int
	for i := range a {
		if a[i] != orig[i] {
			flipped++
			if a[i] != orig[i]^0xff {
				t.Errorf("byte %d changed to %#x, not an inversion of %#x", i, a[i], orig[i])
			}
		}
	}
	// Positions may repeat (double-inversion restores the byte), so the
	// changed count is bounded by, not equal to, the flip count.
	if flipped == 0 || flipped > 5 {
		t.Errorf("%d bytes changed, want 1..5", flipped)
	}
	if c := Corrupt(input, 43, 5); string(c) == string(a) {
		t.Error("different seeds produced identical corruption")
	}
	if out := Corrupt(nil, 1, 3); len(out) != 0 {
		t.Errorf("Corrupt(nil) = %v", out)
	}
}

func TestTruncateFractions(t *testing.T) {
	data := []byte("0123456789")
	cases := []struct {
		frac float64
		want string
	}{
		{-1, ""}, {0, ""}, {0.5, "01234"}, {0.95, "012345678"}, {1, "0123456789"}, {2, "0123456789"},
	}
	for _, c := range cases {
		if got := Truncate(data, c.frac); string(got) != c.want {
			t.Errorf("Truncate(%.2f) = %q, want %q", c.frac, got, c.want)
		}
	}
	out := Truncate(data, 1)
	out[0] = 'x'
	if data[0] != '0' {
		t.Error("Truncate returned an alias of its input")
	}
}

func TestZeroScheduleIsTransparent(t *testing.T) {
	inner := newInner(t)
	a := Wrap(inner, Schedule{})
	a.Process(flow.Key{Lo: 1}, 500)
	if a.EntriesUsed() != inner.EntriesUsed() || a.Capacity() != 64 || a.Threshold() != 10 {
		t.Fatal("accessors do not pass through")
	}
	if a.EntriesRejected() != 0 {
		t.Fatal("unexpected rejections")
	}
	if ests := a.EndInterval(); len(ests) != 1 || ests[0].Bytes != 500 {
		t.Fatalf("estimates not passed through: %+v", ests)
	}
}
