package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1, 1.2} {
		z := NewZipf(1000, alpha)
		sum := 0.0
		for i := 1; i <= z.N(); i++ {
			sum += z.P(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%g: probabilities sum to %g", alpha, sum)
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z := NewZipf(500, 1)
	for i := 2; i <= z.N(); i++ {
		if z.P(i) > z.P(i-1)+1e-12 {
			t.Fatalf("P(%d)=%g > P(%d)=%g", i, z.P(i), i-1, z.P(i-1))
		}
	}
}

func TestZipfAlphaOneShape(t *testing.T) {
	// For alpha=1 over n ranks, P(1)/P(n) = n exactly.
	z := NewZipf(100, 1)
	ratio := z.P(1) / z.P(100)
	if math.Abs(ratio-100) > 1e-6 {
		t.Errorf("P(1)/P(100) = %g, want 100", ratio)
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 1; i <= 10; i++ {
		if math.Abs(z.P(i)-0.1) > 1e-9 {
			t.Errorf("alpha=0: P(%d) = %g, want 0.1", i, z.P(i))
		}
	}
}

func TestZipfRankBoundsAndFrequency(t *testing.T) {
	z := NewZipf(50, 1)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 51)
	const n = 200000
	for i := 0; i < n; i++ {
		r := z.Rank(rng)
		if r < 1 || r > 50 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Empirical frequency of rank 1 should be near P(1) = 1/H_50 ~ 0.2227.
	got := float64(counts[1]) / n
	want := z.P(1)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("rank-1 frequency %g, want ~%g", got, want)
	}
	// Rank 1 must be sampled more often than rank 50.
	if counts[1] <= counts[50] {
		t.Errorf("counts[1]=%d <= counts[50]=%d", counts[1], counts[50])
	}
}

func TestZipfPOutOfRange(t *testing.T) {
	z := NewZipf(10, 1)
	if z.P(0) != 0 || z.P(11) != 0 || z.P(-3) != 0 {
		t.Error("out-of-range ranks should have probability 0")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n     int
		alpha float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.n, tc.alpha)
				}
			}()
			NewZipf(tc.n, tc.alpha)
		}()
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(10, 1)
	if len(w) != 10 {
		t.Fatalf("len = %d", len(w))
	}
	sum := 0.0
	for i, x := range w {
		if i > 0 && x > w[i-1]+1e-12 {
			t.Errorf("weights not decreasing at %d", i)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
}

func TestPacketSizesMeanNear500(t *testing.T) {
	ps := DefaultPacketSizes()
	m := ps.Mean()
	if m < 400 || m > 650 {
		t.Errorf("default mean packet size %g outside [400, 650]", m)
	}
}

func TestPacketSizesSampleMembership(t *testing.T) {
	ps := DefaultPacketSizes()
	rng := rand.New(rand.NewSource(2))
	valid := map[uint32]bool{40: true, 576: true, 1500: true}
	counts := map[uint32]int{}
	for i := 0; i < 10000; i++ {
		s := ps.Sample(rng)
		if !valid[s] {
			t.Fatalf("sampled invalid size %d", s)
		}
		counts[s]++
	}
	// 50% weight on 40-byte packets.
	if f := float64(counts[40]) / 10000; math.Abs(f-0.5) > 0.03 {
		t.Errorf("40-byte frequency %g, want ~0.5", f)
	}
}

func TestPacketSizesEmpiricalMean(t *testing.T) {
	ps := DefaultPacketSizes()
	rng := rand.New(rand.NewSource(3))
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(ps.Sample(rng))
	}
	if math.Abs(sum/n-ps.Mean()) > 10 {
		t.Errorf("empirical mean %g vs analytic %g", sum/n, ps.Mean())
	}
}

func TestPacketSizesMax(t *testing.T) {
	ps := NewPacketSizes([]uint32{100, 1500, 576}, []float64{1, 1, 1})
	if ps.Max() != 1500 {
		t.Errorf("Max = %d", ps.Max())
	}
}

func TestNewPacketSizesPanics(t *testing.T) {
	cases := []struct {
		sizes   []uint32
		weights []float64
	}{
		{nil, nil},
		{[]uint32{40}, []float64{1, 2}},
		{[]uint32{40}, []float64{0}},
		{[]uint32{40, 576}, []float64{1, -1}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewPacketSizes(c.sizes, c.weights)
		}()
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := Exponential(rng, 2.5)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	if m := sum / n; math.Abs(m-2.5) > 0.05 {
		t.Errorf("mean %g, want ~2.5", m)
	}
}
