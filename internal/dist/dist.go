// Package dist provides the probability distributions the synthetic trace
// generator draws from: bounded Zipf distributions for flow sizes (the
// paper's analysis uses Zipf with parameter alpha = 1 as the realistic
// traffic model) and an empirical Internet packet-size mix.
package dist

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf is a bounded Zipf distribution over ranks 1..N with exponent alpha:
// P(rank = i) is proportional to 1/i^alpha. Unlike math/rand's Zipf it
// supports alpha <= 1 (the paper's alpha = 1 case), using an inverse-CDF
// table.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i+1)
}

// NewZipf builds a bounded Zipf distribution over n ranks with the given
// exponent. It panics if n < 1 or alpha < 0.
func NewZipf(n int, alpha float64) *Zipf {
	if n < 1 {
		panic("dist: Zipf needs n >= 1")
	}
	if alpha < 0 {
		panic("dist: Zipf needs alpha >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws a rank in [1, N] using rng.
func (z *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// P returns the probability of rank i (1-based).
func (z *Zipf) P(i int) float64 {
	if i < 1 || i > len(z.cdf) {
		return 0
	}
	if i == 1 {
		return z.cdf[0]
	}
	return z.cdf[i-1] - z.cdf[i-2]
}

// Weights returns the normalized probability of every rank, largest first.
// ZipfWeights(n, 1)[0] is the share of the heaviest flow.
func ZipfWeights(n int, alpha float64) []float64 {
	z := NewZipf(n, alpha)
	w := make([]float64, n)
	for i := range w {
		w[i] = z.P(i + 1)
	}
	return w
}

// PacketSizes is an empirical packet-size distribution. Internet traffic is
// strongly trimodal (TCP acks at 40 B, legacy MTU-constrained packets around
// 576 B, Ethernet MTU packets at 1500 B); the mix below yields a mean close
// to the ~500 B average packet size the paper uses in its examples.
type PacketSizes struct {
	sizes []uint32
	cdf   []float64
}

// DefaultPacketSizes returns the trimodal Internet packet size mix.
func DefaultPacketSizes() *PacketSizes {
	return NewPacketSizes(
		[]uint32{40, 576, 1500},
		[]float64{0.50, 0.25, 0.25},
	)
}

// NewPacketSizes builds a discrete packet-size distribution from sizes and
// matching weights. Weights need not sum to one; they are normalized. It
// panics on length mismatch, empty input, or non-positive weights.
func NewPacketSizes(sizes []uint32, weights []float64) *PacketSizes {
	if len(sizes) == 0 || len(sizes) != len(weights) {
		panic("dist: sizes and weights must be non-empty and same length")
	}
	sum := 0.0
	for _, w := range weights {
		if w <= 0 {
			panic("dist: weights must be positive")
		}
		sum += w
	}
	cdf := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1
	return &PacketSizes{sizes: append([]uint32(nil), sizes...), cdf: cdf}
}

// Sample draws a packet size.
func (ps *PacketSizes) Sample(rng *rand.Rand) uint32 {
	u := rng.Float64()
	return ps.sizes[sort.SearchFloat64s(ps.cdf, u)]
}

// Mean returns the expected packet size.
func (ps *PacketSizes) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, s := range ps.sizes {
		m += float64(s) * (ps.cdf[i] - prev)
		prev = ps.cdf[i]
	}
	return m
}

// Max returns the largest packet size in the distribution (the paper's
// y_max in Theorem 2).
func (ps *PacketSizes) Max() uint32 {
	max := ps.sizes[0]
	for _, s := range ps.sizes[1:] {
		if s > max {
			max = s
		}
	}
	return max
}

// Exponential draws an exponentially distributed value with the given mean.
// Used for flow inter-arrival times in the generator.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}
