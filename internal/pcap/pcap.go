// Package pcap reads and writes the classic libpcap capture format, built
// from scratch on the standard library. It converts between capture files
// and the flow.Packet model, so the measurement tools can ingest real
// captures (the paper's traces were packet captures from CAIDA and NLANR)
// and export synthetic traces for inspection with standard tools.
//
// Only what traffic measurement needs is implemented: Ethernet + IPv4 with
// TCP/UDP (ports parsed) or any other IP protocol (ports zero). Written
// files store packet headers only (snap length 54), like the header-only
// traces the paper used; the original wire length is preserved in each
// record header, which is what the byte counters consume.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/flow"
)

const (
	magicUsecLE = 0xa1b2c3d4 // standard magic, microsecond timestamps
	magicNsecLE = 0xa1b23c4d // nanosecond-timestamp variant

	versionMajor = 2
	versionMinor = 4

	linkTypeEthernet = 1

	etherHeaderLen = 14
	etherTypeIPv4  = 0x0800
	ipv4HeaderLen  = 20
	tcpHeaderLen   = 20
	udpHeaderLen   = 8

	protoTCP = 6
	protoUDP = 17

	// SnapLen is the capture length for written files: enough for Ethernet,
	// IPv4 and the largest transport header we synthesize.
	SnapLen = etherHeaderLen + ipv4HeaderLen + tcpHeaderLen
)

// Writer emits a pcap file of synthesized header-only packets.
type Writer struct {
	w   *bufio.Writer
	buf [SnapLen]byte
}

// NewWriter writes a pcap global header to w (little-endian, microsecond
// timestamps, Ethernet link type).
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	for _, v := range []any{
		uint32(magicUsecLE),
		uint16(versionMajor), uint16(versionMinor),
		int32(0),  // thiszone
		uint32(0), // sigfigs
		uint32(SnapLen),
		uint32(linkTypeEthernet),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw}, nil
}

// WritePacket encodes one packet: record header with the true wire length,
// then synthesized Ethernet/IPv4/transport headers.
func (w *Writer) WritePacket(p *flow.Packet) error {
	payload := w.buf[:0]
	// Ethernet header: zero MACs, IPv4 ethertype.
	payload = append(payload, make([]byte, 12)...)
	payload = binary.BigEndian.AppendUint16(payload, etherTypeIPv4)

	totalIP := p.Size
	if totalIP < ipv4HeaderLen {
		totalIP = ipv4HeaderLen
	}
	if totalIP > 0xffff {
		totalIP = 0xffff
	}
	// IPv4 header.
	payload = append(payload, 0x45, 0) // version 4, IHL 5, TOS 0
	payload = binary.BigEndian.AppendUint16(payload, uint16(totalIP))
	payload = append(payload, 0, 0, 0, 0) // id, flags+fragment
	payload = append(payload, 64, p.Proto, 0, 0)
	payload = binary.BigEndian.AppendUint32(payload, p.SrcIP)
	payload = binary.BigEndian.AppendUint32(payload, p.DstIP)

	switch p.Proto {
	case protoTCP:
		payload = binary.BigEndian.AppendUint16(payload, p.SrcPort)
		payload = binary.BigEndian.AppendUint16(payload, p.DstPort)
		payload = append(payload, make([]byte, 8)...) // seq, ack
		payload = append(payload, 0x50, 0)            // data offset 5, flags
		payload = append(payload, make([]byte, 6)...) // window, csum, urg
	case protoUDP:
		payload = binary.BigEndian.AppendUint16(payload, p.SrcPort)
		payload = binary.BigEndian.AppendUint16(payload, p.DstPort)
		payload = binary.BigEndian.AppendUint16(payload, uint16(totalIP-ipv4HeaderLen))
		payload = append(payload, 0, 0) // checksum
	}

	origLen := p.Size + etherHeaderLen
	ts := p.Time
	for _, v := range []uint32{
		uint32(ts / time.Second),
		uint32(ts % time.Second / time.Microsecond),
		uint32(len(payload)),
		origLen,
	} {
		if err := binary.Write(w.w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	_, err := w.w.Write(payload)
	return err
}

// Flush writes buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses a pcap file into flow.Packets.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nanos   bool
	snapLen uint32
	buf     []byte
}

// NewReader parses the pcap global header. Both byte orders and both the
// microsecond and nanosecond magics are accepted; the link type must be
// Ethernet.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magicBytes [4]byte
	if _, err := io.ReadFull(br, magicBytes[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading magic: %w", err)
	}
	le := binary.LittleEndian.Uint32(magicBytes[:])
	be := binary.BigEndian.Uint32(magicBytes[:])
	rd := &Reader{r: br}
	switch {
	case le == magicUsecLE:
		rd.order = binary.LittleEndian
	case le == magicNsecLE:
		rd.order, rd.nanos = binary.LittleEndian, true
	case be == magicUsecLE:
		rd.order = binary.BigEndian
	case be == magicNsecLE:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: unrecognized magic %#x", le)
	}
	var (
		major, minor     uint16
		thiszone         int32
		sigfigs, network uint32
	)
	for _, v := range []any{&major, &minor, &thiszone, &sigfigs, &rd.snapLen, &network} {
		if err := binary.Read(br, rd.order, v); err != nil {
			return nil, fmt.Errorf("pcap: reading header: %w", err)
		}
	}
	if major != versionMajor {
		return nil, fmt.Errorf("pcap: unsupported version %d.%d", major, minor)
	}
	if network != linkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", network)
	}
	if rd.snapLen == 0 || rd.snapLen > 1<<18 {
		return nil, fmt.Errorf("pcap: implausible snap length %d", rd.snapLen)
	}
	rd.buf = make([]byte, rd.snapLen)
	return rd, nil
}

// ErrNotIPv4 is returned by Next for captured frames that are not IPv4 and
// therefore carry no flow information; callers typically skip them.
var ErrNotIPv4 = errors.New("pcap: not an IPv4 packet")

// Next returns the next packet. Frames that are not IPv4 yield ErrNotIPv4
// (the caller may continue reading). io.EOF signals a clean end of file.
func (r *Reader) Next() (flow.Packet, error) {
	var tsSec, tsFrac, inclLen, origLen uint32
	if err := binary.Read(r.r, r.order, &tsSec); err != nil {
		if err == io.EOF {
			return flow.Packet{}, io.EOF
		}
		return flow.Packet{}, fmt.Errorf("pcap: reading record: %w", err)
	}
	for _, v := range []*uint32{&tsFrac, &inclLen, &origLen} {
		if err := binary.Read(r.r, r.order, v); err != nil {
			return flow.Packet{}, fmt.Errorf("pcap: truncated record header: %w", err)
		}
	}
	if inclLen > r.snapLen {
		return flow.Packet{}, fmt.Errorf("pcap: record length %d exceeds snap length %d", inclLen, r.snapLen)
	}
	data := r.buf[:inclLen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return flow.Packet{}, fmt.Errorf("pcap: truncated record: %w", err)
	}

	ts := time.Duration(tsSec) * time.Second
	if r.nanos {
		ts += time.Duration(tsFrac)
	} else {
		ts += time.Duration(tsFrac) * time.Microsecond
	}
	p := flow.Packet{Time: ts}
	if origLen < etherHeaderLen {
		return flow.Packet{}, fmt.Errorf("pcap: frame of %d bytes too short for Ethernet", origLen)
	}
	p.Size = origLen - etherHeaderLen

	if len(data) < etherHeaderLen+ipv4HeaderLen {
		return p, ErrNotIPv4
	}
	if binary.BigEndian.Uint16(data[12:14]) != etherTypeIPv4 {
		return p, ErrNotIPv4
	}
	ip := data[etherHeaderLen:]
	if ip[0]>>4 != 4 {
		return p, ErrNotIPv4
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return p, ErrNotIPv4
	}
	p.Proto = ip[9]
	p.SrcIP = binary.BigEndian.Uint32(ip[12:16])
	p.DstIP = binary.BigEndian.Uint32(ip[16:20])
	if p.Proto == protoTCP || p.Proto == protoUDP {
		transport := ip[ihl:]
		if len(transport) >= 4 {
			p.SrcPort = binary.BigEndian.Uint16(transport[0:2])
			p.DstPort = binary.BigEndian.Uint16(transport[2:4])
		}
	}
	return p, nil
}
