package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"repro/internal/flow"
)

func tcpPacket() flow.Packet {
	return flow.Packet{
		Time:    1500 * time.Millisecond,
		Size:    1500,
		SrcIP:   0x0a000001,
		DstIP:   0xc0a80105,
		SrcPort: 44321,
		DstPort: 443,
		Proto:   6,
	}
}

func udpPacket() flow.Packet {
	return flow.Packet{
		Time:    2 * time.Second,
		Size:    120,
		SrcIP:   1,
		DstIP:   2,
		SrcPort: 53,
		DstPort: 5353,
		Proto:   17,
	}
}

func icmpPacket() flow.Packet {
	return flow.Packet{
		Time:  3 * time.Second,
		Size:  64,
		SrcIP: 9,
		DstIP: 10,
		Proto: 1,
	}
}

func roundTrip(t *testing.T, pkts []flow.Packet) []flow.Packet {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if err := w.WritePacket(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []flow.Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
}

func TestRoundTripTCPUDPICMP(t *testing.T) {
	in := []flow.Packet{tcpPacket(), udpPacket(), icmpPacket()}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("round trip: %d packets, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("packet %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestMicrosecondTimestampPrecision(t *testing.T) {
	p := tcpPacket()
	p.Time = 7*time.Second + 123456*time.Microsecond + 789*time.Nanosecond
	out := roundTrip(t, []flow.Packet{p})
	// Sub-microsecond precision is lost in the classic format.
	want := 7*time.Second + 123456*time.Microsecond
	if out[0].Time != want {
		t.Errorf("time = %v, want %v", out[0].Time, want)
	}
}

func TestSmallPacket(t *testing.T) {
	p := tcpPacket()
	p.Size = 40 // minimum TCP/IP packet
	out := roundTrip(t, []flow.Packet{p})
	if out[0].Size != 40 {
		t.Errorf("size = %d", out[0].Size)
	}
}

func TestNonIPv4FrameSkippable(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket()
	if err := w.WritePacket(&p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the ethertype of the single record into ARP (0x0806). The
	// record starts after the 24-byte global header; ethertype is at offset
	// 12 within the frame, frame starts after the 16-byte record header.
	off := 24 + 16 + 12
	binary.BigEndian.PutUint16(data[off:], 0x0806)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != ErrNotIPv4 {
		t.Errorf("got %v, want ErrNotIPv4", err)
	}
	// Stream continues cleanly after the skip.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after skip: %v, want EOF", err)
	}
}

func TestReaderBigEndian(t *testing.T) {
	// Hand-build a big-endian capture with one minimal frame.
	var buf bytes.Buffer
	be := binary.BigEndian
	for _, v := range []any{
		uint32(magicUsecLE), // written BE => reader sees swapped magic
		uint16(versionMajor), uint16(versionMinor),
		int32(0), uint32(0), uint32(SnapLen), uint32(linkTypeEthernet),
	} {
		if err := binary.Write(&buf, be, v); err != nil {
			t.Fatal(err)
		}
	}
	frame := make([]byte, etherHeaderLen+ipv4HeaderLen)
	be.PutUint16(frame[12:], etherTypeIPv4)
	frame[14] = 0x45
	frame[23] = 47 // GRE: no ports
	be.PutUint32(frame[26:], 0x01010101)
	be.PutUint32(frame[30:], 0x02020202)
	for _, v := range []uint32{10, 500000, uint32(len(frame)), uint32(len(frame))} {
		if err := binary.Write(&buf, be, v); err != nil {
			t.Fatal(err)
		}
	}
	buf.Write(frame)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.SrcIP != 0x01010101 || p.DstIP != 0x02020202 || p.Proto != 47 {
		t.Errorf("packet = %+v", p)
	}
	if p.Time != 10*time.Second+500*time.Millisecond {
		t.Errorf("time = %v", p.Time)
	}
	if p.SrcPort != 0 || p.DstPort != 0 {
		t.Error("GRE packet should have no ports")
	}
}

func TestReaderNanosecondMagic(t *testing.T) {
	var buf bytes.Buffer
	le := binary.LittleEndian
	for _, v := range []any{
		uint32(magicNsecLE),
		uint16(versionMajor), uint16(versionMinor),
		int32(0), uint32(0), uint32(SnapLen), uint32(linkTypeEthernet),
	} {
		if err := binary.Write(&buf, le, v); err != nil {
			t.Fatal(err)
		}
	}
	frame := make([]byte, etherHeaderLen+ipv4HeaderLen)
	binary.BigEndian.PutUint16(frame[12:], etherTypeIPv4)
	frame[14] = 0x45
	frame[23] = 6
	for _, v := range []uint32{1, 999, uint32(len(frame)), uint32(len(frame))} {
		if err := binary.Write(&buf, le, v); err != nil {
			t.Fatal(err)
		}
	}
	buf.Write(frame)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Time != time.Second+999*time.Nanosecond {
		t.Errorf("nanosecond time = %v", p.Time)
	}
}

func TestReaderErrors(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
			t.Error("zero magic accepted")
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		b := binary.LittleEndian.AppendUint32(nil, magicUsecLE)
		if _, err := NewReader(bytes.NewReader(b)); err == nil {
			t.Error("truncated header accepted")
		}
	})
	t.Run("bad link type", func(t *testing.T) {
		var buf bytes.Buffer
		for _, v := range []any{
			uint32(magicUsecLE), uint16(2), uint16(4),
			int32(0), uint32(0), uint32(SnapLen), uint32(101), // raw IP
		} {
			binary.Write(&buf, binary.LittleEndian, v)
		}
		if _, err := NewReader(&buf); err == nil {
			t.Error("non-Ethernet link type accepted")
		}
	})
	t.Run("truncated record", func(t *testing.T) {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		p := tcpPacket()
		w.WritePacket(&p)
		w.Flush()
		data := buf.Bytes()[:buf.Len()-5]
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("truncated record gave %v", err)
		}
	})
}

func TestWriterOutputParseableHeaders(t *testing.T) {
	// Check the synthesized IPv4 total-length field carries the wire size.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := tcpPacket()
	if err := w.WritePacket(&p); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	data := buf.Bytes()
	ipStart := 24 + 16 + etherHeaderLen
	totalLen := binary.BigEndian.Uint16(data[ipStart+2:])
	if uint32(totalLen) != p.Size {
		t.Errorf("IP total length %d, want %d", totalLen, p.Size)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	pkts := []flow.Packet{tcpPacket(), udpPacket()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for j := range pkts {
			w.WritePacket(&pkts[j])
		}
		w.Flush()
		r, _ := NewReader(&buf)
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			}
		}
	}
}

// failAfter errors once n bytes have been written, to exercise the
// writers' error propagation.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errBoom
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errBoom
	}
	f.n -= len(p)
	return len(p), nil
}

var errBoom = io.ErrClosedPipe

func TestWriterPropagatesErrors(t *testing.T) {
	// Header write fails.
	if _, err := NewWriter(&failAfter{n: 3}); err == nil {
		// NewWriter buffers; the error may surface at flush instead.
		w, _ := NewWriter(&failAfter{n: 3})
		if w != nil {
			p := tcpPacket()
			w.WritePacket(&p)
			if err := w.Flush(); err == nil {
				t.Error("write error never surfaced")
			}
		}
	}
}
