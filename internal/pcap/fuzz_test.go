package pcap

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader hardens the capture parser: captures come from outside the
// trust boundary, so the reader must never panic or loop forever on
// malformed input.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	p := tcpPacket()
	w.WritePacket(&p)
	q := udpPacket()
	w.WritePacket(&q)
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:30])
	f.Add(valid[:24])
	f.Add([]byte{})
	f.Add([]byte("not a pcap file at all........"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil && err != ErrNotIPv4 {
				return
			}
		}
	})
}
