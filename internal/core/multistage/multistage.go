// Package multistage implements the paper's second algorithm (Section 3.2):
// multistage filters. A filter has d stages of b counters each, indexed by
// independent hash functions of the flow ID. A packet's flow is promoted to
// flow memory when the counters it hashes to reach the threshold T at every
// stage; afterwards the flow's traffic is counted exactly in its entry.
//
// Both variants are implemented: the parallel filter (all stages see every
// packet; zero false negatives) and the serial filter (stage i+1 sees only
// packets that passed stage i, each stage using threshold T/d).
//
// The optimizations evaluated in the paper are supported:
//
//   - conservative update (Section 3.3.2): counters are raised as little as
//     possible — no counter is pushed beyond what the smallest counter
//     proves the flow could have sent, and promoted packets update no
//     counters. This reduces false positives by an order of magnitude.
//   - shielding (Section 3.3.1): packets of flows already in flow memory do
//     not pass through the filter, so long-lived large flows stop inflating
//     the counters other flows hash to.
//   - preserving entries across measurement intervals.
package multistage

import (
	"math"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/core/flowmem"
	"repro/internal/flow"
	"repro/internal/hashing"
	"repro/internal/memmodel"
	"repro/internal/telemetry"
)

// Config configures a multistage filter.
type Config struct {
	// Stages is the filter depth d. The paper uses up to 4 in its device
	// evaluation and shows logarithmic scaling in the number of flows.
	Stages int
	// Buckets is the number of counters b per stage.
	Buckets int
	// Entries is the flow memory capacity.
	Entries int
	// MaxEntries, when non-zero, hard-caps the flow memory below Entries —
	// a resource bound imposed from outside that wins over the sizing
	// target. Inserts beyond the cap are refused and counted in
	// EntriesRejected, which the threshold adaptation loop reads as
	// pressure.
	MaxEntries int
	// Threshold is the large-flow threshold T in bytes per interval.
	Threshold uint64
	// Serial selects the serial filter variant (stages in sequence, each
	// with threshold T/d) instead of the default parallel filter.
	Serial bool
	// Conservative enables conservative update of counters.
	Conservative bool
	// Shield prevents packets of flows that already have an entry from
	// updating filter counters.
	Shield bool
	// Preserve enables preserving entries across intervals.
	Preserve bool
	// Correction adds each flow's promotion-time counter floor (a proven
	// upper bound on its uncounted bytes) to its reported estimate —
	// Section 4.2.1's correction factor, made data driven. It improves
	// accuracy but forfeits the lower-bound property, so it is unsuitable
	// for billing. Parallel filters only.
	Correction bool
	// Hash selects the hash family: "tabulation" by default,
	// "multiplyshift" for the cheaper 2-independent family, or
	// "doublehash" for Kirsch–Mitzenmacher derived stages (one base hash
	// per packet, all d stage buckets derived as h1 + i·h2 — the cheapest
	// per-packet hashing, at the cost of inter-stage independence).
	Hash string
	// Seed seeds the hash functions.
	Seed int64
	// PrefetchTiles is the fused batch kernel's prefetch distance in tiles
	// of 32 packets: tile i+PrefetchTiles is hashed (its counter and flow
	// memory lines pulled toward the caches) while tile i is being
	// updated, so a table bigger than L2 hides its DRAM latency behind
	// useful work. Zero selects DefaultPrefetchTiles; -1 disables the
	// lookahead (each tile hashed immediately before its update — the
	// right setting for tiny L1-resident tables); at most MaxPrefetchTiles.
	PrefetchTiles int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Stages < 1 {
		return cfgerr.New("multistage", "Stages", "must be at least 1, got %d", c.Stages)
	}
	if c.Buckets < 1 {
		return cfgerr.New("multistage", "Buckets", "must be at least 1, got %d", c.Buckets)
	}
	if c.Entries < 1 {
		return cfgerr.New("multistage", "Entries", "must be at least 1, got %d", c.Entries)
	}
	if c.MaxEntries < 0 {
		return cfgerr.New("multistage", "MaxEntries", "must not be negative, got %d", c.MaxEntries)
	}
	if c.Threshold < 1 {
		return cfgerr.New("multistage", "Threshold", "must be at least 1, got %d", c.Threshold)
	}
	if c.Hash != "" && hashing.FamilyByName(c.Hash, 0) == nil {
		return cfgerr.New("multistage", "Hash", "unknown hash family %q", c.Hash)
	}
	if c.Correction && c.Serial {
		return cfgerr.New("multistage", "Correction", "only defined for parallel filters")
	}
	if c.PrefetchTiles < -1 || c.PrefetchTiles > MaxPrefetchTiles {
		return cfgerr.New("multistage", "PrefetchTiles", "must be in [-1, %d], got %d", MaxPrefetchTiles, c.PrefetchTiles)
	}
	return nil
}

// Filter implements core.Algorithm.
type Filter struct {
	cfg Config
	mem *flowmem.Memory
	// counters is the d×b stage counter array flattened into one
	// allocation (stage i, bucket j at i·b + j), the software analogue of
	// the paper's SRAM counter banks: no per-stage slice headers or
	// pointer hops on the packet path, and one clear() per interval.
	counters []uint64
	// buckets is the per-stage width b; stage i's counters start at i·b.
	buckets uint32
	hashes  []hashing.Func
	// tileHashers[i] is hashes[i]'s whole-tile fast path, resolved once at
	// construction; nil entries fall back to per-packet Bucket calls.
	tileHashers []hashing.TileHasher
	// deriver, when non-nil, derives all d stage buckets from ONE base
	// hash per packet (Kirsch–Mitzenmacher double hashing); nil for
	// families that hash each stage separately.
	deriver hashing.Deriver
	// lookahead is the fused kernel's prefetch distance in tiles, resolved
	// from Config.PrefetchTiles (0 after resolution means no lookahead).
	lookahead int
	cost      memmodel.Counter
	tel       telemetry.Algorithm

	// dropped counts flows that passed the filter but found the flow
	// memory full; threshold adaptation keeps this near zero.
	dropped uint64

	// idx is scratch for the current packet's flat counter offsets, one
	// per stage (stage base i·b already folded in).
	idx []uint32
	// batchIdx is grow-only scratch holding a whole batch's flat counter
	// offsets, packet-major: packet j's d offsets are contiguous at
	// j·d..j·d+d, so the per-packet counter logic reads one short run.
	batchIdx []uint32
	// batchHash is grow-only scratch holding each packet's flow memory
	// probe hash, computed once in the fused kernel's hash phase and
	// reused for prefetch, lookup and insert.
	batchHash []uint64
	// prefetchSink accumulates the counter values the fused kernel's hash
	// phase loads to warm their cache lines, so the compiler cannot drop
	// the loads as dead.
	prefetchSink uint64
}

// fusedTile is the number of packets per hash→prefetch→update tile of the
// fused kernel. Small enough that a tile's working set — d counter lines
// plus a flow memory line or two per packet — stays L1-resident between the
// hash phase that pulls it in and the update phase that reuses it; large
// enough that the hash phase keeps many independent misses in flight.
const fusedTile = 32

// DefaultPrefetchTiles is the fused kernel's default prefetch distance
// (Config.PrefetchTiles zero): hash tile i+2 while updating tile i. The
// cmd/experiments prefetch sweep across table sizes {L2-resident, 4×L2,
// 64×L2} picks this as the all-around sweet spot — far enough ahead that a
// DRAM-resident table's lines arrive before their update, near enough that
// the prefetched lines are not evicted again under cache pressure.
const DefaultPrefetchTiles = 2

// MaxPrefetchTiles bounds the configurable prefetch distance: beyond 8
// tiles (256 packets) the prefetched footprint itself starts thrashing L1
// and the lookahead turns into cache pollution.
const MaxPrefetchTiles = 8

// New creates a multistage filter.
func New(cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := cfg.Hash
	if name == "" {
		name = "tabulation"
	}
	family := hashing.FamilyByName(name, cfg.Seed)
	capacity := cfg.Entries
	if cfg.MaxEntries > 0 && cfg.MaxEntries < capacity {
		capacity = cfg.MaxEntries
	}
	f := &Filter{
		cfg:      cfg,
		mem:      flowmem.New(capacity),
		counters: make([]uint64, cfg.Stages*cfg.Buckets),
		buckets:  uint32(cfg.Buckets),
		hashes:   make([]hashing.Func, cfg.Stages),
		idx:      make([]uint32, cfg.Stages),
	}
	f.tileHashers = make([]hashing.TileHasher, cfg.Stages)
	for i := range f.hashes {
		f.hashes[i] = family.New(uint32(cfg.Buckets))
		f.tileHashers[i], _ = f.hashes[i].(hashing.TileHasher)
	}
	f.deriver = hashing.DeriverFor(f.hashes)
	switch cfg.PrefetchTiles {
	case 0:
		f.lookahead = DefaultPrefetchTiles
	case -1:
		f.lookahead = 0
	default:
		f.lookahead = cfg.PrefetchTiles
	}
	f.tel.Init(f.Name(), capacity, cfg.Threshold)
	return f, nil
}

// Name implements core.Algorithm.
func (f *Filter) Name() string {
	if f.cfg.Serial {
		return "serial-multistage-filter"
	}
	return "multistage-filter"
}

// stageThreshold returns the per-stage promotion threshold: T for parallel
// filters, T/d for serial ones (Section 3.2.1).
func (f *Filter) stageThreshold() uint64 {
	if f.cfg.Serial {
		t := f.cfg.Threshold / uint64(f.cfg.Stages)
		if t < 1 {
			t = 1
		}
		return t
	}
	return f.cfg.Threshold
}

// keyHash returns key's flow memory probe hash: the deriver's base hash
// when one is active — so the fused hash phase computes ONE hash per packet
// that serves both the filter stages and the flow memory — and
// flowmem.Hash otherwise. Every flow memory operation of one Filter
// instance uses this same function, so entries inserted by one processing
// path are always found by the others.
func (f *Filter) keyHash(key flow.Key) uint64 {
	if f.deriver != nil {
		return f.deriver.Base(key)
	}
	return flowmem.Hash(key)
}

// Process implements core.Algorithm.
func (f *Filter) Process(key flow.Key, size uint32) {
	f.cost.Packet()
	var fmh uint64
	var idx []uint32
	if f.deriver != nil {
		// One base hash yields both the stage buckets and the flow memory
		// probe hash, so hashing eagerly costs nothing extra.
		idx = f.idx
		fmh = f.deriver.DeriveBase(key, idx)
		base := uint32(0)
		for i := range idx {
			idx[i] += base
			base += f.buckets
		}
	} else {
		// Stage hashing stays lazy: a shielded flow memory hit never
		// consults the filter, so its stages are never hashed.
		fmh = flowmem.Hash(key)
	}
	f.process(key, size, fmh, idx, &f.cost)
	f.tel.Observe(1, uint64(size), f.cost, f.mem.Len())
}

// ProcessBatch implements core.BatchAlgorithm with the fused single-pass
// kernel: the batch streams through in tiles of fusedTile packets, each tile
// running a hash phase — stage buckets and the flow memory probe hash
// computed per packet, the counter lines and home flow memory slots warmed
// with prefetching loads — software-pipelined ahead of an update phase that
// runs the filter and flow memory logic against cache-resident lines. The
// hash phase runs Config.PrefetchTiles tiles ahead of the update phase, so
// with a DRAM-resident table the prefetching loads of tile i+k are in
// flight while tile i's updates execute. Each packet's buckets and flow
// slot are touched once per batch; the key is hashed once (the doublehash
// deriver's base hash doubles as the flow memory probe hash).
// Memory-reference accounting is accumulated locally and folded into the
// filter's counter with a single Add.
func (f *Filter) ProcessBatch(keys []flow.Key, sizes []uint32) {
	f.processBatchFused(nil, keys, sizes)
}

// KeyHash implements core.HashBatchAlgorithm: the per-packet hash the
// fused kernel probes the flow memory with. With a doublehash deriver that
// is the deriver's base hash, not flowmem.Hash — upstream hash forwarding
// keys off this distinction.
func (f *Filter) KeyHash(k flow.Key) uint64 { return f.keyHash(k) }

// ProcessBatchHash implements core.HashBatchAlgorithm: ProcessBatch with
// the per-packet flow memory probe hashes supplied by the caller
// (hashes[i] must equal KeyHash(keys[i])). The deriver path ignores the
// supplied hashes — its base hash also yields the stage buckets, so it is
// computed in the kernel regardless — and remains bit-identical to
// ProcessBatch either way.
func (f *Filter) ProcessBatchHash(hashes []uint64, keys []flow.Key, sizes []uint32) {
	if f.deriver != nil {
		f.processBatchFused(nil, keys, sizes)
		return
	}
	f.processBatchFused(hashes, keys, sizes)
}

// processBatchFused is the fused kernel behind ProcessBatch and
// ProcessBatchHash; ext, when non-nil, holds caller-computed flow memory
// probe hashes (flowmem.Hash of each key) that the hash phase consumes
// instead of rehashing.
func (f *Filter) processBatchFused(ext []uint64, keys []flow.Key, sizes []uint32) {
	n := len(keys)
	if n == 0 {
		return
	}
	d := len(f.hashes)
	f.growScratch(n, d)
	bidx := f.batchIdx[:n*d]
	bh := f.batchHash[:n]
	var cost memmodel.Counter
	cost.Packets = uint64(n)
	var bytes uint64
	// Software pipeline: hash (and prefetch) the first lookahead tiles,
	// then keep the hash phase lookahead tiles ahead of the update phase.
	ht := 0
	for i := 0; i < f.lookahead && ht < n; i++ {
		end := min(ht+fusedTile, n)
		f.hashTile(ext, keys, bidx, bh, ht, end)
		ht = end
	}
	for t := 0; t < n; t += fusedTile {
		if ht < n {
			end := min(ht+fusedTile, n)
			f.hashTile(ext, keys, bidx, bh, ht, end)
			ht = end
		}
		end := min(t+fusedTile, n)
		for j := t; j < end; j++ {
			bytes += uint64(sizes[j])
			f.process(keys[j], sizes[j], bh[j], bidx[j*d:j*d+d], &cost)
		}
	}
	f.cost.Add(cost)
	f.tel.Observe(uint64(n), bytes, f.cost, f.mem.Len())
}

// growScratch sizes the batch scratch for n packets of d stages. Grow-only:
// the scratch keeps the largest batch's footprint so mixed batch sizes never
// re-allocate.
func (f *Filter) growScratch(n, d int) {
	if need := n * d; cap(f.batchIdx) < need {
		f.batchIdx = make([]uint32, need)
	}
	if cap(f.batchHash) < n {
		f.batchHash = make([]uint64, n)
	}
}

// / hashTile runs the fused kernel's hash phase over the packets in [lo, hi):
// it fills each packet's flat counter offsets (bidx, packet-major with
// stride d) and flow memory probe hash (bh), and issues the prefetching
// loads that pull the counter lines and home flow memory slots toward the
// cache while the update phase is still lookahead tiles behind. The loads
// are independent, so their misses overlap — the memory-level parallelism a
// one-packet-at-a-time pass cannot reach. ext, when non-nil, supplies the
// flow memory probe hashes (flowmem.Hash per key) already computed by the
// caller.
func (f *Filter) hashTile(ext []uint64, keys []flow.Key, bidx []uint32, bh []uint64, lo, hi int) {
	d := len(f.hashes)
	counters := f.counters
	var sink uint64
	if f.deriver != nil {
		// One base hash per packet yields the flow memory probe hash and
		// all d stage buckets, written as one contiguous run.
		for j := lo; j < hi; j++ {
			row := bidx[j*d : j*d+d : j*d+d]
			h := f.deriver.DeriveBase(keys[j], row)
			bh[j] = h
			base := uint32(0)
			for i := range row {
				row[i] += base
				base += f.buckets
				sink += counters[row[i]]
			}
			f.mem.Prefetch(h)
		}
	} else {
		// Per-stage hashing keeps each stage's hash tables hot while the
		// tile streams through them. Stages that can hash a whole tile in
		// one call (TileHasher) write the strided offsets themselves; the
		// counter-warming loads then run as a separate sweep.
		base := uint32(0)
		for i, h := range f.hashes {
			if th := f.tileHashers[i]; th != nil {
				th.BucketTile(keys[lo:hi], bidx[lo*d+i:], d, base)
			} else {
				for j := lo; j < hi; j++ {
					bidx[j*d+i] = base + h.Bucket(keys[j])
				}
			}
			base += f.buckets
		}
		for j := lo; j < hi; j++ {
			for i := 0; i < d; i++ {
				sink += counters[bidx[j*d+i]]
			}
		}
		if ext != nil {
			for j := lo; j < hi; j++ {
				bh[j] = ext[j]
				f.mem.Prefetch(ext[j])
			}
		} else {
			for j := lo; j < hi; j++ {
				h := flowmem.Hash(keys[j])
				bh[j] = h
				f.mem.Prefetch(h)
			}
		}
	}
	f.prefetchSink += sink
}

// ProcessBatchUnfused is the pre-fusion batch kernel, kept as the reference
// implementation for differential tests and before/after benchmarks: a hash
// pass over the whole batch filling the flat counter offsets, then a second
// sweep running the filter and flow memory logic per packet — two passes
// over the batch, no prefetch, the flow memory hashed in the update sweep.
// It must produce reports bit-identical to ProcessBatch.
func (f *Filter) ProcessBatchUnfused(keys []flow.Key, sizes []uint32) {
	n := len(keys)
	if n == 0 {
		return
	}
	d := len(f.hashes)
	f.growScratch(n, d)
	bidx := f.batchIdx[:n*d]
	if f.deriver != nil {
		for j, k := range keys {
			row := bidx[j*d : j*d+d]
			f.deriver.Derive(k, row)
			base := uint32(0)
			for i := range row {
				row[i] += base
				base += f.buckets
			}
		}
	} else {
		base := uint32(0)
		for i, h := range f.hashes {
			for j, k := range keys {
				bidx[j*d+i] = base + h.Bucket(k)
			}
			base += f.buckets
		}
	}
	var cost memmodel.Counter
	cost.Packets = uint64(n)
	var bytes uint64
	for j, k := range keys {
		bytes += uint64(sizes[j])
		f.process(k, sizes[j], f.keyHash(k), bidx[j*d:j*d+d], &cost)
	}
	f.cost.Add(cost)
	f.tel.Observe(uint64(n), bytes, f.cost, f.mem.Len())
}

// process handles one packet. fmh is the packet's flow memory probe hash
// (always precomputed — the key is hashed exactly once per packet). idx,
// when non-nil, holds the packet's flat counter offsets; otherwise they are
// computed on demand, and only when the filter is actually consulted.
func (f *Filter) process(key flow.Key, size uint32, fmh uint64, idx []uint32, cost *memmodel.Counter) {
	cost.SRAM(1, 0) // flow memory lookup
	if e := f.mem.LookupHash(fmh, key); e != nil {
		e.Bytes += uint64(size)
		cost.SRAM(0, 1)
		if !f.cfg.Shield {
			// Without shielding, tracked flows keep pushing the filter
			// counters up (they can no longer cause false negatives, only
			// help other flows' false positives — shielding removes that).
			if idx == nil {
				idx = f.hashStages(key)
			}
			f.updateCounters(idx, size, cost)
		}
		return
	}
	if idx == nil {
		idx = f.hashStages(key)
	}
	if f.cfg.Serial {
		f.processSerial(key, size, fmh, idx, cost)
		return
	}
	f.processParallel(key, size, fmh, idx, cost)
}

// hashStages fills f.idx with key's flat counter offset at every stage and
// returns it.
func (f *Filter) hashStages(key flow.Key) []uint32 {
	idx := f.idx
	if f.deriver != nil {
		f.deriver.Derive(key, idx)
		base := uint32(0)
		for i := range idx {
			idx[i] += base
			base += f.buckets
		}
		return idx
	}
	base := uint32(0)
	for i, h := range f.hashes {
		idx[i] = base + h.Bucket(key)
		base += f.buckets
	}
	return idx
}

// scanMin reads the counter at every offset in idx and returns the
// smallest value — the filter's proven bound on the flow's traffic so far.
func (f *Filter) scanMin(idx []uint32, cost *memmodel.Counter) uint64 {
	min := uint64(math.MaxUint64)
	for _, o := range idx {
		cost.SRAM(1, 0)
		if c := f.counters[o]; c < min {
			min = c
		}
	}
	return min
}

// raiseStages applies the counter update for a packet that did not pass the
// filter. With conservative update every counter becomes max(old, min+size):
// the smallest counter is updated normally, larger ones only rise to the
// proven upper bound of this flow's traffic. Otherwise every counter grows
// by the packet size.
func (f *Filter) raiseStages(idx []uint32, size uint32, min uint64, cost *memmodel.Counter) {
	if !f.cfg.Conservative {
		f.addStages(idx, size, cost)
		return
	}
	bound := min + uint64(size)
	for _, o := range idx {
		if f.counters[o] < bound {
			f.counters[o] = bound
			cost.SRAM(0, 1)
		}
	}
}

// addStages adds the packet size to the counter at every offset in idx.
func (f *Filter) addStages(idx []uint32, size uint32, cost *memmodel.Counter) {
	for _, o := range idx {
		f.counters[o] += uint64(size)
		cost.SRAM(0, 1)
	}
}

// processParallel handles a packet of an untracked flow through the parallel
// filter; idx holds the packet's flat counter offsets and fmh its flow
// memory probe hash.
func (f *Filter) processParallel(key flow.Key, size uint32, fmh uint64, idx []uint32, cost *memmodel.Counter) {
	min := f.scanMin(idx, cost)
	if min+uint64(size) >= f.cfg.Threshold {
		// The flow passes the filter. With conservative update, promoted
		// packets update no counters (Section 3.3.2 second change); the
		// classic rule updates them first.
		if !f.cfg.Conservative {
			f.addStages(idx, size, cost)
		}
		// min bounds the flow's traffic before this packet: its own bytes
		// are contained in every counter it hashes to.
		f.promote(key, size, fmh, min, cost)
		return
	}
	f.raiseStages(idx, size, min, cost)
}

// serialAdd pushes the packet through the serial stages at the offsets in
// idx, adding its size at each stage until one stays below the per-stage
// threshold; it reports whether the packet passed every stage.
func (f *Filter) serialAdd(idx []uint32, size uint32, cost *memmodel.Counter) bool {
	st := f.stageThreshold()
	for _, o := range idx {
		cost.SRAM(1, 1)
		f.counters[o] += uint64(size)
		if f.counters[o] < st {
			return false // packet stops here; later stages never see it
		}
	}
	return true
}

// processSerial handles a packet of an untracked flow through the serial
// filter: each stage sees the packet only if it passed the previous stage.
// idx holds the packet's flat counter offsets and fmh its flow memory probe
// hash.
func (f *Filter) processSerial(key flow.Key, size uint32, fmh uint64, idx []uint32, cost *memmodel.Counter) {
	if f.cfg.Conservative {
		// Second conservative change (the first applies only to parallel
		// filters): if the packet would pass every stage, promote it
		// without updating any counters.
		st := f.stageThreshold()
		pass := true
		for _, o := range idx {
			cost.SRAM(1, 0)
			if f.counters[o]+uint64(size) < st {
				pass = false
				break
			}
		}
		if pass {
			f.promote(key, size, fmh, 0, cost)
			return
		}
	}
	if f.serialAdd(idx, size, cost) {
		f.promote(key, size, fmh, 0, cost)
	}
}

// updateCounters applies a plain (or conservative) counter update for a
// packet of a flow that is already tracked; used only without shielding.
// idx holds the packet's flat counter offsets.
func (f *Filter) updateCounters(idx []uint32, size uint32, cost *memmodel.Counter) {
	if f.cfg.Serial {
		f.serialAdd(idx, size, cost)
		return
	}
	f.raiseStages(idx, size, f.scanMin(idx, cost), cost)
}

// promote adds the flow to flow memory, counting the current packet. fmh is
// the flow's probe hash (already computed for the lookup that missed); debt
// is the proven bound on the flow's uncounted earlier bytes.
func (f *Filter) promote(key flow.Key, size uint32, fmh uint64, debt uint64, cost *memmodel.Counter) {
	e := f.mem.InsertHash(fmh, key, uint64(size))
	if e == nil {
		f.dropped++
		f.tel.Drop()
		return
	}
	if f.cfg.Correction {
		e.Debt = debt
	}
	f.tel.FilterPass()
	cost.SRAM(0, 1)
}

// EndInterval implements core.Algorithm: it reports the tracked flows,
// applies the preservation policy to flow memory, and reinitializes all
// stage counters (Section 3.3.1: "only reinitializing stage counters").
func (f *Filter) EndInterval() []core.Estimate {
	return f.AppendEstimates(make([]core.Estimate, 0, f.mem.Len()))
}

// AppendEstimates implements core.ReportAppender: EndInterval building the
// report into caller-owned memory.
func (f *Filter) AppendEstimates(dst []core.Estimate) []core.Estimate {
	entries := f.mem.Report()
	for _, e := range entries {
		est := core.Estimate{Key: e.Key, Bytes: e.Bytes, Exact: e.Exact}
		if f.cfg.Correction && !e.Exact {
			est.Bytes += e.Debt
		}
		dst = append(dst, est)
	}
	before := f.mem.Len()
	kept := f.mem.EndInterval(flowmem.Policy{
		Preserve:  f.cfg.Preserve,
		Threshold: f.cfg.Threshold,
	})
	f.tel.ObserveInterval(f.cfg.Threshold, kept, before-kept)
	clear(f.counters)
	f.dropped = 0
	return dst
}

// EntriesUsed implements core.Algorithm.
func (f *Filter) EntriesUsed() int { return f.mem.Len() }

// Capacity implements core.Algorithm.
func (f *Filter) Capacity() int { return f.mem.Capacity() }

// Threshold implements core.Algorithm.
func (f *Filter) Threshold() uint64 { return f.cfg.Threshold }

// SetThreshold implements core.Algorithm.
func (f *Filter) SetThreshold(t uint64) {
	if t < 1 {
		t = 1
	}
	f.cfg.Threshold = t
	f.tel.SetThreshold(t)
}

// Mem implements core.Algorithm.
func (f *Filter) Mem() *memmodel.Counter { return &f.cost }

// EntriesRejected implements core.MemoryPressure.
func (f *Filter) EntriesRejected() uint64 { return f.mem.Rejected() }

// Telemetry implements core.Instrumented.
func (f *Filter) Telemetry() *telemetry.Algorithm { return &f.tel }

// Dropped returns the number of flows that passed the filter in the current
// interval but were dropped because the flow memory was full.
func (f *Filter) Dropped() uint64 { return f.dropped }

// CounterValue exposes a stage counter for tests and diagnostics.
func (f *Filter) CounterValue(stage int, bucket int) uint64 {
	return f.counters[stage*int(f.buckets)+bucket]
}

// BucketOf exposes the bucket a key hashes to at a stage, for tests.
func (f *Filter) BucketOf(stage int, key flow.Key) int {
	return int(f.hashes[stage].Bucket(key))
}
