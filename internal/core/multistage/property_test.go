package multistage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

// workload derives a random packet stream from quick-generated data: flow
// IDs concentrate on a small id space so collisions and elephants occur.
type workload struct {
	Seed     int64
	Packets  int
	FlowBits uint8
}

func (w workload) generate() []struct {
	key  flow.Key
	size uint32
} {
	rng := rand.New(rand.NewSource(w.Seed))
	n := 1000 + int(uint(w.Packets)%9000)
	mask := uint64(1)<<(3+w.FlowBits%7) - 1 // 8..511 distinct flows
	out := make([]struct {
		key  flow.Key
		size uint32
	}, n)
	for i := range out {
		out[i].key = flow.Key{Lo: rng.Uint64() & mask}
		out[i].size = uint32(rng.Intn(1460) + 40)
	}
	return out
}

// TestQuickNoFalseNegatives drives the central guarantee through
// testing/quick: for random workloads, random (small) filter shapes and
// both update rules, every flow at or above the threshold is reported.
func TestQuickNoFalseNegatives(t *testing.T) {
	check := func(w workload, stages, buckets uint8, conservative, serial, shield bool) bool {
		cfg := Config{
			Stages:       1 + int(stages%4),
			Buckets:      8 + int(buckets)%120,
			Entries:      1 << 20,
			Threshold:    30000,
			Conservative: conservative,
			Serial:       serial,
			Shield:       shield,
			Seed:         w.Seed + 1,
		}
		f, err := New(cfg)
		if err != nil {
			return false
		}
		truth := map[flow.Key]uint64{}
		for _, p := range w.generate() {
			truth[p.key] += uint64(p.size)
			f.Process(p.key, p.size)
		}
		reported := map[flow.Key]bool{}
		for _, e := range f.EndInterval() {
			reported[e.Key] = true
		}
		for k, bytes := range truth {
			if bytes >= cfg.Threshold && !reported[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEstimatesLowerBound: reported bytes never exceed the truth, for
// any variant and workload.
func TestQuickEstimatesLowerBound(t *testing.T) {
	check := func(w workload, conservative, serial bool) bool {
		f, err := New(Config{
			Stages:       3,
			Buckets:      64,
			Entries:      1 << 20,
			Threshold:    20000,
			Conservative: conservative,
			Serial:       serial,
			Seed:         w.Seed,
		})
		if err != nil {
			return false
		}
		truth := map[flow.Key]uint64{}
		for _, p := range w.generate() {
			truth[p.key] += uint64(p.size)
			f.Process(p.key, p.size)
		}
		for _, e := range f.EndInterval() {
			if e.Bytes > truth[e.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountersMonotone: stage counters never decrease within an
// interval, under either update rule.
func TestQuickCountersMonotone(t *testing.T) {
	check := func(w workload, conservative bool) bool {
		f, err := New(Config{
			Stages:       2,
			Buckets:      32,
			Entries:      1 << 20,
			Threshold:    1 << 40, // never promote: isolate counter math
			Conservative: conservative,
			Seed:         w.Seed,
		})
		if err != nil {
			return false
		}
		prev := make([][]uint64, 2)
		for i := range prev {
			prev[i] = make([]uint64, 32)
		}
		for _, p := range w.generate() {
			f.Process(p.key, p.size)
			for st := 0; st < 2; st++ {
				for b := 0; b < 32; b++ {
					v := f.CounterValue(st, b)
					if v < prev[st][b] {
						return false
					}
					prev[st][b] = v
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickConservativeDominatedByClassic: under identical seeds and
// workloads, conservative counters never exceed classic ones.
func TestQuickConservativeDominatedByClassic(t *testing.T) {
	check := func(w workload) bool {
		mk := func(conservative bool) *Filter {
			f, err := New(Config{
				Stages: 3, Buckets: 64, Entries: 1 << 20,
				Threshold: 1 << 40, Conservative: conservative, Seed: 12345,
			})
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
		classic, cons := mk(false), mk(true)
		for _, p := range w.generate() {
			classic.Process(p.key, p.size)
			cons.Process(p.key, p.size)
		}
		for st := 0; st < 3; st++ {
			for b := 0; b < 64; b++ {
				if cons.CounterValue(st, b) > classic.CounterValue(st, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
