//go:build !race

// The race detector changes the allocator's behavior, so the allocation
// guards only exist in non-race builds; CI runs them in a dedicated step.

package multistage

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

// TestBatchScratchGrowOnly replays batches of wildly mixed sizes through
// ProcessBatch and asserts the hash-offset scratch (batchIdx) is grow-only:
// after one batch at the maximum size has grown it, no batch — large, tiny,
// or in between — may allocate. A shrink-and-reallocate regression would
// show up as steady allocations on every size change.
func TestBatchScratchGrowOnly(t *testing.T) {
	for _, hash := range []string{"tabulation", "doublehash"} {
		t.Run(hash, func(t *testing.T) {
			f, err := New(Config{
				Stages: 4, Buckets: 1024, Entries: 512, Threshold: 1 << 20,
				Conservative: true, Shield: true, Hash: hash, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			const maxBatch = 256
			keys := make([]flow.Key, maxBatch)
			sizes := make([]uint32, maxBatch)
			for i := range keys {
				keys[i] = flow.Key{Lo: uint64(i * 7)}
				sizes[i] = 1000
			}
			// Warm the scratch with the largest batch once.
			f.ProcessBatch(keys, sizes)
			mixed := []int{maxBatch, 7, 128, 1, 64, 255, 3, maxBatch, 31}
			i := 0
			allocs := testing.AllocsPerRun(500, func() {
				n := mixed[i%len(mixed)]
				i++
				f.ProcessBatch(keys[:n], sizes[:n])
			})
			if allocs != 0 {
				t.Fatalf("mixed-size ProcessBatch allocates %.1f allocs/op, must be 0", allocs)
			}
		})
	}
}

// TestAppendEstimatesZeroAllocs guards the report-arena path: building the
// interval report into caller-owned memory must not allocate once the arena
// and the flow memory's scratch are warm. Threshold 1 promotes every flow on
// its first packet, so each interval's report is non-trivial.
func TestAppendEstimatesZeroAllocs(t *testing.T) {
	f, err := New(Config{
		Stages: 4, Buckets: 1024, Entries: 512, Threshold: 1,
		Conservative: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]flow.Key, 64)
	sizes := make([]uint32, 64)
	for i := range keys {
		keys[i] = flow.Key{Lo: uint64(i + 1)}
		sizes[i] = 1000
	}
	arena := make([]core.Estimate, 0, 256)
	// Warm: one full interval cycle grows the report scratch.
	f.ProcessBatch(keys, sizes)
	arena = f.AppendEstimates(arena[:0])
	allocs := testing.AllocsPerRun(200, func() {
		f.ProcessBatch(keys, sizes)
		arena = f.AppendEstimates(arena[:0])
		if len(arena) != len(keys) {
			t.Fatalf("short report: %d estimates", len(arena))
		}
	})
	if allocs != 0 {
		t.Fatalf("warm interval cycle allocates %.1f allocs/op, must be 0", allocs)
	}
}

// TestPerPacketZeroAllocs guards the unbatched Process path, which shares
// the flat counter array and per-packet offset scratch with the batched one.
func TestPerPacketZeroAllocs(t *testing.T) {
	f, err := New(Config{
		Stages: 4, Buckets: 1024, Entries: 512, Threshold: 1 << 20,
		Conservative: true, Shield: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var k flow.Key
	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		k.Lo = uint64(i % 4096)
		i++
		f.Process(k, 1000)
	})
	if allocs != 0 {
		t.Fatalf("Process allocates %.1f allocs/op, must be 0", allocs)
	}
}
