package multistage

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func baseConfig() Config {
	return Config{
		Stages:    4,
		Buckets:   1000,
		Entries:   2000,
		Threshold: 100000,
		Seed:      1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Stages = 0 },
		func(c *Config) { c.Buckets = 0 },
		func(c *Config) { c.Entries = 0 },
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Hash = "bogus" },
	}
	for i, mutate := range mutations {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSinglePacketCounters(t *testing.T) {
	f, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.Process(key(7), 1234)
	for st := 0; st < 4; st++ {
		b := f.BucketOf(st, key(7))
		if got := f.CounterValue(st, b); got != 1234 {
			t.Errorf("stage %d counter = %d, want 1234", st, got)
		}
	}
}

func TestPromotionAtThreshold(t *testing.T) {
	cfg := baseConfig()
	cfg.Threshold = 1000
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 999 bytes: not promoted.
	f.Process(key(1), 999)
	if f.EntriesUsed() != 0 {
		t.Fatal("premature promotion below threshold")
	}
	// One more byte reaches T exactly: must be promoted (>= T passes).
	f.Process(key(1), 1)
	if f.EntriesUsed() != 1 {
		t.Fatal("flow at threshold not promoted")
	}
	est := f.EndInterval()
	if len(est) != 1 || est[0].Bytes != 1 {
		t.Errorf("estimate = %v, want 1 byte counted after promotion", est)
	}
}

// variants enumerates the filter configurations whose shared invariants
// (no false negatives, lower-bound estimates) we test.
func variants() map[string]func(Config) Config {
	return map[string]func(Config) Config{
		"parallel":              func(c Config) Config { return c },
		"parallel-conservative": func(c Config) Config { c.Conservative = true; return c },
		"parallel-shield":       func(c Config) Config { c.Shield = true; return c },
		"parallel-cons-shield":  func(c Config) Config { c.Conservative = true; c.Shield = true; return c },
		"serial":                func(c Config) Config { c.Serial = true; return c },
		"serial-conservative":   func(c Config) Config { c.Serial = true; c.Conservative = true; return c },
		"multiplyshift":         func(c Config) Config { c.Hash = "multiplyshift"; return c },
	}
}

// TestNoFalseNegatives is the paper's central guarantee (Section 3.2):
// every flow that sends at least T bytes must be in the flow memory at the
// end of the interval, for every filter variant, on adversarially random
// workloads.
func TestNoFalseNegatives(t *testing.T) {
	for name, mutate := range variants() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				cfg := mutate(Config{
					Stages:    3,
					Buckets:   64, // small and overloaded on purpose
					Entries:   100000,
					Threshold: 20000,
					Seed:      seed,
				})
				f, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed + 500))
				truth := map[flow.Key]uint64{}
				for i := 0; i < 30000; i++ {
					k := key(uint64(rng.Intn(500)))
					size := uint32(rng.Intn(1460) + 40)
					truth[k] += uint64(size)
					f.Process(k, size)
				}
				reported := map[flow.Key]bool{}
				for _, e := range f.EndInterval() {
					reported[e.Key] = true
				}
				for k, bytes := range truth {
					if bytes >= cfg.Threshold && !reported[k] {
						t.Fatalf("seed %d: flow %v with %d >= %d bytes missed",
							seed, k, bytes, cfg.Threshold)
					}
				}
			}
		})
	}
}

// TestEstimatesAreLowerBoundsWithinT checks both halves of Section 4.2.1:
// estimates never exceed the truth, and the undercount is below T.
func TestEstimatesAreLowerBoundsWithinT(t *testing.T) {
	for name, mutate := range variants() {
		t.Run(name, func(t *testing.T) {
			cfg := mutate(Config{
				Stages:    4,
				Buckets:   256,
				Entries:   100000,
				Threshold: 10000,
				Seed:      3,
			})
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			truth := map[flow.Key]uint64{}
			for i := 0; i < 20000; i++ {
				k := key(uint64(rng.Intn(300)))
				size := uint32(rng.Intn(1460) + 40)
				truth[k] += uint64(size)
				f.Process(k, size)
			}
			for _, e := range f.EndInterval() {
				tr := truth[e.Key]
				if e.Bytes > tr {
					t.Fatalf("estimate %d exceeds truth %d", e.Bytes, tr)
				}
				// Undercount < T + max packet (serial stages can promote a
				// little late; parallel promotes before T is exceeded).
				if tr-e.Bytes >= cfg.Threshold+1500 {
					t.Fatalf("undercount %d >= T=%d for flow with %d bytes",
						tr-e.Bytes, cfg.Threshold, tr)
				}
			}
		})
	}
}

// TestConservativeUpdateReducesFalsePositives reproduces the headline of
// Figure 7: conservative update admits strictly fewer small flows than the
// classic update rule on a skewed workload.
func TestConservativeUpdateReducesFalsePositives(t *testing.T) {
	run := func(conservative bool) int {
		cfg := Config{
			Stages:       3,
			Buckets:      100,
			Entries:      100000,
			Threshold:    50000,
			Conservative: conservative,
			Seed:         7,
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		// 20 elephants drive counters up; 2000 mice try to sneak through.
		for i := 0; i < 60000; i++ {
			var k flow.Key
			if rng.Intn(100) < 50 {
				k = key(uint64(rng.Intn(20)))
			} else {
				k = key(1000 + uint64(rng.Intn(2000)))
			}
			f.Process(k, 1000)
		}
		falsePos := 0
		for _, e := range f.EndInterval() {
			if e.Key.Lo >= 1000 {
				falsePos++
			}
		}
		return falsePos
	}
	classic, conservative := run(false), run(true)
	if conservative > classic {
		t.Errorf("conservative update increased false positives: %d > %d", conservative, classic)
	}
	if classic > 0 && conservative == classic {
		t.Logf("no improvement on this workload: classic=%d conservative=%d", classic, conservative)
	}
}

// TestConservativeCountersNeverLarger: with identical hash seeds and
// workload, every counter under conservative update is <= its value under
// classic update.
func TestConservativeCountersNeverLarger(t *testing.T) {
	mk := func(conservative bool) *Filter {
		cfg := Config{Stages: 3, Buckets: 128, Entries: 10000, Threshold: 1 << 40, Conservative: conservative, Seed: 5}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Threshold is unreachable so no flow is promoted; pure counter math.
	classic, cons := mk(false), mk(true)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		k := key(uint64(rng.Intn(400)))
		size := uint32(rng.Intn(1460) + 40)
		classic.Process(k, size)
		cons.Process(k, size)
	}
	for st := 0; st < 3; st++ {
		for b := 0; b < 128; b++ {
			if cons.CounterValue(st, b) > classic.CounterValue(st, b) {
				t.Fatalf("stage %d bucket %d: conservative %d > classic %d",
					st, b, cons.CounterValue(st, b), classic.CounterValue(st, b))
			}
		}
	}
}

func TestConservativeNoCounterUpdateOnPromotion(t *testing.T) {
	cfg := Config{Stages: 2, Buckets: 64, Entries: 10, Threshold: 1000, Conservative: true, Seed: 2}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Process(key(1), 999)
	before := make([]uint64, 2)
	for st := 0; st < 2; st++ {
		before[st] = f.CounterValue(st, f.BucketOf(st, key(1)))
	}
	f.Process(key(1), 500) // passes: min+size = 1499 >= 1000
	if f.EntriesUsed() != 1 {
		t.Fatal("flow not promoted")
	}
	for st := 0; st < 2; st++ {
		if got := f.CounterValue(st, f.BucketOf(st, key(1))); got != before[st] {
			t.Errorf("stage %d counter changed on promotion: %d -> %d", st, before[st], got)
		}
	}
}

func TestShieldingStopsCounterGrowth(t *testing.T) {
	cfg := Config{Stages: 2, Buckets: 64, Entries: 10, Threshold: 1000, Shield: true, Seed: 2}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Process(key(1), 1000) // promoted immediately
	if f.EntriesUsed() != 1 {
		t.Fatal("flow not promoted")
	}
	before := f.CounterValue(0, f.BucketOf(0, key(1)))
	for i := 0; i < 100; i++ {
		f.Process(key(1), 1000)
	}
	if got := f.CounterValue(0, f.BucketOf(0, key(1))); got != before {
		t.Errorf("shielded flow still grew counters: %d -> %d", before, got)
	}
	// The entry itself keeps counting.
	est := f.EndInterval()
	if est[0].Bytes != 101000 {
		t.Errorf("entry bytes = %d, want 101000", est[0].Bytes)
	}
}

func TestWithoutShieldCountersGrow(t *testing.T) {
	cfg := Config{Stages: 2, Buckets: 64, Entries: 10, Threshold: 1000, Seed: 2}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Process(key(1), 1000)
	before := f.CounterValue(0, f.BucketOf(0, key(1)))
	f.Process(key(1), 500)
	if got := f.CounterValue(0, f.BucketOf(0, key(1))); got != before+500 {
		t.Errorf("unshielded tracked flow: counter %d -> %d, want +500", before, got)
	}
}

func TestSerialEarlyStagesShieldLaterOnes(t *testing.T) {
	cfg := Config{Stages: 3, Buckets: 64, Entries: 10, Threshold: 3000, Serial: true, Seed: 4}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stage threshold is T/d = 1000. A 500-byte packet fails stage 0, so
	// stages 1 and 2 must stay untouched.
	f.Process(key(1), 500)
	if got := f.CounterValue(0, f.BucketOf(0, key(1))); got != 500 {
		t.Errorf("stage 0 counter = %d", got)
	}
	for st := 1; st < 3; st++ {
		if got := f.CounterValue(st, f.BucketOf(st, key(1))); got != 0 {
			t.Errorf("stage %d counter = %d, want 0 (shielded by stage 0)", st, got)
		}
	}
	// A second 500-byte packet brings stage 0 to exactly T/d: it passes
	// stage 0 and hits stage 1.
	f.Process(key(1), 500)
	if got := f.CounterValue(1, f.BucketOf(1, key(1))); got != 500 {
		t.Errorf("stage 1 counter = %d, want 500", got)
	}
}

func TestEndIntervalResetsCounters(t *testing.T) {
	f, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.Process(key(1), 5000)
	f.EndInterval()
	for st := 0; st < 4; st++ {
		if got := f.CounterValue(st, f.BucketOf(st, key(1))); got != 0 {
			t.Errorf("stage %d counter = %d after interval reset", st, got)
		}
	}
}

func TestPreserveAndExactSecondInterval(t *testing.T) {
	cfg := baseConfig()
	cfg.Threshold = 1000
	cfg.Preserve = true
	cfg.Shield = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f.Process(key(1), 500)
	}
	first := f.EndInterval()
	if len(first) != 1 || first[0].Exact {
		t.Fatalf("interval 1: %v", first)
	}
	for i := 0; i < 8; i++ {
		f.Process(key(1), 500)
	}
	second := f.EndInterval()
	if len(second) != 1 || !second[0].Exact || second[0].Bytes != 4000 {
		t.Fatalf("interval 2: %v, want exact 4000", second)
	}
}

func TestDroppedWhenMemoryFull(t *testing.T) {
	cfg := Config{Stages: 1, Buckets: 4096, Entries: 2, Threshold: 100, Seed: 1}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		f.Process(key(i), 100)
	}
	if f.EntriesUsed() != 2 {
		t.Errorf("EntriesUsed = %d", f.EntriesUsed())
	}
	if f.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", f.Dropped())
	}
	f.EndInterval()
	if f.Dropped() != 0 {
		t.Error("Dropped not reset at interval end")
	}
}

func TestMemoryAccessAccounting(t *testing.T) {
	// Table 1: multistage filters cost 1 + d accesses worth of work per
	// packet (one flow memory lookup plus one read and one write per
	// stage).
	cfg := Config{Stages: 4, Buckets: 1024, Entries: 100, Threshold: 1 << 40, Seed: 1}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.Process(key(uint64(i)), 1000)
	}
	c := f.Mem()
	// Per packet: 1 lookup read + 4 stage reads + 4 stage writes = 9.
	if got := c.PerPacket(); got != 9 {
		t.Errorf("PerPacket = %g, want 9", got)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []core.Estimate {
		f, err := New(baseConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 20000; i++ {
			f.Process(key(uint64(rng.Intn(100))), uint32(rng.Intn(1460)+40))
		}
		return f.EndInterval()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("report sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reports diverge at %d", i)
		}
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ core.Algorithm = (*Filter)(nil)
	f, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "multistage-filter" {
		t.Errorf("Name = %q", f.Name())
	}
	cfg := baseConfig()
	cfg.Serial = true
	sf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Name() != "serial-multistage-filter" {
		t.Errorf("serial Name = %q", sf.Name())
	}
	f.SetThreshold(0)
	if f.Threshold() != 1 {
		t.Errorf("SetThreshold(0) -> %d", f.Threshold())
	}
	if f.Capacity() != 2000 {
		t.Errorf("Capacity = %d", f.Capacity())
	}
}

func BenchmarkParallelFilter(b *testing.B) {
	f, err := New(Config{Stages: 4, Buckets: 4096, Entries: 3584, Threshold: 1 << 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Process(key(uint64(i%50000)), 1000)
	}
}

func BenchmarkConservativeFilter(b *testing.B) {
	f, err := New(Config{Stages: 4, Buckets: 4096, Entries: 3584, Threshold: 1 << 30, Conservative: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Process(key(uint64(i%50000)), 1000)
	}
}

func BenchmarkSerialFilter(b *testing.B) {
	f, err := New(Config{Stages: 4, Buckets: 4096, Entries: 3584, Threshold: 1 << 30, Serial: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Process(key(uint64(i%50000)), 1000)
	}
}

func TestCorrectionValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Correction = true
	cfg.Serial = true
	if cfg.Validate() == nil {
		t.Error("Correction+Serial accepted")
	}
}

// TestCorrectionImprovesAccuracy: the Section 4.2.1 correction factor must
// reduce the average absolute error of large-flow estimates when the
// filter operates in its intended regime (stage strength k around 3, as in
// Figure 7): there the counter floor at promotion is mostly the flow's own
// uncounted bytes, so adding it back cancels the systematic undercount.
func TestCorrectionImprovesAccuracy(t *testing.T) {
	// Workload sized for k = T*b/C ~ 3: ~640 kB of traffic against
	// T = 30000 and 64 buckets. Ten elephants of ~55 kB, two hundred mice.
	mkStream := func() []struct {
		k    flow.Key
		size uint32
	} {
		rng := rand.New(rand.NewSource(17))
		var out []struct {
			k    flow.Key
			size uint32
		}
		for i := 0; i < 110; i++ {
			for e := uint64(0); e < 10; e++ {
				out = append(out, struct {
					k    flow.Key
					size uint32
				}{key(e), uint32(rng.Intn(500) + 250)})
			}
		}
		for i := 0; i < 1000; i++ {
			out = append(out, struct {
				k    flow.Key
				size uint32
			}{key(100 + uint64(rng.Intn(200))), uint32(rng.Intn(200) + 40)})
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	run := func(correction bool) (avgErr float64, overestimates int) {
		f, err := New(Config{
			Stages:       3,
			Buckets:      64,
			Entries:      100000,
			Threshold:    30000,
			Conservative: true,
			Correction:   correction,
			Seed:         3,
		})
		if err != nil {
			t.Fatal(err)
		}
		truth := map[flow.Key]uint64{}
		for _, p := range mkStream() {
			truth[p.k] += uint64(p.size)
			f.Process(p.k, p.size)
		}
		var errSum float64
		var n int
		for _, e := range f.EndInterval() {
			tr := float64(truth[e.Key])
			d := float64(e.Bytes) - tr
			if d > 0 {
				overestimates++
			} else {
				d = -d
			}
			errSum += d
			n++
		}
		if n == 0 {
			t.Fatal("no flows reported")
		}
		return errSum / float64(n), overestimates
	}
	plainErr, plainOver := run(false)
	corrErr, _ := run(true)
	if plainOver != 0 {
		t.Fatalf("uncorrected filter overestimated %d flows", plainOver)
	}
	if corrErr >= plainErr {
		t.Errorf("correction did not reduce error: %.0f -> %.0f", plainErr, corrErr)
	}
}

// TestCorrectionBoundedByCounterFloor: corrected estimates never exceed
// truth + the flow's promotion-time counter floor (the debt is a genuine
// bound, not a guess).
func TestCorrectionNeverBelowUncorrected(t *testing.T) {
	mk := func(correction bool) *Filter {
		f, err := New(Config{
			Stages: 3, Buckets: 64, Entries: 100000, Threshold: 30000,
			Conservative: true, Correction: correction, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	plain, corr := mk(false), mk(true)
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 30000; i++ {
		k := key(uint64(rng.Intn(250)))
		size := uint32(rng.Intn(1460) + 40)
		plain.Process(k, size)
		corr.Process(k, size)
	}
	plainEst := map[flow.Key]uint64{}
	for _, e := range plain.EndInterval() {
		plainEst[e.Key] = e.Bytes
	}
	for _, e := range corr.EndInterval() {
		if e.Bytes < plainEst[e.Key] {
			t.Fatalf("corrected estimate %d below uncorrected %d", e.Bytes, plainEst[e.Key])
		}
	}
}

func TestCorrectionClearedByPreserve(t *testing.T) {
	cfg := Config{
		Stages: 2, Buckets: 64, Entries: 10, Threshold: 1000,
		Conservative: true, Correction: true, Preserve: true, Shield: true, Seed: 5,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f.Process(key(1), 400)
	}
	f.EndInterval()
	// Second interval: preserved entry is exact; no debt may be added.
	for i := 0; i < 3; i++ {
		f.Process(key(1), 400)
	}
	est := f.EndInterval()
	if len(est) != 1 || !est[0].Exact || est[0].Bytes != 1200 {
		t.Fatalf("preserved interval estimate = %v, want exact 1200", est)
	}
}
