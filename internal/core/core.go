// Package core defines the shared contract between the paper's measurement
// algorithms (sample and hold, multistage filters) and the components that
// drive them: the measurement device, the threshold adaptation logic, and
// the experiment harness.
//
// An Algorithm sees every packet of its link as a (flow key, size) pair,
// maintains a small flow memory, and at the end of each measurement interval
// reports its traffic estimates for the flows it tracked. The subpackages
// implement the two algorithms plus the flow memory they share.
package core

import (
	"repro/internal/flow"
	"repro/internal/memmodel"
	"repro/internal/telemetry"
)

// Estimate is one flow's reported traffic for a measurement interval.
type Estimate struct {
	Key flow.Key
	// Bytes is the algorithm's estimate of the flow's traffic in the
	// interval. For the paper's algorithms this is a provable lower bound
	// on the true traffic unless a correction factor was applied.
	Bytes uint64
	// Exact reports whether the estimate is known to be exact — true for
	// flows whose entry was preserved from the previous interval, so
	// counting started with the flow's first byte of this interval.
	Exact bool
}

// Algorithm is a traffic measurement algorithm processing one packet at a
// time. Implementations are not safe for concurrent use; a measurement
// device serializes packets the way a router line card would.
type Algorithm interface {
	// Name identifies the algorithm in reports ("sample-and-hold",
	// "multistage-filter", "sampled-netflow", "ordinary-sampling").
	Name() string
	// Process accounts one packet of size bytes belonging to the flow with
	// the given key.
	Process(key flow.Key, size uint32)
	// EndInterval closes the current measurement interval: it returns the
	// estimates for all tracked flows and performs the interval transition
	// (resetting stage counters, applying the entry preservation policy).
	EndInterval() []Estimate
	// EntriesUsed returns the number of flow memory entries currently in
	// use; the threshold adaptation algorithm of Figure 5 steers this.
	EntriesUsed() int
	// Capacity returns the flow memory capacity in entries.
	Capacity() int
	// Threshold returns the current large-flow threshold in bytes.
	Threshold() uint64
	// SetThreshold changes the threshold for subsequent packets; used by
	// dynamic threshold adaptation between intervals.
	SetThreshold(t uint64)
	// Mem returns the algorithm's memory reference accounting.
	Mem() *memmodel.Counter
}

// BatchAlgorithm is implemented by algorithms with a batched fast path.
// ProcessBatch must be observably equivalent to calling Process on each
// (keys[i], sizes[i]) pair in order — same estimates, same memory
// accounting totals — it only amortizes per-packet overhead (hashing
// locality, cost bookkeeping) across the batch. The slices are only valid
// for the duration of the call; implementations must not retain them.
type BatchAlgorithm interface {
	Algorithm
	ProcessBatch(keys []flow.Key, sizes []uint32)
}

// ProcessBatch feeds a batch of packets to alg, using its batched fast path
// when it has one and falling back to per-packet Process otherwise. keys and
// sizes must have equal length.
func ProcessBatch(alg Algorithm, keys []flow.Key, sizes []uint32) {
	if b, ok := alg.(BatchAlgorithm); ok {
		b.ProcessBatch(keys, sizes)
		return
	}
	for i, k := range keys {
		alg.Process(k, sizes[i])
	}
}

// HashBatchAlgorithm is a BatchAlgorithm whose batch kernel can consume a
// per-packet key hash computed upstream instead of rehashing every key. The
// sharded pipeline computes one hash per packet to pick each packet's shard;
// lanes running a HashBatchAlgorithm whose KeyHash matches the producer's
// get that hash delivered with the batch, so across the whole pipeline each
// key is hashed exactly once.
type HashBatchAlgorithm interface {
	BatchAlgorithm
	// KeyHash returns the per-packet hash the kernel derives its flow
	// memory probes from — the function an upstream caller must have used:
	// ProcessBatchHash requires hashes[i] == KeyHash(keys[i]).
	KeyHash(k flow.Key) uint64
	// ProcessBatchHash is ProcessBatch with the per-packet key hashes
	// supplied by the caller. It must be observably equivalent to
	// ProcessBatch on the same keys and sizes.
	ProcessBatchHash(hashes []uint64, keys []flow.Key, sizes []uint32)
}

// ProcessBatchHash feeds a batch with caller-computed key hashes to alg,
// using the hash-reusing fast path when the algorithm has one and falling
// back to ProcessBatch otherwise. hashes[i] must equal alg.KeyHash(keys[i])
// when alg implements HashBatchAlgorithm.
func ProcessBatchHash(alg Algorithm, hashes []uint64, keys []flow.Key, sizes []uint32) {
	if h, ok := alg.(HashBatchAlgorithm); ok {
		h.ProcessBatchHash(hashes, keys, sizes)
		return
	}
	ProcessBatch(alg, keys, sizes)
}

// ReportAppender is implemented by algorithms that can build their interval
// report into caller-owned memory: AppendEstimates is EndInterval with the
// destination supplied. It appends the interval's estimates to dst, performs
// the same interval transition, and returns the extended slice. Callers that
// reuse dst across intervals — the pipeline's per-lane report arenas — get a
// report path with no steady-state allocations.
type ReportAppender interface {
	Algorithm
	AppendEstimates(dst []Estimate) []Estimate
}

// AppendEstimates closes alg's interval, appending its estimates to dst when
// the algorithm supports caller-owned report memory and falling back to
// EndInterval (one allocation per call) otherwise.
func AppendEstimates(alg Algorithm, dst []Estimate) []Estimate {
	if ra, ok := alg.(ReportAppender); ok {
		return ra.AppendEstimates(dst)
	}
	return append(dst, alg.EndInterval()...)
}

// MemoryPressure is implemented by algorithms whose flow memory enforces a
// hard entry cap and counts refusals. The threshold adaptation loop reads
// the count between intervals so sustained rejection pressure raises the
// threshold (Section 5.2's closed loop) instead of going unnoticed.
type MemoryPressure interface {
	Algorithm
	// EntriesRejected returns the cumulative number of flows that qualified
	// for a flow memory entry but were refused because the memory was at
	// its hard cap.
	EntriesRejected() uint64
}

// Instrumented is implemented by algorithms that maintain live telemetry
// counters. Their snapshots are lock-free and safe to take from any
// goroutine while packets are being processed.
type Instrumented interface {
	Algorithm
	// Telemetry returns the algorithm's live counters. The returned pointer
	// is valid for the lifetime of the algorithm.
	Telemetry() *telemetry.Algorithm
}

// Snapshot returns alg's live telemetry. For an Instrumented algorithm this
// reads its atomic counters and is safe during concurrent processing; for
// any other algorithm it synthesizes a snapshot from the Algorithm
// interface (marked Stale), which must only be done while the algorithm is
// quiescent.
func Snapshot(alg Algorithm) telemetry.AlgorithmSnapshot {
	if in, ok := alg.(Instrumented); ok {
		return in.Telemetry().Snapshot()
	}
	mem := alg.Mem()
	return telemetry.AlgorithmSnapshot{
		Name:        alg.Name(),
		Packets:     mem.Packets,
		EntriesUsed: alg.EntriesUsed(),
		Capacity:    alg.Capacity(),
		Threshold:   alg.Threshold(),
		Mem: telemetry.MemSnapshot{
			SRAMReads:  mem.SRAMReads,
			SRAMWrites: mem.SRAMWrites,
			DRAMReads:  mem.DRAMReads,
			DRAMWrites: mem.DRAMWrites,
		},
		Stale: true,
	}
}

// IntervalReport is a measurement device's output for one interval. It
// lives in core so that single devices, sharded pipelines and live runners
// can all expose the same report type with the same ordering guarantees
// (estimates sorted by descending bytes, ties by descending key).
type IntervalReport struct {
	// Interval is the zero-based measurement interval index.
	Interval int
	// Threshold is the large-flow threshold that was in effect during the
	// interval.
	Threshold uint64
	// EntriesUsed is the flow memory usage at the end of the interval,
	// before the interval transition.
	EntriesUsed int
	// Estimates are the tracked flows and their traffic estimates, largest
	// first.
	Estimates []Estimate

	// index maps keys to positions in Estimates; Estimate builds it lazily
	// so repeated lookups are O(1) instead of a linear scan per call.
	index map[flow.Key]int
}

// Estimate returns the reported bytes for a flow and whether it was
// identified at all. The first call builds a key index over Estimates, so
// repeated lookups cost one map access; the index does not track later
// mutation of the Estimates slice. Not safe for concurrent use.
func (r *IntervalReport) Estimate(k flow.Key) (uint64, bool) {
	if r.index == nil {
		r.index = make(map[flow.Key]int, len(r.Estimates))
		for i, e := range r.Estimates {
			if _, dup := r.index[e.Key]; !dup {
				r.index[e.Key] = i
			}
		}
	}
	if i, ok := r.index[k]; ok {
		return r.Estimates[i].Bytes, true
	}
	return 0, false
}
