// Package core defines the shared contract between the paper's measurement
// algorithms (sample and hold, multistage filters) and the components that
// drive them: the measurement device, the threshold adaptation logic, and
// the experiment harness.
//
// An Algorithm sees every packet of its link as a (flow key, size) pair,
// maintains a small flow memory, and at the end of each measurement interval
// reports its traffic estimates for the flows it tracked. The subpackages
// implement the two algorithms plus the flow memory they share.
package core

import (
	"repro/internal/flow"
	"repro/internal/memmodel"
)

// Estimate is one flow's reported traffic for a measurement interval.
type Estimate struct {
	Key flow.Key
	// Bytes is the algorithm's estimate of the flow's traffic in the
	// interval. For the paper's algorithms this is a provable lower bound
	// on the true traffic unless a correction factor was applied.
	Bytes uint64
	// Exact reports whether the estimate is known to be exact — true for
	// flows whose entry was preserved from the previous interval, so
	// counting started with the flow's first byte of this interval.
	Exact bool
}

// Algorithm is a traffic measurement algorithm processing one packet at a
// time. Implementations are not safe for concurrent use; a measurement
// device serializes packets the way a router line card would.
type Algorithm interface {
	// Name identifies the algorithm in reports ("sample-and-hold",
	// "multistage-filter", "sampled-netflow", "ordinary-sampling").
	Name() string
	// Process accounts one packet of size bytes belonging to the flow with
	// the given key.
	Process(key flow.Key, size uint32)
	// EndInterval closes the current measurement interval: it returns the
	// estimates for all tracked flows and performs the interval transition
	// (resetting stage counters, applying the entry preservation policy).
	EndInterval() []Estimate
	// EntriesUsed returns the number of flow memory entries currently in
	// use; the threshold adaptation algorithm of Figure 5 steers this.
	EntriesUsed() int
	// Capacity returns the flow memory capacity in entries.
	Capacity() int
	// Threshold returns the current large-flow threshold in bytes.
	Threshold() uint64
	// SetThreshold changes the threshold for subsequent packets; used by
	// dynamic threshold adaptation between intervals.
	SetThreshold(t uint64)
	// Mem returns the algorithm's memory reference accounting.
	Mem() *memmodel.Counter
}

// BatchAlgorithm is implemented by algorithms with a batched fast path.
// ProcessBatch must be observably equivalent to calling Process on each
// (keys[i], sizes[i]) pair in order — same estimates, same memory
// accounting totals — it only amortizes per-packet overhead (hashing
// locality, cost bookkeeping) across the batch. The slices are only valid
// for the duration of the call; implementations must not retain them.
type BatchAlgorithm interface {
	Algorithm
	ProcessBatch(keys []flow.Key, sizes []uint32)
}

// ProcessBatch feeds a batch of packets to alg, using its batched fast path
// when it has one and falling back to per-packet Process otherwise. keys and
// sizes must have equal length.
func ProcessBatch(alg Algorithm, keys []flow.Key, sizes []uint32) {
	if b, ok := alg.(BatchAlgorithm); ok {
		b.ProcessBatch(keys, sizes)
		return
	}
	for i, k := range keys {
		alg.Process(k, sizes[i])
	}
}
