//go:build !race

// The race detector changes the allocator's behavior, so the allocation
// guards only exist in non-race builds; CI runs them in a dedicated step.

package flowmem

import (
	"testing"

	"repro/internal/flow"
)

// TestLookupUpdateZeroAllocs guards the warm per-packet path: a flow-table
// hit plus a counter update must not allocate — this is the code every
// tracked packet of every algorithm runs.
func TestLookupUpdateZeroAllocs(t *testing.T) {
	m := New(1024)
	const flows = 700
	for i := 0; i < flows; i++ {
		m.Insert(flow.Key{Lo: uint64(i)}, 1)
	}
	var k flow.Key
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		k.Lo = uint64(i % flows)
		i++
		if e := m.Lookup(k); e != nil {
			e.Bytes += 1000
		}
		k.Lo = uint64(i%flows) + flows // miss path
		if m.Lookup(k) != nil {
			t.Fatal("unexpected hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup+update allocates %.1f allocs/op, must be 0", allocs)
	}
}

// TestInsertZeroAllocs guards the promotion path: claiming an empty slot in
// the preallocated table must not allocate, nor may a full-table refusal.
func TestInsertZeroAllocs(t *testing.T) {
	m := New(512)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		m.Insert(flow.Key{Lo: uint64(i)}, 1) // refused once full: still 0 allocs
		i++
	})
	if allocs != 0 {
		t.Fatalf("Insert allocates %.1f allocs/op, must be 0", allocs)
	}
}

// TestReportAmortizedZeroAllocs guards the per-interval report on a warm
// table: after the first call has grown the sorted scratch, repeated
// reports (and preserving interval transitions) must not allocate.
func TestReportAmortizedZeroAllocs(t *testing.T) {
	m := New(1024)
	for i := 0; i < 900; i++ {
		m.Insert(flow.Key{Lo: uint64(i)}, uint64(i*37%5000))
	}
	// Warm both scratch buffers: one Report and one preserving transition.
	m.Report()
	m.EndInterval(Policy{Preserve: true, Threshold: 0})
	allocs := testing.AllocsPerRun(100, func() {
		if r := m.Report(); len(r) != 900 {
			t.Fatal("short report")
		}
		if kept := m.EndInterval(Policy{Preserve: true, Threshold: 0}); kept != 900 {
			t.Fatal("entries lost")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Report+EndInterval allocates %.1f allocs/op, must be 0", allocs)
	}
}
