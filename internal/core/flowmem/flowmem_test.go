package flowmem

import (
	"testing"

	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestInsertLookup(t *testing.T) {
	m := New(4)
	if m.Capacity() != 4 || m.Len() != 0 || m.Full() {
		t.Fatalf("fresh memory state wrong: cap=%d len=%d", m.Capacity(), m.Len())
	}
	e := m.Insert(key(1), 100)
	if e == nil || e.Bytes != 100 || !e.CreatedThisInterval || e.Exact {
		t.Fatalf("Insert returned %+v", e)
	}
	if got := m.Lookup(key(1)); got != e {
		t.Error("Lookup did not return the inserted entry")
	}
	if m.Lookup(key(2)) != nil {
		t.Error("Lookup of absent key returned an entry")
	}
	e.Bytes += 50
	if m.Lookup(key(1)).Bytes != 150 {
		t.Error("entry updates not visible through Lookup")
	}
}

func TestInsertDuplicate(t *testing.T) {
	m := New(4)
	if m.Insert(key(1), 10) == nil {
		t.Fatal("first insert failed")
	}
	if m.Insert(key(1), 10) != nil {
		t.Error("duplicate insert succeeded")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestInsertFull(t *testing.T) {
	m := New(2)
	m.Insert(key(1), 1)
	m.Insert(key(2), 1)
	if !m.Full() {
		t.Fatal("memory should be full")
	}
	if m.Insert(key(3), 1) != nil {
		t.Error("insert into full memory succeeded")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestReportSortedBySize(t *testing.T) {
	m := New(8)
	m.Insert(key(1), 10)
	m.Insert(key(2), 1000)
	m.Insert(key(3), 500)
	r := m.Report()
	if len(r) != 3 {
		t.Fatalf("Report len = %d", len(r))
	}
	if r[0].Bytes != 1000 || r[1].Bytes != 500 || r[2].Bytes != 10 {
		t.Errorf("Report order: %v", r)
	}
}

func TestReportDeterministicOnTies(t *testing.T) {
	mk := func() []Entry {
		m := New(16)
		for i := uint64(0); i < 10; i++ {
			m.Insert(key(i), 42)
		}
		return m.Report()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("Report order not deterministic on equal sizes")
		}
	}
}

func TestEndIntervalNoPreserveClears(t *testing.T) {
	m := New(4)
	m.Insert(key(1), 1000000)
	kept := m.EndInterval(Policy{Preserve: false, Threshold: 10})
	if kept != 0 || m.Len() != 0 {
		t.Errorf("kept=%d len=%d after non-preserving transition", kept, m.Len())
	}
}

func TestEndIntervalPreserve(t *testing.T) {
	m := New(8)
	m.Insert(key(1), 2000) // above threshold: kept
	m.Insert(key(2), 100)  // below threshold but created this interval: kept
	kept := m.EndInterval(Policy{Preserve: true, Threshold: 1000})
	if kept != 2 {
		t.Fatalf("kept = %d, want 2 (conservative rule keeps new entries)", kept)
	}
	for _, k := range []flow.Key{key(1), key(2)} {
		e := m.Lookup(k)
		if e == nil {
			t.Fatalf("entry %v dropped", k)
		}
		if e.Bytes != 0 || !e.Exact || e.CreatedThisInterval {
			t.Errorf("preserved entry not reset: %+v", e)
		}
	}
}

func TestEndIntervalPreservedOldEntriesNeedThreshold(t *testing.T) {
	m := New(8)
	m.Insert(key(1), 2000)
	m.EndInterval(Policy{Preserve: true, Threshold: 1000})
	// Next interval: the preserved entry counts only 50 bytes. It is no
	// longer "created this interval", so it must meet the threshold to
	// survive again.
	m.Lookup(key(1)).Bytes = 50
	kept := m.EndInterval(Policy{Preserve: true, Threshold: 1000})
	if kept != 0 || m.Lookup(key(1)) != nil {
		t.Error("stale preserved entry below threshold survived")
	}
}

func TestEndIntervalEarlyRemoval(t *testing.T) {
	m := New(8)
	m.Insert(key(1), 2000) // >= T: kept
	m.Insert(key(2), 200)  // >= R: kept
	m.Insert(key(3), 100)  // < R: removed early
	kept := m.EndInterval(Policy{Preserve: true, Threshold: 1000, EarlyRemoval: 150})
	if kept != 2 {
		t.Fatalf("kept = %d, want 2", kept)
	}
	if m.Lookup(key(3)) != nil {
		t.Error("entry below early removal threshold survived")
	}
	if m.Lookup(key(1)) == nil || m.Lookup(key(2)) == nil {
		t.Error("entries above early removal threshold dropped")
	}
}

func TestEndIntervalFreesCapacity(t *testing.T) {
	m := New(2)
	m.Insert(key(1), 1)
	m.Insert(key(2), 1)
	m.EndInterval(Policy{Preserve: true, Threshold: 10, EarlyRemoval: 5})
	if m.Full() {
		t.Error("early removal did not free capacity")
	}
	if m.Insert(key(3), 1) == nil {
		t.Error("insert after cleanup failed")
	}
}

func TestPreserveExactLifecycle(t *testing.T) {
	// An entry preserved across two boundaries stays exact while above
	// threshold.
	m := New(4)
	m.Insert(key(1), 5000)
	m.EndInterval(Policy{Preserve: true, Threshold: 1000})
	e := m.Lookup(key(1))
	e.Bytes = 3000 // counted exactly during interval 2
	m.EndInterval(Policy{Preserve: true, Threshold: 1000})
	e = m.Lookup(key(1))
	if e == nil || !e.Exact {
		t.Error("long-lived large flow lost exactness")
	}
}
