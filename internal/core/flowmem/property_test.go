package flowmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

// TestQuickCapacityInvariant: Len never exceeds Capacity under random
// insert/transition sequences.
func TestQuickCapacityInvariant(t *testing.T) {
	check := func(seed int64, capRaw uint8, ops []uint16) bool {
		capacity := 1 + int(capRaw)%32
		m := New(capacity)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				m.Insert(flow.Key{Lo: uint64(op % 64)}, uint64(rng.Intn(10000)))
			case 2:
				if e := m.Lookup(flow.Key{Lo: uint64(op % 64)}); e != nil {
					e.Bytes += uint64(rng.Intn(5000))
				}
			case 3:
				m.EndInterval(Policy{
					Preserve:     op%8 >= 4,
					Threshold:    3000,
					EarlyRemoval: uint64(op % 3 * 500),
				})
			}
			if m.Len() > m.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickEndIntervalPolicy: after a preserving transition, every
// surviving entry is reset, exact, and met the policy; every removed entry
// failed it.
func TestQuickEndIntervalPolicy(t *testing.T) {
	check := func(seed int64, threshold, early uint16) bool {
		th := uint64(threshold) + 1
		r := uint64(early) % th // R < T
		m := New(256)
		rng := rand.New(rand.NewSource(seed))
		type snap struct {
			bytes   uint64
			created bool
		}
		before := map[flow.Key]snap{}
		for i := 0; i < 100; i++ {
			k := flow.Key{Lo: uint64(i)}
			e := m.Insert(k, uint64(rng.Intn(int(th*2))))
			if i%3 == 0 {
				e.CreatedThisInterval = false // simulate an older entry
			}
			before[k] = snap{e.Bytes, e.CreatedThisInterval}
		}
		m.EndInterval(Policy{Preserve: true, Threshold: th, EarlyRemoval: r})
		for k, s := range before {
			e := m.Lookup(k)
			shouldKeep := s.bytes >= th || (s.created && s.bytes >= r)
			if shouldKeep != (e != nil) {
				return false
			}
			if e != nil && (e.Bytes != 0 || !e.Exact || e.CreatedThisInterval) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// refMemory is a deliberately naive map-based model of the flow memory —
// the layout the open-addressing table replaced. The differential test
// below drives both through randomized op sequences and demands identical
// observable behavior.
type refMemory struct {
	capacity int
	entries  map[flow.Key]*Entry
	rejected uint64
}

func newRef(capacity int) *refMemory {
	return &refMemory{capacity: capacity, entries: make(map[flow.Key]*Entry)}
}

func (m *refMemory) Lookup(key flow.Key) *Entry { return m.entries[key] }

func (m *refMemory) Insert(key flow.Key, initialBytes uint64) *Entry {
	if len(m.entries) >= m.capacity {
		m.rejected++
		return nil
	}
	if _, exists := m.entries[key]; exists {
		return nil
	}
	e := &Entry{Key: key, Bytes: initialBytes, CreatedThisInterval: true}
	m.entries[key] = e
	return e
}

func (m *refMemory) EndInterval(p Policy) int {
	if !p.Preserve {
		m.entries = make(map[flow.Key]*Entry)
		return 0
	}
	for k, e := range m.entries {
		keep := e.Bytes >= p.Threshold
		if !keep && e.CreatedThisInterval {
			keep = e.Bytes >= p.EarlyRemoval
		}
		if !keep {
			delete(m.entries, k)
			continue
		}
		e.Bytes = 0
		e.Debt = 0
		e.CreatedThisInterval = false
		e.Exact = true
	}
	return len(m.entries)
}

// TestDifferentialVsMapModel: the open-addressing table and the map model
// must agree on every observable — lookup results, insert outcomes,
// rejection counts, lengths, sorted reports and interval survivors — under
// randomized insert/lookup/update/interval sequences, including key
// patterns (dense low bits, Key{0,0}) that stress probing.
func TestDifferentialVsMapModel(t *testing.T) {
	check := func(seed int64, capRaw uint8, ops []uint32) bool {
		capacity := 1 + int(capRaw)%48
		m := New(capacity)
		ref := newRef(capacity)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			// Keys collide on purpose: a small key space with two shapes
			// (low-word-only and full 128-bit) exercises probe chains.
			k := flow.Key{Lo: uint64(op % 97)}
			if op%3 == 0 {
				k.Hi = uint64(op % 5)
			}
			switch op % 5 {
			case 0, 1:
				bytes := uint64(rng.Intn(10000))
				got, want := m.Insert(k, bytes), ref.Insert(k, bytes)
				if (got == nil) != (want == nil) {
					t.Logf("Insert(%v) disagreement", k)
					return false
				}
			case 2:
				got, want := m.Lookup(k), ref.Lookup(k)
				if (got == nil) != (want == nil) {
					t.Logf("Lookup(%v) presence disagreement", k)
					return false
				}
				if got != nil {
					if *got != *want {
						t.Logf("Lookup(%v): %+v vs %+v", k, *got, *want)
						return false
					}
					add := uint64(rng.Intn(5000))
					got.Bytes += add
					want.Bytes += add
				}
			case 3:
				p := Policy{
					Preserve:     op%7 >= 3,
					Threshold:    1 + uint64(op%4)*2500,
					EarlyRemoval: uint64(op % 3 * 500),
				}
				if got, want := m.EndInterval(p), ref.EndInterval(p); got != want {
					t.Logf("EndInterval kept %d vs %d", got, want)
					return false
				}
			case 4:
				rep := m.Report()
				if len(rep) != len(ref.entries) {
					t.Logf("Report len %d vs %d", len(rep), len(ref.entries))
					return false
				}
				for i, e := range rep {
					want := ref.entries[e.Key]
					if want == nil || *want != e {
						t.Logf("Report[%d] = %+v, model has %+v", i, e, want)
						return false
					}
					if i > 0 && e.Bytes > rep[i-1].Bytes {
						t.Log("Report not sorted")
						return false
					}
				}
			}
			if m.Len() != len(ref.entries) || m.Rejected() != ref.rejected {
				t.Logf("Len %d vs %d, Rejected %d vs %d",
					m.Len(), len(ref.entries), m.Rejected(), ref.rejected)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEntryPointerStability: pointers returned by Insert and Lookup must
// stay valid (and keep addressing the same entry) for the whole interval —
// inserts never move existing entries, a property callers rely on when they
// update Bytes through a held pointer.
func TestEntryPointerStability(t *testing.T) {
	m := New(128)
	held := make(map[flow.Key]*Entry)
	for i := 0; i < 128; i++ {
		k := flow.Key{Lo: uint64(i * 13)}
		if e := m.Insert(k, uint64(i)); e != nil {
			held[k] = e
		}
	}
	for k, e := range held {
		if got := m.Lookup(k); got != e {
			t.Fatalf("Lookup(%v) moved: %p vs held %p", k, got, e)
		}
		if e.Key != k {
			t.Fatalf("held pointer for %v now holds %v", k, e.Key)
		}
	}
}

// TestQuickReportConservation: the report reflects exactly the live
// entries, sorted by size.
func TestQuickReportConservation(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		m := New(300)
		rng := rand.New(rand.NewSource(seed))
		want := map[flow.Key]uint64{}
		for i := 0; i < int(n); i++ {
			k := flow.Key{Lo: uint64(i)}
			b := uint64(rng.Intn(100000))
			if m.Insert(k, b) != nil {
				want[k] = b
			}
		}
		rep := m.Report()
		if len(rep) != len(want) {
			return false
		}
		for i, e := range rep {
			if want[e.Key] != e.Bytes {
				return false
			}
			if i > 0 && e.Bytes > rep[i-1].Bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
