package flowmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

// TestQuickCapacityInvariant: Len never exceeds Capacity under random
// insert/transition sequences.
func TestQuickCapacityInvariant(t *testing.T) {
	check := func(seed int64, capRaw uint8, ops []uint16) bool {
		capacity := 1 + int(capRaw)%32
		m := New(capacity)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				m.Insert(flow.Key{Lo: uint64(op % 64)}, uint64(rng.Intn(10000)))
			case 2:
				if e := m.Lookup(flow.Key{Lo: uint64(op % 64)}); e != nil {
					e.Bytes += uint64(rng.Intn(5000))
				}
			case 3:
				m.EndInterval(Policy{
					Preserve:     op%8 >= 4,
					Threshold:    3000,
					EarlyRemoval: uint64(op % 3 * 500),
				})
			}
			if m.Len() > m.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickEndIntervalPolicy: after a preserving transition, every
// surviving entry is reset, exact, and met the policy; every removed entry
// failed it.
func TestQuickEndIntervalPolicy(t *testing.T) {
	check := func(seed int64, threshold, early uint16) bool {
		th := uint64(threshold) + 1
		r := uint64(early) % th // R < T
		m := New(256)
		rng := rand.New(rand.NewSource(seed))
		type snap struct {
			bytes   uint64
			created bool
		}
		before := map[flow.Key]snap{}
		for i := 0; i < 100; i++ {
			k := flow.Key{Lo: uint64(i)}
			e := m.Insert(k, uint64(rng.Intn(int(th*2))))
			if i%3 == 0 {
				e.CreatedThisInterval = false // simulate an older entry
			}
			before[k] = snap{e.Bytes, e.CreatedThisInterval}
		}
		m.EndInterval(Policy{Preserve: true, Threshold: th, EarlyRemoval: r})
		for k, s := range before {
			e := m.Lookup(k)
			shouldKeep := s.bytes >= th || (s.created && s.bytes >= r)
			if shouldKeep != (e != nil) {
				return false
			}
			if e != nil && (e.Bytes != 0 || !e.Exact || e.CreatedThisInterval) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickReportConservation: the report reflects exactly the live
// entries, sorted by size.
func TestQuickReportConservation(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		m := New(300)
		rng := rand.New(rand.NewSource(seed))
		want := map[flow.Key]uint64{}
		for i := 0; i < int(n); i++ {
			k := flow.Key{Lo: uint64(i)}
			b := uint64(rng.Intn(100000))
			if m.Insert(k, b) != nil {
				want[k] = b
			}
		}
		rep := m.Report()
		if len(rep) != len(want) {
			return false
		}
		for i, e := range rep {
			if want[e.Key] != e.Bytes {
				return false
			}
			if i > 0 && e.Bytes > rep[i-1].Bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
