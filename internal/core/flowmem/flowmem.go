// Package flowmem implements the flow memory shared by the paper's
// algorithms: a bounded table of per-flow entries held in (simulated) SRAM.
// Once a flow earns an entry — by being sampled, or by passing the
// multistage filter — every one of its subsequent packets updates the entry,
// so its traffic from that point on is counted exactly.
//
// The package also implements the interval-transition policies of Section
// 3.3.1: preserving entries of large flows across measurement intervals and
// the early removal threshold of sample and hold.
package flowmem

import (
	"sort"

	"repro/internal/flow"
)

// Entry is one tracked flow.
type Entry struct {
	Key flow.Key
	// Bytes counted for the flow in the current measurement interval since
	// the entry existed.
	Bytes uint64
	// CreatedThisInterval marks entries added in the current interval
	// (their counts may miss the flow's earlier bytes and they are subject
	// to the early removal rule).
	CreatedThisInterval bool
	// Exact marks entries preserved from a previous interval: counting
	// covered the whole interval, so Bytes is the flow's exact traffic.
	Exact bool
	// Debt is an upper bound on the bytes the flow may have sent before
	// the entry was created (the counter floor at promotion for multistage
	// filters). Estimate-correcting reports add it to Bytes, trading the
	// lower-bound property for accuracy (Section 4.2.1 of the paper).
	Debt uint64
}

// Memory is a bounded flow table.
type Memory struct {
	capacity int
	entries  map[flow.Key]*Entry
	// rejected counts inserts refused because the table was at capacity —
	// the memory-pressure signal threshold adaptation feeds on.
	rejected uint64
}

// New creates a flow memory with room for capacity entries. It panics if
// capacity < 1.
func New(capacity int) *Memory {
	if capacity < 1 {
		panic("flowmem: capacity must be at least 1")
	}
	return &Memory{
		capacity: capacity,
		entries:  make(map[flow.Key]*Entry, capacity),
	}
}

// Capacity returns the table capacity in entries.
func (m *Memory) Capacity() int { return m.capacity }

// Len returns the number of entries in use.
func (m *Memory) Len() int { return len(m.entries) }

// Full reports whether the table is at capacity.
func (m *Memory) Full() bool { return len(m.entries) >= m.capacity }

// Lookup returns the entry for key, or nil.
func (m *Memory) Lookup(key flow.Key) *Entry { return m.entries[key] }

// Rejected returns the cumulative number of inserts refused because the
// table was full. It never resets: callers tracking per-interval pressure
// take deltas.
func (m *Memory) Rejected() uint64 { return m.rejected }

// Insert adds an entry for key with an initial byte count. It returns nil
// when the table is full or the key is already present (callers are expected
// to Lookup first). Full-table refusals are counted in Rejected.
func (m *Memory) Insert(key flow.Key, initialBytes uint64) *Entry {
	if m.Full() {
		m.rejected++
		return nil
	}
	if _, exists := m.entries[key]; exists {
		return nil
	}
	e := &Entry{Key: key, Bytes: initialBytes, CreatedThisInterval: true}
	m.entries[key] = e
	return e
}

// Policy is the interval-transition policy of Section 3.3.1.
type Policy struct {
	// Preserve keeps entries across the interval boundary instead of
	// erasing the table: entries that counted at least Threshold bytes
	// (identified large flows) and entries created during the interval
	// (possible large flows identified late) survive with their counters
	// reset, so the next interval is measured exactly from its first byte.
	Preserve bool
	// Threshold is the large-flow threshold T in bytes.
	Threshold uint64
	// EarlyRemoval, when non-zero, is the early removal threshold R < T:
	// entries created this interval survive only if they counted at least
	// R bytes. It prunes the small flows that sample and hold's false
	// positives would otherwise carry into the next interval.
	EarlyRemoval uint64
}

// Report returns the current entries as estimates, sorted by descending
// byte count (ties broken by key for determinism).
func (m *Memory) Report() []Entry {
	out := make([]Entry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Key.Hi != out[j].Key.Hi {
			return out[i].Key.Hi > out[j].Key.Hi
		}
		return out[i].Key.Lo > out[j].Key.Lo
	})
	return out
}

// EndInterval applies the transition policy: without preservation the table
// is erased; with it, surviving entries get their byte counts reset and are
// marked Exact for the next interval. It returns the number of entries
// kept.
func (m *Memory) EndInterval(p Policy) int {
	if !p.Preserve {
		m.entries = make(map[flow.Key]*Entry, m.capacity)
		return 0
	}
	for k, e := range m.entries {
		keep := e.Bytes >= p.Threshold
		if !keep && e.CreatedThisInterval {
			keep = e.Bytes >= p.EarlyRemoval
		}
		if !keep {
			delete(m.entries, k)
			continue
		}
		e.Bytes = 0
		e.Debt = 0
		e.CreatedThisInterval = false
		e.Exact = true
	}
	return len(m.entries)
}
