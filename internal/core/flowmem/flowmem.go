// Package flowmem implements the flow memory shared by the paper's
// algorithms: a bounded table of per-flow entries held in (simulated) SRAM.
// Once a flow earns an entry — by being sampled, or by passing the
// multistage filter — every one of its subsequent packets updates the entry,
// so its traffic from that point on is counted exactly.
//
// The package also implements the interval-transition policies of Section
// 3.3.1: preserving entries of large flows across measurement intervals and
// the early removal threshold of sample and hold.
//
// # Memory layout
//
// Like the SRAM flow memory the paper models, the table is a flat,
// preallocated array: entries live in an open-addressing hash table with
// linear probing, sized at construction and never reallocated. A lookup is a
// hash, a scan of a few occupancy bytes, and a key compare — a constant
// number of touches to memory that stays cache-resident, with no pointer
// chasing and no steady-state allocation. Entries never move while an
// interval is in progress (inserts only claim empty slots), so pointers
// returned by Lookup and Insert stay valid until the next EndInterval, which
// evicts by rebuilding the table without tombstones.
//
// Each slot's 64-bit probe hash is stored in a dense array parallel to the
// entries. Probes compare the stored hash before touching the entry, so a
// collision chain scans compact hash words (8 per cache line) and loads a
// 48-byte entry only on a near-certain match — and the key is never hashed
// twice: batch kernels precompute the hash once per packet (LookupHash,
// InsertHash, Prefetch) and the interval-transition rebuild re-homes
// surviving entries from their stored hashes.
package flowmem

import (
	"slices"

	"repro/internal/flow"
)

// Entry is one tracked flow.
type Entry struct {
	Key flow.Key
	// Bytes counted for the flow in the current measurement interval since
	// the entry existed.
	Bytes uint64
	// CreatedThisInterval marks entries added in the current interval
	// (their counts may miss the flow's earlier bytes and they are subject
	// to the early removal rule).
	CreatedThisInterval bool
	// Exact marks entries preserved from a previous interval: counting
	// covered the whole interval, so Bytes is the flow's exact traffic.
	Exact bool
	// Debt is an upper bound on the bytes the flow may have sent before
	// the entry was created (the counter floor at promotion for multistage
	// filters). Estimate-correcting reports add it to Bytes, trading the
	// lower-bound property for accuracy (Section 4.2.1 of the paper).
	Debt uint64
}

// Memory is a bounded flow table.
type Memory struct {
	capacity int
	// mask is len(slots)-1; the slot count is a power of two at most 2/3
	// full when the table holds capacity entries, so probe chains stay
	// short.
	mask uint64
	// ctrl marks occupied slots (1) so probing scans one compact byte per
	// slot and touches an Entry only on a potential match.
	ctrl []uint8
	// hashes[i] is slot i's full 64-bit probe hash; probes compare it
	// before loading the entry, so collision chains stay in the dense
	// hash array.
	hashes []uint64
	slots  []Entry
	count  int
	// rejected counts inserts refused because the table was at capacity —
	// the memory-pressure signal threshold adaptation feeds on.
	rejected uint64

	// prefetchSink accumulates the values Prefetch loads, so the compiler
	// cannot eliminate the warming loads as dead.
	prefetchSink uint64

	// reportScratch and keepScratch are grow-only: Report and EndInterval
	// reuse them so steady-state intervals allocate nothing once warm.
	reportScratch []Entry
	keepScratch   []kept
}

// kept is a surviving entry and its stored probe hash, carried across the
// EndInterval rebuild so re-homing never rehashes the key.
type kept struct {
	e Entry
	h uint64
}

// New creates a flow memory with room for capacity entries. It panics if
// capacity < 1.
func New(capacity int) *Memory {
	if capacity < 1 {
		panic("flowmem: capacity must be at least 1")
	}
	slots := nextPow2(capacity + capacity/2)
	return &Memory{
		capacity: capacity,
		mask:     uint64(slots - 1),
		ctrl:     make([]uint8, slots),
		hashes:   make([]uint64, slots),
		slots:    make([]Entry, slots),
	}
}

// nextPow2 returns the smallest power of two >= n (and at least 8).
func nextPow2(n int) int {
	p := 8
	for p < n {
		p <<= 1
	}
	return p
}

// Hash mixes the 128-bit flow key down to the 64-bit value that seeds the
// probe sequence. The table is not adversary-facing (keys already went
// through the measurement path), so a fixed strong mix suffices and keeps
// behavior reproducible run to run. It is exported so batch kernels can
// compute it once per packet during their hash phase and pass it to
// Prefetch, LookupHash and InsertHash.
func Hash(k flow.Key) uint64 {
	h := k.Lo*0x9E3779B97F4A7C15 + k.Hi*0xC2B2AE3D27D4EB4F
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	return h
}

// Capacity returns the table capacity in entries.
func (m *Memory) Capacity() int { return m.capacity }

// Len returns the number of entries in use.
func (m *Memory) Len() int { return m.count }

// Full reports whether the table is at capacity.
func (m *Memory) Full() bool { return m.count >= m.capacity }

// Lookup returns the entry for key, or nil. The pointer stays valid — and
// the entry in place — until the next EndInterval.
func (m *Memory) Lookup(key flow.Key) *Entry {
	return m.LookupHash(Hash(key), key)
}

// LookupHash is Lookup with the key's probe hash (Hash(key)) precomputed by
// the caller — the batch kernels hash each packet once and reuse the value
// for prefetch, lookup and insert.
func (m *Memory) LookupHash(h uint64, key flow.Key) *Entry {
	i := h & m.mask
	for m.ctrl[i] != 0 {
		if m.hashes[i] == h && m.slots[i].Key == key {
			return &m.slots[i]
		}
		i = (i + 1) & m.mask
	}
	return nil
}

// Prefetch warms the cache lines a probe for hash h will touch: the home
// slot's control byte, hash word and entry. Go has no portable prefetch
// intrinsic, so the warming is done with real loads folded into a sink
// field the compiler cannot eliminate; issued a short distance ahead of the
// probe, the loads' misses overlap instead of serializing.
func (m *Memory) Prefetch(h uint64) {
	i := h & m.mask
	m.prefetchSink += uint64(m.ctrl[i]) + m.hashes[i] + m.slots[i].Bytes
}

// Rejected returns the cumulative number of inserts refused because the
// table was full. It never resets: callers tracking per-interval pressure
// take deltas.
func (m *Memory) Rejected() uint64 { return m.rejected }

// Insert adds an entry for key with an initial byte count. It returns nil
// when the table is full or the key is already present (callers are expected
// to Lookup first). Full-table refusals are counted in Rejected.
func (m *Memory) Insert(key flow.Key, initialBytes uint64) *Entry {
	return m.InsertHash(Hash(key), key, initialBytes)
}

// InsertHash is Insert with the key's probe hash precomputed by the caller.
func (m *Memory) InsertHash(h uint64, key flow.Key, initialBytes uint64) *Entry {
	if m.Full() {
		m.rejected++
		return nil
	}
	i := h & m.mask
	for m.ctrl[i] != 0 {
		if m.hashes[i] == h && m.slots[i].Key == key {
			return nil
		}
		i = (i + 1) & m.mask
	}
	m.ctrl[i] = 1
	m.hashes[i] = h
	m.count++
	e := &m.slots[i]
	*e = Entry{Key: key, Bytes: initialBytes, CreatedThisInterval: true}
	return e
}

// insertKept re-homes a surviving entry during the EndInterval rebuild from
// its stored probe hash — the key is never rehashed. The table was just
// cleared, so the slot found is always empty.
func (m *Memory) insertKept(k kept) {
	i := k.h & m.mask
	for m.ctrl[i] != 0 {
		i = (i + 1) & m.mask
	}
	m.ctrl[i] = 1
	m.hashes[i] = k.h
	m.count++
	m.slots[i] = k.e
}

// Policy is the interval-transition policy of Section 3.3.1.
type Policy struct {
	// Preserve keeps entries across the interval boundary instead of
	// erasing the table: entries that counted at least Threshold bytes
	// (identified large flows) and entries created during the interval
	// (possible large flows identified late) survive with their counters
	// reset, so the next interval is measured exactly from its first byte.
	Preserve bool
	// Threshold is the large-flow threshold T in bytes.
	Threshold uint64
	// EarlyRemoval, when non-zero, is the early removal threshold R < T:
	// entries created this interval survive only if they counted at least
	// R bytes. It prunes the small flows that sample and hold's false
	// positives would otherwise carry into the next interval.
	EarlyRemoval uint64
}

// Report returns the current entries as estimates, sorted by descending
// byte count (ties broken by key for determinism). The returned slice is
// scratch reused by the next Report call; callers must not retain it across
// calls.
func (m *Memory) Report() []Entry {
	out := m.reportScratch[:0]
	for i, c := range m.ctrl {
		if c != 0 {
			out = append(out, m.slots[i])
		}
	}
	slices.SortFunc(out, func(a, b Entry) int {
		if a.Bytes != b.Bytes {
			if a.Bytes > b.Bytes {
				return -1
			}
			return 1
		}
		if a.Key.Hi != b.Key.Hi {
			if a.Key.Hi > b.Key.Hi {
				return -1
			}
			return 1
		}
		if a.Key.Lo != b.Key.Lo {
			if a.Key.Lo > b.Key.Lo {
				return -1
			}
			return 1
		}
		return 0
	})
	m.reportScratch = out
	return out
}

// EndInterval applies the transition policy: without preservation the table
// is erased; with it, surviving entries get their byte counts reset and are
// marked Exact for the next interval. Eviction is tombstone-free: survivors
// are collected and the table rebuilt, so probe chains stay intact and
// short. It returns the number of entries kept. Entry pointers obtained
// before the call are invalid afterwards.
func (m *Memory) EndInterval(p Policy) int {
	if !p.Preserve {
		m.clear()
		return 0
	}
	keep := m.keepScratch[:0]
	for i, c := range m.ctrl {
		if c == 0 {
			continue
		}
		e := m.slots[i]
		survives := e.Bytes >= p.Threshold
		if !survives && e.CreatedThisInterval {
			survives = e.Bytes >= p.EarlyRemoval
		}
		if !survives {
			continue
		}
		e.Bytes = 0
		e.Debt = 0
		e.CreatedThisInterval = false
		e.Exact = true
		keep = append(keep, kept{e: e, h: m.hashes[i]})
	}
	m.clear()
	for _, k := range keep {
		m.insertKept(k)
	}
	m.keepScratch = keep
	return m.count
}

// clear empties the table in place.
func (m *Memory) clear() {
	clear(m.ctrl)
	m.count = 0
}
