// Package sampleandhold implements the paper's first algorithm (Section
// 3.1). Each byte is sampled with probability p = O/T, where T is the
// large-flow threshold and O the oversampling factor. When a byte of a flow
// with no entry is sampled, an entry is created; from then on every packet
// of the flow updates the entry, so — unlike Sampled NetFlow — the flow's
// traffic after detection is counted exactly.
//
// Byte sampling is implemented by geometric skip counting: instead of
// flipping a coin per byte, the distance to the next sampled byte is drawn
// from the geometric distribution, and packets of untracked flows consume
// that distance. This is exact and takes O(1) time per packet.
//
// The optimizations of Section 3.3.1 are supported: preserving entries
// across measurement intervals and the early removal threshold R.
package sampleandhold

import (
	"math"
	"math/rand"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/core/flowmem"
	"repro/internal/flow"
	"repro/internal/memmodel"
	"repro/internal/telemetry"
)

// Config configures a sample-and-hold instance.
type Config struct {
	// Entries is the flow memory capacity.
	Entries int
	// MaxEntries, when non-zero, hard-caps the flow memory below Entries —
	// a resource bound imposed from outside (a global SRAM budget shared
	// with other devices) that wins over the sizing target. Inserts beyond
	// the cap are refused and counted in EntriesRejected, which the
	// threshold adaptation loop reads as pressure.
	MaxEntries int
	// Threshold is the large-flow threshold T in bytes per interval.
	Threshold uint64
	// Oversampling is the factor O; the byte sampling probability is
	// p = Oversampling / Threshold. The paper's experiments use 4 (4.7
	// when early removal is enabled).
	Oversampling float64
	// Preserve enables preserving entries across intervals.
	Preserve bool
	// EarlyRemoval is the early removal threshold as a fraction of the
	// threshold (the paper uses 0.15); zero disables early removal.
	// It only takes effect together with Preserve.
	EarlyRemoval float64
	// Correction, when set, adds the expected undercount 1/p to every
	// estimate (Section 4.1.1). It reduces the expected error but forfeits
	// the lower-bound property that makes estimates safe for billing.
	Correction bool
	// PrefetchTiles is the fused kernel's software-pipeline depth: the hash
	// phase (and its prefetching loads) runs this many tiles ahead of the
	// update phase, hiding table misses behind useful work when the flow
	// memory outgrows cache. 0 selects DefaultPrefetchTiles, -1 disables the
	// lookahead (hash and update the same tile back to back), and values up
	// to MaxPrefetchTiles pipeline deeper. Any setting is bit-identical to
	// any other; only memory-latency overlap changes.
	PrefetchTiles int
	// Seed seeds the sampling randomness.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries < 1 {
		return cfgerr.New("sampleandhold", "Entries", "must be at least 1, got %d", c.Entries)
	}
	if c.MaxEntries < 0 {
		return cfgerr.New("sampleandhold", "MaxEntries", "must not be negative, got %d", c.MaxEntries)
	}
	if c.Threshold < 1 {
		return cfgerr.New("sampleandhold", "Threshold", "must be at least 1, got %d", c.Threshold)
	}
	if c.Oversampling <= 0 {
		return cfgerr.New("sampleandhold", "Oversampling", "must be positive, got %g", c.Oversampling)
	}
	if c.EarlyRemoval < 0 || c.EarlyRemoval >= 1 {
		return cfgerr.New("sampleandhold", "EarlyRemoval", "%g out of [0, 1)", c.EarlyRemoval)
	}
	if c.PrefetchTiles < -1 || c.PrefetchTiles > MaxPrefetchTiles {
		return cfgerr.New("sampleandhold", "PrefetchTiles", "%d out of [-1, %d]", c.PrefetchTiles, MaxPrefetchTiles)
	}
	return nil
}

// SampleAndHold implements core.Algorithm.
type SampleAndHold struct {
	cfg  Config
	mem  *flowmem.Memory
	rng  *rand.Rand
	cost memmodel.Counter
	tel  telemetry.Algorithm

	p    float64 // byte sampling probability
	skip int64   // bytes of untracked traffic until the next sample

	// batchHash is grow-only scratch holding each packet's flow memory
	// probe hash, computed once in the fused kernel's hash phase and
	// reused for prefetch, lookup and insert.
	batchHash []uint64
	// lookahead is the resolved software-pipeline depth in tiles (from
	// Config.PrefetchTiles).
	lookahead int
}

// fusedTile is the number of packets per hash→prefetch→update tile of the
// fused ProcessBatch kernel: small enough that the tile's flow memory lines
// stay L1-resident between the hash phase and the update phase, large
// enough that the hash phase keeps many independent misses in flight.
const fusedTile = 32

// DefaultPrefetchTiles is the software-pipeline depth used when
// Config.PrefetchTiles is zero: the hash phase runs two tiles (2×fusedTile
// packets) ahead of the update phase — deep enough to cover a DRAM miss
// issued at hash time with a full tile of update work, shallow enough that
// the in-flight tiles' lines survive in L1/L2. Chosen by the prefetch
// distance sweep in EXPERIMENTS.md.
const DefaultPrefetchTiles = 2

// MaxPrefetchTiles bounds Config.PrefetchTiles; beyond this depth the
// prefetched lines start being evicted before the update phase reaches
// them, so deeper pipelines only waste bandwidth.
const MaxPrefetchTiles = 8

// New creates a sample-and-hold instance.
func New(cfg Config) (*SampleAndHold, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capacity := cfg.Entries
	if cfg.MaxEntries > 0 && cfg.MaxEntries < capacity {
		capacity = cfg.MaxEntries
	}
	s := &SampleAndHold{
		cfg: cfg,
		mem: flowmem.New(capacity),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	s.setProbability()
	s.skip = s.nextSkip()
	switch cfg.PrefetchTiles {
	case 0:
		s.lookahead = DefaultPrefetchTiles
	case -1:
		s.lookahead = 0
	default:
		s.lookahead = cfg.PrefetchTiles
	}
	s.tel.Init(s.Name(), capacity, cfg.Threshold)
	return s, nil
}

func (s *SampleAndHold) setProbability() {
	s.p = s.cfg.Oversampling / float64(s.cfg.Threshold)
	if s.p > 1 {
		s.p = 1
	}
}

// nextSkip draws the number of bytes until (and including) the next sampled
// byte: geometric on {1, 2, ...} with success probability p.
func (s *SampleAndHold) nextSkip() int64 {
	if s.p >= 1 {
		return 1
	}
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	n := int64(math.Ceil(math.Log(u) / math.Log(1-s.p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Name implements core.Algorithm.
func (s *SampleAndHold) Name() string { return "sample-and-hold" }

// Process implements core.Algorithm. Every packet costs one flow memory
// lookup; packets of tracked flows cost one additional write.
func (s *SampleAndHold) Process(key flow.Key, size uint32) {
	s.cost.Packet()
	s.cost.SRAM(1, 0) // flow memory lookup
	s.processOne(key, size)
	s.tel.Observe(1, uint64(size), s.cost, s.mem.Len())
}

func (s *SampleAndHold) processOne(key flow.Key, size uint32) {
	if e := s.mem.Lookup(key); e != nil {
		e.Bytes += uint64(size)
		s.cost.SRAM(0, 1)
		return
	}
	// Untracked flow: its bytes consume the sampling skip.
	s.skip -= int64(size)
	if s.skip > 0 {
		return
	}
	s.skip = s.nextSkip()
	// Sampled. Count the whole packet: the bytes before the sampled byte
	// belong to the same packet and are known (the paper notes this makes
	// the real algorithm slightly more accurate than the analysis).
	if s.mem.Insert(key, uint64(size)) != nil {
		s.cost.SRAM(0, 1)
		s.tel.FilterPass()
	} else {
		s.tel.Drop()
	}
}

// ProcessBatch implements core.BatchAlgorithm with the fused kernel: the
// batch streams through in tiles of fusedTile packets, a hash phase
// computing each packet's flow memory probe hash once and warming its home
// slot's cache lines with prefetching loads, software-pipelined
// Config.PrefetchTiles tiles ahead of an update phase running the
// lookup/sample/insert logic against cache-resident lines with the skip
// state held in a register. The memory-reference accounting for the whole
// batch is folded into the cost counter with a single Add, and the sampling
// draws consume the RNG in exactly the order the per-packet path would, so
// the two paths produce identical estimates.
func (s *SampleAndHold) ProcessBatch(keys []flow.Key, sizes []uint32) {
	s.processBatchFused(nil, keys, sizes)
}

// KeyHash implements core.HashBatchAlgorithm: the fused kernel probes the
// flow memory with flowmem.Hash, so upstream hash forwarding applies.
func (s *SampleAndHold) KeyHash(k flow.Key) uint64 { return flowmem.Hash(k) }

// ProcessBatchHash implements core.HashBatchAlgorithm: ProcessBatch with
// the per-packet flow memory probe hashes supplied by the caller
// (hashes[i] must equal KeyHash(keys[i])).
func (s *SampleAndHold) ProcessBatchHash(hashes []uint64, keys []flow.Key, sizes []uint32) {
	s.processBatchFused(hashes, keys, sizes)
}

// hashAHTile fills bh for the packets in [lo, hi) — from ext when the
// caller already computed the hashes, otherwise by hashing — and issues the
// prefetching loads for their home flow memory slots.
func (s *SampleAndHold) hashAHTile(ext []uint64, keys []flow.Key, bh []uint64, lo, hi int) {
	if ext != nil {
		for j := lo; j < hi; j++ {
			bh[j] = ext[j]
			s.mem.Prefetch(ext[j])
		}
		return
	}
	for j := lo; j < hi; j++ {
		h := flowmem.Hash(keys[j])
		bh[j] = h
		s.mem.Prefetch(h)
	}
}

// processBatchFused is the fused kernel behind ProcessBatch and
// ProcessBatchHash; ext, when non-nil, holds caller-computed probe hashes.
func (s *SampleAndHold) processBatchFused(ext []uint64, keys []flow.Key, sizes []uint32) {
	n := len(keys)
	if cap(s.batchHash) < n {
		s.batchHash = make([]uint64, n)
	}
	bh := s.batchHash[:n]
	var reads, writes, bytes, passes uint64
	skip := s.skip
	// Software pipeline: hash (and prefetch) the first lookahead tiles,
	// then keep the hash phase lookahead tiles ahead of the update phase.
	ht := 0
	for i := 0; i < s.lookahead && ht < n; i++ {
		end := min(ht+fusedTile, n)
		s.hashAHTile(ext, keys, bh, ht, end)
		ht = end
	}
	for t := 0; t < n; t += fusedTile {
		if ht < n {
			end := min(ht+fusedTile, n)
			s.hashAHTile(ext, keys, bh, ht, end)
			ht = end
		}
		end := min(t+fusedTile, n)
		for j := t; j < end; j++ {
			key := keys[j]
			size := sizes[j]
			bytes += uint64(size)
			reads++ // flow memory lookup
			if e := s.mem.LookupHash(bh[j], key); e != nil {
				e.Bytes += uint64(size)
				writes++
				continue
			}
			// Untracked flow: its bytes consume the sampling skip.
			skip -= int64(size)
			if skip > 0 {
				continue
			}
			skip = s.nextSkip()
			if s.mem.InsertHash(bh[j], key, uint64(size)) != nil {
				writes++
				passes++
			} else {
				s.tel.Drop()
			}
		}
	}
	s.skip = skip
	s.cost.Add(memmodel.Counter{
		SRAMReads: reads, SRAMWrites: writes, Packets: uint64(n),
	})
	if passes != 0 {
		s.tel.FilterPasses(passes)
	}
	s.tel.Observe(uint64(n), bytes, s.cost, s.mem.Len())
}

// ProcessBatchUnfused is the pre-fusion batch kernel, kept as the reference
// implementation for differential tests and before/after benchmarks: one
// sweep, each packet hashed at its lookup (and hashed again on insert), no
// prefetch. It must produce reports bit-identical to ProcessBatch.
func (s *SampleAndHold) ProcessBatchUnfused(keys []flow.Key, sizes []uint32) {
	var reads, writes, bytes, passes uint64
	skip := s.skip
	for i, key := range keys {
		size := sizes[i]
		bytes += uint64(size)
		reads++ // flow memory lookup
		if e := s.mem.Lookup(key); e != nil {
			e.Bytes += uint64(size)
			writes++
			continue
		}
		// Untracked flow: its bytes consume the sampling skip.
		skip -= int64(size)
		if skip > 0 {
			continue
		}
		skip = s.nextSkip()
		if s.mem.Insert(key, uint64(size)) != nil {
			writes++
			passes++
		} else {
			s.tel.Drop()
		}
	}
	s.skip = skip
	s.cost.Add(memmodel.Counter{
		SRAMReads: reads, SRAMWrites: writes, Packets: uint64(len(keys)),
	})
	if passes != 0 {
		s.tel.FilterPasses(passes)
	}
	s.tel.Observe(uint64(len(keys)), bytes, s.cost, s.mem.Len())
}

// EndInterval implements core.Algorithm.
func (s *SampleAndHold) EndInterval() []core.Estimate {
	return s.AppendEstimates(make([]core.Estimate, 0, s.mem.Len()))
}

// AppendEstimates implements core.ReportAppender: EndInterval building the
// report into caller-owned memory.
func (s *SampleAndHold) AppendEstimates(dst []core.Estimate) []core.Estimate {
	entries := s.mem.Report()
	correction := uint64(0)
	if s.cfg.Correction && s.p > 0 {
		correction = uint64(1 / s.p)
	}
	for _, e := range entries {
		est := core.Estimate{Key: e.Key, Bytes: e.Bytes, Exact: e.Exact}
		if !e.Exact {
			est.Bytes += correction
		}
		dst = append(dst, est)
	}
	before := s.mem.Len()
	kept := s.mem.EndInterval(flowmem.Policy{
		Preserve:     s.cfg.Preserve,
		Threshold:    s.cfg.Threshold,
		EarlyRemoval: uint64(s.cfg.EarlyRemoval * float64(s.cfg.Threshold)),
	})
	s.tel.ObserveInterval(s.cfg.Threshold, kept, before-kept)
	return dst
}

// EntriesUsed implements core.Algorithm.
func (s *SampleAndHold) EntriesUsed() int { return s.mem.Len() }

// Capacity implements core.Algorithm.
func (s *SampleAndHold) Capacity() int { return s.mem.Capacity() }

// Threshold implements core.Algorithm.
func (s *SampleAndHold) Threshold() uint64 { return s.cfg.Threshold }

// SetThreshold implements core.Algorithm: it re-derives the sampling
// probability p = O/T from the new threshold.
func (s *SampleAndHold) SetThreshold(t uint64) {
	if t < 1 {
		t = 1
	}
	s.cfg.Threshold = t
	s.setProbability()
	s.tel.SetThreshold(t)
}

// Mem implements core.Algorithm.
func (s *SampleAndHold) Mem() *memmodel.Counter { return &s.cost }

// EntriesRejected implements core.MemoryPressure.
func (s *SampleAndHold) EntriesRejected() uint64 { return s.mem.Rejected() }

// Telemetry implements core.Instrumented.
func (s *SampleAndHold) Telemetry() *telemetry.Algorithm { return &s.tel }

// SamplingProbability returns the current per-byte sampling probability.
func (s *SampleAndHold) SamplingProbability() float64 { return s.p }
