//go:build !race

// The race detector changes the allocator's behavior, so the allocation
// guards only exist in non-race builds; CI runs them in a dedicated step.

package sampleandhold

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

// TestBatchScratchGrowOnly replays batches of wildly mixed sizes through the
// fused ProcessBatch and asserts the hash scratch (batchHash) is grow-only:
// after one batch at the maximum size has grown it, no batch may allocate.
func TestBatchScratchGrowOnly(t *testing.T) {
	s, err := New(Config{Entries: 4096, Threshold: 1 << 20, Oversampling: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const maxBatch = 256
	keys := make([]flow.Key, maxBatch)
	sizes := make([]uint32, maxBatch)
	for i := range keys {
		keys[i] = flow.Key{Lo: uint64(i * 7)}
		sizes[i] = 1000
	}
	// Warm the scratch with the largest batch once.
	s.ProcessBatch(keys, sizes)
	mixed := []int{maxBatch, 7, 128, 1, 64, 255, 3, maxBatch, 31}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		n := mixed[i%len(mixed)]
		i++
		s.ProcessBatch(keys[:n], sizes[:n])
	})
	if allocs != 0 {
		t.Fatalf("mixed-size ProcessBatch allocates %.1f allocs/op, must be 0", allocs)
	}
}

// TestAppendEstimatesZeroAllocs guards the report-arena path: building the
// interval report into caller-owned memory must not allocate once the arena
// and the flow memory's scratch are warm. Oversampling far above the
// threshold forces p = 1, so every key is tracked and every interval's
// report is non-trivial.
func TestAppendEstimatesZeroAllocs(t *testing.T) {
	s, err := New(Config{Entries: 256, Threshold: 1000, Oversampling: 1e9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]flow.Key, 64)
	sizes := make([]uint32, 64)
	for i := range keys {
		keys[i] = flow.Key{Lo: uint64(i + 1)}
		sizes[i] = 2000
	}
	arena := make([]core.Estimate, 0, 256)
	// Warm: one full interval cycle grows the report scratch.
	s.ProcessBatch(keys, sizes)
	arena = s.AppendEstimates(arena[:0])
	allocs := testing.AllocsPerRun(200, func() {
		s.ProcessBatch(keys, sizes)
		arena = s.AppendEstimates(arena[:0])
		if len(arena) != len(keys) {
			t.Fatalf("short report: %d estimates", len(arena))
		}
	})
	if allocs != 0 {
		t.Fatalf("warm interval cycle allocates %.1f allocs/op, must be 0", allocs)
	}
}
