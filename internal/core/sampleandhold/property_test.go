package sampleandhold

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

// TestQuickLowerBound: without the correction factor, no estimate ever
// exceeds a flow's true traffic, for random workloads and configurations.
func TestQuickLowerBound(t *testing.T) {
	check := func(seed int64, oversampFactor uint8, preserve bool, earlyRemoval bool) bool {
		cfg := Config{
			Entries:      1 << 18,
			Threshold:    5000,
			Oversampling: 0.5 + float64(oversampFactor%40)/4,
			Preserve:     preserve,
			Seed:         seed,
		}
		if earlyRemoval && preserve {
			cfg.EarlyRemoval = 0.15
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		// Two intervals, so preserved entries are exercised too.
		for interval := 0; interval < 2; interval++ {
			truth := map[flow.Key]uint64{}
			for i := 0; i < 4000; i++ {
				k := flow.Key{Lo: uint64(rng.Intn(150))}
				size := uint32(rng.Intn(1460) + 40)
				truth[k] += uint64(size)
				s.Process(k, size)
			}
			for _, e := range s.EndInterval() {
				if e.Bytes > truth[e.Key] {
					return false
				}
				// Exactness claims must be literally true.
				if e.Exact && e.Bytes != truth[e.Key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickMemoryNeverExceedsCapacity: the flow memory respects its bound
// no matter how aggressive the sampling.
func TestQuickMemoryNeverExceedsCapacity(t *testing.T) {
	check := func(seed int64, entries uint8) bool {
		cap := 1 + int(entries)%64
		s, err := New(Config{
			Entries:      cap,
			Threshold:    100,
			Oversampling: 100, // p = 1: every packet sampled
			Preserve:     true,
			Seed:         seed,
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			s.Process(flow.Key{Lo: rng.Uint64()}, 100)
			if s.EntriesUsed() > cap {
				return false
			}
		}
		return len(s.EndInterval()) <= cap
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeldFlowsCountedExactlyAfterEntry: once a flow has an entry,
// every subsequent byte is counted — the "hold" half of the algorithm.
func TestQuickHeldFlowsCountedExactlyAfterEntry(t *testing.T) {
	check := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		s, err := New(Config{
			Entries:      8,
			Threshold:    1000,
			Oversampling: 1000, // p = 1: first packet creates the entry
			Seed:         seed,
		})
		if err != nil {
			return false
		}
		var total uint64
		k := flow.Key{Lo: 9}
		for _, raw := range sizes {
			size := uint32(raw%1460) + 40
			total += uint64(size)
			s.Process(k, size)
		}
		est := s.EndInterval()
		return len(est) == 1 && est[0].Bytes == total
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
