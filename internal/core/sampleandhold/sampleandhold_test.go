package sampleandhold

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func baseConfig() Config {
	return Config{
		Entries:      1000,
		Threshold:    10000,
		Oversampling: 4,
		Seed:         1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Entries = 0 },
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Oversampling = 0 },
		func(c *Config) { c.EarlyRemoval = -0.1 },
		func(c *Config) { c.EarlyRemoval = 1 },
	}
	for i, mutate := range mutations {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with zero config succeeded")
	}
}

func TestSamplingProbabilityDerivation(t *testing.T) {
	// Paper Section 4.1: p = O / T. For the running example (T = 1 Mbyte,
	// O = 20), p must be 1 in 50,000 bytes.
	s, err := New(Config{Entries: 10, Threshold: 1000000, Oversampling: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SamplingProbability(); math.Abs(got-1.0/50000) > 1e-12 {
		t.Errorf("p = %g, want 2e-5", got)
	}
	// p saturates at 1.
	s.SetThreshold(10)
	if s.SamplingProbability() != 1 {
		t.Errorf("p = %g, want 1 when O > T", s.SamplingProbability())
	}
}

func TestHoldCountsEverythingAfterSampling(t *testing.T) {
	// With p = 1 the first packet is always sampled, so the whole flow is
	// counted exactly.
	s, err := New(Config{Entries: 10, Threshold: 5, Oversampling: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Process(key(7), 100)
	}
	est := s.EndInterval()
	if len(est) != 1 || est[0].Bytes != 1000 {
		t.Fatalf("estimates = %v, want one flow with 1000 bytes", est)
	}
}

func TestEstimatesAreLowerBounds(t *testing.T) {
	// Without the correction factor, "we never overestimate the size of the
	// flow" — the provable-lower-bound property that makes the scheme safe
	// for billing.
	for seed := int64(0); seed < 20; seed++ {
		s, err := New(Config{Entries: 10000, Threshold: 3000, Oversampling: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		truth := map[flow.Key]uint64{}
		for i := 0; i < 5000; i++ {
			k := key(uint64(rng.Intn(200)))
			size := uint32(rng.Intn(1460) + 40)
			truth[k] += uint64(size)
			s.Process(k, size)
		}
		for _, e := range s.EndInterval() {
			if e.Bytes > truth[e.Key] {
				t.Fatalf("seed %d: estimate %d exceeds truth %d", seed, e.Bytes, truth[e.Key])
			}
		}
	}
}

func TestOversamplingDetectsThresholdFlows(t *testing.T) {
	// Paper Section 4.1.1: a flow at the threshold is missed with
	// probability ~e^-O. With O = 20 misses are essentially impossible;
	// run 100 independent trials of a flow sending exactly T bytes.
	misses := 0
	for seed := int64(0); seed < 100; seed++ {
		s, err := New(Config{Entries: 100000, Threshold: 100000, Oversampling: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var sent uint64
		for sent < 100000 {
			s.Process(key(1), 1000)
			sent += 1000
		}
		if len(s.EndInterval()) == 0 {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/100 threshold flows missed with O=20 (expected ~e^-20 rate)", misses)
	}
}

func TestExpectedErrorNearOneOverP(t *testing.T) {
	// Section 4.1.1: E[s-c] <= 1/p (byte-level analysis; packetization
	// makes the real algorithm more accurate). Average over many runs.
	const (
		threshold = 100000
		oversamp  = 10
		flowBytes = 200000
		pktSize   = 100
		runs      = 300
	)
	p := float64(oversamp) / threshold
	var errSum float64
	detected := 0
	for seed := int64(0); seed < runs; seed++ {
		s, err := New(Config{Entries: 10, Threshold: threshold, Oversampling: oversamp, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for sent := 0; sent < flowBytes; sent += pktSize {
			s.Process(key(1), pktSize)
		}
		est := s.EndInterval()
		if len(est) == 1 {
			detected++
			errSum += float64(flowBytes) - float64(est[0].Bytes)
		}
	}
	if detected < runs*95/100 {
		t.Fatalf("only %d/%d flows detected", detected, runs)
	}
	avgErr := errSum / float64(detected)
	// 1/p = 10000. Packet quantization reduces the error by up to one
	// half-packet on average; accept a broad band around the theory.
	if avgErr < 0.5/p || avgErr > 1.5/p {
		t.Errorf("average error %.0f, want within [%.0f, %.0f] of 1/p = %.0f",
			avgErr, 0.5/p, 1.5/p, 1/p)
	}
}

func TestCorrectionAddsOneOverP(t *testing.T) {
	mkRun := func(correct bool) uint64 {
		s, err := New(Config{Entries: 10, Threshold: 100000, Oversampling: 10, Seed: 7, Correction: correct})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			s.Process(key(1), 100)
		}
		est := s.EndInterval()
		if len(est) != 1 {
			t.Fatal("flow not detected")
		}
		return est[0].Bytes
	}
	plain, corrected := mkRun(false), mkRun(true)
	if corrected != plain+10000 {
		t.Errorf("correction: plain %d corrected %d, want +1/p = +10000", plain, corrected)
	}
}

func TestPreserveMakesSecondIntervalExact(t *testing.T) {
	s, err := New(Config{Entries: 100, Threshold: 1000, Oversampling: 4, Preserve: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Interval 1: large flow gets an entry (estimate may be partial).
	for i := 0; i < 100; i++ {
		s.Process(key(1), 100)
	}
	first := s.EndInterval()
	if len(first) != 1 || first[0].Exact {
		t.Fatalf("interval 1: %v", first)
	}
	// Interval 2: the preserved entry counts every byte.
	for i := 0; i < 77; i++ {
		s.Process(key(1), 100)
	}
	second := s.EndInterval()
	if len(second) != 1 || !second[0].Exact || second[0].Bytes != 7700 {
		t.Fatalf("interval 2: %v, want exact 7700", second)
	}
}

func TestNoPreserveClearsBetweenIntervals(t *testing.T) {
	s, err := New(Config{Entries: 100, Threshold: 10, Oversampling: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Process(key(1), 100)
	s.EndInterval()
	if s.EntriesUsed() != 0 {
		t.Error("entries survived a non-preserving transition")
	}
}

func TestEarlyRemovalPrunesSmallEntries(t *testing.T) {
	cfg := Config{Entries: 10000, Threshold: 100000, Oversampling: 50, Preserve: true, EarlyRemoval: 0.15, Seed: 5}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Many small flows (will be sampled, stay below R = 15000) plus one
	// large flow above T.
	for f := uint64(0); f < 300; f++ {
		for i := 0; i < 10; i++ {
			s.Process(key(f+100), 500) // 5000 bytes each: below R
		}
	}
	for i := 0; i < 300; i++ {
		s.Process(key(1), 500) // 150000 bytes: above T
	}
	used := s.EntriesUsed()
	s.EndInterval()
	kept := s.EntriesUsed()
	if kept >= used {
		t.Fatalf("early removal kept %d of %d entries", kept, used)
	}
	// The large flow must survive.
	found := false
	for i := 0; i < 10; i++ {
		s.Process(key(1), 100)
	}
	for _, e := range s.EndInterval() {
		if e.Key == key(1) && e.Exact {
			found = true
		}
	}
	if !found {
		t.Error("large flow did not survive early removal")
	}
}

func TestMemoryFullDropsGracefully(t *testing.T) {
	s, err := New(Config{Entries: 2, Threshold: 10, Oversampling: 10, Seed: 1}) // p = 1
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		s.Process(key(i), 100)
	}
	if s.EntriesUsed() != 2 {
		t.Errorf("EntriesUsed = %d, want capacity 2", s.EntriesUsed())
	}
	if len(s.EndInterval()) != 2 {
		t.Error("report size should match capacity")
	}
}

func TestMemoryAccessAccounting(t *testing.T) {
	s, err := New(Config{Entries: 10, Threshold: 1 << 40, Oversampling: 0.0001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// p is astronomically small: packets are never sampled, each costs
	// exactly one SRAM read (the flow memory lookup).
	for i := 0; i < 100; i++ {
		s.Process(key(uint64(i)), 1000)
	}
	c := s.Mem()
	if c.Packets != 100 || c.SRAMReads != 100 || c.SRAMWrites != 0 {
		t.Errorf("untracked flows: %+v", *c)
	}
	if got := c.PerPacket(); got != 1 {
		t.Errorf("PerPacket = %g, want 1 (Table 1)", got)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []core.Estimate {
		s, err := New(baseConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 10000; i++ {
			s.Process(key(uint64(rng.Intn(50))), uint32(rng.Intn(1460)+40))
		}
		return s.EndInterval()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different report sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ core.Algorithm = (*SampleAndHold)(nil)
	s, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sample-and-hold" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Capacity() != 1000 || s.Threshold() != 10000 {
		t.Error("Capacity/Threshold accessors wrong")
	}
	s.SetThreshold(0) // clamps to 1
	if s.Threshold() != 1 {
		t.Errorf("SetThreshold(0) -> %d", s.Threshold())
	}
}

func BenchmarkProcess(b *testing.B) {
	s, err := New(Config{Entries: 4096, Threshold: 1 << 20, Oversampling: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Process(key(uint64(i%10000)), 1000)
	}
}

func BenchmarkProcessTracked(b *testing.B) {
	s, err := New(Config{Entries: 16, Threshold: 10, Oversampling: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s.Process(key(1), 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(key(1), 1000)
	}
}
