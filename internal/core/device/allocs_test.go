//go:build !race

// The race detector changes the allocator's behavior, so the allocation
// guard only exists in non-race builds; CI runs it in a dedicated step.

package device

import (
	"testing"

	"repro/internal/core/multistage"
	"repro/internal/flow"
)

// TestPacketBatchScratchGrowOnly replays bursts of mixed sizes through the
// device's PacketBatch and asserts the key-extraction scratch is grow-only:
// once a maximum-size burst has grown it, bursts of any smaller size must
// not allocate (the scratch must never shrink-and-reallocate).
func TestPacketBatchScratchGrowOnly(t *testing.T) {
	alg, err := multistage.New(multistage.Config{
		Stages: 4, Buckets: 1024, Entries: 512, Threshold: 1 << 20,
		Conservative: true, Shield: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(alg, flow.FiveTuple{}, nil)
	const maxBurst = 256
	pkts := make([]flow.Packet, maxBurst)
	for i := range pkts {
		pkts[i] = flow.Packet{Size: 1000, SrcIP: uint32(i), DstIP: 2, Proto: 6}
	}
	d.PacketBatch(pkts) // warm the scratch at the largest size
	mixed := []int{maxBurst, 9, 100, 1, 64, 255, 2, maxBurst}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		n := mixed[i%len(mixed)]
		i++
		d.PacketBatch(pkts[:n])
	})
	if allocs != 0 {
		t.Fatalf("mixed-size PacketBatch allocates %.1f allocs/op, must be 0", allocs)
	}
}
