package device

import (
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/core/multistage"
	"repro/internal/core/sampleandhold"
	"repro/internal/flow"
	"repro/internal/trace"
)

func testTrace() (*trace.SliceSource, flow.Key, flow.Key) {
	meta := trace.Meta{
		Name:            "t",
		LinkBytesPerSec: 1e6,
		Interval:        time.Second,
		Intervals:       3,
	}
	var pkts []flow.Packet
	mk := func(at time.Duration, src uint32, size uint32) flow.Packet {
		return flow.Packet{Time: at, Size: size, SrcIP: src, DstIP: 99, DstPort: 80, Proto: 6}
	}
	// Flow 1 is an elephant present in all intervals; flow 2 is a mouse.
	for iv := 0; iv < 3; iv++ {
		base := time.Duration(iv) * time.Second
		for i := 0; i < 100; i++ {
			pkts = append(pkts, mk(base+time.Duration(i)*time.Millisecond, 1, 1000))
		}
		pkts = append(pkts, mk(base+500*time.Millisecond, 2, 40))
	}
	k1 := flow.FiveTuple{}.Key(&pkts[0])
	p2 := mk(0, 2, 40)
	k2 := flow.FiveTuple{}.Key(&p2)
	return trace.NewSliceSource(meta, pkts), k1, k2
}

func TestDeviceWithSampleAndHold(t *testing.T) {
	src, k1, _ := testTrace()
	alg, err := sampleandhold.New(sampleandhold.Config{
		Entries:      100,
		Threshold:    10000,
		Oversampling: 20,
		Preserve:     true,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(alg, flow.FiveTuple{}, nil)
	if _, err := trace.Replay(src, d); err != nil {
		t.Fatal(err)
	}
	reports := d.Reports()
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	// The elephant sends 100 kB/interval with p = 20/10000: it must be
	// identified in every interval, and exactly from interval 2 on.
	for i, r := range reports {
		got, ok := r.Estimate(k1)
		if !ok {
			t.Fatalf("interval %d: elephant not identified", i)
		}
		if i > 0 && got != 100000 {
			t.Errorf("interval %d: estimate %d, want exact 100000", i, got)
		}
	}
}

func TestDeviceWithMultistageFilter(t *testing.T) {
	src, k1, k2 := testTrace()
	alg, err := multistage.New(multistage.Config{
		Stages:       2,
		Buckets:      512,
		Entries:      100,
		Threshold:    50000,
		Conservative: true,
		Shield:       true,
		Preserve:     true,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(alg, flow.FiveTuple{}, nil)
	if _, err := trace.Replay(src, d); err != nil {
		t.Fatal(err)
	}
	for i, r := range d.Reports() {
		if _, ok := r.Estimate(k1); !ok {
			t.Fatalf("interval %d: elephant missed (no false negatives!)", i)
		}
		if _, ok := r.Estimate(k2); ok {
			t.Errorf("interval %d: 40-byte mouse identified", i)
		}
	}
}

func TestDeviceAdaptationAdjustsThreshold(t *testing.T) {
	src, _, _ := testTrace()
	alg, err := sampleandhold.New(sampleandhold.Config{
		Entries:      1000,
		Threshold:    1 << 30, // absurdly high: nothing sampled
		Oversampling: 4,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(alg, flow.FiveTuple{}, adapt.New(adapt.SampleAndHoldDefaults()))
	if _, err := trace.Replay(src, d); err != nil {
		t.Fatal(err)
	}
	reports := d.Reports()
	// Empty memory must drive the threshold down interval over interval.
	if reports[len(reports)-1].Threshold >= reports[0].Threshold {
		t.Errorf("threshold did not adapt down: %d -> %d",
			reports[0].Threshold, reports[len(reports)-1].Threshold)
	}
}

func TestDeviceOnReportCallback(t *testing.T) {
	src, _, _ := testTrace()
	alg, err := sampleandhold.New(sampleandhold.Config{
		Entries: 10, Threshold: 1000, Oversampling: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := New(alg, flow.FiveTuple{}, nil)
	d.KeepReports = false
	var got []int
	d.OnReport = func(r IntervalReport) { got = append(got, r.Interval) }
	if _, err := trace.Replay(src, d); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("callback intervals = %v", got)
	}
	if d.Reports() != nil {
		t.Error("KeepReports=false still accumulated reports")
	}
}

func TestIntervalReportEstimate(t *testing.T) {
	r := IntervalReport{Estimates: []core.Estimate{{Key: flow.Key{Lo: 1}, Bytes: 42}}}
	if got, ok := r.Estimate(flow.Key{Lo: 1}); !ok || got != 42 {
		t.Errorf("Estimate = %d,%v", got, ok)
	}
	if _, ok := r.Estimate(flow.Key{Lo: 2}); ok {
		t.Error("report claimed to know an absent flow")
	}
}

func TestDeviceAccessors(t *testing.T) {
	alg, err := sampleandhold.New(sampleandhold.Config{Entries: 10, Threshold: 100, Oversampling: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := New(alg, flow.DstIP{}, nil)
	if d.Algorithm() != alg {
		t.Error("Algorithm accessor wrong")
	}
	if d.Definition().Name() != "dstIP" {
		t.Error("Definition accessor wrong")
	}
}

// TestIntervalReportEstimateIndexed: repeated lookups go through the lazily
// built key index and agree with a linear scan, including after many calls
// and for absent keys.
func TestIntervalReportEstimateIndexed(t *testing.T) {
	r := IntervalReport{}
	for i := 1; i <= 100; i++ {
		r.Estimates = append(r.Estimates, core.Estimate{Key: flow.Key{Lo: uint64(i)}, Bytes: uint64(i * 10)})
	}
	for round := 0; round < 3; round++ {
		for i := 1; i <= 100; i++ {
			if got, ok := r.Estimate(flow.Key{Lo: uint64(i)}); !ok || got != uint64(i*10) {
				t.Fatalf("round %d key %d: Estimate = %d,%v", round, i, got, ok)
			}
		}
		if _, ok := r.Estimate(flow.Key{Lo: 999}); ok {
			t.Fatal("report claimed to know an absent flow")
		}
	}
}

// noBatch hides an algorithm's ProcessBatch method, forcing Device and
// core.ProcessBatch onto the per-packet fallback shim.
type noBatch struct{ core.Algorithm }

// TestDevicePacketBatchMatchesPerPacket: the device's batched entry point
// produces the same reports as per-packet delivery, both for an algorithm
// with a batched kernel (multistage) and for one without (noBatch forces the
// per-packet fallback shim).
func TestDevicePacketBatchMatchesPerPacket(t *testing.T) {
	for _, shim := range []bool{false, true} {
		t.Run(map[bool]string{false: "batched-kernel", true: "fallback-shim"}[shim], func(t *testing.T) {
			testDevicePacketBatch(t, shim)
		})
	}
}

func testDevicePacketBatch(t *testing.T, shim bool) {
	mkAlg := func() core.Algorithm {
		alg, err := multistage.New(multistage.Config{
			Stages: 3, Buckets: 64, Entries: 32, Threshold: 5000,
			Conservative: true, Shield: true, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if shim {
			return noBatch{alg}
		}
		return alg
	}
	src, _, _ := testTrace()
	var pkts []flow.Packet
	for {
		p, err := src.Next()
		if err != nil {
			break
		}
		pkts = append(pkts, p)
	}
	perPacket := New(mkAlg(), flow.FiveTuple{}, nil)
	for i := range pkts {
		perPacket.Packet(&pkts[i])
	}
	perPacket.EndInterval(0)

	batched := New(mkAlg(), flow.FiveTuple{}, nil)
	batched.PacketBatch(pkts[:len(pkts)/2])
	batched.PacketBatch(pkts[len(pkts)/2:])
	batched.EndInterval(0)

	a, b := perPacket.Reports()[0], batched.Reports()[0]
	if len(a.Estimates) != len(b.Estimates) {
		t.Fatalf("%d vs %d estimates", len(a.Estimates), len(b.Estimates))
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("estimate %d: %+v vs %+v", i, a.Estimates[i], b.Estimates[i])
		}
	}
}
