package device

import "repro/internal/flow"

// Multi fans one packet stream out to several devices — the deployment the
// paper describes when an operator wants multiple flow definitions at the
// same vantage point ("we need a separate instance of our algorithms for
// each of them"): e.g. a 5-tuple device for accounting next to a
// destination-IP device for attack detection. Multi implements
// trace.Consumer.
type Multi struct {
	devices []*Device
}

// NewMulti groups devices; at least one is required (it panics otherwise,
// since an empty group is a programming error, not an input condition).
func NewMulti(devices ...*Device) *Multi {
	if len(devices) == 0 {
		panic("device: NewMulti needs at least one device")
	}
	return &Multi{devices: devices}
}

// Devices returns the grouped devices in order.
func (m *Multi) Devices() []*Device { return m.devices }

// Packet implements trace.Consumer.
func (m *Multi) Packet(p *flow.Packet) {
	for _, d := range m.devices {
		d.Packet(p)
	}
}

// PacketBatch implements trace.BatchConsumer: each device sees the whole
// batch through its own batched path.
func (m *Multi) PacketBatch(pkts []flow.Packet) {
	for _, d := range m.devices {
		d.PacketBatch(pkts)
	}
}

// EndInterval implements trace.Consumer.
func (m *Multi) EndInterval(i int) {
	for _, d := range m.devices {
		d.EndInterval(i)
	}
}
