// Package device assembles a complete traffic measurement device as
// evaluated in Section 7.2 of the paper: a measurement algorithm (sample
// and hold, a multistage filter, or a baseline), a flow definition that
// extracts keys from packets, and the dynamic threshold adaptation of
// Figure 5 that keeps the flow memory near its target usage.
//
// A Device implements trace.Consumer, so it plugs directly into
// trace.Replay.
package device

import (
	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/flow"
)

// IntervalReport is the device's output for one measurement interval.
type IntervalReport struct {
	// Interval is the zero-based measurement interval index.
	Interval int
	// Threshold is the large-flow threshold that was in effect during the
	// interval.
	Threshold uint64
	// EntriesUsed is the flow memory usage at the end of the interval,
	// before the interval transition.
	EntriesUsed int
	// Estimates are the tracked flows and their traffic estimates, largest
	// first.
	Estimates []core.Estimate

	// index maps keys to positions in Estimates; Estimate builds it lazily
	// so repeated lookups are O(1) instead of a linear scan per call.
	index map[flow.Key]int
}

// Estimate returns the reported bytes for a flow and whether it was
// identified at all. The first call builds a key index over Estimates, so
// repeated lookups cost one map access; the index does not track later
// mutation of the Estimates slice. Not safe for concurrent use.
func (r *IntervalReport) Estimate(k flow.Key) (uint64, bool) {
	if r.index == nil {
		r.index = make(map[flow.Key]int, len(r.Estimates))
		for i, e := range r.Estimates {
			if _, dup := r.index[e.Key]; !dup {
				r.index[e.Key] = i
			}
		}
	}
	if i, ok := r.index[k]; ok {
		return r.Estimates[i].Bytes, true
	}
	return 0, false
}

// Device drives an algorithm over a packet stream.
type Device struct {
	alg     core.Algorithm
	batch   core.BatchAlgorithm // non-nil when alg has a batched fast path
	def     flow.Definition
	adaptor *adapt.Adaptor

	// keys and sizes are PacketBatch's reusable key-extraction scratch.
	keys  []flow.Key
	sizes []uint32

	reports []IntervalReport
	// OnReport, when set, receives each interval report as it is produced;
	// set KeepReports to false for long runs to avoid accumulation.
	OnReport func(r IntervalReport)
	// KeepReports controls whether reports accumulate in the device
	// (default true).
	KeepReports bool
}

// New creates a device. adaptor may be nil for a fixed threshold.
func New(alg core.Algorithm, def flow.Definition, adaptor *adapt.Adaptor) *Device {
	batch, _ := alg.(core.BatchAlgorithm)
	return &Device{alg: alg, batch: batch, def: def, adaptor: adaptor, KeepReports: true}
}

// Algorithm returns the wrapped algorithm.
func (d *Device) Algorithm() core.Algorithm { return d.alg }

// Definition returns the flow definition in use.
func (d *Device) Definition() flow.Definition { return d.def }

// Packet implements trace.Consumer.
func (d *Device) Packet(p *flow.Packet) {
	d.alg.Process(d.def.Key(p), p.Size)
}

// PacketBatch implements trace.BatchConsumer: it extracts the batch's flow
// keys in bulk into reusable scratch and hands them to the algorithm's
// batched fast path (or its per-packet Process when it has none).
func (d *Device) PacketBatch(pkts []flow.Packet) {
	n := len(pkts)
	if cap(d.keys) < n {
		d.keys = make([]flow.Key, n)
		d.sizes = make([]uint32, n)
	}
	keys, sizes := d.keys[:n], d.sizes[:n]
	for i := range pkts {
		keys[i] = d.def.Key(&pkts[i])
		sizes[i] = pkts[i].Size
	}
	if d.batch != nil {
		d.batch.ProcessBatch(keys, sizes)
		return
	}
	for i, k := range keys {
		d.alg.Process(k, sizes[i])
	}
}

// EndInterval implements trace.Consumer: it snapshots the report, applies
// the interval transition, and runs threshold adaptation for the next
// interval.
func (d *Device) EndInterval(interval int) {
	r := IntervalReport{
		Interval:    interval,
		Threshold:   d.alg.Threshold(),
		EntriesUsed: d.alg.EntriesUsed(),
		Estimates:   d.alg.EndInterval(),
	}
	if d.adaptor != nil {
		d.alg.SetThreshold(d.adaptor.Adapt(r.EntriesUsed, d.alg.Capacity(), r.Threshold))
	}
	if d.OnReport != nil {
		d.OnReport(r)
	}
	if d.KeepReports {
		d.reports = append(d.reports, r)
	}
}

// Reports returns the accumulated interval reports.
func (d *Device) Reports() []IntervalReport { return d.reports }
