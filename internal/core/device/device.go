// Package device assembles a complete traffic measurement device as
// evaluated in Section 7.2 of the paper: a measurement algorithm (sample
// and hold, a multistage filter, or a baseline), a flow definition that
// extracts keys from packets, and the dynamic threshold adaptation of
// Figure 5 that keeps the flow memory near its target usage.
//
// A Device implements trace.Consumer, so it plugs directly into
// trace.Replay.
package device

import (
	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/flow"
)

// IntervalReport is the device's output for one measurement interval.
type IntervalReport struct {
	// Interval is the zero-based measurement interval index.
	Interval int
	// Threshold is the large-flow threshold that was in effect during the
	// interval.
	Threshold uint64
	// EntriesUsed is the flow memory usage at the end of the interval,
	// before the interval transition.
	EntriesUsed int
	// Estimates are the tracked flows and their traffic estimates, largest
	// first.
	Estimates []core.Estimate
}

// Estimate returns the reported bytes for a flow and whether it was
// identified at all.
func (r *IntervalReport) Estimate(k flow.Key) (uint64, bool) {
	for _, e := range r.Estimates {
		if e.Key == k {
			return e.Bytes, true
		}
	}
	return 0, false
}

// Device drives an algorithm over a packet stream.
type Device struct {
	alg     core.Algorithm
	def     flow.Definition
	adaptor *adapt.Adaptor

	reports []IntervalReport
	// OnReport, when set, receives each interval report as it is produced;
	// set KeepReports to false for long runs to avoid accumulation.
	OnReport func(r IntervalReport)
	// KeepReports controls whether reports accumulate in the device
	// (default true).
	KeepReports bool
}

// New creates a device. adaptor may be nil for a fixed threshold.
func New(alg core.Algorithm, def flow.Definition, adaptor *adapt.Adaptor) *Device {
	return &Device{alg: alg, def: def, adaptor: adaptor, KeepReports: true}
}

// Algorithm returns the wrapped algorithm.
func (d *Device) Algorithm() core.Algorithm { return d.alg }

// Definition returns the flow definition in use.
func (d *Device) Definition() flow.Definition { return d.def }

// Packet implements trace.Consumer.
func (d *Device) Packet(p *flow.Packet) {
	d.alg.Process(d.def.Key(p), p.Size)
}

// EndInterval implements trace.Consumer: it snapshots the report, applies
// the interval transition, and runs threshold adaptation for the next
// interval.
func (d *Device) EndInterval(interval int) {
	r := IntervalReport{
		Interval:    interval,
		Threshold:   d.alg.Threshold(),
		EntriesUsed: d.alg.EntriesUsed(),
		Estimates:   d.alg.EndInterval(),
	}
	if d.adaptor != nil {
		d.alg.SetThreshold(d.adaptor.Adapt(r.EntriesUsed, d.alg.Capacity(), r.Threshold))
	}
	if d.OnReport != nil {
		d.OnReport(r)
	}
	if d.KeepReports {
		d.reports = append(d.reports, r)
	}
}

// Reports returns the accumulated interval reports.
func (d *Device) Reports() []IntervalReport { return d.reports }
