// Package device assembles a complete traffic measurement device as
// evaluated in Section 7.2 of the paper: a measurement algorithm (sample
// and hold, a multistage filter, or a baseline), a flow definition that
// extracts keys from packets, and the dynamic threshold adaptation of
// Figure 5 that keeps the flow memory near its target usage.
//
// A Device implements trace.Consumer, so it plugs directly into
// trace.Replay.
package device

import (
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/telemetry"
)

// IntervalReport is the device's output for one measurement interval. It is
// the shared core.IntervalReport: pipelines and live runners report the
// same type with the same ordering guarantees.
type IntervalReport = core.IntervalReport

// Device drives an algorithm over a packet stream.
type Device struct {
	alg     core.Algorithm
	batch   core.BatchAlgorithm // non-nil when alg has a batched fast path
	def     flow.Definition
	adaptor *adapt.Adaptor

	// keys and sizes are PacketBatch's reusable key-extraction scratch.
	keys  []flow.Key
	sizes []uint32

	reports []IntervalReport
	// reportCount mirrors len(reports) plus reports dropped by
	// KeepReports=false, so Stats can be read while packets flow.
	reportCount atomic.Int64
	// lastRejected is the algorithm's cumulative flow-memory rejection count
	// at the previous interval boundary, so adaptation sees per-interval
	// deltas.
	lastRejected uint64
	// OnReport, when set, receives each interval report as it is produced;
	// set KeepReports to false for long runs to avoid accumulation.
	OnReport func(r IntervalReport)
	// KeepReports controls whether reports accumulate in the device
	// (default true).
	KeepReports bool
	// exportTel, when set, is the export path's counters, included in Stats
	// so /debug/vars and /healthz see spool depth, retries and drops next
	// to the measurement counters.
	exportTel *telemetry.Export
}

// New creates a device. adaptor may be nil for a fixed threshold.
func New(alg core.Algorithm, def flow.Definition, adaptor *adapt.Adaptor) *Device {
	batch, _ := alg.(core.BatchAlgorithm)
	return &Device{alg: alg, batch: batch, def: def, adaptor: adaptor, KeepReports: true}
}

// Algorithm returns the wrapped algorithm.
func (d *Device) Algorithm() core.Algorithm { return d.alg }

// Definition returns the flow definition in use.
func (d *Device) Definition() flow.Definition { return d.def }

// Packet implements trace.Consumer.
func (d *Device) Packet(p *flow.Packet) {
	d.alg.Process(d.def.Key(p), p.Size)
}

// PacketBatch implements trace.BatchConsumer: it extracts the batch's flow
// keys in bulk into reusable scratch and hands them to the algorithm's
// batched fast path (or its per-packet Process when it has none).
func (d *Device) PacketBatch(pkts []flow.Packet) {
	n := len(pkts)
	if cap(d.keys) < n {
		d.keys = make([]flow.Key, n)
		d.sizes = make([]uint32, n)
	}
	keys, sizes := d.keys[:n], d.sizes[:n]
	for i := range pkts {
		keys[i] = d.def.Key(&pkts[i])
		sizes[i] = pkts[i].Size
	}
	if d.batch != nil {
		d.batch.ProcessBatch(keys, sizes)
		return
	}
	for i, k := range keys {
		d.alg.Process(k, sizes[i])
	}
}

// EndInterval implements trace.Consumer: it snapshots the report, applies
// the interval transition, and runs threshold adaptation for the next
// interval. Algorithms that report memory pressure (core.MemoryPressure)
// feed their per-interval rejection count into the adaptation, so a flow
// memory that filled and refused entries mid-interval raises the threshold
// even if evictions emptied it again by the boundary.
func (d *Device) EndInterval(interval int) {
	r := IntervalReport{
		Interval:    interval,
		Threshold:   d.alg.Threshold(),
		EntriesUsed: d.alg.EntriesUsed(),
		Estimates:   d.alg.EndInterval(),
	}
	if d.adaptor != nil {
		var rejected uint64
		if mp, ok := d.alg.(core.MemoryPressure); ok {
			total := mp.EntriesRejected()
			rejected = total - d.lastRejected
			d.lastRejected = total
		}
		d.alg.SetThreshold(d.adaptor.AdaptPressure(r.EntriesUsed, d.alg.Capacity(), rejected, r.Threshold))
	}
	if d.OnReport != nil {
		d.OnReport(r)
	}
	if d.KeepReports {
		d.reports = append(d.reports, r)
	}
	d.reportCount.Add(1)
}

// Reports returns the accumulated interval reports.
func (d *Device) Reports() []IntervalReport { return d.reports }

// Stats returns the device's live telemetry. For the paper's algorithms
// (and the NetFlow/sampling baselines) the counters are atomics and Stats
// is safe to call from any goroutine while packets are being processed;
// for uninstrumented algorithms the snapshot is marked Stale and must only
// be taken while the device is quiescent.
func (d *Device) Stats() telemetry.DeviceSnapshot {
	s := telemetry.DeviceSnapshot{
		Algorithm:  core.Snapshot(d.alg),
		Definition: d.def.Name(),
		Reports:    int(d.reportCount.Load()),
	}
	if d.exportTel != nil {
		es := d.exportTel.Snapshot()
		s.Export = &es
	}
	return s
}

// SetExportTelemetry attaches an export path's counters to the device's
// snapshots (and thereby its Health). Call before traffic flows.
func (d *Device) SetExportTelemetry(t *telemetry.Export) { d.exportTel = t }
