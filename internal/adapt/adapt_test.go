package adapt

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{SampleAndHoldDefaults(), MultistageDefaults()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("default config invalid: %v", err)
		}
	}
	bad := []Config{
		{Target: 0, AdjustUp: 1, AdjustDown: 1, Window: 1, MinThreshold: 1},
		{Target: 1.5, AdjustUp: 1, AdjustDown: 1, Window: 1, MinThreshold: 1},
		{Target: 0.9, AdjustUp: 0, AdjustDown: 1, Window: 1, MinThreshold: 1},
		{Target: 0.9, AdjustUp: 1, AdjustDown: 0, Window: 1, MinThreshold: 1},
		{Target: 0.9, AdjustUp: 1, AdjustDown: 1, Window: 0, MinThreshold: 1},
		{Target: 0.9, AdjustUp: 1, AdjustDown: 1, Window: 1, MinThreshold: 0},
		{Target: 0.9, AdjustUp: 1, AdjustDown: 1, Window: 1, MinThreshold: 10, MaxThreshold: 5},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(Config{})
}

func TestOverTargetRaisesThreshold(t *testing.T) {
	a := New(SampleAndHoldDefaults())
	// Usage 100% against a 90% target: threshold multiplied by
	// (1/0.9)^3 ~ 1.37.
	next := a.Adapt(1000, 1000, 1000000)
	want := 1e6 * math.Pow(1/0.9, 3)
	if math.Abs(float64(next)-want) > 1 {
		t.Errorf("threshold = %d, want ~%.0f", next, want)
	}
}

func TestUnderTargetLowersThresholdAfterHold(t *testing.T) {
	a := New(SampleAndHoldDefaults())
	th := uint64(1000000)
	// Constant 45% usage against the 90% target: first call may lower
	// immediately (no increase has happened for >= HoldIntervals).
	next := a.Adapt(450, 1000, th)
	if next >= th {
		t.Errorf("threshold did not decrease: %d >= %d", next, th)
	}
}

func TestHoldAfterIncrease(t *testing.T) {
	a := New(SampleAndHoldDefaults())
	th := a.Adapt(1000, 1000, 1000000) // over target: increase
	// Now usage drops, but the threshold must hold for HoldIntervals
	// intervals before decreasing. The window still remembers the high
	// usage, so feed enough low intervals to pull the average down.
	th2 := a.Adapt(100, 1000, th)
	th3 := a.Adapt(100, 1000, th2)
	if th2 != th || th3 != th2 {
		t.Errorf("threshold moved during hold: %d -> %d -> %d", th, th2, th3)
	}
	th4 := a.Adapt(100, 1000, th3)
	if th4 >= th3 {
		t.Errorf("threshold did not decrease after hold expired: %d >= %d", th4, th3)
	}
}

func TestWindowSmoothsSpikes(t *testing.T) {
	// A one-interval spike to 100% after two idle intervals must not raise
	// the threshold, because the 3-interval average stays under target.
	a := New(SampleAndHoldDefaults())
	th := uint64(1000)
	th = a.Adapt(300, 1000, th)
	th = a.Adapt(300, 1000, th)
	next := a.Adapt(1000, 1000, th)
	if next > th {
		t.Errorf("single spike raised threshold through the window: %d -> %d", th, next)
	}
}

func TestMinThresholdFloor(t *testing.T) {
	cfg := SampleAndHoldDefaults()
	cfg.MinThreshold = 500
	a := New(cfg)
	th := uint64(600)
	for i := 0; i < 50; i++ {
		th = a.Adapt(0, 1000, th) // empty memory pushes threshold down hard
	}
	if th != 500 {
		t.Errorf("threshold = %d, want floor 500", th)
	}
}

func TestMaxThresholdCap(t *testing.T) {
	cfg := SampleAndHoldDefaults()
	cfg.MaxThreshold = 2000
	a := New(cfg)
	th := uint64(1900)
	for i := 0; i < 20; i++ {
		th = a.Adapt(1000, 1000, th)
	}
	if th != 2000 {
		t.Errorf("threshold = %d, want cap 2000", th)
	}
}

func TestZeroUsageDoesNotZeroThreshold(t *testing.T) {
	a := New(SampleAndHoldDefaults())
	th := a.Adapt(0, 1000, 1000000)
	if th == 0 {
		t.Error("zero usage drove threshold to zero")
	}
}

func TestZeroCapacity(t *testing.T) {
	a := New(SampleAndHoldDefaults())
	if th := a.Adapt(10, 0, 100); th == 0 {
		t.Error("zero capacity produced zero threshold")
	}
}

// TestConvergence simulates a memory whose usage responds to the threshold
// (usage ~ K/threshold, the natural first-order model: halving the
// threshold roughly doubles the tracked flows) and checks the control loop
// settles near the target without oscillating wildly.
func TestConvergence(t *testing.T) {
	for _, cfg := range []Config{SampleAndHoldDefaults(), MultistageDefaults()} {
		a := New(cfg)
		const capacity = 1000
		k := 5e8 // usage*capacity = k/threshold
		th := uint64(1 << 24)
		rng := rand.New(rand.NewSource(1))
		var usage float64
		for i := 0; i < 200; i++ {
			used := int(k / float64(th) * (0.95 + 0.1*rng.Float64()))
			if used > capacity {
				used = capacity
			}
			usage = float64(used) / capacity
			th = a.Adapt(used, capacity, th)
			if th == 0 {
				t.Fatal("threshold collapsed to zero")
			}
		}
		if usage < 0.6 || usage > 1.0 {
			t.Errorf("adjustdown=%g: usage settled at %.2f, want near 0.9", cfg.AdjustDown, usage)
		}
	}
}
