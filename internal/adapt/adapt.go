// Package adapt implements the dynamic threshold adaptation algorithm of
// Figure 5 in the paper (Section 6). Rather than requiring a priori
// knowledge of the traffic mix, the measurement device keeps decreasing the
// large-flow threshold below the conservative estimate until the flow
// memory is nearly full at a configured target usage, and raises it quickly
// when usage overshoots.
package adapt

import (
	"math"

	"repro/internal/cfgerr"
)

// Config holds the adaptation constants. The paper's measured values:
// target usage 90%, adjustup 3, adjustdown 1 for sample and hold and 0.5
// for multistage filters, with usage averaged over the last 3 intervals.
type Config struct {
	// Target is the desired flow memory usage in (0, 1).
	Target float64
	// AdjustUp is the exponent applied when usage exceeds the target.
	AdjustUp float64
	// AdjustDown is the exponent applied when lowering the threshold.
	AdjustDown float64
	// Window is the number of intervals over which usage is averaged
	// (the paper uses 3 "to give stability").
	Window int
	// HoldIntervals is how many intervals the threshold must go without an
	// increase before it may be decreased (the paper uses 3).
	HoldIntervals int
	// MinThreshold floors the threshold (>= 1).
	MinThreshold uint64
	// MaxThreshold caps the threshold; zero means no cap.
	MaxThreshold uint64
}

// SampleAndHoldDefaults returns the paper's adaptation constants for sample
// and hold.
func SampleAndHoldDefaults() Config {
	return Config{Target: 0.9, AdjustUp: 3, AdjustDown: 1, Window: 3, HoldIntervals: 3, MinThreshold: 1}
}

// MultistageDefaults returns the paper's adaptation constants for
// multistage filters.
func MultistageDefaults() Config {
	return Config{Target: 0.9, AdjustUp: 3, AdjustDown: 0.5, Window: 3, HoldIntervals: 3, MinThreshold: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Target <= 0 || c.Target >= 1 {
		return cfgerr.New("adapt", "Target", "%g outside (0, 1)", c.Target)
	}
	if c.AdjustUp <= 0 {
		return cfgerr.New("adapt", "AdjustUp", "must be positive, got %g", c.AdjustUp)
	}
	if c.AdjustDown <= 0 {
		return cfgerr.New("adapt", "AdjustDown", "must be positive, got %g", c.AdjustDown)
	}
	if c.Window < 1 {
		return cfgerr.New("adapt", "Window", "must be at least 1, got %d", c.Window)
	}
	if c.HoldIntervals < 0 {
		return cfgerr.New("adapt", "HoldIntervals", "must not be negative, got %d", c.HoldIntervals)
	}
	if c.MinThreshold < 1 {
		return cfgerr.New("adapt", "MinThreshold", "must be at least 1, got %d", c.MinThreshold)
	}
	if c.MaxThreshold != 0 && c.MaxThreshold < c.MinThreshold {
		return cfgerr.New("adapt", "MaxThreshold", "%d below MinThreshold %d", c.MaxThreshold, c.MinThreshold)
	}
	return nil
}

// Adaptor applies the ADAPTTHRESHOLD algorithm once per measurement
// interval.
type Adaptor struct {
	cfg           Config
	usages        []float64 // ring of recent per-interval usages
	n             int       // usages recorded so far
	sinceIncrease int
}

// New creates an adaptor; it panics on an invalid configuration (the
// constants are compile-time choices, not runtime inputs).
func New(cfg Config) *Adaptor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Adaptor{cfg: cfg, usages: make([]float64, cfg.Window), sinceIncrease: cfg.HoldIntervals}
}

// avgUsage returns the mean usage over the window observed so far.
func (a *Adaptor) avgUsage() float64 {
	n := a.n
	if n > len(a.usages) {
		n = len(a.usages)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a.usages[i]
	}
	return sum / float64(n)
}

// Adapt records this interval's flow memory usage and returns the threshold
// to use for the next interval, per Figure 5 of the paper.
func (a *Adaptor) Adapt(entriesUsed, capacity int, threshold uint64) uint64 {
	return a.AdaptPressure(entriesUsed, capacity, 0, threshold)
}

// AdaptPressure is Adapt with the interval's flow-memory rejection count
// folded in. Rejections prove the memory hit its hard cap during the
// interval even if entries were evicted before the end-of-interval usage
// snapshot, so the effective usage is raised to at least full — plus the
// rejected entries' share of capacity, capped at 2× — which drives the
// Figure 5 exponent to relieve the pressure on the next interval.
func (a *Adaptor) AdaptPressure(entriesUsed, capacity int, rejected uint64, threshold uint64) uint64 {
	usage := 0.0
	if capacity > 0 {
		usage = float64(entriesUsed) / float64(capacity)
		if rejected > 0 {
			pressure := 1 + float64(rejected)/float64(capacity)
			if pressure > 2 {
				pressure = 2
			}
			if pressure > usage {
				usage = pressure
			}
		}
	}
	a.usages[a.n%len(a.usages)] = usage
	a.n++
	avg := a.avgUsage()

	next := float64(threshold)
	if avg > a.cfg.Target {
		next *= math.Pow(avg/a.cfg.Target, a.cfg.AdjustUp)
		a.sinceIncrease = 0
	} else {
		// This interval counts toward "threshold did not increase for
		// HoldIntervals intervals".
		a.sinceIncrease++
		if a.sinceIncrease >= a.cfg.HoldIntervals {
			ratio := avg / a.cfg.Target
			// A totally idle memory would drive the threshold to zero;
			// bound the single-step decrease instead.
			if ratio < 0.01 {
				ratio = 0.01
			}
			next *= math.Pow(ratio, a.cfg.AdjustDown)
		}
	}

	if next < float64(a.cfg.MinThreshold) {
		next = float64(a.cfg.MinThreshold)
	}
	if a.cfg.MaxThreshold != 0 && next > float64(a.cfg.MaxThreshold) {
		next = float64(a.cfg.MaxThreshold)
	}
	if next > math.MaxUint64/2 {
		next = math.MaxUint64 / 2
	}
	return uint64(next)
}
