// Package trace provides the traffic substrate for the reproduction: the
// trace model (packets grouped into measurement intervals on a link of known
// capacity), a replay engine, a compact binary on-disk format, and a
// synthetic trace generator calibrated to the paper's traces.
//
// The paper evaluates on three real traces (Table 3): MAG+, a 4515 s OC-48
// CAIDA trace (MAG is its first 90 s), and IND/COS, 90 s NLANR traces from an
// OC-12 and an OC-3 access link. Those traces are not redistributable, so
// the generator in this package synthesizes traffic matched to their
// published statistics: active flow counts under each flow definition,
// megabytes per 5-second interval, link utilization (13-27 %), the heavy
// tail of Figure 6 (the top 10 % of flows carry 85-94 % of the bytes), and
// the prevalence of long-lived large flows that the paper's
// entry-preservation optimization exploits.
package trace

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/flow"
)

// Meta describes a trace: the link it was captured on and its measurement
// interval structure. The measurement interval (5 seconds in all the paper's
// experiments) partitions the trace; all algorithm state except preserved
// entries resets at interval boundaries.
type Meta struct {
	// Name identifies the trace ("MAG+", "MAG", "IND", "COS", or custom).
	Name string
	// LinkBytesPerSec is the capacity of the measured link in bytes/second.
	LinkBytesPerSec float64
	// Interval is the measurement interval length.
	Interval time.Duration
	// Intervals is the number of measurement intervals in the trace.
	Intervals int
	// HasAS reports whether packets carry AS annotations (the paper could
	// not do AS-pair analysis on its anonymized IND/COS traces).
	HasAS bool
}

// Capacity returns C, the number of bytes the link can carry in one
// measurement interval — the quantity the paper's thresholds are expressed
// against (e.g. "flows above 0.1% of the link capacity").
func (m Meta) Capacity() float64 {
	return m.LinkBytesPerSec * m.Interval.Seconds()
}

// Duration returns the total trace duration.
func (m Meta) Duration() time.Duration {
	return time.Duration(m.Intervals) * m.Interval
}

// Validate checks the metadata for obvious inconsistencies.
func (m Meta) Validate() error {
	// The comparison is written so that NaN (which fails every comparison)
	// is rejected too — a corrupt trace header must not produce a source
	// whose capacity arithmetic silently poisons every threshold.
	if !(m.LinkBytesPerSec > 0) || math.IsInf(m.LinkBytesPerSec, 1) {
		return cfgerr.New("trace", "LinkBytesPerSec", "must be positive and finite, got %g", m.LinkBytesPerSec)
	}
	if m.Interval <= 0 {
		return cfgerr.New("trace", "Interval", "must be positive, got %v", m.Interval)
	}
	if m.Intervals <= 0 {
		return cfgerr.New("trace", "Intervals", "must be positive, got %d", m.Intervals)
	}
	return nil
}

// Source is a stream of packets in non-decreasing time order.
type Source interface {
	// Meta returns the trace metadata.
	Meta() Meta
	// Next returns the next packet; it returns io.EOF after the last one.
	Next() (flow.Packet, error)
}

// Consumer receives a replayed trace: every packet in order, plus an
// EndInterval callback at each measurement-interval boundary. EndInterval is
// called exactly Meta().Intervals times, the last time after the final
// packet.
type Consumer interface {
	Packet(p *flow.Packet)
	EndInterval(interval int)
}

// DefaultBatchSize is the packet batch size Replay uses unless overridden
// with WithBatchSize. Large enough to amortize per-batch overhead, small
// enough that a batch of packets plus its extracted keys stays L1-resident.
const DefaultBatchSize = 256

// BatchConsumer is a Consumer with a batched packet path. PacketBatch must
// be equivalent to calling Packet on each packet in order; the slice is only
// valid for the duration of the call.
type BatchConsumer interface {
	Consumer
	PacketBatch(pkts []flow.Packet)
}

// ReplayOption customizes Replay.
type ReplayOption func(*replayOptions)

type replayOptions struct {
	batchSize int
	progress  func(packets int)
	stop      func() bool
}

// WithBatchSize sets the delivery batch size. n <= 0 selects
// DefaultBatchSize; n == 1 delivers packets one at a time, the behavior of
// the original unbatched replay loop.
func WithBatchSize(n int) ReplayOption {
	return func(o *replayOptions) {
		if n <= 0 {
			n = DefaultBatchSize
		}
		o.batchSize = n
	}
}

// WithProgress registers fn to be called with the cumulative packet count
// after every delivered batch and once after the final interval closes.
// fn runs on the replay goroutine, so an expensive callback slows the
// replay down by exactly its own cost.
func WithProgress(fn func(packets int)) ReplayOption {
	return func(o *replayOptions) { o.progress = fn }
}

// ErrStopped is returned by Replay when a WithStop hook ended the replay
// early — an orderly interruption (a drain signal), not a trace failure.
var ErrStopped = fmt.Errorf("trace: replay stopped")

// WithStop registers a hook polled at batch boundaries; when it returns
// true, Replay flushes the packets already buffered and returns ErrStopped
// without closing the remaining intervals. The device's signal handler uses
// it to stop consuming mid-trace and drain what was already measured.
func WithStop(fn func() bool) ReplayOption {
	return func(o *replayOptions) { o.stop = fn }
}

// Replay streams src into c, detecting measurement-interval boundaries from
// packet timestamps; packets past the trace's nominal end are attributed to
// the last interval. It returns the number of packets replayed.
//
// Packets are delivered in batches of up to WithBatchSize packets
// (DefaultBatchSize unless overridden) via c's PacketBatch fast path when it
// has one, falling back to per-packet delivery otherwise. Batches never span
// interval boundaries — a partial batch is flushed before each EndInterval —
// so the consumer observes exactly the same packet/interval sequence at any
// batch size and produces bit-identical reports.
func Replay(src Source, c Consumer, opts ...ReplayOption) (int, error) {
	o := replayOptions{batchSize: DefaultBatchSize}
	for _, opt := range opts {
		opt(&o)
	}
	m := src.Meta()
	if err := m.Validate(); err != nil {
		return 0, err
	}
	batchSize := o.batchSize
	bc, _ := c.(BatchConsumer)
	buf := make([]flow.Packet, 0, batchSize)
	packets := 0
	flush := func() {
		if len(buf) == 0 {
			return
		}
		if bc != nil {
			bc.PacketBatch(buf)
		} else {
			for i := range buf {
				c.Packet(&buf[i])
			}
		}
		buf = buf[:0]
		if o.progress != nil {
			o.progress(packets)
		}
	}
	cur := 0
	for {
		if o.stop != nil && len(buf) == 0 && o.stop() {
			return packets, ErrStopped
		}
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			flush()
			return packets, err
		}
		iv := int(p.Time / m.Interval)
		if iv >= m.Intervals {
			iv = m.Intervals - 1
		}
		if iv < cur {
			flush()
			return packets, fmt.Errorf("trace: packet at %v out of order (interval %d < %d)", p.Time, iv, cur)
		}
		if iv > cur {
			flush()
			for cur < iv {
				c.EndInterval(cur)
				cur++
			}
		}
		buf = append(buf, p)
		packets++
		if len(buf) == batchSize {
			flush()
		}
	}
	flush()
	for cur < m.Intervals {
		c.EndInterval(cur)
		cur++
	}
	if o.progress != nil {
		o.progress(packets)
	}
	return packets, nil
}

// SliceSource serves packets from a slice. It is the in-memory Source used
// by tests and by traces loaded whole.
type SliceSource struct {
	meta Meta
	pkts []flow.Packet
	pos  int
}

// NewSliceSource builds a Source from packets, which must already be in
// non-decreasing time order.
func NewSliceSource(meta Meta, pkts []flow.Packet) *SliceSource {
	return &SliceSource{meta: meta, pkts: pkts}
}

// Meta implements Source.
func (s *SliceSource) Meta() Meta { return s.meta }

// Next implements Source.
func (s *SliceSource) Next() (flow.Packet, error) {
	if s.pos >= len(s.pkts) {
		return flow.Packet{}, io.EOF
	}
	p := s.pkts[s.pos]
	s.pos++
	return p, nil
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains a source into memory and returns a rewindable SliceSource.
func Collect(src Source) (*SliceSource, error) {
	var pkts []flow.Packet
	for {
		p, err := src.Next()
		if err == io.EOF {
			return NewSliceSource(src.Meta(), pkts), nil
		}
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, p)
	}
}

// FuncConsumer adapts two closures into a Consumer.
type FuncConsumer struct {
	OnPacket      func(p *flow.Packet)
	OnEndInterval func(interval int)
}

// Packet implements Consumer.
func (f FuncConsumer) Packet(p *flow.Packet) {
	if f.OnPacket != nil {
		f.OnPacket(p)
	}
}

// EndInterval implements Consumer.
func (f FuncConsumer) EndInterval(i int) {
	if f.OnEndInterval != nil {
		f.OnEndInterval(i)
	}
}
