package trace

import (
	"io"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/flow"
)

// smallConfig is a fast configuration for generator unit tests.
func smallConfig() GenConfig {
	cfg, err := Preset("COS")
	if err != nil {
		panic(err)
	}
	cfg = cfg.Scaled(0.1).WithIntervals(4)
	return cfg
}

func TestPresetNames(t *testing.T) {
	for _, name := range []string{"MAG+", "MAG", "IND", "COS"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Preset(%q) invalid: %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetUtilizationInPaperRange(t *testing.T) {
	// "Our traces use only between 13% and 27% of their respective link
	// capacities."
	for _, name := range []string{"MAG+", "MAG", "IND", "COS"} {
		cfg, _ := Preset(name)
		util := cfg.BytesPerInterval / cfg.Capacity()
		if util < 0.13 || util > 0.27 {
			t.Errorf("%s: utilization %.1f%% outside the paper's 13-27%%", name, util*100)
		}
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	cfg, _ := Preset("MAG")
	s := cfg.Scaled(0.1)
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	origUtil := cfg.BytesPerInterval / cfg.Capacity()
	scalUtil := s.BytesPerInterval / s.Capacity()
	if math.Abs(origUtil-scalUtil) > 1e-9 {
		t.Errorf("utilization changed: %g -> %g", origUtil, scalUtil)
	}
	if s.FlowsPerInterval < 9000 || s.FlowsPerInterval > 11000 {
		t.Errorf("scaled flows = %d", s.FlowsPerInterval)
	}
	if s.LongLivedRanks > s.FlowsPerInterval {
		t.Error("long-lived ranks exceed flow target after scaling")
	}
}

func TestGenConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.FlowsPerInterval = 0 },
		func(c *GenConfig) { c.DstIPs = 0 },
		func(c *GenConfig) { c.ASPairs = 0 },
		func(c *GenConfig) { c.ASes = 1 },
		func(c *GenConfig) { c.BytesPerInterval = 0 },
		func(c *GenConfig) { c.BytesPerInterval = 2 * c.Capacity() },
		func(c *GenConfig) { c.ZipfAlpha = 0 },
		func(c *GenConfig) { c.PopulationFactor = 0.5 },
		func(c *GenConfig) { c.MeanLifetime = 0 },
		func(c *GenConfig) { c.LongLivedRanks = -1 },
		func(c *GenConfig) { c.LongLivedRanks = c.FlowsPerInterval + 1 },
		func(c *GenConfig) { c.VolumeJitter = 1.5 },
	}
	for i, mutate := range mutations {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := smallConfig()
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		p1, err1 := g1.Next()
		p2, err2 := g2.Next()
		if err1 != err2 || p1 != p2 {
			t.Fatalf("packet %d differs: %v/%v vs %v/%v", i, p1, err1, p2, err2)
		}
		if err1 == io.EOF {
			break
		}
	}
}

func TestGeneratorTimeOrderedAndInRange(t *testing.T) {
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	n := 0
	for {
		p, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.Time < last {
			t.Fatalf("packet %d at %v before previous %v", n, p.Time, last)
		}
		if p.Time >= cfg.Duration() {
			t.Fatalf("packet time %v beyond trace end %v", p.Time, cfg.Duration())
		}
		if p.Size < 40 || p.Size > 1500 {
			t.Fatalf("packet size %d outside [40, 1500]", p.Size)
		}
		last = p.Time
		n++
	}
	if n == 0 {
		t.Fatal("generator produced no packets")
	}
}

func TestGeneratorMatchesTable3Shape(t *testing.T) {
	// The generator must hit its calibration targets: active flow counts
	// per definition and bytes per interval, within generous tolerances.
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CollectStats(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Intervals != cfg.Intervals {
		t.Fatalf("intervals = %d, want %d", st.Intervals, cfg.Intervals)
	}
	ft := st.Flows["5-tuple"]
	if ft.Avg < 0.8*float64(cfg.FlowsPerInterval) || ft.Avg > 1.2*float64(cfg.FlowsPerInterval) {
		t.Errorf("5-tuple flows avg %.0f, want ~%d", ft.Avg, cfg.FlowsPerInterval)
	}
	mb := st.MBytes
	want := cfg.BytesPerInterval / 1e6
	if mb.Avg < 0.75*want || mb.Avg > 1.25*want {
		t.Errorf("Mbytes/interval avg %.2f, want ~%.2f", mb.Avg, want)
	}
	// dstIP flow count must land well below the 5-tuple count and within a
	// loose band of the pool size.
	di := st.Flows["dstIP"]
	if di.Avg >= ft.Avg {
		t.Errorf("dstIP flows (%.0f) not below 5-tuple flows (%.0f)", di.Avg, ft.Avg)
	}
	if di.Avg < 0.3*float64(cfg.DstIPs) || di.Avg > 1.05*float64(cfg.DstIPs) {
		t.Errorf("dstIP flows avg %.0f vs pool %d", di.Avg, cfg.DstIPs)
	}
}

func TestGeneratorASAnnotationsRouteable(t *testing.T) {
	cfg := smallConfig()
	cfg.HasAS = true
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every packet's AS annotation must agree with the generator's own
	// routing table (i.e. the annotation is derivable from addresses).
	for i := 0; i < 2000; i++ {
		p, err := g.Next()
		if err == io.EOF {
			break
		}
		if p.SrcAS == 0 || p.DstAS == 0 {
			t.Fatal("HasAS trace with zero AS annotation")
		}
		if as, ok := g.topo.Table.Lookup(p.SrcIP); !ok || as != p.SrcAS {
			t.Fatalf("SrcAS %d disagrees with route lookup %d", p.SrcAS, as)
		}
		if as, ok := g.topo.Table.Lookup(p.DstIP); !ok || as != p.DstAS {
			t.Fatalf("DstAS %d disagrees with route lookup %d", p.DstAS, as)
		}
	}
}

func TestGeneratorNoASWhenDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.HasAS = false
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p, err := g.Next()
		if err == io.EOF {
			break
		}
		if p.SrcAS != 0 || p.DstAS != 0 {
			t.Fatal("AS annotation present on HasAS=false trace")
		}
	}
}

// TestGeneratorHeavyTail verifies the Figure 6 shape: the top 10% of
// 5-tuple flows carry 85-94% of the bytes (we accept 75-97% at test scale).
func TestGeneratorHeavyTail(t *testing.T) {
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := flow.FiveTuple{}
	sizes := make(map[flow.Key]uint64)
	var total uint64
	// Single interval is enough for the shape check.
	firstInterval := true
	_, err = Replay(g, FuncConsumer{
		OnPacket: func(p *flow.Packet) {
			if firstInterval {
				sizes[def.Key(p)] += uint64(p.Size)
				total += uint64(p.Size)
			}
		},
		OnEndInterval: func(int) { firstInterval = false },
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 0, len(sizes))
	for _, v := range sizes {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	top := len(vals) / 10
	var topBytes uint64
	for _, v := range vals[:top] {
		topBytes += v
	}
	share := float64(topBytes) / float64(total)
	if share < 0.75 || share > 0.97 {
		t.Errorf("top 10%% of flows carry %.1f%% of bytes, want 75-97%% (paper: 85-94%%)", share*100)
	}
}

// TestGeneratorLongLivedFlowsPersist checks that the heaviest flows appear
// in every interval, which the preserve-entries optimization relies on.
func TestGeneratorLongLivedFlowsPersist(t *testing.T) {
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := flow.FiveTuple{}
	perInterval := make([]map[flow.Key]uint64, 0, cfg.Intervals)
	cur := make(map[flow.Key]uint64)
	_, err = Replay(g, FuncConsumer{
		OnPacket: func(p *flow.Packet) { cur[def.Key(p)] += uint64(p.Size) },
		OnEndInterval: func(int) {
			perInterval = append(perInterval, cur)
			cur = make(map[flow.Key]uint64)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find the top-5 flows of interval 0; they must appear in all intervals.
	type kv struct {
		k flow.Key
		v uint64
	}
	var first []kv
	for k, v := range perInterval[0] {
		first = append(first, kv{k, v})
	}
	sort.Slice(first, func(i, j int) bool { return first[i].v > first[j].v })
	for _, top := range first[:5] {
		for i, m := range perInterval {
			if _, ok := m[top.k]; !ok {
				t.Errorf("top flow %v missing from interval %d", top.k, i)
			}
		}
	}
}

func TestGeneratorEveryIntervalNonEmpty(t *testing.T) {
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Intervals)
	_, err = Replay(g, FuncConsumer{
		OnPacket: func(p *flow.Packet) { counts[int(p.Time/cfg.Interval)]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("interval %d has no packets", i)
		}
	}
}

func BenchmarkGenerator(b *testing.B) {
	cfg := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := g.Next(); err == io.EOF {
				break
			}
			n++
		}
		b.ReportMetric(float64(n), "packets/op")
	}
}
