package trace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/pcap"
)

func TestMergeInterleavesByTime(t *testing.T) {
	m := testMeta()
	a := NewSliceSource(m, []flow.Packet{
		mkPacket(10*time.Millisecond, 1),
		mkPacket(30*time.Millisecond, 3),
	})
	b := NewSliceSource(m, []flow.Packet{
		mkPacket(20*time.Millisecond, 2),
		mkPacket(40*time.Millisecond, 4),
	})
	merged, err := Merge(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []uint32
	for {
		p, err := merged.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, p.Size)
	}
	want := []uint32{1, 2, 3, 4}
	if len(sizes) != 4 {
		t.Fatalf("merged %d packets", len(sizes))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("position %d: size %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestMergeHandlesEmptyAndSingleSources(t *testing.T) {
	m := testMeta()
	empty := NewSliceSource(m, nil)
	one := NewSliceSource(m, []flow.Packet{mkPacket(time.Millisecond, 7)})
	merged, err := Merge(m, empty, one)
	if err != nil {
		t.Fatal(err)
	}
	p, err := merged.Next()
	if err != nil || p.Size != 7 {
		t.Errorf("got %v, %v", p, err)
	}
	if _, err := merged.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	if _, err := Merge(m); err == nil {
		t.Error("Merge with no sources accepted")
	}
	bad := m
	bad.Intervals = 0
	if _, err := Merge(bad, one); err == nil {
		t.Error("Merge with invalid meta accepted")
	}
}

func TestMergeManySourcesStaysSorted(t *testing.T) {
	m := testMeta()
	var sources []Source
	for s := 0; s < 8; s++ {
		var pkts []flow.Packet
		for i := 0; i < 50; i++ {
			pkts = append(pkts, mkPacket(time.Duration(s+i*8)*time.Millisecond, uint32(s*100+i)))
		}
		sources = append(sources, NewSliceSource(m, pkts))
	}
	merged, err := Merge(m, sources...)
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	n := 0
	for {
		p, err := merged.Next()
		if err == io.EOF {
			break
		}
		if p.Time < last {
			t.Fatalf("packet %d out of order: %v < %v", n, p.Time, last)
		}
		last = p.Time
		n++
	}
	if n != 400 {
		t.Errorf("merged %d packets, want 400", n)
	}
}

func TestPcapSourceRoundTrip(t *testing.T) {
	// Generate a small trace, write it as pcap, read it back as a Source.
	cfg := smallConfig()
	cfg = cfg.WithIntervals(1)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		p, err := orig.Next()
		if err == io.EOF {
			break
		}
		if err := w.WritePacket(&p); err != nil {
			t.Fatal(err)
		}
		count++
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	meta := cfg.Meta
	meta.HasAS = false // pcap does not carry AS annotations
	src, err := NewPcapSource(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	orig.Reset()
	got := 0
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want, _ := orig.Next()
		want.SrcAS, want.DstAS = 0, 0
		// Microsecond truncation of the pcap format.
		want.Time = want.Time.Truncate(time.Microsecond)
		if p != want {
			t.Fatalf("packet %d: got %+v want %+v", got, p, want)
		}
		got++
	}
	if got != count {
		t.Errorf("read %d packets, wrote %d", got, count)
	}
	if src.Skipped != 0 {
		t.Errorf("skipped %d frames from a pure-IPv4 capture", src.Skipped)
	}
}

func TestPcapSourceRejectsBadMeta(t *testing.T) {
	if _, err := NewPcapSource(bytes.NewReader(nil), Meta{}); err == nil {
		t.Error("invalid meta accepted")
	}
}
