package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/flow"
)

func TestMinAvgMaxObserve(t *testing.T) {
	var m MinAvgMax
	vals := []float64{10, 2, 7}
	for i, v := range vals {
		m.observe(v, i+1)
	}
	if m.Min != 2 || m.Max != 10 {
		t.Errorf("min/max = %g/%g", m.Min, m.Max)
	}
	if m.Avg < 6.33 || m.Avg > 6.34 {
		t.Errorf("avg = %g", m.Avg)
	}
	if got := m.String(); got != "2/6/10" {
		t.Errorf("String = %q", got)
	}
}

func TestCollectStatsCountsDistinctFlows(t *testing.T) {
	m := testMeta()
	m.Intervals = 2
	mk := func(at time.Duration, src, dst uint32, size uint32) flow.Packet {
		return flow.Packet{Time: at, Size: size, SrcIP: src, DstIP: dst, Proto: 6, SrcAS: uint16(src), DstAS: uint16(dst)}
	}
	pkts := []flow.Packet{
		mk(0, 1, 10, 100),
		mk(time.Millisecond, 1, 10, 100),  // same flow again
		mk(2*time.Millisecond, 2, 10, 50), // same dstIP, new 5-tuple
		mk(3*time.Millisecond, 3, 11, 25),
		mk(1100*time.Millisecond, 1, 10, 1000), // interval 1: one flow only
	}
	st, err := CollectStats(NewSliceSource(m, pkts))
	if err != nil {
		t.Fatal(err)
	}
	ft := st.Flows["5-tuple"]
	if ft.Min != 1 || ft.Max != 3 || ft.Avg != 2 {
		t.Errorf("5-tuple = %+v, want 1/2/3", ft)
	}
	di := st.Flows["dstIP"]
	if di.Min != 1 || di.Max != 2 {
		t.Errorf("dstIP = %+v, want min 1 max 2", di)
	}
	if _, ok := st.Flows["ASpair"]; !ok {
		t.Error("ASpair stats missing on HasAS trace")
	}
	if st.Packets != 5 || st.Intervals != 2 {
		t.Errorf("packets/intervals = %d/%d", st.Packets, st.Intervals)
	}
	// Interval 0 carried 275 bytes, interval 1 carried 1000.
	if st.MBytes.Min != 275e-6 || st.MBytes.Max != 1e-3 {
		t.Errorf("MBytes = %+v", st.MBytes)
	}
}

func TestCollectStatsNoAS(t *testing.T) {
	m := testMeta()
	m.HasAS = false
	m.Intervals = 1
	pkts := []flow.Packet{{Time: 0, Size: 10, SrcIP: 1, DstIP: 2, Proto: 6}}
	st, err := CollectStats(NewSliceSource(m, pkts))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Flows["ASpair"]; ok {
		t.Error("ASpair stats present on HasAS=false trace")
	}
	if !strings.Contains(st.String(), "ASpair -") {
		t.Errorf("String should mark ASpair as '-': %q", st.String())
	}
}
