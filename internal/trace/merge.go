package trace

import (
	"container/heap"
	"errors"
	"io"

	"repro/internal/flow"
)

// Merge combines multiple packet sources into one time-ordered stream —
// the way a measurement point sees the union of several traffic sources
// (e.g. background traffic plus an injected attack, or multiple input
// links feeding one device). The merged trace takes its metadata from the
// first source; every source must already be time ordered.
func Merge(meta Meta, sources ...Source) (Source, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, errors.New("trace: Merge needs at least one source")
	}
	m := &mergeSource{meta: meta}
	for _, s := range sources {
		p, err := s.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return nil, err
		}
		m.heap = append(m.heap, mergeHead{pkt: p, src: s})
	}
	heap.Init(&m.heap)
	return m, nil
}

type mergeHead struct {
	pkt flow.Packet
	src Source
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].pkt.Time < h[j].pkt.Time }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type mergeSource struct {
	meta Meta
	heap mergeHeap
}

// Meta implements Source.
func (m *mergeSource) Meta() Meta { return m.meta }

// Next implements Source.
func (m *mergeSource) Next() (flow.Packet, error) {
	if len(m.heap) == 0 {
		return flow.Packet{}, io.EOF
	}
	head := m.heap[0]
	out := head.pkt
	next, err := head.src.Next()
	switch err {
	case nil:
		m.heap[0].pkt = next
		heap.Fix(&m.heap, 0)
	case io.EOF:
		heap.Pop(&m.heap)
	default:
		return flow.Packet{}, err
	}
	return out, nil
}
