package trace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/flow"
)

func TestFormatRoundTrip(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{
		{Time: 0, Size: 40, SrcIP: 0x0a000001, DstIP: 0x0b000001, SrcPort: 1234, DstPort: 80, Proto: 6, SrcAS: 1, DstAS: 2},
		{Time: 5 * time.Millisecond, Size: 1500, SrcIP: 0xffffffff, DstIP: 1, SrcPort: 65535, DstPort: 65535, Proto: 17, SrcAS: 65535, DstAS: 65535},
		{Time: 5 * time.Millisecond, Size: 576, SrcIP: 3, DstIP: 4, Proto: 1}, // equal timestamps allowed
		{Time: 2500 * time.Millisecond, Size: 100, SrcIP: 5, DstIP: 6, SrcPort: 1, DstPort: 2, Proto: 6, SrcAS: 10, DstAS: 20},
	}
	var buf bytes.Buffer
	n, err := WriteAll(&buf, NewSliceSource(m, pkts))
	if err != nil || n != len(pkts) {
		t.Fatalf("WriteAll: n=%d err=%v", n, err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() != m {
		t.Errorf("meta round trip: got %+v want %+v", r.Meta(), m)
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got != want {
			t.Errorf("packet %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestFormatNoASRoundTrip(t *testing.T) {
	m := testMeta()
	m.HasAS = false
	// AS fields must not survive a HasAS=false round trip.
	pkts := []flow.Packet{
		{Time: time.Millisecond, Size: 40, SrcIP: 1, DstIP: 2, Proto: 6, SrcAS: 7, DstAS: 8},
	}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSliceSource(m, pkts)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcAS != 0 || got.DstAS != 0 {
		t.Errorf("AS fields leaked through HasAS=false format: %+v", got)
	}
	want := pkts[0]
	want.SrcAS, want.DstAS = 0, 0
	if got != want {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	p1 := flow.Packet{Time: time.Second, Size: 40}
	p2 := flow.Packet{Time: time.Millisecond, Size: 40}
	if err := w.WritePacket(&p1); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(&p2); err == nil {
		t.Error("out-of-order packet accepted by writer")
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX123456789012345678901234"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("HHTR\x01"))); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReaderTruncatedPacket(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{{Time: time.Millisecond, Size: 40, SrcIP: 1, DstIP: 2, Proto: 6, SrcAS: 1, DstAS: 1}}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSliceSource(m, pkts)); err != nil {
		t.Fatal(err)
	}
	// Cut the last byte: the packet record becomes unreadable.
	data := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated packet gave %v, want a non-EOF error", err)
	}
}

func TestReaderBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSliceSource(testMeta(), nil)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestFormatGeneratorRoundTrip(t *testing.T) {
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	orig.Reset()
	n, err := WriteAll(&buf, orig)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	orig.Reset()
	count := 0
	for {
		want, err1 := orig.Next()
		got, err2 := back.Next()
		if (err1 == io.EOF) != (err2 == io.EOF) {
			t.Fatalf("length mismatch at %d/%d", count, n)
		}
		if err1 == io.EOF {
			break
		}
		if got != want {
			t.Fatalf("packet %d: got %+v want %+v", count, got, want)
		}
		count++
	}
	if count != n {
		t.Errorf("round-tripped %d packets, wrote %d", count, n)
	}
}

// failingWriter always errors, exercising writer error propagation.
type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestWriterPropagatesIOErrors(t *testing.T) {
	w, err := NewWriter(failingWriter{}, testMeta())
	if err != nil {
		return // error surfaced at header time: fine
	}
	p := flow.Packet{Time: time.Millisecond, Size: 40}
	w.WritePacket(&p)
	if err := w.Flush(); err == nil {
		t.Error("write error never surfaced")
	}
}

func TestNewWriterRejectsBadMeta(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Meta{}); err == nil {
		t.Error("invalid meta accepted")
	}
	long := testMeta()
	long.Name = string(make([]byte, 70000))
	if _, err := NewWriter(&buf, long); err == nil {
		t.Error("oversized name accepted")
	}
}
