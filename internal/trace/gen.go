package trace

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cfgerr"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/routing"
)

// GenConfig configures the synthetic trace generator. The zero value is not
// usable; start from a Preset or fill every field.
type GenConfig struct {
	Meta
	// Seed makes generation deterministic; the same config yields the same
	// packet stream.
	Seed int64

	// FlowsPerInterval is the target number of active 5-tuple flows in each
	// measurement interval (Table 3 column 1).
	FlowsPerInterval int
	// DstIPs is the size of the destination address pool, controlling the
	// active destination-IP flow count (Table 3 column 2).
	DstIPs int
	// ASPairs is the number of distinct (source AS, destination AS) pairs,
	// controlling the active AS-pair flow count (Table 3 column 3).
	ASPairs int
	// ASes is the number of autonomous systems in the synthetic topology.
	ASes int

	// BytesPerInterval is the target traffic volume per measurement
	// interval (Table 3 last column, converted to bytes).
	BytesPerInterval float64
	// VolumeJitter is the relative spread of per-interval volume around
	// BytesPerInterval (Table 3 shows roughly +-10-20 % around the mean).
	VolumeJitter float64

	// ZipfAlpha is the exponent of the flow-size distribution. Values
	// around 1.15 reproduce Figure 6's "top 10 % of flows carry 85-94 % of
	// the traffic".
	ZipfAlpha float64
	// PopulationFactor sizes the ephemeral flow population relative to
	// FlowsPerInterval (ranks drawn from a pool this many times larger).
	PopulationFactor float64
	// LongLivedRanks is how many of the top-ranked (largest) flows persist
	// for the whole trace. The paper observes that "most large flows are
	// long lived"; preserving entries exploits exactly this.
	LongLivedRanks int
	// MeanLifetime is the mean lifetime of ephemeral flows in intervals.
	MeanLifetime float64

	// PacketSizes is the packet size mix; nil selects the default trimodal
	// Internet mix with a ~540 byte mean.
	PacketSizes *dist.PacketSizes
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if err := c.Meta.Validate(); err != nil {
		return err
	}
	if c.FlowsPerInterval < 1 {
		return cfgerr.New("trace", "FlowsPerInterval", "must be at least 1, got %d", c.FlowsPerInterval)
	}
	if c.DstIPs < 1 {
		return cfgerr.New("trace", "DstIPs", "must be at least 1, got %d", c.DstIPs)
	}
	if c.ASPairs < 1 {
		return cfgerr.New("trace", "ASPairs", "must be at least 1, got %d", c.ASPairs)
	}
	if c.ASes < 2 {
		return cfgerr.New("trace", "ASes", "must be at least 2, got %d", c.ASes)
	}
	if c.BytesPerInterval <= 0 {
		return cfgerr.New("trace", "BytesPerInterval", "must be positive, got %g", c.BytesPerInterval)
	}
	if c.BytesPerInterval > c.Capacity() {
		return cfgerr.New("trace", "BytesPerInterval", "volume %g exceeds link capacity %g per interval",
			c.BytesPerInterval, c.Capacity())
	}
	if c.ZipfAlpha <= 0 {
		return cfgerr.New("trace", "ZipfAlpha", "must be positive, got %g", c.ZipfAlpha)
	}
	if c.PopulationFactor < 1 {
		return cfgerr.New("trace", "PopulationFactor", "must be at least 1, got %g", c.PopulationFactor)
	}
	if c.MeanLifetime <= 0 {
		return cfgerr.New("trace", "MeanLifetime", "must be positive, got %g", c.MeanLifetime)
	}
	if c.LongLivedRanks < 0 || c.LongLivedRanks > c.FlowsPerInterval {
		return cfgerr.New("trace", "LongLivedRanks", "%d outside [0, FlowsPerInterval]", c.LongLivedRanks)
	}
	if c.VolumeJitter < 0 || c.VolumeJitter >= 1 {
		return cfgerr.New("trace", "VolumeJitter", "%g outside [0, 1)", c.VolumeJitter)
	}
	return nil
}

// Link speeds of the traces in Table 3, in bytes per second.
const (
	oc3BytesPerSec  = 155.52e6 / 8
	oc12BytesPerSec = 622.08e6 / 8
	oc48BytesPerSec = 2488.32e6 / 8
)

// Preset returns a generator configuration calibrated to one of the paper's
// traces: "MAG+" (OC-48, 4515 s), "MAG" (its first 90 s), "IND" (OC-12,
// 90 s) or "COS" (OC-3, 90 s). Flow counts and volumes follow Table 3. It
// returns an error for unknown names.
//
// Full-scale presets are expensive (MAG+ generates roughly half a million
// packets per interval for 903 intervals); use Scaled for tests and
// default experiment runs.
func Preset(name string) (GenConfig, error) {
	base := GenConfig{
		Meta: Meta{
			Name:     name,
			Interval: 5 * time.Second,
			HasAS:    true,
		},
		Seed:             1,
		VolumeJitter:     0.12,
		ZipfAlpha:        1.15,
		PopulationFactor: 2.0,
		MeanLifetime:     1.5,
	}
	switch name {
	case "MAG+":
		base.LinkBytesPerSec = oc48BytesPerSec
		base.Intervals = 903
		base.FlowsPerInterval = 98424
		base.DstIPs = 48000
		base.ASPairs = 7401
		base.ASes = 2500
		base.BytesPerInterval = 256e6
		base.LongLivedRanks = 2000
	case "MAG":
		base.LinkBytesPerSec = oc48BytesPerSec
		base.Intervals = 18
		base.FlowsPerInterval = 100105
		base.DstIPs = 49000
		base.ASPairs = 7408
		base.ASes = 2500
		base.BytesPerInterval = 264.7e6
		base.LongLivedRanks = 2000
	case "IND":
		base.LinkBytesPerSec = oc12BytesPerSec
		base.Intervals = 18
		base.FlowsPerInterval = 14349
		base.DstIPs = 10000
		base.ASPairs = 900
		base.ASes = 600
		base.BytesPerInterval = 96.04e6
		base.LongLivedRanks = 400
		base.HasAS = false
	case "COS":
		base.LinkBytesPerSec = oc3BytesPerSec
		base.Intervals = 18
		base.FlowsPerInterval = 5497
		base.DstIPs = 1300
		base.ASPairs = 300
		base.ASes = 200
		base.BytesPerInterval = 16.63e6
		base.LongLivedRanks = 150
		base.HasAS = false
	default:
		return GenConfig{}, fmt.Errorf("trace: unknown preset %q", name)
	}
	return base, nil
}

// Scaled shrinks (or grows) a configuration by factor f, scaling flow
// counts, pools, volume and link capacity together so every ratio the
// algorithms care about (threshold as a fraction of capacity, flows per
// counter, utilization) is preserved. Counts never drop below small floors.
func (c GenConfig) Scaled(f float64) GenConfig {
	if f == 1 {
		return c
	}
	scaleInt := func(n int, floor int) int {
		v := int(math.Round(float64(n) * f))
		if v < floor {
			return floor
		}
		return v
	}
	c.Name = fmt.Sprintf("%s x%g", c.Name, f)
	c.FlowsPerInterval = scaleInt(c.FlowsPerInterval, 50)
	c.DstIPs = scaleInt(c.DstIPs, 20)
	c.ASPairs = scaleInt(c.ASPairs, 10)
	c.ASes = scaleInt(c.ASes, 10)
	c.LongLivedRanks = scaleInt(c.LongLivedRanks, 5)
	if c.LongLivedRanks > c.FlowsPerInterval {
		c.LongLivedRanks = c.FlowsPerInterval / 2
	}
	c.BytesPerInterval *= f
	c.LinkBytesPerSec *= f
	return c
}

// WithIntervals returns a copy of the configuration truncated or extended
// to n measurement intervals.
func (c GenConfig) WithIntervals(n int) GenConfig {
	c.Intervals = n
	return c
}

// genFlow is one active flow in the generator.
type genFlow struct {
	pkt    flow.Packet // template: addressing fields filled, size/time not
	weight float64
	dies   int // first interval in which the flow is no longer active
}

// Generator synthesizes a packet stream; it implements Source. Create with
// NewGenerator; generators are single-use (collect or replay, then discard).
type Generator struct {
	cfg   GenConfig
	rng   *rand.Rand
	topo  *routing.Topology
	sizes *dist.PacketSizes

	// dstPool[i] is a template with DstIP/SrcAS/DstAS (and source prefix
	// choice) fixed by the AS-pair structure.
	dstPool []dstEntry
	dstPick *dist.Zipf

	longLived []genFlow
	ephemeral []genFlow

	interval int
	buf      []flow.Packet // packets of the current interval, time-sorted
	pos      int
}

type dstEntry struct {
	dstIP        uint32
	srcAS, dstAS uint16
}

// NewGenerator builds a generator for the configuration.
func NewGenerator(cfg GenConfig) (*Generator, error) {
	if cfg.PacketSizes == nil {
		cfg.PacketSizes = dist.DefaultPacketSizes()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		topo:  routing.Synthetic(cfg.ASes, cfg.Seed+1),
		sizes: cfg.PacketSizes,
	}
	g.buildDstPool()
	g.spawnLongLived()
	g.fillInterval()
	return g, nil
}

// Meta implements Source.
func (g *Generator) Meta() Meta { return g.cfg.Meta }

// buildDstPool creates the AS-pair and destination-IP structure: ASPairs
// distinct (srcAS, dstAS) pairs, then DstIPs destinations each tied to one
// pair with Zipf popularity so a handful of destinations (and pairs)
// dominate, as in real traffic.
func (g *Generator) buildDstPool() {
	ases := g.topo.ASes()
	type pair struct{ src, dst uint16 }
	seen := make(map[pair]bool, g.cfg.ASPairs)
	pairs := make([]pair, 0, g.cfg.ASPairs)
	// Keep pairs distinct and directional; cap the attempts so tiny
	// topologies (fewer possible pairs than requested) terminate with as
	// many distinct pairs as exist in practice.
	maxAttempts := 50 * g.cfg.ASPairs
	for attempts := 0; len(pairs) < g.cfg.ASPairs && attempts < maxAttempts; attempts++ {
		p := pair{ases[g.rng.Intn(len(ases))], ases[g.rng.Intn(len(ases))]}
		if p.src == p.dst || seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}
	pairPick := dist.NewZipf(len(pairs), 0.5)
	g.dstPool = make([]dstEntry, g.cfg.DstIPs)
	for i := range g.dstPool {
		pr := pairs[pairPick.Rank(g.rng)-1]
		addr, ok := g.topo.RandomAddrInAS(pr.dst, g.rng)
		if !ok {
			panic("trace: AS without prefix in synthetic topology")
		}
		g.dstPool[i] = dstEntry{dstIP: addr, srcAS: pr.src, dstAS: pr.dst}
	}
	g.dstPick = dist.NewZipf(len(g.dstPool), 0.6)
}

// popularPorts is a small mix of destination ports weighted towards web
// traffic, so port fields look plausible in reports.
var popularPorts = []uint16{80, 443, 25, 53, 110, 8080, 22, 21, 6667, 119}

// newFlow creates a flow template with the given Zipf rank for its weight.
func (g *Generator) newFlow(rank int, dies int) genFlow {
	d := g.dstPool[g.dstPick.Rank(g.rng)-1]
	srcIP, ok := g.topo.RandomAddrInAS(d.srcAS, g.rng)
	if !ok {
		panic("trace: AS without prefix in synthetic topology")
	}
	proto := uint8(6)
	if g.rng.Float64() < 0.15 {
		proto = 17
	}
	var srcAS, dstAS uint16
	if g.cfg.HasAS {
		srcAS, dstAS = d.srcAS, d.dstAS
	}
	return genFlow{
		pkt: flow.Packet{
			SrcIP:   srcIP,
			DstIP:   d.dstIP,
			SrcPort: uint16(1024 + g.rng.Intn(64512)),
			DstPort: popularPorts[g.rng.Intn(len(popularPorts))],
			Proto:   proto,
			SrcAS:   srcAS,
			DstAS:   dstAS,
		},
		weight: math.Pow(float64(rank), -g.cfg.ZipfAlpha),
		dies:   dies,
	}
}

func (g *Generator) spawnLongLived() {
	g.longLived = make([]genFlow, 0, g.cfg.LongLivedRanks)
	for rank := 1; rank <= g.cfg.LongLivedRanks; rank++ {
		g.longLived = append(g.longLived, g.newFlow(rank, g.cfg.Intervals))
	}
}

// ephemeralRank draws a rank strictly below the long-lived block, from the
// tail of the Zipf population.
func (g *Generator) ephemeralRank() int {
	lo := g.cfg.LongLivedRanks + 1
	hi := int(float64(g.cfg.FlowsPerInterval) * g.cfg.PopulationFactor)
	if hi < lo {
		hi = lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// lifetime draws an ephemeral flow lifetime in whole intervals (>= 1),
// geometric with the configured mean.
func (g *Generator) lifetime() int {
	// Geometric on {1, 2, ...} with mean m: success prob 1/m.
	p := 1 / g.cfg.MeanLifetime
	if p >= 1 {
		return 1
	}
	n := 1
	for g.rng.Float64() > p && n < 100*int(g.cfg.MeanLifetime)+100 {
		n++
	}
	return n
}

// churn retires dead ephemerals and spawns replacements to restore the
// active-flow target, with a little noise so interval counts fluctuate as
// in Table 3.
func (g *Generator) churn() {
	alive := g.ephemeral[:0]
	for _, f := range g.ephemeral {
		if f.dies > g.interval {
			alive = append(alive, f)
		}
	}
	g.ephemeral = alive
	target := g.cfg.FlowsPerInterval - len(g.longLived)
	noise := target / 50
	if noise > 0 {
		target += g.rng.Intn(2*noise+1) - noise
	}
	for len(g.ephemeral) < target {
		g.ephemeral = append(g.ephemeral, g.newFlow(g.ephemeralRank(), g.interval+g.lifetime()))
	}
}

// fillInterval synthesizes all packets of the current interval into g.buf.
func (g *Generator) fillInterval() {
	g.churn()
	jitter := 1 + g.cfg.VolumeJitter*(2*g.rng.Float64()-1)
	budget := g.cfg.BytesPerInterval * jitter

	var weightSum float64
	for _, f := range g.longLived {
		weightSum += f.weight
	}
	for _, f := range g.ephemeral {
		weightSum += f.weight
	}
	bytesPerWeight := budget / weightSum

	g.buf = g.buf[:0]
	start := time.Duration(g.interval) * g.cfg.Interval
	emit := func(f *genFlow) {
		bytes := int64(f.weight * bytesPerWeight)
		for {
			size := g.sizes.Sample(g.rng)
			if int64(size) > bytes {
				// Last (or only) packet: emit at least a minimum-size
				// packet so every active flow appears in the interval.
				if bytes < 40 {
					size = 40
				} else {
					size = uint32(bytes)
				}
				bytes = 0
			} else {
				bytes -= int64(size)
			}
			p := f.pkt
			p.Size = size
			p.Time = start + time.Duration(g.rng.Int63n(int64(g.cfg.Interval)))
			g.buf = append(g.buf, p)
			if bytes <= 0 {
				return
			}
		}
	}
	for i := range g.longLived {
		emit(&g.longLived[i])
	}
	for i := range g.ephemeral {
		emit(&g.ephemeral[i])
	}
	sort.Slice(g.buf, func(i, j int) bool { return g.buf[i].Time < g.buf[j].Time })
	g.pos = 0
}

// Next implements Source.
func (g *Generator) Next() (flow.Packet, error) {
	for g.pos >= len(g.buf) {
		g.interval++
		if g.interval >= g.cfg.Intervals {
			return flow.Packet{}, io.EOF
		}
		g.fillInterval()
	}
	p := g.buf[g.pos]
	g.pos++
	return p, nil
}
