package trace

import (
	"io"
	"testing"
	"time"

	"repro/internal/flow"
)

func testMeta() Meta {
	return Meta{
		Name:            "test",
		LinkBytesPerSec: 1e6,
		Interval:        time.Second,
		Intervals:       3,
		HasAS:           true,
	}
}

func TestMetaCapacityAndDuration(t *testing.T) {
	m := Meta{LinkBytesPerSec: 2e6, Interval: 5 * time.Second, Intervals: 4}
	if got := m.Capacity(); got != 1e7 {
		t.Errorf("Capacity = %g", got)
	}
	if got := m.Duration(); got != 20*time.Second {
		t.Errorf("Duration = %v", got)
	}
}

func TestMetaValidate(t *testing.T) {
	good := testMeta()
	if err := good.Validate(); err != nil {
		t.Errorf("valid meta rejected: %v", err)
	}
	bad := []Meta{
		{LinkBytesPerSec: 0, Interval: time.Second, Intervals: 1},
		{LinkBytesPerSec: 1, Interval: 0, Intervals: 1},
		{LinkBytesPerSec: 1, Interval: time.Second, Intervals: 0},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("bad meta %d accepted", i)
		}
	}
}

func mkPacket(at time.Duration, size uint32) flow.Packet {
	return flow.Packet{Time: at, Size: size, SrcIP: 1, DstIP: 2, Proto: 6}
}

func TestReplayIntervalBoundaries(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{
		mkPacket(100*time.Millisecond, 100),
		mkPacket(900*time.Millisecond, 200),
		mkPacket(1100*time.Millisecond, 300), // interval 1
		mkPacket(2500*time.Millisecond, 400), // interval 2
	}
	var gotPkts []uint32
	var gotEnds []int
	n, err := Replay(NewSliceSource(m, pkts), FuncConsumer{
		OnPacket:      func(p *flow.Packet) { gotPkts = append(gotPkts, p.Size) },
		OnEndInterval: func(i int) { gotEnds = append(gotEnds, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("replayed %d packets", n)
	}
	if len(gotPkts) != 4 || gotPkts[0] != 100 || gotPkts[3] != 400 {
		t.Errorf("packets = %v", gotPkts)
	}
	if len(gotEnds) != 3 || gotEnds[0] != 0 || gotEnds[1] != 1 || gotEnds[2] != 2 {
		t.Errorf("interval ends = %v, want [0 1 2]", gotEnds)
	}
}

func TestReplayEmptyIntervals(t *testing.T) {
	// A trace with packets only in the first interval must still close all
	// declared intervals.
	m := testMeta()
	pkts := []flow.Packet{mkPacket(10*time.Millisecond, 50)}
	var ends []int
	_, err := Replay(NewSliceSource(m, pkts), FuncConsumer{
		OnEndInterval: func(i int) { ends = append(ends, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) != 3 {
		t.Errorf("ends = %v, want 3 interval closes", ends)
	}
}

func TestReplayNoPackets(t *testing.T) {
	m := testMeta()
	count := 0
	_, err := Replay(NewSliceSource(m, nil), FuncConsumer{
		OnEndInterval: func(int) { count++ },
	})
	if err != nil || count != 3 {
		t.Errorf("empty replay: err=%v ends=%d", err, count)
	}
}

func TestReplayLatePacketsClampToLastInterval(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{mkPacket(10*time.Second, 99)} // way past the end
	var seen int
	var ends []int
	_, err := Replay(NewSliceSource(m, pkts), FuncConsumer{
		OnPacket:      func(p *flow.Packet) { seen++ },
		OnEndInterval: func(i int) { ends = append(ends, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 || len(ends) != 3 {
		t.Errorf("seen=%d ends=%v", seen, ends)
	}
}

func TestReplayOutOfOrderRejected(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{
		mkPacket(1500*time.Millisecond, 1),
		mkPacket(100*time.Millisecond, 2), // earlier interval: must error
	}
	if _, err := Replay(NewSliceSource(m, pkts), FuncConsumer{}); err == nil {
		t.Error("out-of-order packets accepted")
	}
}

func TestSliceSourceResetAndCollect(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{mkPacket(0, 1), mkPacket(time.Millisecond, 2)}
	s := NewSliceSource(m, pkts)
	collected, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Error("source not drained after Collect")
	}
	s.Reset()
	if p, err := s.Next(); err != nil || p.Size != 1 {
		t.Errorf("after Reset: %v %v", p, err)
	}
	if collected.Meta() != m {
		t.Error("Collect lost metadata")
	}
	if p, _ := collected.Next(); p.Size != 1 {
		t.Error("Collect lost packets")
	}
}
