package trace

import (
	"io"
	"testing"
	"time"

	"repro/internal/flow"
)

func testMeta() Meta {
	return Meta{
		Name:            "test",
		LinkBytesPerSec: 1e6,
		Interval:        time.Second,
		Intervals:       3,
		HasAS:           true,
	}
}

func TestMetaCapacityAndDuration(t *testing.T) {
	m := Meta{LinkBytesPerSec: 2e6, Interval: 5 * time.Second, Intervals: 4}
	if got := m.Capacity(); got != 1e7 {
		t.Errorf("Capacity = %g", got)
	}
	if got := m.Duration(); got != 20*time.Second {
		t.Errorf("Duration = %v", got)
	}
}

func TestMetaValidate(t *testing.T) {
	good := testMeta()
	if err := good.Validate(); err != nil {
		t.Errorf("valid meta rejected: %v", err)
	}
	bad := []Meta{
		{LinkBytesPerSec: 0, Interval: time.Second, Intervals: 1},
		{LinkBytesPerSec: 1, Interval: 0, Intervals: 1},
		{LinkBytesPerSec: 1, Interval: time.Second, Intervals: 0},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("bad meta %d accepted", i)
		}
	}
}

func mkPacket(at time.Duration, size uint32) flow.Packet {
	return flow.Packet{Time: at, Size: size, SrcIP: 1, DstIP: 2, Proto: 6}
}

func TestReplayIntervalBoundaries(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{
		mkPacket(100*time.Millisecond, 100),
		mkPacket(900*time.Millisecond, 200),
		mkPacket(1100*time.Millisecond, 300), // interval 1
		mkPacket(2500*time.Millisecond, 400), // interval 2
	}
	var gotPkts []uint32
	var gotEnds []int
	n, err := Replay(NewSliceSource(m, pkts), FuncConsumer{
		OnPacket:      func(p *flow.Packet) { gotPkts = append(gotPkts, p.Size) },
		OnEndInterval: func(i int) { gotEnds = append(gotEnds, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("replayed %d packets", n)
	}
	if len(gotPkts) != 4 || gotPkts[0] != 100 || gotPkts[3] != 400 {
		t.Errorf("packets = %v", gotPkts)
	}
	if len(gotEnds) != 3 || gotEnds[0] != 0 || gotEnds[1] != 1 || gotEnds[2] != 2 {
		t.Errorf("interval ends = %v, want [0 1 2]", gotEnds)
	}
}

func TestReplayEmptyIntervals(t *testing.T) {
	// A trace with packets only in the first interval must still close all
	// declared intervals.
	m := testMeta()
	pkts := []flow.Packet{mkPacket(10*time.Millisecond, 50)}
	var ends []int
	_, err := Replay(NewSliceSource(m, pkts), FuncConsumer{
		OnEndInterval: func(i int) { ends = append(ends, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) != 3 {
		t.Errorf("ends = %v, want 3 interval closes", ends)
	}
}

func TestReplayNoPackets(t *testing.T) {
	m := testMeta()
	count := 0
	_, err := Replay(NewSliceSource(m, nil), FuncConsumer{
		OnEndInterval: func(int) { count++ },
	})
	if err != nil || count != 3 {
		t.Errorf("empty replay: err=%v ends=%d", err, count)
	}
}

func TestReplayLatePacketsClampToLastInterval(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{mkPacket(10*time.Second, 99)} // way past the end
	var seen int
	var ends []int
	_, err := Replay(NewSliceSource(m, pkts), FuncConsumer{
		OnPacket:      func(p *flow.Packet) { seen++ },
		OnEndInterval: func(i int) { ends = append(ends, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 || len(ends) != 3 {
		t.Errorf("seen=%d ends=%v", seen, ends)
	}
}

func TestReplayOutOfOrderRejected(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{
		mkPacket(1500*time.Millisecond, 1),
		mkPacket(100*time.Millisecond, 2), // earlier interval: must error
	}
	if _, err := Replay(NewSliceSource(m, pkts), FuncConsumer{}); err == nil {
		t.Error("out-of-order packets accepted")
	}
}

func TestSliceSourceResetAndCollect(t *testing.T) {
	m := testMeta()
	pkts := []flow.Packet{mkPacket(0, 1), mkPacket(time.Millisecond, 2)}
	s := NewSliceSource(m, pkts)
	collected, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Error("source not drained after Collect")
	}
	s.Reset()
	if p, err := s.Next(); err != nil || p.Size != 1 {
		t.Errorf("after Reset: %v %v", p, err)
	}
	if collected.Meta() != m {
		t.Error("Collect lost metadata")
	}
	if p, _ := collected.Next(); p.Size != 1 {
		t.Error("Collect lost packets")
	}
}

// eventRecorder records the interleaving of packets and interval boundaries;
// when batch is true it also implements BatchConsumer and records batch
// sizes, so tests can check batching invariants.
type eventRecorder struct {
	batch   bool
	events  []string
	batches []int
}

func (r *eventRecorder) Packet(p *flow.Packet) {
	r.events = append(r.events, "p", string(rune('0'+p.Size%10)))
}

func (r *eventRecorder) EndInterval(i int) {
	r.events = append(r.events, "iv")
}

// batchRecorder wraps eventRecorder with a PacketBatch method.
type batchRecorder struct{ eventRecorder }

func (r *batchRecorder) PacketBatch(pkts []flow.Packet) {
	r.batches = append(r.batches, len(pkts))
	for i := range pkts {
		r.Packet(&pkts[i])
	}
}

func replayEvents(t *testing.T, pkts []flow.Packet, m Meta) []string {
	t.Helper()
	var r eventRecorder
	if _, err := Replay(NewSliceSource(m, pkts), &r); err != nil {
		t.Fatal(err)
	}
	return r.events
}

func sameEvents(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplayBatchedSameSequence: batched replay delivers the exact
// packet/interval interleaving of Replay, for batch-capable and plain
// consumers, across batch sizes that do and do not divide the trace.
func TestReplayBatchedSameSequence(t *testing.T) {
	m := testMeta()
	var pkts []flow.Packet
	for iv := 0; iv < m.Intervals; iv++ {
		for i := 0; i < 17; i++ {
			pkts = append(pkts, mkPacket(time.Duration(iv)*time.Second+time.Duration(i)*time.Millisecond, uint32(iv*17+i)))
		}
	}
	want := replayEvents(t, pkts, m)
	for _, bs := range []int{1, 3, 17, 64, 0 /* default */} {
		var br batchRecorder
		n, err := Replay(NewSliceSource(m, pkts), &br, WithBatchSize(bs))
		if err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		if n != len(pkts) {
			t.Errorf("batch size %d: replayed %d packets, want %d", bs, n, len(pkts))
		}
		if !sameEvents(br.events, want) {
			t.Errorf("batch size %d: event sequence diverges from Replay", bs)
		}
		limit := bs
		if limit <= 0 {
			limit = DefaultBatchSize
		}
		for _, got := range br.batches {
			if got < 1 || got > limit {
				t.Errorf("batch size %d: delivered batch of %d", bs, got)
			}
		}
		// Per-packet fallback for consumers without PacketBatch.
		var plain eventRecorder
		if _, err := Replay(NewSliceSource(m, pkts), &plain, WithBatchSize(bs)); err != nil {
			t.Fatal(err)
		}
		if !sameEvents(plain.events, want) {
			t.Errorf("batch size %d: plain-consumer sequence diverges from Replay", bs)
		}
	}
}

// TestReplayBatchedNeverSpansBoundary: a batch is always flushed before an
// interval boundary, even mid-batch.
func TestReplayBatchedNeverSpansBoundary(t *testing.T) {
	m := testMeta()
	// 5 packets in interval 0, then one in interval 2: the open batch (5 <
	// batchSize 8) must be flushed before the two EndInterval calls.
	pkts := []flow.Packet{
		mkPacket(0, 1), mkPacket(1*time.Millisecond, 2), mkPacket(2*time.Millisecond, 3),
		mkPacket(3*time.Millisecond, 4), mkPacket(4*time.Millisecond, 5),
		mkPacket(2100*time.Millisecond, 6),
	}
	var br batchRecorder
	if _, err := Replay(NewSliceSource(m, pkts), &br, WithBatchSize(8)); err != nil {
		t.Fatal(err)
	}
	if len(br.batches) != 2 || br.batches[0] != 5 || br.batches[1] != 1 {
		t.Fatalf("batches = %v, want [5 1]", br.batches)
	}
	if !sameEvents(br.events, replayEvents(t, pkts, m)) {
		t.Error("event sequence diverges from Replay")
	}
}

// TestReplayBatchedErrors: metadata and ordering failures match Replay.
func TestReplayBatchedErrors(t *testing.T) {
	var r batchRecorder
	if _, err := Replay(NewSliceSource(Meta{}, nil), &r, WithBatchSize(4)); err == nil {
		t.Error("invalid meta accepted")
	}
	m := testMeta()
	ooo := []flow.Packet{mkPacket(1500*time.Millisecond, 1), mkPacket(100*time.Millisecond, 2)}
	if _, err := Replay(NewSliceSource(m, ooo), &r, WithBatchSize(4)); err == nil {
		t.Error("out-of-order trace accepted")
	}
}

// TestReplayProgress: the progress callback sees a non-decreasing cumulative
// packet count and its final call reports the total.
func TestReplayProgress(t *testing.T) {
	m := testMeta()
	var pkts []flow.Packet
	for iv := 0; iv < m.Intervals; iv++ {
		for i := 0; i < 13; i++ {
			pkts = append(pkts, mkPacket(time.Duration(iv)*time.Second+time.Duration(i)*time.Millisecond, 1))
		}
	}
	var seen []int
	var r batchRecorder
	n, err := Replay(NewSliceSource(m, pkts), &r,
		WithBatchSize(5), WithProgress(func(p int) { seen = append(seen, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("progress callback never called")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("progress went backwards: %v", seen)
		}
	}
	if last := seen[len(seen)-1]; last != n || n != len(pkts) {
		t.Fatalf("final progress %d, replayed %d, want %d", last, n, len(pkts))
	}
}
