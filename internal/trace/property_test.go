package trace

import (
	"bytes"
	"io"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/flow"
)

// rawPacket is quick-generatable material for a packet.
type rawPacket struct {
	DT                 uint32 // time delta, nanoseconds
	Size               uint16
	SrcIP, DstIP       uint32
	SrcPort, DstPort   uint16
	Proto              uint8
	SrcASRaw, DstASRaw uint16
}

func buildPackets(raws []rawPacket, hasAS bool) []flow.Packet {
	pkts := make([]flow.Packet, len(raws))
	var at time.Duration
	for i, r := range raws {
		at += time.Duration(r.DT)
		pkts[i] = flow.Packet{
			Time:    at,
			Size:    uint32(r.Size) + 1,
			SrcIP:   r.SrcIP,
			DstIP:   r.DstIP,
			SrcPort: r.SrcPort,
			DstPort: r.DstPort,
			Proto:   r.Proto,
		}
		if hasAS {
			pkts[i].SrcAS = r.SrcASRaw
			pkts[i].DstAS = r.DstASRaw
		}
	}
	return pkts
}

// TestQuickFormatRoundTrip: arbitrary packet sequences survive the binary
// format exactly.
func TestQuickFormatRoundTrip(t *testing.T) {
	check := func(raws []rawPacket, hasAS bool) bool {
		meta := Meta{
			Name:            "prop",
			LinkBytesPerSec: 1e6,
			Interval:        time.Second,
			Intervals:       1,
			HasAS:           hasAS,
		}
		pkts := buildPackets(raws, hasAS)
		var buf bytes.Buffer
		n, err := WriteAll(&buf, NewSliceSource(meta, pkts))
		if err != nil || n != len(pkts) {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil || r.Meta() != meta {
			return false
		}
		for i := range pkts {
			got, err := r.Next()
			if err != nil || got != pkts[i] {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickReplayAccounting: Replay visits every packet exactly once and
// closes every interval exactly once, for arbitrary time sequences.
func TestQuickReplayAccounting(t *testing.T) {
	check := func(raws []rawPacket, intervalsRaw uint8) bool {
		intervals := 1 + int(intervalsRaw)%10
		meta := Meta{
			Name:            "prop",
			LinkBytesPerSec: 1e6,
			Interval:        time.Second,
			Intervals:       intervals,
			HasAS:           true,
		}
		pkts := buildPackets(raws, true)
		sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
		var seen, ends int
		var bytesIn, bytesOut uint64
		for i := range pkts {
			bytesIn += uint64(pkts[i].Size)
		}
		lastEnd := -1
		n, err := Replay(NewSliceSource(meta, pkts), FuncConsumer{
			OnPacket: func(p *flow.Packet) {
				seen++
				bytesOut += uint64(p.Size)
			},
			OnEndInterval: func(i int) {
				if i != lastEnd+1 {
					ends = -1 << 20 // out-of-order interval close
				}
				lastEnd = i
				ends++
			},
		})
		return err == nil && n == len(pkts) && seen == len(pkts) &&
			bytesIn == bytesOut && ends == intervals
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
