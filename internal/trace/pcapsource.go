package trace

import (
	"io"

	"repro/internal/flow"
	"repro/internal/pcap"
)

// PcapSource adapts a pcap capture into a Source, so the measurement tools
// can run directly on real packet captures (the paper's traces were exactly
// such header-only captures). Non-IPv4 frames are skipped and counted.
type PcapSource struct {
	meta    Meta
	r       *pcap.Reader
	Skipped int
}

// NewPcapSource wraps a pcap stream with the given measurement metadata
// (the capture file itself does not record link capacity or interval
// structure, so the caller supplies them).
func NewPcapSource(r io.Reader, meta Meta) (*PcapSource, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	return &PcapSource{meta: meta, r: pr}, nil
}

// Meta implements Source.
func (p *PcapSource) Meta() Meta { return p.meta }

// Next implements Source, skipping non-IPv4 frames.
func (p *PcapSource) Next() (flow.Packet, error) {
	for {
		pkt, err := p.r.Next()
		if err == pcap.ErrNotIPv4 {
			p.Skipped++
			continue
		}
		return pkt, err
	}
}
