package trace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/pcap"
)

// FuzzReader hardens the native trace parser against corrupt files, and
// checks a round-trip invariant on anything it accepts: packets that parse
// must re-encode to a trace that parses back identically. The reader is
// the first thing to touch an untrusted trace file, so it must never
// panic, never read unboundedly ahead of its input, and never fabricate
// packets.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	meta := Meta{Name: "seed", LinkBytesPerSec: 1e6, Interval: time.Second, Intervals: 2, HasAS: true}
	pkts := []flow.Packet{
		{Time: 0, Size: 40, SrcIP: 1, DstIP: 2, Proto: 6, SrcAS: 1, DstAS: 2},
		{Time: time.Second, Size: 1500, SrcIP: 3, DstIP: 4, Proto: 17, SrcAS: 3, DstAS: 4},
	}
	if _, err := WriteAll(&buf, NewSliceSource(meta, pkts)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add(valid[:10])
	f.Add([]byte("HHTR"))
	f.Add([]byte{})
	// Flip bytes in the header and in the packet section.
	for _, i := range []int{4, 8, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		const maxPackets = 10000
		var got []flow.Packet
		for len(got) < maxPackets {
			pkt, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // corrupt mid-file: fine, as long as no panic
			}
			got = append(got, pkt)
		}
		if len(got) == maxPackets {
			return // possibly truncated read; skip the round-trip check
		}
		// Accepted input round-trips: same meta, same packets.
		var out bytes.Buffer
		n, err := WriteAll(&out, NewSliceSource(r.Meta(), got))
		if err != nil {
			t.Fatalf("accepted meta/packets do not re-encode: %v", err)
		}
		if n != len(got) {
			t.Fatalf("wrote %d packets, read %d", n, len(got))
		}
		back, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if back.Meta() != r.Meta() {
			t.Fatalf("meta changed across round-trip: %+v vs %+v", back.Meta(), r.Meta())
		}
		for i := range got {
			pkt, err := back.Next()
			if err != nil {
				t.Fatalf("re-read packet %d: %v", i, err)
			}
			if pkt != got[i] {
				t.Fatalf("packet %d changed across round-trip: %+v vs %+v", i, pkt, got[i])
			}
		}
		if _, err := back.Next(); err != io.EOF {
			t.Fatalf("re-read has trailing packets: %v", err)
		}
	})
}

// FuzzPcapSource hardens the pcap-to-trace adapter: whatever bytes claim to
// be a capture, the source must never panic and every packet it yields must
// respect the adapter's contract (IPv4 only — non-IPv4 frames are skipped
// and counted, not returned).
func FuzzPcapSource(f *testing.F) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range []flow.Packet{
		{Time: 0, Size: 40, SrcIP: 1, DstIP: 2, SrcPort: 80, DstPort: 81, Proto: 6},
		{Time: time.Millisecond, Size: 1500, SrcIP: 3, DstIP: 4, Proto: 17},
	} {
		if err := w.WritePacket(&p); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:24]) // header only
	f.Add(valid[:30]) // truncated record header
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0xff // corrupt the link type
	f.Add(mut)

	meta := Meta{Name: "fuzz", LinkBytesPerSec: 1e6, Interval: time.Second, Intervals: 1}
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := NewPcapSource(bytes.NewReader(data), meta)
		if err != nil {
			return
		}
		if src.Meta() != meta {
			t.Fatal("source does not carry the supplied meta")
		}
		for i := 0; i < 10000; i++ {
			pkt, err := src.Next()
			if err != nil {
				return
			}
			if pkt.Size == 0 {
				t.Fatalf("packet %d has zero size", i)
			}
		}
	})
}
