package trace

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/flow"
)

// FuzzReader hardens the native trace parser against corrupt files.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	meta := Meta{Name: "seed", LinkBytesPerSec: 1e6, Interval: time.Second, Intervals: 2, HasAS: true}
	pkts := []flow.Packet{
		{Time: 0, Size: 40, SrcIP: 1, DstIP: 2, Proto: 6, SrcAS: 1, DstAS: 2},
		{Time: time.Second, Size: 1500, SrcIP: 3, DstIP: 4, Proto: 17, SrcAS: 3, DstAS: 4},
	}
	if _, err := WriteAll(&buf, NewSliceSource(meta, pkts)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add(valid[:10])
	f.Add([]byte("HHTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					return
				}
				return
			}
		}
	})
}
