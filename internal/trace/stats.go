package trace

import (
	"fmt"
	"strings"

	"repro/internal/flow"
)

// MinAvgMax summarizes a per-interval quantity the way Table 3 of the paper
// does: smallest, average and largest value over the measurement intervals.
type MinAvgMax struct {
	Min, Avg, Max float64
}

// Observe folds one interval's value into the summary; n is the number of
// values observed so far including this one.
func (m *MinAvgMax) observe(v float64, n int) {
	if n == 1 {
		m.Min, m.Max = v, v
	} else {
		if v < m.Min {
			m.Min = v
		}
		if v > m.Max {
			m.Max = v
		}
	}
	m.Avg += (v - m.Avg) / float64(n)
}

// String renders the summary in Table 3's min/avg/max form.
func (m MinAvgMax) String() string {
	return fmt.Sprintf("%.0f/%.0f/%.0f", m.Min, m.Avg, m.Max)
}

// Stats is a Table 3 row: per-interval active flow counts for each flow
// definition, and traffic volume per interval.
type Stats struct {
	Name string
	// Flows maps definition name to the per-interval active flow count
	// summary. AS-pair counts are absent when the trace has no AS
	// annotations.
	Flows map[string]MinAvgMax
	// MBytes is the per-interval traffic volume in megabytes (decimal, as
	// in the paper: 1 Mbyte = 1,000,000 bytes).
	MBytes MinAvgMax
	// Packets is the total number of packets in the trace.
	Packets int
	// Intervals is the number of measurement intervals summarized.
	Intervals int
}

// CollectStats replays src and gathers Table 3 statistics.
func CollectStats(src Source) (*Stats, error) {
	meta := src.Meta()
	defs := []flow.Definition{flow.FiveTuple{}, flow.DstIP{}}
	if meta.HasAS {
		defs = append(defs, flow.ASPair{})
	}
	st := &Stats{Name: meta.Name, Flows: make(map[string]MinAvgMax, len(defs))}
	sets := make([]map[flow.Key]struct{}, len(defs))
	for i := range sets {
		sets[i] = make(map[flow.Key]struct{})
	}
	var bytes float64
	c := FuncConsumer{
		OnPacket: func(p *flow.Packet) {
			st.Packets++
			bytes += float64(p.Size)
			for i, d := range defs {
				sets[i][d.Key(p)] = struct{}{}
			}
		},
		OnEndInterval: func(int) {
			st.Intervals++
			for i, d := range defs {
				s := st.Flows[d.Name()]
				s.observe(float64(len(sets[i])), st.Intervals)
				st.Flows[d.Name()] = s
				sets[i] = make(map[flow.Key]struct{})
			}
			mb := st.MBytes
			mb.observe(bytes/1e6, st.Intervals)
			st.MBytes = mb
			bytes = 0
		},
	}
	if _, err := Replay(src, c); err != nil {
		return nil, err
	}
	return st, nil
}

// String renders the stats as a Table 3-style row block.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", s.Name)
	for _, name := range []string{"5-tuple", "dstIP", "ASpair"} {
		if m, ok := s.Flows[name]; ok {
			fmt.Fprintf(&b, "  %s %s", name, m)
		} else {
			fmt.Fprintf(&b, "  %s -", name)
		}
	}
	fmt.Fprintf(&b, "  Mbytes/interval %.1f/%.1f/%.1f", s.MBytes.Min, s.MBytes.Avg, s.MBytes.Max)
	return b.String()
}
