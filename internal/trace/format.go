package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/flow"
)

// Binary trace format ("HHTR"): a compact, streamable on-disk encoding of a
// trace. Layout, all little-endian:
//
//	magic   [4]byte  "HHTR"
//	version uint16   (currently 1)
//	flags   uint16   bit 0: HasAS
//	linkBps float64  link capacity, bytes/second
//	interval int64   measurement interval, nanoseconds
//	intervals int32  number of measurement intervals
//	nameLen  uint16  followed by nameLen bytes of trace name
//	packets  ...     repeated packet records until EOF
//
// Each packet record is varint-encoded: time delta from the previous packet
// in nanoseconds, size, source IP, destination IP, source port, destination
// port, protocol, and (when flags bit 0 is set) source and destination AS.
// Delta-encoding the monotone timestamps keeps records small.

const (
	formatMagic   = "HHTR"
	formatVersion = 1
	flagHasAS     = 1 << 0
)

// Writer streams packets into the binary trace format.
type Writer struct {
	w        *bufio.Writer
	hasAS    bool
	lastTime time.Duration
	scratch  [binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter writes a header for meta to w and returns a Writer for the
// packet stream. Call Flush when done.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if len(meta.Name) > math.MaxUint16 {
		return nil, errors.New("trace: name too long")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return nil, err
	}
	var flags uint16
	if meta.HasAS {
		flags |= flagHasAS
	}
	for _, v := range []any{
		uint16(formatVersion),
		flags,
		math.Float64bits(meta.LinkBytesPerSec),
		int64(meta.Interval),
		int32(meta.Intervals),
		uint16(len(meta.Name)),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if _, err := bw.WriteString(meta.Name); err != nil {
		return nil, err
	}
	return &Writer{w: bw, hasAS: meta.HasAS}, nil
}

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.scratch[:], v)
	_, err := w.w.Write(w.scratch[:n])
	return err
}

// WritePacket appends one packet. Packets must arrive in non-decreasing
// time order.
func (w *Writer) WritePacket(p *flow.Packet) error {
	if w.started && p.Time < w.lastTime {
		return fmt.Errorf("trace: packet at %v before previous %v", p.Time, w.lastTime)
	}
	delta := p.Time - w.lastTime
	if !w.started {
		delta = p.Time
		w.started = true
	}
	w.lastTime = p.Time
	fields := []uint64{
		uint64(delta),
		uint64(p.Size),
		uint64(p.SrcIP),
		uint64(p.DstIP),
		uint64(p.SrcPort),
		uint64(p.DstPort),
		uint64(p.Proto),
	}
	if w.hasAS {
		fields = append(fields, uint64(p.SrcAS), uint64(p.DstAS))
	}
	for _, f := range fields {
		if err := w.putUvarint(f); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll drains src into w in trace format.
func WriteAll(w io.Writer, src Source) (int, error) {
	tw, err := NewWriter(w, src.Meta())
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		p, err := src.Next()
		if err == io.EOF {
			return n, tw.Flush()
		}
		if err != nil {
			return n, err
		}
		if err := tw.WritePacket(&p); err != nil {
			return n, err
		}
		n++
	}
}

// Reader streams packets from the binary trace format; it implements
// Source.
type Reader struct {
	r        *bufio.Reader
	meta     Meta
	lastTime time.Duration
}

// NewReader parses the header from r and returns a Source for the packet
// stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != formatMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var (
		version, flags, nameLen uint16
		linkBits                uint64
		intervalNs              int64
		intervals               int32
	)
	for _, v := range []any{&version, &flags, &linkBits, &intervalNs, &intervals, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	meta := Meta{
		Name:            string(name),
		LinkBytesPerSec: math.Float64frombits(linkBits),
		Interval:        time.Duration(intervalNs),
		Intervals:       int(intervals),
		HasAS:           flags&flagHasAS != 0,
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	return &Reader{r: br, meta: meta}, nil
}

// Meta implements Source.
func (r *Reader) Meta() Meta { return r.meta }

// Next implements Source.
func (r *Reader) Next() (flow.Packet, error) {
	delta, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return flow.Packet{}, io.EOF
	}
	if err != nil {
		return flow.Packet{}, fmt.Errorf("trace: reading packet: %w", err)
	}
	nFields := 6
	if r.meta.HasAS {
		nFields = 8
	}
	var fields [8]uint64
	for i := 0; i < nFields; i++ {
		fields[i], err = binary.ReadUvarint(r.r)
		if err != nil {
			return flow.Packet{}, fmt.Errorf("trace: truncated packet record: %w", err)
		}
	}
	r.lastTime += time.Duration(delta)
	p := flow.Packet{
		Time:    r.lastTime,
		Size:    uint32(fields[0]),
		SrcIP:   uint32(fields[1]),
		DstIP:   uint32(fields[2]),
		SrcPort: uint16(fields[3]),
		DstPort: uint16(fields[4]),
		Proto:   uint8(fields[5]),
	}
	if r.meta.HasAS {
		p.SrcAS = uint16(fields[6])
		p.DstAS = uint16(fields[7])
	}
	return p, nil
}
