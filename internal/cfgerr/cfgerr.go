// Package cfgerr formats configuration validation errors in the one style
// used across the module: "traffic: <pkg>: <field>: <reason>". Every
// Config's Validate method (and through it every New* constructor) reports
// invalid fields this way, so callers of the traffic facade see a uniform
// error shape regardless of which component rejected its configuration.
package cfgerr

import "fmt"

// New returns an error of the form "traffic: <pkg>: <field>: <reason>",
// where reason is formatted from format and args.
func New(pkg, field, format string, args ...any) error {
	return fmt.Errorf("traffic: %s: %s: %s", pkg, field, fmt.Sprintf(format, args...))
}
