package flow

import (
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Size:    1500,
		SrcIP:   0x0a000001, // 10.0.0.1
		DstIP:   0xc0a80102, // 192.168.1.2
		SrcPort: 1234,
		DstPort: 80,
		Proto:   6,
		SrcAS:   7018,
		DstAS:   701,
	}
}

func TestKeyBytesRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		k := Key{Hi: hi, Lo: lo}
		return KeyFromBytes(k.Bytes()) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFiveTupleKeyFields(t *testing.T) {
	p := samplePacket()
	k := FiveTuple{}.Key(p)
	if uint32(k.Hi>>32) != p.SrcIP {
		t.Errorf("src ip: got %#x want %#x", uint32(k.Hi>>32), p.SrcIP)
	}
	if uint32(k.Hi) != p.DstIP {
		t.Errorf("dst ip: got %#x want %#x", uint32(k.Hi), p.DstIP)
	}
	if uint16(k.Lo>>32) != p.SrcPort || uint16(k.Lo>>16) != p.DstPort || uint8(k.Lo) != p.Proto {
		t.Errorf("ports/proto mismatch in key %+v", k)
	}
}

func TestFiveTupleDistinguishesFields(t *testing.T) {
	base := samplePacket()
	mutations := []func(*Packet){
		func(p *Packet) { p.SrcIP++ },
		func(p *Packet) { p.DstIP++ },
		func(p *Packet) { p.SrcPort++ },
		func(p *Packet) { p.DstPort++ },
		func(p *Packet) { p.Proto++ },
	}
	k0 := FiveTuple{}.Key(base)
	for i, mutate := range mutations {
		p := *base
		mutate(&p)
		if (FiveTuple{}).Key(&p) == k0 {
			t.Errorf("mutation %d did not change the 5-tuple key", i)
		}
	}
	// Size and time must NOT affect the key.
	p := *base
	p.Size = 40
	p.Time = 999
	if (FiveTuple{}).Key(&p) != k0 {
		t.Error("size/time changed the 5-tuple key")
	}
}

func TestDstIPKey(t *testing.T) {
	p := samplePacket()
	k := DstIP{}.Key(p)
	if k.Hi != 0 || uint32(k.Lo) != p.DstIP {
		t.Errorf("dstIP key = %+v, want Lo=%#x", k, p.DstIP)
	}
	q := *p
	q.SrcIP++
	q.SrcPort++
	q.DstPort++
	q.Proto++
	if (DstIP{}).Key(&q) != k {
		t.Error("dstIP key depends on fields other than DstIP")
	}
	q.DstIP++
	if (DstIP{}).Key(&q) == k {
		t.Error("dstIP key did not change with DstIP")
	}
}

func TestASPairKey(t *testing.T) {
	p := samplePacket()
	k := ASPair{}.Key(p)
	if uint16(k.Lo>>16) != p.SrcAS || uint16(k.Lo) != p.DstAS {
		t.Errorf("ASpair key = %+v, want src %d dst %d", k, p.SrcAS, p.DstAS)
	}
	q := *p
	q.SrcIP, q.DstIP = q.DstIP, q.SrcIP // addresses don't matter, only AS fields
	if (ASPair{}).Key(&q) != k {
		t.Error("ASpair key depends on IP addresses")
	}
}

func TestFormat(t *testing.T) {
	p := samplePacket()
	tests := []struct {
		def  Definition
		want string
	}{
		{FiveTuple{}, "10.0.0.1:1234 -> 192.168.1.2:80 proto 6"},
		{DstIP{}, "192.168.1.2"},
		{ASPair{}, "AS7018 -> AS701"},
	}
	for _, tt := range tests {
		got := tt.def.Format(tt.def.Key(p))
		if got != tt.want {
			t.Errorf("%s Format = %q, want %q", tt.def.Name(), got, tt.want)
		}
	}
}

func TestDefinitionByName(t *testing.T) {
	for _, d := range Definitions() {
		got := DefinitionByName(d.Name())
		if got == nil || got.Name() != d.Name() {
			t.Errorf("DefinitionByName(%q) = %v", d.Name(), got)
		}
	}
	if DefinitionByName("nope") != nil {
		t.Error("DefinitionByName of unknown name should be nil")
	}
}

func TestIPString(t *testing.T) {
	if got := IPString(0x01020304); got != "1.2.3.4" {
		t.Errorf("IPString = %q", got)
	}
	if got := IPString(0xffffffff); got != "255.255.255.255" {
		t.Errorf("IPString = %q", got)
	}
}
