// Package flow defines the packet model and the flow definitions used by the
// traffic measurement algorithms.
//
// A flow is defined by an identifier extracted from packet header fields
// (Section 1.1 of the paper). The paper evaluates three flow definitions,
// all implemented here:
//
//   - the 5-tuple of source/destination IP, source/destination port and
//     protocol (close to Cisco NetFlow's definition),
//   - the destination IP address (useful for detecting DoS attacks),
//   - the source and destination autonomous system (traffic-matrix style).
//
// Definitions are pluggable: anything implementing Definition can drive the
// measurement devices in internal/core.
package flow

import (
	"fmt"
	"time"
)

// Packet is a single packet observation on a link. Addresses are IPv4 in
// host byte order. SrcAS and DstAS are filled in by a routing annotator
// (internal/routing) when the AS-pair flow definition is in use; they are
// zero otherwise.
type Packet struct {
	// Time is the offset of the packet from the start of the trace.
	Time time.Duration
	// Size is the size of the packet on the wire, in bytes.
	Size uint32
	// SrcIP and DstIP are the IPv4 source and destination addresses.
	SrcIP, DstIP uint32
	// SrcPort and DstPort are the transport-layer ports (0 for protocols
	// without ports).
	SrcPort, DstPort uint16
	// Proto is the IP protocol number (6 for TCP, 17 for UDP).
	Proto uint8
	// SrcAS and DstAS are the autonomous systems of the source and
	// destination addresses.
	SrcAS, DstAS uint16
}

// Key is a compact, comparable flow identifier. It packs the fields selected
// by a Definition into 128 bits; two packets belong to the same flow exactly
// when their keys are equal. Key is usable as a Go map key and is hashed by
// internal/hashing for the multistage filter stages.
type Key struct {
	Hi, Lo uint64
}

// Bytes returns the key as 16 bytes in big-endian order, for hashing and
// serialization.
func (k Key) Bytes() [16]byte {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(k.Hi >> (56 - 8*i))
		b[8+i] = byte(k.Lo >> (56 - 8*i))
	}
	return b
}

// KeyFromBytes reconstructs a Key from its Bytes representation.
func KeyFromBytes(b [16]byte) Key {
	var k Key
	for i := 0; i < 8; i++ {
		k.Hi = k.Hi<<8 | uint64(b[i])
		k.Lo = k.Lo<<8 | uint64(b[8+i])
	}
	return k
}

// Definition extracts a flow identifier from a packet. Implementations must
// be pure: the same packet always yields the same key.
type Definition interface {
	// Name returns a short human-readable name ("5-tuple", "dstIP", "ASpair").
	Name() string
	// Key extracts the flow identifier from the packet.
	Key(p *Packet) Key
	// Format renders a key produced by this definition for reports.
	Format(k Key) string
}

// FiveTuple defines flows at the granularity of transport connections:
// source IP, destination IP, source port, destination port, protocol.
type FiveTuple struct{}

// Name implements Definition.
func (FiveTuple) Name() string { return "5-tuple" }

// Key implements Definition.
func (FiveTuple) Key(p *Packet) Key {
	return Key{
		Hi: uint64(p.SrcIP)<<32 | uint64(p.DstIP),
		Lo: uint64(p.SrcPort)<<32 | uint64(p.DstPort)<<16 | uint64(p.Proto),
	}
}

// Format implements Definition.
func (FiveTuple) Format(k Key) string {
	return fmt.Sprintf("%s:%d -> %s:%d proto %d",
		ipString(uint32(k.Hi>>32)), uint16(k.Lo>>32),
		ipString(uint32(k.Hi)), uint16(k.Lo>>16), uint8(k.Lo))
}

// DstIP defines flows by destination IP address only. The paper proposes
// this definition for identifying ongoing (distributed) denial of service
// attacks at a router.
type DstIP struct{}

// Name implements Definition.
func (DstIP) Name() string { return "dstIP" }

// Key implements Definition.
func (DstIP) Key(p *Packet) Key { return Key{Lo: uint64(p.DstIP)} }

// Format implements Definition.
func (DstIP) Format(k Key) string { return ipString(uint32(k.Lo)) }

// ASPair defines flows by the pair of source and destination autonomous
// systems, the definition one would use to determine traffic patterns in the
// network. Packets must have SrcAS/DstAS annotated (see internal/routing).
type ASPair struct{}

// Name implements Definition.
func (ASPair) Name() string { return "ASpair" }

// Key implements Definition.
func (ASPair) Key(p *Packet) Key {
	return Key{Lo: uint64(p.SrcAS)<<16 | uint64(p.DstAS)}
}

// Format implements Definition.
func (ASPair) Format(k Key) string {
	return fmt.Sprintf("AS%d -> AS%d", uint16(k.Lo>>16), uint16(k.Lo))
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// IPString formats an IPv4 address held in host byte order as dotted quad.
func IPString(ip uint32) string { return ipString(ip) }

// Definitions returns the three flow definitions evaluated in the paper, in
// the order they appear there.
func Definitions() []Definition {
	return []Definition{FiveTuple{}, DstIP{}, ASPair{}}
}

// DefinitionByName returns the definition with the given Name, or nil.
func DefinitionByName(name string) Definition {
	for _, d := range Definitions() {
		if d.Name() == name {
			return d
		}
	}
	return nil
}
