package netfault

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c) //nolint:errcheck // test echo
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCleanForwarding(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, LinkConfig{}, LinkConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	msg := []byte("through the clean proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.ForwardedBytes < uint64(2*len(msg)) || st.CorruptedBytes != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCorruptionCadenceIsExact(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	// Flip every 10th upstream byte; downstream is clean, so the echo shows
	// exactly the upstream damage.
	p, err := New(addr, LinkConfig{CorruptEveryBytes: 10}, LinkConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	msg := make([]byte, 100) // zeros: a flipped byte reads 0xff
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		wantFlip := (i+1)%10 == 0
		if flipped := b == 0xff; flipped != wantFlip {
			t.Fatalf("byte %d = %#x, flipped=%v want %v", i, b, flipped, wantFlip)
		}
	}
	if st := p.Stats(); st.CorruptedBytes != 10 {
		t.Errorf("CorruptedBytes = %d, want 10", st.CorruptedBytes)
	}
}

func TestResetAfterBytes(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, LinkConfig{ResetAfterBytes: 64}, LinkConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	c.Write(make([]byte, 200)) //nolint:errcheck // the reset may race the write
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := io.Copy(io.Discard, c) // read until the reset severs the echo
	if err == nil && n > 64 {
		t.Fatalf("echoed %d bytes past the 64-byte reset point", n)
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Errorf("Resets = %d, want 1", st.Resets)
	}
}

func TestPartitionStallsBytesKeepsConnection(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, LinkConfig{Drop: true}, LinkConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	if _, err := c.Write([]byte("held.")); err != nil {
		t.Fatal(err)
	}
	// Nothing comes back — the upstream bytes are stalled — but the socket
	// stays open: the read times out rather than seeing EOF.
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("partitioned link delivered bytes")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("partitioned connection died (%v), want an open, silent socket", err)
	}
	// Heal the partition: the stalled bytes arrive intact (TCP never loses
	// mid-stream bytes on a live connection), then later bytes flow.
	p.SetLink(Up, LinkConfig{})
	if _, err := c.Write([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil || string(got) != "held.alive" {
		t.Fatalf("healed link: %q, %v", got, err)
	}
	if st := p.Stats(); st.Stalls == 0 {
		t.Error("Stalls = 0, want at least one stall window")
	}
}

func TestFlapSeversAndRejects(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, LinkConfig{}, LinkConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	p.SetDown(true)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.Copy(io.Discard, c); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("flapped-down link left the old connection alive")
		}
	}
	// New connections are accepted at the TCP layer then severed.
	c2 := dialProxy(t, p)
	defer c2.Close()
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatal("flapped-down link served a new connection")
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().RejectedDown == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if st := p.Stats(); st.RejectedDown == 0 {
		t.Errorf("RejectedDown = 0 after dialing a down link")
	}

	// Back up: service restores for fresh connections.
	p.SetDown(false)
	c3 := dialProxy(t, p)
	defer c3.Close()
	if _, err := c3.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	c3.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c3, got); err != nil || string(got) != "ok" {
		t.Fatalf("restored link: %q, %v", got, err)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, LinkConfig{Latency: 50 * time.Millisecond}, LinkConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 50*time.Millisecond {
		t.Errorf("round trip %v beat the 50ms injected latency", rtt)
	}
}

func TestParseLink(t *testing.T) {
	c, err := ParseLink("latency=2ms,jitter=1ms,bw=65536,corrupt=4096,reset=1000000,drop")
	if err != nil {
		t.Fatal(err)
	}
	want := LinkConfig{
		Latency: 2 * time.Millisecond, Jitter: time.Millisecond,
		BandwidthBytesPerSec: 65536, CorruptEveryBytes: 4096,
		ResetAfterBytes: 1000000, Drop: true,
	}
	if c != want {
		t.Errorf("parsed %+v, want %+v", c, want)
	}
	if c, err := ParseLink(""); err != nil || c != (LinkConfig{}) {
		t.Errorf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"latency", "latency=xx", "bw=abc", "nope=1"} {
		if _, err := ParseLink(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
