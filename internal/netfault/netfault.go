// Package netfault is the network counterpart of internal/faultinject: a
// deterministic in-process TCP chaos proxy for torturing the reliable
// export transport. Where faultinject wraps a journal file with scheduled
// disk faults, netfault sits between an exporter and its collector and
// injects link faults — latency, jitter, bandwidth caps, byte corruption,
// connection resets, asymmetric partitions and link flapping — so the
// chaos suite can prove the transport's accounting stays byte-exact
// through a hostile network, not just a crashing process.
//
// Faults follow the faultinject idiom: byte-counted or seeded, never
// wall-clock-scheduled, so a fault always lands at the same point in the
// byte stream and a failing test replays identically. Corruption flips one
// byte every CorruptEveryBytes forwarded bytes; resets fire after an exact
// per-connection byte count; partitions stall bytes while keeping the TCP
// connection established (the nastiest real-world shape: the socket looks
// healthy, the data goes nowhere — only application-level liveness can
// detect it). A partition stalls rather than discards because TCP cannot
// lose bytes from the middle of a live stream: data written during the
// partition sits in kernel buffers and is delivered intact on heal, unless
// the sender's own timeouts kill the connection first.
package netfault

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Direction names one side of the proxied link.
type Direction int

const (
	// Up is client→server (exporter→collector: hello, data, heartbeats).
	Up Direction = iota
	// Down is server→client (collector→exporter: acks, pause/resume).
	Down
)

// String renders the direction.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// LinkConfig is the fault schedule for one direction of the link. The zero
// value forwards bytes untouched.
type LinkConfig struct {
	// Latency delays each forwarded chunk; Jitter adds a seeded-uniform
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBytesPerSec paces forwarding to this rate (0 = unlimited).
	BandwidthBytesPerSec int64
	// CorruptEveryBytes flips one byte (XOR 0xff) every Nth forwarded byte,
	// counted across the direction's whole lifetime (0 = never). The
	// transport's frame CRC must catch every flip.
	CorruptEveryBytes int64
	// ResetAfterBytes severs a connection after forwarding this many bytes
	// in this direction (0 = never). Each proxied connection gets its own
	// count, so every long-enough connection dies at the same offset.
	ResetAfterBytes int64
	// Drop stalls this direction — bytes stay unread in the kernel buffer
	// while the connection looks established — an asymmetric partition.
	// On heal the stalled bytes flow again; nothing is spliced out of the
	// stream, because TCP cannot lose mid-stream bytes on a live socket.
	Drop bool
}

// ParseLink parses a comma-separated fault spec like
// "latency=2ms,jitter=1ms,bw=65536,corrupt=4096,reset=1000000,drop" — the
// command-line form, mirroring faultinject.ParseWriterSchedule. An empty
// spec is the zero config.
func ParseLink(spec string) (LinkConfig, error) {
	var c LinkConfig
	if spec == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "drop" {
			c.Drop = true
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return c, fmt.Errorf("netfault: bad fault %q (want key=value or drop)", part)
		}
		switch k {
		case "latency", "jitter":
			d, err := time.ParseDuration(v)
			if err != nil {
				return c, fmt.Errorf("netfault: bad %s duration %q: %v", k, v, err)
			}
			if k == "latency" {
				c.Latency = d
			} else {
				c.Jitter = d
			}
		case "bw", "corrupt", "reset":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return c, fmt.Errorf("netfault: bad %s byte count %q: %v", k, v, err)
			}
			switch k {
			case "bw":
				c.BandwidthBytesPerSec = n
			case "corrupt":
				c.CorruptEveryBytes = n
			case "reset":
				c.ResetAfterBytes = n
			}
		default:
			return c, fmt.Errorf("netfault: unknown fault key %q", k)
		}
	}
	return c, nil
}

// Stats counts what the proxy has done to the traffic.
type Stats struct {
	// Accepted counts proxied connections; RejectedDown counts connections
	// refused because the link was flapped down.
	Accepted     uint64 `json:"accepted"`
	RejectedDown uint64 `json:"rejected_down"`
	// ForwardedBytes counts bytes actually delivered (both directions);
	// Stalls counts pipe entries into a partition stall.
	ForwardedBytes uint64 `json:"forwarded_bytes"`
	Stalls         uint64 `json:"stalls"`
	// CorruptedBytes counts bytes flipped in flight; Resets counts
	// connections severed by ResetAfterBytes.
	CorruptedBytes uint64 `json:"corrupted_bytes"`
	Resets         uint64 `json:"resets"`
}

// Proxy is one faulty TCP link: it listens on a loopback port and forwards
// each accepted connection to the target, applying each direction's fault
// schedule. Reconfiguration (SetLink, SetDown) applies to traffic still in
// flight, so a test can flap and partition a live link mid-stream.
type Proxy struct {
	ln     net.Listener
	target string
	seed   int64

	up, down atomic.Pointer[LinkConfig]
	isDown   atomic.Bool

	accepted     atomic.Uint64
	rejectedDown atomic.Uint64
	forwarded    atomic.Uint64
	stalls       atomic.Uint64
	corrupted    atomic.Uint64
	resets       atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a proxy in front of target (a host:port) listening on a fresh
// loopback port. seed drives the jitter; the same seed and byte streams
// replay the same faults.
func New(target string, up, down LinkConfig, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		seed:   seed,
		conns:  make(map[net.Conn]struct{}),
		stop:   make(chan struct{}),
	}
	p.up.Store(&up)
	p.down.Store(&down)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the address clients dial
// instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLink replaces one direction's fault schedule; in-flight connections
// pick it up on their next chunk.
func (p *Proxy) SetLink(dir Direction, cfg LinkConfig) {
	if dir == Up {
		p.up.Store(&cfg)
	} else {
		p.down.Store(&cfg)
	}
}

// Link returns one direction's current fault schedule.
func (p *Proxy) Link(dir Direction) LinkConfig {
	if dir == Up {
		return *p.up.Load()
	}
	return *p.down.Load()
}

// SetDown flaps the link: down severs every proxied connection and refuses
// new ones (dial succeeds at the TCP layer, then the socket closes — the
// shape of a crashed middlebox); up restores service for new connections.
// isDown is flipped under the same lock that registers connections, so a
// connection being set up concurrently either sees the flap or is severed
// by it — none slip through.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.isDown.Store(down)
	if down {
		for c := range p.conns {
			c.Close()
		}
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:       p.accepted.Load(),
		RejectedDown:   p.rejectedDown.Load(),
		ForwardedBytes: p.forwarded.Load(),
		Stalls:         p.stalls.Load(),
		CorruptedBytes: p.corrupted.Load(),
		Resets:         p.resets.Load(),
	}
}

// Close severs every proxied connection and stops listening.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stop)
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for connID := int64(0); ; connID++ {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.isDown.Load() {
			client.Close()
			p.rejectedDown.Add(1)
			continue
		}
		server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		switch p.track(client, server) {
		case trackClosed:
			return
		case trackDown:
			continue
		}
		p.accepted.Add(1)
		p.wg.Add(2)
		// Each direction gets its own seeded RNG so jitter replays per
		// (seed, connection, direction) regardless of goroutine timing.
		go p.pipe(server, client, Up, connID)
		go p.pipe(client, server, Down, connID)
	}
}

type trackResult int

const (
	trackOK trackResult = iota
	trackDown
	trackClosed
)

// track registers the connection pair, unless the proxy has closed or the
// link flapped down while the target dial was in flight — the down
// re-check under p.mu closes the race with SetDown, which flips isDown
// under the same lock.
func (p *Proxy) track(client, server net.Conn) trackResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		client.Close()
		server.Close()
		return trackClosed
	}
	if p.isDown.Load() {
		client.Close()
		server.Close()
		p.rejectedDown.Add(1)
		return trackDown
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	return trackOK
}

func (p *Proxy) untrack(client, server net.Conn) {
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
	client.Close()
	server.Close()
}

// pipe forwards one direction of one connection through the fault
// schedule. Either side failing (or a scheduled reset) severs both.
func (p *Proxy) pipe(dst, src net.Conn, dir Direction, connID int64) {
	defer p.wg.Done()
	defer p.untrack(dst, src)
	rng := rand.New(rand.NewSource(p.seed ^ connID<<8 ^ int64(dir)))
	buf := make([]byte, 4096)
	var (
		sent      int64 // bytes forwarded on this connection, this direction
		corruptAt int64 // global byte counter for the corruption cadence
	)
	stalled := false
	for {
		// Asymmetric partition: stall instead of read. Bytes pile up in the
		// sender's kernel buffers exactly as they would behind a real
		// blackholing link — delivered intact on heal, or the sender's own
		// timeouts give up on the connection first.
		for p.linkPtr(dir).Load().Drop {
			if !stalled {
				stalled = true
				p.stalls.Add(1)
			}
			if !p.sleep(2 * time.Millisecond) {
				return
			}
		}
		stalled = false
		n, err := src.Read(buf)
		if n > 0 {
			cfg := p.linkPtr(dir).Load()
			chunk := buf[:n]
			if d := chaosDelay(cfg, rng); d > 0 && !p.sleep(d) {
				return
			}
			if cfg.CorruptEveryBytes > 0 {
				for i := range chunk {
					corruptAt++
					if corruptAt%cfg.CorruptEveryBytes == 0 {
						chunk[i] ^= 0xff
						p.corrupted.Add(1)
					}
				}
			}
			if cfg.ResetAfterBytes > 0 && sent+int64(len(chunk)) > cfg.ResetAfterBytes {
				// Forward exactly up to the reset point, then sever.
				cut := cfg.ResetAfterBytes - sent
				if cut > 0 {
					dst.Write(chunk[:cut]) //nolint:errcheck // severing anyway
					p.forwarded.Add(uint64(cut))
				}
				p.resets.Add(1)
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			sent += int64(len(chunk))
			p.forwarded.Add(uint64(len(chunk)))
			if bps := cfg.BandwidthBytesPerSec; bps > 0 {
				d := time.Duration(int64(len(chunk)) * int64(time.Second) / bps)
				if !p.sleep(d) {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) linkPtr(dir Direction) *atomic.Pointer[LinkConfig] {
	if dir == Up {
		return &p.up
	}
	return &p.down
}

// chaosDelay computes the latency+jitter delay for one chunk.
func chaosDelay(cfg *LinkConfig, rng *rand.Rand) time.Duration {
	d := cfg.Latency
	if cfg.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(cfg.Jitter)))
	}
	return d
}

// sleep waits d unless the proxy closes first.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.stop:
		return false
	}
}
