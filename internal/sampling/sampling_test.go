package sampling

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestConfigValidate(t *testing.T) {
	if err := (Config{Entries: 10, Probability: 0.1}).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{Entries: 0, Probability: 0.1},
		{Entries: 10, Probability: 0},
		{Entries: 10, Probability: 1.1},
		{Entries: 10, Probability: -0.5},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with zero config succeeded")
	}
}

func TestProbabilityOneIsExact(t *testing.T) {
	s, err := New(Config{Entries: 10, Probability: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Process(key(1), 100)
	}
	est := s.EndInterval()
	if len(est) != 1 || est[0].Bytes != 1000 {
		t.Fatalf("estimates = %v", est)
	}
}

func TestEstimateUnbiasedOnAverage(t *testing.T) {
	// Renormalized sampling is unbiased: averaged over many runs the
	// estimate converges on the truth.
	const (
		p     = 0.05
		pkts  = 2000
		size  = 500
		truth = pkts * size
		runs  = 200
	)
	var sum float64
	for seed := int64(0); seed < runs; seed++ {
		s, err := New(Config{Entries: 10, Probability: p, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pkts; i++ {
			s.Process(key(1), size)
		}
		for _, e := range s.EndInterval() {
			sum += float64(e.Bytes)
		}
	}
	avg := sum / runs
	if math.Abs(avg-truth)/truth > 0.05 {
		t.Errorf("average estimate %.0f, want ~%d", avg, truth)
	}
}

func TestErrorScalesAsSqrtM(t *testing.T) {
	// The paper's Table 1: sampling's relative error goes as 1/sqrt(Mz) —
	// equivalently, quadrupling the sampling probability should only halve
	// the error. Measure the empirical SD of the estimate at two rates.
	sd := func(p float64) float64 {
		const pkts, size = 5000, 500
		truth := float64(pkts * size)
		var sumSq float64
		const runs = 300
		for seed := int64(0); seed < runs; seed++ {
			s, err := New(Config{Entries: 4, Probability: p, Seed: seed + 1000})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < pkts; i++ {
				s.Process(key(1), size)
			}
			var est float64
			for _, e := range s.EndInterval() {
				est = float64(e.Bytes)
			}
			d := est - truth
			sumSq += d * d
		}
		return math.Sqrt(sumSq / runs)
	}
	sdLow, sdHigh := sd(0.01), sd(0.04)
	ratio := sdLow / sdHigh
	// Expect ~2 (sqrt(4)); allow sampling noise.
	if ratio < 1.5 || ratio > 2.7 {
		t.Errorf("error ratio for 4x sampling = %.2f, want ~2 (sqrt scaling)", ratio)
	}
}

func TestEntriesBounded(t *testing.T) {
	s, err := New(Config{Entries: 5, Probability: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		s.Process(key(i), 100)
	}
	if s.EntriesUsed() != 5 {
		t.Errorf("EntriesUsed = %d, want 5", s.EntriesUsed())
	}
	if s.Capacity() != 5 {
		t.Errorf("Capacity = %d", s.Capacity())
	}
}

func TestExistingEntryUpdatesWhenFull(t *testing.T) {
	s, err := New(Config{Entries: 1, Probability: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Process(key(1), 100)
	s.Process(key(2), 100) // table full: dropped
	s.Process(key(1), 100) // existing entry still updates
	est := s.EndInterval()
	if len(est) != 1 || est[0].Bytes != 200 {
		t.Errorf("estimates = %v", est)
	}
}

func TestMemoryAccessesFractional(t *testing.T) {
	s, err := New(Config{Entries: 100, Probability: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Process(key(1), 100)
	}
	// ~0.2 accesses/packet (10% of packets touch memory, read+write each).
	if got := s.Mem().PerPacket(); got < 0.1 || got > 0.3 {
		t.Errorf("PerPacket = %g, want ~0.2", got)
	}
}

func TestEndIntervalClearsAndInterface(t *testing.T) {
	var _ core.Algorithm = (*Sampler)(nil)
	s, err := New(Config{Entries: 10, Probability: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Process(key(1), 100)
	s.EndInterval()
	if s.EntriesUsed() != 0 {
		t.Error("entries survived transition")
	}
	if s.Name() != "ordinary-sampling" {
		t.Errorf("Name = %q", s.Name())
	}
	s.SetThreshold(0)
	if s.Threshold() != 1 {
		t.Error("SetThreshold clamp")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []core.Estimate {
		s, err := New(Config{Entries: 100, Probability: 0.3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			s.Process(key(uint64(i%37)), uint32(40+i%1400))
		}
		return s.EndInterval()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic report")
		}
	}
}

func BenchmarkProcess(b *testing.B) {
	s, err := New(Config{Entries: 4096, Probability: 1.0 / 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Process(key(uint64(i%10000)), 1000)
	}
}
