// Package sampling implements the classical random-sampling baseline of
// Table 1: ordinary packet sampling into a bounded SRAM flow table, with
// estimates renormalized by the sampling rate. The paper proves its
// relative error scales as 1/sqrt(Mz) — the square-root disadvantage that
// motivates sample and hold and multistage filters.
//
// Unlike the NetFlow model (count-based sampling into unlimited DRAM), this
// baseline samples packets independently at random and competes for the
// same small SRAM budget as the paper's algorithms.
package sampling

import (
	"math/rand"
	"sort"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/memmodel"
	"repro/internal/telemetry"
)

// Config configures the ordinary-sampling baseline.
type Config struct {
	// Entries is the SRAM flow table capacity.
	Entries int
	// Probability is the per-packet sampling probability (1/x for
	// one-in-x sampling).
	Probability float64
	// Seed seeds the sampling randomness.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries < 1 {
		return cfgerr.New("sampling", "Entries", "must be at least 1, got %d", c.Entries)
	}
	if c.Probability <= 0 || c.Probability > 1 {
		return cfgerr.New("sampling", "Probability", "%g outside (0, 1]", c.Probability)
	}
	return nil
}

// Sampler implements core.Algorithm.
type Sampler struct {
	cfg       Config
	entries   map[flow.Key]uint64
	rng       *rand.Rand
	cost      memmodel.Counter
	tel       telemetry.Algorithm
	threshold uint64
}

// New creates an ordinary-sampling instance.
func New(cfg Config) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sampler{
		cfg:       cfg,
		entries:   make(map[flow.Key]uint64, cfg.Entries),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		threshold: 1,
	}
	s.tel.Init(s.Name(), cfg.Entries, s.threshold)
	return s, nil
}

// Name implements core.Algorithm.
func (s *Sampler) Name() string { return "ordinary-sampling" }

// Process implements core.Algorithm.
func (s *Sampler) Process(key flow.Key, size uint32) {
	s.cost.Packet()
	s.sample(key, size)
	s.tel.Observe(1, uint64(size), s.cost, len(s.entries))
}

func (s *Sampler) sample(key flow.Key, size uint32) {
	if s.rng.Float64() >= s.cfg.Probability {
		return
	}
	if _, ok := s.entries[key]; !ok {
		if len(s.entries) >= s.cfg.Entries {
			s.cost.SRAM(1, 0)
			s.tel.Drop()
			return
		}
		s.tel.FilterPass()
	}
	s.entries[key] += uint64(size)
	s.cost.SRAM(1, 1)
}

// EndInterval implements core.Algorithm: counts scale by 1/p.
func (s *Sampler) EndInterval() []core.Estimate {
	out := make([]core.Estimate, 0, len(s.entries))
	for k, b := range s.entries {
		out = append(out, core.Estimate{Key: k, Bytes: uint64(float64(b) / s.cfg.Probability)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Key.Hi != out[j].Key.Hi {
			return out[i].Key.Hi > out[j].Key.Hi
		}
		return out[i].Key.Lo > out[j].Key.Lo
	})
	evicted := len(s.entries)
	s.entries = make(map[flow.Key]uint64, s.cfg.Entries)
	s.tel.ObserveInterval(s.threshold, 0, evicted)
	return out
}

// EntriesUsed implements core.Algorithm.
func (s *Sampler) EntriesUsed() int { return len(s.entries) }

// Capacity implements core.Algorithm.
func (s *Sampler) Capacity() int { return s.cfg.Entries }

// Threshold implements core.Algorithm.
func (s *Sampler) Threshold() uint64 { return s.threshold }

// SetThreshold implements core.Algorithm; sampling has no threshold but the
// value is retained for interface symmetry.
func (s *Sampler) SetThreshold(t uint64) {
	if t < 1 {
		t = 1
	}
	s.threshold = t
	s.tel.SetThreshold(t)
}

// Mem implements core.Algorithm.
func (s *Sampler) Mem() *memmodel.Counter { return &s.cost }

// Telemetry implements core.Instrumented.
func (s *Sampler) Telemetry() *telemetry.Algorithm { return &s.tel }
