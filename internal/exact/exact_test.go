package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

func pkt(src uint32, size uint32) *flow.Packet {
	return &flow.Packet{SrcIP: src, DstIP: 99, Proto: 6, Size: size}
}

func TestCounterAccumulates(t *testing.T) {
	c := New(flow.FiveTuple{})
	c.Packet(pkt(1, 100))
	c.Packet(pkt(1, 200))
	c.Packet(pkt(2, 50))
	k1 := flow.FiveTuple{}.Key(pkt(1, 0))
	k2 := flow.FiveTuple{}.Key(pkt(2, 0))
	if c.Bytes(k1) != 300 || c.Packets(k1) != 2 {
		t.Errorf("flow1: %d bytes %d pkts", c.Bytes(k1), c.Packets(k1))
	}
	if c.Bytes(k2) != 50 || c.Packets(k2) != 1 {
		t.Errorf("flow2: %d bytes %d pkts", c.Bytes(k2), c.Packets(k2))
	}
	if c.TotalBytes() != 350 || c.Flows() != 2 {
		t.Errorf("total=%d flows=%d", c.TotalBytes(), c.Flows())
	}
	if c.Bytes(flow.Key{Hi: 42}) != 0 {
		t.Error("unseen flow should have 0 bytes")
	}
}

func TestCounterReset(t *testing.T) {
	c := New(flow.FiveTuple{})
	c.Packet(pkt(1, 100))
	c.Reset()
	if c.TotalBytes() != 0 || c.Flows() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := New(flow.FiveTuple{})
	c.Packet(pkt(1, 100))
	snap := c.Snapshot()
	c.Packet(pkt(1, 100))
	k := flow.FiveTuple{}.Key(pkt(1, 0))
	if snap[k] != 100 {
		t.Errorf("snapshot mutated: %d", snap[k])
	}
	if c.Bytes(k) != 200 {
		t.Errorf("counter lost update: %d", c.Bytes(k))
	}
}

func TestSortedOrderAndTotal(t *testing.T) {
	c := New(flow.FiveTuple{})
	rng := rand.New(rand.NewSource(1))
	var want uint64
	for i := 0; i < 500; i++ {
		s := uint32(rng.Intn(1000) + 1)
		c.Packet(pkt(uint32(i%100), s))
		want += uint64(s)
	}
	flows := c.Sorted()
	var got uint64
	for i, f := range flows {
		got += f.Bytes
		if i > 0 && f.Bytes > flows[i-1].Bytes {
			t.Fatalf("Sorted not descending at %d", i)
		}
	}
	if got != want || got != c.TotalBytes() {
		t.Errorf("sorted total %d, want %d", got, want)
	}
}

func TestSortedDeterministicOnTies(t *testing.T) {
	mk := func() *Counter {
		c := New(flow.FiveTuple{})
		for i := 0; i < 50; i++ {
			c.Packet(pkt(uint32(i), 100)) // all flows the same size
		}
		return c
	}
	a, b := mk().Sorted(), mk().Sorted()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sorted is not deterministic on equal sizes")
		}
	}
}

func TestAboveThreshold(t *testing.T) {
	c := New(flow.FiveTuple{})
	c.Packet(pkt(1, 1000))
	c.Packet(pkt(2, 500))
	c.Packet(pkt(3, 499))
	big := c.AboveThreshold(500)
	if len(big) != 2 {
		t.Fatalf("AboveThreshold(500) = %d flows, want 2", len(big))
	}
	if big[0].Bytes != 1000 || big[1].Bytes != 500 {
		t.Errorf("AboveThreshold = %v", big)
	}
	if len(c.AboveThreshold(1)) != 3 {
		t.Error("threshold 1 should return all flows")
	}
	if len(c.AboveThreshold(10000)) != 0 {
		t.Error("huge threshold should return no flows")
	}
}

func TestAboveThresholdMatchesLinearScan(t *testing.T) {
	f := func(sizes []uint16, threshold uint16) bool {
		c := New(flow.FiveTuple{})
		for i, s := range sizes {
			c.Packet(pkt(uint32(i), uint32(s)+1))
		}
		got := len(c.AboveThreshold(uint64(threshold) + 1))
		want := 0
		for _, s := range sizes {
			if uint64(s)+1 >= uint64(threshold)+1 {
				want++
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c := New(flow.FiveTuple{})
	// 10 flows: one of 910 bytes, nine of 10 bytes. Top 10% = 1 flow = 91%.
	c.Packet(pkt(0, 910))
	for i := 1; i < 10; i++ {
		c.Packet(pkt(uint32(i), 10))
	}
	points := c.CDF([]float64{10, 100})
	if len(points) != 2 {
		t.Fatalf("CDF returned %d points", len(points))
	}
	if points[0].TrafficPercent != 91 {
		t.Errorf("top 10%% = %g%%, want 91", points[0].TrafficPercent)
	}
	if points[1].TrafficPercent != 100 {
		t.Errorf("top 100%% = %g%%, want 100", points[1].TrafficPercent)
	}
}

func TestCDFMonotone(t *testing.T) {
	c := New(flow.FiveTuple{})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		c.Packet(pkt(uint32(i), uint32(rng.Intn(5000)+40)))
	}
	ps := []float64{1, 5, 10, 20, 50, 100}
	points := c.CDF(ps)
	for i := 1; i < len(points); i++ {
		if points[i].TrafficPercent < points[i-1].TrafficPercent {
			t.Fatalf("CDF not monotone at %v", points[i])
		}
	}
	if last := points[len(points)-1].TrafficPercent; last < 99.999 {
		t.Errorf("CDF(100) = %g", last)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := New(flow.FiveTuple{})
	if c.CDF([]float64{10}) != nil {
		t.Error("CDF on empty counter should be nil")
	}
}

func TestDifferentDefinitionsAggregate(t *testing.T) {
	// Two 5-tuple flows to the same destination collapse to one dstIP flow.
	c5 := New(flow.FiveTuple{})
	cd := New(flow.DstIP{})
	p1 := &flow.Packet{SrcIP: 1, DstIP: 7, SrcPort: 10, DstPort: 80, Proto: 6, Size: 100}
	p2 := &flow.Packet{SrcIP: 2, DstIP: 7, SrcPort: 11, DstPort: 80, Proto: 6, Size: 200}
	for _, p := range []*flow.Packet{p1, p2} {
		c5.Packet(p)
		cd.Packet(p)
	}
	if c5.Flows() != 2 || cd.Flows() != 1 {
		t.Errorf("flows: 5-tuple %d, dstIP %d", c5.Flows(), cd.Flows())
	}
	if cd.Bytes(flow.DstIP{}.Key(p1)) != 300 {
		t.Error("dstIP aggregation lost bytes")
	}
}

func BenchmarkCounterPacket(b *testing.B) {
	c := New(flow.FiveTuple{})
	p := pkt(1, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.SrcIP = uint32(i % 10000)
		c.Packet(p)
	}
}
