// Package exact implements the ground-truth oracle: exact per-flow byte
// counts kept for every flow, the way an ideal (but unscalable) measurement
// device would. The experiment harness compares every algorithm's estimates
// against this oracle, and the oracle's flow-size distribution reproduces
// Figure 6 of the paper.
package exact

import (
	"sort"

	"repro/internal/flow"
)

// Counter keeps exact byte and packet counts per flow for one measurement
// interval.
type Counter struct {
	def   flow.Definition
	bytes map[flow.Key]uint64
	pkts  map[flow.Key]uint64
	total uint64
}

// New returns an exact counter for the given flow definition.
func New(def flow.Definition) *Counter {
	return &Counter{
		def:   def,
		bytes: make(map[flow.Key]uint64),
		pkts:  make(map[flow.Key]uint64),
	}
}

// Packet accounts one packet.
func (c *Counter) Packet(p *flow.Packet) {
	k := c.def.Key(p)
	c.bytes[k] += uint64(p.Size)
	c.pkts[k]++
	c.total += uint64(p.Size)
}

// Reset clears all per-flow state, as at a measurement-interval boundary.
func (c *Counter) Reset() {
	c.bytes = make(map[flow.Key]uint64)
	c.pkts = make(map[flow.Key]uint64)
	c.total = 0
}

// Bytes returns the exact byte count of a flow (0 if unseen).
func (c *Counter) Bytes(k flow.Key) uint64 { return c.bytes[k] }

// Packets returns the exact packet count of a flow (0 if unseen).
func (c *Counter) Packets(k flow.Key) uint64 { return c.pkts[k] }

// TotalBytes returns the total traffic accounted.
func (c *Counter) TotalBytes() uint64 { return c.total }

// Flows returns the number of distinct flows seen.
func (c *Counter) Flows() int { return len(c.bytes) }

// Snapshot returns a copy of the per-flow byte counts.
func (c *Counter) Snapshot() map[flow.Key]uint64 {
	out := make(map[flow.Key]uint64, len(c.bytes))
	for k, v := range c.bytes {
		out[k] = v
	}
	return out
}

// FlowSize pairs a flow with its exact size.
type FlowSize struct {
	Key   flow.Key
	Bytes uint64
}

// Sorted returns all flows sorted by size, largest first (ties broken by
// key for determinism).
func (c *Counter) Sorted() []FlowSize {
	out := make([]FlowSize, 0, len(c.bytes))
	for k, v := range c.bytes {
		out = append(out, FlowSize{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Key.Hi != out[j].Key.Hi {
			return out[i].Key.Hi > out[j].Key.Hi
		}
		return out[i].Key.Lo > out[j].Key.Lo
	})
	return out
}

// AboveThreshold returns the flows with at least threshold bytes, largest
// first. These are the paper's "large flows" for the interval.
func (c *Counter) AboveThreshold(threshold uint64) []FlowSize {
	all := c.Sorted()
	cut := sort.Search(len(all), func(i int) bool { return all[i].Bytes < threshold })
	return all[:cut]
}

// CDFPoint is one point of Figure 6: the top Percent% of flows account for
// TrafficPercent% of the traffic.
type CDFPoint struct {
	Percent        float64
	TrafficPercent float64
}

// CDF computes the cumulative flow-size distribution at the given flow
// percentiles (e.g. 1, 5, 10, 20, 30). It returns nil when no flows were
// seen.
func (c *Counter) CDF(percents []float64) []CDFPoint {
	flows := c.Sorted()
	if len(flows) == 0 || c.total == 0 {
		return nil
	}
	prefix := make([]uint64, len(flows)+1)
	for i, f := range flows {
		prefix[i+1] = prefix[i] + f.Bytes
	}
	out := make([]CDFPoint, 0, len(percents))
	for _, p := range percents {
		n := int(p / 100 * float64(len(flows)))
		if n < 1 {
			n = 1
		}
		if n > len(flows) {
			n = len(flows)
		}
		out = append(out, CDFPoint{
			Percent:        p,
			TrafficPercent: 100 * float64(prefix[n]) / float64(c.total),
		})
	}
	return out
}
