package leakybucket

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestDescriptorValidate(t *testing.T) {
	if err := (Descriptor{Rate: 100, Burst: 1000}).Validate(); err != nil {
		t.Errorf("good descriptor rejected: %v", err)
	}
	for _, d := range []Descriptor{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		if d.Validate() == nil {
			t.Errorf("bad descriptor %+v accepted", d)
		}
	}
}

func TestBucketConformingTraffic(t *testing.T) {
	// 100 B/s with 500 B burst: 100 B every second stays conforming
	// forever.
	b := NewBucket(Descriptor{Rate: 100, Burst: 500})
	for i := 0; i < 100; i++ {
		if !b.Add(time.Duration(i)*time.Second, 100) {
			t.Fatalf("conforming traffic rejected at packet %d (level %g)", i, b.Level())
		}
	}
}

func TestBucketBurstAbsorbed(t *testing.T) {
	b := NewBucket(Descriptor{Rate: 100, Burst: 500})
	// A 500-byte burst at t=0 conforms exactly.
	if !b.Add(0, 500) {
		t.Error("burst within depth rejected")
	}
	// One more byte immediately after violates.
	if b.Add(0, 1) {
		t.Error("burst overflow accepted")
	}
}

func TestBucketDrains(t *testing.T) {
	b := NewBucket(Descriptor{Rate: 100, Burst: 500})
	b.Add(0, 500)
	// After 2 seconds, 200 bytes have drained.
	if !b.Add(2*time.Second, 200) {
		t.Errorf("drained capacity not available (level %g)", b.Level())
	}
	if b.Level() != 500 {
		t.Errorf("level = %g, want 500", b.Level())
	}
	// Level never goes negative after a long idle gap.
	b2 := NewBucket(Descriptor{Rate: 100, Burst: 500})
	b2.Add(0, 100)
	b2.Add(time.Hour, 100)
	if b2.Level() != 100 {
		t.Errorf("level after idle = %g, want 100", b2.Level())
	}
}

func TestBucketViolatingRate(t *testing.T) {
	// 200 B/s against a 100 B/s descriptor must eventually violate.
	b := NewBucket(Descriptor{Rate: 100, Burst: 500})
	violated := false
	for i := 0; i < 100; i++ {
		if !b.Add(time.Duration(i)*time.Second/2, 100) {
			violated = true
			break
		}
	}
	if !violated {
		t.Error("flow at twice the descriptor rate never violated")
	}
}

func TestNewBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBucket with bad descriptor did not panic")
		}
	}()
	NewBucket(Descriptor{})
}

func TestDetectorConfig(t *testing.T) {
	good := Config{Descriptor: Descriptor{Rate: 1000, Burst: 5000}, Stages: 3, Buckets: 64}
	if _, err := NewDetector(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Descriptor: Descriptor{}, Stages: 3, Buckets: 64},
		{Descriptor: good.Descriptor, Stages: 0, Buckets: 64},
		{Descriptor: good.Descriptor, Stages: 3, Buckets: 0},
	}
	for i, cfg := range bad {
		if _, err := NewDetector(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestDetectorNoFalseNegatives: a flow that by itself violates the
// descriptor must be flagged — the analogue of the parallel filter's
// guarantee.
func TestDetectorNoFalseNegatives(t *testing.T) {
	d, err := NewDetector(Config{
		Descriptor: Descriptor{Rate: 1000, Burst: 2000},
		Stages:     3,
		Buckets:    32,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The violator sends 500 bytes every 100 ms (5000 B/s against 1000).
	flagged := false
	for i := 0; i < 100 && !flagged; i++ {
		flagged = d.Process(key(1), time.Duration(i)*100*time.Millisecond, 500)
	}
	if !flagged {
		t.Fatal("violating flow never flagged")
	}
	if _, ok := d.Flagged()[key(1)]; !ok {
		t.Error("flagged flow missing from report")
	}
	// Once flagged, it stays flagged.
	if !d.Process(key(1), time.Hour, 1) {
		t.Error("flagged state forgotten")
	}
}

func TestDetectorConformingFlowsMostlyPass(t *testing.T) {
	d, err := NewDetector(Config{
		Descriptor: Descriptor{Rate: 10000, Burst: 50000},
		Stages:     4,
		Buckets:    256,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 flows each at a tenth of the descriptor rate.
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 200; step++ {
		at := time.Duration(step) * 50 * time.Millisecond
		f := key(uint64(rng.Intn(100)))
		d.Process(f, at, 50)
	}
	if n := len(d.Flagged()); n > 5 {
		t.Errorf("%d conforming flows flagged", n)
	}
}

func TestDetectorReset(t *testing.T) {
	d, err := NewDetector(Config{
		Descriptor: Descriptor{Rate: 100, Burst: 200},
		Stages:     2,
		Buckets:    16,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Process(key(1), time.Duration(i)*time.Millisecond, 100)
	}
	if len(d.Flagged()) == 0 {
		t.Fatal("setup flow not flagged")
	}
	d.Reset()
	if len(d.Flagged()) != 0 {
		t.Error("Reset kept flagged flows")
	}
	// Bucket levels cleared: a small packet conforms again.
	if d.Process(key(1), 0, 50) {
		t.Error("Reset kept bucket levels")
	}
}

func TestDetectorFlaggedIsCopy(t *testing.T) {
	d, err := NewDetector(Config{
		Descriptor: Descriptor{Rate: 100, Burst: 100},
		Stages:     1,
		Buckets:    4,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.Process(key(1), 0, 100)
	}
	m := d.Flagged()
	delete(m, key(1))
	if len(d.Flagged()) != 1 {
		t.Error("Flagged returned internal state")
	}
}
