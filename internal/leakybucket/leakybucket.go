// Package leakybucket implements the alternative large-flow definition the
// paper delegates to its technical report (Section 1.1): instead of "more
// than T bytes per measurement interval", a large flow is one that violates
// a leaky bucket descriptor (rate r bytes/second, burst B bytes). This
// definition has no interval boundaries — a flow is large the moment its
// traffic cannot be described by the (r, B) envelope — which suits
// enforcement-style applications (the paper's scalable queue management
// motivation) better than interval accounting.
//
// The package provides the descriptor itself and a measurement algorithm
// that marries it to the multistage filter: stage counters drain at rate
// r*C_bucket so only flows sending persistently above their share keep
// their counters high, and a flow is promoted to flow memory when it
// overflows the bucket at every stage.
package leakybucket

import (
	"time"

	"repro/internal/cfgerr"
	"repro/internal/flow"
	"repro/internal/hashing"
)

// Descriptor is a leaky bucket: traffic conforms while, with the bucket
// draining at Rate bytes/second, the backlog never exceeds Burst bytes.
type Descriptor struct {
	// Rate is the drain rate in bytes per second.
	Rate float64
	// Burst is the bucket depth in bytes.
	Burst float64
}

// Validate checks the descriptor.
func (d Descriptor) Validate() error {
	if d.Rate <= 0 {
		return cfgerr.New("leakybucket", "Rate", "must be positive, got %g", d.Rate)
	}
	if d.Burst <= 0 {
		return cfgerr.New("leakybucket", "Burst", "must be positive, got %g", d.Burst)
	}
	return nil
}

// Bucket tracks one flow against a descriptor.
type Bucket struct {
	desc  Descriptor
	level float64
	last  time.Duration
}

// NewBucket creates a bucket; it panics on an invalid descriptor (the
// descriptor is configuration, not input).
func NewBucket(d Descriptor) *Bucket {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return &Bucket{desc: d}
}

// Add accounts size bytes arriving at the given time offset and reports
// whether the flow is still conforming. Time must not go backwards.
func (b *Bucket) Add(at time.Duration, size uint32) bool {
	if at > b.last {
		b.level -= b.desc.Rate * (at - b.last).Seconds()
		if b.level < 0 {
			b.level = 0
		}
		b.last = at
	}
	b.level += float64(size)
	return b.level <= b.desc.Burst
}

// Level returns the current backlog in bytes.
func (b *Bucket) Level() float64 { return b.level }

// Detector identifies flows that violate a leaky bucket descriptor, using
// multistage-filtered buckets: each stage is a table of leaky buckets
// indexed by a hash of the flow ID, all draining continuously. A flow is
// reported when the buckets it hashes to overflow at every stage — the
// exact analogue of the paper's parallel filter with the per-interval
// counters replaced by draining ones, preserving the no-false-negatives
// property (a violating flow overflows all its buckets by itself).
type Detector struct {
	desc    Descriptor
	stages  [][]stageBucket
	hashes  []hashing.Func
	flagged map[flow.Key]time.Duration
}

type stageBucket struct {
	level float64
	last  time.Duration
}

// Config configures a Detector.
type Config struct {
	// Descriptor is the envelope that defines "large".
	Descriptor Descriptor
	// Stages and Buckets shape the filter, as in the byte-count filter.
	Stages, Buckets int
	// Seed seeds the hash functions.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Descriptor.Validate(); err != nil {
		return err
	}
	if c.Stages < 1 {
		return cfgerr.New("leakybucket", "Stages", "must be at least 1, got %d", c.Stages)
	}
	if c.Buckets < 1 {
		return cfgerr.New("leakybucket", "Buckets", "must be at least 1, got %d", c.Buckets)
	}
	return nil
}

// NewDetector creates a detector.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Detector{
		desc:    cfg.Descriptor,
		stages:  make([][]stageBucket, cfg.Stages),
		hashes:  make([]hashing.Func, cfg.Stages),
		flagged: make(map[flow.Key]time.Duration),
	}
	family := hashing.NewTabulation(cfg.Seed)
	for i := range d.stages {
		d.stages[i] = make([]stageBucket, cfg.Buckets)
		d.hashes[i] = family.New(uint32(cfg.Buckets))
	}
	return d, nil
}

// Process accounts one packet. It returns true when the packet's flow is
// (or already was) flagged as violating the descriptor.
func (d *Detector) Process(key flow.Key, at time.Duration, size uint32) bool {
	if _, ok := d.flagged[key]; ok {
		return true
	}
	over := true
	for i, h := range d.hashes {
		sb := &d.stages[i][h.Bucket(key)]
		if at > sb.last {
			sb.level -= d.desc.Rate * (at - sb.last).Seconds()
			if sb.level < 0 {
				sb.level = 0
			}
			sb.last = at
		}
		sb.level += float64(size)
		if sb.level <= d.desc.Burst {
			over = false
		}
	}
	if over {
		d.flagged[key] = at
	}
	return over
}

// Flagged returns the violating flows and the time each was first flagged.
func (d *Detector) Flagged() map[flow.Key]time.Duration {
	out := make(map[flow.Key]time.Duration, len(d.flagged))
	for k, v := range d.flagged {
		out[k] = v
	}
	return out
}

// Reset clears flagged flows and bucket levels.
func (d *Detector) Reset() {
	d.flagged = make(map[flow.Key]time.Duration)
	for i := range d.stages {
		for j := range d.stages[i] {
			d.stages[i][j] = stageBucket{}
		}
	}
}
