// Package routing implements longest-prefix-match lookup from IPv4 addresses
// to autonomous system numbers.
//
// The paper's AS-pair flow definition requires mapping each packet's source
// and destination address to an AS via route lookups (Section 1.1 allows the
// flow identifier to be a function of header fields "based on a mapping using
// route tables"). The paper could not apply this definition to its anonymized
// traces; our synthetic traces carry addresses drawn from a synthetic AS
// topology built with Synthetic, so the definition works end to end.
package routing

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/flow"
)

// Table is a binary trie mapping IPv4 prefixes to AS numbers with
// longest-prefix-match semantics.
type Table struct {
	root *node
	n    int
}

type node struct {
	child [2]*node
	as    uint16
	valid bool
}

// NewTable returns an empty routing table.
func NewTable() *Table { return &Table{root: &node{}} }

// Len returns the number of prefixes in the table.
func (t *Table) Len() int { return t.n }

// Insert adds a route for the prefix addr/length to the given AS. Inserting
// the same prefix twice overwrites the previous AS. It returns an error if
// length is outside [0, 32].
func (t *Table) Insert(addr uint32, length int, as uint16) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("routing: prefix length %d out of range", length)
	}
	cur := t.root
	for i := 0; i < length; i++ {
		bit := (addr >> (31 - i)) & 1
		if cur.child[bit] == nil {
			cur.child[bit] = &node{}
		}
		cur = cur.child[bit]
	}
	if !cur.valid {
		t.n++
	}
	cur.as = as
	cur.valid = true
	return nil
}

// Lookup returns the AS of the longest matching prefix for addr. The second
// result is false when no prefix matches.
func (t *Table) Lookup(addr uint32) (uint16, bool) {
	var (
		as    uint16
		found bool
	)
	cur := t.root
	for i := 0; ; i++ {
		if cur.valid {
			as, found = cur.as, true
		}
		if i == 32 {
			break
		}
		bit := (addr >> (31 - i)) & 1
		if cur.child[bit] == nil {
			break
		}
		cur = cur.child[bit]
	}
	return as, found
}

// Annotate fills in the SrcAS and DstAS fields of p from the table,
// leaving a field zero when no route matches.
func (t *Table) Annotate(p *flow.Packet) {
	if as, ok := t.Lookup(p.SrcIP); ok {
		p.SrcAS = as
	} else {
		p.SrcAS = 0
	}
	if as, ok := t.Lookup(p.DstIP); ok {
		p.DstAS = as
	} else {
		p.DstAS = 0
	}
}

// Topology is a synthetic AS-level topology: a set of ASes each owning one
// or more /16 or /24 prefixes, plus the routing table covering them. The
// trace generator draws addresses from it so that AS-pair aggregation of the
// synthetic traces behaves like the paper's MAG trace (where ~100k 5-tuple
// flows collapse to ~7.4k AS pairs).
type Topology struct {
	// Table maps every address the topology can generate to its AS.
	Table *Table
	// Prefixes lists the generated prefixes; Prefixes[i] belongs to
	// PrefixAS[i].
	Prefixes []Prefix
	PrefixAS []uint16
	ases     []uint16
}

// Prefix is an IPv4 prefix.
type Prefix struct {
	Addr   uint32
	Length int
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", flow.IPString(p.Addr), p.Length)
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	if p.Length == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - p.Length)
	return addr&mask == p.Addr&mask
}

// RandomAddr draws a uniform random address inside the prefix.
func (p Prefix) RandomAddr(rng *rand.Rand) uint32 {
	if p.Length >= 32 {
		return p.Addr
	}
	hostBits := 32 - p.Length
	mask := ^uint32(0) << hostBits
	return p.Addr&mask | uint32(rng.Int63())&^mask
}

// Synthetic builds a topology with the given number of ASes, seeded
// deterministically. Each AS receives between one and three /16 prefixes
// carved from distinct high-order blocks, so prefixes never overlap. It
// panics if nASes is not in [1, 20000].
func Synthetic(nASes int, seed int64) *Topology {
	if nASes < 1 || nASes > 20000 {
		panic("routing: nASes out of range")
	}
	rng := rand.New(rand.NewSource(seed))
	topo := &Topology{Table: NewTable()}
	// Enumerate /16 blocks 1.0.0.0/16 .. upward, shuffled assignment of
	// 1..3 blocks per AS.
	next := uint32(1 << 24) // start at 1.0.0.0 to avoid 0.x addresses
	for i := 0; i < nASes; i++ {
		as := uint16(i + 1)
		topo.ases = append(topo.ases, as)
		blocks := 1 + rng.Intn(3)
		for b := 0; b < blocks; b++ {
			p := Prefix{Addr: next, Length: 16}
			next += 1 << 16
			topo.Prefixes = append(topo.Prefixes, p)
			topo.PrefixAS = append(topo.PrefixAS, as)
			if err := topo.Table.Insert(p.Addr, p.Length, as); err != nil {
				panic(err)
			}
		}
	}
	return topo
}

// ASes returns the AS numbers in the topology in ascending order.
func (t *Topology) ASes() []uint16 {
	out := append([]uint16(nil), t.ases...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RandomAddrInAS draws a random address belonging to the given AS. It
// returns false if the AS owns no prefix.
func (t *Topology) RandomAddrInAS(as uint16, rng *rand.Rand) (uint32, bool) {
	// Collect candidate prefixes lazily; topologies are small enough that a
	// linear scan is fine for generation-time use.
	var candidates []Prefix
	for i, owner := range t.PrefixAS {
		if owner == as {
			candidates = append(candidates, t.Prefixes[i])
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	p := candidates[rng.Intn(len(candidates))]
	return p.RandomAddr(rng), true
}
