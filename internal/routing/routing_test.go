package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

func mustInsert(t *testing.T, tab *Table, addr uint32, length int, as uint16) {
	t.Helper()
	if err := tab.Insert(addr, length, as); err != nil {
		t.Fatalf("Insert: %v", err)
	}
}

func TestLookupEmpty(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.Lookup(0x01020304); ok {
		t.Error("lookup in empty table matched")
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestLongestPrefixWins(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, 0x0a000000, 8, 100)  // 10.0.0.0/8 -> AS100
	mustInsert(t, tab, 0x0a010000, 16, 200) // 10.1.0.0/16 -> AS200
	mustInsert(t, tab, 0x0a010200, 24, 300) // 10.1.2.0/24 -> AS300

	tests := []struct {
		addr uint32
		want uint16
	}{
		{0x0a050505, 100}, // 10.5.5.5 matches only /8
		{0x0a010505, 200}, // 10.1.5.5 matches /16
		{0x0a010203, 300}, // 10.1.2.3 matches /24
	}
	for _, tt := range tests {
		got, ok := tab.Lookup(tt.addr)
		if !ok || got != tt.want {
			t.Errorf("Lookup(%s) = %d,%v want %d", flow.IPString(tt.addr), got, ok, tt.want)
		}
	}
	if _, ok := tab.Lookup(0x0b000000); ok {
		t.Error("11.0.0.0 should not match")
	}
}

func TestDefaultRoute(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, 0, 0, 1)
	mustInsert(t, tab, 0xc0000000, 2, 2)
	if as, ok := tab.Lookup(0x01020304); !ok || as != 1 {
		t.Errorf("default route: got %d,%v", as, ok)
	}
	if as, ok := tab.Lookup(0xc0a80101); !ok || as != 2 {
		t.Errorf("/2 route: got %d,%v", as, ok)
	}
}

func TestHostRoute(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, 0x01020304, 32, 7)
	if as, ok := tab.Lookup(0x01020304); !ok || as != 7 {
		t.Errorf("host route: got %d,%v", as, ok)
	}
	if _, ok := tab.Lookup(0x01020305); ok {
		t.Error("adjacent address matched host route")
	}
}

func TestInsertOverwriteAndLen(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, 0x0a000000, 8, 1)
	mustInsert(t, tab, 0x0a000000, 8, 9)
	if tab.Len() != 1 {
		t.Errorf("Len = %d after overwrite", tab.Len())
	}
	if as, _ := tab.Lookup(0x0a000001); as != 9 {
		t.Errorf("overwrite not applied, as = %d", as)
	}
}

func TestInsertBadLength(t *testing.T) {
	tab := NewTable()
	if err := tab.Insert(0, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	if err := tab.Insert(0, 33, 1); err == nil {
		t.Error("length 33 accepted")
	}
}

func TestAnnotate(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, 0x0a000000, 8, 11)
	mustInsert(t, tab, 0x14000000, 8, 22)
	p := &flow.Packet{SrcIP: 0x0a010101, DstIP: 0x14010101, SrcAS: 99, DstAS: 99}
	tab.Annotate(p)
	if p.SrcAS != 11 || p.DstAS != 22 {
		t.Errorf("annotate: got %d,%d", p.SrcAS, p.DstAS)
	}
	// Unroutable addresses must be zeroed, not left stale.
	q := &flow.Packet{SrcIP: 0xdeadbeef, DstIP: 0x0a000001, SrcAS: 99, DstAS: 99}
	tab.Annotate(q)
	if q.SrcAS != 0 || q.DstAS != 11 {
		t.Errorf("annotate unroutable: got %d,%d", q.SrcAS, q.DstAS)
	}
}

func TestPrefixContains(t *testing.T) {
	p := Prefix{Addr: 0x0a010000, Length: 16}
	if !p.Contains(0x0a01ffff) || p.Contains(0x0a020000) {
		t.Error("Contains wrong for /16")
	}
	all := Prefix{Length: 0}
	if !all.Contains(0xffffffff) || !all.Contains(0) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixRandomAddrInside(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Prefix{Addr: 0x0a010000, Length: 16}
	for i := 0; i < 1000; i++ {
		if a := p.RandomAddr(rng); !p.Contains(a) {
			t.Fatalf("RandomAddr produced %s outside %s", flow.IPString(a), p)
		}
	}
	host := Prefix{Addr: 0x01020304, Length: 32}
	if host.RandomAddr(rng) != 0x01020304 {
		t.Error("/32 RandomAddr should return the address itself")
	}
}

func TestPrefixString(t *testing.T) {
	p := Prefix{Addr: 0x0a010000, Length: 16}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String = %q", p.String())
	}
}

func TestSyntheticTopologyConsistent(t *testing.T) {
	topo := Synthetic(100, 42)
	if len(topo.ASes()) != 100 {
		t.Fatalf("ASes = %d", len(topo.ASes()))
	}
	if len(topo.Prefixes) != len(topo.PrefixAS) {
		t.Fatal("prefix/AS length mismatch")
	}
	// Every generated address must route back to its owning AS.
	rng := rand.New(rand.NewSource(7))
	for i, p := range topo.Prefixes {
		addr := p.RandomAddr(rng)
		as, ok := topo.Table.Lookup(addr)
		if !ok || as != topo.PrefixAS[i] {
			t.Errorf("addr %s in %s: lookup %d,%v want %d",
				flow.IPString(addr), p, as, ok, topo.PrefixAS[i])
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(50, 9)
	b := Synthetic(50, 9)
	if len(a.Prefixes) != len(b.Prefixes) {
		t.Fatal("same seed, different prefix counts")
	}
	for i := range a.Prefixes {
		if a.Prefixes[i] != b.Prefixes[i] || a.PrefixAS[i] != b.PrefixAS[i] {
			t.Fatal("same seed, different topology")
		}
	}
}

func TestRandomAddrInAS(t *testing.T) {
	topo := Synthetic(20, 3)
	rng := rand.New(rand.NewSource(5))
	for _, as := range topo.ASes() {
		addr, ok := topo.RandomAddrInAS(as, rng)
		if !ok {
			t.Fatalf("AS%d has no prefix", as)
		}
		if got, ok := topo.Table.Lookup(addr); !ok || got != as {
			t.Errorf("address from AS%d routes to AS%d", as, got)
		}
	}
	if _, ok := topo.RandomAddrInAS(9999, rng); ok {
		t.Error("unknown AS returned an address")
	}
}

func TestSyntheticPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, 20001} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Synthetic(%d) did not panic", n)
				}
			}()
			Synthetic(n, 1)
		}()
	}
}

// TestLookupMatchesLinearScan cross-checks the trie against a brute-force
// prefix scan on random tables.
func TestLookupMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type route struct {
		p  Prefix
		as uint16
	}
	tab := NewTable()
	var routes []route
	for i := 0; i < 200; i++ {
		length := rng.Intn(25) + 8
		addr := uint32(rng.Int63())
		mask := ^uint32(0) << (32 - length)
		addr &= mask
		as := uint16(rng.Intn(1000) + 1)
		mustInsert(t, tab, addr, length, as)
		// Mirror the overwrite semantics of the trie.
		replaced := false
		for j := range routes {
			if routes[j].p.Length == length && routes[j].p.Addr == addr {
				routes[j].as = as
				replaced = true
				break
			}
		}
		if !replaced {
			routes = append(routes, route{Prefix{addr, length}, as})
		}
	}
	linear := func(addr uint32) (uint16, bool) {
		best := -1
		var as uint16
		for _, r := range routes {
			if r.p.Contains(addr) && r.p.Length > best {
				best = r.p.Length
				as = r.as
			}
		}
		return as, best >= 0
	}
	f := func(addr uint32) bool {
		a1, ok1 := tab.Lookup(addr)
		a2, ok2 := linear(addr)
		return ok1 == ok2 && (!ok1 || a1 == a2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	topo := Synthetic(5000, 1)
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = topo.Prefixes[rng.Intn(len(topo.Prefixes))].RandomAddr(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.Table.Lookup(addrs[i&1023])
	}
}
