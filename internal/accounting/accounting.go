// Package accounting implements the threshold accounting scheme the paper
// proposes (Section 1.2): flows above z% of the link capacity are charged
// by usage, while the remaining traffic is charged a flat, duration-based
// fee. Varying z from 0 to 100 moves continuously between pure usage-based
// and pure duration-based pricing.
//
// Because sample-and-hold and multistage-filter estimates are provable
// lower bounds on a flow's traffic, usage charges computed from them never
// overcharge a customer — the property (Section 5.2, point iii) that makes
// the paper's algorithms suitable for billing where Sampled NetFlow is not.
package accounting

import (
	"sort"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/flow"
)

// Params sets the tariff.
type Params struct {
	// Z is the threshold as a fraction of link capacity per interval;
	// flows with at least Z*C estimated bytes are charged by usage.
	Z float64
	// PerByte is the usage price per byte for flows above the threshold.
	PerByte float64
	// FlatPerInterval is the duration-based fee charged once per interval
	// for all remaining traffic.
	FlatPerInterval float64
}

// Validate checks the tariff.
func (p Params) Validate() error {
	if p.Z < 0 || p.Z > 1 {
		return cfgerr.New("accounting", "Z", "%g outside [0, 1]", p.Z)
	}
	if p.PerByte < 0 {
		return cfgerr.New("accounting", "PerByte", "must not be negative, got %g", p.PerByte)
	}
	if p.FlatPerInterval < 0 {
		return cfgerr.New("accounting", "FlatPerInterval", "must not be negative, got %g", p.FlatPerInterval)
	}
	return nil
}

// Charge is one usage-based charge.
type Charge struct {
	Key flow.Key
	// Bytes is the billed traffic (the device's lower-bound estimate).
	Bytes uint64
	// Amount is Bytes * PerByte.
	Amount float64
	// Exact marks charges computed from exactly-measured flows.
	Exact bool
}

// IntervalBill is the bill for one measurement interval.
type IntervalBill struct {
	Interval int
	// Usage lists per-flow charges for flows above the threshold, largest
	// first.
	Usage []Charge
	// UsageTotal is the sum of usage charges.
	UsageTotal float64
	// Flat is the duration-based component.
	Flat float64
}

// Total returns the complete charge for the interval.
func (b IntervalBill) Total() float64 { return b.UsageTotal + b.Flat }

// BillInterval produces the bill for one interval from a measurement
// device's report. capacity is the link capacity in bytes per interval.
func BillInterval(interval int, ests []core.Estimate, capacity float64, p Params) (IntervalBill, error) {
	if err := p.Validate(); err != nil {
		return IntervalBill{}, err
	}
	bill := IntervalBill{Interval: interval, Flat: p.FlatPerInterval}
	threshold := p.Z * capacity
	for _, e := range ests {
		if float64(e.Bytes) < threshold {
			continue
		}
		c := Charge{
			Key:    e.Key,
			Bytes:  e.Bytes,
			Amount: float64(e.Bytes) * p.PerByte,
			Exact:  e.Exact,
		}
		bill.Usage = append(bill.Usage, c)
		bill.UsageTotal += c.Amount
	}
	sort.Slice(bill.Usage, func(i, j int) bool {
		if bill.Usage[i].Bytes != bill.Usage[j].Bytes {
			return bill.Usage[i].Bytes > bill.Usage[j].Bytes
		}
		if bill.Usage[i].Key.Hi != bill.Usage[j].Key.Hi {
			return bill.Usage[i].Key.Hi > bill.Usage[j].Key.Hi
		}
		return bill.Usage[i].Key.Lo > bill.Usage[j].Key.Lo
	})
	return bill, nil
}

// Ledger accumulates bills across intervals and per-flow usage totals.
type Ledger struct {
	Bills []IntervalBill
	// ByFlow accumulates usage-billed bytes per flow across intervals.
	ByFlow map[flow.Key]uint64
	// Revenue is the cumulative total.
	Revenue float64
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{ByFlow: make(map[flow.Key]uint64)}
}

// Add records a bill.
func (l *Ledger) Add(b IntervalBill) {
	l.Bills = append(l.Bills, b)
	for _, c := range b.Usage {
		l.ByFlow[c.Key] += c.Bytes
	}
	l.Revenue += b.Total()
}
