package accounting

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestParamsValidate(t *testing.T) {
	if err := (Params{Z: 0.01, PerByte: 1e-9, FlatPerInterval: 0.01}).Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{Z: -0.1},
		{Z: 1.5},
		{Z: 0.5, PerByte: -1},
		{Z: 0.5, FlatPerInterval: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBillIntervalThresholdSplit(t *testing.T) {
	const capacity = 1e9
	p := Params{Z: 0.001, PerByte: 1e-6, FlatPerInterval: 5}
	ests := []core.Estimate{
		{Key: key(1), Bytes: 2e6, Exact: true}, // above 0.1% of C: usage-billed
		{Key: key(2), Bytes: 1e6},              // exactly at threshold: billed
		{Key: key(3), Bytes: 999999},           // below: flat
	}
	bill, err := BillInterval(3, ests, capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	if bill.Interval != 3 {
		t.Errorf("interval = %d", bill.Interval)
	}
	if len(bill.Usage) != 2 {
		t.Fatalf("usage charges = %v", bill.Usage)
	}
	if bill.Usage[0].Key != key(1) || !bill.Usage[0].Exact {
		t.Errorf("largest charge = %+v", bill.Usage[0])
	}
	wantUsage := 2e6*1e-6 + 1e6*1e-6
	if math.Abs(bill.UsageTotal-wantUsage) > 1e-9 {
		t.Errorf("UsageTotal = %g, want %g", bill.UsageTotal, wantUsage)
	}
	if math.Abs(bill.Total()-(wantUsage+5)) > 1e-9 {
		t.Errorf("Total = %g", bill.Total())
	}
}

func TestZExtremes(t *testing.T) {
	ests := []core.Estimate{{Key: key(1), Bytes: 100}, {Key: key(2), Bytes: 1e8}}
	// Z = 1: pure duration-based pricing — nothing is usage-billed on a
	// non-saturating link.
	bill, err := BillInterval(0, ests, 1e9, Params{Z: 1, PerByte: 1, FlatPerInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bill.Usage) != 0 || bill.Total() != 2 {
		t.Errorf("Z=1: %+v", bill)
	}
	// Z = 0: pure usage-based pricing — every reported flow is billed.
	bill, err = BillInterval(0, ests, 1e9, Params{Z: 0, PerByte: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bill.Usage) != 2 {
		t.Errorf("Z=0: %+v", bill)
	}
}

func TestBillIntervalBadParams(t *testing.T) {
	if _, err := BillInterval(0, nil, 1e9, Params{Z: 2}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestLowerBoundEstimatesNeverOvercharge(t *testing.T) {
	// The core billing property: if estimates are lower bounds (as the
	// paper's algorithms guarantee), the usage bill never exceeds what
	// exact metering would charge.
	truth := map[flow.Key]uint64{key(1): 1000000, key(2): 5000000}
	ests := []core.Estimate{
		{Key: key(1), Bytes: 990000},
		{Key: key(2), Bytes: 4900000},
	}
	p := Params{Z: 0.0001, PerByte: 1e-6}
	billed, _ := BillInterval(0, ests, 1e9, p)
	var exact []core.Estimate
	for k, b := range truth {
		exact = append(exact, core.Estimate{Key: k, Bytes: b})
	}
	ideal, _ := BillInterval(0, exact, 1e9, p)
	if billed.UsageTotal > ideal.UsageTotal {
		t.Errorf("billed %g exceeds ideal %g", billed.UsageTotal, ideal.UsageTotal)
	}
	for _, c := range billed.Usage {
		if c.Bytes > truth[c.Key] {
			t.Errorf("flow %v billed %d > true %d", c.Key, c.Bytes, truth[c.Key])
		}
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	b1, _ := BillInterval(0, []core.Estimate{{Key: key(1), Bytes: 1000}}, 1e6, Params{Z: 0.0001, PerByte: 0.001, FlatPerInterval: 1})
	b2, _ := BillInterval(1, []core.Estimate{{Key: key(1), Bytes: 2000}}, 1e6, Params{Z: 0.0001, PerByte: 0.001, FlatPerInterval: 1})
	l.Add(b1)
	l.Add(b2)
	if len(l.Bills) != 2 {
		t.Errorf("Bills = %d", len(l.Bills))
	}
	if l.ByFlow[key(1)] != 3000 {
		t.Errorf("ByFlow = %d, want 3000", l.ByFlow[key(1)])
	}
	want := b1.Total() + b2.Total()
	if math.Abs(l.Revenue-want) > 1e-9 {
		t.Errorf("Revenue = %g, want %g", l.Revenue, want)
	}
}

func TestUsageChargesSorted(t *testing.T) {
	ests := []core.Estimate{
		{Key: key(1), Bytes: 100},
		{Key: key(2), Bytes: 300},
		{Key: key(3), Bytes: 200},
	}
	bill, _ := BillInterval(0, ests, 1000, Params{Z: 0, PerByte: 1})
	if bill.Usage[0].Bytes != 300 || bill.Usage[1].Bytes != 200 || bill.Usage[2].Bytes != 100 {
		t.Errorf("charges not sorted: %v", bill.Usage)
	}
}
