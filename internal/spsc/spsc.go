// Package spsc is a bounded single-producer/single-consumer ring buffer,
// the lane handoff primitive behind the sharded measure stage. A Go channel
// send costs a mutex acquire, a copy under the lock and usually a goroutine
// wake; at multi-million-batch rates across shards that serialization is
// the handoff bottleneck. Here a push is one plain slice write plus one
// atomic release-store (the slot sequence publication) in the common case —
// no lock, no syscall, no scheduler involvement while both sides are busy.
//
// The design is the classic sequence-stamped ring (Vyukov): every slot
// carries a sequence number; a slot is writable at position p when seq == p
// and readable when seq == p+1. The producer owns the tail cursor and the
// consumer owns the head cursor, each on its own cache line so the two
// sides never false-share. The head cursor is additionally CAS-advanced
// rather than plainly stored so that the *producer* may steal the oldest
// queued element (Steal) — that is how the DropOldest overload policy
// evicts under pressure without violating the single-consumer protocol:
// whoever wins the CAS owns the slot, the loser retries.
//
// Waiting is busy-poll-then-park: a short busy spin (skipped entirely when
// GOMAXPROCS == 1, where spinning only steals cycles from the peer), a few
// runtime.Gosched yields, then a real park on a 1-buffered wake channel
// guarded by a Dekker-style flag handshake (store own parked flag, re-check
// the condition, only then sleep; the peer stores the condition first and
// loads the flag second, so with Go's sequentially consistent atomics at
// least one side always observes the other and no wakeup is lost). See
// DESIGN.md §10 for the full memory-ordering argument.
package spsc

import (
	"runtime"
	"sync/atomic"
)

// spinBudget is the busy-poll iteration count used before yielding when
// more than one CPU is available; on a single CPU the budget is zero
// because the peer cannot run until we yield.
const spinBudget = 128

// yieldBudget is the number of runtime.Gosched attempts between busy
// polling and parking on the wake channel.
const yieldBudget = 4

type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// Ring is a bounded SPSC queue of T. Exactly one goroutine may call the
// push side (TryPush, Push, Steal, Close) and exactly one the pop side
// (TryPop, Pop); Len and Cap are safe from anywhere. The zero value is not
// usable; construct with New.
type Ring[T any] struct {
	slots []slot[T]
	mask  uint64
	cap   uint64
	spin  int

	// Each cursor sits alone on its cache line: the producer writes tail
	// and the consumer writes head, and padding keeps one side's writes
	// from invalidating the other side's line.
	_    [64]byte
	tail atomic.Uint64
	_    [56]byte
	head atomic.Uint64
	_    [56]byte

	closed         atomic.Bool
	consumerParked atomic.Bool
	producerParked atomic.Bool
	consumerWake   chan struct{}
	producerWake   chan struct{}
}

// New builds a ring with the given logical capacity (it accepts exactly
// capacity elements before TryPush reports full, matching a channel of that
// capacity). Slot storage is rounded up to a power of two internally.
func New[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		panic("spsc: capacity must be at least 1")
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{
		slots:        make([]slot[T], n),
		mask:         uint64(n - 1),
		cap:          uint64(capacity),
		consumerWake: make(chan struct{}, 1),
		producerWake: make(chan struct{}, 1),
	}
	if runtime.GOMAXPROCS(0) > 1 {
		r.spin = spinBudget
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the logical capacity.
func (r *Ring[T]) Cap() int { return int(r.cap) }

// Len returns the number of queued elements. It is exact when called from
// the producer or consumer goroutine between operations, and a point-in-time
// approximation from anywhere else.
func (r *Ring[T]) Len() int {
	d := int64(r.tail.Load() - r.head.Load())
	if d < 0 {
		// A pop can advance head a beat before the push that fed it
		// publishes tail; clamp the transient.
		return 0
	}
	return int(d)
}

// Closed reports whether Close has been called. Elements already queued
// remain poppable after close.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// TryPush appends v if the ring is not full. The publication the consumer
// synchronizes on is the single slot-sequence release store; the tail store
// only feeds Len and the producer's own capacity check.
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	pos := r.tail.Load()
	if pos-r.head.Load() >= r.cap {
		return false
	}
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos {
		// The slot's previous occupant is still mid-pop (head already
		// advanced, sequence not yet republished): treat as full.
		return false
	}
	s.val = v
	s.seq.Store(pos + 1)
	r.tail.Store(pos + 1)
	if r.consumerParked.Load() {
		select {
		case r.consumerWake <- struct{}{}:
		default:
		}
	}
	return true
}

// Push appends v, waiting (busy-poll, yield, park) while the ring is full.
// It returns false only if the ring is closed — in the intended usage the
// producer is the closer, so false means a use-after-close bug upstream.
func (r *Ring[T]) Push(v T) bool {
	for {
		if r.TryPush(v) {
			return true
		}
		if r.closed.Load() {
			return false
		}
		r.waitNotFull()
	}
}

// take resolves the pop race for the slot at pos: whoever wins the head CAS
// owns the slot, copies the value out, clears the slot (so queued pointers
// do not outlive their pop) and republishes the sequence for the producer's
// next lap.
func (r *Ring[T]) take(pos uint64, s *slot[T]) (T, bool) {
	var zero T
	if !r.head.CompareAndSwap(pos, pos+1) {
		return zero, false
	}
	v := s.val
	s.val = zero
	s.seq.Store(pos + uint64(len(r.slots)))
	if r.producerParked.Load() {
		select {
		case r.producerWake <- struct{}{}:
		default:
		}
	}
	return v, true
}

// TryPop removes the oldest element if one is ready.
func (r *Ring[T]) TryPop() (T, bool) {
	for {
		pos := r.head.Load()
		s := &r.slots[pos&r.mask]
		if s.seq.Load() != pos+1 {
			var zero T
			return zero, false
		}
		if v, ok := r.take(pos, s); ok {
			return v, true
		}
	}
}

// Steal is TryPop callable from the producer goroutine: it evicts the
// oldest queued element (DropOldest). The head CAS arbitrates against a
// concurrent consumer pop; both sides' loops make one of them win every
// round, so neither can starve the other.
func (r *Ring[T]) Steal() (T, bool) { return r.TryPop() }

// Pop removes the oldest element, waiting while the ring is empty. It
// returns ok=false only once the ring is closed and fully drained.
func (r *Ring[T]) Pop() (T, bool) {
	for {
		if v, ok := r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Re-check after observing closed: pushes before Close must
			// all be delivered.
			if v, ok := r.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		r.waitNotEmpty()
	}
}

// Close marks the ring closed and wakes both sides. Queued elements remain
// poppable; Pop reports done once they are drained. Only the producer may
// call Close, and only once.
func (r *Ring[T]) Close() {
	r.closed.Store(true)
	select {
	case r.consumerWake <- struct{}{}:
	default:
	}
	select {
	case r.producerWake <- struct{}{}:
	default:
	}
}

func (r *Ring[T]) empty() bool { return r.tail.Load() == r.head.Load() }

func (r *Ring[T]) full() bool { return r.tail.Load()-r.head.Load() >= r.cap }

// waitNotEmpty is the consumer's wait: spin (multi-CPU only), yield, then
// park. The parked flag is stored before the final emptiness re-check and
// the producer stores the slot sequence before loading the flag; with
// sequentially consistent atomics one of the two always sees the other, so
// the producer either observes the flag and sends a wake token or the
// consumer observes the push and never sleeps.
func (r *Ring[T]) waitNotEmpty() {
	for i := 0; i < r.spin; i++ {
		if !r.empty() || r.closed.Load() {
			return
		}
	}
	for i := 0; i < yieldBudget; i++ {
		if !r.empty() || r.closed.Load() {
			return
		}
		runtime.Gosched()
	}
	r.consumerParked.Store(true)
	if !r.empty() || r.closed.Load() {
		r.consumerParked.Store(false)
		select {
		case <-r.consumerWake:
		default:
		}
		return
	}
	<-r.consumerWake
	r.consumerParked.Store(false)
}

// waitNotFull is the producer's wait, the mirror image of waitNotEmpty
// against the consumer's head advance.
func (r *Ring[T]) waitNotFull() {
	for i := 0; i < r.spin; i++ {
		if !r.full() || r.closed.Load() {
			return
		}
	}
	for i := 0; i < yieldBudget; i++ {
		if !r.full() || r.closed.Load() {
			return
		}
		runtime.Gosched()
	}
	r.producerParked.Store(true)
	if !r.full() || r.closed.Load() {
		r.producerParked.Store(false)
		select {
		case <-r.producerWake:
		default:
		}
		return
	}
	<-r.producerWake
	r.producerParked.Store(false)
}
