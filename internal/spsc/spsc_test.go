package spsc

import (
	"sync"
	"testing"
)

func TestFIFOAndCapacity(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 4, 7, 64} {
		r := New[int](capacity)
		if r.Cap() != capacity {
			t.Fatalf("cap %d: got %d", capacity, r.Cap())
		}
		for i := 0; i < capacity; i++ {
			if !r.TryPush(i) {
				t.Fatalf("cap %d: push %d rejected below capacity", capacity, i)
			}
		}
		if r.TryPush(999) {
			t.Fatalf("cap %d: push accepted at capacity", capacity)
		}
		if r.Len() != capacity {
			t.Fatalf("cap %d: Len=%d", capacity, r.Len())
		}
		for i := 0; i < capacity; i++ {
			v, ok := r.TryPop()
			if !ok || v != i {
				t.Fatalf("cap %d: pop %d got (%d, %v)", capacity, i, v, ok)
			}
		}
		if _, ok := r.TryPop(); ok {
			t.Fatalf("cap %d: pop succeeded on empty ring", capacity)
		}
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](3)
	next := 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("round %d: push rejected", round)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("round %d: got (%d, %v), want %d", round, v, ok, next+i)
			}
		}
		next += 3
	}
}

func TestCloseDrains(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.TryPush(i)
	}
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() false after Close")
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("drain %d: got (%d, %v)", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop succeeded after drain of closed ring")
	}
	if r.Push(42) {
		t.Fatal("Push accepted after Close")
	}
}

func TestBlockingHandoff(t *testing.T) {
	// Capacity 1 forces both sides through their wait paths.
	const total = 10000
	r := New[int](1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if !r.Push(i) {
				t.Errorf("push %d rejected", i)
				return
			}
		}
		r.Close()
	}()
	for i := 0; ; i++ {
		v, ok := r.Pop()
		if !ok {
			if i != total {
				t.Fatalf("drained after %d pops, want %d", i, total)
			}
			break
		}
		if v != i {
			t.Fatalf("pop %d: got %d", i, v)
		}
	}
	wg.Wait()
}

// TestStealVsPop races the producer-side Steal against the consumer's Pop;
// every pushed element must surface exactly once on exactly one side.
func TestStealVsPop(t *testing.T) {
	const total = 20000
	r := New[int](4)
	stolen := make(map[int]bool)
	popped := make(map[int]bool)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			v, ok := r.Pop()
			if !ok {
				return
			}
			if popped[v] {
				t.Errorf("popped %d twice", v)
				return
			}
			popped[v] = true
		}
	}()
	for i := 0; i < total; i++ {
		for !r.TryPush(i) {
			if v, ok := r.Steal(); ok {
				if stolen[v] {
					t.Fatalf("stole %d twice", v)
				}
				stolen[v] = true
			}
		}
	}
	r.Close()
	wg.Wait()
	for i := 0; i < total; i++ {
		s, p := stolen[i], popped[i]
		if s && p {
			t.Fatalf("%d both stolen and popped", i)
		}
		if !s && !p {
			t.Fatalf("%d lost", i)
		}
	}
}

func TestPointerSlotsCleared(t *testing.T) {
	r := New[*int](2)
	v := new(int)
	r.TryPush(v)
	if got, ok := r.TryPop(); !ok || got != v {
		t.Fatal("pointer round-trip failed")
	}
	// The popped slot must not retain the pointer (GC hygiene).
	if r.slots[0].val != nil {
		t.Fatal("slot retains popped pointer")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}
