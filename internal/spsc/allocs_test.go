//go:build !race

package spsc

import "testing"

// TestHandoffZeroAllocs guards the steady-state handoff: pushes, pops and
// steals must not allocate (the CI alloc-guard step runs this).
func TestHandoffZeroAllocs(t *testing.T) {
	r := New[*int](8)
	v := new(int)
	allocs := testing.AllocsPerRun(1000, func() {
		r.TryPush(v)
		r.TryPush(v)
		r.Steal()
		r.TryPop()
	})
	if allocs != 0 {
		t.Fatalf("handoff allocates %.1f allocs/op, want 0", allocs)
	}
}
