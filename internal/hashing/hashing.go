// Package hashing provides the independent hash functions required by the
// multistage filters of the paper (Section 3.2). Each filter stage hashes
// the flow ID with a hash function chosen independently of the other stages;
// Lemma 1 of the paper assumes this independence.
//
// Three families are implemented:
//
//   - tabulation hashing (3-independent, and in practice far stronger), the
//     default used by the filters,
//   - multiply-shift hashing (2-independent, cheaper), kept for the hash
//     ablation benchmarks, and
//   - double hashing (Kirsch–Mitzenmacher): every function drawn from one
//     family instance derives its bucket as h1(k) + i·h2(k) from a single
//     shared base hash, so a d-stage filter needs ONE hash computation per
//     packet instead of d. The derived functions are not independent — the
//     accuracy ablation quantifies what that trade costs — but Kirsch and
//     Mitzenmacher show the scheme preserves sketch error bounds
//     asymptotically.
//
// All families hash the 128-bit flow key of internal/flow to a 64-bit value;
// Func values additionally fold that value onto a bucket range.
package hashing

import (
	"math/rand"

	"repro/internal/flow"
)

// Func hashes a flow key to a bucket index in [0, Buckets).
type Func interface {
	// Bucket returns the bucket index for the key.
	Bucket(k flow.Key) uint32
	// Buckets returns the size of the bucket range.
	Buckets() uint32
}

// Family produces independent hash functions on demand. A Family is seeded;
// the same seed reproduces the same sequence of functions, which the
// experiment harness relies on for reproducible runs.
type Family interface {
	// New returns the next independent hash function with the given number
	// of buckets (must be > 0).
	New(buckets uint32) Func
}

// Tabulation implements tabulation hashing: the 16 bytes of the key index 16
// random tables of 64-bit words which are XORed together. Lookup tables make
// it both fast and strongly universal.
type Tabulation struct {
	tables [16][256]uint64
}

// NewTabulation creates a tabulation hash function family seeded with seed.
func NewTabulation(seed int64) Family {
	return &tabulationFamily{rng: rand.New(rand.NewSource(seed))}
}

type tabulationFamily struct {
	rng *rand.Rand
}

func (f *tabulationFamily) New(buckets uint32) Func {
	if buckets == 0 {
		panic("hashing: zero buckets")
	}
	t := &tabulationFunc{buckets: buckets}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = f.rng.Uint64()
		}
	}
	return t
}

type tabulationFunc struct {
	tables  [16][256]uint64
	buckets uint32
}

// hash64 XORs the 16 table words a key indexes. The byte extraction is
// fully unrolled with independent shift amounts: the rolling hi >>= 8 form
// chains every load's address computation behind the previous shift,
// while this form gives the CPU 16 independent loads to issue at once —
// the table probes are the family's whole cost, so the ILP is the speedup.
func (t *tabulationFunc) hash64(k flow.Key) uint64 {
	hi, lo := k.Hi, k.Lo
	h := t.tables[0][byte(hi)] ^ t.tables[8][byte(lo)]
	h ^= t.tables[1][byte(hi>>8)] ^ t.tables[9][byte(lo>>8)]
	h ^= t.tables[2][byte(hi>>16)] ^ t.tables[10][byte(lo>>16)]
	h ^= t.tables[3][byte(hi>>24)] ^ t.tables[11][byte(lo>>24)]
	h ^= t.tables[4][byte(hi>>32)] ^ t.tables[12][byte(lo>>32)]
	h ^= t.tables[5][byte(hi>>40)] ^ t.tables[13][byte(lo>>40)]
	h ^= t.tables[6][byte(hi>>48)] ^ t.tables[14][byte(lo>>48)]
	h ^= t.tables[7][byte(hi>>56)] ^ t.tables[15][byte(lo>>56)]
	return h
}

func (t *tabulationFunc) Bucket(k flow.Key) uint32 {
	return reduce(t.hash64(k), t.buckets)
}

func (t *tabulationFunc) Buckets() uint32 { return t.buckets }

// BucketTile implements TileHasher: one call derives a whole tile's
// buckets, keeping the function's 16 tables (32 KiB) hot across the tile
// instead of re-touching them per packet interleaved with other work.
func (t *tabulationFunc) BucketTile(keys []flow.Key, dst []uint32, stride int, add uint32) {
	for j := range keys {
		dst[j*stride] = add + reduce(t.hash64(keys[j]), t.buckets)
	}
}

// NewMultiplyShift creates a multiply-shift hash family seeded with seed.
// Each function multiplies the two key words by random odd 64-bit constants
// and mixes; it is cheaper than tabulation but only 2-independent.
func NewMultiplyShift(seed int64) Family {
	return &multShiftFamily{rng: rand.New(rand.NewSource(seed))}
}

type multShiftFamily struct {
	rng *rand.Rand
}

func (f *multShiftFamily) New(buckets uint32) Func {
	if buckets == 0 {
		panic("hashing: zero buckets")
	}
	return &multShiftFunc{
		a:       f.rng.Uint64() | 1,
		b:       f.rng.Uint64() | 1,
		c:       f.rng.Uint64(),
		buckets: buckets,
	}
}

type multShiftFunc struct {
	a, b, c uint64
	buckets uint32
}

func (m *multShiftFunc) Bucket(k flow.Key) uint32 {
	h := k.Hi*m.a + k.Lo*m.b + m.c
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return reduce(h, m.buckets)
}

func (m *multShiftFunc) Buckets() uint32 { return m.buckets }

// BucketTile implements TileHasher: the whole tile's buckets in one tight
// multiply-mix loop with the constants held in registers.
func (m *multShiftFunc) BucketTile(keys []flow.Key, dst []uint32, stride int, add uint32) {
	a, b, c := m.a, m.b, m.c
	for j := range keys {
		h := keys[j].Hi*a + keys[j].Lo*b + c
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		dst[j*stride] = add + reduce(h, m.buckets)
	}
}

// NewDoubleHash creates a Kirsch–Mitzenmacher double-hashing family seeded
// with seed. All functions drawn from one family instance share a single
// base hash pair (h1, h2); the i-th function returns h1(k) + i·h2(k) folded
// onto its bucket range. Consecutive functions from one instance can be
// batched behind a Deriver (see DeriverFor) so a d-stage filter computes one
// base hash per packet and derives all d buckets with an add and a multiply
// each.
func NewDoubleHash(seed int64) Family {
	rng := rand.New(rand.NewSource(seed))
	return &doubleHashFamily{base: dhBase{
		a1: rng.Uint64() | 1,
		b1: rng.Uint64() | 1,
		c1: rng.Uint64(),
		a2: rng.Uint64() | 1,
		b2: rng.Uint64() | 1,
		c2: rng.Uint64(),
	}}
}

// dhBase is the shared base hash of a double-hash family: two independent
// multiply-shift mixes of the key.
type dhBase struct {
	a1, b1, c1 uint64
	a2, b2, c2 uint64
}

// hash computes the base pair for a key. h2 is forced odd so that distinct
// stage indices always land on distinct points of the hash space (an even
// h2 would let stages collide pairwise on every key).
func (b *dhBase) hash(k flow.Key) (h1, h2 uint64) {
	h1 = mix64(k.Hi*b.a1 + k.Lo*b.b1 + b.c1)
	h2 = mix64(k.Hi*b.a2+k.Lo*b.b2+b.c2) | 1
	return h1, h2
}

// mix64 is the finalizer shared by the multiply-shift style hashes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

type doubleHashFamily struct {
	base dhBase
	next uint64 // stage index of the next derived function
}

func (f *doubleHashFamily) New(buckets uint32) Func {
	if buckets == 0 {
		panic("hashing: zero buckets")
	}
	fn := &doubleHashFunc{base: &f.base, i: f.next, buckets: buckets}
	f.next++
	return fn
}

type doubleHashFunc struct {
	base    *dhBase
	i       uint64
	buckets uint32
}

func (d *doubleHashFunc) Bucket(k flow.Key) uint32 {
	h1, h2 := d.base.hash(k)
	return reduce(h1+d.i*h2, d.buckets)
}

func (d *doubleHashFunc) Buckets() uint32 { return d.buckets }

// TileHasher is implemented by hash functions that can derive a whole
// tile's buckets in one call: BucketTile stores add + Bucket(keys[j]) at
// dst[j*stride] for every j. The strided destination lets a multistage
// filter write each stage's buckets straight into its packet-major offset
// scratch without a scatter pass, and the per-tile call amortizes the
// per-packet dispatch while keeping the function's tables cache-hot.
type TileHasher interface {
	Func
	BucketTile(keys []flow.Key, dst []uint32, stride int, add uint32)
}

// Deriver fills every stage's bucket from one base hash computation per key
// — the fast path for hash families whose functions are derived from a
// shared base.
type Deriver interface {
	// Derive fills out[j] with the same bucket the j-th underlying function's
	// Bucket(k) would return. len(out) must equal the function count the
	// Deriver was built for.
	Derive(k flow.Key, out []uint32)
	// DeriveBase is Derive plus the 64-bit base hash the buckets were
	// derived from. Callers that keep a hash table next to the filter (the
	// flow memory) reuse the base as that table's probe hash, so one hash
	// computation per packet serves both structures.
	DeriveBase(k flow.Key, out []uint32) uint64
	// Base returns just the base hash for k — the same value DeriveBase
	// returns — for paths that do not need the buckets.
	Base(k flow.Key) uint64
}

// DeriverFor returns a Deriver equivalent to calling Bucket on each of funcs
// in turn, when funcs supports single-hash derivation: all functions must be
// consecutive draws (in order) from one double-hash family instance with the
// same bucket count. It returns nil otherwise, and callers fall back to
// per-function hashing.
func DeriverFor(funcs []Func) Deriver {
	if len(funcs) == 0 {
		return nil
	}
	first, ok := funcs[0].(*doubleHashFunc)
	if !ok {
		return nil
	}
	for j, fn := range funcs {
		d, ok := fn.(*doubleHashFunc)
		if !ok || d.base != first.base || d.i != first.i+uint64(j) || d.buckets != first.buckets {
			return nil
		}
	}
	return &dhDeriver{base: first.base, i0: first.i, n: len(funcs), buckets: first.buckets}
}

type dhDeriver struct {
	base    *dhBase
	i0      uint64
	n       int
	buckets uint32
}

func (d *dhDeriver) Derive(k flow.Key, out []uint32) {
	d.DeriveBase(k, out)
}

func (d *dhDeriver) DeriveBase(k flow.Key, out []uint32) uint64 {
	h1, h2 := d.base.hash(k)
	h := h1 + d.i0*h2
	for j := 0; j < d.n; j++ {
		out[j] = reduce(h, d.buckets)
		h += h2
	}
	return h1
}

func (d *dhDeriver) Base(k flow.Key) uint64 {
	h1, _ := d.base.hash(k)
	return h1
}

// reduce maps a 64-bit hash onto [0, buckets) without the modulo bias of a
// plain remainder: it multiplies the high 32 bits of the hash by the range
// (Lemire's fast alternative to modulo).
func reduce(h uint64, buckets uint32) uint32 {
	return uint32((h >> 32) * uint64(buckets) >> 32)
}

// FamilyByName returns a seeded family by name ("tabulation",
// "multiplyshift" or "doublehash"); it returns nil for unknown names.
func FamilyByName(name string, seed int64) Family {
	switch name {
	case "tabulation":
		return NewTabulation(seed)
	case "multiplyshift":
		return NewMultiplyShift(seed)
	case "doublehash":
		return NewDoubleHash(seed)
	}
	return nil
}
