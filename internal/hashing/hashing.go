// Package hashing provides the independent hash functions required by the
// multistage filters of the paper (Section 3.2). Each filter stage hashes
// the flow ID with a hash function chosen independently of the other stages;
// Lemma 1 of the paper assumes this independence.
//
// Two families are implemented:
//
//   - tabulation hashing (3-independent, and in practice far stronger), the
//     default used by the filters, and
//   - multiply-shift hashing (2-independent, cheaper), kept for the hash
//     ablation benchmarks.
//
// Both hash the 128-bit flow key of internal/flow to a 64-bit value; Func
// values additionally fold that value onto a bucket range.
package hashing

import (
	"math/rand"

	"repro/internal/flow"
)

// Func hashes a flow key to a bucket index in [0, Buckets).
type Func interface {
	// Bucket returns the bucket index for the key.
	Bucket(k flow.Key) uint32
	// Buckets returns the size of the bucket range.
	Buckets() uint32
}

// Family produces independent hash functions on demand. A Family is seeded;
// the same seed reproduces the same sequence of functions, which the
// experiment harness relies on for reproducible runs.
type Family interface {
	// New returns the next independent hash function with the given number
	// of buckets (must be > 0).
	New(buckets uint32) Func
}

// Tabulation implements tabulation hashing: the 16 bytes of the key index 16
// random tables of 64-bit words which are XORed together. Lookup tables make
// it both fast and strongly universal.
type Tabulation struct {
	tables [16][256]uint64
}

// NewTabulation creates a tabulation hash function family seeded with seed.
func NewTabulation(seed int64) Family {
	return &tabulationFamily{rng: rand.New(rand.NewSource(seed))}
}

type tabulationFamily struct {
	rng *rand.Rand
}

func (f *tabulationFamily) New(buckets uint32) Func {
	if buckets == 0 {
		panic("hashing: zero buckets")
	}
	t := &tabulationFunc{buckets: buckets}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = f.rng.Uint64()
		}
	}
	return t
}

type tabulationFunc struct {
	tables  [16][256]uint64
	buckets uint32
}

func (t *tabulationFunc) Bucket(k flow.Key) uint32 {
	var h uint64
	hi, lo := k.Hi, k.Lo
	for i := 0; i < 8; i++ {
		h ^= t.tables[i][byte(hi)]
		hi >>= 8
		h ^= t.tables[8+i][byte(lo)]
		lo >>= 8
	}
	return reduce(h, t.buckets)
}

func (t *tabulationFunc) Buckets() uint32 { return t.buckets }

// NewMultiplyShift creates a multiply-shift hash family seeded with seed.
// Each function multiplies the two key words by random odd 64-bit constants
// and mixes; it is cheaper than tabulation but only 2-independent.
func NewMultiplyShift(seed int64) Family {
	return &multShiftFamily{rng: rand.New(rand.NewSource(seed))}
}

type multShiftFamily struct {
	rng *rand.Rand
}

func (f *multShiftFamily) New(buckets uint32) Func {
	if buckets == 0 {
		panic("hashing: zero buckets")
	}
	return &multShiftFunc{
		a:       f.rng.Uint64() | 1,
		b:       f.rng.Uint64() | 1,
		c:       f.rng.Uint64(),
		buckets: buckets,
	}
}

type multShiftFunc struct {
	a, b, c uint64
	buckets uint32
}

func (m *multShiftFunc) Bucket(k flow.Key) uint32 {
	h := k.Hi*m.a + k.Lo*m.b + m.c
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return reduce(h, m.buckets)
}

func (m *multShiftFunc) Buckets() uint32 { return m.buckets }

// reduce maps a 64-bit hash onto [0, buckets) without the modulo bias of a
// plain remainder: it multiplies the high 32 bits of the hash by the range
// (Lemire's fast alternative to modulo).
func reduce(h uint64, buckets uint32) uint32 {
	return uint32((h >> 32) * uint64(buckets) >> 32)
}

// FamilyByName returns a seeded family by name ("tabulation" or
// "multiplyshift"); it returns nil for unknown names.
func FamilyByName(name string, seed int64) Family {
	switch name {
	case "tabulation":
		return NewTabulation(seed)
	case "multiplyshift":
		return NewMultiplyShift(seed)
	}
	return nil
}
