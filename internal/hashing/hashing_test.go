package hashing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

var families = []struct {
	name string
	mk   func(seed int64) Family
}{
	{"tabulation", NewTabulation},
	{"multiplyshift", NewMultiplyShift},
	{"doublehash", NewDoubleHash},
}

func TestBucketInRange(t *testing.T) {
	for _, fam := range families {
		f := fam.mk(1).New(1000)
		check := func(hi, lo uint64) bool {
			b := f.Bucket(flow.Key{Hi: hi, Lo: lo})
			return b < f.Buckets()
		}
		if err := quick.Check(check, nil); err != nil {
			t.Errorf("%s: %v", fam.name, err)
		}
	}
}

func TestDeterministic(t *testing.T) {
	for _, fam := range families {
		f1 := fam.mk(42).New(4096)
		f2 := fam.mk(42).New(4096)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			k := flow.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
			if f1.Bucket(k) != f2.Bucket(k) {
				t.Fatalf("%s: same seed produced different functions", fam.name)
			}
		}
	}
}

func TestIndependentFunctionsDiffer(t *testing.T) {
	// Two functions drawn from the same family must disagree on most keys;
	// identical functions would defeat the multistage filter's stages.
	for _, fam := range families {
		family := fam.mk(3)
		f1, f2 := family.New(1<<20), family.New(1<<20)
		rng := rand.New(rand.NewSource(9))
		same := 0
		const n = 10000
		for i := 0; i < n; i++ {
			k := flow.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
			if f1.Bucket(k) == f2.Bucket(k) {
				same++
			}
		}
		if same > n/100 {
			t.Errorf("%s: %d/%d collisions between supposedly independent functions", fam.name, same, n)
		}
	}
}

// TestUniformity checks via a chi-squared statistic that keys spread evenly
// over buckets. With b=64 buckets and n=64000 keys the chi-squared statistic
// has 63 degrees of freedom; values above 120 are astronomically unlikely
// for a uniform hash.
func TestUniformity(t *testing.T) {
	for _, fam := range families {
		const buckets = 64
		const n = 64000
		f := fam.mk(11).New(buckets)
		counts := make([]int, buckets)
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < n; i++ {
			counts[f.Bucket(flow.Key{Hi: rng.Uint64(), Lo: rng.Uint64()})]++
		}
		expected := float64(n) / buckets
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if chi2 > 120 {
			t.Errorf("%s: chi-squared %.1f too high for uniform hashing", fam.name, chi2)
		}
	}
}

// TestLowEntropyKeys exercises the structured keys real traffic produces
// (sequential IPs, tiny AS numbers) where weak hashes cluster.
func TestLowEntropyKeys(t *testing.T) {
	for _, fam := range families {
		const buckets = 128
		const n = 12800
		f := fam.mk(17).New(buckets)
		counts := make([]int, buckets)
		for i := 0; i < n; i++ {
			// AS-pair style keys: only the low 32 bits vary, and slowly.
			counts[f.Bucket(flow.Key{Lo: uint64(i)})]++
		}
		expected := float64(n) / buckets
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 127 degrees of freedom; allow generous slack but catch clustering.
		if chi2 > 220 {
			t.Errorf("%s: chi-squared %.1f on low-entropy keys", fam.name, chi2)
		}
	}
}

func TestReduceCoversRange(t *testing.T) {
	// The high and low ends of the hash space must map to the first and last
	// buckets respectively.
	if got := reduce(0, 10); got != 0 {
		t.Errorf("reduce(0) = %d", got)
	}
	if got := reduce(math.MaxUint64, 10); got != 9 {
		t.Errorf("reduce(max) = %d", got)
	}
}

// TestDeriverMatchesBuckets: the single-base-hash derivation must agree
// exactly with calling Bucket on every derived function — the filter's fast
// path and slow path may never disagree on where a key lands.
func TestDeriverMatchesBuckets(t *testing.T) {
	family := NewDoubleHash(23)
	funcs := make([]Func, 4)
	for i := range funcs {
		funcs[i] = family.New(4096)
	}
	d := DeriverFor(funcs)
	if d == nil {
		t.Fatal("DeriverFor returned nil for consecutive double-hash functions")
	}
	out := make([]uint32, len(funcs))
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 10000; i++ {
		k := flow.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		d.Derive(k, out)
		for j, fn := range funcs {
			if got := fn.Bucket(k); got != out[j] {
				t.Fatalf("stage %d: Derive gave %d, Bucket gave %d", j, out[j], got)
			}
		}
	}
}

// TestDeriverForRejectsIneligible: families without a shared base (or
// mismatched function sets) must fall back to per-function hashing.
func TestDeriverForRejectsIneligible(t *testing.T) {
	tab := NewTabulation(1)
	if DeriverFor([]Func{tab.New(64), tab.New(64)}) != nil {
		t.Error("DeriverFor accepted tabulation functions")
	}
	if DeriverFor(nil) != nil {
		t.Error("DeriverFor accepted an empty set")
	}
	// Functions from two different double-hash family instances share no
	// base hash.
	f1 := NewDoubleHash(1).New(64)
	f2 := NewDoubleHash(2).New(64)
	if DeriverFor([]Func{f1, f2}) != nil {
		t.Error("DeriverFor accepted functions from different families")
	}
	// Out-of-order draws break the i0+j stage indexing.
	fam := NewDoubleHash(3)
	a, b := fam.New(64), fam.New(64)
	if DeriverFor([]Func{b, a}) != nil {
		t.Error("DeriverFor accepted out-of-order functions")
	}
	// Mismatched bucket counts cannot share a derivation.
	fam2 := NewDoubleHash(4)
	if DeriverFor([]Func{fam2.New(64), fam2.New(128)}) != nil {
		t.Error("DeriverFor accepted mismatched bucket counts")
	}
}

// TestDoubleHashStagesDistinct: with h2 forced odd, two derived stages may
// collide on a key no more often than chance.
func TestDoubleHashStagesDistinct(t *testing.T) {
	fam := NewDoubleHash(31)
	f1, f2 := fam.New(1<<20), fam.New(1<<20)
	rng := rand.New(rand.NewSource(37))
	same := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := flow.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		if f1.Bucket(k) == f2.Bucket(k) {
			same++
		}
	}
	if same > n/100 {
		t.Errorf("%d/%d stage collisions, want ~n/2^20", same, n)
	}
}

func TestFamilyByName(t *testing.T) {
	for _, name := range []string{"tabulation", "multiplyshift", "doublehash"} {
		if FamilyByName(name, 1) == nil {
			t.Errorf("FamilyByName(%q) = nil", name)
		}
	}
	if FamilyByName("bogus", 1) != nil {
		t.Error("FamilyByName of unknown name should be nil")
	}
}

func TestZeroBucketsPanics(t *testing.T) {
	for _, fam := range families {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New(0) did not panic", fam.name)
				}
			}()
			fam.mk(1).New(0)
		}()
	}
}

func BenchmarkTabulation(b *testing.B) {
	f := NewTabulation(1).New(4096)
	k := flow.Key{Hi: 0x0a00000100000001, Lo: 0x1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Lo++
		_ = f.Bucket(k)
	}
}

func BenchmarkMultiplyShift(b *testing.B) {
	f := NewMultiplyShift(1).New(4096)
	k := flow.Key{Hi: 0x0a00000100000001, Lo: 0x1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Lo++
		_ = f.Bucket(k)
	}
}

// BenchmarkDoubleHashDerive4 measures deriving all four stage buckets of a
// packet from one base hash — the per-packet hashing cost of a d=4 filter on
// the double-hash fast path (compare 4× BenchmarkTabulation).
func BenchmarkDoubleHashDerive4(b *testing.B) {
	fam := NewDoubleHash(1)
	funcs := make([]Func, 4)
	for i := range funcs {
		funcs[i] = fam.New(4096)
	}
	d := DeriverFor(funcs)
	if d == nil {
		b.Fatal("no deriver")
	}
	out := make([]uint32, 4)
	k := flow.Key{Hi: 0x0a00000100000001, Lo: 0x1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Lo++
		d.Derive(k, out)
	}
}

// TestUnrolledTabulationMatchesReference pins the unrolled tabulation hash
// (16 independent table loads) to an independent rolling-loop
// reimplementation of the textbook algorithm: shift a byte off each key
// word per iteration and XOR the indexed table words. Bit-identical output
// means the unroll is purely a scheduling change — every downstream
// consumer (filter buckets, FP rates, the d∈{2,4} ablation) is untouched.
func TestUnrolledTabulationMatchesReference(t *testing.T) {
	f := NewTabulation(99).New(1 << 20).(*tabulationFunc)
	ref := func(k flow.Key) uint64 {
		var h uint64
		hi, lo := k.Hi, k.Lo
		for i := 0; i < 8; i++ {
			h ^= f.tables[i][byte(hi)]
			h ^= f.tables[8+i][byte(lo)]
			hi >>= 8
			lo >>= 8
		}
		return h
	}
	check := func(hi, lo uint64) bool {
		k := flow.Key{Hi: hi, Lo: lo}
		return f.hash64(k) == ref(k)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	// Edge keys the random sample may miss.
	for _, k := range []flow.Key{{}, {Hi: ^uint64(0), Lo: ^uint64(0)}, {Hi: 1}, {Lo: 1 << 63}} {
		if f.hash64(k) != ref(k) {
			t.Errorf("key %+v: unrolled %#x != reference %#x", k, f.hash64(k), ref(k))
		}
	}
}

// TestBucketTileMatchesBucket pins every TileHasher implementation to its
// own scalar Bucket across strides and bases: the tile path is the fused
// kernel's hash phase, so a divergence would silently corrupt filter
// counters.
func TestBucketTileMatchesBucket(t *testing.T) {
	for _, fam := range families {
		f := fam.mk(3).New(977)
		th, ok := f.(TileHasher)
		if !ok {
			continue // doublehash funcs derive via Deriver, not BucketTile
		}
		rng := rand.New(rand.NewSource(11))
		keys := make([]flow.Key, 33)
		for i := range keys {
			keys[i] = flow.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		}
		for _, stride := range []int{1, 2, 4} {
			for _, add := range []uint32{0, 977, 5 * 977} {
				dst := make([]uint32, len(keys)*stride)
				th.BucketTile(keys, dst, stride, add)
				for j, k := range keys {
					if want := add + f.Bucket(k); dst[j*stride] != want {
						t.Errorf("%s stride=%d add=%d key %d: tile %d != scalar %d",
							fam.name, stride, add, j, dst[j*stride], want)
					}
				}
			}
		}
	}
}
