//go:build !race

// The race detector changes the allocator's behavior, so the allocation
// guard only exists in non-race builds; CI runs it in a dedicated step.

package pipeline

import (
	"testing"

	"repro/internal/flow"
)

// TestMixedBurstSizesZeroAllocs replays bursts of mixed sizes through the
// producer's PacketBatch and asserts the steady-state loop stays
// allocation-free: per-lane batch buffers are fixed-capacity and recycled
// through the free lists, so neither varying burst sizes nor batch handover
// may allocate. (AllocsPerRun reads global malloc counters, so lane worker
// goroutines draining the queues are covered too.)
func TestMixedBurstSizesZeroAllocs(t *testing.T) {
	p, err := New(Config{
		Shards: 4, QueueDepth: 256, BatchSize: 64,
		NewAlgorithm: shConfig(4096),
		Definition:   flow.FiveTuple{},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const maxBurst = 200
	pkts := make([]flow.Packet, maxBurst)
	for i := range pkts {
		pkts[i] = flow.Packet{Size: 1000, SrcIP: uint32(i * 31), DstIP: 2, Proto: 6}
	}
	// Warm-up: circulate every lane's buffers through the free lists once.
	for i := 0; i < 50; i++ {
		p.PacketBatch(pkts)
	}
	mixed := []int{maxBurst, 3, 150, 1, 64, 199, 7, maxBurst, 33}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		n := mixed[i%len(mixed)]
		i++
		p.PacketBatch(pkts[:n])
	})
	if allocs != 0 {
		t.Fatalf("mixed-size PacketBatch allocates %.1f allocs/op, must be 0", allocs)
	}
}

// TestReportPathArenaAllocs bounds the per-interval allocation budget of the
// report path. Lane-side interval closing is allocation-free once warm: each
// lane builds its reply into its persistent report arena (core.AppendEstimates)
// and answers on its persistent reply channel. What remains on the producer
// side is the retained output itself — the merged estimate slice, the
// per-shard count slice, the sort's swapper closures and the amortized growth
// of the report history — a small constant independent of lane count. The
// budget of 8 would be blown immediately by a regression to per-interval
// reply channels or per-interval lane report slices (that path cost
// 2×lanes+1 extra allocations every interval).
func TestReportPathArenaAllocs(t *testing.T) {
	p, err := New(Config{
		Shards: 4, QueueDepth: 64, BatchSize: 64,
		NewAlgorithm: shConfig(4096),
		Definition:   flow.FiveTuple{},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pkts := make([]flow.Packet, 128)
	for i := range pkts {
		pkts[i] = flow.Packet{Size: 1000, SrcIP: uint32(i * 31), DstIP: 2, Proto: 6}
	}
	// Warm: circulate buffers and grow every lane's arena once.
	p.PacketBatch(pkts)
	p.EndInterval(0)
	interval := 1
	allocs := testing.AllocsPerRun(100, func() {
		p.PacketBatch(pkts)
		p.EndInterval(interval)
		interval++
	})
	if allocs > 8 {
		t.Fatalf("interval report path allocates %.1f allocs/op, budget is 8", allocs)
	}
}
