package pipeline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/sampleandhold"
	"repro/internal/faultinject"
	"repro/internal/flow"
)

// gated wraps an algorithm so its first Process signals entered and then
// blocks until release is closed. Overload tests use it to wedge a lane
// worker deterministically: with the worker stuck mid-batch the queue fills
// exactly as scripted, no timing involved. Embedding the interface (not a
// concrete type) means gated does not implement core.BatchAlgorithm, so the
// lane falls back to per-packet Process and the gate triggers on the first
// packet.
type gated struct {
	core.Algorithm
	entered chan struct{} // buffered 1; signaled on first Process
	release chan struct{}
	first   bool
}

func (g *gated) Process(k flow.Key, size uint32) {
	if !g.first {
		g.first = true
		g.entered <- struct{}{}
		<-g.release
	}
	g.Algorithm.Process(k, size)
}

// overloadPipeline builds a single-lane pipeline (Shards=1 makes queue
// arithmetic deterministic) whose worker wedges on its first packet until
// release is closed. QueueDepth 1, BatchSize 4.
func overloadPipeline(t *testing.T, policy OverloadPolicy) (*Pipeline, *gated, *sampleandhold.SampleAndHold) {
	t.Helper()
	sh, err := sampleandhold.New(sampleandhold.Config{
		Entries: 1 << 12, Threshold: 10, Oversampling: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := &gated{
		Algorithm: sh,
		entered:   make(chan struct{}, 1),
		release:   make(chan struct{}),
	}
	p, err := New(Config{
		Shards:     1,
		QueueDepth: 1,
		BatchSize:  4,
		Overload:   policy,
		NewAlgorithm: func(int) (core.Algorithm, error) {
			return g, nil
		},
		Definition: flow.FiveTuple{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, g, sh
}

// feedBatches pushes batches first..last inclusive, each a full batch
// (BatchSize=4) of distinct flows; batch b carries flows b*100..b*100+3,
// each packet 100 bytes.
func feedBatches(p *Pipeline, first, last int) {
	pk := flow.Packet{Size: 100, Proto: 6}
	for b := first; b <= last; b++ {
		for j := 0; j < 4; j++ {
			pk.SrcIP = uint32(b*100 + j)
			p.Packet(&pk)
		}
	}
}

// reportedFlows collects, for each probed SrcIP, whether its flow made the
// final report.
func reportedFlows(p *Pipeline, srcIPs ...uint32) map[uint32]bool {
	def := flow.FiveTuple{}
	want := make(map[flow.Key]uint32, len(srcIPs))
	for _, ip := range srcIPs {
		pk := flow.Packet{Size: 100, Proto: 6, SrcIP: ip}
		want[def.Key(&pk)] = ip
	}
	got := make(map[uint32]bool)
	for _, r := range p.Reports() {
		for _, e := range r.Estimates {
			if ip, ok := want[e.Key]; ok {
				got[ip] = true
			}
		}
	}
	return got
}

// TestDropNewestCounters wedges the lane (batch 0 in-processing, batch 1
// queued) and feeds 6 more batches: every one of them must be shed, newest
// first, with exact counters, and the survivors are the oldest traffic.
func TestDropNewestCounters(t *testing.T) {
	p, g, _ := overloadPipeline(t, DropNewest)
	feedBatches(p, 0, 0) // batch 0 handed over
	<-g.entered          // worker is now wedged inside batch 0
	feedBatches(p, 1, 7) // batch 1 fills the queue; 2..7 shed
	close(g.release)
	p.EndInterval(0)
	p.Close()

	l := p.Stats().Lanes[0]
	if l.ShedBatches != 6 || l.ShedPackets != 6*4 || l.ShedBytes != 6*4*100 {
		t.Fatalf("shed = %d batches / %d packets / %d bytes, want 6/24/2400",
			l.ShedBatches, l.ShedPackets, l.ShedBytes)
	}
	if l.Packets != 2*4 {
		t.Fatalf("handed over %d packets, want 8", l.Packets)
	}
	// Conservation: fed == delivered + shed.
	if l.Packets+l.ShedPackets != 8*4 {
		t.Fatalf("conservation: %d delivered + %d shed != 32 fed", l.Packets, l.ShedPackets)
	}
	got := reportedFlows(p, 0, 100, 700)
	for _, want := range []uint32{0, 100} { // oldest batches survive
		if !got[want] {
			t.Fatalf("flow %d from a delivered batch missing from report", want)
		}
	}
	if got[700] {
		t.Fatal("flow from a shed batch appeared in the report")
	}
}

// TestDropOldestCounters is the mirror image: the queued batches are
// evicted, the freshest batch survives.
func TestDropOldestCounters(t *testing.T) {
	p, g, _ := overloadPipeline(t, DropOldest)
	// Batch 0 wedges the worker; batch 1 queues; each of 2..7 then evicts
	// its predecessor, so only batch 7 is still queued at the end.
	feedBatches(p, 0, 0)
	<-g.entered
	feedBatches(p, 1, 7)
	close(g.release)
	p.EndInterval(0)
	p.Close()

	l := p.Stats().Lanes[0]
	if l.ShedBatches != 6 || l.ShedPackets != 6*4 {
		t.Fatalf("shed = %d batches / %d packets, want 6/24", l.ShedBatches, l.ShedPackets)
	}
	got := reportedFlows(p, 0, 100, 300, 700)
	for _, want := range []uint32{0, 700} { // wedged batch + newest batch
		if !got[want] {
			t.Fatalf("flow %d missing from report", want)
		}
	}
	if got[100] || got[300] {
		t.Fatal("evicted batch's flows appeared in the report")
	}
}

// TestDegradeCounters: under overload with a slow (delayed) lane, Degrade
// must keep the pipeline live and the packet accounting exact:
// every fed packet is either processed by the algorithm or counted as
// degraded-dropped — nothing vanishes.
func TestDegradeCounters(t *testing.T) {
	sh, err := sampleandhold.New(sampleandhold.Config{
		Entries: 1 << 12, Threshold: 10, Oversampling: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := faultinject.Wrap(sh, faultinject.Schedule{
		DelayEveryPackets: 1, Delay: 200 * time.Microsecond,
	})
	p, err := New(Config{
		Shards: 1, QueueDepth: 1, BatchSize: 4,
		Overload: Degrade, DegradeFraction: 0.5,
		NewAlgorithm: func(int) (core.Algorithm, error) { return slow, nil },
		Definition:   flow.FiveTuple{},
	})
	if err != nil {
		t.Fatal(err)
	}
	const fed = 200 * 4
	feedBatches(p, 0, 199)
	p.EndInterval(0)
	p.Close()

	l := p.Stats().Lanes[0]
	if l.DegradedPackets == 0 {
		t.Fatal("no degradation despite a lane 800x slower than the producer")
	}
	if l.ShedPackets != 0 {
		t.Fatalf("Degrade shed %d packets; it must thin, not shed", l.ShedPackets)
	}
	// Exact conservation: fed == delivered + degraded-dropped, and the
	// algorithm processed exactly what was delivered.
	if l.Packets+l.DegradedPackets != fed {
		t.Fatalf("conservation: %d delivered + %d degraded != %d fed",
			l.Packets, l.DegradedPackets, fed)
	}
	if got := sh.Mem().Packets; got != l.Packets {
		t.Fatalf("algorithm processed %d packets, telemetry says %d delivered", got, l.Packets)
	}
	if l.DegradedBytes != l.DegradedPackets*100 {
		t.Fatalf("degraded bytes %d inconsistent with %d packets of 100B",
			l.DegradedBytes, l.DegradedPackets)
	}
}

// TestBlockPolicyIsLossless: the default policy never sheds or degrades,
// even at sustained overload against a delayed lane.
func TestBlockPolicyIsLossless(t *testing.T) {
	sh, err := sampleandhold.New(sampleandhold.Config{
		Entries: 1 << 12, Threshold: 10, Oversampling: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := faultinject.Wrap(sh, faultinject.Schedule{
		DelayEveryPackets: 4, Delay: 100 * time.Microsecond,
	})
	p, err := New(Config{
		Shards: 1, QueueDepth: 1, BatchSize: 4,
		NewAlgorithm: func(int) (core.Algorithm, error) { return slow, nil },
		Definition:   flow.FiveTuple{},
	})
	if err != nil {
		t.Fatal(err)
	}
	const fed = 100 * 4
	feedBatches(p, 0, 99)
	p.EndInterval(0)
	p.Close()

	l := p.Stats().Lanes[0]
	if l.ShedPackets != 0 || l.DegradedPackets != 0 {
		t.Fatalf("Block policy lost traffic: shed=%d degraded=%d", l.ShedPackets, l.DegradedPackets)
	}
	if l.Packets != fed {
		t.Fatalf("delivered %d packets, want all %d", l.Packets, fed)
	}
	if l.FlushStalls == 0 {
		t.Fatal("sustained overload recorded no flush stalls")
	}
	if got := sh.Mem().Packets; got != fed {
		t.Fatalf("algorithm processed %d packets, want %d", got, fed)
	}
}

// TestOverloadConfigValidation covers the new Config fields.
func TestOverloadConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Shards: 1, QueueDepth: 1,
			NewAlgorithm: func(int) (core.Algorithm, error) {
				return sampleandhold.New(sampleandhold.Config{
					Entries: 16, Threshold: 10, Oversampling: 10,
				})
			},
			Definition: flow.FiveTuple{},
		}
	}
	bad := base()
	bad.Overload = OverloadPolicy(42)
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown overload policy accepted")
	}
	bad = base()
	bad.DegradeFraction = 1.0
	if err := bad.Validate(); err == nil {
		t.Fatal("DegradeFraction 1.0 accepted (would keep everything forever)")
	}
	bad = base()
	bad.DegradeFraction = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative DegradeFraction accepted")
	}
}

// TestOverloadPolicyByName round-trips the CLI spellings.
func TestOverloadPolicyByName(t *testing.T) {
	for _, want := range []OverloadPolicy{Block, DropNewest, DropOldest, Degrade} {
		got, err := OverloadPolicyByName(want.String())
		if err != nil || got != want {
			t.Fatalf("round-trip %v: got %v, err %v", want, got, err)
		}
	}
	if got, err := OverloadPolicyByName(""); err != nil || got != Block {
		t.Fatalf("empty name: got %v, err %v; want Block", got, err)
	}
	if _, err := OverloadPolicyByName("yolo"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestPressureDegradesWithoutQueueOverflow: export-path backpressure (the
// reliable spool above its high-water mark) must make the Degrade policy
// thin batches at the measurement input even when the lane queues are
// empty — and must be ignored by every other policy.
func TestPressureDegradesWithoutQueueOverflow(t *testing.T) {
	build := func(policy OverloadPolicy, pressure bool) *Pipeline {
		t.Helper()
		sh, err := sampleandhold.New(sampleandhold.Config{
			Entries: 1 << 12, Threshold: 10, Oversampling: 10, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{
			// QueueDepth exceeds the total batch count, so the lane queue can
			// never fill: any degradation is the pressure probe's doing.
			Shards: 1, QueueDepth: 256, BatchSize: 4,
			Overload: policy, DegradeFraction: 0.5,
			NewAlgorithm: func(int) (core.Algorithm, error) { return sh, nil },
			Definition:   flow.FiveTuple{},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.SetPressure(func() bool { return pressure })
		return p
	}

	// Pressure high, fast lane: batches are thinned, nothing is shed, and
	// accounting stays exact.
	p := build(Degrade, true)
	const fed = 200 * 4
	feedBatches(p, 0, 199)
	p.EndInterval(0)
	p.Close()
	l := p.Stats().Lanes[0]
	if l.DegradedPackets == 0 {
		t.Fatal("no degradation despite export-path pressure")
	}
	if l.ShedPackets != 0 {
		t.Fatalf("pressure shed %d packets; it must thin, not shed", l.ShedPackets)
	}
	if l.Packets+l.DegradedPackets != fed {
		t.Fatalf("conservation: %d delivered + %d degraded != %d fed",
			l.Packets, l.DegradedPackets, fed)
	}

	// Pressure released: nothing is degraded.
	p = build(Degrade, false)
	feedBatches(p, 0, 199)
	p.EndInterval(0)
	p.Close()
	if l := p.Stats().Lanes[0]; l.DegradedPackets != 0 {
		t.Fatalf("degraded %d packets with pressure released", l.DegradedPackets)
	}

	// Pressure high under Block: the probe is Degrade-only.
	p = build(Block, true)
	feedBatches(p, 0, 199)
	p.EndInterval(0)
	p.Close()
	if l := p.Stats().Lanes[0]; l.DegradedPackets != 0 || l.Packets != fed {
		t.Fatalf("Block policy consulted the pressure probe: %+v", l)
	}
}
