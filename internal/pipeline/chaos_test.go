package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/core/sampleandhold"
	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/telemetry"
)

// chaosConfig builds a pipeline whose panicShard lane panics after
// panicAt packets (processed by that lane), with every inner algorithm
// captured so tests can audit exactly what was processed. Only the first
// instance built for panicShard is faulty, so a supervised restart gets a
// clean replacement.
func chaosConfig(shards, queueDepth, batchSize int, panicShard int, panicAt uint64, restart bool) (Config, *[]*sampleandhold.SampleAndHold, *sync.Mutex) {
	var mu sync.Mutex
	var inners []*sampleandhold.SampleAndHold
	wrapped := false
	cfg := Config{
		Shards:         shards,
		QueueDepth:     queueDepth,
		BatchSize:      batchSize,
		RestartOnPanic: restart,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			sh, err := sampleandhold.New(sampleandhold.Config{
				Entries: 1 << 16, Threshold: 10, Oversampling: 10, Seed: int64(shard),
			})
			if err != nil {
				return nil, err
			}
			mu.Lock()
			defer mu.Unlock()
			inners = append(inners, sh)
			if shard == panicShard && !wrapped {
				wrapped = true
				return faultinject.Wrap(sh, faultinject.Schedule{PanicAtPacket: panicAt}), nil
			}
			return sh, nil
		},
		Definition: flow.FiveTuple{},
		Seed:       1,
	}
	return cfg, &inners, &mu
}

// TestLanePanicNeverDeadlocks is the headline chaos test: one lane panics
// mid-interval while the producer sustains a volume of 2x the total queue
// capacity. The pipeline must keep accepting packets, EndInterval and Close
// must return, the healthy lanes must keep reporting, and the quarantined
// lane's shed accounting must balance against what its algorithm processed.
func TestLanePanicNeverDeadlocks(t *testing.T) {
	const (
		shards     = 4
		queueDepth = 8
		batchSize  = 16
		panicAt    = 100
	)
	cfg, _, _ := chaosConfig(shards, queueDepth, batchSize, 1, panicAt, false)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// 2x the whole pipeline's queue capacity, in packets.
	total := 2 * shards * queueDepth * batchSize
	pk := flow.Packet{Size: 100, DstIP: 9, Proto: 6}
	for i := 0; i < total; i++ {
		pk.SrcIP = uint32(i)
		p.Packet(&pk)
	}
	p.EndInterval(0) // must return despite the quarantined lane

	// More traffic after the failure: still must not deadlock.
	for i := 0; i < total; i++ {
		pk.SrcIP = uint32(i)
		p.Packet(&pk)
	}
	p.EndInterval(1)
	p.Close() // must return

	s := p.Stats()
	quarantined := -1
	for i, l := range s.Lanes {
		if l.Health == telemetry.LaneQuarantined {
			if quarantined != -1 {
				t.Fatalf("more than one lane quarantined: %d and %d", quarantined, i)
			}
			quarantined = i
		}
	}
	if quarantined == -1 {
		t.Fatal("no lane quarantined after scheduled panic")
	}
	ql := s.Lanes[quarantined]
	if ql.Panics != 1 {
		t.Fatalf("quarantined lane recorded %d panics, want 1", ql.Panics)
	}
	if ql.ShedPackets == 0 {
		t.Fatal("quarantined lane shed nothing")
	}

	// Conservation: every packet handed to the lane was either processed by
	// the algorithm or shed. The batch that panicked is counted entirely as
	// shed even though its first packets were processed, so processed+shed
	// exceeds handed-over by exactly that overlap: 0 <= overlap < batch.
	// The algorithm saw panicAt-1 packets (the injector panics before the
	// Nth reaches it).
	processed := uint64(panicAt - 1)
	overlap := processed + ql.ShedPackets - ql.Packets
	if overlap >= batchSize {
		t.Fatalf("shed accounting off: handed=%d processed=%d shed=%d (overlap %d, want < %d)",
			ql.Packets, processed, ql.ShedPackets, overlap, batchSize)
	}

	// Healthy lanes kept reporting in both intervals.
	if len(p.Reports()) != 2 {
		t.Fatalf("got %d reports, want 2", len(p.Reports()))
	}
	for iv, counts := range p.ShardCounts() {
		for i, c := range counts {
			if i == quarantined {
				if iv > 0 && c != 0 {
					t.Fatalf("interval %d: quarantined lane contributed %d estimates", iv, c)
				}
				continue
			}
			if c == 0 {
				t.Fatalf("interval %d: healthy lane %d reported nothing", iv, i)
			}
		}
	}

	// Health grading: one of four lanes quarantined -> degraded.
	if st, reason := s.Health(); st != telemetry.HealthDegraded {
		t.Fatalf("health = %v (%s), want degraded", st, reason)
	}
}

// TestEndIntervalPanicSynthesizesEmptyReply: a panic during the flush
// itself (EndInterval on the lane algorithm) must not strand the producer;
// the supervisor replies with an empty report.
func TestEndIntervalPanicSynthesizesEmptyReply(t *testing.T) {
	cfg := Config{
		Shards: 2, QueueDepth: 4, BatchSize: 8,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			sh, err := sampleandhold.New(sampleandhold.Config{
				Entries: 1024, Threshold: 10, Oversampling: 10, Seed: int64(shard),
			})
			if err != nil {
				return nil, err
			}
			if shard == 0 {
				return faultinject.Wrap(sh, faultinject.Schedule{PanicAtInterval: 1}), nil
			}
			return sh, nil
		},
		Definition: flow.FiveTuple{},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pk := flow.Packet{Size: 100, Proto: 6}
	for i := 0; i < 500; i++ {
		pk.SrcIP = uint32(i)
		p.Packet(&pk)
	}
	p.EndInterval(0) // lane 0 panics in EndInterval; must still return

	counts := p.ShardCounts()[0]
	if counts[0] != 0 {
		t.Fatalf("panicking lane contributed %d estimates, want 0", counts[0])
	}
	if counts[1] == 0 {
		t.Fatal("healthy lane reported nothing")
	}
	if h := p.Stats().Lanes[0].Health; h != telemetry.LaneQuarantined {
		t.Fatalf("lane 0 health = %v, want quarantined", h)
	}
}

// TestRestartOnPanic: with RestartOnPanic the lane comes back with a fresh
// algorithm instance and keeps measuring.
func TestRestartOnPanic(t *testing.T) {
	const panicAt = 50
	cfg, inners, mu := chaosConfig(1, 8, 8, 0, panicAt, true)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pk := flow.Packet{Size: 100, Proto: 6}
	for i := 0; i < 1000; i++ {
		pk.SrcIP = uint32(i % 100)
		p.Packet(&pk)
	}
	p.EndInterval(0)
	p.Close()

	s := p.Stats()
	l := s.Lanes[0]
	if l.Health != telemetry.LaneRestarted {
		t.Fatalf("lane health = %v, want restarted", l.Health)
	}
	if l.Restarts != 1 || l.Panics != 1 {
		t.Fatalf("restarts=%d panics=%d, want 1/1", l.Restarts, l.Panics)
	}
	// The replacement instance (built by the restart) processed the
	// traffic after the failure.
	mu.Lock()
	defer mu.Unlock()
	if len(*inners) != 2 {
		t.Fatalf("NewAlgorithm called %d times, want 2 (initial + restart)", len(*inners))
	}
	if (*inners)[1].Mem().Packets == 0 {
		t.Fatal("restarted instance processed nothing")
	}
	if len(p.Reports()) != 1 || len(p.Reports()[0].Estimates) == 0 {
		t.Fatal("restarted lane produced no estimates")
	}
	// A restarted (but serving) pipeline grades degraded, not unhealthy.
	if st, _ := s.Health(); st != telemetry.HealthDegraded {
		t.Fatalf("health = %v, want degraded", st)
	}
}

// TestCloseAfterLanePanic: Close must terminate when called right after a
// lane failure, without an intervening EndInterval.
func TestCloseAfterLanePanic(t *testing.T) {
	cfg, _, _ := chaosConfig(2, 4, 8, 0, 10, false)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pk := flow.Packet{Size: 100, Proto: 6}
	for i := 0; i < 2000; i++ {
		pk.SrcIP = uint32(i)
		p.Packet(&pk)
	}
	p.Close() // must return; the deadline is the test timeout
	if p.Stats().Lanes[0].Panics != 1 {
		t.Fatal("panic not recorded")
	}
}

// TestAllLanesQuarantinedIsUnhealthy: a single-lane pipeline whose lane
// dies grades unhealthy, not merely degraded.
func TestAllLanesQuarantinedIsUnhealthy(t *testing.T) {
	cfg, _, _ := chaosConfig(1, 4, 8, 0, 10, false)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pk := flow.Packet{Size: 100, Proto: 6}
	for i := 0; i < 200; i++ {
		pk.SrcIP = uint32(i)
		p.Packet(&pk)
	}
	p.EndInterval(0)
	if st, reason := p.Health(); st != telemetry.HealthUnhealthy {
		t.Fatalf("health = %v (%s), want unhealthy", st, reason)
	}
}

// TestConcurrentStatsDuringQuarantine hammers Stats and Health from other
// goroutines while a lane panics, traffic flows, and the interval closes —
// the -race run proves snapshotting never races with supervision.
func TestConcurrentStatsDuringQuarantine(t *testing.T) {
	cfg, _, _ := chaosConfig(4, 8, 16, 2, 200, false)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := p.Stats()
					_ = s.Packets()
					_, _ = s.Health()
				}
			}
		}()
	}

	pk := flow.Packet{Size: 100, Proto: 6}
	for iv := 0; iv < 3; iv++ {
		for i := 0; i < 5000; i++ {
			pk.SrcIP = uint32(i)
			p.Packet(&pk)
		}
		p.EndInterval(iv)
	}
	p.Close()
	close(stop)
	wg.Wait()

	quarantined := 0
	for _, l := range p.Stats().Lanes {
		if l.Health == telemetry.LaneQuarantined {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Fatalf("%d lanes quarantined, want 1", quarantined)
	}
	if len(p.Reports()) != 3 {
		t.Fatalf("got %d reports, want 3", len(p.Reports()))
	}
}
