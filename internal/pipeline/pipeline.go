// Package pipeline shards a measurement device across goroutines the way a
// multi-queue NIC (RSS) shards packets across cores: flows are hashed to
// shards, each shard runs its own independent algorithm instance, and
// interval reports are merged. Because sharding is per flow, each flow is
// measured by exactly one instance and the merged report has the same
// per-flow guarantees (lower bounds, no false negatives at the per-shard
// threshold) as a single instance.
//
// This is the software analogue of the paper's observation that its
// algorithms parallelize: the per-packet work is a few independent memory
// references, so throughput scales with lanes.
package pipeline

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hashing"
)

// Config configures a sharded pipeline.
type Config struct {
	// Shards is the number of parallel lanes.
	Shards int
	// QueueDepth is each lane's channel capacity.
	QueueDepth int
	// NewAlgorithm builds one lane's algorithm instance. Instances must be
	// independent (separate state); shard is 0-based.
	NewAlgorithm func(shard int) (core.Algorithm, error)
	// Definition extracts flow keys; sharding hashes these keys.
	Definition flow.Definition
	// Seed seeds the shard-selection hash.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("pipeline: Shards = %d", c.Shards)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("pipeline: QueueDepth = %d", c.QueueDepth)
	}
	if c.NewAlgorithm == nil || c.Definition == nil {
		return fmt.Errorf("pipeline: NewAlgorithm and Definition are required")
	}
	return nil
}

// Report is one merged interval report.
type Report struct {
	Interval  int
	Estimates []core.Estimate
	// PerShard is the number of estimates contributed by each shard.
	PerShard []int
}

type op struct {
	key  flow.Key
	size uint32
	// flush, when non-nil, asks the lane to close the interval and reply
	// with its estimates.
	flush chan []core.Estimate
}

// Pipeline implements trace.Consumer over sharded lanes.
type Pipeline struct {
	cfg     Config
	shardFn hashing.Func
	lanes   []chan op
	algs    []core.Algorithm
	wg      sync.WaitGroup
	reports []Report
	closed  bool
}

// New builds and starts a pipeline; call Close when done.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		shardFn: hashing.NewTabulation(cfg.Seed).New(uint32(cfg.Shards)),
	}
	for i := 0; i < cfg.Shards; i++ {
		alg, err := cfg.NewAlgorithm(i)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pipeline: shard %d: %w", i, err)
		}
		ch := make(chan op, cfg.QueueDepth)
		p.lanes = append(p.lanes, ch)
		p.algs = append(p.algs, alg)
		p.wg.Add(1)
		go p.run(alg, ch)
	}
	return p, nil
}

func (p *Pipeline) run(alg core.Algorithm, ch chan op) {
	defer p.wg.Done()
	for o := range ch {
		if o.flush != nil {
			o.flush <- alg.EndInterval()
			continue
		}
		alg.Process(o.key, o.size)
	}
}

// Packet implements trace.Consumer: it hashes the packet's flow to a lane
// and enqueues it.
func (p *Pipeline) Packet(pkt *flow.Packet) {
	key := p.cfg.Definition.Key(pkt)
	p.lanes[p.shardFn.Bucket(key)] <- op{key: key, size: pkt.Size}
}

// EndInterval implements trace.Consumer: it barriers all lanes (each lane
// drains its queue before answering, because the channel is FIFO) and
// merges their reports.
func (p *Pipeline) EndInterval(interval int) {
	replies := make([]chan []core.Estimate, len(p.lanes))
	for i, ch := range p.lanes {
		replies[i] = make(chan []core.Estimate, 1)
		ch <- op{flush: replies[i]}
	}
	r := Report{Interval: interval, PerShard: make([]int, len(p.lanes))}
	for i, reply := range replies {
		ests := <-reply
		r.PerShard[i] = len(ests)
		r.Estimates = append(r.Estimates, ests...)
	}
	sort.Slice(r.Estimates, func(i, j int) bool {
		a, b := r.Estimates[i], r.Estimates[j]
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		if a.Key.Hi != b.Key.Hi {
			return a.Key.Hi > b.Key.Hi
		}
		return a.Key.Lo > b.Key.Lo
	})
	p.reports = append(p.reports, r)
}

// Reports returns the merged interval reports.
func (p *Pipeline) Reports() []Report { return p.reports }

// EntriesUsed sums flow-memory usage across lanes. Only meaningful between
// intervals (lanes may be mid-packet otherwise).
func (p *Pipeline) EntriesUsed() int {
	total := 0
	for _, a := range p.algs {
		total += a.EntriesUsed()
	}
	return total
}

// Close stops the lanes and waits for them to drain. The pipeline must not
// be used afterwards.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.lanes {
		close(ch)
	}
	p.wg.Wait()
}
