// Package pipeline shards a measurement device across goroutines the way a
// multi-queue NIC (RSS) shards packets across cores: flows are hashed to
// shards, each shard runs its own independent algorithm instance, and
// interval reports are merged. Because sharding is per flow, each flow is
// measured by exactly one instance and the merged report has the same
// per-flow guarantees (lower bounds, no false negatives at the per-shard
// threshold) as a single instance.
//
// Packets are handed to lanes in batches, NIC-burst style: the producer
// buffers up to BatchSize (key, size) pairs per lane and performs one
// channel operation per batch instead of per packet, which amortizes the
// channel synchronization that otherwise dominates the software hot path.
// Batch buffers are recycled through a per-lane free list, so the
// steady-state packet loop allocates nothing. Partial batches are flushed at
// interval boundaries, so merged reports are bit-identical to an unbatched
// run.
//
// This is the software analogue of the paper's observation that its
// algorithms parallelize: the per-packet work is a few independent memory
// references, so throughput scales with lanes.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cfgerr"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hashing"
	"repro/internal/telemetry"
)

// DefaultBatchSize is the per-lane batch size used when Config.BatchSize is
// zero: big enough to amortize a channel operation, small enough that a
// lane's working set of buffered keys stays cache-resident.
const DefaultBatchSize = 64

// Config configures a sharded pipeline.
type Config struct {
	// Shards is the number of parallel lanes.
	Shards int
	// QueueDepth is each lane's channel capacity, in batches.
	QueueDepth int
	// BatchSize is the number of packets buffered per lane before the batch
	// is handed over (one channel operation per batch). Zero selects
	// DefaultBatchSize; 1 hands over every packet individually, which is
	// the unbatched per-packet behavior.
	BatchSize int
	// NewAlgorithm builds one lane's algorithm instance. Instances must be
	// independent (separate state); shard is 0-based.
	NewAlgorithm func(shard int) (core.Algorithm, error)
	// Definition extracts flow keys; sharding hashes these keys.
	Definition flow.Definition
	// Seed seeds the shard-selection hash.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return cfgerr.New("pipeline", "Shards", "must be at least 1, got %d", c.Shards)
	}
	if c.QueueDepth < 1 {
		return cfgerr.New("pipeline", "QueueDepth", "must be at least 1, got %d", c.QueueDepth)
	}
	if c.BatchSize < 0 {
		return cfgerr.New("pipeline", "BatchSize", "must not be negative, got %d", c.BatchSize)
	}
	if c.NewAlgorithm == nil {
		return cfgerr.New("pipeline", "NewAlgorithm", "is required")
	}
	if c.Definition == nil {
		return cfgerr.New("pipeline", "Definition", "is required")
	}
	return nil
}

// batch is one lane's burst of packets, ready for core.ProcessBatch.
type batch struct {
	keys  []flow.Key
	sizes []uint32
}

func newBatch(size int) *batch {
	return &batch{keys: make([]flow.Key, 0, size), sizes: make([]uint32, 0, size)}
}

type op struct {
	b *batch
	// flush, when non-nil, asks the lane to close the interval and reply
	// with its estimates.
	flush chan []core.Estimate
}

// Pipeline implements trace.Consumer and trace.BatchConsumer over sharded
// lanes. The producer side (Packet, PacketBatch, EndInterval, Close) must be
// driven from a single goroutine, like any trace.Consumer.
type Pipeline struct {
	cfg       Config
	batchSize int
	shardFn   hashing.Func
	lanes     []chan op
	// free recycles processed batch buffers back to the producer; pending
	// holds the batch currently being filled for each lane. Each lane owns
	// QueueDepth+2 buffers total (queue + in-processing + being-filled), so
	// a blocking receive from free can always be satisfied.
	free    []chan *batch
	pending []*batch
	algs    []core.Algorithm
	wg      sync.WaitGroup
	reports []core.IntervalReport
	// perShard[i][s] is the number of estimates shard s contributed to
	// interval report i.
	perShard [][]int
	// laneTel holds producer-side lane counters; reportCount mirrors
	// len(reports) for concurrent Stats readers.
	laneTel     []*telemetry.Lane
	reportCount atomic.Int64
	closed      bool
}

// New builds and starts a pipeline; call Close when done.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batchSize := cfg.BatchSize
	if batchSize == 0 {
		batchSize = DefaultBatchSize
	}
	p := &Pipeline{
		cfg:       cfg,
		batchSize: batchSize,
		shardFn:   hashing.NewTabulation(cfg.Seed).New(uint32(cfg.Shards)),
	}
	for i := 0; i < cfg.Shards; i++ {
		alg, err := cfg.NewAlgorithm(i)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pipeline: shard %d: %w", i, err)
		}
		ch := make(chan op, cfg.QueueDepth)
		free := make(chan *batch, cfg.QueueDepth+2)
		for k := 0; k < cfg.QueueDepth+1; k++ {
			free <- newBatch(batchSize)
		}
		p.lanes = append(p.lanes, ch)
		p.free = append(p.free, free)
		p.pending = append(p.pending, newBatch(batchSize))
		p.algs = append(p.algs, alg)
		p.laneTel = append(p.laneTel, &telemetry.Lane{})
		p.wg.Add(1)
		go p.run(alg, ch, free)
	}
	return p, nil
}

func (p *Pipeline) run(alg core.Algorithm, ch chan op, free chan *batch) {
	defer p.wg.Done()
	for o := range ch {
		if o.flush != nil {
			o.flush <- alg.EndInterval()
			continue
		}
		core.ProcessBatch(alg, o.b.keys, o.b.sizes)
		o.b.keys = o.b.keys[:0]
		o.b.sizes = o.b.sizes[:0]
		free <- o.b
	}
}

// enqueue appends one packet to its lane's pending batch and hands the batch
// over when full.
func (p *Pipeline) enqueue(lane int, key flow.Key, size uint32) {
	b := p.pending[lane]
	b.keys = append(b.keys, key)
	b.sizes = append(b.sizes, size)
	if len(b.keys) >= p.batchSize {
		p.flushLane(lane)
	}
}

// flushLane hands the lane's pending batch to its worker (a no-op when the
// batch is empty) and replaces it with a recycled buffer.
func (p *Pipeline) flushLane(lane int) {
	b := p.pending[lane]
	if len(b.keys) == 0 {
		return
	}
	n := len(b.keys)
	p.lanes[lane] <- op{b: b}
	// An empty free list means the lane has not returned a buffer yet: the
	// producer is about to block on it — the backpressure signal telemetry
	// reports as a flush stall.
	stalled := len(p.free[lane]) == 0
	p.pending[lane] = <-p.free[lane]
	p.laneTel[lane].ObserveBatch(n, len(p.lanes[lane]), stalled)
}

// Packet implements trace.Consumer: it hashes the packet's flow to a lane
// and buffers it in the lane's pending batch.
func (p *Pipeline) Packet(pkt *flow.Packet) {
	key := p.cfg.Definition.Key(pkt)
	p.enqueue(int(p.shardFn.Bucket(key)), key, pkt.Size)
}

// PacketBatch implements trace.BatchConsumer: the whole burst is keyed and
// distributed to the per-lane batches in one pass.
func (p *Pipeline) PacketBatch(pkts []flow.Packet) {
	for i := range pkts {
		key := p.cfg.Definition.Key(&pkts[i])
		p.enqueue(int(p.shardFn.Bucket(key)), key, pkts[i].Size)
	}
}

// EndInterval implements trace.Consumer: it flushes every lane's partial
// batch, barriers all lanes (each lane drains its queue before answering,
// because the channel is FIFO) and merges their reports.
func (p *Pipeline) EndInterval(interval int) {
	// The report's Threshold and EntriesUsed describe the interval being
	// closed, so they are captured before the flush resets per-lane state.
	// Reading lane algorithms is safe here: EntriesUsed and Threshold only
	// change on the lane goroutine while it processes ops, and the previous
	// interval's flush replies ordered all of those writes before this call.
	// (For the interval being closed the producer-side counters are exact
	// because every batch below was flushed before the lanes answered.)
	threshold := p.algs[0].Threshold()
	replies := make([]chan []core.Estimate, len(p.lanes))
	for i, ch := range p.lanes {
		p.flushLane(i)
		replies[i] = make(chan []core.Estimate, 1)
		ch <- op{flush: replies[i]}
		p.laneTel[i].ObserveFlush()
	}
	r := core.IntervalReport{Interval: interval, Threshold: threshold}
	shards := make([]int, len(p.lanes))
	for i, reply := range replies {
		ests := <-reply
		shards[i] = len(ests)
		r.Estimates = append(r.Estimates, ests...)
	}
	// A lane reports one estimate per flow-memory entry, so the estimate
	// counts sum to the flow-memory usage at the end of the interval —
	// the same quantity a single Device records as EntriesUsed.
	for _, e := range shards {
		r.EntriesUsed += e
	}
	// Merged estimates keep the same ordering guarantee as a single
	// device's report: descending bytes, ties by descending key.
	sort.Slice(r.Estimates, func(i, j int) bool {
		a, b := r.Estimates[i], r.Estimates[j]
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		if a.Key.Hi != b.Key.Hi {
			return a.Key.Hi > b.Key.Hi
		}
		return a.Key.Lo > b.Key.Lo
	})
	p.reports = append(p.reports, r)
	p.perShard = append(p.perShard, shards)
	p.reportCount.Add(1)
}

// Reports returns the merged interval reports. The report type and the
// ordering of its estimates are identical to a single Device's Reports:
// descending bytes, ties broken by descending key.
func (p *Pipeline) Reports() []core.IntervalReport { return p.reports }

// ShardCounts returns, for each interval report, how many estimates each
// shard contributed — the sharding diagnostic that used to live on the
// report itself.
func (p *Pipeline) ShardCounts() [][]int { return p.perShard }

// EntriesUsed sums flow-memory usage across lanes. Only meaningful between
// intervals (lanes may be mid-batch otherwise).
func (p *Pipeline) EntriesUsed() int {
	total := 0
	for _, a := range p.algs {
		total += a.EntriesUsed()
	}
	return total
}

// Stats returns the pipeline's live telemetry: producer-side lane counters
// (batches handed over, queue high-water marks, flush stalls) plus each
// lane algorithm's own counters. Safe to call from any goroutine while the
// pipeline is running, as long as every lane algorithm is instrumented
// (core.Instrumented — true for all the algorithms in this module);
// snapshots of uninstrumented lane algorithms are synthesized only between
// intervals and are marked Stale.
func (p *Pipeline) Stats() telemetry.PipelineSnapshot {
	s := telemetry.PipelineSnapshot{
		Shards:  len(p.lanes),
		Reports: int(p.reportCount.Load()),
	}
	for i, lt := range p.laneTel {
		s.Lanes = append(s.Lanes, lt.Snapshot())
		if in, ok := p.algs[i].(core.Instrumented); ok {
			s.Algorithms = append(s.Algorithms, in.Telemetry().Snapshot())
		} else {
			s.Algorithms = append(s.Algorithms, telemetry.AlgorithmSnapshot{
				Name: p.algs[i].Name(), Stale: true,
			})
		}
	}
	return s
}

// Close flushes buffered packets, stops the lanes and waits for them to
// drain. The pipeline must not be used afterwards; Close is idempotent.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for i, ch := range p.lanes {
		p.flushLane(i)
		close(ch)
	}
	p.wg.Wait()
}
