// Package pipeline is the fixed shard→lane measurement pipeline, kept as
// the stable facade over the composable stage graph that now implements it
// (internal/stagegraph). New compiles the PresetShardLane topology — one
// source feeding one sharded measure stage — so a Pipeline runs the exact
// engine it always did: per-flow sharding across lanes, NIC-burst batching
// with a buffer freelist, overload policies (Block, DropNewest, DropOldest,
// Degrade), supervised lanes with panic quarantine/restart, arena-backed
// interval reports. Custom topologies (A/B algorithm races, per-tenant
// branches, live ops buses) are built directly with stagegraph; this
// package is the "just give me the paper's device, sharded" entry point.
package pipeline

import (
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/stagegraph"
	"repro/internal/telemetry"
)

// DefaultBatchSize is the per-lane batch size used when Config.BatchSize is
// zero.
const DefaultBatchSize = stagegraph.DefaultBatchSize

// DefaultDegradeFraction is the Degrade policy's per-packet keep
// probability when Config.DegradeFraction is zero.
const DefaultDegradeFraction = stagegraph.DefaultDegradeFraction

// OverloadPolicy selects the producer's behavior when a lane queue is full;
// see the stagegraph constants for each policy's semantics.
type OverloadPolicy = stagegraph.OverloadPolicy

const (
	// Block waits for the lane to drain: lossless backpressure (default).
	Block = stagegraph.Block
	// DropNewest sheds the incoming batch, keeping the queued ones.
	DropNewest = stagegraph.DropNewest
	// DropOldest evicts the oldest queued batch so the freshest traffic
	// survives.
	DropOldest = stagegraph.DropOldest
	// Degrade probabilistically subsamples the overflowing batch.
	Degrade = stagegraph.Degrade
)

// OverloadPolicyByName maps the CLI spellings to policies.
func OverloadPolicyByName(name string) (OverloadPolicy, error) {
	return stagegraph.OverloadPolicyByName(name)
}

// Config configures the pipeline. It is the measure stage's configuration:
// a pipeline is exactly one measure stage behind a source.
type Config = stagegraph.MeasureConfig

// Option customizes a Pipeline beyond its Config. There are currently no
// pipeline-specific options; the parameter exists so the constructor shape
// matches the rest of the facade ((Config, ...Option)).
type Option func(*Pipeline)

// Pipeline is a sharded measurement device built from the preset shard→lane
// stage graph. The packet-facing methods must be driven from a single
// producer goroutine; Stats and Health are safe from any goroutine.
type Pipeline struct {
	g *stagegraph.Graph
	m *stagegraph.Measure
}

// New validates cfg, compiles the preset shard→lane topology and starts its
// lanes. On error nothing is left running.
func New(cfg Config, opts ...Option) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := stagegraph.New(stagegraph.Config{Topology: stagegraph.PresetShardLane(cfg)})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{g: g, m: g.Measure("measure")}
	for _, opt := range opts {
		opt(p)
	}
	return p, nil
}

// Graph exposes the underlying compiled stage graph (its Stats include the
// per-stage supervision counters).
func (p *Pipeline) Graph() *stagegraph.Graph { return p.g }

// SetPressure installs the export-path overload probe consulted by the
// Degrade policy (typically Exporter.Overloaded). Must be set before Run.
func (p *Pipeline) SetPressure(f func() bool) { p.m.SetPressure(f) }

// SetExportTelemetry attaches an export path's counters to the pipeline's
// snapshots (and thereby its Health). Call before traffic flows.
func (p *Pipeline) SetExportTelemetry(t *telemetry.Export) { p.m.SetExportTelemetry(t) }

// Packet feeds one packet into the graph.
func (p *Pipeline) Packet(pkt *flow.Packet) { p.g.Packet(pkt) }

// PacketBatch feeds a burst of packets into the graph in one call.
func (p *Pipeline) PacketBatch(pkts []flow.Packet) { p.g.PacketBatch(pkts) }

// EndInterval flushes every lane's partial batch and merges the lanes'
// reports into one interval report.
func (p *Pipeline) EndInterval(interval int) { p.g.EndInterval(interval) }

// Reports returns the merged interval reports; estimates are ordered by
// descending bytes, ties broken by descending key, exactly like a single
// Device's reports.
func (p *Pipeline) Reports() []core.IntervalReport { return p.m.Reports() }

// ShardCounts returns, for each interval report, how many estimates each
// shard contributed.
func (p *Pipeline) ShardCounts() [][]int { return p.m.ShardCounts() }

// EntriesUsed sums flow-memory usage across lanes. Only meaningful between
// intervals.
func (p *Pipeline) EntriesUsed() int { return p.m.EntriesUsed() }

// Stats returns the pipeline's live telemetry; see
// stagegraph.Measure.Stats. Safe from any goroutine.
func (p *Pipeline) Stats() telemetry.PipelineSnapshot { return p.m.Stats() }

// Health grades the pipeline from its telemetry. Safe from any goroutine.
func (p *Pipeline) Health() (telemetry.HealthStatus, string) { return p.m.Health() }

// Close flushes buffered packets, stops the lanes and waits for them to
// drain. Idempotent; the pipeline must not be used afterwards.
func (p *Pipeline) Close() { p.g.Close() }
