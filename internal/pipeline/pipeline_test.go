package pipeline

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/multistage"
	"repro/internal/core/sampleandhold"
	"repro/internal/exact"
	"repro/internal/flow"
	"repro/internal/trace"
)

func shConfig(entries int) func(int) (core.Algorithm, error) {
	return func(shard int) (core.Algorithm, error) {
		return sampleandhold.New(sampleandhold.Config{
			Entries:      entries,
			Threshold:    10,
			Oversampling: 10, // p = 1: exact tracking
			Seed:         int64(shard),
		})
	}
}

func testTrace(nFlows, pkts int, intervals int) (*trace.SliceSource, trace.Meta) {
	meta := trace.Meta{
		Name:            "pipe",
		LinkBytesPerSec: 1e8,
		Interval:        time.Second,
		Intervals:       intervals,
	}
	rng := rand.New(rand.NewSource(1))
	var ps []flow.Packet
	for iv := 0; iv < intervals; iv++ {
		base := time.Duration(iv) * time.Second
		for i := 0; i < pkts; i++ {
			ps = append(ps, flow.Packet{
				Time:  base + time.Duration(i)*time.Microsecond,
				Size:  uint32(rng.Intn(1460) + 40),
				SrcIP: uint32(rng.Intn(nFlows)),
				DstIP: 1, Proto: 6,
			})
		}
	}
	return trace.NewSliceSource(meta, ps), meta
}

func TestConfigValidate(t *testing.T) {
	good := Config{Shards: 4, QueueDepth: 64, NewAlgorithm: shConfig(16), Definition: flow.FiveTuple{}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Shards: 0, QueueDepth: 1, NewAlgorithm: shConfig(1), Definition: flow.FiveTuple{}},
		{Shards: 1, QueueDepth: 0, NewAlgorithm: shConfig(1), Definition: flow.FiveTuple{}},
		{Shards: 1, QueueDepth: 1, Definition: flow.FiveTuple{}},
		{Shards: 1, QueueDepth: 1, NewAlgorithm: shConfig(1)},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with zero config succeeded")
	}
}

// TestMatchesExactOracle: with p=1 sample and hold and ample memory, the
// sharded pipeline's merged report equals exact per-flow counting.
func TestMatchesExactOracle(t *testing.T) {
	src, _ := testTrace(200, 5000, 2)
	p, err := New(Config{
		Shards:       4,
		QueueDepth:   256,
		NewAlgorithm: shConfig(1000),
		Definition:   flow.FiveTuple{},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	oracle := exact.New(flow.FiveTuple{})
	var truths []map[flow.Key]uint64
	tee := trace.FuncConsumer{
		OnPacket: func(pk *flow.Packet) {
			oracle.Packet(pk)
			p.Packet(pk)
		},
		OnEndInterval: func(i int) {
			truths = append(truths, oracle.Snapshot())
			oracle.Reset()
			p.EndInterval(i)
		},
	}
	if _, err := trace.Replay(src, tee); err != nil {
		t.Fatal(err)
	}
	reports := p.Reports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for i, r := range reports {
		if len(r.Estimates) != len(truths[i]) {
			t.Fatalf("interval %d: %d estimates, %d true flows", i, len(r.Estimates), len(truths[i]))
		}
		for _, e := range r.Estimates {
			if truths[i][e.Key] != e.Bytes {
				t.Fatalf("interval %d flow %v: %d, want %d", i, e.Key, e.Bytes, truths[i][e.Key])
			}
		}
	}
}

// TestFlowsNeverSplitAcrossShards: every flow's estimates come from exactly
// one shard, so no flow is double-reported.
func TestFlowsNeverSplitAcrossShards(t *testing.T) {
	src, _ := testTrace(100, 3000, 1)
	p, err := New(Config{
		Shards:       8,
		QueueDepth:   128,
		NewAlgorithm: shConfig(1000),
		Definition:   flow.FiveTuple{},
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := trace.Replay(src, p); err != nil {
		t.Fatal(err)
	}
	seen := map[flow.Key]int{}
	for _, e := range p.Reports()[0].Estimates {
		seen[e.Key]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("flow %v reported %d times", k, n)
		}
	}
	// Work actually spread across shards.
	nonEmpty := 0
	for _, n := range p.ShardCounts()[0] {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("only %d shards did any work", nonEmpty)
	}
}

// TestMultistageNoFalseNegativesSharded: the per-shard filters keep the
// paper's guarantee after merging.
func TestMultistageNoFalseNegativesSharded(t *testing.T) {
	const threshold = 50000
	src, _ := testTrace(300, 20000, 1)
	p, err := New(Config{
		Shards:     4,
		QueueDepth: 256,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			return multistage.New(multistage.Config{
				Stages: 3, Buckets: 64, Entries: 100000,
				Threshold: threshold, Conservative: true,
				Seed: int64(shard) + 10,
			})
		},
		Definition: flow.FiveTuple{},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	oracle := exact.New(flow.FiveTuple{})
	tee := trace.FuncConsumer{
		OnPacket: func(pk *flow.Packet) {
			oracle.Packet(pk)
			p.Packet(pk)
		},
		OnEndInterval: p.EndInterval,
	}
	if _, err := trace.Replay(src, tee); err != nil {
		t.Fatal(err)
	}
	reported := map[flow.Key]bool{}
	for _, e := range p.Reports()[0].Estimates {
		reported[e.Key] = true
	}
	for k, bytes := range oracle.Snapshot() {
		if bytes >= threshold && !reported[k] {
			t.Errorf("flow %v with %d bytes missed by sharded filter", k, bytes)
		}
	}
}

func TestEntriesUsedAndClose(t *testing.T) {
	p, err := New(Config{
		Shards:       2,
		QueueDepth:   16,
		NewAlgorithm: shConfig(100),
		Definition:   flow.FiveTuple{},
	})
	if err != nil {
		t.Fatal(err)
	}
	pk := flow.Packet{Size: 100, SrcIP: 1, DstIP: 2, Proto: 6}
	p.Packet(&pk)
	p.EndInterval(0) // barrier: lane has processed the packet
	if got := len(p.Reports()[0].Estimates); got != 1 {
		t.Errorf("estimates = %d", got)
	}
	p.Close()
	p.Close() // idempotent
}

func BenchmarkPipelineThroughput(b *testing.B) {
	p, err := New(Config{
		Shards:       4,
		QueueDepth:   1024,
		NewAlgorithm: shConfig(4096),
		Definition:   flow.FiveTuple{},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	pk := flow.Packet{Size: 1000, DstIP: 2, Proto: 6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.SrcIP = uint32(i % 10000)
		p.Packet(&pk)
	}
	b.StopTimer()
	p.EndInterval(0)
}

func TestEntriesUsedSumsLanes(t *testing.T) {
	p, err := New(Config{
		Shards:       4,
		QueueDepth:   64,
		NewAlgorithm: shConfig(100),
		Definition:   flow.FiveTuple{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 40; i++ {
		pk := flow.Packet{Size: 100, SrcIP: uint32(i), DstIP: 2, Proto: 6}
		p.Packet(&pk)
	}
	p.EndInterval(0) // barrier so lanes have drained
	// p=1 sampling with Preserve off: entries were reported then cleared.
	if got := p.EntriesUsed(); got != 0 {
		t.Errorf("EntriesUsed after interval = %d", got)
	}
	for i := 0; i < 7; i++ {
		pk := flow.Packet{Size: 100, SrcIP: uint32(i), DstIP: 2, Proto: 6}
		p.Packet(&pk)
	}
	p.EndInterval(1)
	if got := len(p.Reports()[1].Estimates); got != 7 {
		t.Errorf("estimates = %d, want 7", got)
	}
}

func TestNewFailsWhenShardConstructorFails(t *testing.T) {
	calls := 0
	_, err := New(Config{
		Shards:     3,
		QueueDepth: 8,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			calls++
			if shard == 1 {
				return nil, errShard
			}
			return shConfig(8)(shard)
		},
		Definition: flow.FiveTuple{},
	})
	if err == nil {
		t.Fatal("failing shard constructor accepted")
	}
	if calls != 2 {
		t.Errorf("constructor called %d times, want 2 (stop at failure)", calls)
	}
}

var errShard = errors.New("shard construction failed")

// TestCloseTwiceWithPendingBatches: Close must flush still-buffered packets
// to the lanes, shut down cleanly, and stay idempotent.
func TestCloseTwiceWithPendingBatches(t *testing.T) {
	p, err := New(Config{
		Shards:       2,
		QueueDepth:   4,
		BatchSize:    64,
		NewAlgorithm: shConfig(100),
		Definition:   flow.FiveTuple{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fewer packets than BatchSize: they sit in the pending batches and are
	// only delivered by Close's flush.
	for i := 0; i < 10; i++ {
		pk := flow.Packet{Size: 100, SrcIP: uint32(i), DstIP: 2, Proto: 6}
		p.Packet(&pk)
	}
	p.Close()
	if got := p.EntriesUsed(); got != 10 {
		t.Errorf("EntriesUsed after Close = %d, want 10 (pending batches flushed)", got)
	}
	p.Close() // idempotent
}

// TestNewFailsMidwayCleansUp: when a later shard's constructor fails, the
// lanes already started must be shut down (no leaked goroutines) and the
// error surfaced.
func TestNewFailsMidwayCleansUp(t *testing.T) {
	before := runtime.NumGoroutine()
	_, err := New(Config{
		Shards:     4,
		QueueDepth: 8,
		NewAlgorithm: func(shard int) (core.Algorithm, error) {
			if shard == 2 {
				return nil, errShard
			}
			return shConfig(8)(shard)
		},
		Definition: flow.FiveTuple{},
	})
	if !errors.Is(err, errShard) {
		t.Fatalf("err = %v, want wrapped errShard", err)
	}
	// New's internal Close waits for started lanes, so by the time it
	// returns no lane goroutines may remain. Allow the runtime a moment to
	// reap exited goroutines before declaring a leak.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before New, %d after failed New", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchedMatchesPerPacketPipeline: lane batching must not change the
// merged reports. Run with -race this also exercises the batch-buffer
// handoff between the producer and the lane goroutines.
func TestBatchedMatchesPerPacketPipeline(t *testing.T) {
	src, _ := testTrace(150, 4000, 3)
	run := func(batchSize int) ([]core.IntervalReport, [][]int) {
		src.Reset()
		p, err := New(Config{
			Shards:       4,
			QueueDepth:   16,
			BatchSize:    batchSize,
			NewAlgorithm: shConfig(1000),
			Definition:   flow.FiveTuple{},
			Seed:         5,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if _, err := trace.Replay(src, p); err != nil {
			t.Fatal(err)
		}
		return p.Reports(), p.ShardCounts()
	}
	perPacket, perPacketShards := run(1)
	// 48 does not divide the per-interval packet count, so EndInterval's
	// partial-batch flush is exercised at every boundary.
	batched, batchedShards := run(48)
	if len(perPacket) != len(batched) {
		t.Fatalf("report counts differ: %d vs %d", len(perPacket), len(batched))
	}
	for i := range perPacket {
		a, b := perPacket[i], batched[i]
		if len(a.Estimates) != len(b.Estimates) {
			t.Fatalf("interval %d: %d estimates per-packet, %d batched", i, len(a.Estimates), len(b.Estimates))
		}
		for j := range a.Estimates {
			if a.Estimates[j] != b.Estimates[j] {
				t.Fatalf("interval %d estimate %d: %+v vs %+v", i, j, a.Estimates[j], b.Estimates[j])
			}
		}
		for s := range perPacketShards[i] {
			if perPacketShards[i][s] != batchedShards[i][s] {
				t.Fatalf("interval %d shard %d: %d vs %d estimates", i, s, perPacketShards[i][s], batchedShards[i][s])
			}
		}
	}
}

// TestPacketBatchDelivery: the BatchConsumer entry point distributes a burst
// across lanes exactly like per-packet delivery.
func TestPacketBatchDelivery(t *testing.T) {
	mk := func() *Pipeline {
		p, err := New(Config{
			Shards:       4,
			QueueDepth:   16,
			BatchSize:    8,
			NewAlgorithm: shConfig(1000),
			Definition:   flow.FiveTuple{},
			Seed:         5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	var pkts []flow.Packet
	for i := 0; i < 100; i++ {
		pkts = append(pkts, flow.Packet{Size: 100, SrcIP: uint32(i % 37), DstIP: 2, Proto: 6})
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	for i := range pkts {
		a.Packet(&pkts[i])
	}
	a.EndInterval(0)
	b.PacketBatch(pkts)
	b.EndInterval(0)
	ra, rb := a.Reports()[0], b.Reports()[0]
	if len(ra.Estimates) != len(rb.Estimates) {
		t.Fatalf("%d vs %d estimates", len(ra.Estimates), len(rb.Estimates))
	}
	for j := range ra.Estimates {
		if ra.Estimates[j] != rb.Estimates[j] {
			t.Fatalf("estimate %d: %+v vs %+v", j, ra.Estimates[j], rb.Estimates[j])
		}
	}
}

func TestValidateRejectsNegativeBatchSize(t *testing.T) {
	cfg := Config{Shards: 1, QueueDepth: 1, BatchSize: -1, NewAlgorithm: shConfig(8), Definition: flow.FiveTuple{}}
	if cfg.Validate() == nil {
		t.Error("negative BatchSize accepted")
	}
}
