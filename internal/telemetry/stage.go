// Stage-graph telemetry: per-stage supervision and message counters for the
// composable pipeline (internal/stagegraph), the graph-wide snapshot that
// aggregates them, and the event-bus counters. These follow the same rules
// as the rest of the package: hot-path counters are lock-free atomics, any
// goroutine may snapshot while messages flow.

package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Stage holds the live counters of one stage-graph node. Data-plane writers
// are the producer goroutine; supervision counters are written by the
// stage's supervisor goroutine. All fields are atomics.
type Stage struct {
	lane Lane // reuse the lane counter block: panics, restarts, health

	in           atomic.Uint64
	out          atomic.Uint64
	droppedIn    atomic.Uint64
	droppedEmits atomic.Uint64
}

// ObserveIn records n messages accepted onto the stage's input queue.
func (s *Stage) ObserveIn(n uint64) { s.in.Add(n) }

// ObserveOut records n messages the stage emitted.
func (s *Stage) ObserveOut(n uint64) { s.out.Add(n) }

// ObserveDroppedInput records n messages shed because the stage's input
// queue was full (the graph never blocks the measurement path on a slow
// observer stage).
func (s *Stage) ObserveDroppedInput(n uint64) { s.droppedIn.Add(n) }

// ObserveDroppedEmit records n emitted messages shed because a downstream
// stage's queue was full.
func (s *Stage) ObserveDroppedEmit(n uint64) { s.droppedEmits.Add(n) }

// ObservePanic records a recovered panic in the stage's Process.
func (s *Stage) ObservePanic() { s.lane.ObservePanic() }

// ObserveRestart records the stage resuming after a backoff restart.
func (s *Stage) ObserveRestart() { s.lane.ObserveRestart() }

// SetHealth records the stage's supervision state (LaneHealth doubles as
// the generic stage supervision state: healthy, restarted, quarantined).
func (s *Stage) SetHealth(h LaneHealth) { s.lane.SetHealth(h) }

// Health returns the stage's supervision state.
func (s *Stage) Health() LaneHealth { return s.lane.Health() }

// Snapshot copies the stage counters.
func (s *Stage) Snapshot() StageSnapshot {
	ls := s.lane.Snapshot()
	return StageSnapshot{
		In:            s.in.Load(),
		Out:           s.out.Load(),
		DroppedInputs: s.droppedIn.Load(),
		DroppedEmits:  s.droppedEmits.Load(),
		Panics:        ls.Panics,
		Restarts:      ls.Restarts,
		Health:        ls.Health,
	}
}

// StageSnapshot is a point-in-time copy of one stage-graph node's counters.
type StageSnapshot struct {
	// Name is the node name in the topology; Kind is the stage type
	// ("measure", "sample", "bus", ...). Filled by the graph.
	Name string `json:"name"`
	Kind string `json:"kind"`
	// In and Out count messages accepted and emitted on the async plane
	// (zero for pure data-plane stages, whose traffic is counted by the
	// measure stages' lane telemetry).
	In  uint64 `json:"in"`
	Out uint64 `json:"out"`
	// DroppedInputs counts messages shed on a full input queue;
	// DroppedEmits counts emitted messages shed on a full downstream queue.
	DroppedInputs uint64 `json:"dropped_inputs"`
	DroppedEmits  uint64 `json:"dropped_emits"`
	// Panics counts recovered Process panics; Restarts counts backoff
	// restarts after them.
	Panics   uint64 `json:"panics"`
	Restarts uint64 `json:"restarts"`
	// Health is the stage's supervision state.
	Health LaneHealth `json:"health"`
}

// GraphSnapshot is a point-in-time copy of a stage graph: every node's stage
// counters, plus the full pipeline snapshot of each measure node.
type GraphSnapshot struct {
	Stages []StageSnapshot `json:"stages"`
	// Measures maps measure node names to their sharded-engine snapshots.
	Measures map[string]PipelineSnapshot `json:"measures"`
	// Bus, when the graph publishes to an event bus, is that bus's counters.
	Bus *BusSnapshot `json:"bus,omitempty"`
}

// Health grades the graph: unhealthy when every measure node is unhealthy,
// degraded when any measure is degraded/unhealthy or any stage is
// quarantined, has panicked, or is shedding messages.
func (g GraphSnapshot) Health() (HealthStatus, string) {
	unhealthy := 0
	for name, m := range g.Measures {
		st, reason := m.Health()
		if st == HealthUnhealthy {
			unhealthy++
			if unhealthy == len(g.Measures) {
				return HealthUnhealthy, fmt.Sprintf("measure %q: %s", name, reason)
			}
		}
	}
	for name, m := range g.Measures {
		if st, reason := m.Health(); st > HealthOK {
			return HealthDegraded, fmt.Sprintf("measure %q: %s", name, reason)
		}
	}
	for _, s := range g.Stages {
		if s.Health == LaneQuarantined {
			return HealthDegraded, fmt.Sprintf("stage %q quarantined after %d panics", s.Name, s.Panics)
		}
		if s.Panics > 0 {
			return HealthDegraded, fmt.Sprintf("stage %q recovered %d panics", s.Name, s.Panics)
		}
		if n := s.DroppedInputs + s.DroppedEmits; n > 0 {
			return HealthDegraded, fmt.Sprintf("stage %q shed %d messages", s.Name, n)
		}
	}
	return HealthOK, ""
}

// BusSnapshot is a point-in-time copy of an event bus's counters.
type BusSnapshot struct {
	// Subscribers is the number of live subscriptions.
	Subscribers int `json:"subscribers"`
	// Published counts events offered to the bus; Delivered counts
	// per-subscription deliveries; Dropped counts events slow subscribers
	// lost to queue overflow.
	Published uint64 `json:"published"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}
