// Package telemetry gives a running measurement device the self-accounting
// the paper's evaluation computes offline: how many packets and bytes each
// algorithm instance processed, how full its flow memory is, how many flows
// passed the filter into flow memory (the candidate set whose excess over
// the true large flows is Section 4.2's false positives), how the threshold
// moved across intervals, and what the per-lane batching machinery of a
// sharded pipeline is doing.
//
// All hot-path counters are lock-free atomics so a snapshot can be taken
// from any goroutine — an expvar handler, a monitoring loop — while packets
// are being processed. Algorithms fold a whole batch into the counters with
// a handful of atomic operations, so the batched hot path stays
// allocation-free and its cost is unchanged to within noise.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memmodel"
)

// Algorithm holds the live counters of one algorithm instance. The zero
// value is ready to use; Init sets the static identity fields. Writers (the
// algorithm) must be a single goroutine, as required by core.Algorithm;
// readers may call Snapshot concurrently from any goroutine.
type Algorithm struct {
	name     string
	capacity int64

	packets      atomic.Uint64
	bytes        atomic.Uint64
	filterPasses atomic.Uint64
	drops        atomic.Uint64
	preserved    atomic.Uint64
	evictions    atomic.Uint64
	intervals    atomic.Uint64
	entriesUsed  atomic.Int64
	threshold    atomic.Uint64

	// Mirrors of the algorithm's memmodel totals, refreshed by Observe. The
	// counts are monotonic and written by one goroutine, so plain atomic
	// stores of the running totals are exact.
	sramReads, sramWrites atomic.Uint64
	dramReads, dramWrites atomic.Uint64

	mu         sync.Mutex
	trajectory []uint64 // threshold in effect during each closed interval
}

// Init records the static identity of the instrumented algorithm and its
// starting threshold. Call it once, before any packets.
func (a *Algorithm) Init(name string, capacity int, threshold uint64) {
	a.name = name
	a.capacity = int64(capacity)
	a.threshold.Store(threshold)
}

// Observe folds a processed batch (or a single packet; n = 1) into the
// counters: n packets of total size bytes, the algorithm's running memory
// reference totals, and the current flow memory occupancy.
func (a *Algorithm) Observe(n, bytes uint64, cost memmodel.Counter, entriesUsed int) {
	a.packets.Add(n)
	a.bytes.Add(bytes)
	a.sramReads.Store(cost.SRAMReads)
	a.sramWrites.Store(cost.SRAMWrites)
	a.dramReads.Store(cost.DRAMReads)
	a.dramWrites.Store(cost.DRAMWrites)
	a.entriesUsed.Store(int64(entriesUsed))
}

// FilterPass records one flow earning a flow memory entry — by passing the
// multistage filter, being sampled by sample and hold, or being picked up
// by a sampling baseline. The excess of this count over the number of true
// large flows is the false positive load of Section 4.2.
func (a *Algorithm) FilterPass() { a.filterPasses.Add(1) }

// FilterPasses records n flows earning entries at once (batched paths).
func (a *Algorithm) FilterPasses(n uint64) { a.filterPasses.Add(n) }

// Drop records a flow that qualified for an entry but found the flow
// memory full; threshold adaptation exists to keep this at zero.
func (a *Algorithm) Drop() { a.drops.Add(1) }

// SetThreshold records a threshold change (initially from Init, then from
// dynamic adaptation between intervals).
func (a *Algorithm) SetThreshold(t uint64) { a.threshold.Store(t) }

// ObserveInterval records an interval transition: the threshold that was in
// effect, how many entries were preserved into the next interval, and how
// many were evicted.
func (a *Algorithm) ObserveInterval(threshold uint64, preserved, evicted int) {
	a.intervals.Add(1)
	a.preserved.Add(uint64(preserved))
	a.evictions.Add(uint64(evicted))
	a.entriesUsed.Store(int64(preserved))
	a.mu.Lock()
	a.trajectory = append(a.trajectory, threshold)
	a.mu.Unlock()
}

// Snapshot returns a consistent-enough copy of the counters for reporting.
// Individual fields are each exact; fields read microseconds apart may
// straddle a packet, which is fine for monitoring.
func (a *Algorithm) Snapshot() AlgorithmSnapshot {
	s := AlgorithmSnapshot{
		Name:         a.name,
		Capacity:     int(a.capacity),
		Packets:      a.packets.Load(),
		Bytes:        a.bytes.Load(),
		FilterPasses: a.filterPasses.Load(),
		Drops:        a.drops.Load(),
		Preserved:    a.preserved.Load(),
		Evictions:    a.evictions.Load(),
		Intervals:    a.intervals.Load(),
		EntriesUsed:  int(a.entriesUsed.Load()),
		Threshold:    a.threshold.Load(),
		Mem: MemSnapshot{
			SRAMReads:  a.sramReads.Load(),
			SRAMWrites: a.sramWrites.Load(),
			DRAMReads:  a.dramReads.Load(),
			DRAMWrites: a.dramWrites.Load(),
		},
	}
	a.mu.Lock()
	s.ThresholdTrajectory = append([]uint64(nil), a.trajectory...)
	a.mu.Unlock()
	return s
}

// MemSnapshot is the memory-reference portion of a snapshot, split by
// technology as in the paper's per-packet cost comparisons.
type MemSnapshot struct {
	SRAMReads  uint64 `json:"sram_reads"`
	SRAMWrites uint64 `json:"sram_writes"`
	DRAMReads  uint64 `json:"dram_reads"`
	DRAMWrites uint64 `json:"dram_writes"`
}

// Accesses returns the total number of memory references.
func (m MemSnapshot) Accesses() uint64 {
	return m.SRAMReads + m.SRAMWrites + m.DRAMReads + m.DRAMWrites
}

// AlgorithmSnapshot is a point-in-time copy of one algorithm's counters.
type AlgorithmSnapshot struct {
	// Name is the algorithm name ("multistage-filter", ...).
	Name string `json:"name"`
	// Packets and Bytes are the totals processed since creation.
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
	// EntriesUsed / Capacity is the flow memory occupancy.
	EntriesUsed int `json:"entries_used"`
	Capacity    int `json:"capacity"`
	// Threshold is the current large-flow threshold in bytes.
	Threshold uint64 `json:"threshold"`
	// FilterPasses counts flows admitted to flow memory; its excess over
	// the true large-flow count is the false positive load (Section 4.2).
	FilterPasses uint64 `json:"filter_passes"`
	// Drops counts flows that qualified but found flow memory full.
	Drops uint64 `json:"drops"`
	// Preserved and Evictions count entry fates at interval transitions
	// (Section 3.3.1's preservation policy).
	Preserved uint64 `json:"preserved"`
	Evictions uint64 `json:"evictions"`
	// Intervals is the number of closed measurement intervals.
	Intervals uint64 `json:"intervals"`
	// ThresholdTrajectory is the threshold in effect during each closed
	// interval — the visible output of the ADAPTTHRESHOLD loop.
	ThresholdTrajectory []uint64 `json:"threshold_trajectory"`
	// Mem is the memory-reference accounting of Section 5.
	Mem MemSnapshot `json:"mem"`
	// Stale marks snapshots synthesized from an uninstrumented algorithm's
	// interface methods rather than live atomic counters; such values must
	// not be read concurrently with packet processing.
	Stale bool `json:"stale,omitempty"`
}

// MemRefsPerPacket returns the average memory references per packet.
func (s AlgorithmSnapshot) MemRefsPerPacket() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.Mem.Accesses()) / float64(s.Packets)
}

// EntriesRejected returns the number of flows that qualified for a flow
// memory entry but were refused because the memory was at its hard cap —
// the Drops counter under the name the overload documentation uses.
func (s AlgorithmSnapshot) EntriesRejected() uint64 { return s.Drops }

// Occupancy returns EntriesUsed/Capacity in [0, 1].
func (s AlgorithmSnapshot) Occupancy() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.EntriesUsed) / float64(s.Capacity)
}

// LaneHealth is the supervision state of one pipeline lane worker.
type LaneHealth int32

const (
	// LaneHealthy is a lane running its original algorithm instance.
	LaneHealthy LaneHealth = iota
	// LaneRestarted is a lane that panicked at least once and was restarted
	// with a fresh algorithm instance; it is processing traffic again.
	LaneRestarted
	// LaneQuarantined is a lane whose algorithm panicked and was not (or
	// could not be) restarted: the worker stays alive but sheds every batch
	// and answers interval flushes with an empty report, so the pipeline
	// never deadlocks on a dead lane.
	LaneQuarantined
)

// String renders the health state.
func (h LaneHealth) String() string {
	switch h {
	case LaneHealthy:
		return "healthy"
	case LaneRestarted:
		return "restarted"
	case LaneQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the health state as its string form, so /debug/vars
// and /healthz read naturally.
func (h LaneHealth) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// Lane holds the counters of one pipeline lane. The hand-off counters are
// written by the single producer goroutine; the panic/restart/health and
// worker-side shed counters are written by the lane worker. All fields are
// atomics, so either side may write its own counters and any goroutine may
// Snapshot.
type Lane struct {
	batches   atomic.Uint64
	packets   atomic.Uint64
	queueHWM  atomic.Uint64
	stalls    atomic.Uint64
	intervals atomic.Uint64

	shedBatches atomic.Uint64
	shedPackets atomic.Uint64
	shedBytes   atomic.Uint64

	degradedBatches atomic.Uint64
	degradedPackets atomic.Uint64
	degradedBytes   atomic.Uint64

	panics   atomic.Uint64
	restarts atomic.Uint64
	health   atomic.Int32
}

// ObserveBatch records one batch of n packets handed to the lane with the
// observed queue depth (in batches) just after the hand-off, and whether
// the producer found the buffer free list empty (a flush stall: the lane
// could not keep up and the producer had to wait for a buffer).
func (l *Lane) ObserveBatch(n int, queueDepth int, stalled bool) {
	l.batches.Add(1)
	l.packets.Add(uint64(n))
	if d := uint64(queueDepth); d > l.queueHWM.Load() {
		l.queueHWM.Store(d)
	}
	if stalled {
		l.stalls.Add(1)
	}
}

// ObserveFlush records an interval flush handed to the lane.
func (l *Lane) ObserveFlush() { l.intervals.Add(1) }

// ObserveShed records batches packets of bytes total size dropped without
// being processed — by an overload policy on the producer side, or by a
// quarantined (or panicking) lane worker.
func (l *Lane) ObserveShed(batches, packets int, bytes uint64) {
	l.shedBatches.Add(uint64(batches))
	l.shedPackets.Add(uint64(packets))
	l.shedBytes.Add(bytes)
}

// ObserveDegraded records one batch subsampled by the Degrade overload
// policy: dropped packets of droppedBytes were discarded, the rest of the
// batch was still delivered.
func (l *Lane) ObserveDegraded(dropped int, droppedBytes uint64) {
	l.degradedBatches.Add(1)
	l.degradedPackets.Add(uint64(dropped))
	l.degradedBytes.Add(droppedBytes)
}

// ObservePanic records a recovered panic in the lane worker.
func (l *Lane) ObservePanic() { l.panics.Add(1) }

// ObserveRestart records the lane being restarted with a fresh algorithm.
func (l *Lane) ObserveRestart() { l.restarts.Add(1) }

// SetHealth records the lane's supervision state.
func (l *Lane) SetHealth(h LaneHealth) { l.health.Store(int32(h)) }

// Health returns the lane's supervision state.
func (l *Lane) Health() LaneHealth { return LaneHealth(l.health.Load()) }

// Snapshot copies the lane counters.
func (l *Lane) Snapshot() LaneSnapshot {
	return LaneSnapshot{
		Batches:         l.batches.Load(),
		Packets:         l.packets.Load(),
		QueueHighWater:  l.queueHWM.Load(),
		FlushStalls:     l.stalls.Load(),
		Intervals:       l.intervals.Load(),
		ShedBatches:     l.shedBatches.Load(),
		ShedPackets:     l.shedPackets.Load(),
		ShedBytes:       l.shedBytes.Load(),
		DegradedBatches: l.degradedBatches.Load(),
		DegradedPackets: l.degradedPackets.Load(),
		DegradedBytes:   l.degradedBytes.Load(),
		Panics:          l.panics.Load(),
		Restarts:        l.restarts.Load(),
		Health:          LaneHealth(l.health.Load()),
	}
}

// LaneSnapshot is a point-in-time copy of one lane's counters.
type LaneSnapshot struct {
	// Batches and Packets count hand-offs to the lane worker.
	Batches uint64 `json:"batches"`
	Packets uint64 `json:"packets"`
	// QueueHighWater is the deepest the lane's queue has been, in batches.
	QueueHighWater uint64 `json:"queue_high_water"`
	// FlushStalls counts hand-offs where the producer found the lane
	// saturated — the queue full at hand-off, or the buffer free list empty
	// afterwards — and had to block. Only the Block and Degrade overload
	// policies stall; the dropping policies shed instead.
	FlushStalls uint64 `json:"flush_stalls"`
	// Intervals counts interval flushes sent to the lane.
	Intervals uint64 `json:"intervals"`
	// ShedBatches/ShedPackets/ShedBytes count traffic dropped without being
	// processed: by DropNewest/DropOldest on a full queue, or by a
	// quarantined or panicking lane worker. A batch both handed over and
	// later shed by the worker appears in Packets and ShedPackets.
	ShedBatches uint64 `json:"shed_batches"`
	ShedPackets uint64 `json:"shed_packets"`
	ShedBytes   uint64 `json:"shed_bytes"`
	// DegradedBatches counts batches thinned by the Degrade policy;
	// DegradedPackets/DegradedBytes count what the thinning discarded.
	DegradedBatches uint64 `json:"degraded_batches"`
	DegradedPackets uint64 `json:"degraded_packets"`
	DegradedBytes   uint64 `json:"degraded_bytes"`
	// Panics counts recovered lane-worker panics; Restarts counts fresh
	// algorithm instances installed after a panic.
	Panics   uint64 `json:"panics"`
	Restarts uint64 `json:"restarts"`
	// Health is the lane's supervision state.
	Health LaneHealth `json:"health"`
}

// PipelineSnapshot is a point-in-time copy of a sharded pipeline's state:
// the producer-side lane counters plus each lane algorithm's own counters.
type PipelineSnapshot struct {
	Shards     int                 `json:"shards"`
	Lanes      []LaneSnapshot      `json:"lanes"`
	Algorithms []AlgorithmSnapshot `json:"algorithms"`
	// Reports is the number of merged interval reports produced.
	Reports int `json:"reports"`
	// Export, when the pipeline's reports feed an exporter, is that export
	// path's counters.
	Export *ExportSnapshot `json:"export,omitempty"`
}

// Packets sums packets handed to all lanes.
func (s PipelineSnapshot) Packets() uint64 {
	var total uint64
	for _, l := range s.Lanes {
		total += l.Packets
	}
	return total
}

// ShedPackets sums packets shed across all lanes.
func (s PipelineSnapshot) ShedPackets() uint64 {
	var total uint64
	for _, l := range s.Lanes {
		total += l.ShedPackets + l.DegradedPackets
	}
	return total
}

// HealthStatus grades a component for the /healthz endpoint.
type HealthStatus int

const (
	// HealthOK: fully operational.
	HealthOK HealthStatus = iota
	// HealthDegraded: still serving, but shedding load, running with
	// quarantined lanes, or rejecting flow-memory entries.
	HealthDegraded
	// HealthUnhealthy: no longer producing useful measurements (e.g. every
	// lane quarantined).
	HealthUnhealthy
)

// String renders the status the way /healthz reports it.
func (h HealthStatus) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthUnhealthy:
		return "unhealthy"
	default:
		return "unknown"
	}
}

// Health grades the pipeline: unhealthy when every lane is quarantined,
// degraded when any lane is quarantined or has panicked, when any traffic
// has been shed or degraded by an overload policy, or when any lane's flow
// memory rejected entries. The reason names the first condition found.
func (s PipelineSnapshot) Health() (HealthStatus, string) {
	quarantined := 0
	for _, l := range s.Lanes {
		if l.Health == LaneQuarantined {
			quarantined++
		}
	}
	if len(s.Lanes) > 0 && quarantined == len(s.Lanes) {
		return HealthUnhealthy, "all lanes quarantined"
	}
	if quarantined > 0 {
		return HealthDegraded, fmt.Sprintf("%d/%d lanes quarantined", quarantined, len(s.Lanes))
	}
	for i, l := range s.Lanes {
		if l.Panics > 0 {
			return HealthDegraded, fmt.Sprintf("lane %d recovered %d panics", i, l.Panics)
		}
	}
	if shed := s.ShedPackets(); shed > 0 {
		return HealthDegraded, fmt.Sprintf("%d packets shed under overload", shed)
	}
	for i, a := range s.Algorithms {
		if a.Drops > 0 {
			return HealthDegraded, fmt.Sprintf("lane %d flow memory rejected %d entries", i, a.Drops)
		}
	}
	if s.Export != nil {
		if st, reason := s.Export.Health(); st > HealthOK {
			return st, reason
		}
	}
	return HealthOK, ""
}

// DeviceSnapshot is a point-in-time copy of a measurement device's state.
type DeviceSnapshot struct {
	Algorithm AlgorithmSnapshot `json:"algorithm"`
	// Definition is the flow definition name.
	Definition string `json:"definition"`
	// Reports is the number of interval reports produced so far.
	Reports int `json:"reports"`
	// Export, when the device's reports feed an exporter, is that export
	// path's counters.
	Export *ExportSnapshot `json:"export,omitempty"`
}

// Health grades a single device: degraded when its flow memory has rejected
// entries (the signal threshold adaptation exists to relieve) or when its
// export path is losing reports.
func (s DeviceSnapshot) Health() (HealthStatus, string) {
	if s.Algorithm.Drops > 0 {
		return HealthDegraded, fmt.Sprintf("flow memory rejected %d entries", s.Algorithm.Drops)
	}
	if s.Export != nil {
		if st, reason := s.Export.Health(); st > HealthOK {
			return st, reason
		}
	}
	return HealthOK, ""
}

// Export holds the live counters of a report export path — the link from
// the measurement device to the collection station whose overhead is the
// paper's point iv). Writers are the export path's goroutines (the report
// callback and, for the reliable transport, the sender); all fields are
// atomics, so any goroutine may Snapshot while reports are flowing.
type Export struct {
	reports        atomic.Uint64
	frames         atomic.Uint64
	bytes          atomic.Uint64
	sent           atomic.Uint64
	acked          atomic.Uint64
	redelivered    atomic.Uint64
	reconnects     atomic.Uint64
	errors         atomic.Uint64
	framesDropped  atomic.Uint64
	reportsDropped atomic.Uint64
	spoolDepth     atomic.Int64
	spoolHWM       atomic.Uint64
	heartbeats     atomic.Uint64
	pauses         atomic.Uint64
	resumes        atomic.Uint64
	paused         atomic.Bool
	pressureEvents atomic.Uint64
	pressure       atomic.Bool
}

// ObserveReport records one interval report handed to the export path as
// frames encoded packets of bytes total size.
func (e *Export) ObserveReport(frames int, bytes uint64) {
	e.reports.Add(1)
	e.frames.Add(uint64(frames))
	e.bytes.Add(bytes)
}

// ObserveSent records n frames written to the wire (redeliveries included).
func (e *Export) ObserveSent(n uint64) { e.sent.Add(n) }

// ObserveAcked records n frames acknowledged by the collector.
func (e *Export) ObserveAcked(n uint64) { e.acked.Add(n) }

// ObserveRedelivered records n frames re-sent after a reconnect.
func (e *Export) ObserveRedelivered(n uint64) { e.redelivered.Add(n) }

// ObserveReconnect records a successful re-dial after the first connection.
func (e *Export) ObserveReconnect() { e.reconnects.Add(1) }

// ObserveSendError records a failed dial or send.
func (e *Export) ObserveSendError() { e.errors.Add(1) }

// ObserveFramesDropped records n frames lost for good — a failed UDP send,
// a spool overflow, or frames still unacknowledged when the exporter shut
// down.
func (e *Export) ObserveFramesDropped(n uint64) { e.framesDropped.Add(n) }

// ObserveReportDropped records an interval report at least one of whose
// frames was lost for good.
func (e *Export) ObserveReportDropped() { e.reportsDropped.Add(1) }

// SetSpoolDepth records the spool occupancy (in frames) after a change.
func (e *Export) SetSpoolDepth(n int) {
	e.spoolDepth.Store(int64(n))
	if d := uint64(n); d > e.spoolHWM.Load() {
		e.spoolHWM.Store(d)
	}
}

// ObserveHeartbeat records one liveness frame sent to the collector.
func (e *Export) ObserveHeartbeat() { e.heartbeats.Add(1) }

// ObservePause records a pause frame from the collector and flips the
// paused gauge; ObserveResume records the matching resume.
func (e *Export) ObservePause() {
	e.pauses.Add(1)
	e.paused.Store(true)
}

// ObserveResume records a resume frame from the collector.
func (e *Export) ObserveResume() {
	e.resumes.Add(1)
	e.paused.Store(false)
}

// SetPaused overrides the paused gauge (connection teardown clears it
// without a resume frame).
func (e *Export) SetPaused(v bool) { e.paused.Store(v) }

// SetPressure records spool-occupancy pressure transitions: v true when
// occupancy crossed the high-water mark, false when it fell back below the
// low-water mark. Each onset counts as one pressure event.
func (e *Export) SetPressure(v bool) {
	if v && !e.pressure.Swap(true) {
		e.pressureEvents.Add(1)
	} else if !v {
		e.pressure.Store(false)
	}
}

// Pressure reports whether the spool is above its high-water mark.
func (e *Export) Pressure() bool { return e.pressure.Load() }

// Snapshot copies the export counters.
func (e *Export) Snapshot() ExportSnapshot {
	return ExportSnapshot{
		Reports:        e.reports.Load(),
		Frames:         e.frames.Load(),
		Bytes:          e.bytes.Load(),
		Sent:           e.sent.Load(),
		Acked:          e.acked.Load(),
		Redelivered:    e.redelivered.Load(),
		Reconnects:     e.reconnects.Load(),
		ExportErrors:   e.errors.Load(),
		FramesDropped:  e.framesDropped.Load(),
		ReportsDropped: e.reportsDropped.Load(),
		SpoolDepth:     int(e.spoolDepth.Load()),
		SpoolHighWater: e.spoolHWM.Load(),
		Heartbeats:     e.heartbeats.Load(),
		Pauses:         e.pauses.Load(),
		Resumes:        e.resumes.Load(),
		Paused:         e.paused.Load(),
		PressureEvents: e.pressureEvents.Load(),
		Pressure:       e.pressure.Load(),
	}
}

// ExportSnapshot is a point-in-time copy of an export path's counters.
type ExportSnapshot struct {
	// Reports counts interval reports handed to the export path; Frames and
	// Bytes count the encoded export packets they became.
	Reports uint64 `json:"reports"`
	Frames  uint64 `json:"frames"`
	Bytes   uint64 `json:"bytes"`
	// Sent counts frames written to the wire, redeliveries included; Acked
	// counts frames the collector acknowledged (reliable transport only —
	// UDP has no acks, so Sent is the best it knows).
	Sent  uint64 `json:"sent"`
	Acked uint64 `json:"acked"`
	// Redelivered counts frames re-sent after a reconnect (at-least-once:
	// these may be duplicates the collector dedups by sequence).
	Redelivered uint64 `json:"redelivered"`
	// Reconnects counts successful re-dials after the first connection.
	Reconnects uint64 `json:"reconnects"`
	// ExportErrors counts failed dials and sends.
	ExportErrors uint64 `json:"export_errors"`
	// FramesDropped counts frames lost for good (failed UDP sends, spool
	// overflow, frames unacknowledged at shutdown); ReportsDropped counts
	// interval reports with at least one such frame.
	FramesDropped  uint64 `json:"frames_dropped"`
	ReportsDropped uint64 `json:"reports_dropped"`
	// SpoolDepth is the current spool backlog in frames; SpoolHighWater the
	// deepest it has been.
	SpoolDepth     int    `json:"spool_depth"`
	SpoolHighWater uint64 `json:"spool_high_water"`
	// Heartbeats counts liveness frames sent to the collector.
	Heartbeats uint64 `json:"heartbeats"`
	// Pauses and Resumes count backpressure frames received from the
	// collector; Paused is true while a pause is in effect.
	Pauses  uint64 `json:"pauses"`
	Resumes uint64 `json:"resumes"`
	Paused  bool   `json:"paused"`
	// PressureEvents counts spool occupancy crossings of the high-water
	// mark; Pressure is true while occupancy is above it (it clears at the
	// low-water mark — hysteresis, so the gauge does not flap).
	PressureEvents uint64 `json:"pressure_events"`
	Pressure       bool   `json:"pressure"`
}

// Backlog returns the number of frames accepted but not yet confirmed
// delivered (sent for UDP, acked for the reliable transport).
func (s ExportSnapshot) Backlog() uint64 {
	confirmed := s.Acked
	if confirmed == 0 && s.Reconnects == 0 && s.Redelivered == 0 {
		// Pure UDP path: nothing acks, sends are final.
		confirmed = s.Sent
	}
	if confirmed+s.FramesDropped >= s.Frames {
		return 0
	}
	return s.Frames - confirmed - s.FramesDropped
}

// Health grades the export path: degraded when reports have been lost for
// good or sends are erroring (the device still measures; its reports are
// just not all reaching the collection station).
func (s ExportSnapshot) Health() (HealthStatus, string) {
	if s.FramesDropped > 0 || s.ReportsDropped > 0 {
		return HealthDegraded, fmt.Sprintf("%d export frames (%d reports) dropped", s.FramesDropped, s.ReportsDropped)
	}
	if s.ExportErrors > 0 {
		return HealthDegraded, fmt.Sprintf("%d export errors", s.ExportErrors)
	}
	if s.Pressure {
		return HealthDegraded, fmt.Sprintf("spool above high-water mark (depth %d)", s.SpoolDepth)
	}
	return HealthOK, ""
}

// Runner holds the live counters of a live.Runner. All fields are atomics;
// Snapshot is safe from any goroutine.
type Runner struct {
	packets   atomic.Uint64
	intervals atomic.Int64
	lastTick  atomic.Int64 // unix nanoseconds; 0 = never
}

// ObservePacket records one live packet.
func (r *Runner) ObservePacket() { r.packets.Add(1) }

// ObserveTick records an interval tick at time t.
func (r *Runner) ObserveTick(t time.Time) {
	r.intervals.Add(1)
	r.lastTick.Store(t.UnixNano())
}

// Snapshot copies the runner counters.
func (r *Runner) Snapshot() RunnerSnapshot {
	s := RunnerSnapshot{
		Packets:   r.packets.Load(),
		Intervals: int(r.intervals.Load()),
	}
	if ns := r.lastTick.Load(); ns != 0 {
		s.LastTick = time.Unix(0, ns)
	}
	return s
}

// RunnerSnapshot is a point-in-time copy of a live runner's counters.
type RunnerSnapshot struct {
	// Packets is the number of packets fed so far.
	Packets uint64 `json:"packets"`
	// Intervals is the number of wall-clock intervals closed so far.
	Intervals int `json:"intervals"`
	// LastTick is when the most recent interval closed (zero if none).
	LastTick time.Time `json:"last_tick"`
}
