package telemetry

import (
	"sync"
	"testing"
	"time"

	"repro/internal/memmodel"
)

func TestAlgorithmCounters(t *testing.T) {
	var a Algorithm
	a.Init("test-alg", 128, 1000)
	a.Observe(10, 5000, memmodel.Counter{SRAMReads: 20, SRAMWrites: 10, DRAMReads: 3, DRAMWrites: 1}, 7)
	a.FilterPass()
	a.FilterPasses(4)
	a.Drop()
	a.ObserveInterval(1000, 5, 2)
	a.SetThreshold(1200)

	s := a.Snapshot()
	if s.Name != "test-alg" || s.Capacity != 128 {
		t.Fatalf("identity: got name %q capacity %d", s.Name, s.Capacity)
	}
	if s.Packets != 10 || s.Bytes != 5000 {
		t.Errorf("traffic: got %d packets, %d bytes, want 10, 5000", s.Packets, s.Bytes)
	}
	if s.FilterPasses != 5 {
		t.Errorf("filter passes: got %d, want 5", s.FilterPasses)
	}
	if s.Drops != 1 {
		t.Errorf("drops: got %d, want 1", s.Drops)
	}
	if s.Preserved != 5 || s.Evictions != 2 || s.Intervals != 1 {
		t.Errorf("interval transition: got preserved %d evictions %d intervals %d, want 5, 2, 1",
			s.Preserved, s.Evictions, s.Intervals)
	}
	// ObserveInterval resets the occupancy gauge to the preserved count.
	if s.EntriesUsed != 5 {
		t.Errorf("entries used: got %d, want 5", s.EntriesUsed)
	}
	if s.Threshold != 1200 {
		t.Errorf("threshold: got %d, want 1200", s.Threshold)
	}
	if len(s.ThresholdTrajectory) != 1 || s.ThresholdTrajectory[0] != 1000 {
		t.Errorf("trajectory: got %v, want [1000]", s.ThresholdTrajectory)
	}
	if got := s.Mem.Accesses(); got != 34 {
		t.Errorf("mem accesses: got %d, want 34", got)
	}
	if got := s.MemRefsPerPacket(); got != 3.4 {
		t.Errorf("mem refs per packet: got %g, want 3.4", got)
	}
	if got, want := s.Occupancy(), 5.0/128.0; got != want {
		t.Errorf("occupancy: got %g, want %g", got, want)
	}
	if s.Stale {
		t.Error("live snapshot marked stale")
	}
}

func TestAlgorithmZeroValue(t *testing.T) {
	var a Algorithm
	s := a.Snapshot()
	if s.MemRefsPerPacket() != 0 || s.Occupancy() != 0 {
		t.Errorf("zero-value derived metrics: refs/pkt %g occupancy %g, want 0, 0",
			s.MemRefsPerPacket(), s.Occupancy())
	}
	if len(s.ThresholdTrajectory) != 0 {
		t.Errorf("zero-value trajectory: %v", s.ThresholdTrajectory)
	}
}

func TestLaneCounters(t *testing.T) {
	var l Lane
	l.ObserveBatch(10, 3, false)
	l.ObserveBatch(5, 1, true)
	l.ObserveFlush()
	s := l.Snapshot()
	if s.Batches != 2 || s.Packets != 15 {
		t.Errorf("batches/packets: got %d/%d, want 2/15", s.Batches, s.Packets)
	}
	if s.QueueHighWater != 3 {
		t.Errorf("queue high water: got %d, want 3", s.QueueHighWater)
	}
	if s.FlushStalls != 1 {
		t.Errorf("flush stalls: got %d, want 1", s.FlushStalls)
	}
	if s.Intervals != 1 {
		t.Errorf("intervals: got %d, want 1", s.Intervals)
	}
}

func TestRunnerCounters(t *testing.T) {
	var r Runner
	if got := r.Snapshot(); !got.LastTick.IsZero() {
		t.Errorf("zero-value last tick: %v", got.LastTick)
	}
	r.ObservePacket()
	r.ObservePacket()
	r.ObservePacket()
	tick := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	r.ObserveTick(tick)
	s := r.Snapshot()
	if s.Packets != 3 || s.Intervals != 1 {
		t.Errorf("got %d packets, %d intervals, want 3, 1", s.Packets, s.Intervals)
	}
	if s.LastTick.UnixNano() != tick.UnixNano() {
		t.Errorf("last tick: got %v, want %v", s.LastTick, tick)
	}
}

func TestPipelineSnapshotPackets(t *testing.T) {
	s := PipelineSnapshot{Lanes: []LaneSnapshot{{Packets: 7}, {Packets: 11}}}
	if got := s.Packets(); got != 18 {
		t.Errorf("pipeline packets: got %d, want 18", got)
	}
}

func TestExportCounters(t *testing.T) {
	var e Export
	e.ObserveReport(3, 4500)
	e.ObserveReport(2, 3000)
	e.ObserveSent(5)
	e.ObserveAcked(4)
	e.ObserveRedelivered(1)
	e.ObserveReconnect()
	e.ObserveSendError()
	e.SetSpoolDepth(3)
	e.SetSpoolDepth(1)

	s := e.Snapshot()
	if s.Reports != 2 || s.Frames != 5 || s.Bytes != 7500 {
		t.Errorf("report intake: %+v, want 2 reports / 5 frames / 7500 bytes", s)
	}
	if s.Sent != 5 || s.Acked != 4 || s.Redelivered != 1 || s.Reconnects != 1 {
		t.Errorf("delivery: %+v", s)
	}
	if s.ExportErrors != 1 {
		t.Errorf("errors = %d, want 1", s.ExportErrors)
	}
	if s.SpoolDepth != 1 || s.SpoolHighWater != 3 {
		t.Errorf("spool: depth %d hwm %d, want 1, 3", s.SpoolDepth, s.SpoolHighWater)
	}
	// One frame acked later, none dropped: backlog is frames - acked.
	if got := s.Backlog(); got != 1 {
		t.Errorf("backlog = %d, want 1", got)
	}
}

func TestExportSnapshotBacklogUDP(t *testing.T) {
	// Pure UDP: no acks ever, so sends are final.
	s := ExportSnapshot{Frames: 10, Sent: 8, FramesDropped: 2}
	if got := s.Backlog(); got != 0 {
		t.Errorf("UDP backlog = %d, want 0 (8 sent + 2 dropped covers 10 frames)", got)
	}
	s = ExportSnapshot{Frames: 10, Sent: 7}
	if got := s.Backlog(); got != 3 {
		t.Errorf("UDP backlog = %d, want 3", got)
	}
}

func TestExportSnapshotHealth(t *testing.T) {
	ok := ExportSnapshot{Reports: 5, Frames: 9, Sent: 9, Acked: 9}
	if st, reason := ok.Health(); st != HealthOK {
		t.Errorf("clean export graded %v (%s)", st, reason)
	}
	dropped := ExportSnapshot{Frames: 9, FramesDropped: 2, ReportsDropped: 1}
	if st, reason := dropped.Health(); st != HealthDegraded || reason != "2 export frames (1 reports) dropped" {
		t.Errorf("lossy export graded %v (%q)", st, reason)
	}
	erroring := ExportSnapshot{Frames: 9, ExportErrors: 3}
	if st, reason := erroring.Health(); st != HealthDegraded || reason != "3 export errors" {
		t.Errorf("erroring export graded %v (%q)", st, reason)
	}
}

func TestDeviceSnapshotHealthIncludesExport(t *testing.T) {
	s := DeviceSnapshot{}
	if st, _ := s.Health(); st != HealthOK {
		t.Errorf("zero-value device graded %v", st)
	}
	s.Export = &ExportSnapshot{FramesDropped: 1, ReportsDropped: 1}
	if st, _ := s.Health(); st != HealthDegraded {
		t.Errorf("device with lossy export graded %v", st)
	}
	// Flow memory trouble outranks the export path in the reported reason.
	s.Algorithm.Drops = 2
	if _, reason := s.Health(); reason != "flow memory rejected 2 entries" {
		t.Errorf("reason = %q", reason)
	}
}

func TestPipelineSnapshotHealthIncludesExport(t *testing.T) {
	s := PipelineSnapshot{Lanes: []LaneSnapshot{{}}}
	if st, _ := s.Health(); st != HealthOK {
		t.Errorf("healthy pipeline graded %v", st)
	}
	s.Export = &ExportSnapshot{ExportErrors: 4}
	st, reason := s.Health()
	if st != HealthDegraded || reason != "4 export errors" {
		t.Errorf("pipeline with erroring export graded %v (%q)", st, reason)
	}
}

// TestSnapshotDuringWrites exercises the documented concurrency contract
// under the race detector: a single writer goroutine (the algorithm) and
// many concurrent Snapshot readers.
func TestSnapshotDuringWrites(t *testing.T) {
	var a Algorithm
	a.Init("race-test", 64, 100)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := a.Snapshot()
					if s.Packets < s.Intervals { // arbitrary read to keep s live
						t.Error("fewer packets than intervals")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		a.Observe(1, 100, memmodel.Counter{SRAMReads: uint64(i)}, i%64)
		a.FilterPass()
		if i%100 == 99 {
			a.ObserveInterval(100, i%64, 1)
			a.SetThreshold(uint64(100 + i))
		}
	}
	close(stop)
	wg.Wait()
	s := a.Snapshot()
	if s.Packets != 2000 || s.Intervals != 20 || len(s.ThresholdTrajectory) != 20 {
		t.Errorf("final counts: packets %d intervals %d trajectory %d, want 2000, 20, 20",
			s.Packets, s.Intervals, len(s.ThresholdTrajectory))
	}
}
