package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Durable holds the live counters of one durable journal — the disk-backed
// export spool on the device, or the collector's write-ahead log. Writers
// are the journal's owner (the exporter's Enqueue/ack paths, the server's
// delivery path); all fields are atomics, so any goroutine may Snapshot
// while records are being appended.
type Durable struct {
	appends      atomic.Uint64
	appendBytes  atomic.Uint64
	fsyncs       atomic.Uint64
	rotations    atomic.Uint64
	truncations  atomic.Uint64
	snapshots    atomic.Uint64
	errors       atomic.Uint64
	recoveries   atomic.Uint64
	tornRecords  atomic.Uint64
	tornBytes    atomic.Uint64
	recFrames    atomic.Uint64
	recBytes     atomic.Uint64
	recDiscarded atomic.Uint64
}

// ObserveAppend records one record of n bytes appended to the journal.
func (d *Durable) ObserveAppend(n int) {
	d.appends.Add(1)
	d.appendBytes.Add(uint64(n))
}

// ObserveFsync records one fsync of the journal.
func (d *Durable) ObserveFsync() { d.fsyncs.Add(1) }

// ObserveRotation records one segment rotation.
func (d *Durable) ObserveRotation() { d.rotations.Add(1) }

// ObserveTruncation records n whole segments deleted because the cumulative
// ack (or a snapshot) made every record in them redundant.
func (d *Durable) ObserveTruncation(n int) { d.truncations.Add(uint64(n)) }

// ObserveSnapshot records one state snapshot written.
func (d *Durable) ObserveSnapshot() { d.snapshots.Add(1) }

// ObserveError records a journal I/O error; after one the journal is
// typically disabled and the process runs on memory alone.
func (d *Durable) ObserveError() { d.errors.Add(1) }

// ObserveRecovery records the outcome of one startup recovery scan: frames
// restored (totaling bytes), torn or corrupt records truncated from the
// tail (tornBytes bytes discarded), and recovered frames discarded because
// they no longer fit the in-memory window.
func (d *Durable) ObserveRecovery(frames int, bytes uint64, torn int, tornBytes int64, discarded int) {
	d.recoveries.Add(1)
	d.recFrames.Add(uint64(frames))
	d.recBytes.Add(bytes)
	d.tornRecords.Add(uint64(torn))
	d.tornBytes.Add(uint64(tornBytes))
	d.recDiscarded.Add(uint64(discarded))
}

// Snapshot copies the durability counters.
func (d *Durable) Snapshot() DurableSnapshot {
	return DurableSnapshot{
		Appends:           d.appends.Load(),
		AppendBytes:       d.appendBytes.Load(),
		Fsyncs:            d.fsyncs.Load(),
		Rotations:         d.rotations.Load(),
		Truncations:       d.truncations.Load(),
		Snapshots:         d.snapshots.Load(),
		JournalErrors:     d.errors.Load(),
		Recoveries:        d.recoveries.Load(),
		TornRecords:       d.tornRecords.Load(),
		TornBytes:         d.tornBytes.Load(),
		RecoveredFrames:   d.recFrames.Load(),
		RecoveredBytes:    d.recBytes.Load(),
		RecoveryDiscarded: d.recDiscarded.Load(),
	}
}

// DurableSnapshot is a point-in-time copy of one journal's counters.
type DurableSnapshot struct {
	// Appends counts records appended; AppendBytes their encoded size.
	Appends     uint64 `json:"appends"`
	AppendBytes uint64 `json:"append_bytes"`
	// Fsyncs counts fsync calls (the knob the fsync policy turns).
	Fsyncs uint64 `json:"fsyncs"`
	// Rotations counts segment files opened after the first.
	Rotations uint64 `json:"rotations"`
	// Truncations counts whole segments deleted once acks or snapshots made
	// them redundant.
	Truncations uint64 `json:"truncations"`
	// Snapshots counts state snapshots written (collector journal only).
	Snapshots uint64 `json:"snapshots"`
	// JournalErrors counts disk failures; after one the journal is disabled
	// and durability is lost until restart.
	JournalErrors uint64 `json:"journal_errors"`
	// Recoveries counts startup recovery scans (1 after a restart).
	Recoveries uint64 `json:"recoveries"`
	// TornRecords and TornBytes count corrupt or half-written records
	// detected by CRC at recovery and truncated away — expected after a
	// crash mid-write, impossible after a clean shutdown.
	TornRecords uint64 `json:"torn_records"`
	TornBytes   uint64 `json:"torn_bytes"`
	// RecoveredFrames/RecoveredBytes count journaled frames restored into
	// memory at startup; RecoveryDiscarded counts recovered frames dropped
	// because the in-memory window was smaller than the journal backlog.
	RecoveredFrames   uint64 `json:"recovered_frames"`
	RecoveredBytes    uint64 `json:"recovered_bytes"`
	RecoveryDiscarded uint64 `json:"recovery_discarded"`
}

// Health grades the journal: degraded on any disk error (the process keeps
// serving from memory, but a crash now loses state). Torn records are not a
// degradation — they are the journal doing its job after a kill.
func (s DurableSnapshot) Health() (HealthStatus, string) {
	if s.JournalErrors > 0 {
		return HealthDegraded, fmt.Sprintf("%d journal I/O errors; durability lost until restart", s.JournalErrors)
	}
	return HealthOK, ""
}
