package stats

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

func key(i uint64) flow.Key { return flow.Key{Lo: i} }

func TestGroupContains(t *testing.T) {
	const c = 1e9
	groups := StandardGroups()
	tests := []struct {
		size uint64
		want string
	}{
		{2e6, "very large"}, // 0.2% of C
		{1e6, "very large"}, // exactly 0.1%
		{999999, "large"},   // just below 0.1%
		{1e5, "large"},      // 0.01%
		{99999, "medium"},   // just below 0.01%
		{1e4, "medium"},     // 0.001%
		{9999, ""},          // below all groups
	}
	for _, tt := range tests {
		got := ""
		for _, g := range groups {
			if g.Contains(tt.size, c) {
				if got != "" {
					t.Errorf("size %d in two groups", tt.size)
				}
				got = g.Name
			}
		}
		if got != tt.want {
			t.Errorf("size %d in group %q, want %q", tt.size, got, tt.want)
		}
	}
}

func TestGroupString(t *testing.T) {
	gs := StandardGroups()
	if gs[0].String() != "> 0.1%" {
		t.Errorf("String = %q", gs[0].String())
	}
	if gs[1].String() != "0.1% .. 0.01%" {
		t.Errorf("String = %q", gs[1].String())
	}
}

func TestAccumulatorPerfectDevice(t *testing.T) {
	a := NewAccumulator(StandardGroups())
	truth := map[flow.Key]uint64{key(1): 2e6, key(2): 5e5}
	ests := []core.Estimate{{Key: key(1), Bytes: 2e6}, {Key: key(2), Bytes: 5e5}}
	a.Add(truth, ests, 1e9)
	for _, r := range a.Results() {
		if r.UnidentifiedPct != 0 || r.AvgErrorPct != 0 {
			t.Errorf("%s: %+v, want perfect", r.Group.Name, r)
		}
	}
}

func TestAccumulatorUnidentifiedCountsFullError(t *testing.T) {
	a := NewAccumulator(StandardGroups())
	truth := map[flow.Key]uint64{key(1): 2e6, key(2): 4e6}
	ests := []core.Estimate{{Key: key(1), Bytes: 2e6}} // flow 2 missed
	a.Add(truth, ests, 1e9)
	r := a.Results()[0]
	if r.Flows != 2 || r.Unidentified != 1 {
		t.Fatalf("result = %+v", r)
	}
	if r.UnidentifiedPct != 50 {
		t.Errorf("UnidentifiedPct = %g", r.UnidentifiedPct)
	}
	// Error = 4e6 (full traffic of missed flow) over 6e6 total.
	want := 100 * 4e6 / 6e6
	if math.Abs(r.AvgErrorPct-want) > 1e-9 {
		t.Errorf("AvgErrorPct = %g, want %g", r.AvgErrorPct, want)
	}
}

func TestAccumulatorModulusPreventsCancellation(t *testing.T) {
	// A NetFlow-style device that over- and under-estimates by the same
	// amount must show error, not zero.
	a := NewAccumulator([]Group{{Name: "all", Lo: 0}})
	truth := map[flow.Key]uint64{key(1): 1000, key(2): 1000}
	ests := []core.Estimate{
		{Key: key(1), Bytes: 1500},
		{Key: key(2), Bytes: 500},
	}
	a.Add(truth, ests, 1e9)
	r := a.Results()[0]
	if math.Abs(r.AvgErrorPct-50) > 1e-9 {
		t.Errorf("AvgErrorPct = %g, want 50", r.AvgErrorPct)
	}
}

func TestAccumulatorAccumulatesAcrossIntervals(t *testing.T) {
	a := NewAccumulator([]Group{{Name: "all", Lo: 0}})
	a.Add(map[flow.Key]uint64{key(1): 100}, []core.Estimate{{Key: key(1), Bytes: 100}}, 1e9)
	a.Add(map[flow.Key]uint64{key(1): 100}, nil, 1e9)
	r := a.Results()[0]
	if r.Flows != 2 || r.Unidentified != 1 || r.UnidentifiedPct != 50 {
		t.Errorf("result = %+v", r)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator(StandardGroups())
	for _, r := range a.Results() {
		if r.Flows != 0 || r.UnidentifiedPct != 0 || r.AvgErrorPct != 0 {
			t.Errorf("empty accumulator: %+v", r)
		}
	}
}

func TestFalseNegatives(t *testing.T) {
	truth := map[flow.Key]uint64{key(1): 1000, key(2): 2000, key(3): 50}
	ests := []core.Estimate{{Key: key(1), Bytes: 900}}
	fn := FalseNegatives(truth, ests, 1000)
	if len(fn) != 1 || fn[0] != key(2) {
		t.Errorf("FalseNegatives = %v", fn)
	}
	if got := FalseNegatives(truth, ests, 3000); len(got) != 0 {
		t.Errorf("no flow reaches 3000: %v", got)
	}
}

func TestFalsePositives(t *testing.T) {
	truth := map[flow.Key]uint64{key(1): 1000, key(2): 50}
	ests := []core.Estimate{
		{Key: key(1), Bytes: 900},
		{Key: key(2), Bytes: 50},
		{Key: key(3), Bytes: 10}, // never seen in truth at all
	}
	fp := FalsePositives(truth, ests, 1000)
	if len(fp) != 2 {
		t.Errorf("FalsePositives = %v", fp)
	}
}

func TestLongLivedShare(t *testing.T) {
	prev := map[flow.Key]uint64{key(1): 5000, key(2): 100}
	cur := map[flow.Key]uint64{key(1): 6000, key(2): 7000, key(3): 8000}
	// Large flows now: 1, 2, 3; only flow 1 was large before.
	got := LongLivedShare(prev, cur, 1000)
	if math.Abs(got-100.0/3) > 1e-9 {
		t.Errorf("LongLivedShare = %g, want 33.3", got)
	}
	if LongLivedShare(prev, map[flow.Key]uint64{}, 1000) != 0 {
		t.Error("empty current interval should give 0")
	}
}
